// Adopting the library on external data, end to end:
//
//  1. load a graph shipped as node/edge TSV tables (the common exchange
//     format for public graph datasets);
//  2. DISCOVER an access schema from the data itself, using the paper's
//     §II heuristics (global label counts, degree bounds, FDs, group-by
//     aggregates) — no hand-written constraints;
//  3. build the constraint indices once and persist them next to the
//     data, the offline step the paper performed in MySQL;
//  4. reload the indices and answer a pattern query boundedly.
//
// The "external" data here is written to a temp directory by this very
// program (a miniature citation graph), so the example is self-contained
// and offline.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
)

func main() {
	dir, err := os.MkdirTemp("", "boundedg-external")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	nodesPath, edgesPath := writeCitationTSV(dir)

	// 1. Load the TSV tables.
	in := graph.NewInterner()
	g := graph.New(in)
	nf, err := os.Open(nodesPath)
	if err != nil {
		log.Fatal(err)
	}
	idmap, err := graph.ReadNodeTSV(nf, g)
	nf.Close()
	if err != nil {
		log.Fatal(err)
	}
	ef, err := os.Open(edgesPath)
	if err != nil {
		log.Fatal(err)
	}
	added, err := graph.ReadEdgeTSV(ef, g, idmap)
	ef.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %v (%d edges from TSV)\n", g, added)

	// 2. Discover an access schema: small global populations become
	// type-1 anchors, tight neighbor bounds become type-2 constraints,
	// and one group-by candidate covers papers per (venue, year).
	lVenue, _ := in.Lookup("venue")
	lYear, _ := in.Lookup("year")
	lPaper, _ := in.Lookup("paper")
	schema := access.Discover(g, access.DiscoverOptions{
		MaxType1: 50,
		MaxType2: 40,
		GeneralSets: []access.GeneralCandidate{
			{S: []graph.Label{lVenue, lYear}, L: lPaper},
		},
	})
	fmt.Printf("discovered %d access constraints, e.g.:\n", schema.Count())
	for i, line := range strings.SplitN(schema.Format(in), "\n", 4) {
		if i == 3 {
			break
		}
		fmt.Println("  " + line)
	}

	// 3. Offline: build indices, verify G |= A, persist.
	idx, viols := access.Build(g, schema)
	if viols != nil {
		log.Fatalf("discovery emitted a violated constraint: %v", viols[0])
	}
	idxPath := filepath.Join(dir, "indices.json")
	f, err := os.Create(idxPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := idx.WriteJSON(f, in); err != nil {
		log.Fatal(err)
	}
	f.Close()
	st, _ := os.Stat(idxPath)
	fmt.Printf("persisted indices: %d bytes\n", st.Size())

	// 4. Online: reload and answer a bounded query — authors of papers
	// that appeared at a given venue after 2015.
	f2, err := os.Open(idxPath)
	if err != nil {
		log.Fatal(err)
	}
	idx2, err := access.ReadIndexSet(f2, in)
	f2.Close()
	if err != nil {
		log.Fatal(err)
	}
	q := pattern.MustParse(`
		v: venue
		y: year (> 2015)
		p: paper
		a: author
		p -> v
		p -> y
		p -> a
	`, in)
	res, stats, err := core.BVF2(q, g, idx2, match.SubgraphOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bounded query: %d matches, accessed %d of %d graph elements\n",
		res.Count, stats.Accessed(), g.Size())
	direct := match.VF2(q, g, match.SubgraphOptions{})
	fmt.Printf("direct VF2 agrees: %v (%d matches)\n", res.Count == direct.Count, direct.Count)
}

// writeCitationTSV emits a miniature citation graph: venues, years,
// papers (linked to venue, year, authors), authors. Cardinalities are
// tame so discovery finds useful constraints.
func writeCitationTSV(dir string) (nodes, edges string) {
	var nb, eb strings.Builder
	id := int64(0)
	newNode := func(label, value string) int64 {
		n := id
		id++
		if value == "" {
			fmt.Fprintf(&nb, "%d %s\n", n, label)
		} else {
			fmt.Fprintf(&nb, "%d %s %s\n", n, label, value)
		}
		return n
	}
	edge := func(a, b int64) { fmt.Fprintf(&eb, "%d %d\n", a, b) }

	venues := make([]int64, 4)
	for i := range venues {
		venues[i] = newNode("venue", fmt.Sprintf("%q", []string{"ICDE", "VLDB", "SIGMOD", "PODS"}[i]))
	}
	years := make([]int64, 10)
	for i := range years {
		years[i] = newNode("year", fmt.Sprint(2010+i))
	}
	authors := make([]int64, 40)
	for i := range authors {
		authors[i] = newNode("author", fmt.Sprint(i))
	}
	// 3 papers per (venue, year), 2 authors each, round-robin.
	ai := 0
	for vi, v := range venues {
		for yi, y := range years {
			for k := 0; k < 3; k++ {
				p := newNode("paper", fmt.Sprint(vi*100+yi*10+k))
				edge(p, v)
				edge(p, y)
				for j := 0; j < 2; j++ {
					edge(p, authors[ai%len(authors)])
					ai++
				}
			}
		}
	}
	nodes = filepath.Join(dir, "nodes.tsv")
	edges = filepath.Join(dir, "edges.tsv")
	if err := os.WriteFile(nodes, []byte(nb.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(edges, []byte(eb.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	return nodes, edges
}
