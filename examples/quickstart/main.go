// Quickstart: the paper's Example 1 end-to-end.
//
// We generate an IMDb-style graph, pose the pattern Q0 of Fig. 1 — pairs
// of first-billed actor and actress from the same country who co-starred
// in an award-winning film in a year range — and answer it two ways:
//
//  1. bounded evaluation: check effective boundedness under the access
//     schema, generate the worst-case-optimal plan, fetch the bounded
//     subgraph GQ through the constraint indices, and run VF2 inside GQ;
//  2. conventional VF2 over the whole graph.
//
// Both return the same matches; the bounded plan touches a tiny,
// |G|-independent slice of the graph.
package main

import (
	"fmt"
	"log"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
	"boundedg/internal/workload"
)

func main() {
	// A scaled IMDb-like graph; the access schema ships with it.
	d := workload.IMDb(0.25, 42)
	fmt.Printf("dataset %s: %v, %d access constraints\n", d.Name, d.G, d.Schema.Count())

	// Q0 from Fig. 1 of the paper, in the pattern DSL.
	q, err := pattern.Parse(`
		u1: award
		u2: year (>= 1990, <= 1995)
		u3: movie
		u4: actor
		u5: actress
		u6: country
		u3 -> u1, u2
		u3 -> u4, u5
		u4 -> u6
		u5 -> u6
	`, d.In)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: is Q0 effectively bounded under the schema?
	cov := core.EBnd(q, d.Schema, core.Subgraph)
	fmt.Printf("effectively bounded: %v\n", cov.Bounded)

	// Step 2: generate the worst-case-optimal query plan.
	plan, err := core.NewPlan(q, d.Schema, core.Subgraph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)

	// Step 3: build the constraint indices (offline, reusable) and answer
	// the query by fetching GQ only.
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		log.Fatalf("graph violates schema: %v", viols[0])
	}
	bres, stats, err := plan.EvalSubgraph(d.G, idx, match.SubgraphOptions{StoreMatches: true, MaxMatches: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bounded evaluation: %d matches; accessed %d nodes + %d edges (of %d total) — GQ has %d nodes\n",
		bres.Count, stats.NodesAccessed, stats.EdgesAccessed, d.G.Size(), stats.GQNodes)

	// Baseline: conventional VF2 over all of G.
	dres := match.VF2(q, d.G, match.SubgraphOptions{MaxMatches: 5})
	fmt.Printf("direct VF2:        %d matches; %d search steps over the full graph\n", dres.Count, dres.Steps)

	// Print the actor/actress pairs of the bounded run.
	for _, m := range bres.Matches {
		fmt.Printf("  actor %v and actress %v, same country %v, movie %v (year %s)\n",
			m[3], m[4], m[5], m[2], d.G.ValueOf(m[1]))
	}
}
