// Example serve: stand up the bounded-query HTTP server in-process and
// talk to it like a client would — POST patterns to /query, watch the
// result cache absorb a repeat, read /stats, then shut down gracefully.
// This is the examples-sized version of running `boundedgd -dataset imdb`
// and pointing curl at it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"boundedg/internal/access"
	"boundedg/internal/runtime"
	"boundedg/internal/server"
	"boundedg/internal/workload"
)

func main() {
	// One shared graph + index set, one engine, one server.
	d := workload.IMDb(0.1, 1)
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		log.Fatalf("index build: %v", viols[0])
	}
	eng, err := runtime.New(d.G, idx, runtime.Config{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	srv := server.New(eng, d.In, server.Config{Timeout: 2 * time.Second})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	base := "http://" + l.Addr().String()
	fmt.Printf("serving |V|=%d |E|=%d on %s\n\n", d.G.NumNodes(), d.G.NumEdges(), base)

	// The pattern of the README quickstart: movies from the 1990s that
	// won an award, with one of their actors.
	pat := `
u1: award
u2: year (>= 1990, <= 2000)
u3: movie
u4: actor
u3 -> u1, u2
u3 -> u4
`
	// Ask twice: the second answer comes from the LRU result cache.
	for i := 0; i < 2; i++ {
		body, _ := json.Marshal(server.QueryRequest{Pattern: pat, Sem: "subgraph", Limit: 3})
		resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var qr server.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || qr.Stats == nil {
			log.Fatalf("query %d failed with status %d", i+1, resp.StatusCode)
		}
		fmt.Printf("query %d: status=%d matches=%d/%d cached=%v accessed=%d nodes+%d edges\n",
			i+1, resp.StatusCode, len(qr.Matches), qr.Count, qr.Cached,
			qr.Stats.NodesAccessed, qr.Stats.EdgesAccessed)
		for _, m := range qr.Matches {
			fmt.Printf("  match: %v = %v\n", qr.Vars, m)
		}
	}

	// /stats shows the engine and cache counters.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nstats: served=%d engine_completed=%d cache_hits=%d cache_misses=%d\n",
		st.Served, st.Engine.Completed, st.Cache.Hits, st.Cache.Misses)

	// Graceful shutdown: stop accepting, drain in-flight requests.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained, engine closed")
}
