// Incremental maintenance of access-constraint indices (§II of the paper,
// "Maintaining access constraints"). The indices that power bounded query
// plans must track the graph as it changes; re-building them from scratch
// on every update would reintroduce the |G| dependence the whole approach
// removes. This example applies a stream of updates — new movies, new
// cast edges, deletions — maintaining the indices incrementally (touching
// only ΔG ∪ Nb(ΔG)) and re-answering a bounded query after each batch.
package main

import (
	"fmt"
	"log"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
	"boundedg/internal/workload"
)

func main() {
	d := workload.IMDb(0.1, 99)
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		log.Fatalf("schema violated: %v", viols[0])
	}

	q := pattern.MustParse(`
		a: award
		y: year (>= 1980)
		m: movie
		m -> a
		m -> y
	`, d.In)
	plan, err := core.NewPlan(q, d.Schema, core.Subgraph)
	if err != nil {
		log.Fatal(err)
	}
	count := func() int {
		res, _, err := plan.EvalSubgraph(d.G, idx, match.SubgraphOptions{})
		if err != nil {
			log.Fatal(err)
		}
		return res.Count
	}
	fmt.Printf("initial award-winning movies (>= 1980): %d matches\n", count())

	lMovie := d.In.Intern("movie")
	lYear := d.In.Intern("year")
	lAward := d.In.Intern("award")

	// Pick a (year >= 1980, award) pair with spare winner capacity.
	var year, award graph.NodeID = graph.InvalidNode, graph.InvalidNode
	for _, y := range d.G.NodesByLabel(lYear) {
		if v := d.G.ValueOf(y); v.Kind == graph.KindInt && v.I >= 1980 {
			year = y
			break
		}
	}
	for _, a := range d.G.NodesByLabel(lAward) {
		award = a
		break
	}
	if year == graph.InvalidNode || award == graph.InvalidNode {
		log.Fatal("fixture missing year/award")
	}

	// Batch 1: insert a new award-winning movie.
	delta := &graph.Delta{
		AddNodes: []graph.NodeSpec{{Label: lMovie, Value: graph.IntValue(999999)}},
		AddEdges: [][2]graph.NodeID{
			{graph.NewNodeRef(0), year},
			{graph.NewNodeRef(0), award},
		},
	}
	_, viols2, err := idx.ApplyDelta(d.G, delta)
	if err != nil {
		log.Fatal(err)
	}
	if len(viols2) > 0 {
		// The (year, award) pair may already hold 4 winners; in a real
		// deployment the writer would reject or re-route the update.
		fmt.Printf("update broke a cardinality constraint: %v\n", viols2[0])
	}
	fmt.Printf("after inserting a winner:                 %d matches\n", count())

	// Batch 2: retract the award edge again.
	newMovie := d.G.NodesByLabel(lMovie)[d.G.CountLabel(lMovie)-1]
	retract := &graph.Delta{DelEdges: [][2]graph.NodeID{{newMovie, award}}}
	if _, _, err := idx.ApplyDelta(d.G, retract); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after retracting the award:               %d matches\n", count())

	// Verify incremental state equals a from-scratch rebuild.
	fresh, fviols := access.Build(d.G, d.Schema)
	if fviols != nil {
		log.Fatalf("rebuild: %v", fviols[0])
	}
	if fresh.SizeNodes() != idx.SizeNodes() {
		log.Fatalf("incremental index diverged from rebuild: %d vs %d",
			idx.SizeNodes(), fresh.SizeNodes())
	}
	fmt.Println("incremental indices match a full rebuild")
}
