// Social-community analysis with simulation queries (the paper's
// motivating non-localized workload, Fig. 2 / Examples 2, 8, 9, 11).
//
// A community graph contains a long follow-cycle of alternating analysts
// (A) and brokers (B); a compliance officer (C) and a data vendor (D)
// both flag one broker. Two simulation queries ask for broker rings:
//
//   - Q1 (flags point INTO the broker) is NOT effectively bounded: its
//     answer can cover the whole cycle, so any exact algorithm must
//     inspect an amount of data proportional to |G|;
//   - Q2 (the broker reaches out to C and D) IS effectively bounded:
//     the plan fetches a handful of nodes regardless of the cycle length.
package main

import (
	"fmt"
	"log"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
)

func main() {
	in := graph.NewInterner()
	g := community(in, 500) // 1000-node cycle + anchors

	// Example 8's access schema A1.
	l := func(s string) graph.Label { return in.Intern(s) }
	schema := access.NewSchema(
		access.MustNew([]graph.Label{l("broker")}, l("analyst"), 2),
		access.MustNew([]graph.Label{l("officer"), l("vendor")}, l("broker"), 2),
		access.MustNew(nil, l("officer"), 1),
		access.MustNew(nil, l("vendor"), 1),
	)
	idx, viols := access.Build(g, schema)
	if viols != nil {
		log.Fatalf("schema violated: %v", viols[0])
	}

	q1 := pattern.MustParse(`
		a: analyst
		b: broker
		c: officer
		d: vendor
		a -> b
		b -> a
		c -> b
		d -> b
	`, in)
	q2 := pattern.MustParse(`
		a: analyst
		b: broker
		c: officer
		d: vendor
		a -> b
		b -> a
		b -> c
		b -> d
	`, in)

	for name, q := range map[string]*pattern.Pattern{"Q1": q1, "Q2": q2} {
		cov := core.EBnd(q, schema, core.Simulation)
		fmt.Printf("%s effectively bounded (simulation): %v\n", name, cov.Bounded)
	}

	// Q1 must be answered conventionally; its relation covers the cycle.
	res1 := match.GSim(q1, g)
	fmt.Printf("Q1 via gsim: matched=%v, %d pairs (grows with the cycle)\n", res1.Matched, res1.Pairs())

	// Q2 runs through a bounded plan, independent of the cycle length.
	plan, err := core.NewPlan(q2, schema, core.Simulation)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)
	res2, stats, err := plan.EvalSim(g, idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q2 via bSim: matched=%v, accessed %d nodes + %d edges of a %d-element graph\n",
		res2.Matched, stats.NodesAccessed, stats.EdgesAccessed, g.Size())

	// Sanity: the bounded answer equals the conventional one.
	direct := match.GSim(q2, g)
	fmt.Printf("agreement with gsim: %v\n", res2.Matched == direct.Matched)
}

// community builds the Fig. 2 graph shape at the given cycle size.
func community(in *graph.Interner, pairs int) *graph.Graph {
	g := graph.New(in)
	cycle := make([]graph.NodeID, 0, 2*pairs)
	for i := 0; i < pairs; i++ {
		cycle = append(cycle, g.AddNodeNamed("analyst", graph.IntValue(int64(i))))
		cycle = append(cycle, g.AddNodeNamed("broker", graph.IntValue(int64(i))))
	}
	for i := range cycle {
		g.MustAddEdge(cycle[i], cycle[(i+1)%len(cycle)])
	}
	officer := g.AddNodeNamed("officer", graph.NoValue())
	vendor := g.AddNodeNamed("vendor", graph.NoValue())
	g.MustAddEdge(officer, cycle[len(cycle)-1])
	g.MustAddEdge(vendor, cycle[len(cycle)-1])
	return g
}
