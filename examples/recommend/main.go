// Instance boundedness for a recommendation-style query load (§V of the
// paper). A recommendation service repeatedly evaluates a finite set of
// parameterized pattern templates. Some templates are not effectively
// bounded under the curated access schema — but for the concrete graph
// instance we can extend the schema with simple type-1/type-2 constraints
// (an M-bounded extension) discovered from the data, build their indices
// offline, and from then on answer every template by accessing a bounded
// amount of data.
package main

import (
	"fmt"
	"log"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
	"boundedg/internal/workload"
)

func main() {
	d := workload.IMDb(0.25, 7)
	l := func(s string) graph.Label { return d.In.Intern(s) }

	// A deliberately thin base schema: just the Example 3 core. Under it
	// some of the load is unbounded (nothing seeds years/genres).
	base := access.NewSchema(
		access.MustNew([]graph.Label{l("year"), l("award")}, l("movie"), 4),
		access.MustNew([]graph.Label{l("movie")}, l("actor"), 10),
		access.MustNew([]graph.Label{l("actor")}, l("country"), 1),
	)

	// The query load: three templates (instantiations vary predicates).
	load := []*pattern.Pattern{
		pattern.MustParse("m: movie\ny: year (>= 1990)\na: actor\nm -> y\nm -> a\n", d.In),
		pattern.MustParse("m: movie\na: actor\nc: country\nm -> a\na -> c\n", d.In),
		pattern.MustParse("g: genre\nm: movie\ny: year\nm -> g\nm -> y\n", d.In),
	}
	for i, q := range load {
		fmt.Printf("template %d effectively bounded under base schema: %v\n",
			i+1, core.EBChk(q, base))
	}

	// Find an M-bounded extension making the whole load instance-bounded.
	// Try increasing M until EEChk accepts (Proposition 5 guarantees some
	// M works).
	var am *access.Schema
	for m := 16; ; m *= 2 {
		ok, ext := core.EEChk(load, base, m, d.G, core.Subgraph)
		if ok {
			fmt.Printf("load instance-bounded with M = %d (%d constraints, %d added)\n",
				m, ext.Count(), ext.Count()-base.Count())
			am = ext
			break
		}
		if m > d.G.Size() {
			log.Fatal("no extension found below |G| — unexpected")
		}
	}

	// Per-template minimal M, for capacity planning.
	for i, q := range load {
		m, ok := core.MinimalM(q, base, d.G, core.Subgraph)
		fmt.Printf("template %d minimal M: %d (ok=%v)\n", i+1, m, ok)
	}

	// The maximum extension adds every qualifying constraint; finding the
	// MINIMUM one is logAPX-hard (§V, Remark), but the greedy
	// approximation usually needs only a handful — far fewer indices to
	// build and maintain.
	greedy, gok := core.GreedyExtension(load, base, d.G.Size(), d.G, core.Subgraph)
	if !gok {
		log.Fatal("greedy extension failed unexpectedly")
	}
	fmt.Printf("greedy extension: %d constraints (max extension had %d)\n",
		greedy.Count(), am.Count())
	am = greedy

	// Build the extended indices once, then serve the load boundedly.
	// Templates are planned once and re-instantiated with fresh
	// predicates per request (Plan.Rebind).
	idx, viols := access.Build(d.G, am)
	if viols != nil {
		log.Fatalf("extension violated: %v", viols[0])
	}
	for i, q := range load {
		tmpl, err := core.NewPlan(q, am, core.Subgraph)
		if err != nil {
			log.Fatalf("template %d: %v", i+1, err)
		}
		// Two instantiations of the same template, parameterized on the
		// template's year node when it has one.
		yearNodes := q.NodesWithLabel(d.In.Intern("year"))
		for _, yr := range []int64{1985, 2005} {
			preds := map[pattern.Node]pattern.Predicate{}
			for _, u := range yearNodes {
				preds[u] = pattern.Predicate{pattern.Ge(graph.IntValue(yr))}
			}
			inst := core.WithPredicates(q, preds)
			p, err := tmpl.Rebind(inst)
			if err != nil {
				log.Fatal(err)
			}
			res, stats, err := p.EvalSubgraph(d.G, idx, match.SubgraphOptions{MaxMatches: 1000})
			if err != nil {
				log.Fatalf("template %d: %v", i+1, err)
			}
			fmt.Printf("template %d (year >= %d): %d matches, accessed %d of %d graph elements\n",
				i+1, yr, res.Count, stats.Accessed(), d.G.Size())
		}
	}
}
