// Package boundedg's root benchmark suite regenerates every table and
// figure of the paper's evaluation (§VII) as a testing.B target. The
// benches run reduced configurations so `go test -bench=.` finishes in
// minutes; cmd/benchrunner runs the full-size sweeps and prints the
// tables recorded in EXPERIMENTS.md.
//
// Mapping (see DESIGN.md §3):
//
//	BenchmarkExp1BoundedPct   — Exp-1(1), % of effectively bounded queries
//	BenchmarkFig5VaryG        — Fig 5(a,e,i), eval time vs |G|
//	BenchmarkFig5VaryQ        — Fig 5(b,f,j), eval time vs #n
//	BenchmarkFig5VaryA        — Fig 5(c,g,k), bounded eval time vs ‖A‖
//	BenchmarkFig5Accessed     — Fig 5(d,h,l), accessed data / index size
//	BenchmarkFig6Subgraph     — Fig 6(a), min M for x% instance-bounded
//	BenchmarkFig6Simulation   — Fig 6(b)
//	BenchmarkExp3Algorithms   — Exp-3, EBChk/QPlan/sEBChk/sQPlan latency
//	BenchmarkAlgorithms/*     — per-algorithm comparison behind Fig 5
package boundedg

import (
	"fmt"
	"sync"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/exp"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
	"boundedg/internal/runtime"
	"boundedg/internal/workload"
)

// benchOpt keeps harness-level benches small; full sweeps live in
// cmd/benchrunner.
func benchOpt(ds string) exp.Options {
	return exp.Options{
		Dataset:       ds,
		Seed:          1,
		NumQueries:    5,
		BaselineSteps: 200_000,
		MatchLimit:    2_000,
		Scales:        []float64{0.1, 0.2},
	}
}

func BenchmarkExp1BoundedPct(b *testing.B) {
	opt := benchOpt("imdb")
	opt.NumQueries = 30
	for i := 0; i < b.N; i++ {
		if _, err := exp.BoundedPct(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5VaryG(b *testing.B) {
	for _, ds := range exp.DatasetNames() {
		b.Run(ds, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exp.Fig5VaryG(benchOpt(ds)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig5VaryQ(b *testing.B) {
	for _, ds := range exp.DatasetNames() {
		b.Run(ds, func(b *testing.B) {
			opt := benchOpt(ds)
			opt.NumQueries = 3
			for i := 0; i < b.N; i++ {
				if _, err := exp.Fig5VaryQ(opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig5VaryA(b *testing.B) {
	for _, ds := range exp.DatasetNames() {
		b.Run(ds, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exp.Fig5VaryA(benchOpt(ds)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig5Accessed(b *testing.B) {
	for _, ds := range exp.DatasetNames() {
		b.Run(ds, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exp.Fig5Accessed(benchOpt(ds)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig6Subgraph(b *testing.B) {
	opt := benchOpt("imdb")
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig6(opt, core.Subgraph); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Simulation(b *testing.B) {
	opt := benchOpt("imdb")
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig6(opt, core.Simulation); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPlans regenerates the QPlan-vs-naive ablation table.
func BenchmarkAblationPlans(b *testing.B) {
	opt := benchOpt("imdb")
	opt.NumQueries = 10
	for i := 0; i < b.N; i++ {
		if _, err := exp.Ablation(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExp3Algorithms(b *testing.B) {
	opt := benchOpt("imdb")
	opt.NumQueries = 20
	for i := 0; i < b.N; i++ {
		if _, err := exp.Exp3(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- per-algorithm micro-benches (the data behind Fig 5) ----

// benchEnv is the shared fixture: an IMDb-like graph at full scale, its
// index set, and a set of effectively bounded queries for each semantics
// with pre-generated plans. Per-op times aggregate a small query load,
// matching the paper's per-figure averages. Note that at laptop-scale |G|
// this sits near the bounded/direct crossover; the |G| sweep
// (BenchmarkFig5VaryG, cmd/benchrunner -exp fig5-varyg) is where the
// bounded-flat vs baseline-growing separation shows.
type benchEnv struct {
	d        *workload.Dataset
	idx      *access.IndexSet
	subQs    []*pattern.Pattern
	simQs    []*pattern.Pattern
	subPlans []*core.Plan
	simPlans []*core.Plan
}

// buildBenchEnv assembles the fixture for a load of numQueries random
// queries on the full-scale IMDb graph (seed 8 load, like the recorded
// harness runs).
func buildBenchEnv(numQueries int) benchEnv {
	d := workload.IMDb(1.0, 1)
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		panic(viols[0])
	}
	qs := workload.DefaultQueryGen.Generate(d, numQueries, 8)
	e := benchEnv{d: d, idx: idx}
	for _, q := range qs {
		if p, err := core.NewPlan(q, d.Schema, core.Subgraph); err == nil {
			e.subQs = append(e.subQs, q)
			e.subPlans = append(e.subPlans, p)
		}
		if p, err := core.NewPlan(q, d.Schema, core.Simulation); err == nil {
			e.simQs = append(e.simQs, q)
			e.simPlans = append(e.simPlans, p)
		}
	}
	return e
}

func requireEnv(b *testing.B, e *benchEnv) *benchEnv {
	if len(e.subPlans) == 0 || len(e.simPlans) == 0 {
		b.Fatal("no bounded bench queries found")
	}
	return e
}

var (
	envOnce sync.Once
	env     benchEnv
)

func getEnv(b *testing.B) *benchEnv {
	// Same dataset, seed and load as the recorded harness run (see
	// EXPERIMENTS.md): all effectively bounded queries of a 60-query
	// load, so per-op totals here aggregate the same workload the
	// tables report averages for.
	envOnce.Do(func() { env = buildBenchEnv(60) })
	return requireEnv(b, &env)
}

func BenchmarkAlgorithms(b *testing.B) {
	mopt := match.SubgraphOptions{MaxMatches: 2_000}
	bopt := match.SubgraphOptions{MaxMatches: 2_000, MaxSteps: 5_000_000}
	b.Run("bvf2", func(b *testing.B) {
		e := getEnv(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range e.subPlans {
				if _, _, err := p.EvalSubgraph(e.d.G, e.idx, mopt); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("vf2", func(b *testing.B) {
		e := getEnv(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range e.subQs {
				match.VF2(q, e.d.G, bopt)
			}
		}
	})
	b.Run("optvf2", func(b *testing.B) {
		e := getEnv(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range e.subQs {
				match.OptVF2(q, e.d.G, e.idx, bopt)
			}
		}
	})
	b.Run("bsim", func(b *testing.B) {
		e := getEnv(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range e.simPlans {
				if _, _, err := p.EvalSim(e.d.G, e.idx); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("gsim", func(b *testing.B) {
		e := getEnv(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range e.simQs {
				match.GSim(q, e.d.G)
			}
		}
	})
	b.Run("optgsim", func(b *testing.B) {
		e := getEnv(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range e.simQs {
				match.OptGSim(q, e.d.G, e.idx)
			}
		}
	})
}

// BenchmarkPlanning measures EBChk + QPlan in isolation (Exp-3's claim:
// milliseconds at most).
func BenchmarkPlanning(b *testing.B) {
	e := getEnv(b)
	b.Run("EBChk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.EBChk(e.subQs[0], e.d.Schema)
		}
	})
	b.Run("QPlan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewPlan(e.subQs[0], e.d.Schema, core.Subgraph); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sEBChk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SEBChk(e.simQs[0], e.d.Schema)
		}
	})
	b.Run("sQPlan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewPlan(e.simQs[0], e.d.Schema, core.Simulation); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIndexBuild measures offline index construction, the
// preprocessing cost the approach amortizes.
func BenchmarkIndexBuild(b *testing.B) {
	d := workload.IMDb(0.1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		access.BuildUnchecked(d.G, d.Schema)
	}
}

// BenchmarkIncrementalMaintenance measures index upkeep under updates:
// ApplyDelta (touching only ΔG ∪ Nb(ΔG)) versus rebuilding every index
// from scratch after the same update.
func BenchmarkIncrementalMaintenance(b *testing.B) {
	lMovieName, lYearName := "movie", "year"
	b.Run("ApplyDelta", func(b *testing.B) {
		d := workload.IMDb(0.1, 1)
		lMovie, lYear := d.In.Intern(lMovieName), d.In.Intern(lYearName)
		year := d.G.NodesByLabel(lYear)[0]
		idx, viols := access.Build(d.G, d.Schema)
		if viols != nil {
			b.Fatal(viols[0])
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ins := &graph.Delta{
				AddNodes: []graph.NodeSpec{{Label: lMovie, Value: graph.IntValue(int64(i))}},
				AddEdges: [][2]graph.NodeID{{graph.NewNodeRef(0), year}},
			}
			newIDs, _, err := idx.ApplyDelta(d.G, ins)
			if err != nil {
				b.Fatal(err)
			}
			del := &graph.Delta{DelNodes: newIDs}
			if _, _, err := idx.ApplyDelta(d.G, del); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Rebuild", func(b *testing.B) {
		d := workload.IMDb(0.1, 1)
		lMovie, lYear := d.In.Intern(lMovieName), d.In.Intern(lYearName)
		year := d.G.NodesByLabel(lYear)[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ins := &graph.Delta{
				AddNodes: []graph.NodeSpec{{Label: lMovie, Value: graph.IntValue(int64(i))}},
				AddEdges: [][2]graph.NodeID{{graph.NewNodeRef(0), year}},
			}
			newIDs, err := ins.Apply(d.G)
			if err != nil {
				b.Fatal(err)
			}
			access.BuildUnchecked(d.G, d.Schema)
			del := &graph.Delta{DelNodes: newIDs}
			if _, err := del.Apply(d.G); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- parallel runtime scaling benches ----

// engineEnv is the runtime fixture: the same full-scale IMDb graph and
// index shapes as benchEnv, with the heavier 100-query load the engine
// throughput tables in cmd/benchrunner (-exp engine) report on.
var (
	engineEnvOnce sync.Once
	engineEnvVal  benchEnv
)

func getEngineEnv(b *testing.B) *benchEnv {
	engineEnvOnce.Do(func() { engineEnvVal = buildBenchEnv(100) })
	return requireEnv(b, &engineEnvVal)
}

// engineQueries builds the mixed bounded workload (both semantics, plans
// pre-built) served to the engine and to the serial baseline loop.
func engineQueries(e *benchEnv, mopt match.SubgraphOptions) []runtime.Query {
	qs := make([]runtime.Query, 0, len(e.subPlans)+len(e.simPlans))
	for _, p := range e.subPlans {
		qs = append(qs, runtime.Query{Pattern: p.Q, Sem: core.Subgraph, Sub: mopt, Plan: p})
	}
	for _, p := range e.simPlans {
		qs = append(qs, runtime.Query{Pattern: p.Q, Sem: core.Simulation, Plan: p})
	}
	return qs
}

// BenchmarkEngineThroughput compares batch throughput of the parallel
// runtime against the serial evaluation loop on the standard bounded
// workload: "serial" plans+evaluates one query at a time through the
// baseline Plan.Exec path; "workers=N" serves the same batch through a
// runtime.Engine pool (frozen snapshot, per-worker scratch, concurrent
// queries). One op = one full batch.
func BenchmarkEngineThroughput(b *testing.B) {
	// Near-full enumeration (the paper's exact Q(G) configuration, like
	// exp.Default): the matching phase inside GQ is a real cost, which is
	// exactly what the engine's frozen-snapshot path accelerates.
	mopt := match.SubgraphOptions{MaxMatches: 200_000}
	b.Run("serial", func(b *testing.B) {
		e := getEngineEnv(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range e.subPlans {
				if _, _, err := p.EvalSubgraph(e.d.G, e.idx, mopt); err != nil {
					b.Fatal(err)
				}
			}
			for _, p := range e.simPlans {
				if _, _, err := p.EvalSim(e.d.G, e.idx); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := getEngineEnv(b)
			queries := engineQueries(e, mopt)
			eng, err := runtime.New(e.d.G, e.idx, runtime.Config{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range eng.EvalBatch(nil, queries) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkParallelExec measures one query's fetch phase as intra-query
// sharding scales: serial Plan.Exec versus ExecWith at increasing worker
// counts over a frozen snapshot.
func BenchmarkParallelExec(b *testing.B) {
	e := getEnv(b)
	p := e.subPlans[0]
	for _, pl := range e.subPlans {
		if pl.EstGQNodes() > p.EstGQNodes() {
			p = pl // largest fetch = most tuples to shard
		}
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Exec(e.d.G, e.idx); err != nil {
				b.Fatal(err)
			}
		}
	})
	fz := e.d.G.Freeze()
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := &core.ExecConfig{Workers: workers, Frozen: fz, Scratch: core.NewExecScratch()}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := p.ExecWith(e.d.G, e.idx, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGSimParallel measures full-graph simulation as the
// initialization phases are sharded (the fixpoint stays serial).
func BenchmarkGSimParallel(b *testing.B) {
	e := getEnv(b)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range e.simQs {
				match.GSim(q, e.d.G)
			}
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range e.simQs {
					match.GSimParallel(q, e.d.G, workers)
				}
			}
		})
	}
}
