module boundedg

go 1.24
