// Package ctxtest provides a deterministic context test double for the
// cancellation tests of internal/core and internal/runtime: both poll
// ctx.Err() (never Done()), so counting Err calls pins an abort to an
// exact poll point. Kept as one shared implementation so a change to the
// polling discipline updates every cancellation test together.
package ctxtest

import (
	"context"
	"sync/atomic"
	"time"
)

// CountingCtx implements context.Context and reports cancellation after
// a fixed number of Err polls. Done returns nil (it is never selected on
// by the code under test). Safe for concurrent polls — sharded execution
// polls from several goroutines.
type CountingCtx struct {
	// After is the number of Err calls that return nil before every
	// later call returns context.Canceled.
	After int64

	calls atomic.Int64
}

// Deadline implements context.Context.
func (c *CountingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

// Done implements context.Context; it returns nil because the engine and
// executor only ever poll Err.
func (c *CountingCtx) Done() <-chan struct{} { return nil }

// Value implements context.Context.
func (c *CountingCtx) Value(any) any { return nil }

// Err counts the poll and reports context.Canceled once After polls have
// passed.
func (c *CountingCtx) Err() error {
	if c.calls.Add(1) > c.After {
		return context.Canceled
	}
	return nil
}

// Calls returns how many times Err has been polled.
func (c *CountingCtx) Calls() int64 { return c.calls.Load() }
