// Package pattern implements pattern queries Q = (VQ, EQ, fQ, gQ) of the
// ICDE 2015 paper "Making Pattern Queries Bounded in Big Graphs": directed
// graphs whose nodes carry a label and a predicate (a conjunction of atomic
// comparisons on the node's attribute value). The same Pattern value is
// interpreted either via subgraph isomorphism (subgraph queries) or via
// graph simulation (simulation queries); the interpretation is chosen by
// the matcher, not the pattern.
package pattern

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"boundedg/internal/graph"
)

// Node identifies a pattern node; nodes are dense indices from 0.
type Node int

// Errors returned by pattern construction.
var (
	ErrNoSuchNode = errors.New("pattern: no such node")
	ErrDupEdge    = errors.New("pattern: duplicate edge")
	ErrSelfLoop   = errors.New("pattern: self loop")
)

// Pattern is a pattern query. The zero Pattern is not ready; call New.
type Pattern struct {
	interner *graph.Interner

	labels []graph.Label
	preds  []Predicate
	names  []string // optional display names (u1, u2, ...)

	out, in [][]Node
	edges   map[[2]Node]struct{}
}

// New returns an empty pattern sharing the given interner (nil for fresh).
func New(in *graph.Interner) *Pattern {
	if in == nil {
		in = graph.NewInterner()
	}
	return &Pattern{interner: in, edges: make(map[[2]Node]struct{})}
}

// Interner returns the shared label interner.
func (p *Pattern) Interner() *graph.Interner { return p.interner }

// AddNode inserts a node with label l and predicate pred.
func (p *Pattern) AddNode(l graph.Label, pred Predicate) Node {
	u := Node(len(p.labels))
	p.labels = append(p.labels, l)
	p.preds = append(p.preds, pred)
	p.names = append(p.names, fmt.Sprintf("u%d", int(u)+1))
	p.out = append(p.out, nil)
	p.in = append(p.in, nil)
	return u
}

// AddNodeNamed interns the label name and inserts a node.
func (p *Pattern) AddNodeNamed(label string, pred Predicate) Node {
	return p.AddNode(p.interner.Intern(label), pred)
}

// SetName attaches a display name to u (used by the DSL and printers).
func (p *Pattern) SetName(u Node, name string) {
	if p.contains(u) {
		p.names[u] = name
	}
}

// Name returns u's display name.
func (p *Pattern) Name(u Node) string {
	if !p.contains(u) {
		return fmt.Sprintf("<node %d>", int(u))
	}
	return p.names[u]
}

func (p *Pattern) contains(u Node) bool { return u >= 0 && int(u) < len(p.labels) }

// AddEdge inserts the directed pattern edge (from, to). Self loops are
// rejected: under subgraph isomorphism a self loop requires a loop in G,
// which our simple graphs exclude; keeping patterns loop-free keeps both
// semantics aligned.
func (p *Pattern) AddEdge(from, to Node) error {
	if !p.contains(from) || !p.contains(to) {
		return ErrNoSuchNode
	}
	if from == to {
		return ErrSelfLoop
	}
	k := [2]Node{from, to}
	if _, ok := p.edges[k]; ok {
		return ErrDupEdge
	}
	p.edges[k] = struct{}{}
	p.out[from] = append(p.out[from], to)
	p.in[to] = append(p.in[to], from)
	return nil
}

// MustAddEdge is AddEdge, panicking on error; for tests and fixtures.
func (p *Pattern) MustAddEdge(from, to Node) {
	if err := p.AddEdge(from, to); err != nil {
		panic(fmt.Sprintf("pattern: AddEdge(%d,%d): %v", from, to, err))
	}
}

// HasEdge reports whether (from, to) is a pattern edge.
func (p *Pattern) HasEdge(from, to Node) bool {
	_, ok := p.edges[[2]Node{from, to}]
	return ok
}

// LabelOf returns fQ(u).
func (p *Pattern) LabelOf(u Node) graph.Label {
	if !p.contains(u) {
		return graph.NoLabel
	}
	return p.labels[u]
}

// PredOf returns gQ(u).
func (p *Pattern) PredOf(u Node) Predicate {
	if !p.contains(u) {
		return nil
	}
	return p.preds[u]
}

// Out returns u's children (targets of edges from u). Shared slice.
func (p *Pattern) Out(u Node) []Node {
	if !p.contains(u) {
		return nil
	}
	return p.out[u]
}

// In returns u's parents (sources of edges into u). Shared slice.
func (p *Pattern) In(u Node) []Node {
	if !p.contains(u) {
		return nil
	}
	return p.in[u]
}

// Neighbors returns the deduplicated union of parents and children of u.
func (p *Pattern) Neighbors(u Node) []Node {
	if !p.contains(u) {
		return nil
	}
	res := make([]Node, 0, len(p.out[u])+len(p.in[u]))
	res = append(res, p.out[u]...)
	for _, w := range p.in[u] {
		if !p.HasEdge(u, w) {
			res = append(res, w)
		}
	}
	return res
}

// NumNodes returns |VQ|.
func (p *Pattern) NumNodes() int { return len(p.labels) }

// NumEdges returns |EQ|.
func (p *Pattern) NumEdges() int { return len(p.edges) }

// Size returns |Q| = |VQ| + |EQ|.
func (p *Pattern) Size() int { return p.NumNodes() + p.NumEdges() }

// Nodes returns all pattern nodes, in order.
func (p *Pattern) Nodes() []Node {
	out := make([]Node, p.NumNodes())
	for i := range out {
		out[i] = Node(i)
	}
	return out
}

// Edges calls fn for every edge, in a deterministic order.
func (p *Pattern) Edges(fn func(from, to Node) bool) {
	keys := make([][2]Node, 0, len(p.edges))
	for k := range p.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		if !fn(k[0], k[1]) {
			return
		}
	}
}

// EdgeList returns all edges in deterministic order.
func (p *Pattern) EdgeList() [][2]Node {
	out := make([][2]Node, 0, len(p.edges))
	p.Edges(func(from, to Node) bool {
		out = append(out, [2]Node{from, to})
		return true
	})
	return out
}

// NodesWithLabel returns the pattern nodes labeled l.
func (p *Pattern) NodesWithLabel(l graph.Label) []Node {
	var out []Node
	for i, pl := range p.labels {
		if pl == l {
			out = append(out, Node(i))
		}
	}
	return out
}

// LabelSet returns the distinct labels used by the pattern, sorted.
func (p *Pattern) LabelSet() []graph.Label {
	seen := make(map[graph.Label]struct{})
	for _, l := range p.labels {
		seen[l] = struct{}{}
	}
	out := make([]graph.Label, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ParentsHaveDistinctLabels reports whether, for every node of Q, its
// parents carry pairwise distinct labels — the first special case of
// Theorem 2 under which EBChk runs in O(|A||EQ| + |VQ|²).
func (p *Pattern) ParentsHaveDistinctLabels() bool {
	for u := range p.labels {
		seen := make(map[graph.Label]struct{}, len(p.in[u]))
		for _, w := range p.in[u] {
			l := p.labels[w]
			if _, dup := seen[l]; dup {
				return false
			}
			seen[l] = struct{}{}
		}
	}
	return true
}

// Connected reports whether the pattern is weakly connected (treating
// edges as undirected). The paper's generated queries are connected.
func (p *Pattern) Connected() bool {
	n := p.NumNodes()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []Node{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range p.Neighbors(u) {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// Validate checks structural sanity: at least one node, and weak
// connectivity (disconnected patterns are legal in the theory but the
// evaluation pipeline assumes connectivity, as do the paper's workloads).
func (p *Pattern) Validate() error {
	if p.NumNodes() == 0 {
		return errors.New("pattern: empty pattern")
	}
	if !p.Connected() {
		return errors.New("pattern: not weakly connected")
	}
	return nil
}

// MatchesNode reports whether data node v of g satisfies u's label and
// predicate — the node-level compatibility test shared by both semantics.
func (p *Pattern) MatchesNode(u Node, g *graph.Graph, v graph.NodeID) bool {
	return g.LabelOf(v) == p.labels[u] && p.preds[u].Eval(g.ValueOf(v))
}

// Clone returns a deep copy of p sharing the interner.
func (p *Pattern) Clone() *Pattern {
	c := New(p.interner)
	c.labels = append([]graph.Label(nil), p.labels...)
	c.preds = make([]Predicate, len(p.preds))
	for i, pr := range p.preds {
		c.preds[i] = append(Predicate(nil), pr...)
	}
	c.names = append([]string(nil), p.names...)
	c.out = make([][]Node, len(p.out))
	c.in = make([][]Node, len(p.in))
	for i := range p.out {
		c.out[i] = append([]Node(nil), p.out[i]...)
		c.in[i] = append([]Node(nil), p.in[i]...)
	}
	for k := range p.edges {
		c.edges[k] = struct{}{}
	}
	return c
}

// Reverse returns a copy of p with every edge direction flipped. Example 9
// of the paper builds Q2 from Q1 this way (for two specific edges); tests
// use Reverse for whole-pattern flips.
func (p *Pattern) Reverse() *Pattern {
	c := New(p.interner)
	c.labels = append([]graph.Label(nil), p.labels...)
	c.preds = make([]Predicate, len(p.preds))
	for i, pr := range p.preds {
		c.preds[i] = append(Predicate(nil), pr...)
	}
	c.names = append([]string(nil), p.names...)
	c.out = make([][]Node, len(p.out))
	c.in = make([][]Node, len(p.in))
	for k := range p.edges {
		c.edges[[2]Node{k[1], k[0]}] = struct{}{}
		c.out[k[1]] = append(c.out[k[1]], k[0])
		c.in[k[0]] = append(c.in[k[0]], k[1])
	}
	return c
}

// String renders the pattern in the DSL accepted by Parse.
func (p *Pattern) String() string {
	var b strings.Builder
	for i, l := range p.labels {
		fmt.Fprintf(&b, "%s: %s", p.names[i], p.interner.Name(l))
		if !p.preds[i].IsTrue() {
			b.WriteString(" " + p.preds[i].String())
		}
		b.WriteByte('\n')
	}
	p.Edges(func(from, to Node) bool {
		fmt.Fprintf(&b, "%s -> %s\n", p.names[from], p.names[to])
		return true
	})
	return b.String()
}
