package pattern

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"boundedg/internal/graph"
)

// Parse reads a pattern from the small text DSL used by the CLI tools and
// examples. The format is line-oriented:
//
//	# comment
//	u1: award                       node "u1" labeled award
//	u2: year (>= 2011, <= 2013)     node with a predicate conjunction
//	u6: country
//	u3 -> u1, u2                    edges u3->u1 and u3->u2
//
// Node lines are "name: label" with an optional parenthesized predicate
// list; edge lines are "src -> dst[, dst...]". Constants are int64 literals
// or double-quoted strings. Names must be declared before use in edges.
func Parse(src string, in *graph.Interner) (*Pattern, error) {
	p := New(in)
	byName := make(map[string]Node)
	sc := bufio.NewScanner(strings.NewReader(src))
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.Contains(line, "->"):
			if err := parseEdgeLine(p, byName, line); err != nil {
				return nil, fmt.Errorf("pattern: line %d: %w", lineno, err)
			}
		case strings.Contains(line, ":"):
			if err := parseNodeLine(p, byName, line); err != nil {
				return nil, fmt.Errorf("pattern: line %d: %w", lineno, err)
			}
		default:
			return nil, fmt.Errorf("pattern: line %d: cannot parse %q", lineno, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.NumNodes() == 0 {
		return nil, fmt.Errorf("pattern: no nodes declared")
	}
	return p, nil
}

// MustParse is Parse, panicking on error; for fixtures.
func MustParse(src string, in *graph.Interner) *Pattern {
	p, err := Parse(src, in)
	if err != nil {
		panic(err)
	}
	return p
}

func parseNodeLine(p *Pattern, byName map[string]Node, line string) error {
	name, rest, _ := strings.Cut(line, ":")
	name = strings.TrimSpace(name)
	rest = strings.TrimSpace(rest)
	if name == "" {
		return fmt.Errorf("empty node name")
	}
	if _, dup := byName[name]; dup {
		return fmt.Errorf("node %q declared twice", name)
	}
	label := rest
	var pred Predicate
	if i := strings.IndexByte(rest, '('); i >= 0 {
		if !strings.HasSuffix(rest, ")") {
			return fmt.Errorf("unterminated predicate in %q", rest)
		}
		label = strings.TrimSpace(rest[:i])
		var err error
		pred, err = parsePredicate(rest[i+1 : len(rest)-1])
		if err != nil {
			return err
		}
	}
	if label == "" {
		return fmt.Errorf("node %q has no label", name)
	}
	u := p.AddNodeNamed(label, pred)
	p.SetName(u, name)
	byName[name] = u
	return nil
}

func parseEdgeLine(p *Pattern, byName map[string]Node, line string) error {
	src, rest, _ := strings.Cut(line, "->")
	src = strings.TrimSpace(src)
	from, ok := byName[src]
	if !ok {
		return fmt.Errorf("unknown node %q", src)
	}
	for _, dst := range strings.Split(rest, ",") {
		dst = strings.TrimSpace(dst)
		to, ok := byName[dst]
		if !ok {
			return fmt.Errorf("unknown node %q", dst)
		}
		if err := p.AddEdge(from, to); err != nil {
			return fmt.Errorf("edge %s -> %s: %w", src, dst, err)
		}
	}
	return nil
}

func parsePredicate(s string) (Predicate, error) {
	var pred Predicate
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		atom, err := parseAtom(part)
		if err != nil {
			return nil, err
		}
		pred = append(pred, atom)
	}
	return pred, nil
}

func parseAtom(s string) (Atom, error) {
	// Two-char operators first.
	var opTok, rest string
	switch {
	case strings.HasPrefix(s, "<="), strings.HasPrefix(s, ">="), strings.HasPrefix(s, "=="):
		opTok, rest = s[:2], s[2:]
	case strings.HasPrefix(s, "<"), strings.HasPrefix(s, ">"), strings.HasPrefix(s, "="):
		opTok, rest = s[:1], s[1:]
	default:
		return Atom{}, fmt.Errorf("cannot parse atom %q", s)
	}
	op, err := ParseOp(opTok)
	if err != nil {
		return Atom{}, err
	}
	c, err := parseConstant(strings.TrimSpace(rest))
	if err != nil {
		return Atom{}, err
	}
	return Atom{Op: op, C: c}, nil
}

func parseConstant(s string) (graph.Value, error) {
	if s == "" {
		return graph.Value{}, fmt.Errorf("missing constant")
	}
	if s[0] == '"' {
		u, err := strconv.Unquote(s)
		if err != nil {
			return graph.Value{}, fmt.Errorf("bad string constant %q: %w", s, err)
		}
		return graph.StringValue(u), nil
	}
	i, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return graph.Value{}, fmt.Errorf("bad numeric constant %q: %w", s, err)
	}
	return graph.IntValue(i), nil
}
