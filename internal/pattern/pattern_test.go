package pattern

import (
	"reflect"
	"strings"
	"testing"

	"boundedg/internal/graph"
)

// q0 builds the paper's Fig. 1 pattern Q0: award, year(2011-2013), movie,
// actor, actress, country, with movie->award, movie->year, movie->actor,
// movie->actress, actor->country, actress->country.
func q0(t testing.TB, in *graph.Interner) *Pattern {
	t.Helper()
	p := New(in)
	award := p.AddNodeNamed("award", nil)
	year := p.AddNodeNamed("year", Predicate{Ge(graph.IntValue(2011)), Le(graph.IntValue(2013))})
	movie := p.AddNodeNamed("movie", nil)
	actor := p.AddNodeNamed("actor", nil)
	actress := p.AddNodeNamed("actress", nil)
	country := p.AddNodeNamed("country", nil)
	p.MustAddEdge(movie, award)
	p.MustAddEdge(movie, year)
	p.MustAddEdge(movie, actor)
	p.MustAddEdge(movie, actress)
	p.MustAddEdge(actor, country)
	p.MustAddEdge(actress, country)
	return p
}

func TestBasicConstruction(t *testing.T) {
	p := q0(t, nil)
	if p.NumNodes() != 6 || p.NumEdges() != 6 {
		t.Fatalf("|VQ|=%d |EQ|=%d, want 6, 6", p.NumNodes(), p.NumEdges())
	}
	if p.Size() != 12 {
		t.Fatalf("Size = %d", p.Size())
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	movie := Node(2)
	if got := len(p.Out(movie)); got != 4 {
		t.Fatalf("Out(movie) = %d, want 4", got)
	}
	country := Node(5)
	if got := len(p.In(country)); got != 2 {
		t.Fatalf("In(country) = %d, want 2", got)
	}
	if !p.HasEdge(movie, Node(0)) || p.HasEdge(Node(0), movie) {
		t.Fatalf("edge orientation wrong")
	}
}

func TestEdgeErrors(t *testing.T) {
	p := New(nil)
	a := p.AddNodeNamed("A", nil)
	b := p.AddNodeNamed("B", nil)
	if err := p.AddEdge(a, a); err != ErrSelfLoop {
		t.Fatalf("self loop err = %v", err)
	}
	if err := p.AddEdge(a, 99); err != ErrNoSuchNode {
		t.Fatalf("missing node err = %v", err)
	}
	if err := p.AddEdge(a, b); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := p.AddEdge(a, b); err != ErrDupEdge {
		t.Fatalf("dup err = %v", err)
	}
}

func TestNeighborsAndLabelQueries(t *testing.T) {
	p := New(nil)
	a := p.AddNodeNamed("A", nil)
	b := p.AddNodeNamed("B", nil)
	c := p.AddNodeNamed("A", nil)
	p.MustAddEdge(a, b)
	p.MustAddEdge(b, a)
	p.MustAddEdge(c, b)
	if n := p.Neighbors(a); len(n) != 1 || n[0] != b {
		t.Fatalf("Neighbors(a) = %v", n)
	}
	la := p.LabelOf(a)
	if got := p.NodesWithLabel(la); !reflect.DeepEqual(got, []Node{a, c}) {
		t.Fatalf("NodesWithLabel(A) = %v", got)
	}
	if ls := p.LabelSet(); len(ls) != 2 {
		t.Fatalf("LabelSet = %v", ls)
	}
}

func TestParentsHaveDistinctLabels(t *testing.T) {
	p := q0(t, nil)
	if !p.ParentsHaveDistinctLabels() {
		t.Fatalf("Q0 parents should have distinct labels")
	}
	// country has parents actor and actress: distinct. Add a second actor
	// pointing at country to break it.
	actor2 := p.AddNodeNamed("actor", nil)
	p.MustAddEdge(actor2, Node(5))
	p.MustAddEdge(Node(2), actor2) // keep connected
	if p.ParentsHaveDistinctLabels() {
		t.Fatalf("duplicate parent label not detected")
	}
}

func TestValidateDisconnected(t *testing.T) {
	p := New(nil)
	p.AddNodeNamed("A", nil)
	p.AddNodeNamed("B", nil)
	if err := p.Validate(); err == nil {
		t.Fatalf("disconnected pattern should fail validation")
	}
	if err := New(nil).Validate(); err == nil {
		t.Fatalf("empty pattern should fail validation")
	}
}

func TestPredicateEval(t *testing.T) {
	pred := Predicate{Ge(graph.IntValue(2011)), Le(graph.IntValue(2013))}
	cases := []struct {
		v    graph.Value
		want bool
	}{
		{graph.IntValue(2010), false},
		{graph.IntValue(2011), true},
		{graph.IntValue(2012), true},
		{graph.IntValue(2013), true},
		{graph.IntValue(2014), false},
		{graph.StringValue("2012"), false}, // kind mismatch
		{graph.NoValue(), false},
	}
	for _, c := range cases {
		if got := pred.Eval(c.v); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	if !True.Eval(graph.NoValue()) {
		t.Fatalf("True must accept everything")
	}
	if True.String() != "true" {
		t.Fatalf("True.String() = %q", True.String())
	}
}

func TestPredicateOps(t *testing.T) {
	v5 := graph.IntValue(5)
	cases := []struct {
		a    Atom
		v    graph.Value
		want bool
	}{
		{Eq(v5), graph.IntValue(5), true},
		{Eq(v5), graph.IntValue(6), false},
		{Gt(v5), graph.IntValue(6), true},
		{Gt(v5), graph.IntValue(5), false},
		{Lt(v5), graph.IntValue(4), true},
		{Lt(v5), graph.IntValue(5), false},
		{Le(v5), graph.IntValue(5), true},
		{Le(v5), graph.IntValue(6), false},
		{Ge(v5), graph.IntValue(5), true},
		{Ge(v5), graph.IntValue(4), false},
		{Eq(graph.StringValue("x")), graph.StringValue("x"), true},
		{Lt(graph.StringValue("b")), graph.StringValue("a"), true},
	}
	for i, c := range cases {
		if got := c.a.Eval(c.v); got != c.want {
			t.Errorf("case %d: %v.Eval(%v) = %v", i, c.a, c.v, got)
		}
	}
}

func TestPredicateAnd(t *testing.T) {
	p := True.And(Ge(graph.IntValue(1)))
	q := p.And(Le(graph.IntValue(3)))
	if len(p) != 1 || len(q) != 2 {
		t.Fatalf("And lengths: %d %d", len(p), len(q))
	}
	if !q.Eval(graph.IntValue(2)) || q.Eval(graph.IntValue(4)) {
		t.Fatalf("conjunction wrong")
	}
}

func TestParseOpErrors(t *testing.T) {
	if _, err := ParseOp("!="); err == nil {
		t.Fatalf("!= should not parse")
	}
	for _, s := range []string{"=", "==", ">", "<", ">=", "<="} {
		if _, err := ParseOp(s); err != nil {
			t.Fatalf("ParseOp(%q): %v", s, err)
		}
	}
}

const q0DSL = `
# Q0 from Fig. 1
u1: award
u2: year (>= 2011, <= 2013)
u3: movie
u4: actor
u5: actress
u6: country
u3 -> u1, u2
u3 -> u4, u5
u4 -> u6
u5 -> u6
`

func TestParseQ0(t *testing.T) {
	p, err := Parse(q0DSL, nil)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.NumNodes() != 6 || p.NumEdges() != 6 {
		t.Fatalf("|VQ|=%d |EQ|=%d", p.NumNodes(), p.NumEdges())
	}
	want := q0(t, p.Interner())
	if !samePattern(p, want) {
		t.Fatalf("parsed pattern differs from builder pattern:\n%v\nvs\n%v", p, want)
	}
	year := Node(1)
	if !p.PredOf(year).Eval(graph.IntValue(2012)) || p.PredOf(year).Eval(graph.IntValue(2015)) {
		t.Fatalf("year predicate wrong: %v", p.PredOf(year))
	}
}

func TestParseStringConstant(t *testing.T) {
	p, err := Parse("a: person (= \"alice\")\nb: person\na -> b\n", nil)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !p.PredOf(0).Eval(graph.StringValue("alice")) {
		t.Fatalf("string predicate wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                        // no nodes
		"a: A\nb -> a\n",          // unknown edge src
		"a: A\na -> b\n",          // unknown edge dst
		"a: A\na: B\n",            // duplicate name
		"a:\n",                    // missing label
		": A\n",                   // missing name
		"a: A (>= )\n",            // missing constant
		"a: A (?? 3)\n",           // bad operator
		"a: A (>= \"unclosed)\n",  // bad string
		"a: A (> 1.5)\n",          // non-integer
		"garbage line\n",          // unparseable
		"a: A (>= 1\n",            // unterminated predicate
		"a: A\nb: B\na -> b, b\n", // duplicate edge
		"a: A\na -> a\n",          // self loop
	}
	for i, src := range cases {
		if _, err := Parse(src, nil); err == nil {
			t.Errorf("case %d (%q): want parse error", i, src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	p := q0(t, nil)
	s := p.String()
	p2, err := Parse(s, p.Interner())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s)
	}
	if !samePattern(p, p2) {
		t.Fatalf("round trip changed pattern:\n%s\nvs\n%s", s, p2)
	}
	if !strings.Contains(s, ">= 2011") {
		t.Fatalf("predicate not rendered: %s", s)
	}
}

func TestCloneAndReverse(t *testing.T) {
	p := q0(t, nil)
	c := p.Clone()
	c.MustAddEdge(Node(0), Node(1)) // award -> year only in clone
	if p.HasEdge(Node(0), Node(1)) {
		t.Fatalf("clone shares edges")
	}
	r := p.Reverse()
	if r.NumEdges() != p.NumEdges() {
		t.Fatalf("reverse edge count")
	}
	p.Edges(func(from, to Node) bool {
		if !r.HasEdge(to, from) {
			t.Fatalf("edge (%d,%d) not reversed", from, to)
		}
		return true
	})
	if r.LabelOf(Node(2)) != p.LabelOf(Node(2)) {
		t.Fatalf("reverse changed labels")
	}
}

func TestMatchesNode(t *testing.T) {
	in := graph.NewInterner()
	p := q0(t, in)
	g := graph.New(in)
	y2012 := g.AddNodeNamed("year", graph.IntValue(2012))
	y2000 := g.AddNodeNamed("year", graph.IntValue(2000))
	award := g.AddNodeNamed("award", graph.NoValue())
	year := Node(1)
	if !p.MatchesNode(year, g, y2012) {
		t.Fatalf("2012 should match")
	}
	if p.MatchesNode(year, g, y2000) {
		t.Fatalf("2000 must not match")
	}
	if p.MatchesNode(year, g, award) {
		t.Fatalf("label mismatch must not match")
	}
}

// samePattern compares structure by label/pred/edges under identical node
// ordering (sufficient for these tests where construction order matches).
func samePattern(a, b *Pattern) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for i := 0; i < a.NumNodes(); i++ {
		if a.LabelOf(Node(i)) != b.LabelOf(Node(i)) {
			return false
		}
		if len(a.PredOf(Node(i))) != len(b.PredOf(Node(i))) {
			return false
		}
	}
	same := true
	a.Edges(func(from, to Node) bool {
		if !b.HasEdge(from, to) {
			same = false
			return false
		}
		return true
	})
	return same
}

// TestReverseInvolution: reversing twice restores the edge set.
func TestReverseInvolution(t *testing.T) {
	p := q0(t, nil)
	rr := p.Reverse().Reverse()
	if rr.NumEdges() != p.NumEdges() {
		t.Fatalf("edge count changed")
	}
	p.Edges(func(from, to Node) bool {
		if !rr.HasEdge(from, to) {
			t.Fatalf("edge (%d,%d) lost", from, to)
		}
		return true
	})
}

// TestEdgeListDeterministic: EdgeList is sorted and stable.
func TestEdgeListDeterministic(t *testing.T) {
	p := q0(t, nil)
	a := p.EdgeList()
	b := p.EdgeList()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("EdgeList not stable")
	}
	for i := 1; i < len(a); i++ {
		if a[i-1][0] > a[i][0] || (a[i-1][0] == a[i][0] && a[i-1][1] >= a[i][1]) {
			t.Fatalf("EdgeList not sorted: %v", a)
		}
	}
}

// TestNameFallbacks: accessors behave on invalid nodes.
func TestNameFallbacks(t *testing.T) {
	p := New(nil)
	if p.Name(5) == "" {
		t.Fatalf("invalid node should still render")
	}
	p.SetName(9, "x") // must not panic
	if p.LabelOf(9) != graph.NoLabel {
		t.Fatalf("invalid LabelOf")
	}
	if p.PredOf(9) != nil || p.Out(9) != nil || p.In(9) != nil || p.Neighbors(9) != nil {
		t.Fatalf("invalid accessors should be nil")
	}
}
