package pattern_test

import (
	"reflect"
	"testing"

	"boundedg/internal/graph"
	"boundedg/internal/pattern"
	"boundedg/internal/workload"
)

// FuzzParsePattern fuzzes the query DSL parser. Two properties:
//
//  1. Parse never panics — it either returns a pattern or an error, on
//     arbitrary byte soup.
//  2. Round trip: a successfully parsed pattern renders (String) back to
//     DSL that re-parses to a structurally identical pattern — same
//     names, labels, predicates and edges. The HTTP server leans on this
//     (String is the cache normalization key), so a parse/print mismatch
//     would silently alias distinct queries.
//
// The seed corpus mixes hand-written edge cases with the paper's query
// generator (queries.go) rendered over two workload datasets.
func FuzzParsePattern(f *testing.F) {
	seeds := []string{
		"",
		"# only a comment\n",
		"u1: movie",
		"u1: award\nu2: year (>= 2011, <= 2013)\nu3: movie\nu3 -> u1, u2",
		"a: x (= \"UK\")\nb: y (> -42)\na -> b",
		"n: label (>= 1, < 100, = 5)\n",
		"u1: movie\nu1 -> u1",                      // self loop
		"u1: movie\nu2: movie\nu1 -> u2\nu1 -> u2", // duplicate edge
		"x: (>= 1)",             // missing label
		"x: l (>= )",            // missing constant
		"x: l (>= 1",            // unterminated predicate
		"-> b",                  // edge without source
		"a: b: c\nd: e\na -> d", // colon inside a label
		"q: v (= \"quote \\\" in string\")",
		"u1: movie\r\nu2: year\r\nu1 -> u2\r\n", // CRLF
	}
	for _, s := range seeds {
		f.Add(s)
	}
	for _, d := range []*workload.Dataset{workload.IMDb(0.02, 1), workload.DBpedia(0.02, 2)} {
		for _, q := range workload.DefaultQueryGen.Generate(d, 6, 5) {
			f.Add(q.String())
		}
	}

	f.Fuzz(func(t *testing.T, src string) {
		in := graph.NewInterner()
		q, err := pattern.Parse(src, in)
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := pattern.Parse(rendered, graph.NewInterner())
		if err != nil {
			t.Fatalf("round trip failed: Parse(%q).String() = %q does not re-parse: %v", src, rendered, err)
		}
		if q.NumNodes() != q2.NumNodes() || q.NumEdges() != q2.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d edges (src %q)",
				q.NumNodes(), q2.NumNodes(), q.NumEdges(), q2.NumEdges(), src)
		}
		for _, u := range q.Nodes() {
			if q.Name(u) != q2.Name(u) {
				t.Fatalf("round trip changed node %d name %q -> %q (src %q)", u, q.Name(u), q2.Name(u), src)
			}
			if q.Interner().Name(q.LabelOf(u)) != q2.Interner().Name(q2.LabelOf(u)) {
				t.Fatalf("round trip changed node %q label (src %q)", q.Name(u), src)
			}
			if !reflect.DeepEqual(q.PredOf(u), q2.PredOf(u)) {
				t.Fatalf("round trip changed node %q predicate %v -> %v (src %q)",
					q.Name(u), q.PredOf(u), q2.PredOf(u), src)
			}
		}
		if !reflect.DeepEqual(q.EdgeList(), q2.EdgeList()) {
			t.Fatalf("round trip changed edges (src %q)", src)
		}
	})
}
