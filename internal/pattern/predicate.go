package pattern

import (
	"fmt"
	"strings"

	"boundedg/internal/graph"
)

// Op is a comparison operator in an atomic predicate formula. The paper
// (§II) allows =, >, <, <= and >=.
type Op uint8

// Comparison operators.
const (
	OpEQ Op = iota
	OpGT
	OpLT
	OpLE
	OpGE
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case OpEQ:
		return "="
	case OpGT:
		return ">"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGE:
		return ">="
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ParseOp parses one of the five operator tokens.
func ParseOp(s string) (Op, error) {
	switch s {
	case "=", "==":
		return OpEQ, nil
	case ">":
		return OpGT, nil
	case "<":
		return OpLT, nil
	case "<=":
		return OpLE, nil
	case ">=":
		return OpGE, nil
	}
	return 0, fmt.Errorf("pattern: unknown operator %q", s)
}

// Atom is one atomic formula "fQ(u) op c" of a node predicate.
type Atom struct {
	Op Op
	C  graph.Value
}

// Eval reports whether value v satisfies the atom. Values of a different
// kind than the constant never satisfy it.
func (a Atom) Eval(v graph.Value) bool {
	cmp, ok := v.Compare(a.C)
	if !ok {
		return false
	}
	switch a.Op {
	case OpEQ:
		return cmp == 0
	case OpGT:
		return cmp > 0
	case OpLT:
		return cmp < 0
	case OpLE:
		return cmp <= 0
	case OpGE:
		return cmp >= 0
	}
	return false
}

// String renders the atom, e.g. ">= 2011".
func (a Atom) String() string { return a.Op.String() + " " + a.C.String() }

// Predicate is the conjunction gQ(u) of atomic formulas attached to a
// pattern node. A nil or empty Predicate is "true".
type Predicate []Atom

// True is the empty predicate, satisfied by every value.
var True = Predicate(nil)

// Eval reports whether v satisfies every atom of the conjunction.
func (p Predicate) Eval(v graph.Value) bool {
	for _, a := range p {
		if !a.Eval(v) {
			return false
		}
	}
	return true
}

// IsTrue reports whether the predicate has no atoms.
func (p Predicate) IsTrue() bool { return len(p) == 0 }

// And returns the conjunction of p with more atoms.
func (p Predicate) And(atoms ...Atom) Predicate {
	return append(append(Predicate(nil), p...), atoms...)
}

// String renders the conjunction, e.g. "(>= 2011, <= 2013)".
func (p Predicate) String() string {
	if p.IsTrue() {
		return "true"
	}
	parts := make([]string, len(p))
	for i, a := range p {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Convenience constructors for atoms.

// Eq returns the atom "= c".
func Eq(c graph.Value) Atom { return Atom{Op: OpEQ, C: c} }

// Gt returns the atom "> c".
func Gt(c graph.Value) Atom { return Atom{Op: OpGT, C: c} }

// Lt returns the atom "< c".
func Lt(c graph.Value) Atom { return Atom{Op: OpLT, C: c} }

// Le returns the atom "<= c".
func Le(c graph.Value) Atom { return Atom{Op: OpLE, C: c} }

// Ge returns the atom ">= c".
func Ge(c graph.Value) Atom { return Atom{Op: OpGE, C: c} }
