package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"boundedg/internal/graph"
	"boundedg/internal/server"
	"boundedg/internal/sub"
)

// subscriber is one continuous-query worker: it registers a
// subscription and folds its event stream into rows, reconnecting on
// stream loss, so the run can check the folded state against a fresh
// /query once the writers stop.
type subscriber struct {
	pattern string
	limit   int

	mu    sync.Mutex
	rows  [][]graph.NodeID
	epoch uint64

	events, diffs, resyncs, heartbeats atomic.Uint64
	reconnects, foldErrs               atomic.Uint64
}

// fold applies one event to the folded state. It returns false on a
// protocol violation — the local state and the stream disagree — in
// which case the caller drops the connection and resyncs via the init
// event of a fresh stream.
func (s *subscriber) fold(ev sub.Event, measured bool) bool {
	if measured {
		s.events.Add(1)
		switch ev.Type {
		case sub.TypeDiff:
			s.diffs.Add(1)
		case sub.TypeResync:
			s.resyncs.Add(1)
		case sub.TypeHeartbeat:
			s.heartbeats.Add(1)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rows, err := sub.Fold(s.rows, ev)
	if err != nil {
		s.foldErrs.Add(1)
		return false
	}
	s.rows = rows
	if ev.Epoch > s.epoch {
		s.epoch = ev.Epoch
	}
	return true
}

// folded snapshots the current folded rows.
func (s *subscriber) folded() [][]graph.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// runSubscriber registers s's pattern and folds its event stream until
// stop closes. stream must be a client WITHOUT a request timeout — the
// response body lives for the whole run; cfg.Client (with its timeout)
// still handles the short registration POST.
func runSubscriber(cfg Config, stream *http.Client, s *subscriber, measured *atomic.Bool, stop chan struct{}) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	eventsPath := ""
	connected := false
	for ctx.Err() == nil {
		if eventsPath == "" {
			body, err := json.Marshal(server.SubscribeRequest{Pattern: s.pattern, Limit: s.limit})
			if err != nil {
				return
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.Addr+"/subscribe", bytes.NewReader(body))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := cfg.Client.Do(req)
			if err != nil {
				sleepCtx(ctx, 100*time.Millisecond)
				continue
			}
			var sr server.SubscribeResponse
			derr := json.NewDecoder(resp.Body).Decode(&sr)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || derr != nil {
				sleepCtx(ctx, 100*time.Millisecond)
				continue
			}
			s.limit = sr.Limit
			eventsPath = sr.Events
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.Addr+eventsPath, nil)
		if err != nil {
			return
		}
		resp, err := stream.Do(req)
		if err != nil {
			sleepCtx(ctx, 50*time.Millisecond)
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			// The subscription is gone (daemon restart); re-register.
			resp.Body.Close()
			eventsPath = ""
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			sleepCtx(ctx, 100*time.Millisecond)
			continue
		}
		if connected && measured.Load() {
			s.reconnects.Add(1)
		}
		connected = true
		dec := sub.NewDecoder(resp.Body)
		for {
			ev, err := dec.Next()
			if err != nil {
				break
			}
			if !s.fold(ev, measured.Load()) {
				break
			}
		}
		resp.Body.Close()
	}
}

// rowsEqual compares two sorted row sets.
func rowsEqual(a, b [][]graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// subsConverge checks, after the writers have stopped, that every
// subscriber's folded stream state reaches the answer a fresh /query
// returns. Truncated oracle answers (Complete false) are skipped —
// which rows survive a limit cut is search-order dependent.
func subsConverge(cfg Config, subs []*subscriber) (convergeMS float64, mismatches uint64, err error) {
	t0 := time.Now()
	deadline := t0.Add(10 * time.Second)
	for _, s := range subs {
		body, err := json.Marshal(server.QueryRequest{Pattern: s.pattern, Sem: "subgraph", Limit: s.limit})
		if err != nil {
			return 0, 0, err
		}
		resp, err := cfg.Client.Post(cfg.Addr+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, 0, fmt.Errorf("loadgen: convergence oracle query: %w", err)
		}
		var qr server.QueryResponse
		derr := json.NewDecoder(resp.Body).Decode(&qr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || derr != nil {
			return 0, 0, fmt.Errorf("loadgen: convergence oracle query: HTTP %d", resp.StatusCode)
		}
		if !qr.Complete {
			continue
		}
		for {
			if rowsEqual(s.folded(), qr.Matches) {
				break
			}
			if time.Now().After(deadline) {
				mismatches++
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if mismatches == 0 {
		convergeMS = float64(time.Since(t0)) / float64(time.Millisecond)
	} else {
		convergeMS = -1
	}
	return convergeMS, mismatches, nil
}
