// Package loadgen drives a running boundedgd daemon with a mixed
// read/write HTTP workload and reports log-linear latency histograms per
// op class — the measurement harness behind cmd/loadgen and the
// BENCH_loadgen.json trajectory.
//
// Workers are closed-loop by default: each issues its next request only
// after the previous response lands, so offered load adapts to the
// server instead of queueing unboundedly. A target rate turns the pool
// open-loop: workers pace requests to the schedule and the histogram
// then includes coordinated-omission-free queueing delay.
//
// The generator regenerates the daemon's dataset from the same
// (dataset, scale, seed) triple, so it knows the live node IDs and the
// schema without asking the server: reads are bounded pattern queries
// from the standard workload generator, writes are add-edge deltas on
// zipf- or uniform-selected live endpoints, each followed by its
// compensating delete so the graph orbits its initial state and node
// IDs stay valid for the whole run.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"boundedg/internal/exp"
	"boundedg/internal/graph"
	"boundedg/internal/hist"
	"boundedg/internal/server"
	"boundedg/internal/workload"
)

// Config parameterizes one load run. Addr is required; zero values
// elsewhere pick the defaults noted on each field.
type Config struct {
	// Addr is the daemon's base URL ("http://host:port") or bare
	// "host:port".
	Addr string
	// FollowerAddr, when set, routes every read to this daemon (a -follow
	// replica of Addr) while writes keep going to Addr, and the report
	// gains a Replication block with the follower's lag over the run.
	FollowerAddr string
	// Dataset/Scale/Seed must match the flags the daemon was started
	// with — the generator rebuilds the same graph locally to learn live
	// node IDs and generate answerable queries. Defaults: imdb, 1.0, 1.
	Dataset string
	Scale   float64
	Seed    int64
	// Workers is the concurrent worker count (default 8).
	Workers int
	// Rate, in requests/sec across the pool, switches to open-loop
	// pacing; 0 (default) is closed-loop.
	Rate float64
	// ReadPct in [0,1] is the fraction of ops that are queries
	// (default 0.9). Writes come in add+compensating-delete pairs; each
	// half counts as one op.
	ReadPct float64
	// ZipfS skews update endpoint selection: 0 (default) is uniform,
	// values > 1 are the zipf s parameter (smaller = heavier skew
	// toward the hottest nodes as s→1).
	ZipfS float64
	// Warmup runs load without recording (default 1s); Duration is the
	// measured window (default 10s).
	Warmup   time.Duration
	Duration time.Duration
	// Queries is the number of generated patterns cycled by readers
	// (default 16).
	Queries int
	// Subscribers opens this many continuous-query subscriptions
	// (POST /subscribe + event stream) against Addr for the whole run,
	// each folding its stream locally; the report gains a Subscriptions
	// block with event rates and a post-run folded-state-vs-/query
	// convergence check. 0 (default) disables.
	Subscribers int
	// Timeout bounds each HTTP request (default 30s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests inject the httptest
	// server's).
	Client *http.Client
}

func (c Config) withDefaults() (Config, error) {
	if c.Addr == "" {
		return c, fmt.Errorf("loadgen: Addr is required")
	}
	if !strings.Contains(c.Addr, "://") {
		c.Addr = "http://" + c.Addr
	}
	c.Addr = strings.TrimRight(c.Addr, "/")
	if c.FollowerAddr != "" {
		if !strings.Contains(c.FollowerAddr, "://") {
			c.FollowerAddr = "http://" + c.FollowerAddr
		}
		c.FollowerAddr = strings.TrimRight(c.FollowerAddr, "/")
	}
	if c.Dataset == "" {
		c.Dataset = "imdb"
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.ReadPct == 0 {
		c.ReadPct = 0.9
	}
	if c.ReadPct < 0 || c.ReadPct > 1 {
		return c, fmt.Errorf("loadgen: ReadPct must be in [0,1], got %v", c.ReadPct)
	}
	if c.ZipfS != 0 && c.ZipfS <= 1 {
		return c, fmt.Errorf("loadgen: ZipfS must be 0 (uniform) or > 1, got %v", c.ZipfS)
	}
	if c.Warmup == 0 {
		c.Warmup = time.Second
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.Queries <= 0 {
		c.Queries = 16
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.Timeout}
	}
	return c, nil
}

// ClassReport is one op class's measured-window figures.
type ClassReport struct {
	// Ops counts completed requests (verdict rejections included).
	Ops uint64 `json:"ops"`
	// Rejects counts well-formed verdict rejections (409 conflicts and
	// 422 violations) — expected under concurrent edge churn, and not
	// errors.
	Rejects uint64 `json:"rejects,omitempty"`
	// Errors counts transport failures and 5xx responses.
	Errors uint64 `json:"errors"`
	// Latency digests the client-observed round-trip times.
	Latency hist.Summary `json:"latency"`
}

// CacheReport is the daemon result cache's activity across the run
// (warmup included), computed as the difference of the /stats cache
// counters between the bracketing scrapes. HitRate is hits over cache
// lookups (hits + misses); RevalidationRate is the fraction of hits that
// were stale entries promoted by delta-intersection revalidation rather
// than served at their original epoch. All zero against a daemon running
// with the cache disabled.
type CacheReport struct {
	Hits        uint64  `json:"hits"`
	Misses      uint64  `json:"misses"`
	Revalidated uint64  `json:"revalidated"`
	Recomputed  uint64  `json:"recomputed"`
	RingOutrun  uint64  `json:"ring_outrun"`
	HitRate     float64 `json:"hit_rate"`
	RevalRate   float64 `json:"revalidation_rate"`
}

// Report is the outcome of one Run, ready for BENCH_loadgen.json.
type Report struct {
	Name        string  `json:"name,omitempty"`
	Workers     int     `json:"workers"`
	ReadPct     float64 `json:"read_pct"`
	ZipfS       float64 `json:"zipf_s"`
	RateOps     float64 `json:"rate_ops,omitempty"`
	WarmupSec   float64 `json:"warmup_sec"`
	MeasuredSec float64 `json:"measured_sec"`

	Read  ClassReport `json:"read"`
	Write ClassReport `json:"write"`
	// OpsPerSec is total measured throughput (reads + writes).
	OpsPerSec float64 `json:"ops_per_sec"`

	// GSNStart/GSNEnd bracket the run via /stats; OrderViolations
	// counts update responses whose epoch ran backwards within a single
	// worker — always 0 against a correct server.
	GSNStart        uint64 `json:"gsn_start"`
	GSNEnd          uint64 `json:"gsn_end"`
	OrderViolations uint64 `json:"order_violations"`

	// ServerLatency is the daemon's own /stats handling-time block at
	// run end, separating server time from client-side queueing.
	ServerLatency server.LatencyStats `json:"server_latency"`

	// Cache is the daemon result cache's activity over the run. In a
	// follower-read run this is the FOLLOWER's cache (reads land there).
	Cache CacheReport `json:"cache"`

	// FollowerAddr and Replication are set on follower-read runs
	// (Config.FollowerAddr): reads were served by that replica, and
	// Replication summarizes its lag behind the primary.
	FollowerAddr string     `json:"follower_addr,omitempty"`
	Replication  *LagReport `json:"replication,omitempty"`

	// Subscriptions is set when Config.Subscribers > 0.
	Subscriptions *SubReport `json:"subscriptions,omitempty"`
}

// SubReport summarizes the subscriber workers' view of the run. The
// event counters cover the measured window; the convergence figures
// come from the post-run check, where each subscriber's folded stream
// state must reach the answer a fresh /query returns once writes stop.
type SubReport struct {
	Subscribers int `json:"subscribers"`
	// Events counts every stream event observed in the measured window;
	// Diffs/Resyncs/Heartbeats split it by type (init events make up
	// the remainder).
	Events     uint64 `json:"events"`
	Diffs      uint64 `json:"diffs"`
	Resyncs    uint64 `json:"resyncs"`
	Heartbeats uint64 `json:"heartbeats"`
	// Reconnects counts stream re-establishments after the first
	// connect, summed over subscribers.
	Reconnects uint64 `json:"reconnects"`
	// EventsPerSec is Events over the measured window.
	EventsPerSec float64 `json:"events_per_sec"`
	// FoldErrors counts protocol violations while folding (a diff that
	// removed an absent row or added a duplicate) — always 0 against a
	// correct server.
	FoldErrors uint64 `json:"fold_errors"`
	// ConvergeMS is how long after the load stopped the slowest
	// subscriber needed to fold its way to the oracle answer, or -1 if
	// one had not within 10s (then Mismatches > 0).
	ConvergeMS float64 `json:"converge_ms"`
	// Mismatches counts subscribers whose folded state never converged
	// to the post-run /query answer — always 0 against a correct server.
	Mismatches uint64 `json:"mismatches"`
}

// LagReport summarizes a follower's replication lag over a run, from its
// /stats replication block sampled every 50ms during the measured window
// plus a final drain check after the load stops.
type LagReport struct {
	// MaxLag/MeanLag/Samples summarize the measured-window lag samples
	// (epochs behind the primary per the last received chunk).
	MaxLag  uint64  `json:"max_lag"`
	MeanLag float64 `json:"mean_lag"`
	Samples int     `json:"samples"`
	// EndAppliedEpoch, EndPrimaryEpoch and EndLag are the follower's
	// state after the drain window.
	EndAppliedEpoch uint64 `json:"end_applied_epoch"`
	EndPrimaryEpoch uint64 `json:"end_primary_epoch"`
	EndLag          uint64 `json:"end_lag"`
	// Reconnects is the growth of the follower's reconnect counter over
	// the run — 0 on a healthy link.
	Reconnects uint64 `json:"reconnects"`
	// CatchupMS is how long after the last write the follower needed to
	// reach the primary's final epoch, or -1 if it had not within 10s.
	CatchupMS float64 `json:"catchup_ms"`
}

// run-shared mutable state, split from Report so workers touch only
// atomics.
type counters struct {
	readOps, readErrs              atomic.Uint64
	writeOps, writeRejs, writeErrs atomic.Uint64
	orderViol                      atomic.Uint64
}

// Run executes one load run against cfg.Addr and returns its report.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	d, err := exp.Gen(cfg.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	live := d.G.NodeList()
	if len(live) == 0 {
		return nil, fmt.Errorf("loadgen: generated dataset has no nodes")
	}
	qs := workload.DefaultQueryGen.Generate(d, cfg.Queries, cfg.Seed+1)
	if len(qs) == 0 {
		return nil, fmt.Errorf("loadgen: no queries generated")
	}
	qbodies := make([][]byte, 0, 2*len(qs))
	for i, q := range qs {
		sem := "subgraph"
		if i%2 == 1 {
			sem = "simulation"
		}
		b, err := json.Marshal(server.QueryRequest{Pattern: q.String(), Sem: sem})
		if err != nil {
			return nil, err
		}
		qbodies = append(qbodies, b)
	}

	startStats, err := scrapeStats(cfg.Client, cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("loadgen: cannot reach %s: %w", cfg.Addr, err)
	}
	var followerStart *server.StatsResponse
	if cfg.FollowerAddr != "" {
		followerStart, err = scrapeStats(cfg.Client, cfg.FollowerAddr)
		if err != nil {
			return nil, fmt.Errorf("loadgen: cannot reach follower %s: %w", cfg.FollowerAddr, err)
		}
		if followerStart.Replication == nil {
			return nil, fmt.Errorf("loadgen: %s is not a follower (no replication block in /stats)", cfg.FollowerAddr)
		}
	}

	var (
		cnt      counters
		measured atomic.Bool
		readH    = &hist.H{}
		writeH   = &hist.H{}
		stop     = make(chan struct{})
		wg       sync.WaitGroup
	)
	// Open-loop pacing: each worker owns every Workers-th slot of the
	// global schedule.
	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(cfg.Workers) / cfg.Rate * float64(time.Second))
	}
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker(cfg, id, d.In, live, qbodies, &cnt, &measured, readH, writeH, interval, stop)
		}(w)
	}

	// Subscriber workers hold one event stream each for the whole run;
	// they outlive the load (stopped by subStop, not stop) so the
	// post-run convergence check can watch their folded state catch up.
	var (
		subs    []*subscriber
		subWg   sync.WaitGroup
		subStop chan struct{}
	)
	if cfg.Subscribers > 0 {
		// Only bounded patterns can subscribe (the stream's first
		// evaluation refuses unbounded ones with 422, and the post-run
		// convergence oracle re-runs the query) — probe each candidate
		// with a cheap /query before handing it to a subscriber.
		var patterns []string
		for _, q := range qs {
			b, err := json.Marshal(server.QueryRequest{Pattern: q.String(), Sem: "subgraph", Limit: 1})
			if err != nil {
				return nil, err
			}
			resp, err := cfg.Client.Post(cfg.Addr+"/query", "application/json", bytes.NewReader(b))
			if err != nil {
				return nil, fmt.Errorf("loadgen: probing subscriber pattern: %w", err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				patterns = append(patterns, q.String())
			}
			if len(patterns) == cfg.Subscribers {
				break
			}
		}
		if len(patterns) == 0 {
			return nil, fmt.Errorf("loadgen: no bounded query pattern for subscribers")
		}
		// The shared client's request timeout would kill a long-lived
		// stream response mid-run; streams get a timeout-free copy.
		stream := *cfg.Client
		stream.Timeout = 0
		subStop = make(chan struct{})
		for i := 0; i < cfg.Subscribers; i++ {
			s := &subscriber{pattern: patterns[i%len(patterns)], limit: 10000}
			subs = append(subs, s)
			subWg.Add(1)
			go func() {
				defer subWg.Done()
				runSubscriber(cfg, &stream, s, &measured, subStop)
			}()
		}
	}

	// Lag sampler: poll the follower's replication block through the
	// measured window.
	var (
		lagSamples []uint64
		lagStop    chan struct{}
		lagDone    chan struct{}
	)
	if cfg.FollowerAddr != "" {
		lagStop, lagDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(lagDone)
			tick := time.NewTicker(50 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-lagStop:
					return
				case <-tick.C:
				}
				if !measured.Load() {
					continue
				}
				if st, err := scrapeStats(cfg.Client, cfg.FollowerAddr); err == nil && st.Replication != nil {
					lagSamples = append(lagSamples, st.Replication.Lag)
				}
			}
		}()
	}

	sleep := func(dur time.Duration) {
		t := time.NewTimer(dur)
		defer t.Stop()
		<-t.C
	}
	sleep(cfg.Warmup)
	measured.Store(true)
	t0 := time.Now()
	sleep(cfg.Duration)
	measured.Store(false)
	elapsed := time.Since(t0)
	close(stop)
	wg.Wait()

	endStats, err := scrapeStats(cfg.Client, cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("loadgen: final /stats scrape: %w", err)
	}

	rep := &Report{
		Workers:     cfg.Workers,
		ReadPct:     cfg.ReadPct,
		ZipfS:       cfg.ZipfS,
		RateOps:     cfg.Rate,
		WarmupSec:   cfg.Warmup.Seconds(),
		MeasuredSec: elapsed.Seconds(),
		Read: ClassReport{
			Ops:     cnt.readOps.Load(),
			Errors:  cnt.readErrs.Load(),
			Latency: readH.Summarize(),
		},
		Write: ClassReport{
			Ops:     cnt.writeOps.Load(),
			Rejects: cnt.writeRejs.Load(),
			Errors:  cnt.writeErrs.Load(),
			Latency: writeH.Summarize(),
		},
		GSNStart:        startStats.Epoch,
		GSNEnd:          endStats.Epoch,
		OrderViolations: cnt.orderViol.Load(),
		ServerLatency:   endStats.Latency,
	}
	rep.OpsPerSec = float64(rep.Read.Ops+rep.Write.Ops) / elapsed.Seconds()
	rep.Cache = cacheDelta(startStats.Cache, endStats.Cache)
	if cfg.Subscribers > 0 {
		convMS, mismatches, cerr := subsConverge(cfg, subs)
		close(subStop)
		subWg.Wait()
		if cerr != nil {
			return nil, cerr
		}
		sr := &SubReport{Subscribers: cfg.Subscribers, ConvergeMS: convMS, Mismatches: mismatches}
		for _, s := range subs {
			sr.Events += s.events.Load()
			sr.Diffs += s.diffs.Load()
			sr.Resyncs += s.resyncs.Load()
			sr.Heartbeats += s.heartbeats.Load()
			sr.Reconnects += s.reconnects.Load()
			sr.FoldErrors += s.foldErrs.Load()
		}
		sr.EventsPerSec = float64(sr.Events) / elapsed.Seconds()
		rep.Subscriptions = sr
	}
	if cfg.FollowerAddr != "" {
		close(lagStop)
		<-lagDone
		lr := &LagReport{CatchupMS: -1, Samples: len(lagSamples)}
		for _, l := range lagSamples {
			if l > lr.MaxLag {
				lr.MaxLag = l
			}
			lr.MeanLag += float64(l)
		}
		if lr.Samples > 0 {
			lr.MeanLag /= float64(lr.Samples)
		}
		// Drain: give the follower up to 10s to reach the primary's
		// post-run epoch, and time how long it takes.
		t0 := time.Now()
		fin := followerStart
		for deadline := t0.Add(10 * time.Second); ; {
			fin, err = scrapeStats(cfg.Client, cfg.FollowerAddr)
			if err != nil {
				return nil, fmt.Errorf("loadgen: follower /stats scrape: %w", err)
			}
			if fin.Replication.AppliedEpoch >= endStats.Epoch {
				lr.CatchupMS = float64(time.Since(t0)) / float64(time.Millisecond)
				break
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		lr.EndAppliedEpoch = fin.Replication.AppliedEpoch
		lr.EndPrimaryEpoch = fin.Replication.PrimaryEpoch
		lr.EndLag = fin.Replication.Lag
		lr.Reconnects = fin.Replication.Reconnects - followerStart.Replication.Reconnects
		rep.FollowerAddr = cfg.FollowerAddr
		rep.Replication = lr
		// Reads were served by the follower, so the cache block that
		// matches them is the follower's.
		rep.Cache = cacheDelta(followerStart.Cache, fin.Cache)
	}
	return rep, nil
}

// cacheDelta subtracts the bracketing /stats cache counters and derives
// the rates.
func cacheDelta(start, end server.CacheStats) CacheReport {
	cr := CacheReport{
		Hits:        end.Hits - start.Hits,
		Misses:      end.Misses - start.Misses,
		Revalidated: end.Revalidated - start.Revalidated,
		Recomputed:  end.Recomputed - start.Recomputed,
		RingOutrun:  end.RingOutrun - start.RingOutrun,
	}
	if lookups := cr.Hits + cr.Misses; lookups > 0 {
		cr.HitRate = float64(cr.Hits) / float64(lookups)
	}
	if cr.Hits > 0 {
		cr.RevalRate = float64(cr.Revalidated) / float64(cr.Hits)
	}
	return cr
}

func scrapeStats(client *http.Client, addr string) (*server.StatsResponse, error) {
	resp, err := client.Get(addr + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/stats: HTTP %d", resp.StatusCode)
	}
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// worker runs one closed- or open-loop request loop until stop closes.
func worker(cfg Config, id int, in *graph.Interner, live []graph.NodeID, qbodies [][]byte, cnt *counters, measured *atomic.Bool, readH, writeH *hist.H, interval time.Duration, stop chan struct{}) {
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(id)))
	var zipf *rand.Zipf
	if cfg.ZipfS > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(live)-1))
	}
	pick := func() graph.NodeID {
		if zipf != nil {
			return live[zipf.Uint64()]
		}
		return live[rng.Intn(len(live))]
	}
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	// Reads go to the follower when one is targeted; writes always go to
	// the primary (the follower would 403 them).
	readAddr := cfg.Addr
	if cfg.FollowerAddr != "" {
		readAddr = cfg.FollowerAddr
	}
	var lastEpoch uint64

	// post runs one HTTP op and records it into h when the measured
	// window is open. It returns the status (0 on transport error) and
	// the decoded body for 200s on /update.
	post := func(addr, path string, body []byte, h *hist.H, ops, errs *atomic.Uint64) (int, []byte) {
		start := time.Now()
		resp, err := cfg.Client.Post(addr+path, "application/json", bytes.NewReader(body))
		status, raw := 0, []byte(nil)
		if err == nil {
			var buf bytes.Buffer
			_, rerr := buf.ReadFrom(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				status, raw = resp.StatusCode, buf.Bytes()
			}
		}
		if measured.Load() {
			h.ObserveSince(start)
			ops.Add(1)
			if status == 0 || status >= 500 {
				errs.Add(1)
			}
		}
		return status, raw
	}
	deltaBody := func(dl *graph.Delta) []byte {
		var buf bytes.Buffer
		if err := dl.WriteJSON(&buf, in); err != nil {
			panic("loadgen: delta encode: " + err.Error())
		}
		return buf.Bytes()
	}
	update := func(dl *graph.Delta) int {
		status, raw := post(cfg.Addr, "/update", deltaBody(dl), writeH, &cnt.writeOps, &cnt.writeErrs)
		switch {
		case status == http.StatusOK:
			var ur struct {
				Epoch uint64 `json:"epoch"`
			}
			if json.Unmarshal(raw, &ur) == nil {
				// Closed loop: this worker's previous update completed
				// before this one was sent, so epochs must never run
				// backwards.
				if ur.Epoch < lastEpoch {
					cnt.orderViol.Add(1)
				}
				lastEpoch = ur.Epoch
			}
		case status == http.StatusConflict || status == http.StatusUnprocessableEntity:
			if measured.Load() {
				cnt.writeRejs.Add(1)
			}
		}
		return status
	}

	next := time.Now()
	for !stopped() {
		if interval > 0 {
			next = next.Add(interval)
			if wait := time.Until(next); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-stop:
					t.Stop()
					return
				case <-t.C:
				}
			}
		}
		if rng.Float64() < cfg.ReadPct {
			post(readAddr, "/query", qbodies[rng.Intn(len(qbodies))], readH, &cnt.readOps, &cnt.readErrs)
			continue
		}
		u, v := pick(), pick()
		e := [2]graph.NodeID{u, v}
		if update(&graph.Delta{AddEdges: [][2]graph.NodeID{e}}) == http.StatusOK && !stopped() {
			// Compensate so the graph orbits its initial state. Under
			// concurrent churn the delete can 409 (another worker's
			// delete won the race) — a reject, not an error.
			update(&graph.Delta{DelEdges: [][2]graph.NodeID{e}})
		}
	}
}

// SweepDoc is the BENCH_loadgen.json document: one report per scenario.
type SweepDoc struct {
	Note string    `json:"note"`
	Runs []*Report `json:"runs"`
}

// Sweep runs the standard {read-heavy, write-heavy} × {uniform, zipf}
// grid plus a read-mostly-with-updates scenario (the cache-revalidation
// stress: a 95% read mix whose sparse writes keep advancing the epoch,
// so steady-state cache hits exist only because stale entries are
// promoted), with base's dataset, worker and timing knobs, naming each
// run. When base.FollowerAddr is set (-target-follower) the grid still
// runs against the primary alone, and one extra follower-reads scenario
// — writes to the primary, reads from the follower — closes the sweep
// with the replication lag block in its report.
func Sweep(base Config) (*SweepDoc, error) {
	doc := &SweepDoc{
		Note: "cmd/loadgen -sweep; closed-loop unless rate_ops is set; latencies are client-observed round trips in ns, server_latency is the daemon's own handling time",
	}
	grid := base
	grid.FollowerAddr = ""
	for _, mix := range []struct {
		tag string
		pct float64
	}{{"read-heavy", 0.9}, {"write-heavy", 0.1}} {
		for _, skew := range []struct {
			tag string
			s   float64
		}{{"uniform", 0}, {"zipf", 1.2}} {
			cfg := grid
			cfg.ReadPct = mix.pct
			cfg.ZipfS = skew.s
			rep, err := Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", mix.tag, skew.tag, err)
			}
			rep.Name = mix.tag + "/" + skew.tag
			doc.Runs = append(doc.Runs, rep)
		}
	}
	cfg := grid
	cfg.ReadPct = 0.95
	cfg.ZipfS = 0
	rep, err := Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("read-mostly/updates: %w", err)
	}
	rep.Name = "read-mostly/updates"
	doc.Runs = append(doc.Runs, rep)
	if base.FollowerAddr != "" {
		cfg := base
		cfg.ReadPct = 0.9
		cfg.ZipfS = 0
		rep, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("follower-reads/uniform: %w", err)
		}
		rep.Name = "follower-reads/uniform"
		doc.Runs = append(doc.Runs, rep)
	}
	return doc, nil
}
