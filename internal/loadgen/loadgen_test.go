package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"boundedg/internal/access"
	"boundedg/internal/exp"
	"boundedg/internal/graph"
	"boundedg/internal/replica"
	"boundedg/internal/runtime"
	"boundedg/internal/server"
	"boundedg/internal/store"
	"boundedg/internal/wal"
)

// TestSmoke drives an in-process boundedgd with a short mixed zipf load
// and pins the end-to-end contract: no transport or 5xx errors, GSN
// monotone, and a report that round-trips through JSON with every
// histogram field populated.
func TestSmoke(t *testing.T) {
	const (
		dataset = "imdb"
		scale   = 0.2
		seed    = 5
	)
	d, err := exp.Gen(dataset, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		t.Fatalf("index build: %v", viols[0])
	}
	eng, err := runtime.New(d.G, idx, runtime.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng, d.In, server.Config{EnableUpdates: true})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		eng.Close()
	}()

	rep, err := Run(Config{
		Addr:     ts.URL,
		Dataset:  dataset,
		Scale:    scale,
		Seed:     seed,
		Workers:  4,
		ReadPct:  0.5,
		ZipfS:    1.2,
		Warmup:   200 * time.Millisecond,
		Duration: 2 * time.Second,
		Client:   ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Read.Errors != 0 || rep.Write.Errors != 0 {
		t.Fatalf("errors: read=%d write=%d (transport/5xx must be zero)",
			rep.Read.Errors, rep.Write.Errors)
	}
	if rep.Read.Ops == 0 || rep.Write.Ops == 0 {
		t.Fatalf("empty op class: read=%d write=%d", rep.Read.Ops, rep.Write.Ops)
	}
	if rep.OrderViolations != 0 {
		t.Fatalf("GSN ran backwards %d times within a worker", rep.OrderViolations)
	}
	if rep.GSNEnd < rep.GSNStart {
		t.Fatalf("GSN regressed across the run: %d -> %d", rep.GSNStart, rep.GSNEnd)
	}
	if rep.GSNEnd == rep.GSNStart {
		t.Fatalf("no accepted updates despite %d write ops", rep.Write.Ops)
	}
	if rep.Read.Latency.Count != rep.Read.Ops || rep.Write.Latency.Count != rep.Write.Ops {
		t.Fatalf("histogram counts diverge from op counts: %d/%d read, %d/%d write",
			rep.Read.Latency.Count, rep.Read.Ops, rep.Write.Latency.Count, rep.Write.Ops)
	}

	// The report must round-trip through JSON with every histogram field
	// present — BENCH_loadgen.json consumers key on these names.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"read"`, `"write"`, `"ops"`, `"errors"`, `"latency"`,
		`"count"`, `"mean_ns"`, `"p50_ns"`, `"p95_ns"`, `"p99_ns"`, `"max_ns"`,
		`"ops_per_sec"`, `"gsn_start"`, `"gsn_end"`, `"order_violations"`,
		`"server_latency"`,
		`"cache"`, `"hits"`, `"misses"`, `"revalidated"`, `"recomputed"`,
		`"ring_outrun"`, `"hit_rate"`, `"revalidation_rate"`,
	} {
		if !bytes.Contains(raw, []byte(field)) {
			t.Fatalf("report JSON lacks %s:\n%s", field, raw)
		}
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Read.Latency.P95Ns < back.Read.Latency.P50Ns {
		t.Fatalf("read quantiles not monotone: %+v", back.Read.Latency)
	}

	// The daemon's own /stats histogram saw the same traffic.
	if rep.ServerLatency.Query.Count == 0 || rep.ServerLatency.Update.Count == 0 {
		t.Fatalf("server-side latency block empty: %+v", rep.ServerLatency)
	}

	// The daemon ran with its result cache on; cycling a fixed query set
	// must produce cache hits, and the hit rate must be consistent with
	// the raw counters.
	if rep.Cache.Hits == 0 {
		t.Fatalf("no cache hits despite a cycled query set: %+v", rep.Cache)
	}
	wantRate := float64(rep.Cache.Hits) / float64(rep.Cache.Hits+rep.Cache.Misses)
	if rep.Cache.HitRate != wantRate {
		t.Fatalf("hit_rate %v inconsistent with counters %+v", rep.Cache.HitRate, rep.Cache)
	}
}

// TestFollowerReadSmoke runs the -target-follower scenario in-process: a
// durable primary takes the writes, a -follow replica serves the reads,
// and the report's replication block shows the follower drained to the
// primary's final epoch.
func TestFollowerReadSmoke(t *testing.T) {
	const (
		dataset = "imdb"
		scale   = 0.2
		seed    = 5
	)
	d, err := exp.Gen(dataset, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		t.Fatalf("index build: %v", viols[0])
	}
	wd, err := wal.OpenDir(t.TempDir(), d.In)
	if err != nil {
		t.Fatal(err)
	}
	if err := wd.Init(0, d.G, idx); err != nil {
		t.Fatal(err)
	}
	st := store.New(d.G, idx, store.WithWAL(wd, true))
	eng, err := runtime.NewFromStore(st, runtime.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng, d.In, server.Config{EnableUpdates: true, WAL: wd})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		eng.Close()
		wd.Close()
	}()

	// The follower: bootstrap from the primary's checkpoint, stream its
	// WAL, serve read-only queries — exactly what boundedgd -follow wires.
	fin := graph.NewInterner()
	rep := replica.New(replica.Config{Primary: ts.URL}, fin)
	fg, fidx, epoch, err := rep.Bootstrap(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var opts []store.Option
	if epoch > 0 {
		opts = append(opts, store.WithBaseEpoch(epoch))
	}
	fst := store.New(fg, fidx, opts...)
	rep.Attach(fst)
	rctx, rcancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- rep.Run(rctx) }()
	feng, err := runtime.NewFromStore(fst, runtime.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	fsrv := server.New(feng, fin, server.Config{Follower: true, ReplicationStats: rep.Stats})
	fts := httptest.NewServer(fsrv.Handler())
	defer func() {
		fts.Close()
		rcancel()
		if err := <-runDone; err != nil {
			t.Errorf("replica run: %v", err)
		}
		feng.Close()
	}()

	report, err := Run(Config{
		Addr:         ts.URL,
		FollowerAddr: fts.URL,
		Dataset:      dataset,
		Scale:        scale,
		Seed:         seed,
		Workers:      4,
		ReadPct:      0.5,
		Warmup:       200 * time.Millisecond,
		Duration:     time.Second,
		Client:       ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}

	if report.Read.Errors != 0 || report.Write.Errors != 0 {
		t.Fatalf("errors: read=%d write=%d", report.Read.Errors, report.Write.Errors)
	}
	if report.Read.Ops == 0 || report.Write.Ops == 0 {
		t.Fatalf("empty op class: read=%d write=%d", report.Read.Ops, report.Write.Ops)
	}
	if report.FollowerAddr != fts.URL {
		t.Fatalf("follower addr %q, want %q", report.FollowerAddr, fts.URL)
	}
	lr := report.Replication
	if lr == nil {
		t.Fatal("follower-read report lacks the replication block")
	}
	if lr.CatchupMS < 0 {
		t.Fatalf("follower never caught up: %+v", lr)
	}
	if lr.EndLag != 0 || lr.EndAppliedEpoch < report.GSNEnd {
		t.Fatalf("follower drained to %+v, primary ended at epoch %d", lr, report.GSNEnd)
	}
	if lr.Reconnects != 0 {
		t.Fatalf("healthy in-process link reconnected %d times", lr.Reconnects)
	}

	// The lag block must survive the JSON round trip under these names —
	// BENCH_loadgen.json consumers key on them.
	raw, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"follower_addr"`, `"replication"`, `"max_lag"`, `"mean_lag"`, `"samples"`,
		`"end_applied_epoch"`, `"end_primary_epoch"`, `"end_lag"`, `"reconnects"`, `"catchup_ms"`,
	} {
		if !bytes.Contains(raw, []byte(field)) {
			t.Fatalf("report JSON lacks %s:\n%s", field, raw)
		}
	}
}

// TestConfigValidation pins the knob guard rails.
func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("missing Addr accepted")
	}
	if _, err := Run(Config{Addr: "x", ZipfS: 0.5}); err == nil {
		t.Fatal("ZipfS in (0,1] accepted; rand.NewZipf needs s > 1")
	}
	if _, err := Run(Config{Addr: "x", ReadPct: 1.5}); err == nil {
		t.Fatal("ReadPct > 1 accepted")
	}
}

// TestSubscribersSmoke is the continuous-query smoke: an in-process
// mutable daemon under a short zipf write mix with subscribers folding
// their event streams the whole time. The folded streams must fold
// cleanly (no protocol violations) and, once the writers stop, converge
// to what a fresh /query returns — the same equality the CI
// subscription job gates on. BOUNDEDG_SUBSMOKE_DURATION overrides the
// measured window.
func TestSubscribersSmoke(t *testing.T) {
	const (
		dataset = "imdb"
		scale   = 0.2
		seed    = 5
	)
	dur := 2 * time.Second
	if s := os.Getenv("BOUNDEDG_SUBSMOKE_DURATION"); s != "" {
		v, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("bad BOUNDEDG_SUBSMOKE_DURATION %q: %v", s, err)
		}
		dur = v
	}
	d, err := exp.Gen(dataset, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		t.Fatalf("index build: %v", viols[0])
	}
	eng, err := runtime.New(d.G, idx, runtime.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng, d.In, server.Config{
		EnableUpdates: true,
		MaxSubs:       8,
		SubHeartbeat:  50 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		srv.Shutdown(context.Background())
		ts.Close()
		eng.Close()
	}()

	rep, err := Run(Config{
		Addr:        ts.URL,
		Dataset:     dataset,
		Scale:       scale,
		Seed:        seed,
		Workers:     4,
		ReadPct:     0.5,
		ZipfS:       1.2,
		Warmup:      200 * time.Millisecond,
		Duration:    dur,
		Subscribers: 4,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Read.Errors != 0 || rep.Write.Errors != 0 {
		t.Fatalf("errors: read=%d write=%d", rep.Read.Errors, rep.Write.Errors)
	}
	s := rep.Subscriptions
	if s == nil {
		t.Fatal("report lacks the subscriptions block")
	}
	if s.Subscribers != 4 {
		t.Fatalf("subscribers = %d, want 4", s.Subscribers)
	}
	if s.FoldErrors != 0 {
		t.Fatalf("%d fold errors: a stream disagreed with its own diffs", s.FoldErrors)
	}
	if s.Mismatches != 0 {
		t.Fatalf("%d subscribers never converged to the /query answer (converge_ms %v)", s.Mismatches, s.ConvergeMS)
	}
	if s.Events == 0 {
		t.Fatal("subscribers measured zero events over the run")
	}
	if s.ConvergeMS < 0 {
		t.Fatalf("convergence failed: %+v", *s)
	}

	// The block must survive the JSON round trip under these names.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"subscriptions"`, `"subscribers"`, `"events"`, `"diffs"`, `"resyncs"`,
		`"heartbeats"`, `"reconnects"`, `"events_per_sec"`, `"fold_errors"`,
		`"converge_ms"`, `"mismatches"`,
	} {
		if !bytes.Contains(raw, []byte(field)) {
			t.Fatalf("report JSON lacks %s:\n%s", field, raw)
		}
	}
}
