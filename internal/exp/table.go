// Package exp is the experiment harness reproducing the paper's
// evaluation (§VII): one runner per figure/table, each printing the same
// rows/series the paper reports. The cmd/benchrunner binary and the
// repository-root benchmarks drive these runners.
package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a title, a header row, and data
// rows. Runners return Tables so tests can assert on values and the CLI
// can print them.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtDur renders a duration in seconds with adaptive precision.
func fmtSecs(sec float64) string {
	switch {
	case sec < 0:
		return "n/a"
	case sec < 0.001:
		return fmt.Sprintf("%.0fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.1fms", sec*1e3)
	default:
		return fmt.Sprintf("%.2fs", sec)
	}
}

// fmtPct renders a ratio as a percentage.
func fmtPct(x float64) string {
	switch {
	case x <= 0:
		return "0%"
	case x < 0.0001:
		return fmt.Sprintf("%.5f%%", x*100)
	case x < 0.01:
		return fmt.Sprintf("%.4f%%", x*100)
	default:
		return fmt.Sprintf("%.2f%%", x*100)
	}
}

// WriteCSV emits the table as CSV (header + rows) for plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
