package exp

import (
	"bytes"
	"strings"
	"testing"

	"boundedg/internal/core"
)

// smallOpt keeps experiment smoke tests fast.
func smallOpt(ds string) Options {
	return Options{
		Dataset:       ds,
		Seed:          3,
		NumQueries:    8,
		BaselineSteps: 100_000,
		MatchLimit:    2_000,
		Scales:        []float64{0.1, 0.3},
	}
}

func renderOK(t *testing.T, tab *Table) string {
	t.Helper()
	var buf bytes.Buffer
	tab.Render(&buf)
	s := buf.String()
	if !strings.Contains(s, tab.Title) {
		t.Fatalf("render missing title:\n%s", s)
	}
	return s
}

func TestBoundedPct(t *testing.T) {
	tab, err := BoundedPct(smallOpt("imdb"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 datasets", len(tab.Rows))
	}
	renderOK(t, tab)
}

func TestFig5VaryG(t *testing.T) {
	tab, err := Fig5VaryG(smallOpt("imdb"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want one per scale", len(tab.Rows))
	}
	t.Log("\n" + renderOK(t, tab))
}

func TestFig5VaryQ(t *testing.T) {
	opt := smallOpt("imdb")
	opt.NumQueries = 5
	tab, err := Fig5VaryQ(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (#n = 3..7)", len(tab.Rows))
	}
	t.Log("\n" + renderOK(t, tab))
}

func TestFig5VaryA(t *testing.T) {
	tab, err := Fig5VaryA(smallOpt("imdb"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("no sweep rows")
	}
	t.Log("\n" + renderOK(t, tab))
}

func TestFig5Accessed(t *testing.T) {
	tab, err := Fig5Accessed(smallOpt("imdb"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	t.Log("\n" + renderOK(t, tab))
}

func TestFig6(t *testing.T) {
	opt := smallOpt("imdb")
	opt.NumQueries = 6
	for _, sem := range []core.Semantics{core.Subgraph, core.Simulation} {
		tab, err := Fig6(opt, sem)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 3 {
			t.Fatalf("rows = %d", len(tab.Rows))
		}
		t.Log("\n" + renderOK(t, tab))
	}
}

func TestExp3(t *testing.T) {
	opt := smallOpt("imdb")
	opt.NumQueries = 10
	tab, err := Exp3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	t.Log("\n" + renderOK(t, tab))
}

func TestGenUnknownDataset(t *testing.T) {
	if _, err := Gen("nope", 1, 1); err == nil {
		t.Fatalf("want error for unknown dataset")
	}
}

func TestAblation(t *testing.T) {
	opt := smallOpt("imdb")
	opt.NumQueries = 6
	tab, err := Ablation(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	t.Log("\n" + renderOK(t, tab))
}

func TestWriteCSV(t *testing.T) {
	tab := &Table{Title: "t", Header: []string{"a", "b"}}
	tab.AddRow("1", "x,y") // comma requires quoting
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{-1, "n/a"},
		{0.0000015, "2µs"},
		{0.0025, "2.5ms"},
		{1.5, "1.50s"},
	}
	for _, c := range cases {
		if got := fmtSecs(c.in); got != c.want {
			t.Errorf("fmtSecs(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	pcts := []struct {
		in   float64
		want string
	}{
		{0, "0%"},
		{0.00005, "0.00500%"},
		{0.005, "0.5000%"},
		{0.5, "50.00%"},
	}
	for _, c := range pcts {
		if got := fmtPct(c.in); got != c.want {
			t.Errorf("fmtPct(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
