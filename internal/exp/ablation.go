package exp

import (
	"fmt"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/match"
	"boundedg/internal/workload"
)

// Ablation quantifies the value of QPlan's worst-case-optimal plan search
// (Theorem 4) against the naive baseline (first applicable constraint, no
// reductions — core.NewNaivePlan): worst-case GQ estimates, actual data
// accessed, and wall-clock per query. This is the design-choice ablation
// DESIGN.md §3 calls out; the paper itself only proves optimality, so
// there is no published row to match — the table documents the measured
// gap on our workloads.
func Ablation(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		Title: "Ablation: QPlan (worst-case optimal) vs naive planning (avg per bounded query)",
		Header: []string{"dataset", "#Q",
			"est GQ opt", "est GQ naive",
			"accessed opt", "accessed naive",
			"time opt", "time naive"},
	}
	for _, name := range DatasetNames() {
		d, err := Gen(name, 0.5, opt.Seed)
		if err != nil {
			return nil, err
		}
		idx, viols := access.Build(d.G, d.Schema)
		if viols != nil {
			return nil, fmt.Errorf("exp: %v", viols[0])
		}
		qs := workload.DefaultQueryGen.Generate(d, opt.NumQueries, opt.Seed+7)
		var nQ int
		var estOpt, estNaive, accOpt, accNaive, timeOpt, timeNaive float64
		mopt := match.SubgraphOptions{MaxMatches: opt.MatchLimit}
		for _, q := range qs {
			po, err1 := core.NewPlan(q, d.Schema, core.Subgraph)
			if err1 != nil {
				continue
			}
			pn, err2 := core.NewNaivePlan(q, d.Schema, core.Subgraph)
			if err2 != nil {
				return nil, err2
			}
			nQ++
			estOpt += po.EstGQNodes()
			estNaive += pn.EstGQNodes()
			var so, sn *core.ExecStats
			var errO, errN error
			timeOpt += timed(func() { _, so, errO = po.EvalSubgraph(d.G, idx, mopt) })
			timeNaive += timed(func() { _, sn, errN = pn.EvalSubgraph(d.G, idx, mopt) })
			if errO != nil || errN != nil {
				return nil, fmt.Errorf("exp: ablation eval: %v / %v", errO, errN)
			}
			accOpt += float64(so.Accessed())
			accNaive += float64(sn.Accessed())
		}
		if nQ == 0 {
			t.AddRow(d.Name, "0", "n/a", "n/a", "n/a", "n/a", "n/a", "n/a")
			continue
		}
		f := float64(nQ)
		t.AddRow(d.Name, fmt.Sprint(nQ),
			fmt.Sprintf("%.0f", estOpt/f), fmt.Sprintf("%.0f", estNaive/f),
			fmt.Sprintf("%.0f", accOpt/f), fmt.Sprintf("%.0f", accNaive/f),
			fmtSecs(timeOpt/f), fmtSecs(timeNaive/f))
	}
	return t, nil
}
