package exp

import (
	"fmt"
	"sort"
	"time"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
	"boundedg/internal/workload"
)

// Options configures an experiment run. Zero-value fields fall back to
// Default().
type Options struct {
	// Dataset is "imdb", "dbpedia" or "webbase".
	Dataset string
	// Seed drives all data and query generation.
	Seed int64
	// NumQueries is the query-load size per dataset (paper: 100).
	NumQueries int
	// BaselineSteps is the search budget for VF2/optVF2 before a run is
	// declared "did not complete" (the paper's 40000s timeout analog).
	BaselineSteps int
	// MatchLimit caps enumerated matches for all subgraph algorithms
	// (bounded and baseline alike), keeping result sets finite.
	MatchLimit int
	// Scales lists |G| scale factors for Fig 5(a/e/i).
	Scales []float64
	// Workers > 1 runs bounded plans through the parallel execution path
	// (sharded fetch/verification over a frozen snapshot) and sizes the
	// engine pool of the engine-throughput experiment. 0/1 = serial.
	Workers int
}

// Default returns the harness defaults: paper shapes at laptop scale.
func Default() Options {
	return Options{
		Dataset:       "imdb",
		Seed:          1,
		NumQueries:    100,
		BaselineSteps: 3_000_000,
		// Near-full enumeration: both bounded and baseline algorithms get
		// the same generous cap, mirroring the paper's exact Q(G).
		MatchLimit: 200_000,
		// The sweep extends past 1.0 so bounded evaluation's plateau is
		// visible once the constraint caps bind (see EXPERIMENTS.md).
		Scales: []float64{0.25, 0.5, 1.0, 2.0, 3.0},
	}
}

func (o Options) withDefaults() Options {
	d := Default()
	if o.Dataset == "" {
		o.Dataset = d.Dataset
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.NumQueries == 0 {
		o.NumQueries = d.NumQueries
	}
	if o.BaselineSteps == 0 {
		o.BaselineSteps = d.BaselineSteps
	}
	if o.MatchLimit == 0 {
		o.MatchLimit = d.MatchLimit
	}
	if len(o.Scales) == 0 {
		o.Scales = d.Scales
	}
	return o
}

// Gen builds the named dataset at the given scale.
func Gen(name string, scale float64, seed int64) (*workload.Dataset, error) {
	switch name {
	case "imdb":
		return workload.IMDb(scale, seed), nil
	case "dbpedia":
		return workload.DBpedia(scale, seed), nil
	case "webbase":
		return workload.WebBase(scale, seed), nil
	}
	return nil, fmt.Errorf("exp: unknown dataset %q (want imdb, dbpedia or webbase)", name)
}

// DatasetNames lists the supported dataset generators.
func DatasetNames() []string { return []string{"imdb", "dbpedia", "webbase"} }

// splitBounded partitions queries by effective boundedness under sem.
func splitBounded(qs []*pattern.Pattern, a *access.Schema, sem core.Semantics) (bounded, unbounded []*pattern.Pattern) {
	for _, q := range qs {
		if core.EBnd(q, a, sem).Bounded {
			bounded = append(bounded, q)
		} else {
			unbounded = append(unbounded, q)
		}
	}
	return bounded, unbounded
}

// BoundedPct reproduces Exp-1(1): the percentage of randomly generated
// queries that are effectively bounded, per dataset and semantics. The
// paper reports 61/67/58% (subgraph) and 32/41/33% (simulation) for
// IMDbG/DBpediaG/WebBG.
func BoundedPct(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		Title:  "Exp-1(1): effectively bounded queries (%)",
		Header: []string{"dataset", "|V|", "|E|", "‖A‖", "subgraph", "simulation"},
	}
	for _, name := range DatasetNames() {
		d, err := Gen(name, 0.25, opt.Seed) // boundedness is |G|-independent
		if err != nil {
			return nil, err
		}
		qs := workload.DefaultQueryGen.Generate(d, opt.NumQueries, opt.Seed+7)
		sub, _ := splitBounded(qs, d.Schema, core.Subgraph)
		sim, _ := splitBounded(qs, d.Schema, core.Simulation)
		t.AddRow(d.Name,
			fmt.Sprint(d.G.NumNodes()), fmt.Sprint(d.G.NumEdges()),
			fmt.Sprint(d.Schema.Count()),
			fmt.Sprintf("%d%%", 100*len(sub)/len(qs)),
			fmt.Sprintf("%d%%", 100*len(sim)/len(qs)))
	}
	return t, nil
}

// timed runs f and returns seconds elapsed.
func timed(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// algoTimes accumulates per-algorithm totals plus incompleteness marks.
type algoTimes struct {
	total      map[string]float64
	n          map[string]int
	incomplete map[string]int
}

func newAlgoTimes() *algoTimes {
	return &algoTimes{
		total:      make(map[string]float64),
		n:          make(map[string]int),
		incomplete: make(map[string]int),
	}
}

func (a *algoTimes) add(name string, secs float64, complete bool) {
	a.total[name] += secs
	a.n[name]++
	if !complete {
		a.incomplete[name]++
	}
}

// avg renders the average time; a trailing '+' marks runs cut off by the
// step budget (the paper's "did not run to completion").
func (a *algoTimes) avg(name string) string {
	if a.n[name] == 0 {
		return "n/a"
	}
	s := fmtSecs(a.total[name] / float64(a.n[name]))
	if a.incomplete[name] > 0 {
		s += "+"
	}
	return s
}

// runAll evaluates the six algorithms of Fig 5 on the given graph: the
// bounded plans (bVF2/bSim, pre-planned), then the conventional baselines
// with the step budget.
func runAll(at *algoTimes, g *workload.Dataset, idx *access.IndexSet,
	subPlans, simPlans []*core.Plan, subQs, simQs []*pattern.Pattern, opt Options) error {

	mopt := match.SubgraphOptions{MaxMatches: opt.MatchLimit}
	bopt := match.SubgraphOptions{MaxMatches: opt.MatchLimit, MaxSteps: opt.BaselineSteps}

	// With -workers, bounded plans run through the parallel execution
	// path; the one-off freeze is amortized across the whole load, so it
	// stays outside the per-query timings.
	var cfg *core.ExecConfig
	if opt.Workers > 1 {
		cfg = &core.ExecConfig{Workers: opt.Workers, Frozen: g.G.Freeze()}
	}

	for _, p := range subPlans {
		var err error
		secs := timed(func() { _, _, err = p.EvalSubgraphWith(g.G, idx, mopt, cfg) })
		if err != nil {
			return err
		}
		at.add("bvf2", secs, true)
	}
	for _, p := range simPlans {
		var err error
		secs := timed(func() { _, _, err = p.EvalSimWith(g.G, idx, cfg) })
		if err != nil {
			return err
		}
		at.add("bsim", secs, true)
	}
	for _, q := range subQs {
		var res *match.SubgraphResult
		secs := timed(func() { res = match.VF2(q, g.G, bopt) })
		at.add("vf2", secs, res.Completed)
		secs = timed(func() { res = match.OptVF2(q, g.G, idx, bopt) })
		at.add("optvf2", secs, res.Completed)
	}
	for _, q := range simQs {
		secs := timed(func() { match.GSim(q, g.G) })
		at.add("gsim", secs, true)
		secs = timed(func() { match.OptGSim(q, g.G, idx) })
		at.add("optgsim", secs, true)
	}
	return nil
}

// prepare generates the full-scale dataset, the query load, the bounded
// subsets and their plans.
func prepare(opt Options) (*workload.Dataset, []*pattern.Pattern, []*pattern.Pattern, []*core.Plan, []*core.Plan, error) {
	d, err := Gen(opt.Dataset, 1.0, opt.Seed)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	qs := workload.DefaultQueryGen.Generate(d, opt.NumQueries, opt.Seed+7)
	subQs, _ := splitBounded(qs, d.Schema, core.Subgraph)
	simQs, _ := splitBounded(qs, d.Schema, core.Simulation)
	var subPlans, simPlans []*core.Plan
	for _, q := range subQs {
		p, err := core.NewPlan(q, d.Schema, core.Subgraph)
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		subPlans = append(subPlans, p)
	}
	for _, q := range simQs {
		p, err := core.NewPlan(q, d.Schema, core.Simulation)
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		simPlans = append(simPlans, p)
	}
	return d, subQs, simQs, subPlans, simPlans, nil
}

// Fig5VaryG reproduces Fig 5(a/e/i): average evaluation time per
// algorithm as |G| scales from 0.1 to 1.0. Bounded plans stay flat;
// conventional algorithms grow with |G|.
func Fig5VaryG(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	dFull, subQs, simQs, subPlans, simPlans, err := prepare(opt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig 5 varying |G| — %s (avg per query; '+' = hit step budget)", dFull.Name),
		Header: []string{"scale", "|V|+|E|", "bvf2", "bsim", "vf2", "optvf2", "gsim", "optgsim"},
	}
	for _, scale := range opt.Scales {
		g, err := Gen(opt.Dataset, scale, opt.Seed)
		if err != nil {
			return nil, err
		}
		idx, viols := access.Build(g.G, dFull.Schema)
		if viols != nil {
			return nil, fmt.Errorf("exp: scale %v violates schema: %v", scale, viols[0])
		}
		at := newAlgoTimes()
		if err := runAll(at, g, idx, subPlans, simPlans, subQs, simQs, opt); err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", scale), fmt.Sprint(g.G.Size()),
			at.avg("bvf2"), at.avg("bsim"), at.avg("vf2"), at.avg("optvf2"), at.avg("gsim"), at.avg("optgsim"))
	}
	return t, nil
}

// Fig5VaryQ reproduces Fig 5(b/f/j): average evaluation time as the query
// size #n sweeps 3..7, at full scale.
func Fig5VaryQ(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	d, err := Gen(opt.Dataset, 1.0, opt.Seed)
	if err != nil {
		return nil, err
	}
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		return nil, fmt.Errorf("exp: %v", viols[0])
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig 5 varying #n — %s (avg per query; '+' = hit step budget)", d.Name),
		Header: []string{"#n", "bvf2", "bsim", "vf2", "optvf2", "gsim", "optgsim"},
	}
	for nn := 3; nn <= 7; nn++ {
		qs := workload.DefaultQueryGen.GenerateSized(d, opt.NumQueries, nn, opt.Seed+int64(nn))
		subQs, _ := splitBounded(qs, d.Schema, core.Subgraph)
		simQs, _ := splitBounded(qs, d.Schema, core.Simulation)
		var subPlans, simPlans []*core.Plan
		for _, q := range subQs {
			p, err := core.NewPlan(q, d.Schema, core.Subgraph)
			if err != nil {
				return nil, err
			}
			subPlans = append(subPlans, p)
		}
		for _, q := range simQs {
			p, err := core.NewPlan(q, d.Schema, core.Simulation)
			if err != nil {
				return nil, err
			}
			simPlans = append(simPlans, p)
		}
		at := newAlgoTimes()
		if err := runAll(at, d, idx, subPlans, simPlans, subQs, simQs, opt); err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(nn),
			at.avg("bvf2"), at.avg("bsim"), at.avg("vf2"), at.avg("optvf2"), at.avg("gsim"), at.avg("optgsim"))
	}
	return t, nil
}

// Fig5VaryA reproduces Fig 5(c/g/k): bVF2/bSim time as the number of
// available access constraints ‖A‖ sweeps (paper: 12..20) — more
// constraints let QPlan pick better plans.
func Fig5VaryA(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	d, err := Gen(opt.Dataset, 1.0, opt.Seed)
	if err != nil {
		return nil, err
	}
	qs := workload.DefaultQueryGen.Generate(d, opt.NumQueries, opt.Seed+7)
	total := d.Schema.Count()
	// Queries must be bounded under the SMALLEST schema of the sweep so
	// every sweep point can evaluate them (coverage is monotone in A).
	// Start the sweep at the smallest prefix that bounds at least one
	// query of the load under each semantics.
	kMin := total
	for k := 1; k <= total; k++ {
		sub := d.Schema.Subset(k)
		nSub, _ := splitBounded(qs, sub, core.Subgraph)
		nSim, _ := splitBounded(qs, sub, core.Simulation)
		if len(nSub) > 0 && len(nSim) > 0 {
			kMin = k
			break
		}
	}
	minSchema := d.Schema.Subset(kMin)
	subQs, _ := splitBounded(qs, minSchema, core.Subgraph)
	simQs, _ := splitBounded(qs, minSchema, core.Simulation)

	t := &Table{
		Title:  fmt.Sprintf("Fig 5 varying ‖A‖ — %s (avg per bounded query)", d.Name),
		Header: []string{"‖A‖", "bvf2", "bsim", "#subQ", "#simQ"},
	}
	step := (total - kMin) / 4
	if step < 1 {
		step = 1
	}
	for k := kMin; k <= total; k += step {
		sub := d.Schema.Subset(k)
		idx, viols := access.Build(d.G, sub)
		if viols != nil {
			return nil, fmt.Errorf("exp: %v", viols[0])
		}
		at := newAlgoTimes()
		for _, q := range subQs {
			p, err := core.NewPlan(q, sub, core.Subgraph)
			if err != nil {
				return nil, err
			}
			secs := timed(func() {
				_, _, err = p.EvalSubgraph(d.G, idx, match.SubgraphOptions{MaxMatches: opt.MatchLimit})
			})
			if err != nil {
				return nil, err
			}
			at.add("bvf2", secs, true)
		}
		for _, q := range simQs {
			p, err := core.NewPlan(q, sub, core.Simulation)
			if err != nil {
				return nil, err
			}
			secs := timed(func() { _, _, err = p.EvalSim(d.G, idx) })
			if err != nil {
				return nil, err
			}
			at.add("bsim", secs, true)
		}
		t.AddRow(fmt.Sprint(k), at.avg("bvf2"), at.avg("bsim"),
			fmt.Sprint(len(subQs)), fmt.Sprint(len(simQs)))
	}
	return t, nil
}

// Fig5Accessed reproduces Fig 5(d/h/l): the fraction of |G| accessed by
// bounded plans and the fraction occupied by the indices they use, as #n
// sweeps 3..7. The paper reports ≤0.13% accessed with indices <8% of |G|.
func Fig5Accessed(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	d, err := Gen(opt.Dataset, 1.0, opt.Seed)
	if err != nil {
		return nil, err
	}
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		return nil, fmt.Errorf("exp: %v", viols[0])
	}
	gsize := float64(d.G.Size())
	idxTotal := float64(idx.SizeNodes()) / gsize
	t := &Table{
		Title:  fmt.Sprintf("Fig 5 accessed data — %s (|index|/|G| total = %s)", d.Name, fmtPct(idxTotal)),
		Header: []string{"#n", "bvf2 accessed/|G|", "bsim accessed/|G|", "bvf2 index/|G|", "bsim index/|G|"},
	}
	for nn := 3; nn <= 7; nn++ {
		qs := workload.DefaultQueryGen.GenerateSized(d, opt.NumQueries, nn, opt.Seed+int64(nn))
		accTot := map[string]float64{}
		idxUsed := map[string]float64{}
		cnt := map[string]int{}
		record := func(key string, p *core.Plan, st *core.ExecStats) {
			accTot[key] += float64(st.Accessed()) / gsize
			used := 0
			seen := map[int]bool{}
			for _, op := range p.Ops {
				if !seen[op.CIdx] {
					seen[op.CIdx] = true
					used += idx.Index(op.CIdx).SizeNodes()
				}
			}
			for _, ec := range p.EdgeChecks {
				if !seen[ec.CIdx] {
					seen[ec.CIdx] = true
					used += idx.Index(ec.CIdx).SizeNodes()
				}
			}
			idxUsed[key] += float64(used) / gsize
			cnt[key]++
		}
		for _, q := range qs {
			if p, err := core.NewPlan(q, d.Schema, core.Subgraph); err == nil {
				if _, st, err := p.Exec(d.G, idx); err == nil {
					record("sub", p, st)
				}
			}
			if p, err := core.NewPlan(q, d.Schema, core.Simulation); err == nil {
				if _, st, err := p.Exec(d.G, idx); err == nil {
					record("sim", p, st)
				}
			}
		}
		row := []string{fmt.Sprint(nn)}
		for _, key := range []string{"sub", "sim"} {
			if cnt[key] == 0 {
				row = append(row, "n/a")
			} else {
				row = append(row, fmtPct(accTot[key]/float64(cnt[key])))
			}
		}
		for _, key := range []string{"sub", "sim"} {
			if cnt[key] == 0 {
				row = append(row, "n/a")
			} else {
				row = append(row, fmtPct(idxUsed[key]/float64(cnt[key])))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig6 reproduces Fig 6(a/b): the minimum M making x% of the query load
// instance-bounded under M-bounded extensions of the dataset schema.
func Fig6(opt Options, sem core.Semantics) (*Table, error) {
	opt = opt.withDefaults()
	levels := []int{60, 70, 80, 90, 95, 100}
	if sem == core.Simulation {
		levels = []int{30, 40, 50, 60, 70, 80, 90, 95, 100}
	}
	t := &Table{
		Title: fmt.Sprintf("Fig 6 (%s): minimum M for x%% instance-bounded", sem),
		Header: append([]string{"dataset", "|G|"}, func() []string {
			h := make([]string, len(levels))
			for i, x := range levels {
				h[i] = fmt.Sprintf("x=%d%%", x)
			}
			return h
		}()...),
	}
	for _, name := range DatasetNames() {
		d, err := Gen(name, 0.25, opt.Seed)
		if err != nil {
			return nil, err
		}
		qs := workload.DefaultQueryGen.Generate(d, opt.NumQueries, opt.Seed+7)
		ms := make([]int, 0, len(qs))
		unreachable := 0
		for _, q := range qs {
			m, ok := core.MinimalM(q, d.Schema, d.G, sem)
			if !ok {
				unreachable++
				continue
			}
			ms = append(ms, m)
		}
		sort.Ints(ms)
		row := []string{d.Name, fmt.Sprint(d.G.Size())}
		for _, x := range levels {
			// M making x% of ALL queries instance-bounded.
			need := (x*len(qs) + 99) / 100
			if need > len(ms) {
				row = append(row, "∄")
				continue
			}
			if need == 0 {
				row = append(row, "0")
				continue
			}
			row = append(row, fmt.Sprint(ms[need-1]))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Exp3 reproduces the paper's efficiency measurements: EBChk, QPlan,
// sEBChk and sQPlan must take milliseconds at most (the paper reports
// ≤ 7/37/6/32 ms).
func Exp3(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		Title:  "Exp-3: decision and planning efficiency (max over all queries)",
		Header: []string{"dataset", "EBChk", "QPlan", "sEBChk", "sQPlan"},
	}
	for _, name := range DatasetNames() {
		d, err := Gen(name, 0.1, opt.Seed)
		if err != nil {
			return nil, err
		}
		qs := workload.DefaultQueryGen.Generate(d, opt.NumQueries, opt.Seed+7)
		var maxEB, maxQP, maxSEB, maxSQP float64
		for _, q := range qs {
			secs := timed(func() { core.EBChk(q, d.Schema) })
			if secs > maxEB {
				maxEB = secs
			}
			secs = timed(func() { core.SEBChk(q, d.Schema) })
			if secs > maxSEB {
				maxSEB = secs
			}
			if core.EBnd(q, d.Schema, core.Subgraph).Bounded {
				secs = timed(func() { _, _ = core.NewPlan(q, d.Schema, core.Subgraph) })
				if secs > maxQP {
					maxQP = secs
				}
			}
			if core.EBnd(q, d.Schema, core.Simulation).Bounded {
				secs = timed(func() { _, _ = core.NewPlan(q, d.Schema, core.Simulation) })
				if secs > maxSQP {
					maxSQP = secs
				}
			}
		}
		t.AddRow(d.Name, fmtSecs(maxEB), fmtSecs(maxQP), fmtSecs(maxSEB), fmtSecs(maxSQP))
	}
	return t, nil
}
