package exp

import (
	"fmt"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/match"
	"boundedg/internal/runtime"
)

// EngineThroughput measures batch throughput of the parallel runtime: the
// full bounded query load of a dataset (both semantics) evaluated by a
// serial loop versus runtime.Engine pools of increasing size. maxWorkers
// comes from Options.Workers (default 4). The paper makes per-query cost
// independent of |G|; this table shows the remaining lever — queries per
// second under concurrent load.
func EngineThroughput(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	maxWorkers := opt.Workers
	if maxWorkers < 2 {
		maxWorkers = 4
	}
	d, _, _, subPlans, simPlans, err := prepare(opt)
	if err != nil {
		return nil, err
	}
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		return nil, fmt.Errorf("exp: %v", viols[0])
	}
	mopt := match.SubgraphOptions{MaxMatches: opt.MatchLimit}

	queries := make([]runtime.Query, 0, len(subPlans)+len(simPlans))
	for _, p := range subPlans {
		queries = append(queries, runtime.Query{Pattern: p.Q, Sem: core.Subgraph, Sub: mopt, Plan: p})
	}
	for _, p := range simPlans {
		queries = append(queries, runtime.Query{Pattern: p.Q, Sem: core.Simulation, Plan: p})
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("exp: no bounded queries in the %s load", d.Name)
	}

	t := &Table{
		Title:  fmt.Sprintf("Engine throughput — %s (%d bounded queries per batch)", d.Name, len(queries)),
		Header: []string{"mode", "batch time", "queries/s", "speedup"},
	}
	var serialSecs float64
	serialSecs = timed(func() {
		for _, q := range queries {
			var err2 error
			if q.Sem == core.Subgraph {
				_, _, err2 = q.Plan.EvalSubgraph(d.G, idx, mopt)
			} else {
				_, _, err2 = q.Plan.EvalSim(d.G, idx)
			}
			if err2 != nil {
				err = err2
			}
		}
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("serial loop", fmtSecs(serialSecs),
		fmt.Sprintf("%.0f", float64(len(queries))/serialSecs), "1.00x")

	var sweep []int
	for w := 1; w < maxWorkers; w *= 2 {
		sweep = append(sweep, w)
	}
	sweep = append(sweep, maxWorkers)
	for _, workers := range sweep {
		e, err := runtime.New(d.G, idx, runtime.Config{Workers: workers})
		if err != nil {
			return nil, err
		}
		secs := timed(func() {
			for _, r := range e.EvalBatch(nil, queries) {
				if r.Err != nil {
					err = r.Err
				}
			}
		})
		e.Close()
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("engine workers=%d", workers), fmtSecs(secs),
			fmt.Sprintf("%.0f", float64(len(queries))/secs),
			fmt.Sprintf("%.2fx", serialSecs/secs))
	}
	return t, nil
}
