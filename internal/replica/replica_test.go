package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/runtime"
	"boundedg/internal/server"
	"boundedg/internal/store"
	"boundedg/internal/wal"
)

// primaryEnv is a durable unsharded primary as boundedgd -mutable -wal
// runs one, with the replication endpoints enabled.
type primaryEnv struct {
	in    *graph.Interner
	st    *store.Store
	wd    *wal.Dir
	eng   *runtime.Engine
	ts    *httptest.Server
	years []graph.NodeID
}

func newPrimary(t *testing.T) *primaryEnv {
	t.Helper()
	g := graph.New(nil)
	in := g.Interner()
	year := in.Intern("year")
	movie := in.Intern("movie")
	var years []graph.NodeID
	for i := 0; i < 3; i++ {
		years = append(years, g.AddNode(year, graph.IntValue(int64(2010+i))))
	}
	schema := access.NewSchema(
		access.MustNew(nil, year, 10),
		access.MustNew([]graph.Label{year}, movie, 100),
	)
	idx, viols := access.Build(g, schema)
	if viols != nil {
		t.Fatalf("index build: %v", viols[0])
	}
	wd, err := wal.OpenDir(t.TempDir(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := wd.Init(0, g, idx); err != nil {
		t.Fatal(err)
	}
	st := store.New(g, idx, store.WithWAL(wd, true))
	eng, err := runtime.NewFromStore(st, runtime.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng, in, server.Config{EnableUpdates: true, WAL: wd})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
		wd.Close()
	})
	return &primaryEnv{in: in, st: st, wd: wd, eng: eng, ts: ts, years: years}
}

// mustApply commits one update (= one epoch) on the primary through the
// same delta-JSON decode path POST /update uses, so novel labels arrive
// staged and exercise interner commit on both sides of the stream.
func (p *primaryEnv) mustApply(t *testing.T, body string) uint64 {
	t.Helper()
	d, err := graph.ReadDeltaJSON(strings.NewReader(body), p.in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.st.Apply(d); err != nil {
		t.Fatalf("apply %s: %v", body, err)
	}
	return p.st.Stats().Epoch
}

// addMovie is the standard accepted update: one new movie wired to an
// existing year.
func (p *primaryEnv) addMovie(t *testing.T, i int) uint64 {
	t.Helper()
	return p.mustApply(t, fmt.Sprintf(
		`{"add_nodes": [{"label": "movie", "value": %d}], "add_edges": [[-1, %d]]}`, 100+i, p.years[i%len(p.years)]))
}

// followerEnv is one follower: a replica client over its own interner and
// store, with Run controllable for stop/restart tests.
type followerEnv struct {
	rep    *Replica
	st     *store.Store
	in     *graph.Interner
	cancel context.CancelFunc
	done   chan error
}

func newFollower(t *testing.T, primary string, wrap func(io.ReadCloser) io.ReadCloser) *followerEnv {
	t.Helper()
	in := graph.NewInterner()
	rep := New(Config{Primary: primary, Backoff: 2 * time.Millisecond, wrapBody: wrap}, in)
	g, idx, epoch, err := rep.Bootstrap(context.Background())
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	var opts []store.Option
	if epoch > 0 {
		opts = append(opts, store.WithBaseEpoch(epoch))
	}
	st := store.New(g, idx, opts...)
	rep.Attach(st)
	f := &followerEnv{rep: rep, st: st, in: in}
	f.start()
	t.Cleanup(func() {
		f.stop()
		st.Close()
	})
	return f
}

func (f *followerEnv) start() {
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	f.done = make(chan error, 1)
	rep := f.rep
	go func() { f.done <- rep.Run(ctx) }()
}

// stop cancels Run and waits for it; safe to call twice.
func (f *followerEnv) stop() error {
	if f.cancel == nil {
		return nil
	}
	f.cancel()
	f.cancel = nil
	return <-f.done
}

// waitApplied blocks until the follower has applied and published epoch.
func (f *followerEnv) waitApplied(t *testing.T, epoch uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for f.rep.applied.Load() < epoch {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at epoch %d waiting for %d (stats %+v)", f.rep.applied.Load(), epoch, f.rep.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// stateBytes serializes a store's published snapshot — graph and index
// set — through the same codecs checkpoints use. Replication promises
// byte identity of this serialization between primary and follower at
// equal epochs.
func stateBytes(t *testing.T, st *store.Store) (uint64, string, string) {
	t.Helper()
	snap := st.Acquire()
	defer snap.Release()
	var gb, ib bytes.Buffer
	if err := snap.G.WriteSnapshotJSON(&gb); err != nil {
		t.Fatal(err)
	}
	if err := snap.Idx.WriteJSON(&ib, snap.G.Interner()); err != nil {
		t.Fatal(err)
	}
	return snap.Epoch, gb.String(), ib.String()
}

// requireIdentical asserts primary and follower publish the same epoch
// with byte-identical graph and index serializations.
func requireIdentical(t *testing.T, p *primaryEnv, f *followerEnv) {
	t.Helper()
	pe, pg, pi := stateBytes(t, p.st)
	fe, fg, fi := stateBytes(t, f.st)
	if pe != fe {
		t.Fatalf("epoch mismatch: primary %d, follower %d", pe, fe)
	}
	if pg != fg {
		t.Fatalf("graph snapshots differ at epoch %d:\nprimary:  %s\nfollower: %s", pe, pg, fg)
	}
	if pi != fi {
		t.Fatalf("index snapshots differ at epoch %d:\nprimary:  %s\nfollower: %s", pe, pi, fi)
	}
}

// TestFollowerTracksPrimaryByteForByte is the differential replication
// test: after every primary epoch the follower's published graph and
// index serialize byte-identically, including epochs that intern novel
// labels, and rejected updates leave no trace in the stream.
func TestFollowerTracksPrimaryByteForByte(t *testing.T) {
	p := newPrimary(t)
	f := newFollower(t, p.ts.URL, nil)

	requireIdentical(t, p, f) // epoch 0: bootstrap alone must already agree

	for i := 0; i < 4; i++ {
		epoch := p.addMovie(t, i)
		f.waitApplied(t, epoch)
		requireIdentical(t, p, f)
	}

	// A rejected update must not reach the log, the stream, or either
	// interner.
	bad, err := graph.ReadDeltaJSON(strings.NewReader(
		`{"add_nodes": [{"label": "phantom"}], "add_edges": [[-1, 999999]]}`), p.in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.st.Apply(bad); err == nil {
		t.Fatal("structurally bad delta accepted")
	}

	// A novel label must stream through and land with the same id.
	epoch := p.mustApply(t, fmt.Sprintf(
		`{"add_nodes": [{"label": "director", "value": 7}], "add_edges": [[-1, %d]]}`, p.years[0]))
	f.waitApplied(t, epoch)
	requireIdentical(t, p, f)
	if _, ok := f.in.Lookup("phantom"); ok {
		t.Fatal("rejected delta's label leaked into the follower's interner")
	}
	if _, ok := p.in.Lookup("phantom"); ok {
		t.Fatal("rejected delta's label leaked into the primary's interner")
	}

	s := f.rep.Stats()
	if s.Bootstraps != 1 || s.Inconsistent || s.Lag != 0 {
		t.Fatalf("follower stats after catch-up: %+v", s)
	}
}

// TestFollowerRidesLogRotation checkpoints the primary under a live
// caught-up follower: the stream ends at a chunk boundary, the reconnect
// gets the 409 redirect, and the follower resumes on the fresh log
// without re-bootstrapping.
func TestFollowerRidesLogRotation(t *testing.T) {
	p := newPrimary(t)
	f := newFollower(t, p.ts.URL, nil)

	var epoch uint64
	for i := 0; i < 3; i++ {
		epoch = p.addMovie(t, i)
	}
	f.waitApplied(t, epoch)

	if err := p.st.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	for i := 3; i < 5; i++ {
		epoch = p.addMovie(t, i)
	}
	f.waitApplied(t, epoch)
	requireIdentical(t, p, f)

	s := f.rep.Stats()
	if s.Bootstraps != 1 {
		t.Fatalf("rotation under a caught-up follower re-bootstrapped: %+v", s)
	}
	if s.Reconnects == 0 {
		t.Fatalf("rotation did not end the stream: %+v", s)
	}
}

// TestFollowerRebootstrapsAcrossMissedRotation disconnects the follower,
// rotates the primary's log while epochs accumulate, and reconnects: the
// old base is gone and the follower is behind the new one, so it must
// re-bootstrap from the checkpoint and then resume streaming.
func TestFollowerRebootstrapsAcrossMissedRotation(t *testing.T) {
	p := newPrimary(t)
	f := newFollower(t, p.ts.URL, nil)

	epoch := p.addMovie(t, 0)
	f.waitApplied(t, epoch)
	if err := f.stop(); err != nil {
		t.Fatalf("follower run: %v", err)
	}

	for i := 1; i < 3; i++ {
		p.addMovie(t, i)
	}
	if err := p.st.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	epoch = p.addMovie(t, 3)

	f.start()
	f.waitApplied(t, epoch)
	requireIdentical(t, p, f)

	s := f.rep.Stats()
	if s.Bootstraps != 2 {
		t.Fatalf("expected exactly one re-bootstrap, got stats %+v", s)
	}
}

// recordingBody captures every byte the replica reads off the stream, so
// the cut-point matrix below knows the exact chunk boundaries.
type recordingBody struct {
	rc  io.ReadCloser
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (r *recordingBody) Read(p []byte) (int, error) {
	n, err := r.rc.Read(p)
	if n > 0 {
		r.mu.Lock()
		r.buf.Write(p[:n])
		r.mu.Unlock()
	}
	return n, err
}

func (r *recordingBody) Close() error { return r.rc.Close() }

// cuttingBody delivers at most budget bytes, then fails every read as if
// the connection dropped.
type cuttingBody struct {
	rc     io.ReadCloser
	budget int64
}

var errCut = errors.New("replica_test: connection cut")

func (c *cuttingBody) Read(p []byte) (int, error) {
	if c.budget <= 0 {
		c.rc.Close()
		return 0, errCut
	}
	if int64(len(p)) > c.budget {
		p = p[:c.budget]
	}
	n, err := c.rc.Read(p)
	c.budget -= int64(n)
	return n, err
}

func (c *cuttingBody) Close() error { return c.rc.Close() }

// TestFollowerResumesFromEveryCutPoint is the kill/reconnect matrix: the
// stream is cut at every chunk boundary and at mid-header and mid-frame
// points inside every chunk, and after reconnecting from its last applied
// offset the follower must still converge to a byte-identical state —
// torn chunks are retransmitted whole, applied chunks are never replayed.
func TestFollowerResumesFromEveryCutPoint(t *testing.T) {
	p := newPrimary(t)
	const updates = 4
	var last uint64
	for i := 0; i < updates; i++ {
		last = p.addMovie(t, i)
	}

	// Pass 1: a clean follower records the stream's exact bytes.
	var mu sync.Mutex
	var recorded bytes.Buffer
	rec := newFollower(t, p.ts.URL, func(rc io.ReadCloser) io.ReadCloser {
		return &recordingBody{rc: rc, mu: &mu, buf: &recorded}
	})
	rec.waitApplied(t, last)
	requireIdentical(t, p, rec)
	mu.Lock()
	stream := append([]byte(nil), recorded.Bytes()...)
	mu.Unlock()

	// Parse the recording into cumulative chunk-boundary offsets (in
	// stream-byte space, not log space).
	var boundaries []int64
	br := bytes.NewReader(stream)
	total := int64(len(stream))
	for {
		if _, err := wal.ReadChunk(br); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatalf("recorded stream does not parse: %v", err)
		}
		boundaries = append(boundaries, total-int64(br.Len()))
	}
	if len(boundaries) != updates {
		t.Fatalf("recorded %d chunks for %d single-delta epochs", len(boundaries), updates)
	}

	// The matrix: every chunk boundary, plus a mid-header point and a
	// mid-frame point inside every chunk.
	cuts := map[int64]bool{3: true} // mid-header of the very first chunk
	prev := int64(0)
	for _, b := range boundaries {
		cuts[b] = true                               // exactly at a chunk boundary
		cuts[prev+chunkHeaderSizeForTest()+5] = true // mid-frame, just past the header
		if b-7 > prev {
			cuts[b-7] = true // mid-frame, tail of the chunk
		}
		prev = b
	}
	for cut := range cuts {
		if cut <= 0 || cut > total {
			delete(cuts, cut)
		}
	}

	for cut := range cuts {
		cut := cut
		t.Run(fmt.Sprintf("cut@%d", cut), func(t *testing.T) {
			first := true
			f := newFollower(t, p.ts.URL, func(rc io.ReadCloser) io.ReadCloser {
				if first {
					first = false
					return &cuttingBody{rc: rc, budget: cut}
				}
				return rc
			})
			f.waitApplied(t, last)
			requireIdentical(t, p, f)
			if cut < total && f.rep.Stats().Reconnects == 0 {
				t.Fatalf("cut at byte %d of %d did not force a reconnect", cut, total)
			}
		})
	}
}

// chunkHeaderSizeForTest re-exports the wire constant for cut-point
// arithmetic without widening the wal API.
func chunkHeaderSizeForTest() int64 { return 4 + 8 + 8 + 8 + 4 }

// TestFollowerWedgesOnDivergence hand-feeds the follower's store an epoch
// the primary never produced and checks the contract: ApplyReplicated
// refuses out-of-order epochs outright, and a diverging delta wedges the
// store while readers keep the last consistent epoch.
func TestFollowerWedgesOnDivergence(t *testing.T) {
	p := newPrimary(t)
	f := newFollower(t, p.ts.URL, nil)
	epoch := p.addMovie(t, 0)
	f.waitApplied(t, epoch)
	if err := f.stop(); err != nil {
		t.Fatalf("follower run: %v", err)
	}

	// Epoch gap: must be refused without wedging.
	d, err := graph.ReadDeltaJSON(strings.NewReader(
		fmt.Sprintf(`{"add_nodes": [{"label": "movie", "value": 500}], "add_edges": [[-1, %d]]}`, p.years[0])), f.in)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.st.ApplyReplicated(epoch+2, []*graph.Delta{d}); err == nil {
		t.Fatal("epoch gap accepted")
	}

	// A delta that cannot apply (edge to a node that does not exist
	// here) at the right epoch: the store must wedge.
	bad, err := graph.ReadDeltaJSON(strings.NewReader(
		`{"add_nodes": [{"label": "movie", "value": 501}], "add_edges": [[-1, 999999]]}`), f.in)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.st.ApplyReplicated(epoch+1, []*graph.Delta{bad}); err == nil {
		t.Fatal("diverging delta accepted")
	}
	snap := f.st.Acquire()
	if snap.Epoch != epoch {
		t.Fatalf("reader epoch moved to %d after divergence; want %d", snap.Epoch, epoch)
	}
	snap.Release()
	if err := f.st.ApplyReplicated(epoch+1, []*graph.Delta{d}); err == nil {
		t.Fatal("wedged store accepted another replicated epoch")
	}
}
