// Package replica is the client side of WAL streaming replication: it
// bootstraps a read-only follower from a primary's checkpoint, replays
// the primary's committed log records as they stream in, and keeps the
// follower's epoch-versioned store in lockstep — epoch for epoch, byte
// for byte — with the primary's published history.
//
// The protocol (primary side in internal/server, wire framing in
// internal/wal):
//
//  1. GET /wal/checkpoint → the primary's checkpoint snapshot. The
//     follower loads it and publishes it as its base epoch.
//  2. GET /wal/stream?from=<offset>&base=<epoch> → a long-lived chunked
//     response. Each chunk is one published epoch: all of its records,
//     verbatim. The follower applies the chunk's deltas as one epoch
//     (store.ApplyReplicated) and advances its cursor to the chunk's
//     end offset.
//  3. The stream ends when a checkpoint rotates the primary's log. The
//     follower reconnects; a 409 tells it the new log's base epoch. If
//     its applied epoch equals the new base it resumes at the new log's
//     first record — nothing is lost, rotation preserves history — and
//     otherwise it re-bootstraps from the newer checkpoint.
//
// Any other disconnect is retried with exponential backoff from the last
// applied offset; the chunk framing guarantees a torn transfer never
// applies a partial epoch. Divergence — the primary's accepted record
// failing to apply here — wedges the store (readers keep the last
// consistent epoch) and stops the loop; it means the two histories no
// longer agree and resuming would serve silently wrong answers.
package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/server"
	"boundedg/internal/store"
	"boundedg/internal/wal"
)

// ErrDiverged wraps every error that stops Run permanently: replica
// state that can no longer be reconciled with the primary's history
// (a delta the primary accepted failing here, a primary that lost
// history the follower already applied, a sharded primary).
var ErrDiverged = errors.New("replica: cannot continue from primary")

// Config configures a Replica.
type Config struct {
	// Primary is the primary's base URL, e.g. "http://10.0.0.1:8080".
	Primary string
	// Client is the HTTP client for all requests; nil uses a client with
	// no overall timeout (the stream request is deliberately unbounded).
	Client *http.Client
	// Backoff is the initial reconnect delay, doubling to 32x per silent
	// failure and resetting once a chunk applies. Defaults to 250ms.
	Backoff time.Duration
	// Logf, when set, receives connection lifecycle messages.
	Logf func(format string, args ...any)

	// wrapBody, when set (tests), wraps the stream response body — e.g.
	// to cut the connection after N bytes and exercise resume.
	wrapBody func(io.ReadCloser) io.ReadCloser
}

// Replica drives one follower. Construct with New, call Bootstrap to
// fetch the initial state, build the store over it, Attach the store,
// then Run in a goroutine for the lifetime of the daemon.
type Replica struct {
	cfg Config
	in  *graph.Interner
	st  *store.Store

	base    atomic.Uint64 // base epoch of the primary log the cursor points into
	offset  atomic.Int64  // primary log offset fully applied and published here
	applied atomic.Uint64 // follower's published epoch
	primary atomic.Uint64 // primary's published epoch per the last chunk

	reconnects    atomic.Uint64
	bootstraps    atomic.Uint64
	connected     atomic.Bool
	everConnected atomic.Bool
	diverged      atomic.Bool

	errMu   sync.Mutex
	lastErr string
}

// New returns a replica client resolving labels through in (the interner
// the follower's graph, schema and server share).
func New(cfg Config, in *graph.Interner) *Replica {
	if cfg.Backoff <= 0 {
		cfg.Backoff = 250 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	cfg.Primary = strings.TrimRight(cfg.Primary, "/")
	return &Replica{cfg: cfg, in: in}
}

func (r *Replica) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

func (r *Replica) setErr(err error) {
	r.errMu.Lock()
	r.lastErr = err.Error()
	r.errMu.Unlock()
}

// Stats adapts the replica's counters to the server's /stats block.
func (r *Replica) Stats() server.ReplicationStats {
	s := server.ReplicationStats{
		Primary:      r.cfg.Primary,
		AppliedEpoch: r.applied.Load(),
		PrimaryEpoch: r.primary.Load(),
		Offset:       r.offset.Load(),
		Reconnects:   r.reconnects.Load(),
		Bootstraps:   r.bootstraps.Load(),
		Connected:    r.connected.Load(),
		Inconsistent: r.diverged.Load(),
	}
	if s.PrimaryEpoch > s.AppliedEpoch {
		s.Lag = s.PrimaryEpoch - s.AppliedEpoch
	}
	r.errMu.Lock()
	s.LastError = r.lastErr
	r.errMu.Unlock()
	return s
}

// fetchCheckpoint downloads and decodes the primary's current
// checkpoint.
func (r *Replica) fetchCheckpoint(ctx context.Context) (*graph.Graph, *access.IndexSet, uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.Primary+"/wal/checkpoint", nil)
	if err != nil {
		return nil, nil, 0, err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return nil, nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotImplemented {
		return nil, nil, 0, fmt.Errorf("%w: primary is sharded; follower replication only supports unsharded primaries", ErrDiverged)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, nil, 0, fmt.Errorf("replica: checkpoint fetch: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var ck server.CheckpointResponse
	if err := json.NewDecoder(resp.Body).Decode(&ck); err != nil {
		return nil, nil, 0, fmt.Errorf("replica: decode checkpoint response: %w", err)
	}
	g, err := graph.ReadSnapshotJSON(bytes.NewReader(ck.Graph), r.in)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("replica: load checkpoint graph: %w", err)
	}
	idx, err := access.ReadIndexSet(bytes.NewReader(ck.Index), r.in)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("replica: load checkpoint index: %w", err)
	}
	return g, idx, ck.Epoch, nil
}

// Bootstrap fetches the primary's checkpoint and returns its graph and
// index set for the caller to build the follower store and engine over,
// along with the checkpoint epoch (pass it to store.WithBaseEpoch). The
// replica's cursor is anchored at the start of the log that begins at
// that checkpoint.
func (r *Replica) Bootstrap(ctx context.Context) (*graph.Graph, *access.IndexSet, uint64, error) {
	g, idx, epoch, err := r.fetchCheckpoint(ctx)
	if err != nil {
		return nil, nil, 0, err
	}
	r.base.Store(epoch)
	r.applied.Store(epoch)
	r.primary.Store(epoch)
	r.offset.Store(wal.HeaderSize())
	r.bootstraps.Add(1)
	return g, idx, epoch, nil
}

// Attach hands the replica the store built from Bootstrap's state. Must
// be called before Run.
func (r *Replica) Attach(st *store.Store) { r.st = st }

// rebootstrap re-anchors a running follower on the primary's current
// checkpoint after a rotation it could not ride across.
func (r *Replica) rebootstrap(ctx context.Context) error {
	g, idx, epoch, err := r.fetchCheckpoint(ctx)
	if err != nil {
		return err
	}
	if epoch < r.applied.Load() {
		// The primary's newest checkpoint is behind what this follower
		// already serves: the primary lost history (e.g. recovered without
		// an un-fsynced tail the stream had already delivered). Epochs
		// cannot rewind; an operator must re-seed the follower.
		return fmt.Errorf("%w: primary checkpoint epoch %d is behind follower epoch %d (primary lost history; re-seed the follower)", ErrDiverged, epoch, r.applied.Load())
	}
	if epoch > r.applied.Load() {
		if err := r.st.ResetReplicated(epoch, g, idx); err != nil {
			return fmt.Errorf("%w: %v", ErrDiverged, err)
		}
	}
	r.base.Store(epoch)
	r.applied.Store(epoch)
	r.offset.Store(wal.HeaderSize())
	r.bootstraps.Add(1)
	r.logf("replica: re-bootstrapped from checkpoint at epoch %d", epoch)
	return nil
}

// Run streams and applies the primary's log until ctx is canceled,
// reconnecting with backoff from the last applied offset. It returns nil
// on cancellation and an ErrDiverged-wrapped error when the follower can
// no longer follow (the store is left wedged for writes but serving its
// last consistent epoch).
func (r *Replica) Run(ctx context.Context) error {
	if r.st == nil {
		return errors.New("replica: Run before Attach")
	}
	backoff := r.cfg.Backoff
	for {
		progressed, err := r.streamOnce(ctx)
		if ctx.Err() != nil {
			return nil
		}
		if err != nil {
			if errors.Is(err, ErrDiverged) {
				r.diverged.Store(true)
				r.setErr(err)
				r.logf("replica: stopping: %v", err)
				return err
			}
			r.setErr(err)
			r.logf("replica: stream: %v (reconnecting in %s)", err, backoff)
		}
		if progressed {
			backoff = r.cfg.Backoff
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(backoff):
		}
		if !progressed && backoff < 32*r.cfg.Backoff {
			backoff *= 2
		}
	}
}

// streamOnce opens one stream connection and applies chunks until it
// ends. progressed reports whether at least one epoch applied (resets
// the caller's backoff). A clean end (rotation, network cut) returns a
// nil or retriable error; ErrDiverged-wrapped errors are terminal.
func (r *Replica) streamOnce(ctx context.Context) (progressed bool, err error) {
	u := fmt.Sprintf("%s/wal/stream?from=%d&base=%d", r.cfg.Primary, r.offset.Load(), r.base.Load())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, err
	}
	if r.everConnected.Swap(true) {
		r.reconnects.Add(1)
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		// The log rotated. Resume on the new log if our applied epoch is
		// exactly its base; otherwise catch up from the checkpoint.
		var rd server.StreamRedirect
		if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
			return false, fmt.Errorf("replica: decode stream redirect: %w", err)
		}
		if rd.LogBaseEpoch == r.applied.Load() {
			r.base.Store(rd.LogBaseEpoch)
			r.offset.Store(wal.HeaderSize())
			r.logf("replica: log rotated; resuming at new base epoch %d", rd.LogBaseEpoch)
			return true, nil
		}
		return true, r.rebootstrap(ctx)
	case http.StatusNotImplemented:
		return false, fmt.Errorf("%w: primary is sharded; follower replication only supports unsharded primaries", ErrDiverged)
	case http.StatusRequestedRangeNotSatisfiable:
		// The primary has less published log than we already applied: it
		// lost history. A newer checkpoint cannot exist, so this is
		// terminal (rebootstrap would find the same truth).
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return false, fmt.Errorf("%w: primary rejected offset %d: %s (primary lost history; re-seed the follower)", ErrDiverged, r.offset.Load(), strings.TrimSpace(string(body)))
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return false, fmt.Errorf("replica: stream: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}

	r.connected.Store(true)
	defer r.connected.Store(false)
	body := io.ReadCloser(resp.Body)
	if r.cfg.wrapBody != nil {
		body = r.cfg.wrapBody(body)
		defer body.Close()
	}
	for {
		c, err := wal.ReadChunk(body)
		if err != nil {
			if err == io.EOF {
				// Chunk-boundary end: the primary rotated its log (or shut
				// down). Reconnect; the base check sorts out which.
				return progressed, nil
			}
			if err == io.ErrUnexpectedEOF {
				return progressed, fmt.Errorf("replica: stream cut mid-chunk (will resume from offset %d)", r.offset.Load())
			}
			return progressed, err
		}
		if err := r.applyChunk(c); err != nil {
			return progressed, err
		}
		progressed = true
	}
}

// applyChunk decodes and applies one streamed epoch atomically.
func (r *Replica) applyChunk(c wal.Chunk) error {
	recs, err := wal.ParseFrames(c.Frames)
	if err != nil {
		return fmt.Errorf("replica: chunk at epoch %d: %w", c.Epoch, err)
	}
	if len(recs) == 0 {
		return fmt.Errorf("replica: empty chunk at epoch %d", c.Epoch)
	}
	deltas := make([]*graph.Delta, len(recs))
	for i, rec := range recs {
		if rec.Epoch != c.Epoch {
			return fmt.Errorf("replica: chunk at epoch %d carries a record of epoch %d", c.Epoch, rec.Epoch)
		}
		d, err := graph.ReadDeltaJSON(bytes.NewReader(rec.Payload), r.in)
		if err != nil {
			return fmt.Errorf("%w: record of epoch %d does not decode: %v", ErrDiverged, c.Epoch, err)
		}
		deltas[i] = d
	}
	if err := r.st.ApplyReplicated(c.Epoch, deltas); err != nil {
		return fmt.Errorf("%w: %v", ErrDiverged, err)
	}
	r.applied.Store(c.Epoch)
	r.offset.Store(c.EndOffset)
	if c.PrimaryEpoch > r.primary.Load() {
		r.primary.Store(c.PrimaryEpoch)
	}
	return nil
}
