package core

import (
	"fmt"
	"strings"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
)

// TestTheorem3NoUniversalOptimum demonstrates Theorem 3's point: no single
// effectively bounded plan minimizes |GQ| on EVERY instance. Two
// constraint routes exist for node B (via A or via C); instance gA makes
// the A-route cheaper, instance gC makes the C-route cheaper, so a plan
// fixed in advance loses on one of them. QPlan's worst-case choice is
// instance-blind by design.
func TestTheorem3NoUniversalOptimum(t *testing.T) {
	in := graph.NewInterner()
	lA, lB, lC := in.Intern("A"), in.Intern("B"), in.Intern("C")
	q := pattern.New(in)
	aN := q.AddNodeNamed("A", nil)
	bN := q.AddNodeNamed("B", nil)
	cN := q.AddNodeNamed("C", nil)
	q.MustAddEdge(aN, bN)
	q.MustAddEdge(cN, bN)
	schema := access.NewSchema(
		access.MustNew(nil, lA, 4),
		access.MustNew(nil, lC, 4),
		access.MustNew([]graph.Label{lA}, lB, 4),
		access.MustNew([]graph.Label{lC}, lB, 4),
	)

	// build makes a graph where either A-nodes or C-nodes fan out widely.
	build := func(fatSide graph.Label) *graph.Graph {
		g := graph.New(in)
		var as, cs []graph.NodeID
		for i := 0; i < 4; i++ {
			as = append(as, g.AddNode(lA, graph.NoValue()))
			cs = append(cs, g.AddNode(lC, graph.NoValue()))
		}
		fat, thin := as, cs
		if fatSide == lC {
			fat, thin = cs, as
		}
		// Fat side: 3 B-children each (12 B's). Thin side: all share one B.
		shared := g.AddNode(lB, graph.NoValue())
		for _, v := range thin {
			g.MustAddEdge(v, shared)
		}
		for _, v := range fat {
			for k := 0; k < 3; k++ {
				b := g.AddNode(lB, graph.NoValue())
				g.MustAddEdge(v, b)
			}
			g.MustAddEdge(v, shared)
		}
		return g
	}
	gA := build(lA) // A fans out: fetching B via C is cheaper here
	gC := build(lC) // C fans out: fetching B via A is cheaper here

	p, err := NewPlan(q, schema, Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	idxA, v1 := access.Build(gA, schema)
	idxC, v2 := access.Build(gC, schema)
	if v1 != nil || v2 != nil {
		t.Fatalf("fixtures violate schema: %v %v", v1, v2)
	}
	_, stA, err := p.Exec(gA, idxA)
	if err != nil {
		t.Fatal(err)
	}
	_, stC, err := p.Exec(gC, idxC)
	if err != nil {
		t.Fatal(err)
	}
	// The same plan pays differently on the two instances — whichever
	// side it fetches B through is fat on one of them.
	if stA.Accessed() == stC.Accessed() {
		t.Skipf("instances happened to cost the same (%d); fixture too symmetric", stA.Accessed())
	}
	// Both answers are still exact.
	for _, tc := range []struct {
		g   *graph.Graph
		idx *access.IndexSet
	}{{gA, idxA}, {gC, idxC}} {
		bres, _, err := p.EvalSubgraph(tc.g, tc.idx, match.SubgraphOptions{StoreMatches: true})
		if err != nil {
			t.Fatal(err)
		}
		dres := match.VF2(q, tc.g, match.SubgraphOptions{StoreMatches: true})
		if bres.Count != dres.Count {
			t.Fatalf("exactness lost: %d vs %d", bres.Count, dres.Count)
		}
	}
}

// TestArity3Constraint exercises |S| = 3, the largest arity the paper
// reports using ("|S| is at most 3").
func TestArity3Constraint(t *testing.T) {
	in := graph.NewInterner()
	lY, lC, lG, lM := in.Intern("year"), in.Intern("country"), in.Intern("genre"), in.Intern("movie")
	g := graph.New(in)
	y := g.AddNode(lY, graph.IntValue(2000))
	co := g.AddNode(lC, graph.NoValue())
	ge := g.AddNode(lG, graph.NoValue())
	var movies []graph.NodeID
	for i := 0; i < 3; i++ {
		m := g.AddNode(lM, graph.IntValue(int64(i)))
		movies = append(movies, m)
		g.MustAddEdge(m, y)
		g.MustAddEdge(m, co)
		g.MustAddEdge(m, ge)
	}
	// A movie attached to only two of the three anchors: not a common
	// neighbor of the triple.
	partial := g.AddNode(lM, graph.IntValue(99))
	g.MustAddEdge(partial, y)
	g.MustAddEdge(partial, co)

	schema := access.NewSchema(
		access.MustNew(nil, lY, 10),
		access.MustNew(nil, lC, 10),
		access.MustNew(nil, lG, 10),
		access.MustNew([]graph.Label{lY, lC, lG}, lM, 1800), // the paper's (4) example
	)
	idx, viols := access.Build(g, schema)
	if viols != nil {
		t.Fatal(viols)
	}
	if got := idx.Index(3).Lookup([]graph.NodeID{y, co, ge}); len(got) != 3 {
		t.Fatalf("triple lookup = %v, want the 3 full movies", got)
	}

	q := pattern.New(in)
	uy := q.AddNodeNamed("year", nil)
	uc := q.AddNodeNamed("country", nil)
	ug := q.AddNodeNamed("genre", nil)
	um := q.AddNodeNamed("movie", nil)
	q.MustAddEdge(um, uy)
	q.MustAddEdge(um, uc)
	q.MustAddEdge(um, ug)
	if !EBChk(q, schema) {
		t.Fatalf("query must be bounded through the arity-3 constraint")
	}
	res, _, err := BVF2(q, g, idx, match.SubgraphOptions{StoreMatches: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 3 {
		t.Fatalf("matches = %d, want 3 (partial movie excluded)", res.Count)
	}
}

// TestSameLabelPatternNodes: a pattern with two distinct movie nodes
// sharing an award, checked end to end (injectivity matters for VF2).
func TestSameLabelPatternNodes(t *testing.T) {
	in := graph.NewInterner()
	lA, lM := in.Intern("award"), in.Intern("movie")
	g := graph.New(in)
	aw := g.AddNode(lA, graph.NoValue())
	m1 := g.AddNode(lM, graph.IntValue(1))
	m2 := g.AddNode(lM, graph.IntValue(2))
	g.MustAddEdge(m1, aw)
	g.MustAddEdge(m2, aw)

	schema := access.NewSchema(
		access.MustNew(nil, lA, 5),
		access.MustNew([]graph.Label{lA}, lM, 4),
	)
	idx, viols := access.Build(g, schema)
	if viols != nil {
		t.Fatal(viols)
	}
	q := pattern.New(in)
	ua := q.AddNodeNamed("award", nil)
	u1 := q.AddNodeNamed("movie", nil)
	u2 := q.AddNodeNamed("movie", nil)
	q.MustAddEdge(u1, ua)
	q.MustAddEdge(u2, ua)
	if !EBChk(q, schema) {
		t.Fatalf("must be bounded")
	}
	res, _, err := BVF2(q, g, idx, match.SubgraphOptions{StoreMatches: true})
	if err != nil {
		t.Fatal(err)
	}
	// (m1, m2) and (m2, m1): two injective assignments.
	if res.Count != 2 {
		t.Fatalf("count = %d, want 2", res.Count)
	}
	direct := match.VF2(q, g, match.SubgraphOptions{})
	if direct.Count != res.Count {
		t.Fatalf("disagrees with direct: %d vs %d", res.Count, direct.Count)
	}
}

// TestPlanStringStable: the rendering includes every op and edge check.
func TestPlanStringStable(t *testing.T) {
	in := graph.NewInterner()
	p, err := NewPlan(fixtureQ0(in), fixtureA0(in), Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for i := 1; i <= len(p.Ops); i++ {
		if !strings.Contains(s, fmt.Sprintf("ft%d(", i)) {
			t.Fatalf("missing op %d in rendering:\n%s", i, s)
		}
	}
	if strings.Count(s, "check edge") != len(p.EdgeChecks) {
		t.Fatalf("edge checks not all rendered:\n%s", s)
	}
}

// TestExplainAccounting: Explain reproduces Example 1's arithmetic for Q0
// under A0 — the totals 17923 nodes and 35136 edges appear verbatim when
// the year bound is the predicate-filtered 3 (the paper's quoted numbers
// plug in observed counts; Explain uses the worst-case bounds, so we
// check the formula pieces instead).
func TestExplainAccounting(t *testing.T) {
	in := graph.NewInterner()
	p, err := NewPlan(fixtureQ0(in), fixtureA0(in), Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Explain()
	for _, frag := range []string{
		"ft1", "ft6", "worst case",
		"<=12960 nodes", // movie fetch: 4 * 24 * 135
		"GQ <= ",
	} {
		if !strings.Contains(s, frag) {
			t.Fatalf("Explain missing %q:\n%s", frag, s)
		}
	}
}

// TestSemanticsString covers the enum rendering.
func TestSemanticsString(t *testing.T) {
	if Subgraph.String() != "subgraph" || Simulation.String() != "simulation" {
		t.Fatalf("%v %v", Subgraph, Simulation)
	}
	if Semantics(9).String() == "" {
		t.Fatalf("unknown semantics should still render")
	}
}

// TestExecStatsAccessors: the derived quantities.
func TestExecStatsAccessors(t *testing.T) {
	st := &ExecStats{NodesAccessed: 3, EdgesAccessed: 4}
	if st.Accessed() != 7 {
		t.Fatalf("Accessed = %d", st.Accessed())
	}
}

// TestExecWithinWorstCase: on the IMDb fixture every execution stays
// within the plan's worst-case estimates.
func TestExecWithinWorstCase(t *testing.T) {
	in := graph.NewInterner()
	q, a, g, idx := buildIMDbIndexed(t, in, 12, 3, 4, 2, 3)
	for _, mk := range []func() (*Plan, error){
		func() (*Plan, error) { return NewPlan(q, a, Subgraph) },
		func() (*Plan, error) { return NewNaivePlan(q, a, Subgraph) },
	} {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := p.Exec(g, idx)
		if err != nil {
			t.Fatal(err)
		}
		if float64(st.GQNodes) > p.EstGQNodes() {
			t.Fatalf("GQ nodes %d exceed estimate %v", st.GQNodes, p.EstGQNodes())
		}
	}
}

// TestEmptyPatternBehavior freezes the degenerate case: an empty pattern
// is vacuously bounded, its plan has no operations, and evaluation yields
// no matches.
func TestEmptyPatternBehavior(t *testing.T) {
	in := graph.NewInterner()
	q := pattern.New(in)
	a := fixtureA0(in)
	if !EBnd(q, a, Subgraph).Bounded {
		t.Fatalf("empty pattern should be vacuously bounded")
	}
	p, err := NewPlan(q, a, Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Ops) != 0 || len(p.EdgeChecks) != 0 {
		t.Fatalf("empty plan expected")
	}
	g := fixtureIMDb(t, in, 1, 3, 2, 2, 1, 1)
	idx, viols := access.Build(g, a)
	if viols != nil {
		t.Fatal(viols)
	}
	res, st, err := p.EvalSubgraph(g, idx, match.SubgraphOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 || st.GQNodes != 0 {
		t.Fatalf("empty pattern evaluated to %d matches, GQ %d", res.Count, st.GQNodes)
	}
}
