package core

import (
	"sort"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// GreedyExtension finds a SMALL (not minimum) M-bounded extension of A
// under which every query of the load is instance-bounded in g, or
// ok = false when even the maximum M-bounded extension fails (then use a
// larger M; see Proposition 5).
//
// Finding a minimum extension is logAPX-hard (§V, Remark), so we
// approximate greedily in the style of set cover: starting from A,
// repeatedly add the candidate type-1/type-2 constraint that newly covers
// the most still-uncovered pattern nodes and edges across the load,
// breaking ties toward smaller bounds N. The result is always a subset of
// MaxExtension's additions, so g satisfies it whenever g ⊨ A.
//
// Compared to EEChk's maximum extension this typically builds far fewer
// indices — the quantity that matters for index storage and maintenance.
func GreedyExtension(queries []*pattern.Pattern, a *access.Schema, m int, g *graph.Graph, sem Semantics) (*access.Schema, bool) {
	// Candidate constraints: exactly MaxExtension's additions.
	full := MaxExtension(g, a, queries, m)
	var candidates []access.Constraint
	base := make(map[string]bool, a.Count())
	for _, c := range a.Constraints() {
		base[c.Key()] = true
	}
	for _, c := range full.Constraints() {
		if !base[c.Key()] {
			candidates = append(candidates, c)
		}
	}
	// Deterministic order: smaller N first, then key.
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].N != candidates[j].N {
			return candidates[i].N < candidates[j].N
		}
		return candidates[i].Key() < candidates[j].Key()
	})

	// Feasibility check against the maximum extension first.
	feasible := true
	for _, q := range queries {
		if !EBnd(q, full, sem).Bounded {
			feasible = false
			break
		}
	}
	if !feasible {
		return full, false
	}

	cur := a.Clone()
	uncoveredCount := func(s *access.Schema) int {
		total := 0
		for _, q := range queries {
			res := EBnd(q, s, sem)
			total += len(res.UncoveredNodes()) + len(res.UncoveredEdges())
		}
		return total
	}
	remaining := uncoveredCount(cur)
	used := make([]bool, len(candidates))
	for remaining > 0 {
		bestIdx, bestRemaining := -1, remaining
		for i, c := range candidates {
			if used[i] {
				continue
			}
			trial := cur.Clone()
			trial.Add(c)
			if r := uncoveredCount(trial); r < bestRemaining {
				bestIdx, bestRemaining = i, r
			}
		}
		if bestIdx < 0 {
			// No single constraint helps, but the maximum extension is
			// feasible — add the cheapest unused candidate and continue
			// (progress is guaranteed because coverage is monotone and
			// the full set succeeds).
			for i := range candidates {
				if !used[i] {
					bestIdx = i
					break
				}
			}
			if bestIdx < 0 {
				return full, true // exhausted: fall back to the maximum
			}
			trial := cur.Clone()
			trial.Add(candidates[bestIdx])
			bestRemaining = uncoveredCount(trial)
		}
		used[bestIdx] = true
		cur.Add(candidates[bestIdx])
		remaining = bestRemaining
	}
	return cur, true
}
