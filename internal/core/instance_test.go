package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// TestExample7 reproduces Example 7: with A = A0 minus φ4 ({}→year) and
// φ5 ({}→award), Q0 is not effectively bounded; EEChk with M = 150 finds
// the maximum extension (re-adding year/award type-1 constraints with the
// instance's exact counts) and accepts.
func TestExample7(t *testing.T) {
	in := graph.NewInterner()
	q := fixtureQ0(in)
	full := fixtureA0(in).Constraints()
	// Drop φ4 and φ5 (indices 5 and 6 in fixtureA0's order).
	a := access.NewSchema(full[0], full[1], full[2], full[3], full[4], full[7])
	if EBnd(q, a, Subgraph).Bounded {
		t.Fatalf("Q0 must be unbounded without the year/award seeds")
	}
	// Instance with ≤150 years and awards.
	g := fixtureIMDb(t, in, 3, 12, 4, 5, 2, 3)
	ok, am := EEChk([]*pattern.Pattern{q}, a, 150, g, Subgraph)
	if !ok {
		t.Fatalf("EEChk(M=150) must accept")
	}
	// The extension must contain exact type-1 bounds for year and award.
	ly, la := in.Intern("year"), in.Intern("award")
	if n, ok := am.Type1Bound(ly); !ok || n != 12 {
		t.Fatalf("year bound = %d, %v; want 12", n, ok)
	}
	if n, ok := am.Type1Bound(la); !ok || n != 4 {
		t.Fatalf("award bound = %d, %v; want 4", n, ok)
	}
	// Q0 effectively bounded under AM, and g |= AM.
	if !EBnd(q, am, Subgraph).Bounded {
		t.Fatalf("Q0 must be bounded under AM")
	}
	if viols := access.Validate(g, am); viols != nil {
		t.Fatalf("g must satisfy AM: %v", viols)
	}
}

// TestEEChkRejectsTightM: an M below the instance's label counts yields no
// usable extension.
func TestEEChkRejectsTightM(t *testing.T) {
	in := graph.NewInterner()
	q := fixtureQ0(in)
	full := fixtureA0(in).Constraints()
	a := access.NewSchema(full[0], full[1], full[2], full[3], full[4], full[7])
	g := fixtureIMDb(t, in, 3, 12, 4, 5, 2, 3)
	// M = 2: years (12) and awards (4) both exceed it; their type-2
	// in-neighbor bounds from movie-side also exceed nothing useful.
	ok, _ := EEChk([]*pattern.Pattern{q}, a, 2, g, Subgraph)
	if ok {
		t.Fatalf("EEChk(M=2) must reject")
	}
}

// TestProposition5 checks that a sufficiently large M always works (for a
// query load over labels of the instance): the maximum extension with
// M = |G| makes every connected query instance-bounded.
func TestProposition5(t *testing.T) {
	in := graph.NewInterner()
	g := fixtureIMDb(t, in, 3, 8, 3, 3, 2, 2)
	empty := access.NewSchema()
	queries := []*pattern.Pattern{fixtureQ0(in)}
	ok, am := EEChk(queries, empty, g.Size(), g, Subgraph)
	if !ok {
		t.Fatalf("Proposition 5: M = |G| must make the load instance-bounded")
	}
	if viols := access.Validate(g, am); viols != nil {
		t.Fatalf("g must satisfy AM: %v", viols)
	}
	// The extension adds at most LQ(LQ+1) type-1/2 constraints over the
	// load's labels (the paper's LQ(LQ+1)/2 counts unordered pairs; we
	// enumerate ordered (l,l') plus type-1, still O(LQ²)).
	lq := len(queries[0].LabelSet())
	if am.Count() > lq*(lq+1) {
		t.Fatalf("extension has %d constraints; bound %d", am.Count(), lq*(lq+1))
	}
}

// TestMinimalMAlreadyBounded: a query bounded under A has minimal M = 0.
func TestMinimalMAlreadyBounded(t *testing.T) {
	in := graph.NewInterner()
	q := fixtureQ0(in)
	a := fixtureA0(in)
	g := fixtureIMDb(t, in, 3, 6, 2, 3, 2, 2)
	m, ok := MinimalM(q, a, g, Subgraph)
	if !ok || m != 0 {
		t.Fatalf("MinimalM = %d, %v; want 0, true", m, ok)
	}
}

// TestMinimalMExactThreshold: the minimal M is exactly the largest
// cardinality the deduction chain needs.
func TestMinimalMExactThreshold(t *testing.T) {
	in := graph.NewInterner()
	q := fixtureQ0(in)
	empty := access.NewSchema()
	g := fixtureIMDb(t, in, 3, 12, 4, 5, 2, 3)
	m, ok := MinimalM(q, empty, g, Subgraph)
	if !ok {
		t.Fatalf("MinimalM must exist for Q0 over the fixture")
	}
	if m <= 0 {
		t.Fatalf("MinimalM = %d; empty schema cannot bound at 0 unless the pattern's labels are absent", m)
	}
	// Verification: bounded at m, not bounded at m-1.
	okAt := func(mm int) bool {
		ok2, _ := EEChk([]*pattern.Pattern{q}, empty, mm, g, Subgraph)
		return ok2
	}
	if !okAt(m) {
		t.Fatalf("EEChk at MinimalM must accept")
	}
	if okAt(m - 1) {
		t.Fatalf("EEChk below MinimalM must reject (m=%d)", m)
	}
}

// TestMinimalMSimulationGEQSubgraph: simulation needs at least as large an
// M as subgraph semantics (covers are more restrictive).
func TestMinimalMSimulationGEQSubgraph(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := graph.NewInterner()
		labels := []string{"A", "B", "C"}
		g := graph.New(in)
		n := 10 + r.Intn(15)
		for i := 0; i < n; i++ {
			g.AddNodeNamed(labels[r.Intn(3)], graph.NoValue())
		}
		for i := 0; i < 2*n; i++ {
			a, b := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
			if a != b {
				_ = g.AddEdge(a, b)
			}
		}
		q := pattern.New(in)
		qn := 2 + r.Intn(2)
		for i := 0; i < qn; i++ {
			q.AddNodeNamed(labels[r.Intn(3)], nil)
		}
		for i := 1; i < qn; i++ {
			_ = q.AddEdge(pattern.Node(i-1), pattern.Node(i))
		}
		empty := access.NewSchema()
		mSub, okSub := MinimalM(q, empty, g, Subgraph)
		mSim, okSim := MinimalM(q, empty, g, Simulation)
		if okSim && !okSub {
			t.Logf("seed %d: simulation bounded but subgraph not", seed)
			return false
		}
		if okSub && okSim && mSim < mSub {
			t.Logf("seed %d: mSim %d < mSub %d", seed, mSim, mSub)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxExtensionAddsZeroBounds: labels absent from G get {}->(l,0),
// making queries over them trivially bounded.
func TestMaxExtensionAddsZeroBounds(t *testing.T) {
	in := graph.NewInterner()
	g := graph.New(in)
	g.AddNodeNamed("A", graph.NoValue())
	q := pattern.New(in)
	aN := q.AddNodeNamed("A", nil)
	bN := q.AddNodeNamed("Z", nil) // absent from g
	q.MustAddEdge(aN, bN)
	ok, am := EEChk([]*pattern.Pattern{q}, access.NewSchema(), 10, g, Subgraph)
	if !ok {
		t.Fatalf("query over absent label must be instance-bounded")
	}
	lz := in.Intern("Z")
	if n, ok := am.Type1Bound(lz); !ok || n != 0 {
		t.Fatalf("Z bound = %d, %v; want 0", n, ok)
	}
}
