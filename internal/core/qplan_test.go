package core

import (
	"errors"
	"strings"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// TestExample6Plan reproduces Example 6: QPlan on (Q0, A0) yields six
// fetch operations — type-1 fetches for u1 (award), u2 (year), u6
// (country), then u3 (movie) from {u1, u2} via φ1, then u4/u5 via φ2.
func TestExample6Plan(t *testing.T) {
	in := graph.NewInterner()
	q := fixtureQ0(in)
	a := fixtureA0(in)
	p, err := NewPlan(q, a, Subgraph)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	if len(p.Ops) != 6 {
		t.Fatalf("got %d ops, want 6:\n%s", len(p.Ops), p)
	}
	// First three ops are the type-1 seeds (order: u1, u2, u6 by node id).
	type1Targets := map[pattern.Node]bool{}
	for _, op := range p.Ops[:3] {
		if op.Deps != nil {
			t.Fatalf("seed op for %s has deps", q.Name(op.U))
		}
		type1Targets[op.U] = true
	}
	for _, u := range []pattern.Node{0, 1, 5} { // u1, u2, u6
		if !type1Targets[u] {
			t.Fatalf("node %s not seeded by type-1", q.Name(u))
		}
	}
	// The movie fetch depends on the award and year nodes.
	var movieOp *FetchOp
	for i := range p.Ops {
		if p.Ops[i].U == 2 {
			movieOp = &p.Ops[i]
		}
	}
	if movieOp == nil || len(movieOp.Deps) != 2 {
		t.Fatalf("movie op = %+v", movieOp)
	}
	depSet := map[pattern.Node]bool{movieOp.Deps[0]: true, movieOp.Deps[1]: true}
	if !depSet[0] || !depSet[1] {
		t.Fatalf("movie deps = %v, want {u1, u2}", movieOp.Deps)
	}
	// Size estimates: movie = 4·24·135 = 12960; actor = 30·12960.
	if p.EstSize[2] != 4*24*135 {
		t.Fatalf("EstSize[movie] = %v", p.EstSize[2])
	}
	if p.EstSize[3] != 30*4*24*135 || p.EstSize[4] != 30*4*24*135 {
		t.Fatalf("EstSize[actor/actress] = %v / %v", p.EstSize[3], p.EstSize[4])
	}
	if p.EstSize[5] != 196 {
		t.Fatalf("EstSize[country] = %v (country should keep its type-1 bound; the FD would give 1·size[actor], much larger)", p.EstSize[5])
	}
	// Every pattern edge has a verification strategy.
	if len(p.EdgeChecks) != q.NumEdges() {
		t.Fatalf("edge checks: %d, want %d", len(p.EdgeChecks), q.NumEdges())
	}
	// The plan renders with the paper's vocabulary.
	s := p.String()
	if !strings.Contains(s, "ft1(") || !strings.Contains(s, "check edge") {
		t.Fatalf("plan rendering:\n%s", s)
	}
}

// TestExample11Plan reproduces Example 11: sQPlan on (Q2, A1) seeds u3,
// u4 by type-1, then fetches u2 from {u3, u4} via φB and u1 from {u2} via
// φA — four operations.
func TestExample11Plan(t *testing.T) {
	in := graph.NewInterner()
	q2 := fixtureQ2(in)
	a1 := fixtureA1(in)
	p, err := NewPlan(q2, a1, Simulation)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	if len(p.Ops) != 4 {
		t.Fatalf("got %d ops, want 4:\n%s", len(p.Ops), p)
	}
	// u3(C) and u4(D) seeded; u2 from both; u1 from u2.
	var u2op, u1op *FetchOp
	for i := range p.Ops {
		switch p.Ops[i].U {
		case 1:
			u2op = &p.Ops[i]
		case 0:
			u1op = &p.Ops[i]
		}
	}
	if u2op == nil || len(u2op.Deps) != 2 {
		t.Fatalf("u2 op = %+v", u2op)
	}
	if u1op == nil || len(u1op.Deps) != 1 || u1op.Deps[0] != 1 {
		t.Fatalf("u1 op = %+v", u1op)
	}
	// Example 11's estimates: |cmat(u3)| = |cmat(u4)| = 1, |cmat(u2)| ≤
	// 2·1·1 = 2, |cmat(u1)| ≤ 2·2 = 4.
	want := []float64{4, 2, 1, 1}
	for i, w := range want {
		if p.EstSize[i] != w {
			t.Fatalf("EstSize[u%d] = %v, want %v", i+1, p.EstSize[i], w)
		}
	}
}

// TestPlanRejectsUnbounded: Q1 under A1 for simulation must be refused.
func TestPlanRejectsUnbounded(t *testing.T) {
	in := graph.NewInterner()
	q1 := fixtureQ1(in)
	a1 := fixtureA1(in)
	if _, err := NewPlan(q1, a1, Simulation); !errors.Is(err, ErrNotBounded) {
		t.Fatalf("err = %v, want ErrNotBounded", err)
	}
	// ... but accepted for subgraph semantics (Example 8: VCov = V1).
	if _, err := NewPlan(q1, a1, Subgraph); err != nil {
		t.Fatalf("subgraph plan: %v", err)
	}
}

// TestPlanReducesWithTighterConstraint: when a non-type-1 constraint gives
// a smaller bound than a type-1 seed, QPlan appends a reducing fetch.
func TestPlanReducesWithTighterConstraint(t *testing.T) {
	in := graph.NewInterner()
	q := pattern.New(in)
	aN := q.AddNodeNamed("A", nil)
	bN := q.AddNodeNamed("B", nil)
	q.MustAddEdge(aN, bN)
	// B has a loose type-1 bound 1000 but a tight A -> (B, 2): the plan
	// should fetch B twice, ending at estimate 5·2 = 10 < 1000.
	a := access.NewSchema(
		access.MustNew(nil, in.Intern("A"), 5),
		access.MustNew(nil, in.Intern("B"), 1000),
		access.MustNew([]graph.Label{in.Intern("A")}, in.Intern("B"), 2),
	)
	p, err := NewPlan(q, a, Subgraph)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	if p.EstSize[bN] != 10 {
		t.Fatalf("EstSize[B] = %v, want 10", p.EstSize[bN])
	}
	nB := 0
	for _, op := range p.Ops {
		if op.U == bN {
			nB++
		}
	}
	if nB != 2 {
		t.Fatalf("B fetched %d times, want 2 (seed + reduction)", nB)
	}
}

// TestPlanKeepsType1WhenTighter: the reduction is not taken when the
// type-1 bound is already smaller.
func TestPlanKeepsType1WhenTighter(t *testing.T) {
	in := graph.NewInterner()
	q := pattern.New(in)
	aN := q.AddNodeNamed("A", nil)
	bN := q.AddNodeNamed("B", nil)
	q.MustAddEdge(aN, bN)
	a := access.NewSchema(
		access.MustNew(nil, in.Intern("A"), 5),
		access.MustNew(nil, in.Intern("B"), 3),
		access.MustNew([]graph.Label{in.Intern("A")}, in.Intern("B"), 2),
	)
	p, err := NewPlan(q, a, Subgraph)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	if p.EstSize[bN] != 3 {
		t.Fatalf("EstSize[B] = %v, want 3 (type-1 already tighter than 5·2)", p.EstSize[bN])
	}
}

// TestWorstCaseOptimalityChain: on a chain A -> B -> C with generous
// type-1 bounds and tight type-2 constraints, the plan must propagate the
// products (the worst-case-optimal choice).
func TestWorstCaseOptimalityChain(t *testing.T) {
	in := graph.NewInterner()
	q := pattern.New(in)
	aN := q.AddNodeNamed("A", nil)
	bN := q.AddNodeNamed("B", nil)
	cN := q.AddNodeNamed("C", nil)
	q.MustAddEdge(aN, bN)
	q.MustAddEdge(bN, cN)
	a := access.NewSchema(
		access.MustNew(nil, in.Intern("A"), 2),
		access.MustNew(nil, in.Intern("B"), 1000),
		access.MustNew(nil, in.Intern("C"), 1000),
		access.MustNew([]graph.Label{in.Intern("A")}, in.Intern("B"), 3),
		access.MustNew([]graph.Label{in.Intern("B")}, in.Intern("C"), 4),
	)
	p, err := NewPlan(q, a, Subgraph)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	if p.EstSize[aN] != 2 || p.EstSize[bN] != 6 || p.EstSize[cN] != 24 {
		t.Fatalf("EstSize = %v, want [2 6 24]", p.EstSize)
	}
	if p.EstGQNodes() != 32 {
		t.Fatalf("EstGQNodes = %v", p.EstGQNodes())
	}
}

// TestPlanEdgeCheckEndpointsConsistent: each edge check's Target is one of
// the edge's endpoints and its Deps include the other.
func TestPlanEdgeCheckEndpointsConsistent(t *testing.T) {
	in := graph.NewInterner()
	q := fixtureQ0(in)
	a := fixtureA0(in)
	p, err := NewPlan(q, a, Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	for _, ec := range p.EdgeChecks {
		if ec.Target != ec.From && ec.Target != ec.To {
			t.Fatalf("target %v not an endpoint of (%v,%v)", ec.Target, ec.From, ec.To)
		}
		found := false
		for _, d := range ec.Deps {
			if d == ec.Other() {
				found = true
			}
		}
		if !found {
			t.Fatalf("deps %v of edge (%v,%v) miss the other endpoint", ec.Deps, ec.From, ec.To)
		}
		c := p.A.At(ec.CIdx)
		if c.L != q.LabelOf(ec.Target) {
			t.Fatalf("constraint target label mismatch")
		}
		if len(ec.Deps) != len(c.S) {
			t.Fatalf("deps arity %d != |S| %d", len(ec.Deps), len(c.S))
		}
	}
}
