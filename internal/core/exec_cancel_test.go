package core

import (
	"context"
	"reflect"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/ctxtest"
	"boundedg/internal/workload"
)

// cancelFixture returns a workload graph with its index set and one
// bounded subgraph plan that has dependent fetches and edge checks.
func cancelFixture(t *testing.T, scale float64) (*workload.Dataset, *access.IndexSet, *Plan) {
	t.Helper()
	d := workload.DBpedia(scale, 11)
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		t.Fatalf("index build: %v", viols[0])
	}
	for _, q := range workload.DefaultQueryGen.Generate(d, 40, 19) {
		p, err := NewPlan(q, d.Schema, Subgraph)
		if err != nil {
			continue
		}
		if len(p.Ops) >= 3 && len(p.EdgeChecks) >= 2 {
			return d, idx, p
		}
	}
	t.Fatal("no bounded query with enough plan structure in the load")
	return nil, nil, nil
}

// TestExecWithPreCancelled: an already-cancelled context returns its error
// before any index is probed.
func TestExecWithPreCancelled(t *testing.T) {
	d, idx, p := cancelFixture(t, 0.05)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bg, stats, err := p.ExecWith(d.G, idx, &ExecConfig{Ctx: ctx})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if bg != nil || stats != nil {
		t.Fatalf("cancelled execution leaked results: bg=%v stats=%v", bg, stats)
	}
}

// TestExecWithCancelMidEvaluation aborts one bounded query on a workload
// graph at EVERY context poll point in turn — mid fetch, mid GQ build, mid
// edge verification — and checks that (a) the abort surfaces
// context.Canceled, and (b) the shared scratch is restored well enough
// that the next, uncancelled execution with the same scratch reproduces
// the reference result bit-for-bit.
func TestExecWithCancelMidEvaluation(t *testing.T) {
	d, idx, p := cancelFixture(t, 0.25)
	want, wantStats, err := p.Exec(d.G, idx)
	if err != nil {
		t.Fatalf("reference Exec: %v", err)
	}

	for _, workers := range []int{1, 4} {
		// Count the poll points of a full run at this worker count.
		probe := &ctxtest.CountingCtx{After: 1 << 40}
		scratch := NewExecScratch()
		if _, _, err := p.ExecWith(d.G, idx, &ExecConfig{Workers: workers, Scratch: scratch, Ctx: probe}); err != nil {
			t.Fatalf("probe run (workers=%d): %v", workers, err)
		}
		total := probe.Calls()
		if total < 4 {
			t.Fatalf("workers=%d: only %d context polls in a full run; fixture too small", workers, total)
		}

		for k := int64(0); k < total; k++ {
			ctx := &ctxtest.CountingCtx{After: k}
			bg, stats, err := p.ExecWith(d.G, idx, &ExecConfig{Workers: workers, Scratch: scratch, Ctx: ctx})
			if err != context.Canceled {
				t.Fatalf("workers=%d abort@%d: err = %v, want context.Canceled", workers, k, err)
			}
			if bg != nil || stats != nil {
				t.Fatalf("workers=%d abort@%d leaked results", workers, k)
			}
			// The scratch must be clean: an uncancelled rerun with the
			// same scratch must match the reference exactly.
			gotBG, gotStats, err := p.ExecWith(d.G, idx, &ExecConfig{Workers: workers, Scratch: scratch})
			if err != nil {
				t.Fatalf("workers=%d rerun after abort@%d: %v", workers, k, err)
			}
			if !reflect.DeepEqual(gotStats, wantStats) {
				t.Fatalf("workers=%d rerun after abort@%d: stats = %+v, want %+v", workers, k, gotStats, wantStats)
			}
			if !reflect.DeepEqual(gotBG.Cands, want.Cands) || !reflect.DeepEqual(gotBG.ToOrig, want.ToOrig) {
				t.Fatalf("workers=%d rerun after abort@%d: scratch was poisoned (GQ differs)", workers, k)
			}
		}
	}
}

// TestExecWithPoolScratchSurvivesCancel: executions drawing from the
// process-wide scratch pool must not poison the pool when cancelled.
func TestExecWithPoolScratchSurvivesCancel(t *testing.T) {
	d, idx, p := cancelFixture(t, 0.05)
	want, wantStats, err := p.Exec(d.G, idx)
	if err != nil {
		t.Fatalf("reference Exec: %v", err)
	}
	probe := &ctxtest.CountingCtx{After: 1 << 40}
	if _, _, err := p.ExecWith(d.G, idx, &ExecConfig{Ctx: probe}); err != nil {
		t.Fatalf("probe run: %v", err)
	}
	total := probe.Calls()
	if total > 24 {
		total = 24
	}
	for k := int64(0); k < total; k++ {
		ctx := &ctxtest.CountingCtx{After: k}
		if _, _, err := p.ExecWith(d.G, idx, &ExecConfig{Ctx: ctx}); err != context.Canceled {
			t.Fatalf("abort@%d: err = %v, want context.Canceled", k, err)
		}
		got, gotStats, err := p.Exec(d.G, idx)
		if err != nil {
			t.Fatalf("rerun after abort@%d: %v", k, err)
		}
		if !reflect.DeepEqual(gotStats, wantStats) || !reflect.DeepEqual(got.Cands, want.Cands) {
			t.Fatalf("rerun after abort@%d differs from reference", k)
		}
	}
}
