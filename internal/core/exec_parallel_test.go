package core

import (
	"reflect"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// TestExecWithMatchesSerial checks that sharded execution with a frozen
// snapshot reproduces the serial fetch bit-for-bit: same candidate sets,
// same GQ, same ID mapping, same stats — for both semantics and several
// worker counts.
func TestExecWithMatchesSerial(t *testing.T) {
	subIn := graph.NewInterner()
	simIn := graph.NewInterner()
	cases := []struct {
		name string
		sem  Semantics
		q    *pattern.Pattern
		g    *graph.Graph
		a    *access.Schema
	}{
		{"subgraph/Q0", Subgraph, fixtureQ0(subIn), fixtureIMDb(t, subIn, 5, 10, 4, 6, 4, 20), fixtureA0(subIn)},
		{"simulation/Q2", Simulation, fixtureQ2(simIn), fixtureG1(simIn, 6), fixtureA1(simIn)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewPlan(tc.q, tc.a, tc.sem)
			if err != nil {
				t.Fatalf("NewPlan: %v", err)
			}
			idx, viols := access.Build(tc.g, tc.a)
			if viols != nil {
				t.Fatalf("Build: %v", viols[0])
			}
			fz := tc.g.Freeze()
			wantBG, wantStats, err := p.Exec(tc.g, idx)
			if err != nil {
				t.Fatalf("serial Exec: %v", err)
			}
			for _, workers := range []int{2, 4, 8} {
				for _, useFz := range []bool{false, true} {
					cfg := &ExecConfig{Workers: workers}
					if useFz {
						cfg.Frozen = fz
					}
					bg, stats, err := p.ExecWith(tc.g, idx, cfg)
					if err != nil {
						t.Fatalf("ExecWith(w=%d, fz=%v): %v", workers, useFz, err)
					}
					if !reflect.DeepEqual(stats, wantStats) {
						t.Fatalf("ExecWith(w=%d, fz=%v) stats = %+v, want %+v", workers, useFz, stats, wantStats)
					}
					if !reflect.DeepEqual(bg.Cands, wantBG.Cands) {
						t.Fatalf("ExecWith(w=%d, fz=%v) candidate sets differ", workers, useFz)
					}
					if !reflect.DeepEqual(bg.ToOrig, wantBG.ToOrig) {
						t.Fatalf("ExecWith(w=%d, fz=%v) ID mapping differs", workers, useFz)
					}
					if bg.G.NumNodes() != wantBG.G.NumNodes() || bg.G.NumEdges() != wantBG.G.NumEdges() {
						t.Fatalf("ExecWith(w=%d, fz=%v) GQ = %v, want %v", workers, useFz, bg.G, wantBG.G)
					}
					same := true
					wantBG.G.Edges(func(from, to graph.NodeID) bool {
						if !bg.G.HasEdge(from, to) {
							same = false
						}
						return same
					})
					if !same {
						t.Fatalf("ExecWith(w=%d, fz=%v) GQ edges differ", workers, useFz)
					}
				}
			}
		})
	}
}
