package core

import (
	"math/rand"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// fixtureQ0 builds the paper's Fig. 1 pattern Q0 over the shared interner.
// Node order: u1=award, u2=year, u3=movie, u4=actor, u5=actress,
// u6=country — matching the paper's numbering.
func fixtureQ0(in *graph.Interner) *pattern.Pattern {
	q := pattern.New(in)
	u1 := q.AddNodeNamed("award", nil)
	u2 := q.AddNodeNamed("year", pattern.Predicate{
		pattern.Ge(graph.IntValue(2011)), pattern.Le(graph.IntValue(2013)),
	})
	u3 := q.AddNodeNamed("movie", nil)
	u4 := q.AddNodeNamed("actor", nil)
	u5 := q.AddNodeNamed("actress", nil)
	u6 := q.AddNodeNamed("country", nil)
	q.MustAddEdge(u3, u1)
	q.MustAddEdge(u3, u2)
	q.MustAddEdge(u3, u4)
	q.MustAddEdge(u3, u5)
	q.MustAddEdge(u4, u6)
	q.MustAddEdge(u5, u6)
	return q
}

// fixtureA0 builds Example 3's access schema A0 (8 constraints).
func fixtureA0(in *graph.Interner) *access.Schema {
	l := func(s string) graph.Label { return in.Intern(s) }
	return access.NewSchema(
		access.MustNew([]graph.Label{l("year"), l("award")}, l("movie"), 4), // φ1
		access.MustNew([]graph.Label{l("movie")}, l("actor"), 30),           // φ2a
		access.MustNew([]graph.Label{l("movie")}, l("actress"), 30),         // φ2b
		access.MustNew([]graph.Label{l("actor")}, l("country"), 1),          // φ3a
		access.MustNew([]graph.Label{l("actress")}, l("country"), 1),        // φ3b
		access.MustNew(nil, l("year"), 135),                                 // φ4
		access.MustNew(nil, l("award"), 24),                                 // φ5
		access.MustNew(nil, l("country"), 196),                              // φ6
	)
}

// fixtureIMDb generates a small IMDb-shaped graph satisfying A0: years
// 2005..2014, a few awards and countries, moviesPerPair movies per
// (year, award), castPerMovie actors + actresses per movie, one country
// per person.
func fixtureIMDb(t testing.TB, in *graph.Interner, seed int64, years, awards, countries, moviesPerPair, castPerMovie int) *graph.Graph {
	t.Helper()
	if moviesPerPair > 4 || castPerMovie > 30 {
		t.Fatalf("fixture would violate A0")
	}
	r := rand.New(rand.NewSource(seed))
	g := graph.New(in)
	yearIDs := make([]graph.NodeID, years)
	for i := range yearIDs {
		yearIDs[i] = g.AddNodeNamed("year", graph.IntValue(int64(2014-i)))
	}
	awardIDs := make([]graph.NodeID, awards)
	for i := range awardIDs {
		awardIDs[i] = g.AddNodeNamed("award", graph.StringValue("award"+string(rune('A'+i))))
	}
	countryIDs := make([]graph.NodeID, countries)
	for i := range countryIDs {
		countryIDs[i] = g.AddNodeNamed("country", graph.StringValue("c"+string(rune('A'+i))))
	}
	movieNo := 0
	for _, y := range yearIDs {
		for _, a := range awardIDs {
			for k := 0; k < moviesPerPair; k++ {
				m := g.AddNodeNamed("movie", graph.IntValue(int64(movieNo)))
				movieNo++
				g.MustAddEdge(m, y)
				g.MustAddEdge(m, a)
				for c := 0; c < castPerMovie; c++ {
					ac := g.AddNodeNamed("actor", graph.NoValue())
					g.MustAddEdge(m, ac)
					g.MustAddEdge(ac, countryIDs[r.Intn(countries)])
					as := g.AddNodeNamed("actress", graph.NoValue())
					g.MustAddEdge(m, as)
					g.MustAddEdge(as, countryIDs[r.Intn(countries)])
				}
			}
		}
	}
	return g
}

// fixtureQ1 and fixtureQ2 build Fig. 2's Q1 and Example 9's Q2 (Q1 with
// (u3,u2) and (u4,u2) reversed). Node order: u1=A, u2=B, u3=C, u4=D.
func fixtureQ1(in *graph.Interner) *pattern.Pattern {
	q := pattern.New(in)
	u1 := q.AddNodeNamed("A", nil)
	u2 := q.AddNodeNamed("B", nil)
	u3 := q.AddNodeNamed("C", nil)
	u4 := q.AddNodeNamed("D", nil)
	q.MustAddEdge(u1, u2)
	q.MustAddEdge(u2, u1)
	q.MustAddEdge(u3, u2)
	q.MustAddEdge(u4, u2)
	return q
}

func fixtureQ2(in *graph.Interner) *pattern.Pattern {
	q := pattern.New(in)
	u1 := q.AddNodeNamed("A", nil)
	u2 := q.AddNodeNamed("B", nil)
	u3 := q.AddNodeNamed("C", nil)
	u4 := q.AddNodeNamed("D", nil)
	q.MustAddEdge(u1, u2)
	q.MustAddEdge(u2, u1)
	q.MustAddEdge(u2, u3)
	q.MustAddEdge(u2, u4)
	return q
}

// fixtureA1 builds Example 8's schema A1.
func fixtureA1(in *graph.Interner) *access.Schema {
	l := func(s string) graph.Label { return in.Intern(s) }
	return access.NewSchema(
		access.MustNew([]graph.Label{l("B")}, l("A"), 2),         // φA
		access.MustNew([]graph.Label{l("C"), l("D")}, l("B"), 2), // φB
		access.MustNew(nil, l("C"), 1),                           // φC
		access.MustNew(nil, l("D"), 1),                           // φD
	)
}

// fixtureG1 builds Fig. 2's G1: an alternating A/B cycle of nPairs pairs
// with C and D nodes pointing at the last B.
func fixtureG1(in *graph.Interner, nPairs int) *graph.Graph {
	g := graph.New(in)
	cycle := make([]graph.NodeID, 0, 2*nPairs)
	for i := 0; i < nPairs; i++ {
		cycle = append(cycle, g.AddNodeNamed("A", graph.NoValue()))
		cycle = append(cycle, g.AddNodeNamed("B", graph.NoValue()))
	}
	for i := range cycle {
		g.MustAddEdge(cycle[i], cycle[(i+1)%len(cycle)])
	}
	vc := g.AddNodeNamed("C", graph.NoValue())
	vd := g.AddNodeNamed("D", graph.NoValue())
	g.MustAddEdge(vc, cycle[len(cycle)-1])
	g.MustAddEdge(vd, cycle[len(cycle)-1])
	return g
}
