package core

import (
	"fmt"
	"math"

	"boundedg/internal/access"
	"boundedg/internal/pattern"
)

// NewNaivePlan builds a correct but unoptimized query plan for an
// effectively bounded query: it seeds type-1 fetches and then fetches each
// remaining node through the FIRST applicable actualized constraint, with
// no size-based choice and no candidate reductions.
//
// It exists as the ablation baseline for QPlan's worst-case optimality
// (Theorem 4): both plans compute the same Q(G), but the naive plan's
// worst-case GQ (EstGQNodes) is never smaller and often dramatically
// larger. cmd/benchrunner's ablation and BenchmarkAblationPlans measure
// the difference.
func NewNaivePlan(q *pattern.Pattern, a *access.Schema, sem Semantics) (*Plan, error) {
	cov := EBnd(q, a, sem)
	if !cov.Bounded {
		return nil, fmt.Errorf("%w: uncovered nodes %v, uncovered edges %v",
			ErrNotBounded, cov.UncoveredNodes(), cov.UncoveredEdges())
	}
	gamma := actualize(q, a, sem)
	n := q.NumNodes()
	byTarget := make([][]int, n)
	for fi, phi := range gamma {
		byTarget[phi.U] = append(byTarget[phi.U], fi)
	}

	p := &Plan{Sem: sem, Q: q, A: a, EstSize: make([]float64, n)}
	sn := make([]bool, n)
	for i := range p.EstSize {
		p.EstSize[i] = math.Inf(1)
	}
	for ui := 0; ui < n; ui++ {
		u := pattern.Node(ui)
		for _, ci := range a.ByTarget(labelOf(q, u)) {
			c := a.At(ci)
			if !c.Type1() {
				continue
			}
			p.Ops = append(p.Ops, FetchOp{U: u, CIdx: ci})
			sn[ui] = true
			p.EstSize[ui] = float64(c.N)
			break // first type-1, not the tightest
		}
	}

	// Fetch each unseeded node through the first actualized constraint
	// whose dependencies are available, in pattern-node order, looping
	// until no progress. One fetch per node — no reductions.
	for progress := true; progress; {
		progress = false
		for ui := 0; ui < n; ui++ {
			if sn[ui] {
				continue
			}
			for _, fi := range byTarget[ui] {
				phi := gamma[fi]
				c := a.At(phi.CIdx)
				deps := make([]pattern.Node, 0, len(c.S))
				prod := float64(c.N)
				ok := true
				for _, s := range c.S {
					var w pattern.Node = -1
					for _, x := range phi.Nbrs {
						if labelOf(q, x) == s && sn[x] {
							w = x // first available, not the smallest
							break
						}
					}
					if w == -1 {
						ok = false
						break
					}
					deps = append(deps, w)
					prod *= p.EstSize[w]
				}
				if !ok {
					continue
				}
				p.Ops = append(p.Ops, FetchOp{U: pattern.Node(ui), Deps: deps, CIdx: phi.CIdx})
				p.EstSize[ui] = prod
				sn[ui] = true
				progress = true
				break
			}
		}
	}
	for ui := 0; ui < n; ui++ {
		if !sn[ui] {
			return nil, fmt.Errorf("core: internal: naive plan cannot reach node %s", q.Name(pattern.Node(ui)))
		}
	}
	if err := p.planEdgeChecks(gamma, sn); err != nil {
		return nil, err
	}
	return p, nil
}
