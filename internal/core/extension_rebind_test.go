package core

import (
	"errors"
	"reflect"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
)

// TestGreedyExtensionSmallerThanMax: the greedy extension bounds the load
// with (usually far) fewer added constraints than the maximum extension.
func TestGreedyExtensionSmallerThanMax(t *testing.T) {
	in := graph.NewInterner()
	q := fixtureQ0(in)
	g := fixtureIMDb(t, in, 3, 12, 4, 5, 2, 3)
	empty := access.NewSchema()
	load := []*pattern.Pattern{q}

	ok, full := EEChk(load, empty, 1000, g, Subgraph)
	if !ok {
		t.Fatalf("max extension must work at M = 1000")
	}
	greedy, gok := GreedyExtension(load, empty, 1000, g, Subgraph)
	if !gok {
		t.Fatalf("greedy must succeed when the max extension does")
	}
	if !EBnd(q, greedy, Subgraph).Bounded {
		t.Fatalf("greedy extension does not bound the query")
	}
	if greedy.Count() > full.Count() {
		t.Fatalf("greedy (%d) larger than max (%d)", greedy.Count(), full.Count())
	}
	if greedy.Count() == full.Count() {
		t.Logf("note: greedy did not shrink the extension (%d constraints)", greedy.Count())
	}
	// g must satisfy the greedy extension (bounds are exact maxima).
	if viols := access.Validate(g, greedy); viols != nil {
		t.Fatalf("g violates greedy extension: %v", viols[0])
	}
	t.Logf("max extension: %d constraints; greedy: %d", full.Count(), greedy.Count())
}

// TestGreedyExtensionInfeasible: when even the maximum extension fails,
// GreedyExtension reports it.
func TestGreedyExtensionInfeasible(t *testing.T) {
	in := graph.NewInterner()
	q := fixtureQ0(in)
	g := fixtureIMDb(t, in, 3, 12, 4, 5, 2, 3)
	// M = 2 is below every useful bound.
	if _, ok := GreedyExtension([]*pattern.Pattern{q}, access.NewSchema(), 2, g, Subgraph); ok {
		t.Fatalf("M = 2 must be infeasible")
	}
}

// TestGreedyExtensionKeepsBase: constraints of A are retained.
func TestGreedyExtensionKeepsBase(t *testing.T) {
	in := graph.NewInterner()
	q := fixtureQ0(in)
	g := fixtureIMDb(t, in, 3, 12, 4, 5, 2, 3)
	base := fixtureA0(in)
	greedy, ok := GreedyExtension([]*pattern.Pattern{q}, base, 1000, g, Subgraph)
	if !ok {
		t.Fatalf("greedy failed")
	}
	// Q0 is already bounded under A0, so greedy should add nothing.
	if greedy.Count() != base.Count() {
		t.Fatalf("greedy added %d constraints to an already-sufficient base", greedy.Count()-base.Count())
	}
}

// TestRebindTemplates: plan once, instantiate predicates per request.
func TestRebindTemplates(t *testing.T) {
	in := graph.NewInterner()
	q, a, g, idx := buildIMDbIndexed(t, in, 10, 3, 4, 2, 3)
	tmplPlan, err := NewPlan(q, a, Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	for _, yr := range []int64{2008, 2011, 2013} {
		inst := WithPredicates(q, map[pattern.Node]pattern.Predicate{
			1: {pattern.Eq(graph.IntValue(yr))}, // u2 = year
		})
		p2, err := tmplPlan.Rebind(inst)
		if err != nil {
			t.Fatalf("Rebind(%d): %v", yr, err)
		}
		bres, _, err := p2.EvalSubgraph(g, idx, match.SubgraphOptions{StoreMatches: true})
		if err != nil {
			t.Fatal(err)
		}
		dres := match.VF2(inst, g, match.SubgraphOptions{StoreMatches: true})
		match.SortMatches(bres.Matches)
		match.SortMatches(dres.Matches)
		if bres.Count != dres.Count || !reflect.DeepEqual(bres.Matches, dres.Matches) {
			t.Fatalf("year %d: rebound plan wrong: %d vs %d", yr, bres.Count, dres.Count)
		}
	}
}

// TestRebindRejectsStructuralChange: different labels or edges refuse.
func TestRebindRejectsStructuralChange(t *testing.T) {
	in := graph.NewInterner()
	q := fixtureQ0(in)
	a := fixtureA0(in)
	p, err := NewPlan(q, a, Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	// Different node count.
	q2 := pattern.New(in)
	q2.AddNodeNamed("award", nil)
	if _, err := p.Rebind(q2); !errors.Is(err, ErrRebindMismatch) {
		t.Fatalf("node count mismatch accepted: %v", err)
	}
	// Same shape, different label.
	q3 := WithPredicates(q, nil)
	q4 := pattern.New(in)
	for i := 0; i < q3.NumNodes(); i++ {
		l := q3.LabelOf(pattern.Node(i))
		if i == 0 {
			l = in.Intern("genre")
		}
		q4.AddNode(l, nil)
	}
	q3.Edges(func(from, to pattern.Node) bool {
		q4.MustAddEdge(from, to)
		return true
	})
	if _, err := p.Rebind(q4); !errors.Is(err, ErrRebindMismatch) {
		t.Fatalf("label mismatch accepted: %v", err)
	}
	// Same labels, different edge set (same count).
	q5 := pattern.New(in)
	for i := 0; i < q.NumNodes(); i++ {
		q5.AddNode(q.LabelOf(pattern.Node(i)), nil)
	}
	edges := q.EdgeList()
	for i, e := range edges {
		if i == 0 {
			q5.MustAddEdge(e[1], e[0]) // flip one edge
			continue
		}
		q5.MustAddEdge(e[0], e[1])
	}
	if _, err := p.Rebind(q5); !errors.Is(err, ErrRebindMismatch) {
		t.Fatalf("edge mismatch accepted: %v", err)
	}
	// Identical structure with new predicates: accepted.
	q6 := WithPredicates(q, map[pattern.Node]pattern.Predicate{2: {pattern.Ge(graph.IntValue(1))}})
	if _, err := p.Rebind(q6); err != nil {
		t.Fatalf("valid rebind rejected: %v", err)
	}
}
