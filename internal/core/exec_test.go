package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
)

// buildIMDbIndexed builds the IMDb fixture plus its A0 index set.
func buildIMDbIndexed(t testing.TB, in *graph.Interner, years, awards, countries, mpp, cast int) (*pattern.Pattern, *access.Schema, *graph.Graph, *access.IndexSet) {
	t.Helper()
	q := fixtureQ0(in)
	a := fixtureA0(in)
	g := fixtureIMDb(t, in, 11, years, awards, countries, mpp, cast)
	idx, viols := access.Build(g, a)
	if viols != nil {
		t.Fatalf("fixture violates A0: %v", viols)
	}
	return q, a, g, idx
}

// TestExecQ0MatchesDirectVF2: bounded evaluation equals direct VF2 on the
// IMDb fixture (the end-to-end Q(GQ) = Q(G) guarantee).
func TestExecQ0MatchesDirectVF2(t *testing.T) {
	in := graph.NewInterner()
	q, a, g, idx := buildIMDbIndexed(t, in, 10, 3, 4, 2, 3)

	p, err := NewPlan(q, a, Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	bres, stats, err := p.EvalSubgraph(g, idx, match.SubgraphOptions{StoreMatches: true})
	if err != nil {
		t.Fatal(err)
	}
	dres := match.VF2(q, g, match.SubgraphOptions{StoreMatches: true})
	if !bres.Completed || !dres.Completed {
		t.Fatalf("both runs must complete")
	}
	if bres.Count != dres.Count {
		t.Fatalf("bounded count %d != direct count %d", bres.Count, dres.Count)
	}
	match.SortMatches(bres.Matches)
	match.SortMatches(dres.Matches)
	if !reflect.DeepEqual(bres.Matches, dres.Matches) {
		t.Fatalf("match sets differ")
	}
	if dres.Count == 0 {
		t.Fatalf("fixture should have matches (got 0)")
	}
	// GQ must be much smaller than G.
	if stats.GQNodes >= g.NumNodes() {
		t.Fatalf("GQ has %d nodes, G has %d", stats.GQNodes, g.NumNodes())
	}
	if stats.Accessed() == 0 || stats.IndexLookups == 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
}

// TestExample1Accounting reproduces Example 1's arithmetic: with the
// paper's cardinalities (135 years, 24 awards, 196 countries, ≤4 movies
// per (year, award), ≤30 actors and ≤30 actresses per movie, one country
// per person), the plan accesses at most 17923 nodes and 35136 edges. We
// run a reduced instance (y years, w awards, c countries, m movies/pair,
// k cast) and check the same formulas:
//
//	nodes ≤ y + w + c + (w·ŷ·4) + 2·30·M        (ŷ = years matching the
//	edges ≤ 2·(w·ŷ·4) + 2·30·M + 2·M·k·1         predicate, M = |cmat(movie)|)
func TestExample1Accounting(t *testing.T) {
	in := graph.NewInterner()
	years, awards, countries, mpp, cast := 10, 3, 4, 2, 3
	q, a, g, idx := buildIMDbIndexed(t, in, years, awards, countries, mpp, cast)
	p, err := NewPlan(q, a, Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := p.Exec(g, idx)
	if err != nil {
		t.Fatal(err)
	}
	// Fixture years are 2014 down to 2014-years+1; predicate keeps
	// 2011..2013 → 3 match.
	matchYears := 3
	movies := awards * matchYears * mpp // exact: every (year,award) pair has mpp movies
	wantNodes := years + awards + countries + movies + 2*cast*movies
	if stats.NodesAccessed != wantNodes {
		t.Fatalf("NodesAccessed = %d, want %d", stats.NodesAccessed, wantNodes)
	}
	// Edge phase: (u3,u1) and (u3,u2) via φ1 over |cmat(u1)|·|cmat(u2)|
	// lookups returning mpp movies each; (u3,u4),(u3,u5) via φ2 over
	// movies·cast; (u4,u6),(u5,u6) via φ3 over cast-size·1.
	wantEdges := 2*(awards*matchYears*mpp) + 2*(movies*cast) + 2*(movies*cast*1)
	if stats.EdgesAccessed != wantEdges {
		t.Fatalf("EdgesAccessed = %d, want %d", stats.EdgesAccessed, wantEdges)
	}
	// The worst-case estimate from the plan bounds the actual fetch.
	if float64(stats.GQNodes) > p.EstGQNodes() {
		t.Fatalf("GQ nodes %d exceed worst-case estimate %v", stats.GQNodes, p.EstGQNodes())
	}
}

// TestExample1PaperNumbers verifies the exact numbers of Example 1 at the
// paper's cardinalities, using the plan's worst-case estimates (which are
// a function of Q and A only): cmat sizes 24, 135, 4·24·135, 30·(4·24·135)
// ... the paper then plugs in the *observed* year count (3) to quote
// 17923/35136; we check the estimate formulas instead.
func TestExample1PaperNumbers(t *testing.T) {
	in := graph.NewInterner()
	q := fixtureQ0(in)
	a := fixtureA0(in)
	p, err := NewPlan(q, a, Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{24, 135, 4 * 24 * 135, 30 * 4 * 24 * 135, 30 * 4 * 24 * 135, 196}
	for i, w := range want {
		if p.EstSize[i] != w {
			t.Fatalf("EstSize[u%d] = %v, want %v", i+1, p.EstSize[i], w)
		}
	}
}

// TestExecSimQ2 reproduces Example 11's execution: on G1, Q2's plan
// fetches a tiny GQ and bSim finds Q2(G1) = ∅ without touching the cycle.
func TestExecSimQ2(t *testing.T) {
	in := graph.NewInterner()
	q2 := fixtureQ2(in)
	a1 := fixtureA1(in)
	g1 := fixtureG1(in, 50) // 100-node cycle
	idx, viols := access.Build(g1, a1)
	if viols != nil {
		t.Fatalf("G1 violates A1: %v", viols)
	}
	p, err := NewPlan(q2, a1, Simulation)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := p.EvalSim(g1, idx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched {
		t.Fatalf("Q2(G1) must be empty (no B has C/D children)")
	}
	// The fetch must not scale with the cycle: C and D have one neighbor
	// each; u2 candidates are the common B-neighbors of (vc, vd) — just
	// v2n... which then has no C-child, but the fetch stays tiny.
	if stats.NodesAccessed > 10 {
		t.Fatalf("accessed %d nodes; must be independent of the cycle length", stats.NodesAccessed)
	}
	// Direct gsim agrees.
	if match.GSim(q2, g1).Matched {
		t.Fatalf("oracle disagrees")
	}
}

// TestExecSimAgreesOnMatchingInstance: build a G1 variant where Q2 does
// match, and check bSim equals gsim exactly.
func TestExecSimAgreesOnMatchingInstance(t *testing.T) {
	in := graph.NewInterner()
	q2 := fixtureQ2(in)
	a1 := fixtureA1(in)
	// G: A <-> B, B -> C, B -> D (one proper match), plus cycle noise
	// from fixtureG1 in the same graph.
	g := fixtureG1(in, 10)
	va := g.AddNodeNamed("A", graph.NoValue())
	vb := g.AddNodeNamed("B", graph.NoValue())
	// Reuse the existing C/D nodes? fixtureG1's C/D point INTO the cycle;
	// Q2 needs B -> C and B -> D. Wire the new B to fresh C/D... but A1
	// bounds {} -> (C,1), so reuse the existing single C/D nodes.
	var vc, vd graph.NodeID = graph.InvalidNode, graph.InvalidNode
	for _, v := range g.NodesByLabel(in.Intern("C")) {
		vc = v
	}
	for _, v := range g.NodesByLabel(in.Intern("D")) {
		vd = v
	}
	g.MustAddEdge(va, vb)
	g.MustAddEdge(vb, va)
	g.MustAddEdge(vb, vc)
	g.MustAddEdge(vb, vd)

	idx, viols := access.Build(g, a1)
	if viols != nil {
		t.Fatalf("violations: %v", viols)
	}
	p, err := NewPlan(q2, a1, Simulation)
	if err != nil {
		t.Fatal(err)
	}
	bres, _, err := p.EvalSim(g, idx)
	if err != nil {
		t.Fatal(err)
	}
	dres := match.GSim(q2, g)
	if bres.Matched != dres.Matched {
		t.Fatalf("bounded %v vs direct %v", bres.Matched, dres.Matched)
	}
	if !bres.Matched {
		t.Fatalf("the wired instance should match")
	}
	if !reflect.DeepEqual(bres.Sim, dres.Sim) {
		t.Fatalf("relations differ:\n%v\nvs\n%v", bres.Sim, dres.Sim)
	}
}

// TestBVF2AndBSimWrappers exercises the one-call APIs.
func TestBVF2AndBSimWrappers(t *testing.T) {
	in := graph.NewInterner()
	q, _, g, idx := buildIMDbIndexed(t, in, 6, 2, 3, 2, 2)
	res, stats, err := BVF2(q, g, idx, match.SubgraphOptions{})
	if err != nil {
		t.Fatal(err)
	}
	direct := match.VF2(q, g, match.SubgraphOptions{})
	if res.Count != direct.Count {
		t.Fatalf("BVF2 count %d vs %d", res.Count, direct.Count)
	}
	if stats.GQNodes == 0 {
		t.Fatalf("no GQ stats")
	}
	// Q0 is NOT simulation-bounded under A0: u4/u5's movie neighbor is a
	// parent, and sVCov only admits children (§VI). BSim must refuse.
	if _, _, err := BSim(q, g, idx); !errors.Is(err, ErrNotBounded) {
		t.Fatalf("BSim(Q0) err = %v, want ErrNotBounded", err)
	}

	// A simulation-bounded case: Q2 under A1 on G1.
	q2 := fixtureQ2(in)
	a1 := fixtureA1(in)
	g1 := fixtureG1(in, 8)
	idx1, viols := access.Build(g1, a1)
	if viols != nil {
		t.Fatal(viols)
	}
	sres, _, err := BSim(q2, g1, idx1)
	if err != nil {
		t.Fatal(err)
	}
	sdirect := match.GSim(q2, g1)
	if sres.Matched != sdirect.Matched || !reflect.DeepEqual(sres.Sim, sdirect.Sim) {
		t.Fatalf("BSim disagrees with gsim")
	}
}

// TestExecErrors covers the failure paths.
func TestExecErrors(t *testing.T) {
	in := graph.NewInterner()
	q, a, g, idx := buildIMDbIndexed(t, in, 6, 2, 3, 2, 2)
	p, err := NewPlan(q, a, Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	// Index set built for a different schema object.
	otherIdx, _ := access.Build(g, fixtureA0(in))
	if _, _, err := p.Exec(g, otherIdx); err != ErrSchemaMismatch {
		t.Fatalf("err = %v, want ErrSchemaMismatch", err)
	}
	if _, _, err := p.Exec(g, nil); err != ErrSchemaMismatch {
		t.Fatalf("nil idx err = %v", err)
	}
	_ = idx
}

// TestBoundedIndependentOfG: the plan's access counts on the year/award/
// country side must not grow when the graph grows in irrelevant places
// (extra movies outside the predicate range contribute nothing once the
// year filter removes their years... they do appear in (year,award)
// lookups for matching years only). We check the stronger paper property:
// fetch size depends only on matching years, not on |G|.
func TestBoundedIndependentOfG(t *testing.T) {
	in := graph.NewInterner()
	q := fixtureQ0(in)
	a := fixtureA0(in)
	p, err := NewPlan(q, a, Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	// Two graphs: 6 years vs 30 years (same matching years 2011-2013,
	// same per-pair cardinalities). NodesAccessed differs only by the
	// type-1 year fetch (6 vs 30); the bounded part (movies, cast) is
	// identical per matching year.
	gSmall := fixtureIMDb(t, in, 5, 6, 2, 3, 2, 2)
	gBig := fixtureIMDb(t, in, 5, 30, 2, 3, 2, 2)
	idxS, _ := access.Build(gSmall, a)
	idxB, _ := access.Build(gBig, a)
	_, stS, err := p.Exec(gSmall, idxS)
	if err != nil {
		t.Fatal(err)
	}
	_, stB, err := p.Exec(gBig, idxB)
	if err != nil {
		t.Fatal(err)
	}
	if stB.NodesAccessed-stS.NodesAccessed != 30-6 {
		t.Fatalf("bounded fetch grew with |G|: %d vs %d", stS.NodesAccessed, stB.NodesAccessed)
	}
	if stB.EdgesAccessed != stS.EdgesAccessed {
		t.Fatalf("edge accesses grew with |G|: %d vs %d", stS.EdgesAccessed, stB.EdgesAccessed)
	}
	if gBig.Size() <= gSmall.Size() {
		t.Fatalf("fixture sizes wrong")
	}
}

// randomBoundedCase builds a random graph, discovers a generous schema,
// and generates a random connected pattern; returns ok=false if the
// pattern is not effectively bounded (callers skip those).
func randomBoundedCase(r *rand.Rand, sem Semantics) (q *pattern.Pattern, g *graph.Graph, idx *access.IndexSet, ok bool) {
	in := graph.NewInterner()
	labels := []string{"A", "B", "C", "D"}
	g = graph.New(in)
	n := 15 + r.Intn(20)
	for i := 0; i < n; i++ {
		g.AddNodeNamed(labels[r.Intn(len(labels))], graph.IntValue(int64(r.Intn(5))))
	}
	m := r.Intn(3 * n)
	for i := 0; i < m; i++ {
		a, b := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
		if a != b {
			_ = g.AddEdge(a, b)
		}
	}
	schema := access.Discover(g, access.DiscoverOptions{MaxType1: 1000, MaxType2: 1000})
	idxSet, viols := access.Build(g, schema)
	if viols != nil {
		return nil, nil, nil, false
	}
	q = pattern.New(in)
	qn := 2 + r.Intn(3)
	for i := 0; i < qn; i++ {
		var pred pattern.Predicate
		if r.Intn(3) == 0 {
			pred = pattern.Predicate{pattern.Le(graph.IntValue(int64(r.Intn(5))))}
		}
		q.AddNodeNamed(labels[r.Intn(len(labels))], pred)
	}
	for i := 1; i < qn; i++ {
		j := r.Intn(i)
		if r.Intn(2) == 0 {
			_ = q.AddEdge(pattern.Node(i), pattern.Node(j))
		} else {
			_ = q.AddEdge(pattern.Node(j), pattern.Node(i))
		}
	}
	if !EBnd(q, schema, sem).Bounded {
		return nil, nil, nil, false
	}
	return q, g, idxSet, true
}

// Property: for random effectively bounded subgraph queries, bounded
// evaluation equals direct VF2.
func TestBoundedSubgraphEqualsDirectProperty(t *testing.T) {
	checked := 0
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, g, idx, ok := randomBoundedCase(r, Subgraph)
		if !ok {
			return true // vacuous
		}
		checked++
		bres, _, err := BVF2(q, g, idx, match.SubgraphOptions{StoreMatches: true})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		dres := match.VF2(q, g, match.SubgraphOptions{StoreMatches: true})
		match.SortMatches(bres.Matches)
		match.SortMatches(dres.Matches)
		if bres.Count != dres.Count || !reflect.DeepEqual(bres.Matches, dres.Matches) {
			t.Logf("seed %d: bounded %d vs direct %d", seed, bres.Count, dres.Count)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatalf("no seed produced a bounded case; generator broken")
	}
}

// Property: for random effectively bounded simulation queries, bounded
// evaluation equals direct gsim.
func TestBoundedSimEqualsDirectProperty(t *testing.T) {
	checked := 0
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, g, idx, ok := randomBoundedCase(r, Simulation)
		if !ok {
			return true
		}
		checked++
		bres, _, err := BSim(q, g, idx)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		dres := match.GSim(q, g)
		if bres.Matched != dres.Matched {
			t.Logf("seed %d: matched %v vs %v", seed, bres.Matched, dres.Matched)
			return false
		}
		if bres.Matched && !reflect.DeepEqual(bres.Sim, dres.Sim) {
			t.Logf("seed %d: relations differ\nbounded: %v\ndirect:  %v", seed, bres.Sim, dres.Sim)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatalf("no seed produced a bounded case; generator broken")
	}
}
