package core

import (
	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// actualized is an actualized constraint φ: V̄ᵤS ↦ (u, N) — the projection
// of an access constraint S -> (l, N) onto a concrete pattern node u with
// fQ(u) = l (§III for subgraph queries; §VI adds the child restriction for
// simulation queries). Nbrs is the maximum neighbor set V̄ᵤS of u whose
// labels lie in S; an actualized constraint exists only when every label
// of S is represented in Nbrs (so an S-labeled subset exists).
type actualized struct {
	CIdx int          // constraint index within the schema
	U    pattern.Node // the covered node u
	Nbrs []pattern.Node
}

// actualize computes the set Γ of all actualized constraints of A on Q
// under the given semantics. Type-1 constraints are not actualized (they
// apply directly). The cost is O(|A|·|EQ|), per Theorem 2.
func actualize(q *pattern.Pattern, a *access.Schema, sem Semantics) []actualized {
	var out []actualized
	for ci, c := range a.Constraints() {
		if c.Type1() {
			continue
		}
		inS := make(map[graph.Label]bool, len(c.S))
		for _, s := range c.S {
			inS[s] = true
		}
		for _, u := range q.NodesWithLabel(c.L) {
			var nbrs []pattern.Node
			have := make(map[graph.Label]bool, len(c.S))
			for _, w := range neighborsFor(q, u, sem) {
				wl := labelOf(q, w)
				if inS[wl] {
					nbrs = append(nbrs, w)
					have[wl] = true
				}
			}
			if len(have) != len(c.S) {
				continue // no S-labeled subset in the neighborhood
			}
			out = append(out, actualized{CIdx: ci, U: u, Nbrs: nbrs})
		}
	}
	return out
}
