package core

import (
	"errors"
	"fmt"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// ErrSchemaMismatch is returned when the index set was built for a schema
// other than the plan's.
var ErrSchemaMismatch = errors.New("core: index set does not serve the plan's schema")

// ExecStats accounts for the data a plan execution accessed — the
// |accessedQ| measurements of Fig 5(d,h,l). With the paper's accounting
// (Example 1), nodes accessed are all index-lookup results during the
// fetch phase (pre-predicate filtering), and edges accessed are all
// candidates returned during the edge-verification phase.
type ExecStats struct {
	// NodesAccessed counts nodes returned by index lookups in the fetch
	// phase.
	NodesAccessed int
	// EdgesAccessed counts edge candidates returned by index lookups in
	// the edge-verification phase.
	EdgesAccessed int
	// IndexLookups counts index probes across both phases.
	IndexLookups int
	// GQNodes and GQEdges are the size of the fetched subgraph.
	GQNodes, GQEdges int
}

// Accessed returns the total amount of data accessed (nodes + edges).
func (s *ExecStats) Accessed() int { return s.NodesAccessed + s.EdgesAccessed }

// BoundedGraph is the subgraph GQ identified by a plan, together with the
// per-pattern-node candidate sets (in GQ's node IDs) and the mapping back
// to the original graph's IDs.
type BoundedGraph struct {
	// G is the fetched subgraph GQ (fresh node IDs).
	G *graph.Graph
	// Cands[u] lists GQ nodes that are candidate matches for pattern node
	// u (maximally reduced cmat(u)).
	Cands [][]graph.NodeID
	// ToOrig maps GQ node IDs back to the source graph's IDs.
	ToOrig map[graph.NodeID]graph.NodeID
}

// Exec runs the plan against g using the pre-built index set, fetching the
// bounded subgraph GQ. It accesses g only through the constraint indices
// (plus O(1) direction checks on already-fetched edge candidates), so the
// work is determined by Q and A, independent of |G|.
func (p *Plan) Exec(g *graph.Graph, idx *access.IndexSet) (*BoundedGraph, *ExecStats, error) {
	if idx == nil || idx.Schema() != p.A {
		return nil, nil, ErrSchemaMismatch
	}
	n := p.Q.NumNodes()
	stats := &ExecStats{}

	// cmat[u]: candidate matches for u, as ordered slice + set.
	cmat := make([][]graph.NodeID, n)
	cset := make([]map[graph.NodeID]struct{}, n)
	fetched := make([]bool, n)

	for _, op := range p.Ops {
		var result []graph.NodeID
		seen := make(map[graph.NodeID]struct{})
		add := func(v graph.NodeID) {
			if !p.Q.MatchesNode(op.U, g, v) {
				return
			}
			if _, dup := seen[v]; dup {
				return
			}
			seen[v] = struct{}{}
			result = append(result, v)
		}
		if op.Deps == nil {
			vs := idx.Index(op.CIdx).Lookup(nil)
			stats.IndexLookups++
			stats.NodesAccessed += len(vs)
			for _, v := range vs {
				add(v)
			}
		} else {
			// Every dependency must have been fetched by an earlier op.
			for _, d := range op.Deps {
				if !fetched[d] {
					return nil, nil, fmt.Errorf("core: plan op for %s depends on unfetched node %s", p.Q.Name(op.U), p.Q.Name(d))
				}
			}
			// Union of lookups over the product of dependency candidates.
			forEachTuple(cmat, op.Deps, func(tuple []graph.NodeID) {
				vs := idx.Index(op.CIdx).Lookup(tuple)
				stats.IndexLookups++
				stats.NodesAccessed += len(vs)
				for _, v := range vs {
					add(v)
				}
			})
		}
		if fetched[op.U] {
			// Later ops reduce earlier candidate sets (§IV): intersect.
			old := cset[op.U]
			reduced := result[:0]
			for _, v := range result {
				if _, ok := old[v]; ok {
					reduced = append(reduced, v)
				}
			}
			result = reduced
		}
		set := make(map[graph.NodeID]struct{}, len(result))
		for _, v := range result {
			set[v] = struct{}{}
		}
		cmat[op.U] = result
		cset[op.U] = set
		fetched[op.U] = true
	}
	for ui := 0; ui < n; ui++ {
		if !fetched[ui] {
			return nil, nil, fmt.Errorf("core: plan fetched no candidates for node %s", p.Q.Name(pattern.Node(ui)))
		}
	}

	// Build GQ: nodes are the union of candidate sets.
	gq := graph.New(g.Interner())
	toGQ := make(map[graph.NodeID]graph.NodeID)
	bg := &BoundedGraph{G: gq, Cands: make([][]graph.NodeID, n), ToOrig: make(map[graph.NodeID]graph.NodeID)}
	for ui := 0; ui < n; ui++ {
		for _, v := range cmat[ui] {
			nv, ok := toGQ[v]
			if !ok {
				nv = gq.AddNode(g.LabelOf(v), g.ValueOf(v))
				toGQ[v] = nv
				bg.ToOrig[nv] = v
			}
			bg.Cands[ui] = append(bg.Cands[ui], nv)
		}
	}
	stats.GQNodes = gq.NumNodes()

	// Edge verification through the covering constraints' indices.
	for _, ec := range p.EdgeChecks {
		oi := -1
		for i, d := range ec.Deps {
			if d == ec.Other() {
				oi = i
				break
			}
		}
		if oi < 0 {
			return nil, nil, fmt.Errorf("core: edge check for (%s, %s) misses its endpoint dependency", p.Q.Name(ec.From), p.Q.Name(ec.To))
		}
		forEachTuple(cmat, ec.Deps, func(tuple []graph.NodeID) {
			cands := idx.Index(ec.CIdx).Lookup(tuple)
			stats.IndexLookups++
			stats.EdgesAccessed += len(cands)
			vo := tuple[oi]
			for _, vt := range cands {
				if _, ok := cset[ec.Target][vt]; !ok {
					continue
				}
				var vf, vtto graph.NodeID
				if ec.Target == ec.To {
					vf, vtto = vo, vt
				} else {
					vf, vtto = vt, vo
				}
				// The index certifies neighborship; confirm direction on
				// the fetched pair (an O(1) check).
				if g.HasEdge(vf, vtto) {
					gq.AddEdgeIfAbsent(toGQ[vf], toGQ[vtto])
				}
			}
		})
	}
	stats.GQEdges = gq.NumEdges()
	return bg, stats, nil
}

// forEachTuple enumerates the cartesian product of the candidate sets of
// deps, invoking fn with a reused tuple slice (one node per dep, in dep
// order).
func forEachTuple(cmat [][]graph.NodeID, deps []pattern.Node, fn func([]graph.NodeID)) {
	tuple := make([]graph.NodeID, len(deps))
	var rec func(i int)
	rec = func(i int) {
		if i == len(deps) {
			fn(tuple)
			return
		}
		for _, v := range cmat[deps[i]] {
			tuple[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}
