package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// ErrSchemaMismatch is returned when the index set was built for a schema
// other than the plan's.
var ErrSchemaMismatch = errors.New("core: index set does not serve the plan's schema")

// ExecStats accounts for the data a plan execution accessed — the
// |accessedQ| measurements of Fig 5(d,h,l). With the paper's accounting
// (Example 1), nodes accessed are all index-lookup results during the
// fetch phase (pre-predicate filtering), and edges accessed are all
// candidates returned during the edge-verification phase.
type ExecStats struct {
	// NodesAccessed counts nodes returned by index lookups in the fetch
	// phase.
	NodesAccessed int
	// EdgesAccessed counts edge candidates returned by index lookups in
	// the edge-verification phase.
	EdgesAccessed int
	// IndexLookups counts index probes across both phases.
	IndexLookups int
	// GQNodes and GQEdges are the size of the fetched subgraph.
	GQNodes, GQEdges int
}

// Accessed returns the total amount of data accessed (nodes + edges).
func (s *ExecStats) Accessed() int { return s.NodesAccessed + s.EdgesAccessed }

// BoundedGraph is the subgraph GQ identified by a plan, together with the
// per-pattern-node candidate sets (in GQ's node IDs) and the mapping back
// to the original graph's IDs.
type BoundedGraph struct {
	// G is the fetched subgraph GQ (fresh node IDs).
	G *graph.Graph
	// Cands[u] lists GQ nodes that are candidate matches for pattern node
	// u (maximally reduced cmat(u)).
	Cands [][]graph.NodeID
	// ToOrig maps GQ node IDs (dense, 0..NumNodes-1) back to the source
	// graph's IDs: ToOrig[gqID] is the original node.
	ToOrig []graph.NodeID
}

// ExecConfig tunes plan execution. The zero value (and a nil *ExecConfig)
// reproduces the serial defaults.
type ExecConfig struct {
	// Workers > 1 shards tuple enumeration in the fetch and
	// edge-verification phases across that many goroutines. Results are
	// merged in enumeration order, so execution stays deterministic and
	// bit-identical to the serial run.
	Workers int
	// Frozen, when non-nil, must be a snapshot of the graph being
	// queried; edge-direction checks then binary-search its sorted
	// adjacency instead of probing the graph's edge map. Long-lived
	// callers (the runtime engine) freeze once and amortize across
	// queries.
	Frozen *graph.Frozen
	// Scratch, when non-nil, reuses per-execution buffers (dense sets
	// and the GQ remap table) across queries. A scratch serves one
	// execution at a time — engine workers each own one.
	Scratch *ExecScratch
	// Ctx, when non-nil, is polled at every plan operation and every
	// cancelStride enumerated tuples inside the fetch and
	// edge-verification loops. Once it is cancelled, ExecWith abandons
	// the evaluation, restores its scratch buffers, and returns the
	// context's error — so a dropped connection or an expired deadline
	// stops the work instead of letting it run to completion.
	Ctx context.Context
	// Shards, when non-empty, evaluates the plan scatter/gather over a
	// sharded store's pinned cut: every index probe looks up each
	// shard's row partition and merges the (ascending, disjoint)
	// results back into exactly the global entry, while label, value
	// and edge-direction checks route to the node's owner shard — the
	// answer is bit-identical to the unsharded run. The g and idx
	// arguments of ExecWith are ignored (and may be nil); ShardOf must
	// be set to the router's node→shard map.
	Shards  []ShardView
	ShardOf func(graph.NodeID) int
	// Footprint, when non-nil, records the execution's read set — the
	// rows each plan op resolved to and the type-1 labels it consulted
	// (see Footprint for why that set determines the answer). Recording
	// happens only on the calling goroutine, after each op's parallel
	// phase has merged, so a shared ExecConfig prototype stays safe as
	// long as the footprint itself serves one execution at a time.
	Footprint *Footprint
}

// ShardView is one shard's pinned state inside a consistent cut: its
// graph, the optional frozen snapshot for direction checks, and its row
// partition of the index set.
type ShardView struct {
	G   *graph.Graph
	Fz  *graph.Frozen
	Idx *access.IndexSet
}

// ExecScratch holds the reusable buffers of one plan execution: the
// per-op dedup set, the per-pattern-node candidate sets, and the dense
// |V|-sized table mapping source node IDs to GQ IDs. All are restored to
// their empty state on every exit path of ExecWith, so reuse is O(touched)
// instead of O(|V|) per query.
type ExecScratch struct {
	seen  *graph.DenseSet
	csets []*graph.DenseSet
	remap []int32 // source ID -> GQ ID + 1; 0 = unmapped
}

// NewExecScratch returns an empty scratch; buffers are grown on first use.
func NewExecScratch() *ExecScratch { return &ExecScratch{} }

// execScratchPool serves executions whose caller supplied no scratch, so
// repeated one-shot Exec calls (the experiment loops) amortize the dense
// buffers exactly like the engine's per-worker scratches do.
var execScratchPool = sync.Pool{New: func() any { return NewExecScratch() }}

func (s *ExecScratch) getSeen(idCap int) *graph.DenseSet {
	if s.seen == nil {
		s.seen = graph.NewDenseSet(idCap)
	}
	return s.seen
}

func (s *ExecScratch) getCset(i, idCap int) *graph.DenseSet {
	for len(s.csets) <= i {
		s.csets = append(s.csets, graph.NewDenseSet(idCap))
	}
	return s.csets[i]
}

func (s *ExecScratch) getRemap(idCap int) []int32 {
	if len(s.remap) < idCap {
		s.remap = make([]int32, idCap)
	}
	return s.remap
}

// minParallelTuples is the fetch/verification work (index probes or
// filtered candidates) below which sharding is not worth the goroutine
// handoff.
const minParallelTuples = 64

// cancelStride is how many enumerated tuples pass between context polls
// in the fetch and edge-verification loops: coarse enough that polling is
// free, fine enough that cancellation lands within microseconds.
const cancelStride = 256

// strideChecker polls a context once every cancelStride calls. The zero
// ctx means "never cancelled". Each goroutine owns its own checker.
type strideChecker struct {
	ctx context.Context
	n   int
}

func (c *strideChecker) cancelled() bool {
	if c.ctx == nil {
		return false
	}
	if c.n++; c.n < cancelStride {
		return false
	}
	c.n = 0
	return c.ctx.Err() != nil
}

// Exec runs the plan against g using the pre-built index set, fetching the
// bounded subgraph GQ. It accesses g only through the constraint indices
// (plus O(1) direction checks on already-fetched edge candidates), so the
// work is determined by Q and A, independent of |G|.
func (p *Plan) Exec(g *graph.Graph, idx *access.IndexSet) (*BoundedGraph, *ExecStats, error) {
	return p.ExecWith(g, idx, nil)
}

// ExecWith is Exec with an execution configuration; see ExecConfig. It
// produces exactly the same BoundedGraph and stats as Exec for any worker
// count.
func (p *Plan) ExecWith(g *graph.Graph, idx *access.IndexSet, cfg *ExecConfig) (*BoundedGraph, *ExecStats, error) {
	workers := 1
	var fz *graph.Frozen
	var scratch *ExecScratch
	var ctx context.Context
	var shards []ShardView
	var shardOf func(graph.NodeID) int
	var fp *Footprint
	if cfg != nil {
		if cfg.Workers > 1 {
			workers = cfg.Workers
		}
		fz = cfg.Frozen
		scratch = cfg.Scratch
		ctx = cfg.Ctx
		fp = cfg.Footprint
		if len(cfg.Shards) > 0 {
			shards = cfg.Shards
			shardOf = cfg.ShardOf
		}
	}
	if len(shards) == 1 {
		// A single shard holds the entire graph and the whole index set,
		// so the scatter/gather accessors would add only closure
		// indirection and per-probe part collection. Collapse to the
		// unsharded path — trivially bit-identical.
		g, idx, fz = shards[0].G, shards[0].Idx, shards[0].Fz
		shards, shardOf = nil, nil
	}
	if shards == nil {
		if idx == nil || idx.Schema() != p.A {
			return nil, nil, ErrSchemaMismatch
		}
	} else {
		for i := range shards {
			if shards[i].Idx == nil || shards[i].Idx.Schema() != p.A {
				return nil, nil, ErrSchemaMismatch
			}
		}
	}
	// ctxErr reports the sticky cancellation state; nil ctx never cancels.
	ctxErr := func() error {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}
	if err := ctxErr(); err != nil {
		return nil, nil, err
	}
	fromPool := scratch == nil
	if fromPool {
		scratch = execScratchPool.Get().(*ExecScratch)
	}

	// All graph and index access below goes through these accessors, so
	// the serial and scattered paths share one evaluation loop. A merged
	// scatter probe counts as ONE index lookup accessing the merged
	// result — the row partition sums back to the global entry, so the
	// stats are bit-identical to the unsharded run.
	var (
		lookup   func(ci int, tuple []graph.NodeID) []graph.NodeID
		matches  func(u pattern.Node, v graph.NodeID) bool
		labelOf  func(v graph.NodeID) graph.Label
		valueOf  func(v graph.NodeID) graph.Value
		hasEdge  func(from, to graph.NodeID) bool
		interner *graph.Interner
		idCap    int
	)
	if shards == nil {
		lookup = func(ci int, tuple []graph.NodeID) []graph.NodeID { return idx.Index(ci).Lookup(tuple) }
		matches = func(u pattern.Node, v graph.NodeID) bool { return p.Q.MatchesNode(u, g, v) }
		labelOf = g.LabelOf
		valueOf = g.ValueOf
		hasEdge = g.HasEdge
		if fz != nil {
			hasEdge = fz.HasEdge
		}
		interner = g.Interner()
		idCap = g.Cap()
	} else {
		home := func(v graph.NodeID) *ShardView { return &shards[shardOf(v)] }
		lookup = func(ci int, tuple []graph.NodeID) []graph.NodeID {
			// Most entries' rows hash to one shard, so the common probe
			// finds at most one non-empty part — returned as-is (shared,
			// not copied) with no slice-of-parts allocation. The parts
			// slice materializes only when a real merge is needed.
			var first []graph.NodeID
			var parts [][]graph.NodeID
			for i := range shards {
				r := shards[i].Idx.Index(ci).Lookup(tuple)
				if len(r) == 0 {
					continue
				}
				if first == nil {
					first = r
					continue
				}
				if parts == nil {
					parts = append(make([][]graph.NodeID, 0, len(shards)), first)
				}
				parts = append(parts, r)
			}
			if parts == nil {
				return first
			}
			return mergeAscending(parts)
		}
		matches = func(u pattern.Node, v graph.NodeID) bool { return p.Q.MatchesNode(u, home(v).G, v) }
		labelOf = func(v graph.NodeID) graph.Label { return home(v).G.LabelOf(v) }
		valueOf = func(v graph.NodeID) graph.Value { return home(v).G.ValueOf(v) }
		hasEdge = func(from, to graph.NodeID) bool {
			sv := home(from)
			if sv.Fz != nil {
				return sv.Fz.HasEdge(from, to)
			}
			return sv.G.HasEdge(from, to)
		}
		interner = shards[0].G.Interner()
		for i := range shards {
			if c := shards[i].G.Cap(); c > idCap {
				idCap = c
			}
		}
	}

	n := p.Q.NumNodes()
	stats := &ExecStats{}

	// cmat[u]: candidate matches for u, as ordered slice + dense set.
	cmat := make([][]graph.NodeID, n)
	cset := make([]*graph.DenseSet, n)
	fetched := make([]bool, n)
	seen := scratch.getSeen(idCap) // per-op dedup, sparsely cleared

	// releaseCsets restores the scratch candidate sets to empty; every
	// exit path must call it (the sets mirror cmat at all times). A
	// pool-owned scratch goes back only on clean release — a panic drops
	// it instead of poisoning the pool.
	releaseCsets := func() {
		for ui := 0; ui < n; ui++ {
			if cset[ui] != nil {
				cset[ui].ResetSparse(cmat[ui])
			}
		}
		if fromPool {
			execScratchPool.Put(scratch)
		}
	}

	// cancelFetch abandons the evaluation mid-fetch-op: partial additions
	// to seen are restored (they mirror result at every cancellation
	// point), the candidate sets are released, and the context's sticky
	// error is returned.
	cancelFetch := func(result []graph.NodeID) error {
		seen.ResetSparse(result)
		releaseCsets()
		return ctxErr()
	}

	for _, op := range p.Ops {
		if err := ctxErr(); err != nil {
			releaseCsets()
			return nil, nil, err
		}
		var result []graph.NodeID
		if op.Deps == nil {
			vs := lookup(op.CIdx, nil)
			stats.IndexLookups++
			stats.NodesAccessed += len(vs)
			chk := strideChecker{ctx: ctx}
			for _, v := range vs {
				if chk.cancelled() {
					return nil, nil, cancelFetch(result)
				}
				if matches(op.U, v) && seen.Add(v) {
					result = append(result, v)
				}
			}
		} else {
			// Every dependency must have been fetched by an earlier op.
			for _, d := range op.Deps {
				if !fetched[d] {
					releaseCsets()
					return nil, nil, fmt.Errorf("core: plan op for %s depends on unfetched node %s", p.Q.Name(op.U), p.Q.Name(d))
				}
			}
			// Union of lookups over the product of dependency candidates,
			// sharded on the first dependency's candidates when large. One
			// tuple body serves both branches; only the emit differs —
			// serial dedups straight into result, shards buffer and the
			// in-order merge dedups.
			fetchTuple := func(tuple []graph.NodeID, out *shardOut, emit func(graph.NodeID)) {
				vs := lookup(op.CIdx, tuple)
				out.lookups++
				out.accessed += len(vs)
				for _, v := range vs {
					if matches(op.U, v) {
						emit(v)
					}
				}
			}
			if nt := numTuples(cmat, op.Deps); workers > 1 && nt >= minParallelTuples {
				outs := shardTuples(ctx, cmat, op.Deps, workers, func(tuple []graph.NodeID, out *shardOut) {
					fetchTuple(tuple, out, func(v graph.NodeID) { out.nodes = append(out.nodes, v) })
				})
				// Check before merging: cancelled shards stopped early, so
				// their outputs are partial and must be discarded whole.
				if err := ctxErr(); err != nil {
					releaseCsets()
					return nil, nil, err
				}
				for _, o := range outs {
					stats.IndexLookups += o.lookups
					stats.NodesAccessed += o.accessed
					for _, v := range o.nodes {
						if seen.Add(v) {
							result = append(result, v)
						}
					}
				}
			} else {
				var out shardOut
				chk := strideChecker{ctx: ctx}
				forEachTuple(cmat, op.Deps, func(tuple []graph.NodeID) bool {
					if chk.cancelled() {
						return false
					}
					fetchTuple(tuple, &out, func(v graph.NodeID) {
						if seen.Add(v) {
							result = append(result, v)
						}
					})
					return true
				})
				if err := ctxErr(); err != nil {
					return nil, nil, cancelFetch(result)
				}
				stats.IndexLookups += out.lookups
				stats.NodesAccessed += out.accessed
			}
		}
		seen.ResetSparse(result)
		if fetched[op.U] {
			// Later ops reduce earlier candidate sets (§IV): intersect.
			old := cset[op.U]
			reduced := result[:0]
			for _, v := range result {
				if old.Has(v) {
					reduced = append(reduced, v)
				}
			}
			old.ResetSparse(cmat[op.U])
			for _, v := range reduced {
				old.Add(v)
			}
			result = reduced
		} else {
			set := scratch.getCset(int(op.U), idCap)
			for _, v := range result {
				set.Add(v)
			}
			cset[op.U] = set
		}
		cmat[op.U] = result
		fetched[op.U] = true
		if fp != nil {
			// The op's resolved rows enter the read set; tuple inputs of
			// later ops are drawn from these, so recording each op's final
			// candidates transitively covers every index key the plan
			// probes. Type-1 ops additionally pin the consulted label —
			// their entries shift on bare node inserts/deletes that touch
			// no recorded row.
			fp.addRows(result)
			if op.Deps == nil {
				fp.addLabel(p.A.At(op.CIdx).L)
			}
		}
	}
	for ui := 0; ui < n; ui++ {
		if !fetched[ui] {
			releaseCsets()
			return nil, nil, fmt.Errorf("core: plan fetched no candidates for node %s", p.Q.Name(pattern.Node(ui)))
		}
	}
	if err := ctxErr(); err != nil {
		releaseCsets()
		return nil, nil, err
	}

	// Build GQ: nodes are the union of candidate sets. Count the distinct
	// nodes first so the subgraph is allocated at its final size; seen
	// doubles as the dedup set and is drained again during the build.
	distinct := 0
	for ui := 0; ui < n; ui++ {
		for _, v := range cmat[ui] {
			if seen.Add(v) {
				distinct++
			}
		}
	}
	gq := graph.NewWithCapacity(interner, distinct)
	bg := &BoundedGraph{G: gq, Cands: make([][]graph.NodeID, n), ToOrig: make([]graph.NodeID, 0, distinct)}
	remap := scratch.getRemap(idCap) // source ID -> GQ ID + 1; all zero here
	for ui := 0; ui < n; ui++ {
		cs := make([]graph.NodeID, 0, len(cmat[ui]))
		for _, v := range cmat[ui] {
			rv := remap[v]
			if rv == 0 {
				nv := gq.AddNode(labelOf(v), valueOf(v))
				rv = int32(nv) + 1
				remap[v] = rv
				bg.ToOrig = append(bg.ToOrig, v) // nv == len(ToOrig)-1
				seen.Remove(v)                   // drain: each distinct node exactly once
			}
			cs = append(cs, graph.NodeID(rv-1))
		}
		bg.Cands[ui] = cs
	}
	stats.GQNodes = gq.NumNodes()
	releaseRemap := func() {
		for _, v := range bg.ToOrig {
			remap[v] = 0
		}
	}

	// cancelVerify abandons the evaluation during edge verification: the
	// half-built GQ is discarded, the remap table and candidate sets are
	// restored, and the context's sticky error is returned. seen is empty
	// throughout this phase (it was drained building GQ), so it needs no
	// repair here.
	cancelVerify := func() error {
		releaseRemap()
		releaseCsets()
		return ctxErr()
	}

	// Edge verification through the covering constraints' indices.
	for _, ec := range p.EdgeChecks {
		if err := ctxErr(); err != nil {
			return nil, nil, cancelVerify()
		}
		oi := -1
		for i, d := range ec.Deps {
			if d == ec.Other() {
				oi = i
				break
			}
		}
		if oi < 0 {
			releaseRemap()
			releaseCsets()
			return nil, nil, fmt.Errorf("core: edge check for (%s, %s) misses its endpoint dependency", p.Q.Name(ec.From), p.Q.Name(ec.To))
		}
		target := cset[ec.Target]
		// One tuple body serves both branches; only the emit differs —
		// serial inserts into GQ directly, shards buffer verified pairs
		// for the in-order merge.
		verifyTuple := func(tuple []graph.NodeID, out *shardOut, emit func(vf, vtto graph.NodeID)) {
			cands := lookup(ec.CIdx, tuple)
			out.lookups++
			out.accessed += len(cands)
			vo := tuple[oi]
			for _, vt := range cands {
				if !target.Has(vt) {
					continue
				}
				var vf, vtto graph.NodeID
				if ec.Target == ec.To {
					vf, vtto = vo, vt
				} else {
					vf, vtto = vt, vo
				}
				// The index certifies neighborship; confirm direction on
				// the fetched pair (an O(1) check).
				if hasEdge(vf, vtto) {
					emit(vf, vtto)
				}
			}
		}
		if nt := numTuples(cmat, ec.Deps); workers > 1 && nt >= minParallelTuples {
			outs := shardTuples(ctx, cmat, ec.Deps, workers, func(tuple []graph.NodeID, out *shardOut) {
				verifyTuple(tuple, out, func(vf, vtto graph.NodeID) {
					out.edges = append(out.edges, [2]graph.NodeID{vf, vtto})
				})
			})
			if err := ctxErr(); err != nil {
				return nil, nil, cancelVerify()
			}
			for i := range outs {
				o := &outs[i]
				stats.IndexLookups += o.lookups
				stats.EdgesAccessed += o.accessed
				for _, e := range o.edges {
					gq.AddEdgeIfAbsent(graph.NodeID(remap[e[0]])-1, graph.NodeID(remap[e[1]])-1)
				}
			}
		} else {
			var out shardOut
			chk := strideChecker{ctx: ctx}
			forEachTuple(cmat, ec.Deps, func(tuple []graph.NodeID) bool {
				if chk.cancelled() {
					return false
				}
				verifyTuple(tuple, &out, func(vf, vtto graph.NodeID) {
					gq.AddEdgeIfAbsent(graph.NodeID(remap[vf])-1, graph.NodeID(remap[vtto])-1)
				})
				return true
			})
			if err := ctxErr(); err != nil {
				return nil, nil, cancelVerify()
			}
			stats.IndexLookups += out.lookups
			stats.EdgesAccessed += out.accessed
		}
	}
	stats.GQEdges = gq.NumEdges()
	releaseRemap()
	releaseCsets()
	return bg, stats, nil
}

// mergeAscending merges ascending, pairwise-disjoint node-ID slices into
// one ascending slice — reassembling a row-partitioned index entry into
// exactly the global entry. With zero or one non-empty part no merge is
// needed; the single part is returned as-is (shared, not copied), so the
// common case of an entry whose members all hash to one shard is free.
func mergeAscending(parts [][]graph.NodeID) []graph.NodeID {
	switch len(parts) {
	case 0:
		return nil
	case 1:
		return parts[0]
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	merged := make([]graph.NodeID, 0, total)
	pos := make([]int, len(parts))
	for len(merged) < total {
		best := -1
		for i, p := range parts {
			if pos[i] >= len(p) {
				continue
			}
			if best < 0 || p[pos[i]] < parts[best][pos[best]] {
				best = i
			}
		}
		merged = append(merged, parts[best][pos[best]])
		pos[best]++
	}
	return merged
}

// numTuples returns the size of the cartesian product of the candidate
// sets of deps (capped to avoid overflow).
func numTuples(cmat [][]graph.NodeID, deps []pattern.Node) int {
	t := 1
	for _, d := range deps {
		t *= len(cmat[d])
		if t == 0 || t > 1<<30 {
			return t
		}
	}
	return t
}

// shardOut is one shard's contribution to a fetch or verification phase,
// in enumeration order.
type shardOut struct {
	nodes             []graph.NodeID
	edges             [][2]graph.NodeID
	lookups, accessed int
}

// shardTuples splits the cartesian product of deps' candidate sets into
// contiguous chunks of the first dependency's candidates, runs process on
// up to workers goroutines, and returns the per-chunk outputs in
// enumeration order — so concatenating them reproduces the serial order
// exactly. A non-nil ctx is polled inside every shard; cancelled shards
// stop early, leaving partial outputs the caller must discard (check the
// context after shardTuples returns).
func shardTuples(ctx context.Context, cmat [][]graph.NodeID, deps []pattern.Node, workers int, process func([]graph.NodeID, *shardOut)) []shardOut {
	first := cmat[deps[0]]
	nchunks := workers
	if nchunks > len(first) {
		nchunks = len(first)
	}
	outs := make([]shardOut, nchunks)
	var wg sync.WaitGroup
	for c := 0; c < nchunks; c++ {
		lo, hi := c*len(first)/nchunks, (c+1)*len(first)/nchunks
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			// Accumulate locally; one store at the end keeps shards off
			// each other's cache lines.
			var local shardOut
			chk := strideChecker{ctx: ctx}
			forEachTupleRange(cmat, deps, lo, hi, func(tuple []graph.NodeID) bool {
				if chk.cancelled() {
					return false
				}
				process(tuple, &local)
				return true
			})
			outs[c] = local
		}(c, lo, hi)
	}
	wg.Wait()
	return outs
}

// forEachTuple enumerates the cartesian product of the candidate sets of
// deps, invoking fn with a reused tuple slice (one node per dep, in dep
// order). fn returning false stops the enumeration.
func forEachTuple(cmat [][]graph.NodeID, deps []pattern.Node, fn func([]graph.NodeID) bool) {
	if len(deps) == 0 {
		fn(nil)
		return
	}
	forEachTupleRange(cmat, deps, 0, len(cmat[deps[0]]), fn)
}

// forEachTupleRange is forEachTuple with the first dependency's candidates
// restricted to the index range [lo, hi).
func forEachTupleRange(cmat [][]graph.NodeID, deps []pattern.Node, lo, hi int, fn func([]graph.NodeID) bool) {
	tuple := make([]graph.NodeID, len(deps))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(deps) {
			return fn(tuple)
		}
		for _, v := range cmat[deps[i]] {
			tuple[i] = v
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	for _, v := range cmat[deps[0]][lo:hi] {
		tuple[0] = v
		if !rec(1) {
			return
		}
	}
}
