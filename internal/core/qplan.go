package core

import (
	"fmt"
	"math"

	"boundedg/internal/pattern"

	"boundedg/internal/access"
)

// NewPlan generates an effectively bounded and worst-case optimal query
// plan for Q under A (algorithm QPlan of §IV, Fig. 4; sQPlan of §VI-C when
// sem is Simulation). It returns ErrNotBounded if Q is not effectively
// bounded under A. Complexity: O(|VQ||EQ||A|) per Theorems 4 and 9.
func NewPlan(q *pattern.Pattern, a *access.Schema, sem Semantics) (*Plan, error) {
	cov := EBnd(q, a, sem)
	if !cov.Bounded {
		return nil, fmt.Errorf("%w: uncovered nodes %v, uncovered edges %v",
			ErrNotBounded, cov.UncoveredNodes(), cov.UncoveredEdges())
	}
	gamma := actualize(q, a, sem)
	n := q.NumNodes()

	byTarget := make([][]int, n)
	for fi, phi := range gamma {
		byTarget[phi.U] = append(byTarget[phi.U], fi)
	}

	p := &Plan{Sem: sem, Q: q, A: a, EstSize: make([]float64, n)}
	sn := make([]bool, n)
	for i := range p.EstSize {
		p.EstSize[i] = math.Inf(1)
	}

	// Seed with type-1 fetches (lines 4-6 of Fig. 4).
	for ui := 0; ui < n; ui++ {
		u := pattern.Node(ui)
		bestC, bestN := -1, -1
		for _, ci := range a.ByTarget(labelOf(q, u)) {
			c := a.At(ci)
			if c.Type1() && (bestN < 0 || c.N < bestN) {
				bestC, bestN = ci, c.N
			}
		}
		if bestC >= 0 {
			p.Ops = append(p.Ops, FetchOp{U: u, CIdx: bestC})
			sn[ui] = true
			p.EstSize[ui] = float64(bestN)
		}
	}

	// check/ocheck of Fig. 4: repeatedly find a node whose candidate set
	// can be fetched (or reduced) more tightly through some actualized
	// constraint whose dependencies are all available. The per-label
	// greedy minimum gives the minimal product since sizes are positive.
	// The paper bounds the iterations by |VQ|²; we cap defensively.
	maxRounds := n*n + n + 1
	for round := 0; round < maxRounds; round++ {
		improved := false
		for ui := 0; ui < n; ui++ {
			u := pattern.Node(ui)
			best := p.EstSize[ui]
			var bestDeps []pattern.Node
			bestC := -1
			for _, fi := range byTarget[ui] {
				phi := gamma[fi]
				c := a.At(phi.CIdx)
				prod := float64(c.N)
				deps := make([]pattern.Node, 0, len(c.S))
				ok := true
				for _, s := range c.S {
					var w pattern.Node = -1
					for _, x := range phi.Nbrs {
						if labelOf(q, x) != s || !sn[x] {
							continue
						}
						if w == -1 || p.EstSize[x] < p.EstSize[w] {
							w = x
						}
					}
					if w == -1 {
						ok = false
						break
					}
					deps = append(deps, w)
					prod *= p.EstSize[w]
				}
				if ok && prod < best {
					best = prod
					bestDeps = deps
					bestC = phi.CIdx
				}
			}
			if bestC >= 0 {
				p.EstSize[ui] = best
				sn[ui] = true
				p.Ops = append(p.Ops, FetchOp{U: u, Deps: bestDeps, CIdx: bestC})
				improved = true
			}
		}
		if !improved {
			break
		}
	}

	for ui := 0; ui < n; ui++ {
		if !sn[ui] {
			// Cannot happen when EBnd accepted: every covered node is
			// derivable through available dependencies.
			return nil, fmt.Errorf("core: internal: node %s covered but unreachable by fetch operations", q.Name(pattern.Node(ui)))
		}
	}

	if err := p.planEdgeChecks(gamma, sn); err != nil {
		return nil, err
	}
	return p, nil
}

// planEdgeChecks selects, for every pattern edge, the cheapest verification
// strategy: an actualized constraint targeting one endpoint whose neighbor
// set contains the other, with dependencies chosen per label to minimize
// the worst-case number of index probes N · Π EstSize(dep).
func (p *Plan) planEdgeChecks(gamma []actualized, sn []bool) error {
	q, a := p.Q, p.A
	n := q.NumNodes()
	byTarget := make([][]int, n)
	for fi, phi := range gamma {
		byTarget[phi.U] = append(byTarget[phi.U], fi)
	}

	// tryTarget builds the cheapest EdgeCheck with the given target/other
	// split, or ok=false.
	tryTarget := func(from, to, target, other pattern.Node) (EdgeCheck, float64, bool) {
		bestCost := math.Inf(1)
		var best EdgeCheck
		found := false
		for _, fi := range byTarget[target] {
			phi := gamma[fi]
			if !nbrsContain(phi, other) {
				continue
			}
			c := a.At(phi.CIdx)
			cost := float64(c.N)
			deps := make([]pattern.Node, 0, len(c.S))
			ok := true
			for _, s := range c.S {
				if s == labelOf(q, other) {
					deps = append(deps, other)
					cost *= p.EstSize[other]
					continue
				}
				var w pattern.Node = -1
				for _, x := range phi.Nbrs {
					if labelOf(q, x) != s || !sn[x] {
						continue
					}
					if w == -1 || p.EstSize[x] < p.EstSize[w] {
						w = x
					}
				}
				if w == -1 {
					ok = false
					break
				}
				deps = append(deps, w)
				cost *= p.EstSize[w]
			}
			if ok && cost < bestCost {
				bestCost = cost
				best = EdgeCheck{From: from, To: to, Target: target, CIdx: phi.CIdx, Deps: deps}
				found = true
			}
		}
		return best, bestCost, found
	}

	var firstErr error
	q.Edges(func(from, to pattern.Node) bool {
		ec1, cost1, ok1 := tryTarget(from, to, to, from)
		ec2, cost2, ok2 := tryTarget(from, to, from, to)
		switch {
		case ok1 && (!ok2 || cost1 <= cost2):
			p.EdgeChecks = append(p.EdgeChecks, ec1)
		case ok2:
			p.EdgeChecks = append(p.EdgeChecks, ec2)
		default:
			firstErr = fmt.Errorf("core: internal: edge (%s, %s) covered but no verification constraint found",
				q.Name(from), q.Name(to))
			return false
		}
		return true
	})
	return firstErr
}
