// Package core implements the contribution of the ICDE 2015 paper "Making
// Pattern Queries Bounded in Big Graphs" (Cao, Fan, Huai, Huang):
//
//   - node and edge covers characterizing effectively bounded pattern
//     queries under an access schema (Theorems 1 and 7);
//   - the decision algorithms EBChk / sEBChk (Theorems 2 and 8);
//   - worst-case-optimal query-plan generation QPlan / sQPlan (Theorems 4
//     and 9) and plan execution, which fetches a bounded subgraph GQ with
//     Q(GQ) = Q(G) using only the access-constraint indices;
//   - instance boundedness: M-bounded extensions and EEChk / sEEChk
//     (Theorems 6 and 10, Proposition 5).
//
// Everything is parameterized by the query semantics (subgraph isomorphism
// or graph simulation); the simulation variants use the stronger
// child-restricted notions of §VI.
package core

import (
	"fmt"

	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// Semantics selects how a pattern is interpreted.
type Semantics uint8

const (
	// Subgraph interprets patterns via subgraph isomorphism (localized).
	Subgraph Semantics = iota
	// Simulation interprets patterns via graph simulation (non-localized).
	Simulation
)

// String names the semantics.
func (s Semantics) String() string {
	switch s {
	case Subgraph:
		return "subgraph"
	case Simulation:
		return "simulation"
	}
	return fmt.Sprintf("semantics(%d)", uint8(s))
}

// neighborsFor returns the neighbor set of u relevant for actualized
// constraints under the semantics: all neighbors for subgraph queries
// (§III), only children for simulation queries (§VI, condition (iii) of
// sVCov: (u, uS) must be an edge of Q).
func neighborsFor(q *pattern.Pattern, u pattern.Node, sem Semantics) []pattern.Node {
	if sem == Simulation {
		return q.Out(u)
	}
	return q.Neighbors(u)
}

// edgeKeyQ is a pattern edge used as a map key.
type edgeKeyQ struct{ from, to pattern.Node }

// labelOf is a tiny alias to keep call sites short.
func labelOf(q *pattern.Pattern, u pattern.Node) graph.Label { return q.LabelOf(u) }
