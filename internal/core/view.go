package core

import (
	"boundedg/internal/access"
	"boundedg/internal/graph"
)

// View is a standing bounded query against an evolving graph: it pairs a
// query plan with the graph's index set, keeps the last fetched GQ, and
// refreshes it after updates. The indices are maintained incrementally
// (§II of the paper); re-fetching GQ costs only the plan's bounded access
// budget, so the view refresh is |G|-independent end to end.
//
// This is the repository's concrete take on the paper's "incremental
// boundedness" future-work item (§VIII): not an incremental Q(G ⊕ ΔG)
// algorithm, but a bounded re-evaluation whose per-update cost already
// cannot depend on |G|. See DESIGN.md §6.
type View struct {
	plan  *Plan
	g     *graph.Graph
	idx   *access.IndexSet
	last  *BoundedGraph
	stats *ExecStats
}

// NewView executes the plan once and returns the standing view. The index
// set must serve the plan's schema and must stay owned by the view's
// updates from now on (apply deltas through View.Apply, not directly).
func NewView(p *Plan, g *graph.Graph, idx *access.IndexSet) (*View, error) {
	bg, stats, err := p.Exec(g, idx)
	if err != nil {
		return nil, err
	}
	return &View{plan: p, g: g, idx: idx, last: bg, stats: stats}, nil
}

// Result returns the current bounded subgraph GQ.
func (v *View) Result() *BoundedGraph { return v.last }

// Stats returns the access statistics of the latest refresh.
func (v *View) Stats() *ExecStats { return v.stats }

// Plan returns the view's plan.
func (v *View) Plan() *Plan { return v.plan }

// Apply applies the delta to the underlying graph, incrementally maintains
// the indices, and re-fetches GQ through the plan. It returns the IDs of
// nodes the delta inserted and any cardinality violations the update
// introduced (in which case the view is still refreshed, but boundedness
// guarantees no longer hold until the violation is repaired).
func (v *View) Apply(d *graph.Delta) ([]graph.NodeID, []access.Violation, error) {
	newIDs, viols, err := v.idx.ApplyDelta(v.g, d)
	if err != nil {
		return newIDs, viols, err
	}
	bg, stats, err := v.plan.Exec(v.g, v.idx)
	if err != nil {
		return newIDs, viols, err
	}
	v.last = bg
	v.stats = stats
	return newIDs, viols, nil
}
