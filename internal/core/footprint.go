package core

import "boundedg/internal/graph"

// maxFootprintRows caps the number of distinct rows a footprint records.
// Past it the footprint marks itself overflowed and stops accumulating:
// an overflowed footprint answers Disjoint with false, so a cached result
// backed by one is never promoted — correctness degrades to recomputation,
// never to a wrong answer. Bounded evaluation keeps real footprints far
// below this (the fetched fragment is access-constraint-bounded,
// independent of |G|); the cap exists for adversarially broad queries.
const maxFootprintRows = 1 << 16

// Footprint is the read set of one plan execution: every row whose index
// entries or adjacency the evaluation consulted, plus the labels of the
// type-1 constraints it probed. A cached answer (including its access
// stats) is a pure function of this set:
//
//   - every index entry the plan looks up is keyed by a tuple of
//     already-fetched rows (which are in the footprint), and an entry's
//     membership changes only when edges incident to its key rows change —
//     so any entry drift implies a changed row inside the footprint;
//   - type-1 entries (empty key) are the exception: they list all
//     l-labeled rows, so a bare node insert or delete shifts them without
//     touching any pre-existing row the plan saw. The consulted labels
//     cover that case — the store's change summaries carry the labels of
//     inserted and deleted nodes;
//   - label and value predicates, and direction probes on fetched pairs,
//     read only footprint rows (labels and values are immutable).
//
// Therefore: if a span of epochs changed no footprint row and inserted or
// deleted no node carrying a consulted type-1 label, the answer at the
// old epoch is bit-identical to a fresh execution at the new one — the
// promotion invariant the server's revalidating result cache relies on.
type Footprint struct {
	rows     map[graph.NodeID]struct{}
	labels   map[graph.Label]struct{}
	overflow bool
}

// NewFootprint returns an empty footprint ready to be attached to an
// ExecConfig. A footprint serves one execution at a time.
func NewFootprint() *Footprint {
	return &Footprint{rows: make(map[graph.NodeID]struct{}), labels: make(map[graph.Label]struct{})}
}

// addRows records the rows a plan op resolved to.
func (f *Footprint) addRows(vs []graph.NodeID) {
	if f.overflow {
		return
	}
	for _, v := range vs {
		if len(f.rows) >= maxFootprintRows {
			f.overflow = true
			return
		}
		f.rows[v] = struct{}{}
	}
}

// addLabel records a consulted type-1 constraint's label.
func (f *Footprint) addLabel(l graph.Label) { f.labels[l] = struct{}{} }

// Overflowed reports whether the row cap was hit; an overflowed footprint
// is unusable for promotion (Disjoint always answers false).
func (f *Footprint) Overflowed() bool { return f.overflow }

// NumRows returns the number of distinct rows recorded.
func (f *Footprint) NumRows() int { return len(f.rows) }

// HasRow reports whether row v is in the footprint.
func (f *Footprint) HasRow(v graph.NodeID) bool {
	_, ok := f.rows[v]
	return ok
}

// HasLabel reports whether type-1 label l was consulted.
func (f *Footprint) HasLabel(l graph.Label) bool {
	_, ok := f.labels[l]
	return ok
}

// Disjoint reports whether the footprint intersects neither the changed
// rows nor the inserted/deleted-node labels of a change summary — the
// promotion test. An overflowed footprint is never disjoint: rows it
// failed to record could be among the changes.
func (f *Footprint) Disjoint(rows []graph.NodeID, labels []graph.Label) bool {
	if f.overflow {
		return false
	}
	for _, v := range rows {
		if _, ok := f.rows[v]; ok {
			return false
		}
	}
	for _, l := range labels {
		if _, ok := f.labels[l]; ok {
			return false
		}
	}
	return true
}
