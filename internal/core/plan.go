package core

import (
	"errors"
	"fmt"
	"strings"

	"boundedg/internal/access"
	"boundedg/internal/pattern"
)

// ErrNotBounded is returned by NewPlan when the pattern is not effectively
// bounded under the schema; inspect the CoverResult from EBnd for the
// uncovered nodes/edges.
var ErrNotBounded = errors.New("core: pattern is not effectively bounded under the schema")

// FetchOp is one node-fetching operation ft(u, VS, φ, gQ(u)) of a query
// plan (§IV): retrieve candidate matches cmat(u) for pattern node u as the
// common neighbors of the (already fetched) candidates of Deps, using the
// index of constraint CIdx, filtered by u's predicate. A nil Deps means a
// type-1 fetch (all l-labeled nodes via the constraint's index).
type FetchOp struct {
	U    pattern.Node
	Deps []pattern.Node // one per label of S, in S order; nil for type-1
	CIdx int            // constraint index in the schema
}

// EdgeCheck records how plan execution verifies candidates for one pattern
// edge: candidates for Target are fetched as common neighbors of Deps
// (which include the opposite endpoint) through constraint CIdx, and each
// returned node is tested for membership in cmat(Target) plus the edge
// direction.
type EdgeCheck struct {
	From, To pattern.Node // the pattern edge
	Target   pattern.Node // one endpoint; fQ(Target) = constraint's l
	CIdx     int
	Deps     []pattern.Node // VS pattern nodes (include Other), in S order
}

// Other returns the edge endpoint that is not the Target.
func (ec EdgeCheck) Other() pattern.Node {
	if ec.Target == ec.To {
		return ec.From
	}
	return ec.To
}

// Plan is an effectively bounded, worst-case-optimal query plan for Q
// under A (Theorems 4 and 9). Execute it with Exec.
type Plan struct {
	Sem Semantics
	Q   *pattern.Pattern
	A   *access.Schema

	// Ops are executed in order; later ops for the same node reduce its
	// candidate set.
	Ops []FetchOp
	// EdgeChecks lists one verification strategy per pattern edge.
	EdgeChecks []EdgeCheck

	// EstSize[u] is the final worst-case bound on |cmat(u)| used by the
	// optimizer (a function of A and Q only, independent of any graph).
	EstSize []float64
}

// EstGQNodes returns the worst-case bound on the number of nodes of GQ —
// the sum of the final candidate-set estimates.
func (p *Plan) EstGQNodes() float64 {
	t := 0.0
	for _, s := range p.EstSize {
		t += s
	}
	return t
}

// String renders the plan in the style of the paper's Example 6.
func (p *Plan) String() string {
	var b strings.Builder
	in := p.Q.Interner()
	fmt.Fprintf(&b, "plan (%s) for:\n", p.Sem)
	for i, op := range p.Ops {
		c := p.A.At(op.CIdx)
		deps := "nil"
		if op.Deps != nil {
			names := make([]string, len(op.Deps))
			for j, d := range op.Deps {
				names[j] = p.Q.Name(d)
			}
			deps = "{" + strings.Join(names, ", ") + "}"
		}
		pred := p.Q.PredOf(op.U).String()
		fmt.Fprintf(&b, "  ft%d(%s, %s, %s, %s)\n", i+1, p.Q.Name(op.U), deps, c.Format(in), pred)
	}
	for _, ec := range p.EdgeChecks {
		fmt.Fprintf(&b, "  check edge (%s, %s) via %s\n", p.Q.Name(ec.From), p.Q.Name(ec.To), p.A.At(ec.CIdx).Format(in))
	}
	return b.String()
}
