package core

import (
	"sort"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// CoverResult reports the node and edge covers of an access schema on a
// pattern, and whether the pattern is effectively bounded (Theorem 1 for
// subgraph queries: VCov = VQ ∧ ECov = EQ; Theorem 7 for simulation
// queries with sVCov/sECov).
type CoverResult struct {
	// Sem records which semantics the covers were computed under.
	Sem Semantics
	// NodeCovered[u] reports u ∈ VCov(Q, A) (resp. sVCov).
	NodeCovered []bool
	// EdgeCovered reports (u1, u2) ∈ ECov(Q, A) (resp. sECov) for every
	// pattern edge.
	EdgeCovered map[[2]pattern.Node]bool
	// Bounded is the answer to EBnd(Q, A).
	Bounded bool
}

// UncoveredNodes lists the pattern nodes outside the node cover.
func (r *CoverResult) UncoveredNodes() []pattern.Node {
	var out []pattern.Node
	for u, c := range r.NodeCovered {
		if !c {
			out = append(out, pattern.Node(u))
		}
	}
	return out
}

// UncoveredEdges lists the pattern edges outside the edge cover, ordered
// by (from, to) so diagnostics are deterministic across runs.
func (r *CoverResult) UncoveredEdges() [][2]pattern.Node {
	var out [][2]pattern.Node
	for e, c := range r.EdgeCovered {
		if !c {
			out = append(out, [2]pattern.Node{e[0], e[1]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// EBnd decides whether Q is effectively bounded under A for the chosen
// semantics, returning the full cover diagnosis. It is the paper's
// algorithm EBChk (Fig. 3) / sEBChk (§VI-B), O(|A||EQ| + ||A|||VQ|²).
//
// Theorem 2's O(|A||EQ| + |VQ|²) counter optimization is applied when the
// schema has only type-(1)/(2) constraints: with |S| ≤ 1 a plain counter
// per actualized constraint is exact (every decrement retires the single
// remaining label). The theorem's other special case — parents with
// distinct labels — does not by itself preclude duplicate labels among
// the neighbor sets V̄ᵤS our actualization produces (children count too),
// so for general schemas we keep the always-correct set-based ct[φ];
// TestCounterEqualsSetProperty pins the equivalence.
func EBnd(q *pattern.Pattern, a *access.Schema, sem Semantics) *CoverResult {
	return ebnd(q, a, sem, a.OnlyType12())
}

// ebnd is EBnd with the counter fast path made explicit for testing.
func ebnd(q *pattern.Pattern, a *access.Schema, sem Semantics, useCounter bool) *CoverResult {
	gamma := actualize(q, a, sem)
	n := q.NumNodes()
	res := &CoverResult{
		Sem:         sem,
		NodeCovered: make([]bool, n),
		EdgeCovered: make(map[[2]pattern.Node]bool, q.NumEdges()),
	}

	// Auxiliary structures of EBChk (Fig. 3).
	// L[v]: actualized constraints usable through v (v ∈ V̄ᵤS).
	L := make([][]int, n)
	// ct[φ]: labels of S not yet represented by a covered node in V̄ᵤS;
	// nct[φ] is the counter variant (remaining distinct labels).
	var ct []map[graph.Label]struct{}
	var nct []int
	if useCounter {
		nct = make([]int, len(gamma))
	} else {
		ct = make([]map[graph.Label]struct{}, len(gamma))
	}
	for fi, phi := range gamma {
		c := a.At(phi.CIdx)
		if useCounter {
			nct[fi] = len(c.S)
		} else {
			set := make(map[graph.Label]struct{}, len(c.S))
			for _, s := range c.S {
				set[s] = struct{}{}
			}
			ct[fi] = set
		}
		for _, v := range phi.Nbrs {
			L[v] = append(L[v], fi)
		}
	}

	// B: worklist of covered nodes whose consequences are unprocessed.
	// Initialize from type-1 constraints (line 3 of Fig. 3).
	var b []pattern.Node
	for ui := 0; ui < n; ui++ {
		if _, ok := a.Type1Bound(labelOf(q, pattern.Node(ui))); ok {
			res.NodeCovered[ui] = true
			b = append(b, pattern.Node(ui))
		}
	}

	// satisfied[φ] records ct[φ] = ∅ (used later for edge coverage).
	satisfied := make([]bool, len(gamma))

	for len(b) > 0 {
		v := b[len(b)-1]
		b = b[:len(b)-1]
		for _, fi := range L[v] {
			if satisfied[fi] {
				continue
			}
			if useCounter {
				nct[fi]--
				if nct[fi] > 0 {
					continue
				}
			} else {
				delete(ct[fi], labelOf(q, v))
				if len(ct[fi]) > 0 {
					continue
				}
			}
			satisfied[fi] = true
			u := gamma[fi].U
			if !res.NodeCovered[u] {
				res.NodeCovered[u] = true
				b = append(b, u)
			}
		}
	}

	// Edge coverage: (from, to) ∈ ECov iff some actualized constraint
	// lets the index verify it — a φ targeting one endpoint whose V̄ᵤS
	// contains the other, with an S-labeled subset of covered nodes
	// through that other endpoint.
	byTarget := make([][]int, n)
	for fi, phi := range gamma {
		byTarget[phi.U] = append(byTarget[phi.U], fi)
	}
	edgeOK := func(target, other pattern.Node) bool {
		for _, fi := range byTarget[target] {
			if nbrsContain(gamma[fi], other) && formable(q, a, gamma[fi], other, res.NodeCovered) {
				return true
			}
		}
		return false
	}
	q.Edges(func(from, to pattern.Node) bool {
		res.EdgeCovered[[2]pattern.Node{from, to}] = edgeOK(to, from) || edgeOK(from, to)
		return true
	})

	res.Bounded = true
	for _, c := range res.NodeCovered {
		if !c {
			res.Bounded = false
			break
		}
	}
	if res.Bounded {
		for _, c := range res.EdgeCovered {
			if !c {
				res.Bounded = false
				break
			}
		}
	}
	return res
}

// nbrsContain reports x ∈ V̄ᵤS of φ.
func nbrsContain(phi actualized, x pattern.Node) bool {
	for _, w := range phi.Nbrs {
		if w == x {
			return true
		}
	}
	return false
}

// formable reports whether an S-labeled set VS ⊆ VCov with x ∈ VS can be
// drawn from φ's neighbor set: x must be covered and every other label of
// S must have a covered representative in V̄ᵤS.
func formable(q *pattern.Pattern, a *access.Schema, phi actualized, x pattern.Node, covered []bool) bool {
	if !covered[x] {
		return false
	}
	c := a.At(phi.CIdx)
	for _, s := range c.S {
		if s == labelOf(q, x) {
			continue // x itself represents its label
		}
		ok := false
		for _, w := range phi.Nbrs {
			if labelOf(q, w) == s && covered[w] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// EBChk decides EBnd(Q, A) for subgraph queries (Theorem 2).
func EBChk(q *pattern.Pattern, a *access.Schema) bool {
	return EBnd(q, a, Subgraph).Bounded
}

// SEBChk decides EBnd(Q, A) for simulation queries (Theorem 8).
func SEBChk(q *pattern.Pattern, a *access.Schema) bool {
	return EBnd(q, a, Simulation).Bounded
}
