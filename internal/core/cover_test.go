package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// TestExample4And5 reproduces Examples 4 and 5: Q0 is effectively bounded
// under A0 (VCov = V0, ECov = E0).
func TestExample4And5(t *testing.T) {
	in := graph.NewInterner()
	q := fixtureQ0(in)
	a := fixtureA0(in)
	res := EBnd(q, a, Subgraph)
	if !res.Bounded {
		t.Fatalf("Q0 must be effectively bounded under A0: uncovered nodes %v edges %v",
			res.UncoveredNodes(), res.UncoveredEdges())
	}
	for u, c := range res.NodeCovered {
		if !c {
			t.Fatalf("node u%d uncovered", u+1)
		}
	}
	for e, c := range res.EdgeCovered {
		if !c {
			t.Fatalf("edge %v uncovered", e)
		}
	}
	if !EBChk(q, a) {
		t.Fatalf("EBChk disagrees with EBnd")
	}
}

// TestQ0IncompleteSchema removes constraints from A0 one family at a time
// and checks that boundedness is lost exactly when coverage breaks.
func TestQ0IncompleteSchema(t *testing.T) {
	in := graph.NewInterner()
	q := fixtureQ0(in)
	full := fixtureA0(in).Constraints()

	// Drop φ1 ((year,award)->movie): u3 becomes uncoverable.
	a := access.NewSchema(full[1:]...)
	res := EBnd(q, a, Subgraph)
	if res.Bounded {
		t.Fatalf("dropping φ1 must break boundedness")
	}
	movieCovered := res.NodeCovered[2]
	if movieCovered {
		t.Fatalf("movie node should be uncovered without φ1")
	}

	// Drop only φ6 ({}->country): u6 still coverable via actor->country?
	// φ3a covers u6 from u4 (actor covered via movie chain). So still
	// bounded.
	var withoutT1Country []access.Constraint
	for i, c := range full {
		if i == 7 {
			continue
		}
		withoutT1Country = append(withoutT1Country, c)
	}
	if !EBnd(q, access.NewSchema(withoutT1Country...), Subgraph).Bounded {
		t.Fatalf("Q0 should stay bounded without the type-1 country constraint (actor->country covers u6)")
	}

	// Drop φ4 and φ5 (type-1 year and award): nothing seeds the
	// deduction for u1/u2, so Q0 must become unbounded.
	a = access.NewSchema(full[0], full[1], full[2], full[3], full[4], full[7])
	if EBnd(q, a, Subgraph).Bounded {
		t.Fatalf("without year/award seeds Q0 must be unbounded")
	}
}

// TestExample8And9Simulation reproduces Examples 8 and 9: Q1 is NOT
// effectively bounded under A1 for simulation (u1, u2 ∉ sVCov), while Q2
// (reversed (u3,u2), (u4,u2)) is.
func TestExample8And9Simulation(t *testing.T) {
	in := graph.NewInterner()
	q1 := fixtureQ1(in)
	q2 := fixtureQ2(in)
	a1 := fixtureA1(in)

	res1 := EBnd(q1, a1, Simulation)
	if res1.Bounded {
		t.Fatalf("Q1 must not be effectively bounded under A1 (simulation)")
	}
	if res1.NodeCovered[0] || res1.NodeCovered[1] {
		t.Fatalf("u1/u2 must be outside sVCov: %v", res1.NodeCovered)
	}
	if !res1.NodeCovered[2] || !res1.NodeCovered[3] {
		t.Fatalf("u3/u4 (type-1 C/D) must be covered")
	}

	res2 := EBnd(q2, a1, Simulation)
	if !res2.Bounded {
		t.Fatalf("Q2 must be effectively bounded under A1 (simulation): uncovered %v / %v",
			res2.UncoveredNodes(), res2.UncoveredEdges())
	}
	if !SEBChk(q2, a1) || SEBChk(q1, a1) {
		t.Fatalf("SEBChk wrappers disagree")
	}
}

// TestSubgraphVsSimulationCovers checks sVCov ⊆ VCov: Q1 under A1 is
// effectively bounded for SUBGRAPH queries (Example 8 notes VCov = V1 and
// ECov = E1) but not for simulation.
func TestSubgraphVsSimulationCovers(t *testing.T) {
	in := graph.NewInterner()
	q1 := fixtureQ1(in)
	a1 := fixtureA1(in)
	sub := EBnd(q1, a1, Subgraph)
	if !sub.Bounded {
		t.Fatalf("Q1 must be effectively bounded under A1 for subgraph queries (VCov = V1, ECov = E1); uncovered %v / %v",
			sub.UncoveredNodes(), sub.UncoveredEdges())
	}
	sim := EBnd(q1, a1, Simulation)
	for u := range sim.NodeCovered {
		if sim.NodeCovered[u] && !sub.NodeCovered[u] {
			t.Fatalf("sVCov ⊄ VCov at node %d", u)
		}
	}
}

// TestCoverMonotoneInSchema: adding constraints never shrinks covers.
func TestCoverMonotoneInSchema(t *testing.T) {
	in := graph.NewInterner()
	q := fixtureQ0(in)
	full := fixtureA0(in)
	cs := full.Constraints()
	for k := 0; k <= len(cs); k++ {
		sub := access.NewSchema(cs[:k]...)
		rSub := EBnd(q, sub, Subgraph)
		rFull := EBnd(q, full, Subgraph)
		for u := range rSub.NodeCovered {
			if rSub.NodeCovered[u] && !rFull.NodeCovered[u] {
				t.Fatalf("k=%d: node cover not monotone at %d", k, u)
			}
		}
		for e, c := range rSub.EdgeCovered {
			if c && !rFull.EdgeCovered[e] {
				t.Fatalf("k=%d: edge cover not monotone at %v", k, e)
			}
		}
	}
}

// TestEmptySchema: nothing is covered without constraints.
func TestEmptySchema(t *testing.T) {
	in := graph.NewInterner()
	q := fixtureQ0(in)
	res := EBnd(q, access.NewSchema(), Subgraph)
	if res.Bounded {
		t.Fatalf("empty schema cannot bound anything")
	}
	if len(res.UncoveredNodes()) != q.NumNodes() {
		t.Fatalf("all nodes should be uncovered: %v", res.UncoveredNodes())
	}
	if len(res.UncoveredEdges()) != q.NumEdges() {
		t.Fatalf("all edges should be uncovered")
	}
}

// TestType1OnlyCoversNodesNotEdges: with only type-1 constraints every
// node is covered but no edge is, so the pattern is not bounded (type-1
// indices cannot verify adjacency).
func TestType1OnlyCoversNodesNotEdges(t *testing.T) {
	in := graph.NewInterner()
	q := pattern.New(in)
	aN := q.AddNodeNamed("A", nil)
	bN := q.AddNodeNamed("B", nil)
	q.MustAddEdge(aN, bN)
	a := access.NewSchema(
		access.MustNew(nil, in.Intern("A"), 5),
		access.MustNew(nil, in.Intern("B"), 5),
	)
	res := EBnd(q, a, Subgraph)
	if !res.NodeCovered[0] || !res.NodeCovered[1] {
		t.Fatalf("type-1 must cover both nodes")
	}
	if res.EdgeCovered[[2]pattern.Node{aN, bN}] {
		t.Fatalf("type-1 must not cover the edge")
	}
	if res.Bounded {
		t.Fatalf("pattern must not be bounded")
	}
	// Adding A -> (B, N) covers the edge and bounds the query.
	a.Add(access.MustNew([]graph.Label{in.Intern("A")}, in.Intern("B"), 3))
	if !EBnd(q, a, Subgraph).Bounded {
		t.Fatalf("adding the type-2 constraint must bound the query")
	}
}

// TestSimulationChildRestriction: a constraint usable through a PARENT
// neighbor covers for subgraph but not for simulation.
func TestSimulationChildRestriction(t *testing.T) {
	in := graph.NewInterner()
	q := pattern.New(in)
	aN := q.AddNodeNamed("A", nil)
	bN := q.AddNodeNamed("B", nil)
	q.MustAddEdge(aN, bN) // B is A's child; A is B's parent
	// {} -> (A, 5) seeds A; A -> (B, 3) can cover B.
	a := access.NewSchema(
		access.MustNew(nil, in.Intern("A"), 5),
		access.MustNew([]graph.Label{in.Intern("A")}, in.Intern("B"), 3),
	)
	// Subgraph: B covered through its parent A.
	if !EBnd(q, a, Subgraph).Bounded {
		t.Fatalf("subgraph semantics should bound the query")
	}
	// Simulation: B's only A-neighbor is its parent, so the actualized
	// constraint does not exist; B is uncovered.
	res := EBnd(q, a, Simulation)
	if res.NodeCovered[bN] {
		t.Fatalf("simulation must not cover B through a parent")
	}
	// Reversing the edge (B -> A) makes A a child of B: now covered.
	q2 := pattern.New(in)
	a2N := q2.AddNodeNamed("A", nil)
	b2N := q2.AddNodeNamed("B", nil)
	q2.MustAddEdge(b2N, a2N)
	if !EBnd(q2, a, Simulation).Bounded {
		t.Fatalf("child-direction constraint must bound the reversed query")
	}
	_ = a2N
}

// TestActualizeRequiresAllLabels: an actualized constraint exists only if
// every label of S occurs among the node's neighbors.
func TestActualizeRequiresAllLabels(t *testing.T) {
	in := graph.NewInterner()
	q := pattern.New(in)
	bN := q.AddNodeNamed("B", nil)
	cN := q.AddNodeNamed("C", nil)
	q.MustAddEdge(cN, bN)
	// (C,D) -> (B, 2): B has a C neighbor but no D neighbor.
	a := access.NewSchema(
		access.MustNew([]graph.Label{in.Intern("C"), in.Intern("D")}, in.Intern("B"), 2),
	)
	gamma := actualize(q, a, Subgraph)
	if len(gamma) != 0 {
		t.Fatalf("no actualized constraint should exist, got %v", gamma)
	}
	_ = bN
}

// TestActualizeExample10 reproduces Example 10: actualized constraints of
// A1 on Q2 for simulation are φ1 = (u3,u4) ↦ (u2,2) and φ2 = u2 ↦ (u1,2).
func TestActualizeExample10(t *testing.T) {
	in := graph.NewInterner()
	q2 := fixtureQ2(in)
	a1 := fixtureA1(in)
	gamma := actualize(q2, a1, Simulation)
	if len(gamma) != 2 {
		t.Fatalf("Γ should have 2 actualized constraints, got %d", len(gamma))
	}
	seenB, seenA := false, false
	for _, phi := range gamma {
		switch phi.U {
		case 1: // u2 labeled B, via (C,D) -> (B,2), neighbors {u3,u4}
			seenB = true
			if len(phi.Nbrs) != 2 {
				t.Fatalf("V̄S for u2 = %v", phi.Nbrs)
			}
		case 0: // u1 labeled A, via B -> (A,2), neighbors {u2}
			seenA = true
			if len(phi.Nbrs) != 1 || phi.Nbrs[0] != 1 {
				t.Fatalf("V̄S for u1 = %v", phi.Nbrs)
			}
		default:
			t.Fatalf("unexpected actualized target %d", phi.U)
		}
	}
	if !seenA || !seenB {
		t.Fatalf("missing actualized constraints: %v", gamma)
	}
}

// TestCounterEqualsSetProperty pins the Theorem 2 special case: for
// type-(1)/(2)-only schemas the counter-based EBChk equals the set-based
// one on random patterns.
func TestCounterEqualsSetProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := graph.NewInterner()
		labels := make([]graph.Label, 4)
		for i := range labels {
			labels[i] = in.Intern(string(rune('a' + i)))
		}
		// Random type-1/2-only schema.
		a := access.NewSchema()
		for i := 0; i < 2+r.Intn(4); i++ {
			l := labels[r.Intn(4)]
			if r.Intn(2) == 0 {
				a.Add(access.MustNew(nil, l, 1+r.Intn(9)))
			} else {
				a.Add(access.MustNew([]graph.Label{labels[r.Intn(4)]}, l, 1+r.Intn(9)))
			}
		}
		if !a.OnlyType12() {
			return false
		}
		// Random connected pattern, possibly with duplicate labels.
		q := pattern.New(in)
		qn := 2 + r.Intn(4)
		for i := 0; i < qn; i++ {
			q.AddNode(labels[r.Intn(4)], nil)
		}
		for i := 1; i < qn; i++ {
			j := r.Intn(i)
			if r.Intn(2) == 0 {
				_ = q.AddEdge(pattern.Node(i), pattern.Node(j))
			} else {
				_ = q.AddEdge(pattern.Node(j), pattern.Node(i))
			}
		}
		for _, sem := range []Semantics{Subgraph, Simulation} {
			fast := ebnd(q, a, sem, true)
			slow := ebnd(q, a, sem, false)
			if fast.Bounded != slow.Bounded {
				t.Logf("seed %d (%v): bounded %v vs %v", seed, sem, fast.Bounded, slow.Bounded)
				return false
			}
			for u := range fast.NodeCovered {
				if fast.NodeCovered[u] != slow.NodeCovered[u] {
					t.Logf("seed %d (%v): node %d cover differs", seed, sem, u)
					return false
				}
			}
			for e, c := range fast.EdgeCovered {
				if c != slow.EdgeCovered[e] {
					t.Logf("seed %d (%v): edge %v cover differs", seed, sem, e)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
