package core

import (
	"sort"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
)

// EvalSubgraph answers an effectively bounded subgraph query on g by
// executing the plan (fetching GQ through the indices only) and running
// VF2 inside GQ — the paper's bVF2. Matches are reported in g's node IDs.
func (p *Plan) EvalSubgraph(g *graph.Graph, idx *access.IndexSet, opt match.SubgraphOptions) (*match.SubgraphResult, *ExecStats, error) {
	return p.EvalSubgraphWith(g, idx, opt, nil)
}

// EvalSubgraphWith is EvalSubgraph with an execution configuration; see
// ExecConfig.
func (p *Plan) EvalSubgraphWith(g *graph.Graph, idx *access.IndexSet, opt match.SubgraphOptions, cfg *ExecConfig) (*match.SubgraphResult, *ExecStats, error) {
	bg, stats, err := p.ExecWith(g, idx, cfg)
	if err != nil {
		return nil, nil, err
	}
	res := match.VF2WithCandidates(p.Q, bg.G, bg.Cands, opt)
	bg.MapSubgraphResult(res)
	return res, stats, nil
}

// MapSubgraphResult rewrites res's matches in place from GQ node IDs to
// the source graph's IDs.
func (bg *BoundedGraph) MapSubgraphResult(res *match.SubgraphResult) {
	for _, m := range res.Matches {
		for i, v := range m {
			m[i] = bg.ToOrig[v]
		}
	}
}

// MapSimResult rewrites res's relation in place from GQ node IDs to the
// source graph's IDs, keeping each list sorted.
func (bg *BoundedGraph) MapSimResult(res *match.SimResult) {
	if !res.Matched {
		return
	}
	for ui := range res.Sim {
		mapped := make([]graph.NodeID, len(res.Sim[ui]))
		for i, v := range res.Sim[ui] {
			mapped[i] = bg.ToOrig[v]
		}
		sortNodeIDs(mapped)
		res.Sim[ui] = mapped
	}
}

// EvalSim answers an effectively bounded simulation query on g by
// executing the plan and computing the maximum simulation inside GQ — the
// paper's bSim. The relation is reported in g's node IDs.
func (p *Plan) EvalSim(g *graph.Graph, idx *access.IndexSet) (*match.SimResult, *ExecStats, error) {
	return p.EvalSimWith(g, idx, nil)
}

// EvalSimWith is EvalSim with an execution configuration; see ExecConfig.
func (p *Plan) EvalSimWith(g *graph.Graph, idx *access.IndexSet, cfg *ExecConfig) (*match.SimResult, *ExecStats, error) {
	bg, stats, err := p.ExecWith(g, idx, cfg)
	if err != nil {
		return nil, nil, err
	}
	res := match.GSimWithCandidates(p.Q, bg.G, bg.Cands)
	bg.MapSimResult(res)
	return res, stats, nil
}

// BVF2 checks boundedness, plans, and evaluates a subgraph query in one
// call. It returns ErrNotBounded when no effectively bounded plan exists.
func BVF2(q *pattern.Pattern, g *graph.Graph, idx *access.IndexSet, opt match.SubgraphOptions) (*match.SubgraphResult, *ExecStats, error) {
	p, err := NewPlan(q, idx.Schema(), Subgraph)
	if err != nil {
		return nil, nil, err
	}
	return p.EvalSubgraph(g, idx, opt)
}

// BSim checks boundedness, plans, and evaluates a simulation query in one
// call. It returns ErrNotBounded when no effectively bounded plan exists.
func BSim(q *pattern.Pattern, g *graph.Graph, idx *access.IndexSet) (*match.SimResult, *ExecStats, error) {
	p, err := NewPlan(q, idx.Schema(), Simulation)
	if err != nil {
		return nil, nil, err
	}
	return p.EvalSim(g, idx)
}

func sortNodeIDs(s []graph.NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
