package core

import (
	"sort"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
)

// EvalSubgraph answers an effectively bounded subgraph query on g by
// executing the plan (fetching GQ through the indices only) and running
// VF2 inside GQ — the paper's bVF2. Matches are reported in g's node IDs.
func (p *Plan) EvalSubgraph(g *graph.Graph, idx *access.IndexSet, opt match.SubgraphOptions) (*match.SubgraphResult, *ExecStats, error) {
	bg, stats, err := p.Exec(g, idx)
	if err != nil {
		return nil, nil, err
	}
	res := match.VF2WithCandidates(p.Q, bg.G, bg.Cands, opt)
	for _, m := range res.Matches {
		for i, v := range m {
			m[i] = bg.ToOrig[v]
		}
	}
	return res, stats, nil
}

// EvalSim answers an effectively bounded simulation query on g by
// executing the plan and computing the maximum simulation inside GQ — the
// paper's bSim. The relation is reported in g's node IDs.
func (p *Plan) EvalSim(g *graph.Graph, idx *access.IndexSet) (*match.SimResult, *ExecStats, error) {
	bg, stats, err := p.Exec(g, idx)
	if err != nil {
		return nil, nil, err
	}
	res := match.GSimWithCandidates(p.Q, bg.G, bg.Cands)
	if res.Matched {
		for ui := range res.Sim {
			mapped := make([]graph.NodeID, len(res.Sim[ui]))
			for i, v := range res.Sim[ui] {
				mapped[i] = bg.ToOrig[v]
			}
			sortNodeIDs(mapped)
			res.Sim[ui] = mapped
		}
	}
	return res, stats, nil
}

// BVF2 checks boundedness, plans, and evaluates a subgraph query in one
// call. It returns ErrNotBounded when no effectively bounded plan exists.
func BVF2(q *pattern.Pattern, g *graph.Graph, idx *access.IndexSet, opt match.SubgraphOptions) (*match.SubgraphResult, *ExecStats, error) {
	p, err := NewPlan(q, idx.Schema(), Subgraph)
	if err != nil {
		return nil, nil, err
	}
	return p.EvalSubgraph(g, idx, opt)
}

// BSim checks boundedness, plans, and evaluates a simulation query in one
// call. It returns ErrNotBounded when no effectively bounded plan exists.
func BSim(q *pattern.Pattern, g *graph.Graph, idx *access.IndexSet) (*match.SimResult, *ExecStats, error) {
	p, err := NewPlan(q, idx.Schema(), Simulation)
	if err != nil {
		return nil, nil, err
	}
	return p.EvalSim(g, idx)
}

func sortNodeIDs(s []graph.NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
