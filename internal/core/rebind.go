package core

import (
	"errors"

	"boundedg/internal/pattern"
)

// ErrRebindMismatch is returned by Rebind when the new pattern is not
// structurally identical to the plan's pattern.
var ErrRebindMismatch = errors.New("core: rebind pattern differs structurally from the plan's pattern")

// Rebind returns a plan for q2 that reuses this plan's fetch operations
// and edge checks. q2 must be structurally identical to the plan's
// pattern — same node count, labels (in node order) and edges — and may
// differ only in node predicates.
//
// This serves §V's parameterized query templates: a recommendation
// service plans each template once and re-instantiates it per request
// with fresh constants. Effective boundedness and worst-case optimality
// are properties of the pattern's labels and edges alone, so they carry
// over; predicates only filter the fetched candidates further.
func (p *Plan) Rebind(q2 *pattern.Pattern) (*Plan, error) {
	q := p.Q
	if q2.NumNodes() != q.NumNodes() || q2.NumEdges() != q.NumEdges() {
		return nil, ErrRebindMismatch
	}
	for i := 0; i < q.NumNodes(); i++ {
		if q2.LabelOf(pattern.Node(i)) != q.LabelOf(pattern.Node(i)) {
			return nil, ErrRebindMismatch
		}
	}
	same := true
	q.Edges(func(from, to pattern.Node) bool {
		if !q2.HasEdge(from, to) {
			same = false
			return false
		}
		return true
	})
	if !same {
		return nil, ErrRebindMismatch
	}
	clone := &Plan{
		Sem:        p.Sem,
		Q:          q2,
		A:          p.A,
		Ops:        p.Ops,
		EdgeChecks: p.EdgeChecks,
		EstSize:    p.EstSize,
	}
	return clone, nil
}

// WithPredicates builds the instantiated pattern for a template: a copy
// of q whose node predicates are replaced by preds (missing entries mean
// "true"). It lives here rather than in package pattern because its
// purpose is plan rebinding.
func WithPredicates(q *pattern.Pattern, preds map[pattern.Node]pattern.Predicate) *pattern.Pattern {
	q2 := pattern.New(q.Interner())
	for i := 0; i < q.NumNodes(); i++ {
		u := pattern.Node(i)
		q2.AddNode(q.LabelOf(u), preds[u])
		q2.SetName(u, q.Name(u))
	}
	q.Edges(func(from, to pattern.Node) bool {
		q2.MustAddEdge(from, to)
		return true
	})
	return q2
}
