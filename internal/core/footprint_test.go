package core

import (
	"reflect"
	"testing"

	"boundedg/internal/graph"
)

// TestFootprintDisjoint pins the conservative intersection semantics:
// any shared row or label defeats disjointness, and an overflowed
// footprint never vouches for anything.
func TestFootprintDisjoint(t *testing.T) {
	fp := NewFootprint()
	fp.addRows([]graph.NodeID{1, 2, 3})
	fp.addLabel(7)

	if !fp.Disjoint([]graph.NodeID{4, 5}, []graph.Label{8}) {
		t.Fatal("unrelated rows and labels reported as intersecting")
	}
	if fp.Disjoint([]graph.NodeID{5, 2}, nil) {
		t.Fatal("shared row 2 missed")
	}
	if fp.Disjoint(nil, []graph.Label{7}) {
		t.Fatal("shared label 7 missed")
	}
	if !fp.HasRow(1) || fp.HasRow(9) || !fp.HasLabel(7) || fp.HasLabel(8) {
		t.Fatal("HasRow/HasLabel membership wrong")
	}
	if fp.NumRows() != 3 {
		t.Fatalf("NumRows = %d, want 3", fp.NumRows())
	}

	// Push past the cap: the footprint flips to overflow and stops
	// vouching even for genuinely disjoint deltas.
	big := make([]graph.NodeID, maxFootprintRows+1)
	for i := range big {
		big[i] = graph.NodeID(i + 100)
	}
	fp.addRows(big)
	if !fp.Overflowed() {
		t.Fatal("footprint did not overflow past the row cap")
	}
	if fp.Disjoint([]graph.NodeID{999999999}, nil) {
		t.Fatal("overflowed footprint vouched for disjointness")
	}
}

// TestExecFootprintRecording runs a real bounded plan with footprint
// recording on and checks that (a) recording does not perturb the
// result, (b) every node of the fetched subgraph GQ is in the footprint
// (GQ nodes are exactly the union of final candidate sets, which the
// recorder captures per op), and (c) the plan's type-1 seed labels are
// recorded.
func TestExecFootprintRecording(t *testing.T) {
	d, idx, p := cancelFixture(t, 0.05)

	wantBG, wantStats, err := p.Exec(d.G, idx)
	if err != nil {
		t.Fatalf("reference Exec: %v", err)
	}

	fp := NewFootprint()
	bg, stats, err := p.ExecWith(d.G, idx, &ExecConfig{Footprint: fp})
	if err != nil {
		t.Fatalf("ExecWith(footprint): %v", err)
	}
	if !reflect.DeepEqual(bg, wantBG) || !reflect.DeepEqual(stats, wantStats) {
		t.Fatal("footprint recording perturbed the execution result")
	}

	if fp.NumRows() == 0 {
		t.Fatal("footprint recorded no rows for a non-trivial plan")
	}
	for gqID, orig := range bg.ToOrig {
		if !fp.HasRow(orig) {
			t.Fatalf("GQ node %d (orig %d) missing from footprint", gqID, orig)
		}
	}
	seeds := 0
	for _, op := range p.Ops {
		if op.Deps == nil {
			seeds++
			if l := p.A.At(op.CIdx).L; !fp.HasLabel(l) {
				t.Fatalf("type-1 seed label %d missing from footprint", l)
			}
		}
	}
	if seeds == 0 {
		t.Fatal("fixture plan has no type-1 seed op; test is vacuous")
	}

	// Parallel execution records the same footprint rows (recording
	// happens on the merged per-op results, not inside workers).
	fp2 := NewFootprint()
	if _, _, err := p.ExecWith(d.G, idx, &ExecConfig{Workers: 4, Footprint: fp2}); err != nil {
		t.Fatalf("ExecWith(workers=4, footprint): %v", err)
	}
	if fp2.NumRows() != fp.NumRows() {
		t.Fatalf("parallel footprint rows = %d, serial = %d", fp2.NumRows(), fp.NumRows())
	}
}
