package core

import (
	"fmt"
	"strings"
)

// Explain renders the plan with its worst-case cost accounting: for each
// fetch operation the bound on fetched candidates, for each edge check
// the bound on index probes and returned candidates, and the totals that
// Theorem 4's optimality is measured in. All numbers are functions of Q
// and A only — what makes the plan effectively bounded.
func (p *Plan) Explain() string {
	var b strings.Builder
	in := p.Q.Interner()
	fmt.Fprintf(&b, "plan (%s), worst-case accounting:\n", p.Sem)
	totalNodes := 0.0
	for i, op := range p.Ops {
		c := p.A.At(op.CIdx)
		var probes, fetched float64
		if op.Deps == nil {
			probes = 1
			fetched = float64(c.N)
		} else {
			probes = 1
			for _, d := range op.Deps {
				probes *= p.EstSize[d]
			}
			fetched = probes * float64(c.N)
		}
		deps := "nil"
		if op.Deps != nil {
			names := make([]string, len(op.Deps))
			for j, d := range op.Deps {
				names[j] = p.Q.Name(d)
			}
			deps = "{" + strings.Join(names, ", ") + "}"
		}
		fmt.Fprintf(&b, "  ft%d %s <- %s via %s: <=%.0f probes, <=%.0f nodes; |cmat(%s)| <= %.0f\n",
			i+1, p.Q.Name(op.U), deps, c.Format(in), probes, fetched, p.Q.Name(op.U), p.EstSize[op.U])
		totalNodes += fetched
	}
	totalEdges := 0.0
	for _, ec := range p.EdgeChecks {
		c := p.A.At(ec.CIdx)
		probes := 1.0
		for _, d := range ec.Deps {
			probes *= p.EstSize[d]
		}
		cands := probes * float64(c.N)
		fmt.Fprintf(&b, "  edge (%s, %s) via %s: <=%.0f probes, <=%.0f edge candidates\n",
			p.Q.Name(ec.From), p.Q.Name(ec.To), c.Format(in), probes, cands)
		totalEdges += cands
	}
	fmt.Fprintf(&b, "  worst case: <=%.0f nodes fetched, <=%.0f edge candidates, GQ <= %.0f nodes\n",
		totalNodes, totalEdges, p.EstGQNodes())
	return b.String()
}
