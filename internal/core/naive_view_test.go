package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/match"
)

// TestNaivePlanCorrectButNotOptimal: on Q0/A0 the naive plan evaluates to
// the same result, but its worst-case GQ estimate is at least QPlan's.
func TestNaivePlanCorrectButNotOptimal(t *testing.T) {
	in := graph.NewInterner()
	q, a, g, idx := buildIMDbIndexed(t, in, 8, 3, 4, 2, 3)
	opt, err := NewPlan(q, a, Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewNaivePlan(q, a, Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if naive.EstGQNodes() < opt.EstGQNodes() {
		t.Fatalf("naive worst case %v smaller than optimal %v", naive.EstGQNodes(), opt.EstGQNodes())
	}
	r1, _, err := opt.EvalSubgraph(g, idx, match.SubgraphOptions{StoreMatches: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := naive.EvalSubgraph(g, idx, match.SubgraphOptions{StoreMatches: true})
	if err != nil {
		t.Fatal(err)
	}
	match.SortMatches(r1.Matches)
	match.SortMatches(r2.Matches)
	if r1.Count != r2.Count || !reflect.DeepEqual(r1.Matches, r2.Matches) {
		t.Fatalf("naive plan answer differs: %d vs %d", r1.Count, r2.Count)
	}
}

// TestNaivePlanStrictlyWorseSomewhere: construct a schema where QPlan's
// reduction beats the naive first-choice by a wide margin.
func TestNaivePlanStrictlyWorseSomewhere(t *testing.T) {
	in := graph.NewInterner()
	q := fixtureQ0(in)
	a := fixtureA0(in)
	// Add a loose type-1 on movie: the naive plan seeds movie with it and
	// never reduces; QPlan reduces movie through (year, award).
	a.Add(access.MustNew(nil, in.Intern("movie"), 1_000_000))
	opt, err := NewPlan(q, a, Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewNaivePlan(q, a, Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if opt.EstSize[2] != 4*24*135 {
		t.Fatalf("QPlan should reduce movie to 12960, got %v", opt.EstSize[2])
	}
	if naive.EstSize[2] != 1_000_000 {
		t.Fatalf("naive should keep the type-1 bound, got %v", naive.EstSize[2])
	}
	if naive.EstGQNodes() <= opt.EstGQNodes() {
		t.Fatalf("expected a strict gap: naive %v vs optimal %v", naive.EstGQNodes(), opt.EstGQNodes())
	}
}

// TestNaivePlanRejectsUnbounded mirrors NewPlan's contract.
func TestNaivePlanRejectsUnbounded(t *testing.T) {
	in := graph.NewInterner()
	if _, err := NewNaivePlan(fixtureQ1(in), fixtureA1(in), Simulation); !errors.Is(err, ErrNotBounded) {
		t.Fatalf("err = %v, want ErrNotBounded", err)
	}
}

// Property: naive and optimal plans agree on results for random bounded
// cases, and the optimal worst case never exceeds the naive one.
func TestNaiveVsOptimalProperty(t *testing.T) {
	checked := 0
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, g, idx, ok := randomBoundedCase(r, Subgraph)
		if !ok {
			return true
		}
		checked++
		opt, err1 := NewPlan(q, idx.Schema(), Subgraph)
		naive, err2 := NewNaivePlan(q, idx.Schema(), Subgraph)
		if err1 != nil || err2 != nil {
			t.Logf("seed %d: %v / %v", seed, err1, err2)
			return false
		}
		if naive.EstGQNodes() < opt.EstGQNodes() {
			t.Logf("seed %d: optimality violated: naive %v < optimal %v", seed, naive.EstGQNodes(), opt.EstGQNodes())
			return false
		}
		r1, _, err1 := opt.EvalSubgraph(g, idx, match.SubgraphOptions{StoreMatches: true})
		r2, _, err2 := naive.EvalSubgraph(g, idx, match.SubgraphOptions{StoreMatches: true})
		if err1 != nil || err2 != nil {
			return false
		}
		match.SortMatches(r1.Matches)
		match.SortMatches(r2.Matches)
		return r1.Count == r2.Count && reflect.DeepEqual(r1.Matches, r2.Matches)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatalf("generator produced no bounded cases")
	}
}

// TestViewRefresh: a standing view answers correctly across update
// batches, matching from-scratch evaluation after every delta.
func TestViewRefresh(t *testing.T) {
	in := graph.NewInterner()
	q, a, g, idx := buildIMDbIndexed(t, in, 8, 3, 4, 2, 3)
	p, err := NewPlan(q, a, Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	view, err := NewView(p, g, idx)
	if err != nil {
		t.Fatal(err)
	}
	if view.Plan() != p || view.Stats() == nil {
		t.Fatalf("accessors broken")
	}
	checkAgainstDirect := func() {
		t.Helper()
		bg := view.Result()
		res := match.VF2WithCandidates(q, bg.G, bg.Cands, match.SubgraphOptions{})
		direct := match.VF2(q, g, match.SubgraphOptions{})
		if res.Count != direct.Count {
			t.Fatalf("view count %d != direct %d", res.Count, direct.Count)
		}
	}
	checkAgainstDirect()

	lMovie := in.Intern("movie")
	lActor := in.Intern("actor")
	lYear, _ := in.Lookup("year")
	year := g.NodesByLabel(lYear)[0]

	// Insert a movie with an actor; refresh; compare.
	d1 := &graph.Delta{
		AddNodes: []graph.NodeSpec{
			{Label: lMovie, Value: graph.IntValue(777)},
			{Label: lActor, Value: graph.NoValue()},
		},
		AddEdges: [][2]graph.NodeID{
			{graph.NewNodeRef(0), year},
			{graph.NewNodeRef(0), graph.NewNodeRef(1)},
		},
	}
	newIDs, viols, err := view.Apply(d1)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Fatalf("unexpected violations: %v", viols)
	}
	checkAgainstDirect()

	// Delete the inserted movie; refresh; compare.
	d2 := &graph.Delta{DelNodes: newIDs[:1]}
	if _, _, err := view.Apply(d2); err != nil {
		t.Fatal(err)
	}
	checkAgainstDirect()
}

// TestViewApplyBadDelta: structural errors surface and the view keeps its
// previous result.
func TestViewApplyBadDelta(t *testing.T) {
	in := graph.NewInterner()
	q, a, g, idx := buildIMDbIndexed(t, in, 6, 2, 3, 2, 2)
	p, err := NewPlan(q, a, Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	view, err := NewView(p, g, idx)
	if err != nil {
		t.Fatal(err)
	}
	before := view.Result()
	bad := &graph.Delta{DelNodes: []graph.NodeID{999999}}
	if _, _, err := view.Apply(bad); err == nil {
		t.Fatalf("want error for bad delta")
	}
	if view.Result() != before {
		t.Fatalf("failed apply must not clobber the result")
	}
}

// Property: a view refreshed after a random delta equals a from-scratch
// execution of the same plan on the updated graph.
func TestViewRefreshEqualsFreshExecProperty(t *testing.T) {
	checked := 0
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, g, idx, ok := randomBoundedCase(r, Subgraph)
		if !ok {
			return true
		}
		p, err := NewPlan(q, idx.Schema(), Subgraph)
		if err != nil {
			return false
		}
		view, err := NewView(p, g, idx)
		if err != nil {
			return false
		}
		// Random delta: insert a node wired to an existing one; delete a
		// random edge if any.
		labels := g.Labels()
		d := &graph.Delta{
			AddNodes: []graph.NodeSpec{{Label: labels[r.Intn(len(labels))], Value: graph.IntValue(int64(r.Intn(5)))}},
		}
		nodes := g.NodeList()
		d.AddEdges = [][2]graph.NodeID{{graph.NewNodeRef(0), nodes[r.Intn(len(nodes))]}}
		var edges [][2]graph.NodeID
		g.Edges(func(from, to graph.NodeID) bool {
			edges = append(edges, [2]graph.NodeID{from, to})
			return true
		})
		if len(edges) > 0 {
			d.DelEdges = [][2]graph.NodeID{edges[r.Intn(len(edges))]}
		}
		if _, _, err := view.Apply(d); err != nil {
			t.Logf("seed %d: apply: %v", seed, err)
			return false
		}
		checked++
		// Fresh evaluation on the updated graph with rebuilt indices.
		fresh := access.BuildUnchecked(g, idx.Schema())
		bgFresh, _, err := p.Exec(g, fresh)
		if err != nil {
			t.Logf("seed %d: fresh exec: %v", seed, err)
			return false
		}
		a := match.VF2WithCandidates(q, view.Result().G, view.Result().Cands, match.SubgraphOptions{})
		b := match.VF2WithCandidates(q, bgFresh.G, bgFresh.Cands, match.SubgraphOptions{})
		if a.Count != b.Count {
			t.Logf("seed %d: view %d vs fresh %d", seed, a.Count, b.Count)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatalf("no case exercised")
	}
}
