package core

import (
	"sort"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// MaxExtension computes the maximum M-bounded extension AM of A with
// respect to g and the query load (step (1) of algorithm EEChk, §V): it
// adds every type-1 constraint {} -> (l, N) and type-2 constraint
// l -> (l', N) over labels occurring in the queries whose exact bound N in
// g is at most M. Bounds are exact maxima over g, so g |= AM whenever
// g |= A. Scanning cost is O(|G|), per Theorem 6.
//
// Labels of the queries absent from g get {} -> (l, 0): g vacuously
// satisfies them and they make such queries trivially answerable (the
// paper restricts enumeration to labels "in both Q and G" purely to bound
// the scan; absent labels have N = 0 ≤ M).
func MaxExtension(g *graph.Graph, a *access.Schema, queries []*pattern.Pattern, m int) *access.Schema {
	qLabels := make(map[graph.Label]struct{})
	for _, q := range queries {
		for _, l := range q.LabelSet() {
			qLabels[l] = struct{}{}
		}
	}
	labels := make([]graph.Label, 0, len(qLabels))
	for l := range qLabels {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })

	st := graph.ComputeStats(g)
	am := a.Clone()
	for _, l := range labels {
		if n := st.LabelCounts[l]; n <= m {
			am.Add(access.MustNew(nil, l, n))
		}
	}
	for _, l := range labels {
		for _, l2 := range labels {
			// l == l2 is legal: l -> (l, N) bounds same-label neighbors.
			if n := st.MaxLabelNeighbors[[2]graph.Label{l, l2}]; n <= m {
				am.Add(access.MustNew([]graph.Label{l}, l2, n))
			}
		}
	}
	return am
}

// EEChk decides EEP(Q, A, M, G): does an M-bounded extension AM of A exist
// under which every query of the load is instance-bounded in g? It
// suffices to test the maximum extension (§V): if any extension works, the
// maximum one does, because covers are monotone in the schema. The
// returned schema is that maximum extension (useful even on "no", to see
// how far it got). Complexity: O(|G| + (|A|+|Q|)|EQ| + (||A||+|Q|)|VQ|²),
// Theorems 6 and 10.
func EEChk(queries []*pattern.Pattern, a *access.Schema, m int, g *graph.Graph, sem Semantics) (bool, *access.Schema) {
	am := MaxExtension(g, a, queries, m)
	for _, q := range queries {
		if !EBnd(q, am, sem).Bounded {
			return false, am
		}
	}
	return true, am
}

// MinimalM returns the smallest M such that q is instance-bounded in g
// under the maximum M-bounded extension of a (0 when q is already
// effectively bounded under a). ok is false when even the unbounded
// extension (M = ∞) cannot make q instance-bounded — which, per
// Proposition 5, cannot happen for connected patterns over g's labels but
// is reported for robustness. The search is a binary search over the
// distinct exact bounds of the candidate constraints, valid because
// coverage is monotone in M.
func MinimalM(q *pattern.Pattern, a *access.Schema, g *graph.Graph, sem Semantics) (int, bool) {
	if EBnd(q, a, sem).Bounded {
		return 0, true
	}
	// Candidate constraints with their exact bounds.
	st := graph.ComputeStats(g)
	labels := q.LabelSet()
	type cand struct {
		c access.Constraint
		n int
	}
	var cands []cand
	for _, l := range labels {
		cands = append(cands, cand{access.MustNew(nil, l, st.LabelCounts[l]), st.LabelCounts[l]})
	}
	for _, l := range labels {
		for _, l2 := range labels {
			n := st.MaxLabelNeighbors[[2]graph.Label{l, l2}]
			cands = append(cands, cand{access.MustNew([]graph.Label{l}, l2, n), n})
		}
	}
	bounds := make([]int, 0, len(cands))
	seen := make(map[int]struct{})
	for _, c := range cands {
		if _, dup := seen[c.n]; !dup {
			seen[c.n] = struct{}{}
			bounds = append(bounds, c.n)
		}
	}
	sort.Ints(bounds)

	boundedAt := func(m int) bool {
		am := a.Clone()
		for _, c := range cands {
			if c.n <= m {
				am.Add(c.c)
			}
		}
		return EBnd(q, am, sem).Bounded
	}
	if len(bounds) == 0 || !boundedAt(bounds[len(bounds)-1]) {
		return 0, false
	}
	lo, hi := 0, len(bounds)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if boundedAt(bounds[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return bounds[lo], true
}
