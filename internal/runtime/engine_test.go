package runtime

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/ctxtest"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
	"boundedg/internal/workload"
)

// fixture bundles a dataset, its indices and the bounded queries of a
// random load, per semantics.
type fixture struct {
	d     *workload.Dataset
	idx   *access.IndexSet
	subQs []*pattern.Pattern
	simQs []*pattern.Pattern
}

func newFixture(t *testing.T, scale float64, numQueries int, seed int64) *fixture {
	t.Helper()
	d := workload.IMDb(scale, seed)
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		t.Fatalf("index build: %v", viols[0])
	}
	f := &fixture{d: d, idx: idx}
	for _, q := range workload.DefaultQueryGen.Generate(d, numQueries, seed+7) {
		if core.EBnd(q, d.Schema, core.Subgraph).Bounded {
			f.subQs = append(f.subQs, q)
		}
		if core.EBnd(q, d.Schema, core.Simulation).Bounded {
			f.simQs = append(f.simQs, q)
		}
	}
	if len(f.subQs) == 0 || len(f.simQs) == 0 {
		t.Fatalf("no bounded queries in load (sub=%d sim=%d)", len(f.subQs), len(f.simQs))
	}
	return f
}

var mopt = match.SubgraphOptions{MaxMatches: 10_000, StoreMatches: true}

// canonMatches returns a lexicographically sorted copy of the matches:
// the engine matches inside a frozen GQ whose sorted adjacency changes
// enumeration order, so equality is on the match SET.
func canonMatches(ms [][]graph.NodeID) [][]graph.NodeID {
	out := make([][]graph.NodeID, len(ms))
	for i, m := range ms {
		out[i] = append([]graph.NodeID(nil), m...)
	}
	match.SortMatches(out)
	return out
}

// TestEngineMatchesSerial is the differential test: for every bounded
// query of a randomized load, the engine's result (with cross-query and
// intra-query parallelism) must be identical to the serial
// Plan.Exec/match path — same matches, same relation, same stats.
func TestEngineMatchesSerial(t *testing.T) {
	f := newFixture(t, 0.15, 40, 3)
	e, err := New(f.d.G, f.idx, Config{Workers: 4, IntraQueryWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	for i, q := range f.subQs {
		p, err := core.NewPlan(q, f.d.Schema, core.Subgraph)
		if err != nil {
			t.Fatalf("plan sub[%d]: %v", i, err)
		}
		wantRes, wantStats, err := p.EvalSubgraph(f.d.G, f.idx, mopt)
		if err != nil {
			t.Fatalf("serial sub[%d]: %v", i, err)
		}
		got := e.Eval(nil, Query{Pattern: q, Sem: core.Subgraph, Sub: mopt})
		if got.Err != nil {
			t.Fatalf("engine sub[%d]: %v", i, got.Err)
		}
		if got.Sub.Count != wantRes.Count || !reflect.DeepEqual(canonMatches(got.Sub.Matches), canonMatches(wantRes.Matches)) {
			t.Fatalf("sub[%d]: engine matches differ\n got %v\nwant %v", i, got.Sub.Matches, wantRes.Matches)
		}
		if !reflect.DeepEqual(got.Stats, wantStats) {
			t.Fatalf("sub[%d]: stats differ: got %+v want %+v", i, got.Stats, wantStats)
		}
	}
	for i, q := range f.simQs {
		p, err := core.NewPlan(q, f.d.Schema, core.Simulation)
		if err != nil {
			t.Fatalf("plan sim[%d]: %v", i, err)
		}
		wantRes, wantStats, err := p.EvalSim(f.d.G, f.idx)
		if err != nil {
			t.Fatalf("serial sim[%d]: %v", i, err)
		}
		got := e.Eval(nil, Query{Pattern: q, Sem: core.Simulation})
		if got.Err != nil {
			t.Fatalf("engine sim[%d]: %v", i, got.Err)
		}
		if got.Sim.Matched != wantRes.Matched || !reflect.DeepEqual(got.Sim.Sim, wantRes.Sim) {
			t.Fatalf("sim[%d]: engine relation differs\n got %v\nwant %v", i, got.Sim.Sim, wantRes.Sim)
		}
		if !reflect.DeepEqual(got.Stats, wantStats) {
			t.Fatalf("sim[%d]: stats differ: got %+v want %+v", i, got.Stats, wantStats)
		}
	}
}

// TestEngineConcurrentStress hammers one engine from many goroutines with
// a mixed workload and checks every result against precomputed serial
// answers. Run under -race this exercises the shared graph, index set,
// frozen snapshot and plan cache.
func TestEngineConcurrentStress(t *testing.T) {
	f := newFixture(t, 0.1, 30, 11)
	e, err := New(f.d.G, f.idx, Config{Workers: 8, IntraQueryWorkers: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	wantSub := make([]*match.SubgraphResult, len(f.subQs))
	for i, q := range f.subQs {
		p, err := core.NewPlan(q, f.d.Schema, core.Subgraph)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := p.EvalSubgraph(f.d.G, f.idx, mopt)
		if err != nil {
			t.Fatal(err)
		}
		res.Matches = canonMatches(res.Matches)
		wantSub[i] = res
	}
	wantSim := make([]*match.SimResult, len(f.simQs))
	for i, q := range f.simQs {
		p, err := core.NewPlan(q, f.d.Schema, core.Simulation)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := p.EvalSim(f.d.G, f.idx)
		if err != nil {
			t.Fatal(err)
		}
		wantSim[i] = res
	}

	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan string, rounds*(len(f.subQs)+len(f.simQs)))
	for r := 0; r < rounds; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range f.subQs {
				got := e.Eval(nil, Query{Pattern: q, Sem: core.Subgraph, Sub: mopt})
				if got.Err != nil {
					errs <- got.Err.Error()
					continue
				}
				if got.Sub.Count != wantSub[i].Count || !reflect.DeepEqual(canonMatches(got.Sub.Matches), wantSub[i].Matches) {
					errs <- "subgraph result diverged under concurrency"
				}
			}
			for i, q := range f.simQs {
				got := e.Eval(nil, Query{Pattern: q, Sem: core.Simulation})
				if got.Err != nil {
					errs <- got.Err.Error()
					continue
				}
				if got.Sim.Matched != wantSim[i].Matched || !reflect.DeepEqual(got.Sim.Sim, wantSim[i].Sim) {
					errs <- "simulation relation diverged under concurrency"
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	st := e.Stats()
	want := uint64(rounds * (len(f.subQs) + len(f.simQs)))
	if st.Submitted != want || st.Completed != want || st.Failed != 0 {
		t.Fatalf("stats = %+v, want %d submitted/completed, 0 failed", st, want)
	}
}

// TestEngineBatchAndFutures covers the async surface: EvalBatch order,
// FetchOnly, pre-built plans, and unbounded-pattern errors.
func TestEngineBatchAndFutures(t *testing.T) {
	f := newFixture(t, 0.1, 20, 5)
	e, err := New(f.d.G, f.idx, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	qs := make([]Query, 0, len(f.simQs))
	for _, q := range f.simQs {
		qs = append(qs, Query{Pattern: q, Sem: core.Simulation})
	}
	results := e.EvalBatch(nil, qs)
	if len(results) != len(qs) {
		t.Fatalf("EvalBatch returned %d results for %d queries", len(results), len(qs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch[%d]: %v", i, r.Err)
		}
		if r.Sim == nil || r.Stats == nil || r.BG == nil {
			t.Fatalf("batch[%d]: incomplete result %+v", i, r)
		}
	}

	// FetchOnly returns GQ without a match relation.
	r := e.Eval(nil, Query{Pattern: f.simQs[0], Sem: core.Simulation, FetchOnly: true})
	if r.Err != nil || r.BG == nil || r.Sim != nil || r.Sub != nil {
		t.Fatalf("FetchOnly result wrong: %+v", r)
	}

	// A pre-built plan is used as-is.
	p, err := core.NewPlan(f.simQs[0], f.d.Schema, core.Simulation)
	if err != nil {
		t.Fatal(err)
	}
	r = e.Eval(nil, Query{Pattern: f.simQs[0], Sem: core.Simulation, Plan: p})
	if r.Err != nil || r.Sim == nil {
		t.Fatalf("pre-planned eval failed: %+v", r)
	}

	// Nil pattern and unbounded patterns surface errors.
	if r := e.Eval(nil, Query{}); r.Err != ErrNilQuery {
		t.Fatalf("nil pattern err = %v", r.Err)
	}
}

func TestEngineClose(t *testing.T) {
	f := newFixture(t, 0.1, 10, 9)
	e, err := New(f.d.G, f.idx, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fut := e.Submit(nil, Query{Pattern: f.simQs[0], Sem: core.Simulation})
	e.Close()
	if r := fut.Wait(); r.Err != nil {
		t.Fatalf("pending future after Close: %v", r.Err)
	}
	if r := e.Eval(nil, Query{Pattern: f.simQs[0], Sem: core.Simulation}); r.Err != ErrClosed {
		t.Fatalf("submit after Close err = %v, want ErrClosed", r.Err)
	}
	e.Close() // double Close is a no-op
}

// TestEngineSubmitCloseRace is the regression test for closing an engine
// under fire: many goroutines hammer Submit while two goroutines race
// Close. No Submit may panic (send on closed channel), every future must
// resolve, and each result is either a normal answer or ErrClosed.
func TestEngineSubmitCloseRace(t *testing.T) {
	f := newFixture(t, 0.05, 10, 13)
	for round := 0; round < 4; round++ {
		e, err := New(f.d.G, f.idx, Config{Workers: 2, QueueDepth: 2})
		if err != nil {
			t.Fatal(err)
		}
		const submitters = 8
		var wg sync.WaitGroup
		start := make(chan struct{})
		futs := make([][]*Future, submitters)
		for s := 0; s < submitters; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				<-start
				for i := 0; i < 20; i++ {
					q := f.simQs[(s+i)%len(f.simQs)]
					futs[s] = append(futs[s], e.Submit(nil, Query{Pattern: q, Sem: core.Simulation}))
				}
			}(s)
		}
		// Two goroutines race Close against the submitters (and each
		// other: Close must be idempotent under concurrency).
		var cwg sync.WaitGroup
		for c := 0; c < 2; c++ {
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				<-start
				e.Close()
			}()
		}
		close(start)
		wg.Wait()
		cwg.Wait()
		ok, closed := 0, 0
		for _, fs := range futs {
			for _, fut := range fs {
				r := fut.Wait()
				switch r.Err {
				case nil:
					ok++
				case ErrClosed:
					closed++
				default:
					t.Fatalf("unexpected submit result: %v", r.Err)
				}
			}
		}
		st := e.Stats()
		if st.Submitted != st.Completed {
			t.Fatalf("engine lost tasks: %+v (ok=%d closed=%d)", st, ok, closed)
		}
		if uint64(ok) != st.Completed-st.Failed {
			t.Fatalf("result accounting off: ok=%d stats=%+v", ok, st)
		}
	}
}

// TestEngineContextCancellation covers the acceptance criterion: a query
// submitted with an already-cancelled context resolves promptly with the
// cancellation error and performs no evaluation (the engine's access
// counters stay untouched), and a batch cancelled in flight drains
// without evaluating the still-queued queries.
func TestEngineContextCancellation(t *testing.T) {
	f := newFixture(t, 0.3, 30, 17)
	e, err := New(f.d.G, f.idx, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := e.Eval(ctx, Query{Pattern: f.subQs[0], Sem: core.Subgraph, Sub: mopt})
	if r.Err != context.Canceled {
		t.Fatalf("pre-cancelled Eval err = %v, want context.Canceled", r.Err)
	}
	if r.BG != nil || r.Stats != nil || r.Sub != nil {
		t.Fatalf("pre-cancelled Eval leaked a result: %+v", r)
	}
	if st := e.Stats(); st.NodesAccessed != 0 || st.EdgesAccessed != 0 {
		t.Fatalf("pre-cancelled query touched the graph: %+v", st)
	}

	// Deadline expiry surfaces as DeadlineExceeded.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if r := e.Eval(dctx, Query{Pattern: f.subQs[0], Sem: core.Subgraph, Sub: mopt}); r.Err != context.DeadlineExceeded {
		t.Fatalf("expired-deadline Eval err = %v, want context.DeadlineExceeded", r.Err)
	}

	// Cancel a large batch as soon as the first result lands: the batch
	// must drain, and every result is either complete or Canceled.
	bctx, bcancel := context.WithCancel(context.Background())
	defer bcancel()
	var qs []Query
	for i := 0; i < 40; i++ {
		qs = append(qs, Query{Pattern: f.subQs[i%len(f.subQs)], Sem: core.Subgraph, Sub: mopt})
	}
	futs := make([]*Future, len(qs))
	for i, q := range qs {
		futs[i] = e.Submit(bctx, q)
	}
	<-futs[0].Done()
	bcancel()
	cancelled := 0
	for i, fut := range futs {
		r := fut.Wait()
		switch r.Err {
		case nil:
			if r.Sub == nil {
				t.Fatalf("batch[%d]: completed without a result", i)
			}
		case context.Canceled:
			cancelled++
		default:
			t.Fatalf("batch[%d]: unexpected error %v", i, r.Err)
		}
	}
	t.Logf("batch: %d/%d cancelled", cancelled, len(qs))
}

// TestEngineCancelAtMatchBoundary: a context that dies exactly when the
// fetch phase completes must surface the cancellation error instead of a
// late match result — the matchers don't poll the context, so the engine
// checks at the phase boundary.
func TestEngineCancelAtMatchBoundary(t *testing.T) {
	f := newFixture(t, 0.1, 20, 21)
	e, err := New(f.d.G, f.idx, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	q := Query{Pattern: f.subQs[0], Sem: core.Subgraph, Sub: mopt}

	// Probe how many polls a FetchOnly run makes (worker-entry check +
	// every ExecWith poll); the full run's next poll after that is the
	// pre-match boundary check.
	probe := &ctxtest.CountingCtx{After: 1 << 40}
	fq := q
	fq.FetchOnly = true
	if r := e.Eval(probe, fq); r.Err != nil {
		t.Fatalf("probe: %v", r.Err)
	}
	fetchPolls := probe.Calls()

	r := e.Eval(&ctxtest.CountingCtx{After: fetchPolls}, q)
	if r.Err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled at the match boundary", r.Err)
	}
	if r.Sub != nil || r.BG != nil {
		t.Fatalf("cancelled query leaked a result: %+v", r)
	}
	// With one more allowed poll the same query completes, proving the
	// probe really did land on the boundary.
	if r := e.Eval(&ctxtest.CountingCtx{After: 1 << 40}, q); r.Err != nil || r.Sub == nil {
		t.Fatalf("uncancelled rerun failed: %+v", r)
	}
}

// TestEnginePlanCacheEpochReset: overflowing the plan cache clears and
// repopulates it instead of disabling caching forever.
func TestEnginePlanCacheEpochReset(t *testing.T) {
	f := newFixture(t, 0.05, 10, 23)
	e, err := New(f.d.G, f.idx, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Flood with distinct pattern pointers (clones) past the cap.
	for i := 0; i < maxCachedPlans+8; i++ {
		if r := e.Eval(nil, Query{Pattern: f.simQs[i%len(f.simQs)].Clone(), Sem: core.Simulation, FetchOnly: true}); r.Err != nil {
			t.Fatalf("flood[%d]: %v", i, r.Err)
		}
	}
	if got := e.cachedPlans.Load(); got <= 0 || got > maxCachedPlans {
		t.Fatalf("cachedPlans = %d after overflow, want in (0, %d] (cache must have reset and kept caching)", got, maxCachedPlans)
	}
	// A hot pattern submitted after the reset is cached again: its plan
	// entry is present on the second lookup.
	hot := f.simQs[0]
	for i := 0; i < 2; i++ {
		if r := e.Eval(nil, Query{Pattern: hot, Sem: core.Simulation, FetchOnly: true}); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if _, ok := e.plans.Load(planKey{q: hot, sem: core.Simulation}); !ok {
		t.Fatal("hot pattern not cached after epoch reset")
	}
}
