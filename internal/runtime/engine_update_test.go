package runtime

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
	"boundedg/internal/store"
)

// updateFixture builds a small movies/years graph whose m->y pattern is
// effectively bounded, plus a toggleable pool of extra edges that can
// never violate the (generous) bounds.
func updateFixture(t *testing.T) (*graph.Graph, *access.IndexSet, *pattern.Pattern, [][2]graph.NodeID) {
	t.Helper()
	g := graph.New(nil)
	year := g.Interner().Intern("year")
	movie := g.Interner().Intern("movie")
	var years, movies []graph.NodeID
	for i := 0; i < 4; i++ {
		years = append(years, g.AddNode(year, graph.IntValue(int64(2010+i))))
	}
	for i := 0; i < 6; i++ {
		m := g.AddNode(movie, graph.IntValue(int64(i)))
		movies = append(movies, m)
		g.MustAddEdge(m, years[i%4])
	}
	schema := access.NewSchema(
		access.MustNew(nil, year, 10),
		access.MustNew([]graph.Label{year}, movie, 10),
	)
	idx, viols := access.Build(g, schema)
	if viols != nil {
		t.Fatal(viols)
	}
	var pairs [][2]graph.NodeID
	for _, m := range movies {
		for _, y := range years {
			if !g.HasEdge(m, y) {
				pairs = append(pairs, [2]graph.NodeID{m, y})
			}
		}
	}
	q, err := pattern.Parse("m: movie\ny: year\nm -> y", g.Interner())
	if err != nil {
		t.Fatal(err)
	}
	return g, idx, q, pairs
}

func canonicalMatches(ms [][]graph.NodeID) string {
	cp := make([][]graph.NodeID, len(ms))
	for i, m := range ms {
		cp[i] = append([]graph.NodeID(nil), m...)
	}
	match.SortMatches(cp)
	return fmt.Sprint(cp)
}

// TestEngineAnswersMatchSomePublishedEpoch is the reader/writer race
// test: concurrent query clients against a writer applying deltas. Every
// answer must equal the reference answer of the exact epoch the result
// reports — no query may observe a half-applied epoch.
func TestEngineAnswersMatchSomePublishedEpoch(t *testing.T) {
	g, idx, q, pairs := updateFixture(t)
	// Reference copy, updated in lockstep by the writer before each
	// publish, so expected[e] is recorded before any reader can see e.
	g2 := g.Clone()
	idx2 := idx.Clone()
	p, err := core.NewPlan(q, idx2.Schema(), core.Subgraph)
	if err != nil {
		t.Fatalf("pattern not bounded: %v", err)
	}
	mopt := match.SubgraphOptions{StoreMatches: true, MaxMatches: 1 << 20}
	evalRef := func() string {
		res, _, err := p.EvalSubgraph(g2, idx2, mopt)
		if err != nil {
			t.Errorf("reference eval: %v", err)
			return ""
		}
		return canonicalMatches(res.Matches)
	}

	st := store.New(g, idx)
	eng, err := NewFromStore(st, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	var mu sync.Mutex
	expected := map[uint64]string{0: evalRef()}

	const epochs = 50
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		present := make(map[[2]graph.NodeID]bool)
		for e := uint64(1); e <= epochs; e++ {
			pair := pairs[int(e)%len(pairs)]
			d := &graph.Delta{}
			if present[pair] {
				d.DelEdges = [][2]graph.NodeID{pair}
			} else {
				d.AddEdges = [][2]graph.NodeID{pair}
			}
			present[pair] = !present[pair]
			if _, err := idx2.ApplyDeltaTx(g2, d); err != nil {
				t.Errorf("reference apply %d: %v", e, err)
				return
			}
			exp := evalRef()
			mu.Lock()
			expected[e] = exp
			mu.Unlock()
			if res, err := st.Apply(d); err != nil || res.Epoch != e {
				t.Errorf("store apply %d: epoch %d err %v", e, res.Epoch, err)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				res := eng.Eval(nil, Query{Pattern: q, Sem: core.Subgraph, Sub: mopt})
				if res.Err != nil {
					t.Errorf("query %d: %v", i, res.Err)
					return
				}
				got := canonicalMatches(res.Sub.Matches)
				mu.Lock()
				want, ok := expected[res.Epoch]
				mu.Unlock()
				if !ok {
					t.Errorf("query %d: answer from unpublished epoch %d", i, res.Epoch)
					return
				}
				if got != want {
					t.Errorf("query %d: epoch %d answer diverged:\n got %s\nwant %s", i, res.Epoch, got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st.Epoch() != epochs {
		t.Fatalf("final epoch = %d, want %d", st.Epoch(), epochs)
	}
}

// TestEngineSubmitBindsEpoch pins the submit-time snapshot: a query
// submitted before an update answers from the pre-update epoch even if it
// evaluates after the update published.
func TestEngineSubmitBindsEpoch(t *testing.T) {
	g, idx, q, pairs := updateFixture(t)
	st := store.New(g, idx)
	// A single worker whose queue we can line queries up in.
	eng, err := NewFromStore(st, Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mopt := match.SubgraphOptions{StoreMatches: true, MaxMatches: 1 << 20}

	before := eng.Eval(nil, Query{Pattern: q, Sem: core.Subgraph, Sub: mopt})
	if before.Err != nil || before.Epoch != 0 {
		t.Fatalf("baseline: epoch %d err %v", before.Epoch, before.Err)
	}
	fut := eng.Submit(nil, Query{Pattern: q, Sem: core.Subgraph, Sub: mopt})
	if _, err := st.Apply(&graph.Delta{AddEdges: [][2]graph.NodeID{pairs[0]}}); err != nil {
		t.Fatal(err)
	}
	res := fut.Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Epoch != 0 {
		// The update may have landed before the Submit pinned its
		// snapshot; only epoch 0 results must match the old answer.
		t.Skipf("update published before submission pinned (epoch %d)", res.Epoch)
	}
	if canonicalMatches(res.Sub.Matches) != canonicalMatches(before.Sub.Matches) {
		t.Fatal("epoch-0-bound query saw post-update data")
	}
	after := eng.Eval(nil, Query{Pattern: q, Sem: core.Subgraph, Sub: mopt})
	if after.Err != nil || after.Epoch != 1 {
		t.Fatalf("post-update: epoch %d err %v", after.Epoch, after.Err)
	}
	if len(after.Sub.Matches) != len(before.Sub.Matches)+1 {
		t.Fatalf("post-update matches = %d, want %d", len(after.Sub.Matches), len(before.Sub.Matches)+1)
	}
}
