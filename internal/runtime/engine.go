// Package runtime provides the concurrent bounded-evaluation engine: a
// worker pool that serves many pattern queries against one shared data
// graph and access-constraint index set. Because bounded evaluation makes
// each query's cost independent of |G| (the paper's central guarantee),
// throughput under heavy traffic is gated purely by per-query constant
// factors — which the engine attacks by reading the graph through frozen
// CSR snapshots, caching query plans, and optionally sharding the phases
// inside each query.
//
// The engine reads through an epoch-versioned store.Store: every Submit
// pins the snapshot current at submission time and the query evaluates
// against that epoch end to end, so concurrent writers publishing new
// epochs never change a query's view mid-flight. The plan cache survives
// epochs (plans depend only on the pattern and the schema, which is
// immutable); result semantics do not — Result carries the epoch it was
// computed at.
package runtime

import (
	"context"
	"errors"
	stdruntime "runtime"
	"sync"
	"sync/atomic"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
	"boundedg/internal/shard"
	"boundedg/internal/store"
)

// Errors returned by the engine.
var (
	ErrClosed   = errors.New("runtime: engine is closed")
	ErrNilQuery = errors.New("runtime: query has no pattern")
)

// Config tunes an Engine. The zero value picks sensible defaults.
type Config struct {
	// Workers is the number of queries evaluated concurrently. Defaults
	// to GOMAXPROCS.
	Workers int
	// IntraQueryWorkers shards the fetch and edge-verification phases
	// inside each query (see core.ExecConfig.Workers). Defaults to 1:
	// under a loaded pool, cross-query parallelism already saturates the
	// cores, and sharding inside queries only helps tail latency of
	// large queries on idle machines.
	IntraQueryWorkers int
	// QueueDepth bounds pending submissions before Submit blocks.
	// Defaults to 2×Workers.
	QueueDepth int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = stdruntime.GOMAXPROCS(0)
	}
	if c.IntraQueryWorkers <= 0 {
		c.IntraQueryWorkers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	return c
}

// Query is one unit of work for the engine.
type Query struct {
	// Pattern is the pattern query to evaluate.
	Pattern *pattern.Pattern
	// Sem selects the matching semantics (subgraph or simulation).
	Sem core.Semantics
	// Sub configures subgraph matching (ignored for simulation).
	Sub match.SubgraphOptions
	// Plan, when non-nil, is used instead of planning (and caching) the
	// pattern. It must be a plan for Pattern under the engine's schema.
	// Without it, plans are cached by Pattern POINTER identity — reuse
	// the same *pattern.Pattern across submissions to hit the cache.
	Plan *core.Plan
	// FetchOnly stops after fetching the bounded subgraph GQ, skipping
	// the matching phase; Result.Sub/Sim stay nil.
	FetchOnly bool
	// NeedFootprint records the execution's read set (see core.Footprint)
	// and returns it on Result.Footprint — the input of the server
	// cache's delta-intersection revalidation. Off by default: recording
	// costs a map insert per fetched candidate.
	NeedFootprint bool
}

// Result is the outcome of one query: the fetched bounded subgraph with
// its access statistics, and the match relation (in the source graph's
// node IDs) under the requested semantics. Stats may be non-nil even when
// Err is a cancellation error raised after the fetch phase completed —
// it accounts for the data actually accessed. Epoch is the store epoch
// the query was evaluated against (the one current at Submit time); it is
// set whenever the query made it past the queue, errors included.
type Result struct {
	BG    *core.BoundedGraph
	Stats *core.ExecStats
	Sub   *match.SubgraphResult
	Sim   *match.SimResult
	Epoch uint64
	// Vector is the per-shard epoch vector the query's cut pinned. Nil on
	// an unsharded engine; on a sharded one, Epoch is the cut's global
	// sequence number and Vector its per-shard epochs.
	Vector []uint64
	// Footprint is the execution's read set, set only on success and only
	// when the query asked for it (Query.NeedFootprint).
	Footprint *core.Footprint
	Err       error
}

// Future is the async handle returned by Submit.
type Future struct {
	done chan struct{}
	res  Result
}

// Wait blocks until the query finishes and returns its result.
func (f *Future) Wait() Result {
	<-f.done
	return f.res
}

// Done returns a channel closed when the result is ready.
func (f *Future) Done() <-chan struct{} { return f.done }

type task struct {
	ctx  context.Context
	q    Query
	snap *store.Snapshot // pinned at Submit; released by the worker
	cut  *shard.Cut      // sharded engines pin a cut instead of a snapshot
	fut  *Future
}

// release unpins whatever the task pinned at Submit.
func (t *task) release() {
	if t.cut != nil {
		t.cut.Release()
		return
	}
	t.snap.Release()
}

// version returns the publication version the task pinned: the snapshot
// epoch, or the cut's global sequence number.
func (t *task) version() uint64 {
	if t.cut != nil {
		return t.cut.GSN
	}
	return t.snap.Epoch
}

// Stats are the engine's cumulative counters.
type Stats struct {
	// Submitted, Completed and Failed count queries; Failed is the
	// subset of Completed whose Result carried an error.
	Submitted, Completed, Failed uint64
	// NodesAccessed and EdgesAccessed aggregate the per-query ExecStats.
	NodesAccessed, EdgesAccessed uint64
}

// Engine evaluates bounded pattern queries concurrently against one shared
// epoch-versioned store. Construct with New (owning a fresh store over a
// graph + index set) or NewFromStore (sharing a store whose writer applies
// live updates), feed with Submit/Eval/EvalBatch and shut down with Close.
// Each query evaluates against the snapshot current at its Submit; the
// store's writer may publish new epochs concurrently.
type Engine struct {
	src    *store.Store   // unsharded source; nil on a sharded engine
	router *shard.Router  // sharded source; nil on an unsharded engine
	schema *access.Schema // immutable across epochs
	cfg    Config

	plans sync.Map // planKey -> *planEntry

	// mu guards closed and sends on tasks: submitters hold the read
	// side (many may block in their sends concurrently, each still
	// responsive to its own context), Close takes the write side — so
	// the channel close cannot race a send.
	mu     sync.RWMutex
	closed bool
	tasks  chan task
	wg     sync.WaitGroup

	submitted, completed, failed atomic.Uint64
	nodesAccessed, edgesAccessed atomic.Uint64
	cachedPlans                  atomic.Int64
}

type planKey struct {
	q   *pattern.Pattern
	sem core.Semantics
}

type planEntry struct {
	p   *core.Plan
	err error
}

// New starts an engine over g and its index set, wrapping them in a fresh
// store (use Store to reach it, e.g. to apply updates). The engine reads
// through frozen CSR snapshots, so the hot path never probes the graph's
// edge map; never mutate g directly once the engine is live — updates go
// through Store().Apply.
func New(g *graph.Graph, idx *access.IndexSet, cfg Config) (*Engine, error) {
	if g == nil || idx == nil {
		return nil, errors.New("runtime: engine needs a graph and an index set")
	}
	return NewFromStore(store.New(g, idx), cfg)
}

// NewFromStore starts an engine reading from st. The caller keeps writing
// to st (Apply) while the engine serves; each query sees the epoch current
// at its Submit.
func NewFromStore(st *store.Store, cfg Config) (*Engine, error) {
	if st == nil {
		return nil, errors.New("runtime: engine needs a store")
	}
	return start(&Engine{src: st, schema: st.Schema()}, cfg)
}

// NewFromRouter starts an engine reading from a sharded router. Every
// Submit pins a consistent cut — one snapshot per shard, all published by
// the same commit boundary — and the query evaluates scatter/gather over
// it (core.ExecConfig.Shards), producing answers bit-identical to an
// unsharded engine over the same logical graph. Result.Epoch is the cut's
// global sequence number and Result.Vector its per-shard epochs.
func NewFromRouter(r *shard.Router, cfg Config) (*Engine, error) {
	if r == nil {
		return nil, errors.New("runtime: engine needs a router")
	}
	return start(&Engine{router: r, schema: r.Schema()}, cfg)
}

func start(e *Engine, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	e.cfg = cfg
	e.tasks = make(chan task, cfg.QueueDepth)
	e.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go e.worker()
	}
	return e, nil
}

// Schema returns the access schema the engine serves.
func (e *Engine) Schema() *access.Schema { return e.schema }

// Store returns the epoch-versioned store the engine reads from, or nil
// on a sharded engine (use Router).
func (e *Engine) Store() *store.Store { return e.src }

// Router returns the sharded router the engine reads from, or nil on an
// unsharded engine (use Store).
func (e *Engine) Router() *shard.Router { return e.router }

// Acquire pins and returns the store's current snapshot (see
// store.Store.Acquire); the caller must Release it. Unsharded engines
// only — a sharded engine pins cuts (Router().AcquireCut).
func (e *Engine) Acquire() *store.Snapshot { return e.src.Acquire() }

// Version returns the engine's current publication version: the store
// epoch, or the router's global sequence number when sharded. Cache keys
// derived from it invalidate on every published update either way.
func (e *Engine) Version() uint64 {
	if e.router != nil {
		return e.router.GSN()
	}
	return e.src.Epoch()
}

// PublishSignal returns a channel closed the next time a new version is
// published (a store epoch, or a router GSN when sharded). One-shot
// level trigger: grab the channel before reading Version, act, then
// block on it; re-grab after each wake. Subscription dispatchers use
// this to sleep between commits without polling.
func (e *Engine) PublishSignal() <-chan struct{} {
	if e.router != nil {
		return e.router.PublishSignal()
	}
	return e.src.PublishSignal()
}

// ChangedSince reports the union of changes between version e and some
// version S ≥ the current one (store epochs, or GSNs when sharded) — the
// revalidation input for caches holding results computed at e. ok is
// false when the source's recent-deltas ring cannot vouch for the span;
// see store.Store.ChangedSince and shard.Router.ChangedSince.
func (e *Engine) ChangedSince(epoch uint64) (store.ChangeSummary, bool) {
	if e.router != nil {
		return e.router.ChangedSince(epoch)
	}
	return e.src.ChangedSince(epoch)
}

// UpdateOutcome reports one delta applied through the engine's source,
// unifying store.Result and shard.Result for the serving layer.
type UpdateOutcome struct {
	// Epoch is the published version: the store epoch, or the global
	// sequence number when sharded.
	Epoch uint64
	// Vector is the per-shard epoch vector after the commit (sharded
	// engines only).
	Vector []uint64
	// NewIDs are the node IDs assigned to the delta's AddNodes.
	NewIDs []graph.NodeID
	// TouchedRows counts the rows whose adjacency the delta changed.
	TouchedRows int
	// LogOffset is the WAL offset the update is durable through
	// (unsharded engines with a WAL).
	LogOffset int64
	// ShardLogOffsets holds each shard's WAL offset for this update
	// (sharded engines with WALs; zero for untouched shards).
	ShardLogOffsets []int64
}

// ApplyDelta applies one delta through the engine's source — the store's
// group commit, or the router's cross-shard commit — with identical
// accept/reject semantics either way.
func (e *Engine) ApplyDelta(d *graph.Delta) (UpdateOutcome, error) {
	if e.router != nil {
		res, err := e.router.Apply(d)
		if err != nil {
			return UpdateOutcome{}, err
		}
		return UpdateOutcome{
			Epoch:           res.GSN,
			Vector:          res.Vector,
			NewIDs:          res.NewIDs,
			TouchedRows:     res.TouchedRows,
			ShardLogOffsets: res.LogOffsets,
		}, nil
	}
	res, err := e.src.Apply(d)
	if err != nil {
		return UpdateOutcome{}, err
	}
	return UpdateOutcome{
		Epoch:       res.Epoch,
		NewIDs:      res.NewIDs,
		TouchedRows: res.TouchedRows,
		LogOffset:   res.LogOffset,
	}, nil
}

func (e *Engine) worker() {
	defer e.wg.Done()
	// Each worker owns one scratch: per-query dense buffers are reused
	// across every query (and epoch) the worker serves.
	cfg := &core.ExecConfig{
		Workers: e.cfg.IntraQueryWorkers,
		Scratch: core.NewExecScratch(),
	}
	var shardOf func(graph.NodeID) int
	var views []core.ShardView // per-worker, refilled per task
	if e.router != nil {
		m := e.router.Map()
		shardOf = m.Of
		views = make([]core.ShardView, e.router.NumShards())
	}
	for t := range e.tasks {
		if err := t.ctx.Err(); err != nil {
			// The submitter gave up while the task sat in the queue;
			// resolve promptly without touching the graph.
			t.fut.res = Result{Err: err, Epoch: t.version()}
		} else if t.cut != nil {
			cfg.Ctx = t.ctx
			if t.q.NeedFootprint {
				cfg.Footprint = core.NewFootprint()
			}
			views = views[:0]
			for _, sn := range t.cut.Snaps {
				views = append(views, core.ShardView{G: sn.G, Fz: sn.Fz, Idx: sn.Idx})
			}
			cfg.Shards = views
			cfg.ShardOf = shardOf
			t.fut.res = e.eval(t.q, cfg, nil, nil, t.cut.GSN, t.cut.Vector)
			cfg.Ctx = nil
			cfg.Footprint = nil
			cfg.Shards = nil
			cfg.ShardOf = nil
		} else {
			cfg.Ctx = t.ctx
			if t.q.NeedFootprint {
				cfg.Footprint = core.NewFootprint()
			}
			cfg.Frozen = t.snap.Fz
			t.fut.res = e.eval(t.q, cfg, t.snap.G, t.snap.Idx, t.snap.Epoch, nil)
			cfg.Ctx = nil
			cfg.Footprint = nil
			cfg.Frozen = nil
		}
		t.release()
		e.completed.Add(1)
		if t.fut.res.Err != nil {
			e.failed.Add(1)
		}
		// Count accesses whenever a fetch ran, failed queries included —
		// under a timeout storm the counters must still reflect the work
		// actually done against the graph.
		if st := t.fut.res.Stats; st != nil {
			e.nodesAccessed.Add(uint64(st.NodesAccessed))
			e.edgesAccessed.Add(uint64(st.EdgesAccessed))
		}
		close(t.fut.done)
	}
}

// Submit enqueues q and returns a Future for its result. Submit blocks
// while the queue is full; after Close it returns an already-resolved
// Future carrying ErrClosed. The context travels with the query: it can
// unblock a Submit stuck on a full queue, skip evaluation of a query
// whose submitter has already gone away, and — through core.ExecWith —
// abandon an evaluation in flight. A nil ctx means "never cancelled".
//
// The query is bound to the store snapshot current at this call: updates
// published while it waits in the queue or evaluates do not affect it.
func (e *Engine) Submit(ctx context.Context, q Query) *Future {
	if ctx == nil {
		ctx = context.Background()
	}
	fut := &Future{done: make(chan struct{})}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		fut.res = Result{Err: ErrClosed}
		close(fut.done)
		return fut
	}
	t := task{ctx: ctx, q: q, fut: fut}
	if e.router != nil {
		t.cut = e.router.AcquireCut()
	} else {
		t.snap = e.src.Acquire()
	}
	// Sending under the read lock keeps the channel-close in Close safe
	// while letting any number of submitters block in their own selects
	// concurrently — a full queue backpressures each of them until a
	// worker frees a slot or that submitter's context dies.
	select {
	case e.tasks <- t:
		e.submitted.Add(1)
	case <-ctx.Done():
		t.release()
		fut.res = Result{Err: ctx.Err()}
		close(fut.done)
	}
	e.mu.RUnlock()
	return fut
}

// Eval evaluates q synchronously under ctx.
func (e *Engine) Eval(ctx context.Context, q Query) Result { return e.Submit(ctx, q).Wait() }

// EvalBatch submits every query under ctx and waits for all results,
// which are returned in input order.
func (e *Engine) EvalBatch(ctx context.Context, qs []Query) []Result {
	futs := make([]*Future, len(qs))
	for i, q := range qs {
		futs[i] = e.Submit(ctx, q)
	}
	out := make([]Result, len(qs))
	for i, f := range futs {
		out[i] = f.Wait()
	}
	return out
}

// Close drains in-flight work and stops the workers. Pending futures
// resolve normally; Submit calls racing with Close resolve with ErrClosed.
// Close waits for submitters blocked on a full queue to land their sends
// (workers keep draining until then), then closes the queue.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.tasks)
	e.mu.Unlock()
	e.wg.Wait()
}

// Stats returns a snapshot of the engine's cumulative counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Submitted:     e.submitted.Load(),
		Completed:     e.completed.Load(),
		Failed:        e.failed.Load(),
		NodesAccessed: e.nodesAccessed.Load(),
		EdgesAccessed: e.edgesAccessed.Load(),
	}
}

// maxCachedPlans bounds the plan cache: callers that submit a stream of
// never-repeated patterns (fresh pointers per query) would otherwise grow
// the cache without bound for the engine's lifetime. At the cap the cache
// is cleared and repopulates — refusing new entries instead would
// permanently disable plan caching once enough distinct patterns had
// passed through (and pin dead pattern pointers forever), while hot
// patterns re-enter a cleared cache on their next submission.
const maxCachedPlans = 4096

// plan returns the (cached) bounded plan for q.
func (e *Engine) plan(q Query) (*core.Plan, error) {
	if q.Plan != nil {
		return q.Plan, nil
	}
	key := planKey{q: q.Pattern, sem: q.Sem}
	if v, ok := e.plans.Load(key); ok {
		ent := v.(*planEntry)
		return ent.p, ent.err
	}
	p, err := core.NewPlan(q.Pattern, e.schema, q.Sem)
	if e.cachedPlans.Load() >= maxCachedPlans {
		// Racing clears are harmless: the counter is a backstop, not an
		// exact size.
		e.plans.Clear()
		e.cachedPlans.Store(0)
	}
	if _, loaded := e.plans.LoadOrStore(key, &planEntry{p: p, err: err}); !loaded {
		e.cachedPlans.Add(1)
	}
	return p, err
}

// eval runs one query end to end against one pinned view — a snapshot's
// graph and index set, or (g and idx nil) a sharded cut already loaded
// into cfg.Shards: plan (cached across epochs), fetch GQ through the
// indices, then match inside GQ and map the relation back to the source
// graph's IDs.
func (e *Engine) eval(q Query, cfg *core.ExecConfig, g *graph.Graph, idx *access.IndexSet, epoch uint64, vector []uint64) Result {
	if q.Pattern == nil {
		return Result{Err: ErrNilQuery, Epoch: epoch, Vector: vector}
	}
	p, err := e.plan(q)
	if err != nil {
		return Result{Err: err, Epoch: epoch, Vector: vector}
	}
	bg, stats, err := p.ExecWith(g, idx, cfg)
	if err != nil {
		return Result{Err: err, Epoch: epoch, Vector: vector}
	}
	res := Result{BG: bg, Stats: stats, Epoch: epoch, Vector: vector, Footprint: cfg.Footprint}
	if q.FetchOnly {
		return res
	}
	// The matchers do not poll the context internally (bounding their
	// work is SubgraphOptions.MaxSteps' job), so check at the phase
	// boundaries: don't start matching for a dead submitter, and don't
	// report a late success — a deadline that expired mid-match must
	// surface as the cancellation error, or the server would serve (and
	// cache) a 200 past its deadline.
	ctxErr := func() error {
		if cfg.Ctx == nil {
			return nil
		}
		return cfg.Ctx.Err()
	}
	// A boundary cancel keeps Stats: the fetch ran, so its access
	// accounting is real even though no result is returned.
	if err := ctxErr(); err != nil {
		return Result{Err: err, Stats: stats, Epoch: epoch, Vector: vector}
	}
	switch q.Sem {
	case core.Subgraph:
		// VF2's feasibility checks probe edges constantly; a one-off
		// freeze of the (small) fetched subgraph turns them into binary
		// searches. Match order may differ from the serial path, the
		// match set never does.
		sub := match.VF2WithCandidatesFrozen(p.Q, bg.G, bg.G.Freeze(), bg.Cands, q.Sub)
		bg.MapSubgraphResult(sub)
		res.Sub = sub
	case core.Simulation:
		sim := match.GSimWithCandidates(p.Q, bg.G, bg.Cands)
		bg.MapSimResult(sim)
		res.Sim = sim
	}
	if err := ctxErr(); err != nil {
		return Result{Err: err, Stats: stats, Epoch: epoch, Vector: vector}
	}
	return res
}
