// Package runtime provides the concurrent bounded-evaluation engine: a
// worker pool that serves many pattern queries against one shared data
// graph and access-constraint index set. Because bounded evaluation makes
// each query's cost independent of |G| (the paper's central guarantee),
// throughput under heavy traffic is gated purely by per-query constant
// factors — which the engine attacks by freezing the graph into a CSR
// snapshot once, caching query plans, and optionally sharding the phases
// inside each query.
package runtime

import (
	"errors"
	stdruntime "runtime"
	"sync"
	"sync/atomic"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
)

// Errors returned by the engine.
var (
	ErrClosed   = errors.New("runtime: engine is closed")
	ErrNilQuery = errors.New("runtime: query has no pattern")
)

// Config tunes an Engine. The zero value picks sensible defaults.
type Config struct {
	// Workers is the number of queries evaluated concurrently. Defaults
	// to GOMAXPROCS.
	Workers int
	// IntraQueryWorkers shards the fetch and edge-verification phases
	// inside each query (see core.ExecConfig.Workers). Defaults to 1:
	// under a loaded pool, cross-query parallelism already saturates the
	// cores, and sharding inside queries only helps tail latency of
	// large queries on idle machines.
	IntraQueryWorkers int
	// QueueDepth bounds pending submissions before Submit blocks.
	// Defaults to 2×Workers.
	QueueDepth int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = stdruntime.GOMAXPROCS(0)
	}
	if c.IntraQueryWorkers <= 0 {
		c.IntraQueryWorkers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	return c
}

// Query is one unit of work for the engine.
type Query struct {
	// Pattern is the pattern query to evaluate.
	Pattern *pattern.Pattern
	// Sem selects the matching semantics (subgraph or simulation).
	Sem core.Semantics
	// Sub configures subgraph matching (ignored for simulation).
	Sub match.SubgraphOptions
	// Plan, when non-nil, is used instead of planning (and caching) the
	// pattern. It must be a plan for Pattern under the engine's schema.
	// Without it, plans are cached by Pattern POINTER identity — reuse
	// the same *pattern.Pattern across submissions to hit the cache.
	Plan *core.Plan
	// FetchOnly stops after fetching the bounded subgraph GQ, skipping
	// the matching phase; Result.Sub/Sim stay nil.
	FetchOnly bool
}

// Result is the outcome of one query: the fetched bounded subgraph with
// its access statistics, and the match relation (in the source graph's
// node IDs) under the requested semantics.
type Result struct {
	BG    *core.BoundedGraph
	Stats *core.ExecStats
	Sub   *match.SubgraphResult
	Sim   *match.SimResult
	Err   error
}

// Future is the async handle returned by Submit.
type Future struct {
	done chan struct{}
	res  Result
}

// Wait blocks until the query finishes and returns its result.
func (f *Future) Wait() Result {
	<-f.done
	return f.res
}

// Done returns a channel closed when the result is ready.
func (f *Future) Done() <-chan struct{} { return f.done }

type task struct {
	q   Query
	fut *Future
}

// Stats are the engine's cumulative counters.
type Stats struct {
	// Submitted, Completed and Failed count queries; Failed is the
	// subset of Completed whose Result carried an error.
	Submitted, Completed, Failed uint64
	// NodesAccessed and EdgesAccessed aggregate the per-query ExecStats.
	NodesAccessed, EdgesAccessed uint64
}

// Engine evaluates bounded pattern queries concurrently against one shared
// graph and index set. Construct with New, feed with Submit/Eval/EvalBatch
// and shut down with Close. The graph must not be mutated while the engine
// is live (the engine holds a frozen snapshot of its adjacency).
type Engine struct {
	g   *graph.Graph
	fz  *graph.Frozen
	idx *access.IndexSet
	cfg Config

	plans sync.Map // planKey -> *planEntry

	mu     sync.Mutex // guards closed + sends on tasks
	closed bool
	tasks  chan task
	wg     sync.WaitGroup

	submitted, completed, failed atomic.Uint64
	nodesAccessed, edgesAccessed atomic.Uint64
	cachedPlans                  atomic.Int64
}

type planKey struct {
	q   *pattern.Pattern
	sem core.Semantics
}

type planEntry struct {
	p   *core.Plan
	err error
}

// New starts an engine over g and its index set. It freezes g's adjacency
// so the hot read path never probes the graph's edge map; mutate g only
// after Close (or build a fresh engine afterwards).
func New(g *graph.Graph, idx *access.IndexSet, cfg Config) (*Engine, error) {
	if g == nil || idx == nil {
		return nil, errors.New("runtime: engine needs a graph and an index set")
	}
	cfg = cfg.withDefaults()
	e := &Engine{
		g:     g,
		fz:    g.Freeze(),
		idx:   idx,
		cfg:   cfg,
		tasks: make(chan task, cfg.QueueDepth),
	}
	e.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go e.worker()
	}
	return e, nil
}

// Schema returns the access schema the engine serves.
func (e *Engine) Schema() *access.Schema { return e.idx.Schema() }

// Frozen returns the engine's CSR snapshot of the graph.
func (e *Engine) Frozen() *graph.Frozen { return e.fz }

func (e *Engine) worker() {
	defer e.wg.Done()
	// Each worker owns one scratch: per-query dense buffers are reused
	// across every query the worker serves.
	cfg := &core.ExecConfig{
		Workers: e.cfg.IntraQueryWorkers,
		Frozen:  e.fz,
		Scratch: core.NewExecScratch(),
	}
	for t := range e.tasks {
		t.fut.res = e.eval(t.q, cfg)
		e.completed.Add(1)
		if t.fut.res.Err != nil {
			e.failed.Add(1)
		} else if st := t.fut.res.Stats; st != nil {
			e.nodesAccessed.Add(uint64(st.NodesAccessed))
			e.edgesAccessed.Add(uint64(st.EdgesAccessed))
		}
		close(t.fut.done)
	}
}

// Submit enqueues q and returns a Future for its result. Submit blocks
// while the queue is full; after Close it returns an already-resolved
// Future carrying ErrClosed.
func (e *Engine) Submit(q Query) *Future {
	fut := &Future{done: make(chan struct{})}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		fut.res = Result{Err: ErrClosed}
		close(fut.done)
		return fut
	}
	e.submitted.Add(1)
	// Sending under the lock keeps the channel-close in Close safe; a
	// full queue therefore also backpressures concurrent submitters.
	e.tasks <- task{q: q, fut: fut}
	e.mu.Unlock()
	return fut
}

// Eval evaluates q synchronously.
func (e *Engine) Eval(q Query) Result { return e.Submit(q).Wait() }

// EvalBatch submits every query and waits for all results, which are
// returned in input order.
func (e *Engine) EvalBatch(qs []Query) []Result {
	futs := make([]*Future, len(qs))
	for i, q := range qs {
		futs[i] = e.Submit(q)
	}
	out := make([]Result, len(qs))
	for i, f := range futs {
		out[i] = f.Wait()
	}
	return out
}

// Close drains in-flight work and stops the workers. Pending futures
// resolve normally; Submit calls racing with Close resolve with ErrClosed.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.tasks)
	e.mu.Unlock()
	e.wg.Wait()
}

// Stats returns a snapshot of the engine's cumulative counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Submitted:     e.submitted.Load(),
		Completed:     e.completed.Load(),
		Failed:        e.failed.Load(),
		NodesAccessed: e.nodesAccessed.Load(),
		EdgesAccessed: e.edgesAccessed.Load(),
	}
}

// maxCachedPlans bounds the plan cache: callers that submit a stream of
// never-repeated patterns (fresh pointers per query) would otherwise grow
// the cache without bound for the engine's lifetime. Past the cap, plans
// are still built, just not retained.
const maxCachedPlans = 4096

// plan returns the (cached) bounded plan for q.
func (e *Engine) plan(q Query) (*core.Plan, error) {
	if q.Plan != nil {
		return q.Plan, nil
	}
	key := planKey{q: q.Pattern, sem: q.Sem}
	if v, ok := e.plans.Load(key); ok {
		ent := v.(*planEntry)
		return ent.p, ent.err
	}
	p, err := core.NewPlan(q.Pattern, e.idx.Schema(), q.Sem)
	if e.cachedPlans.Load() >= maxCachedPlans {
		return p, err
	}
	if _, loaded := e.plans.LoadOrStore(key, &planEntry{p: p, err: err}); !loaded {
		e.cachedPlans.Add(1)
	}
	return p, err
}

// eval runs one query end to end: plan (cached), fetch GQ through the
// indices, then match inside GQ and map the relation back to the source
// graph's IDs.
func (e *Engine) eval(q Query, cfg *core.ExecConfig) Result {
	if q.Pattern == nil {
		return Result{Err: ErrNilQuery}
	}
	p, err := e.plan(q)
	if err != nil {
		return Result{Err: err}
	}
	bg, stats, err := p.ExecWith(e.g, e.idx, cfg)
	if err != nil {
		return Result{Err: err}
	}
	res := Result{BG: bg, Stats: stats}
	if q.FetchOnly {
		return res
	}
	switch q.Sem {
	case core.Subgraph:
		// VF2's feasibility checks probe edges constantly; a one-off
		// freeze of the (small) fetched subgraph turns them into binary
		// searches. Match order may differ from the serial path, the
		// match set never does.
		sub := match.VF2WithCandidatesFrozen(p.Q, bg.G, bg.G.Freeze(), bg.Cands, q.Sub)
		bg.MapSubgraphResult(sub)
		res.Sub = sub
	case core.Simulation:
		sim := match.GSimWithCandidates(p.Q, bg.G, bg.Cands)
		bg.MapSimResult(sim)
		res.Sim = sim
	}
	return res
}
