package workload

import (
	"fmt"
	"math/rand"

	"boundedg/internal/access"
	"boundedg/internal/graph"
)

// IMDb generates the stand-in for the paper's IMDbG: a movie graph with
// years, awards, genres, countries (fixed anchor populations), movies
// (scaled), and pooled casts with capped appearance counts. The published
// constraints of Examples 1 and 3 hold by construction: at most 4 movies
// win a given award in a given year (C1), bounded first-billed casts (C2),
// one country per person (C3), and fixed counts of years, awards and
// countries (C4–C6).
//
// scale is the |G| scale factor of Fig 5(a); scale = 1 yields roughly
// 60k nodes and 170k edges with the default base of 12000 movies.
func IMDb(scale float64, seed int64) *Dataset {
	return imdbSized(scale, seed, 12000)
}

// imdbSized exposes the movie base count for tests.
func imdbSized(scale float64, seed int64, baseMovies int) *Dataset {
	const (
		nYears     = 60
		nAwards    = 24
		nCountries = 50
		nGenres    = 20

		maxMoviesPerYearAward = 4
		maxActorsPerMovie     = 10
		maxActressesPerMovie  = 10
		maxAppear             = 12 // movies per actor/actress
		maxDirect             = 8  // movies per director
		maxGenresPerMovie     = 2
		maxAwardsPerMovie     = 3
		maxMoviesPerYearGenre = 24
		// Award and genre populations are fixed, so their per-node movie
		// neighborhoods admit |G|-independent bounds too: at most 4
		// winners per year per award, and a generous per-genre cap that
		// the capper enforces outright.
		maxMoviesPerAward = maxMoviesPerYearAward * nYears
		maxMoviesPerGenre = 150
		// The paper's discovery family (4) example: group-by aggregates
		// yield constraints like (year, country, genre) -> (movie, 1800).
		// Our analog caps releases per (year, production country).
		maxMoviesPerYearCountry = 8
	)

	r := rand.New(rand.NewSource(seed))
	in := graph.NewInterner()
	g := graph.New(in)
	l := func(s string) graph.Label { return in.Intern(s) }
	lYear, lAward, lCountry, lGenre := l("year"), l("award"), l("country"), l("genre")
	lMovie, lActor, lActress, lDirector := l("movie"), l("actor"), l("actress"), l("director")

	c := newCapper(g)
	c.cap(lMovie, lYear, 1)
	c.cap(lMovie, lGenre, maxGenresPerMovie)
	c.cap(lMovie, lAward, maxAwardsPerMovie)
	c.cap(lMovie, lActor, maxActorsPerMovie)
	c.cap(lMovie, lActress, maxActressesPerMovie)
	c.cap(lMovie, lDirector, 1)
	c.cap(lMovie, lCountry, 1)
	c.cap(lActor, lCountry, 1)
	c.cap(lActress, lCountry, 1)
	c.cap(lDirector, lCountry, 1)
	c.cap(lActor, lMovie, maxAppear)
	c.cap(lActress, lMovie, maxAppear)
	c.cap(lDirector, lMovie, maxDirect)
	c.cap(lAward, lMovie, maxMoviesPerAward)
	c.cap(lGenre, lMovie, maxMoviesPerGenre)

	years := make([]graph.NodeID, nYears)
	for i := range years {
		years[i] = g.AddNode(lYear, graph.IntValue(int64(1955+i)))
	}
	awards := make([]graph.NodeID, nAwards)
	for i := range awards {
		awards[i] = g.AddNode(lAward, graph.StringValue(fmt.Sprintf("award-%02d", i)))
	}
	countries := make([]graph.NodeID, nCountries)
	for i := range countries {
		countries[i] = g.AddNode(lCountry, graph.StringValue(fmt.Sprintf("country-%02d", i)))
	}
	genres := make([]graph.NodeID, nGenres)
	for i := range genres {
		genres[i] = g.AddNode(lGenre, graph.IntValue(int64(i)))
	}

	nMovies := scaled(baseMovies, scale)
	// Cast pools sized for ~3 appearances on average (cap 12).
	nActors := nMovies*5/3 + 1
	nActresses := nMovies*5/3 + 1
	nDirectors := nMovies/3 + 1
	newPerson := func(lbl graph.Label, i int) graph.NodeID {
		p := g.AddNode(lbl, graph.IntValue(int64(i)))
		c.tryEdge(p, countries[r.Intn(nCountries)]) // one country of origin
		return p
	}
	actors := make([]graph.NodeID, nActors)
	for i := range actors {
		actors[i] = newPerson(lActor, i)
	}
	actresses := make([]graph.NodeID, nActresses)
	for i := range actresses {
		actresses[i] = newPerson(lActress, i)
	}
	directors := make([]graph.NodeID, nDirectors)
	for i := range directors {
		directors[i] = newPerson(lDirector, i)
	}

	// Pair caps for the general (|S| = 2) constraints.
	yearAwardCnt := make(map[[2]graph.NodeID]int)
	yearGenreCnt := make(map[[2]graph.NodeID]int)
	yearCountryCnt := make(map[[2]graph.NodeID]int)

	movies := make([]graph.NodeID, nMovies)
	for i := range movies {
		m := g.AddNode(lMovie, graph.IntValue(int64(i)))
		movies[i] = m
		year := years[r.Intn(nYears)]
		c.tryEdge(m, year)
		// Production country, respecting the (year, country) pair cap.
		for tries := 0; tries < 8; tries++ {
			co := countries[r.Intn(nCountries)]
			key := [2]graph.NodeID{year, co}
			if yearCountryCnt[key] >= maxMoviesPerYearCountry {
				continue
			}
			if c.tryEdge(m, co) {
				yearCountryCnt[key]++
			}
			break
		}
		// Genres, respecting the (year, genre) pair cap.
		ng := 1 + r.Intn(maxGenresPerMovie)
		for t, added := 0, 0; t < 3*ng && added < ng; t++ {
			ge := genres[r.Intn(nGenres)]
			key := [2]graph.NodeID{year, ge}
			if yearGenreCnt[key] >= maxMoviesPerYearGenre {
				continue
			}
			if c.tryEdge(m, ge) {
				yearGenreCnt[key]++
				added++
			}
		}
		// Cast. Edge direction is mixed — IMDb-style data has both
		// "cast" (movie -> person) and "acted in" (person -> movie)
		// relationships; access constraints are direction-agnostic, but
		// simulation coverage (children only) needs person -> movie edges
		// to deduce people from movies.
		castEdge := func(m, p graph.NodeID) bool {
			if r.Intn(2) == 0 {
				return c.tryEdge(m, p)
			}
			return c.tryEdge(p, m)
		}
		na := 1 + r.Intn(maxActorsPerMovie)
		for t, added := 0, 0; t < 4*na && added < na; t++ {
			if castEdge(m, actors[r.Intn(nActors)]) {
				added++
			}
		}
		ns := 1 + r.Intn(maxActressesPerMovie)
		for t, added := 0, 0; t < 4*ns && added < ns; t++ {
			if castEdge(m, actresses[r.Intn(nActresses)]) {
				added++
			}
		}
		castEdge(m, directors[r.Intn(nDirectors)])
		// Awards: ~40% of movies attempt to win, so the (year, award)
		// capacity (4 winners per pair) saturates at moderate scale and
		// award-anchored fetches become scale-independent.
		if r.Intn(100) < 40 {
			nw := 1 + r.Intn(maxAwardsPerMovie)
			for t, added := 0, 0; t < 3*nw && added < nw; t++ {
				aw := awards[r.Intn(nAwards)]
				key := [2]graph.NodeID{year, aw}
				if yearAwardCnt[key] >= maxMoviesPerYearAward {
					continue
				}
				if c.tryEdge(m, aw) {
					yearAwardCnt[key]++
					added++
				}
			}
		}
	}

	schema := access.NewSchema(
		// Anchors (type 1) first — the seeds of every deduction.
		access.MustNew(nil, lYear, nYears),
		access.MustNew(nil, lAward, nAwards),
		access.MustNew(nil, lCountry, nCountries),
		access.MustNew(nil, lGenre, nGenres),
		// Core structural constraints.
		access.MustNew([]graph.Label{lYear, lAward}, lMovie, maxMoviesPerYearAward),
		access.MustNew([]graph.Label{lMovie}, lActor, maxActorsPerMovie),
		access.MustNew([]graph.Label{lMovie}, lActress, maxActressesPerMovie),
		access.MustNew([]graph.Label{lActor}, lCountry, 1),
		access.MustNew([]graph.Label{lActress}, lCountry, 1),
		access.MustNew([]graph.Label{lMovie}, lYear, 1),
		access.MustNew([]graph.Label{lMovie}, lDirector, 1),
		access.MustNew([]graph.Label{lMovie}, lGenre, maxGenresPerMovie),
		// Extras (the ‖A‖ sweep trims from the tail).
		access.MustNew([]graph.Label{lAward}, lMovie, maxMoviesPerAward),
		access.MustNew([]graph.Label{lGenre}, lMovie, maxMoviesPerGenre),
		access.MustNew([]graph.Label{lYear, lGenre}, lMovie, maxMoviesPerYearGenre),
		access.MustNew([]graph.Label{lYear, lCountry}, lMovie, maxMoviesPerYearCountry),
		access.MustNew([]graph.Label{lMovie}, lAward, maxAwardsPerMovie),
		access.MustNew([]graph.Label{lMovie}, lCountry, 1),
		access.MustNew([]graph.Label{lActor}, lMovie, maxAppear),
		access.MustNew([]graph.Label{lActress}, lMovie, maxAppear),
		access.MustNew([]graph.Label{lDirector}, lMovie, maxDirect),
		access.MustNew([]graph.Label{lDirector}, lCountry, 1),
		access.MustNew([]graph.Label{lGenre}, lYear, nYears),
	)

	d := &Dataset{Name: "IMDbG", In: in, G: g, Schema: schema}
	return d
}
