package workload

import (
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// TestDBpediaSpanningGuarantee: every entity type is reachable by a
// deduction chain from a type-1 anchor, i.e. a single-node pattern plus
// the chain is coverable — we check the weaker, direct property that
// every entity type node-label is covered in SOME bounded one-edge
// pattern by verifying each type has an incoming declared constraint
// whose source chain bottoms out at a ref type. We test it operationally:
// the label-coverage fixpoint over the schema alone must mark every label.
func TestDBpediaSpanningGuarantee(t *testing.T) {
	d := DBpedia(0.05, 5)
	covered := make(map[graph.Label]bool)
	for _, c := range d.Schema.Constraints() {
		if c.Type1() {
			covered[c.L] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, c := range d.Schema.Constraints() {
			if c.Type1() || covered[c.L] {
				continue
			}
			all := true
			for _, s := range c.S {
				if !covered[s] {
					all = false
					break
				}
			}
			if all {
				covered[c.L] = true
				changed = true
			}
		}
	}
	for _, l := range d.G.Labels() {
		if !covered[l] {
			t.Errorf("label %s has no deduction chain from an anchor", d.In.Name(l))
		}
	}
}

// TestWebBaseAnchorsFixed: small hosts keep their page counts across
// scales, and every declared link cap is satisfied.
func TestWebBaseAnchorsFixed(t *testing.T) {
	a := WebBase(0.1, 9)
	b := WebBase(0.5, 9)
	anchors := 0
	for _, c := range a.Schema.Constraints() {
		if !c.Type1() {
			continue
		}
		anchors++
		la := c.L
		lb, ok := b.In.Lookup(a.In.Name(la))
		if !ok {
			t.Fatalf("anchor label missing at larger scale")
		}
		if a.G.CountLabel(la) != b.G.CountLabel(lb) {
			t.Errorf("anchor %s scaled: %d vs %d", a.In.Name(la), a.G.CountLabel(la), b.G.CountLabel(lb))
		}
	}
	if anchors == 0 {
		t.Fatalf("no anchors")
	}
	if viols := access.Validate(b.G, b.Schema); viols != nil {
		t.Fatalf("caps violated: %v", viols[0])
	}
}

// TestIMDbCapsBindAtScale: the actual per-genre movie count reaches the
// declared cap as the graph grows — the mechanism behind the flat bounded
// curves of Fig 5(a).
func TestIMDbCapsBindAtScale(t *testing.T) {
	small := imdbSized(1.0, 3, 1000)
	big := imdbSized(1.0, 3, 8000)
	measure := func(d *Dataset) int {
		lg, _ := d.In.Lookup("genre")
		lm, _ := d.In.Lookup("movie")
		max := 0
		for _, g := range d.G.NodesByLabel(lg) {
			n := len(d.G.CommonNeighbors([]graph.NodeID{g}, lm))
			if n > max {
				max = n
			}
		}
		return max
	}
	ms, mb := measure(small), measure(big)
	if mb < ms {
		t.Fatalf("per-genre count should grow with |G|: %d vs %d", ms, mb)
	}
	if mb > 150 {
		t.Fatalf("cap exceeded: %d > 150", mb)
	}
	if mb != 150 {
		t.Logf("note: cap not yet saturated at this size (%d/150)", mb)
	}
}

// TestIMDbQ0HasMatches: the flagship query of the paper finds matches on
// the generator's output (the fixture is not vacuous).
func TestIMDbQ0HasMatches(t *testing.T) {
	d := imdbSized(1.0, 4, 3000)
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		t.Fatal(viols[0])
	}
	q := pattern.MustParse(`
		u1: award
		u2: year (>= 1960)
		u3: movie
		u4: actor
		u5: actress
		u6: country
		u3 -> u1, u2
		u3 -> u4, u5
		u4 -> u6
		u5 -> u6
	`, d.In)
	p, err := core.NewPlan(q, d.Schema, core.Subgraph)
	if err != nil {
		t.Fatalf("Q0 must be bounded on the IMDb dataset: %v", err)
	}
	bg, _, err := p.Exec(d.G, idx)
	if err != nil {
		t.Fatal(err)
	}
	if bg.G.NumNodes() == 0 {
		t.Fatalf("empty GQ")
	}
}
