package workload

import (
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/pattern"
)

// small builds each dataset at a small scale for testing.
func small(t *testing.T) []*Dataset {
	t.Helper()
	return []*Dataset{
		imdbSized(1.0, 1, 400),
		DBpedia(0.05, 2),
		WebBase(0.05, 3),
	}
}

func TestGeneratorsSatisfyOwnSchemas(t *testing.T) {
	for _, d := range small(t) {
		if viols := access.Validate(d.G, d.Schema); viols != nil {
			t.Errorf("%s: schema violated: %v", d.Name, viols[0])
		}
		if d.G.NumNodes() == 0 || d.G.NumEdges() == 0 {
			t.Errorf("%s: empty graph", d.Name)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := imdbSized(1.0, 7, 300)
	b := imdbSized(1.0, 7, 300)
	if a.G.NumNodes() != b.G.NumNodes() || a.G.NumEdges() != b.G.NumEdges() {
		t.Fatalf("same seed, different graphs: %v vs %v", a.G, b.G)
	}
	c := imdbSized(1.0, 8, 300)
	if a.G.NumEdges() == c.G.NumEdges() && a.G.NumNodes() == c.G.NumNodes() {
		t.Logf("warning: different seeds gave identical sizes (possible but unlikely)")
	}
}

func TestScaleGrowsGraphButNotAnchors(t *testing.T) {
	s1 := imdbSized(0.5, 5, 2000)
	s2 := imdbSized(1.0, 5, 2000)
	if s2.G.NumNodes() <= s1.G.NumNodes() {
		t.Fatalf("scale did not grow the graph: %d vs %d", s1.G.NumNodes(), s2.G.NumNodes())
	}
	// Anchor labels stay fixed.
	for _, name := range []string{"year", "award", "country", "genre"} {
		l1, _ := s1.In.Lookup(name)
		l2, _ := s2.In.Lookup(name)
		if s1.G.CountLabel(l1) != s2.G.CountLabel(l2) {
			t.Fatalf("anchor %s scaled: %d vs %d", name, s1.G.CountLabel(l1), s2.G.CountLabel(l2))
		}
	}
}

func TestQueryGeneratorShapes(t *testing.T) {
	d := imdbSized(1.0, 4, 300)
	qs := DefaultQueryGen.Generate(d, 50, 99)
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	for i, q := range qs {
		nn, ne := q.NumNodes(), q.NumEdges()
		if nn < 3 || nn > 7 {
			t.Fatalf("query %d: #n = %d", i, nn)
		}
		if ne < nn-1 || float64(ne) > 1.5*float64(nn)+0.5 {
			t.Fatalf("query %d: #e = %d for #n = %d", i, ne, nn)
		}
		if !q.Connected() {
			t.Fatalf("query %d disconnected", i)
		}
		np := 0
		for _, u := range q.Nodes() {
			np += len(q.PredOf(u))
		}
		if np < 2 || np > 8 {
			t.Fatalf("query %d: #p = %d", i, np)
		}
	}
}

func TestGenerateSized(t *testing.T) {
	d := imdbSized(1.0, 4, 300)
	for nn := 3; nn <= 7; nn++ {
		qs := DefaultQueryGen.GenerateSized(d, 10, nn, 42)
		for _, q := range qs {
			if q.NumNodes() != nn {
				t.Fatalf("want #n=%d, got %d", nn, q.NumNodes())
			}
		}
	}
}

// TestBoundedFractionReasonable: a healthy share of random queries should
// be effectively bounded on each dataset (the paper reports ~60% for
// subgraph and ~33% for simulation; we assert a loose sanity band and
// record exact values in EXPERIMENTS.md).
func TestBoundedFractionReasonable(t *testing.T) {
	for _, d := range small(t) {
		qs := DefaultQueryGen.Generate(d, 100, 2024)
		sub, sim := 0, 0
		for _, q := range qs {
			if core.EBChk(q, d.Schema) {
				sub++
			}
			if core.SEBChk(q, d.Schema) {
				sim++
			}
		}
		t.Logf("%s: subgraph %d%%, simulation %d%%", d.Name, sub, sim)
		if sub < 20 || sub > 95 {
			t.Errorf("%s: subgraph bounded fraction %d%% out of sanity band", d.Name, sub)
		}
		if sim > sub {
			t.Errorf("%s: simulation fraction %d%% exceeds subgraph %d%%", d.Name, sim, sub)
		}
		if sim == 0 {
			t.Errorf("%s: no simulation query bounded at all", d.Name)
		}
	}
}

// TestQueriesEvaluableEndToEnd: bounded queries actually run through the
// whole pipeline on their dataset.
func TestQueriesEvaluableEndToEnd(t *testing.T) {
	d := imdbSized(1.0, 6, 300)
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		t.Fatal(viols)
	}
	qs := DefaultQueryGen.Generate(d, 30, 7)
	ran := 0
	for _, q := range qs {
		p, err := core.NewPlan(q, d.Schema, core.Subgraph)
		if err != nil {
			continue
		}
		if _, _, err := p.Exec(d.G, idx); err != nil {
			t.Fatalf("exec failed: %v\nquery:\n%v", err, q)
		}
		ran++
	}
	if ran == 0 {
		t.Fatalf("no bounded query executed")
	}
	_ = pattern.True
}
