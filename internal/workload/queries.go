package workload

import (
	"math/rand"

	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// QueryGen reproduces the paper's query generator (§VII): random connected
// patterns controlled by #n (nodes, in [3,7]), #e (edges, in
// [#n−1, 1.5·#n]) and #p (predicate atoms, in [2,8]).
//
// Patterns are drawn as connected subgraph samples of the dataset — the
// labels and edge orientations come from real adjacency, so queries are
// satisfiable in principle and their label pairs are the ones the data
// (and hence the access schema) actually exhibits. Purely label-random
// patterns would almost always contain label pairs no constraint covers
// and be trivially unbounded, which is not the regime the paper measures.
type QueryGen struct {
	MinNodes, MaxNodes int // default 3, 7
	MinPreds, MaxPreds int // default 2, 8
	// AnchorBias is the probability (in percent) of starting the sample
	// at a node whose label has a type-1 constraint; default 50.
	AnchorBias int
	// AnchorNbrBias is the probability (in percent) that each expansion
	// step prefers a neighbor whose label has a type-1 constraint, when
	// one exists; default 45. This models analysts anchoring queries on
	// reference entities (years, awards, countries, small hosts).
	AnchorNbrBias int
}

// DefaultQueryGen is the paper's configuration.
var DefaultQueryGen = QueryGen{MinNodes: 3, MaxNodes: 7, MinPreds: 2, MaxPreds: 8, AnchorBias: 50, AnchorNbrBias: 75}

func (qg QueryGen) withDefaults() QueryGen {
	if qg.MaxNodes == 0 {
		qg = DefaultQueryGen
	}
	return qg
}

// Generate returns n random queries over the dataset.
func (qg QueryGen) Generate(d *Dataset, n int, seed int64) []*pattern.Pattern {
	qg = qg.withDefaults()
	r := rand.New(rand.NewSource(seed))
	anchors := anchorNodes(d)
	anchorLbl := anchorLabels(d)
	nodeList := d.G.NodeList()
	out := make([]*pattern.Pattern, 0, n)
	for attempts := 0; len(out) < n && attempts < 200*n; attempts++ {
		if q := qg.one(r, d, anchors, anchorLbl, nodeList); q != nil {
			out = append(out, q)
		}
	}
	return out
}

// anchorLabels is the set of labels with a type-1 constraint.
func anchorLabels(d *Dataset) map[graph.Label]bool {
	out := make(map[graph.Label]bool)
	for _, c := range d.Schema.Constraints() {
		if c.Type1() {
			out[c.L] = true
		}
	}
	return out
}

// GenerateSized returns n random queries with exactly nn nodes each (the
// #n sweep of Fig 5(b)).
func (qg QueryGen) GenerateSized(d *Dataset, n, nn int, seed int64) []*pattern.Pattern {
	qg = qg.withDefaults()
	qg.MinNodes, qg.MaxNodes = nn, nn
	return qg.Generate(d, n, seed)
}

// anchorNodes lists data nodes whose labels carry a type-1 constraint.
func anchorNodes(d *Dataset) []graph.NodeID {
	var out []graph.NodeID
	for _, c := range d.Schema.Constraints() {
		if c.Type1() {
			out = append(out, d.G.NodesByLabel(c.L)...)
		}
	}
	return out
}

func (qg QueryGen) one(r *rand.Rand, d *Dataset, anchors []graph.NodeID, anchorLbl map[graph.Label]bool, nodeList []graph.NodeID) *pattern.Pattern {
	g := d.G
	nn := qg.MinNodes + r.Intn(qg.MaxNodes-qg.MinNodes+1)

	// Sample a connected subgraph of nn nodes by randomized expansion.
	var start graph.NodeID
	if len(anchors) > 0 && r.Intn(100) < qg.AnchorBias {
		start = anchors[r.Intn(len(anchors))]
	} else {
		start = nodeList[r.Intn(len(nodeList))]
	}
	sample := []graph.NodeID{start}
	index := map[graph.NodeID]int{start: 0}
	type pedge struct{ from, to int }
	var edges []pedge
	edgeSeen := make(map[[2]int]bool)
	addEdge := func(a, b int) {
		if a == b || edgeSeen[[2]int{a, b}] {
			return
		}
		edgeSeen[[2]int{a, b}] = true
		edges = append(edges, pedge{a, b})
	}
	for tries := 0; len(sample) < nn && tries < 60*nn; tries++ {
		v := sample[r.Intn(len(sample))]
		nbrs := g.Neighbors(v)
		if len(nbrs) == 0 {
			continue
		}
		w := nbrs[r.Intn(len(nbrs))]
		if r.Intn(100) < qg.AnchorNbrBias && !anchorLbl[g.LabelOf(w)] {
			// Prefer a random anchor-labeled neighbor when the uniform
			// draw missed one.
			var anchorsHere []graph.NodeID
			for _, cand := range nbrs {
				if anchorLbl[g.LabelOf(cand)] {
					anchorsHere = append(anchorsHere, cand)
				}
			}
			if len(anchorsHere) > 0 {
				w = anchorsHere[r.Intn(len(anchorsHere))]
			}
		}
		if _, in := index[w]; in {
			continue
		}
		index[w] = len(sample)
		sample = append(sample, w)
		vi, wi := index[v], index[w]
		// Orient as in the data; for bidirectional pairs pick one.
		switch {
		case g.HasEdge(v, w) && g.HasEdge(w, v):
			if r.Intn(2) == 0 {
				addEdge(vi, wi)
			} else {
				addEdge(wi, vi)
			}
		case g.HasEdge(v, w):
			addEdge(vi, wi)
		default:
			addEdge(wi, vi)
		}
	}
	if len(sample) != nn {
		return nil // stuck in a small component; caller retries
	}

	// Extra induced edges up to #e ∈ [nn−1, 1.5·nn].
	target := nn - 1 + r.Intn(nn/2+1)
	for tries := 0; len(edges) < target && tries < 20*nn; tries++ {
		i, j := r.Intn(nn), r.Intn(nn)
		if i == j {
			continue
		}
		if g.HasEdge(sample[i], sample[j]) {
			addEdge(i, j)
		}
	}

	// Predicates: #p atoms over random nodes; generator attribute values
	// are small non-negative ints, so these stay loose most of the time.
	np := qg.MinPreds + r.Intn(qg.MaxPreds-qg.MinPreds+1)
	preds := make([]pattern.Predicate, nn)
	for i := 0; i < np; i++ {
		u := r.Intn(nn)
		var atom pattern.Atom
		switch r.Intn(4) {
		case 0:
			atom = pattern.Ge(graph.IntValue(int64(r.Intn(4))))
		case 1:
			atom = pattern.Le(graph.IntValue(int64(500 + r.Intn(20000))))
		case 2:
			atom = pattern.Gt(graph.IntValue(-1))
		default:
			atom = pattern.Lt(graph.IntValue(int64(1000 + r.Intn(20000))))
		}
		preds[u] = append(preds[u], atom)
	}

	q := pattern.New(d.In)
	for i, v := range sample {
		q.AddNode(g.LabelOf(v), preds[i])
	}
	for _, e := range edges {
		q.MustAddEdge(pattern.Node(e.from), pattern.Node(e.to))
	}
	if err := q.Validate(); err != nil {
		return nil
	}
	return q
}
