// Package workload generates the synthetic datasets and query loads used
// to reproduce the paper's evaluation (§VII). The paper measured three
// real datasets — IMDbG, DBpediaG and WebBG — none of which ship with this
// repository, so each generator builds a scaled synthetic graph with the
// same *label topology and cardinality semantics* (see DESIGN.md §4):
// effective boundedness depends only on which access constraints hold, and
// the generators enforce every published constraint by construction.
//
// Key invariant: the "anchor" label populations (years, awards, small
// entity types, small hosts) are FIXED as the scale factor grows — exactly
// the property that makes bounded query plans independent of |G|.
package workload

import (
	"fmt"
	"math/rand"

	"boundedg/internal/access"
	"boundedg/internal/graph"
)

// Dataset bundles a generated graph with its curated access schema. The
// schema is ordered so that prefixes (Schema.Subset) remain useful for the
// ‖A‖-sweep experiment: type-1 anchors first, then the core structural
// constraints, then extras.
type Dataset struct {
	Name   string
	In     *graph.Interner
	G      *graph.Graph
	Schema *access.Schema
}

// capper enforces declared neighbor-cardinality caps during generation, so
// the emitted graph satisfies the dataset's schema by construction.
type capper struct {
	g *graph.Graph
	// caps[(nodeLabel, nbrLabel)] = max nbrLabel-labeled neighbors of any
	// nodeLabel-labeled node. Absent key = unlimited.
	caps map[[2]graph.Label]int
	// cnt[node][nbrLabel] = current count.
	cnt map[graph.NodeID]map[graph.Label]int
}

func newCapper(g *graph.Graph) *capper {
	return &capper{
		g:    g,
		caps: make(map[[2]graph.Label]int),
		cnt:  make(map[graph.NodeID]map[graph.Label]int),
	}
}

// cap declares that each `from`-labeled node may have at most n
// `to`-labeled neighbors.
func (c *capper) cap(from, to graph.Label, n int) { c.caps[[2]graph.Label{from, to}] = n }

func (c *capper) count(v graph.NodeID, l graph.Label) int { return c.cnt[v][l] }

func (c *capper) room(v graph.NodeID, nbr graph.Label) bool {
	lim, ok := c.caps[[2]graph.Label{c.g.LabelOf(v), nbr}]
	if !ok {
		return true
	}
	return c.cnt[v][nbr] < lim
}

func (c *capper) bump(v graph.NodeID, nbr graph.Label) {
	m, ok := c.cnt[v]
	if !ok {
		m = make(map[graph.Label]int, 4)
		c.cnt[v] = m
	}
	m[nbr]++
}

// tryEdge adds the directed edge (a, b) if both endpoints have room for
// each other's labels and the edge is new. It reports success.
func (c *capper) tryEdge(a, b graph.NodeID) bool {
	la, lb := c.g.LabelOf(a), c.g.LabelOf(b)
	if a == b || c.g.HasNeighbor(a, b) {
		return false
	}
	if !c.room(a, lb) || !c.room(b, la) {
		return false
	}
	if err := c.g.AddEdge(a, b); err != nil {
		return false
	}
	c.bump(a, lb)
	c.bump(b, la)
	return true
}

// scaled returns max(1, round(base*scale)).
func scaled(base int, scale float64) int {
	n := int(float64(base)*scale + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// pick returns a uniformly random element of s.
func pick[T any](r *rand.Rand, s []T) T { return s[r.Intn(len(s))] }

// validate panics if the generated graph violates its own schema — a
// generator bug, not a user error.
func (d *Dataset) validate() {
	if viols := access.Validate(d.G, d.Schema); viols != nil {
		panic(fmt.Sprintf("workload: %s generator emitted violations: %v", d.Name, viols[0]))
	}
}
