package workload

import (
	"fmt"
	"math/rand"

	"boundedg/internal/access"
	"boundedg/internal/graph"
)

// WebBase generates the stand-in for the paper's WebBG (WebBase-2001):
// pages labeled by their host's domain name, with a power-law distribution
// of pages per host, inter-host links along a sparse host graph, and
// per-(host, host) link caps. Small hosts (the long tail) provide type-1
// anchors; the link caps provide type-2 constraints. This reproduces the
// regime where the conventional algorithms drown in |G| while bounded
// plans touch a fixed set of hosts.
//
// scale = 1 yields roughly 120k nodes and 250k edges.
func WebBase(scale float64, seed int64) *Dataset {
	const (
		nHosts     = 220
		nSmall     = 80 // hosts with fixed, small page counts (anchors)
		basePages  = 900
		maxPartner = 5 // partner hosts per host in the host graph
		maxLinkCap = 6 // per-page links into one partner host
	)
	r := rand.New(rand.NewSource(seed))
	in := graph.NewInterner()
	g := graph.New(in)
	c := newCapper(g)

	hostLabels := make([]graph.Label, nHosts)
	hostPages := make([][]graph.NodeID, nHosts)
	smallCount := make([]int, nHosts)
	for h := range hostLabels {
		hostLabels[h] = in.Intern(fmt.Sprintf("host%03d.example", h))
		var n int
		if h < nSmall {
			n = 2 + r.Intn(40) // fixed small host: anchor
			smallCount[h] = n
		} else {
			// Power-law-ish: rank-based page counts, scaled with |G|.
			n = scaled(basePages/(1+(h-nSmall)%11), scale)
		}
		for k := 0; k < n; k++ {
			hostPages[h] = append(hostPages[h], g.AddNode(hostLabels[h], graph.IntValue(int64(k))))
		}
	}

	// Host graph: each host links to up to maxPartner partner hosts, with
	// a per-(host, partner) page-link cap.
	type link struct {
		from, to, cap int
		// inCap > 0 additionally bounds back-references: each page of
		// `to` is linked from at most inCap pages of `from` (makes
		// simulation queries boundable; see the DBpedia generator).
		inCap int
	}
	var links []link
	seen := make(map[[2]int]bool)
	for h := 0; h < nHosts; h++ {
		np := 1 + r.Intn(maxPartner)
		for t := 0; t < 3*np && np > 0; t++ {
			p := r.Intn(nHosts)
			if p == h || seen[[2]int{h, p}] || seen[[2]int{p, h}] {
				continue
			}
			seen[[2]int{h, p}] = true
			lk := link{from: h, to: p, cap: 1 + r.Intn(maxLinkCap)}
			if r.Intn(3) < 2 {
				lk.inCap = 2 + r.Intn(6)
			}
			links = append(links, lk)
			np--
		}
	}
	for _, lk := range links {
		c.cap(hostLabels[lk.from], hostLabels[lk.to], lk.cap)
		if lk.inCap > 0 {
			c.cap(hostLabels[lk.to], hostLabels[lk.from], lk.inCap)
		}
	}
	for _, lk := range links {
		for _, pg := range hostPages[lk.from] {
			k := r.Intn(lk.cap + 1)
			for t, added := 0, 0; t < 3*k && added < k; t++ {
				if c.tryEdge(pg, pick(r, hostPages[lk.to])) {
					added++
				}
			}
		}
	}

	schema := access.NewSchema()
	for h := 0; h < nSmall; h++ {
		schema.Add(access.MustNew(nil, hostLabels[h], smallCount[h]))
	}
	for _, lk := range links {
		schema.Add(access.MustNew([]graph.Label{hostLabels[lk.from]}, hostLabels[lk.to], lk.cap))
		if lk.inCap > 0 {
			schema.Add(access.MustNew([]graph.Label{hostLabels[lk.to]}, hostLabels[lk.from], lk.inCap))
		}
	}

	d := &Dataset{Name: "WebBG", In: in, G: g, Schema: schema}
	return d
}
