package workload

import (
	"fmt"
	"math/rand"

	"boundedg/internal/access"
	"boundedg/internal/graph"
)

// DBpedia generates the stand-in for the paper's DBpediaG knowledge graph:
// many entity types (labels), a long tail of small "reference" types with
// fixed populations (countries, currencies, languages, ... — the type-1
// anchors), larger scaled types, and relation templates with per-template
// out-degree caps (the type-2 constraints). DBpedia's higher label count
// is why the paper saw more bounded queries there (67% vs 61%); the
// generator reproduces that regime.
//
// scale = 1 yields roughly 55k nodes and 150k edges.
func DBpedia(scale float64, seed int64) *Dataset {
	const (
		nRefTypes    = 25  // fixed-population anchor types
		nEntityTypes = 35  // scaled types
		nTemplates   = 140 // relation templates between types
		baseEntities = 1500
	)
	r := rand.New(rand.NewSource(seed))
	in := graph.NewInterner()
	g := graph.New(in)
	c := newCapper(g)

	// Reference types: small fixed populations, e.g. 3..120 nodes.
	refLabels := make([]graph.Label, nRefTypes)
	refNodes := make([][]graph.NodeID, nRefTypes)
	refCount := make([]int, nRefTypes)
	for i := range refLabels {
		refLabels[i] = in.Intern(fmt.Sprintf("ref%02d", i))
		refCount[i] = 3 + r.Intn(118)
		for k := 0; k < refCount[i]; k++ {
			refNodes[i] = append(refNodes[i], g.AddNode(refLabels[i], graph.IntValue(int64(k))))
		}
	}
	// Entity types: scaled populations, skewed.
	entLabels := make([]graph.Label, nEntityTypes)
	entNodes := make([][]graph.NodeID, nEntityTypes)
	for i := range entLabels {
		entLabels[i] = in.Intern(fmt.Sprintf("type%02d", i))
		nEnt := scaled(baseEntities/(1+i%7), scale)
		for k := 0; k < nEnt; k++ {
			entNodes[i] = append(entNodes[i], g.AddNode(entLabels[i], graph.IntValue(int64(k))))
		}
	}

	allLabels := append(append([]graph.Label(nil), refLabels...), entLabels...)
	allNodes := append(append([][]graph.NodeID(nil), refNodes...), entNodes...)

	// Relation templates: (from, to, outCap). Declared caps become type-2
	// constraints; generation respects them via the capper.
	type tmpl struct {
		from, to int // indices into allLabels
		cap      int
		// inCap, when positive, also bounds the from-labeled neighbors of
		// each to-node (a "reverse" constraint). Reverse constraints are
		// what make simulation queries boundable: sVCov only deduces
		// through children, so covering the PARENT of a pattern edge
		// requires a bound keyed on the child's label (§VI).
		inCap int
	}
	seen := make(map[[2]int]bool)
	var templates []tmpl
	// Spanning guarantee: every entity type gets one declared template
	// from an earlier label (a reference type or an earlier entity type),
	// so a deduction chain from a type-1 anchor can reach every type —
	// the ontology backbone a curated knowledge graph has. Without it the
	// bounded fraction swings wildly with the seed.
	for i := 0; i < nEntityTypes; i++ {
		t := nRefTypes + i
		f := r.Intn(t)
		seen[[2]int{f, t}] = true
		tp := tmpl{from: f, to: t, cap: 1 + r.Intn(6)}
		if r.Intn(4) < 3 {
			tp.inCap = 2 + r.Intn(8)
		}
		templates = append(templates, tp)
	}
	for len(templates) < nTemplates {
		f := r.Intn(len(allLabels))
		t := r.Intn(len(allLabels))
		if f == t || seen[[2]int{f, t}] || seen[[2]int{t, f}] {
			continue
		}
		seen[[2]int{f, t}] = true
		tp := tmpl{from: f, to: t, cap: 1 + r.Intn(6)}
		if r.Intn(4) < 3 {
			tp.inCap = 2 + r.Intn(8)
		}
		// ~8% of templates model relations nobody profiled: edges exist
		// but no constraint is declared, so queries over them are
		// unbounded (the realistic long tail).
		if r.Intn(100) < 8 {
			tp.cap = -tp.cap // negative marks "undeclared"
			tp.inCap = 0
		}
		templates = append(templates, tp)
	}
	for _, tp := range templates {
		if tp.cap > 0 {
			c.cap(allLabels[tp.from], allLabels[tp.to], tp.cap)
		}
		if tp.inCap > 0 {
			c.cap(allLabels[tp.to], allLabels[tp.from], tp.inCap)
		}
	}
	// Wire edges: each from-node gets up to cap targets with probability
	// falling off, so degrees vary.
	for _, tp := range templates {
		outCap := tp.cap
		if outCap < 0 {
			outCap = -outCap
		}
		for _, v := range allNodes[tp.from] {
			k := r.Intn(outCap + 1)
			for t, added := 0, 0; t < 3*k && added < k; t++ {
				w := pick(r, allNodes[tp.to])
				if c.tryEdge(v, w) {
					added++
				}
			}
		}
	}

	// Schema: type-1 anchors for the reference types, then the template
	// constraints (ordered by template index).
	schema := access.NewSchema()
	for i, l := range refLabels {
		schema.Add(access.MustNew(nil, l, refCount[i]))
	}
	for _, tp := range templates {
		if tp.cap > 0 {
			schema.Add(access.MustNew([]graph.Label{allLabels[tp.from]}, allLabels[tp.to], tp.cap))
		}
		if tp.inCap > 0 {
			schema.Add(access.MustNew([]graph.Label{allLabels[tp.to]}, allLabels[tp.from], tp.inCap))
		}
	}

	d := &Dataset{Name: "DBpediaG", In: in, G: g, Schema: schema}
	return d
}
