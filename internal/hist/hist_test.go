package hist

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestSmallValuesExact(t *testing.T) {
	var h H
	for v := int64(0); v < subBuckets; v++ {
		h.Observe(v)
	}
	if h.Count() != subBuckets {
		t.Fatalf("count %d, want %d", h.Count(), subBuckets)
	}
	// Values below subBuckets are bucketed exactly, so every quantile is
	// the true order statistic.
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("p0 = %d, want 0", got)
	}
	if got := h.Quantile(1); got != subBuckets-1 {
		t.Fatalf("p100 = %d, want %d", got, subBuckets-1)
	}
	if got := h.Quantile(0.5); got != (subBuckets-1)/2 {
		t.Fatalf("p50 = %d, want %d", got, (subBuckets-1)/2)
	}
}

func TestQuantileRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h H
	vals := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades, the shape of a latency distribution.
		v := int64(1) << uint(rng.Intn(30))
		v += rng.Int63n(v)
		h.Observe(v)
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		want := vals[int(q*float64(len(vals)-1))]
		got := h.Quantile(q)
		// The estimate is the bucket lower bound: at most one sub-bucket
		// (1/subBuckets relative) below the true order statistic.
		lo := want - want/(subBuckets/2) - 1
		if got < lo || got > want {
			t.Fatalf("q=%v: got %d, want within [%d, %d]", q, got, lo, want)
		}
	}
	if h.Max() != vals[len(vals)-1] {
		t.Fatalf("max %d, want %d", h.Max(), vals[len(vals)-1])
	}
}

func TestClampAndNegatives(t *testing.T) {
	var h H
	h.Observe(-5)
	if h.Quantile(1) != 0 {
		t.Fatalf("negative observation should clamp to 0")
	}
	huge := int64(1) << 50 // beyond the covered range
	h.Observe(huge)
	if h.Max() != huge {
		t.Fatalf("max %d, want %d", h.Max(), huge)
	}
	if got := h.Quantile(1); got <= 0 {
		t.Fatalf("clamped huge value lost: p100 = %d", got)
	}
}

func TestConcurrentObserve(t *testing.T) {
	var h H
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(int64(time.Second)))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
	s := h.Summarize()
	if s.Count != workers*per || s.P50Ns > s.P95Ns || s.P95Ns > s.P99Ns || s.P99Ns > s.MaxNs {
		t.Fatalf("summary not monotone: %+v", s)
	}
}
