// Package hist provides a concurrency-safe log-linear latency histogram:
// power-of-two magnitude buckets subdivided linearly, so quantile error is
// bounded by a constant relative factor (1/subBuckets) at every scale from
// microseconds to minutes while the whole histogram stays a few KB of
// atomic counters. Both the serving daemon's /stats latency block and the
// load generator's per-op-class reports are built on it.
package hist

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// magnitudes covers values up to 2^magnitudes-1 ns (~68 s with 36);
	// larger observations clamp into the last bucket.
	magnitudes = 36
	// subBuckets linearly subdivides each power-of-two magnitude, giving
	// a worst-case relative quantile error of 1/subBuckets ≈ 3%.
	subBuckets = 32
)

// H is a log-linear histogram of non-negative int64 observations
// (nanoseconds by convention). The zero value is ready to use; Observe
// and the readers may be called concurrently from any goroutine.
type H struct {
	count atomic.Uint64
	sum   atomic.Uint64
	max   atomic.Int64
	// buckets[m*subBuckets+s] counts observations whose magnitude (bit
	// length) is m, linearly placed by their top sub-bucket bits.
	buckets [magnitudes * subBuckets]atomic.Uint64
}

// bucketOf maps a value to its bucket index. Values below subBuckets land
// in the linear prefix (magnitude small enough that the sub-bucket width
// is one), so tiny observations are exact.
func bucketOf(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	m := bits.Len64(uint64(v)) - 1 // 2^m <= v < 2^(m+1)
	sub := (v >> (uint(m) - 5)) - subBuckets
	i := m*subBuckets + int(sub)
	if i >= magnitudes*subBuckets {
		i = magnitudes*subBuckets - 1
	}
	return i
}

// lowerBound returns the smallest value mapping to bucket i — the
// conservative representative reported for quantiles falling in i.
func lowerBound(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	m := i / subBuckets
	sub := i % subBuckets
	return (int64(subBuckets) + int64(sub)) << (uint(m) - 5)
}

// Observe records one value; negative values clamp to zero.
func (h *H) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in nanoseconds.
func (h *H) ObserveSince(start time.Time) { h.Observe(time.Since(start).Nanoseconds()) }

// Count returns the number of observations.
func (h *H) Count() uint64 { return h.count.Load() }

// Max returns the largest observed value (exact, not bucketed).
func (h *H) Max() int64 { return h.max.Load() }

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *H) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns a conservative estimate (the bucket lower bound) of
// the q-quantile, q in [0,1]. With no observations it returns 0. The
// histogram may be concurrently written; the answer is then a quantile
// of some interleaving of the writes.
func (h *H) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank: 1-based index of the target observation in sorted order.
	rank := uint64(q*float64(n-1)) + 1
	var seen uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			return lowerBound(i)
		}
	}
	return h.max.Load()
}

// Summary is a point-in-time digest of a histogram, in the units the
// observations used (nanoseconds by convention), ready for JSON.
type Summary struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P95Ns  int64   `json:"p95_ns"`
	P99Ns  int64   `json:"p99_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// Summarize digests the histogram's current state.
func (h *H) Summarize() Summary {
	return Summary{
		Count:  h.Count(),
		MeanNs: h.Mean(),
		P50Ns:  h.Quantile(0.50),
		P95Ns:  h.Quantile(0.95),
		P99Ns:  h.Quantile(0.99),
		MaxNs:  h.Max(),
	}
}
