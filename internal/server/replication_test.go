package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"boundedg/internal/access"
	"boundedg/internal/graph"
)

// TestFollowerModeRejectsWrites checks the read-only contract of -follow:
// /update is a 403 with a message pointing at the primary (even with
// updates otherwise enabled), queries still serve, and /stats carries the
// replication block verbatim from the configured callback.
func TestFollowerModeRejectsWrites(t *testing.T) {
	d, _ := miniDataset(t, 10)
	want := ReplicationStats{
		Primary:      "http://primary:8080",
		AppliedEpoch: 41,
		PrimaryEpoch: 43,
		Lag:          2,
		Offset:       1234,
		Reconnects:   1,
		Bootstraps:   1,
		Connected:    true,
	}
	e := newEnv(t, d, Config{
		EnableUpdates:    true,
		Follower:         true,
		ReplicationStats: func() ReplicationStats { return want },
	})

	var er ErrorResponse
	code := e.postUpdate(t, `{"add_nodes": [{"label": "movie", "value": 9}]}`, &er)
	if code != http.StatusForbidden {
		t.Fatalf("follower /update: status %d, want 403", code)
	}
	if !strings.Contains(er.Error, "follower") || !strings.Contains(er.Error, "primary") {
		t.Fatalf("follower /update error %q does not route the writer to the primary", er.Error)
	}

	var qr QueryResponse
	if code := e.post(t, QueryRequest{Pattern: miniPattern}, &qr); code != http.StatusOK {
		t.Fatalf("follower /query: status %d", code)
	}

	st := e.getStats(t)
	if st.Replication == nil {
		t.Fatal("follower /stats has no replication block")
	}
	if *st.Replication != want {
		t.Fatalf("replication block %+v, want %+v", *st.Replication, want)
	}
}

// TestStatsOmitsReplicationOnPrimary pins the /stats JSON shape: a daemon
// with no replication callback must not emit the block at all.
func TestStatsOmitsReplicationOnPrimary(t *testing.T) {
	d, _ := miniDataset(t, 10)
	e := newEnv(t, d, Config{})
	resp, err := http.Get(e.ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte(`"replication"`)) {
		t.Fatalf("primary /stats leaks a replication block: %s", raw)
	}
}

// TestReplicationEndpointsRefuseNonPrimaries checks the two refusal
// shapes of /wal/checkpoint and /wal/stream: 404 without a WAL, and the
// explicit 501 "unsupported" stub on a sharded daemon.
func TestReplicationEndpointsRefuseNonPrimaries(t *testing.T) {
	get := func(t *testing.T, base, path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	d, _ := miniDataset(t, 10)
	mem := newEnv(t, d, Config{})
	for _, path := range []string{"/wal/checkpoint", "/wal/stream"} {
		code, body := get(t, mem.ts.URL, path)
		if code != http.StatusNotFound || !strings.Contains(body, "-wal") {
			t.Fatalf("in-memory %s: status %d body %s", path, code, body)
		}
	}

	ds, _ := miniDataset(t, 10)
	sharded := newShardedEnv(t, ds, 2, Config{})
	for _, path := range []string{"/wal/checkpoint", "/wal/stream"} {
		code, body := get(t, sharded.ts.URL, path)
		if code != http.StatusNotImplemented || !strings.Contains(body, "unsupported") {
			t.Fatalf("sharded %s: status %d body %s", path, code, body)
		}
	}
}

// TestWALCheckpointServesBootstrapState checks GET /wal/checkpoint on a
// durable primary: the snapshot parses through the follower's codecs,
// and a store checkpoint advances the served epoch.
func TestWALCheckpointServesBootstrapState(t *testing.T) {
	d, years := miniDataset(t, 10)
	e := newDurableEnv(t, d, Config{EnableUpdates: true})

	fetch := func(t *testing.T) CheckpointResponse {
		t.Helper()
		resp, err := http.Get(e.ts.URL + "/wal/checkpoint")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var ck CheckpointResponse
		if err := json.NewDecoder(resp.Body).Decode(&ck); err != nil {
			t.Fatal(err)
		}
		in := graph.NewInterner()
		g, err := graph.ReadSnapshotJSON(bytes.NewReader(ck.Graph), in)
		if err != nil {
			t.Fatalf("checkpoint graph does not parse: %v", err)
		}
		if _, err := access.ReadIndexSet(bytes.NewReader(ck.Index), in); err != nil {
			t.Fatalf("checkpoint index does not parse: %v", err)
		}
		var nodes int
		g.Nodes(func(graph.NodeID) bool { nodes++; return true })
		if nodes == 0 {
			t.Fatal("checkpoint graph is empty")
		}
		return ck
	}

	if ck := fetch(t); ck.Epoch != 0 {
		t.Fatalf("fresh checkpoint epoch %d, want 0", ck.Epoch)
	}

	for i := 0; i < 3; i++ {
		body := `{"add_nodes": [{"label": "movie", "value": 300}], "add_edges": [[-1, ` + strconv.Itoa(int(years[i%len(years)])) + `]]}`
		if code := e.postUpdate(t, body, nil); code != http.StatusOK {
			t.Fatalf("update %d: status %d", i, code)
		}
	}
	if err := e.eng.Store().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if ck := fetch(t); ck.Epoch != 3 {
		t.Fatalf("post-rotation checkpoint epoch %d, want 3", ck.Epoch)
	}
}

// TestUpdateRejectionLeavesInternerUntouched is the interner-leak
// regression test at the HTTP layer: a rejected /update carrying a label
// the system has never seen must leave no trace in the shared interner
// (the leak fixed alongside the replication work: labels now stage on the
// delta and commit only on acceptance).
func TestUpdateRejectionLeavesInternerUntouched(t *testing.T) {
	d, years := miniDataset(t, 10)
	e := newEnv(t, d, Config{EnableUpdates: true})
	before := d.In.Len()

	// Structurally rejected (409): the edge references a node that does
	// not exist, and the delta also introduces a novel label.
	body := `{"add_nodes": [{"label": "ghost", "value": 1}], "add_edges": [[-1, 999999]]}`
	var er ErrorResponse
	if code := e.postUpdate(t, body, &er); code != http.StatusConflict {
		t.Fatalf("status %d (%s), want 409", code, er.Error)
	}
	if _, ok := d.In.Lookup("ghost"); ok {
		t.Fatal("rejected update interned its novel label")
	}
	if d.In.Len() != before {
		t.Fatalf("interner grew from %d to %d on a rejected update", before, d.In.Len())
	}

	// The same label in an accepted update is interned — rejection
	// staged it, acceptance commits it.
	ok := `{"add_nodes": [{"label": "ghost", "value": 1}], "add_edges": [[-1, ` + strconv.Itoa(int(years[0])) + `]]}`
	if code := e.postUpdate(t, ok, &er); code != http.StatusOK {
		t.Fatalf("accepted update: status %d (%s)", code, er.Error)
	}
	if _, found := d.In.Lookup("ghost"); !found {
		t.Fatal("accepted update did not intern its label")
	}
	if d.In.Len() != before+1 {
		t.Fatalf("interner at %d entries, want %d", d.In.Len(), before+1)
	}
}

// TestShutdownEndsLiveWALStream pins the graceful-drain interaction: a
// blocked /wal/stream tail must end at a chunk boundary when the server
// shuts down. http.Server.Shutdown waits for in-flight requests without
// cancelling their contexts, so without the server's drain signal a
// single connected follower would stall every graceful stop — and the
// shutdown checkpoint behind it — for the full drain budget.
func TestShutdownEndsLiveWALStream(t *testing.T) {
	d, _ := miniDataset(t, 10)
	e := newDurableEnv(t, d, Config{EnableUpdates: true})

	resp, err := e.ts.Client().Get(e.ts.URL + "/wal/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d, want 200", resp.StatusCode)
	}

	shutdown := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdown <- e.srv.Shutdown(ctx)
	}()
	body := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, resp.Body)
		body <- err
	}()
	for done := 0; done < 2; {
		select {
		case err := <-shutdown:
			if err != nil {
				t.Fatalf("shutdown stalled by the live stream: %v", err)
			}
			shutdown = nil
			done++
		case err := <-body:
			if err != nil {
				t.Fatalf("stream did not end cleanly on shutdown: %v", err)
			}
			body = nil
			done++
		case <-time.After(10 * time.Second):
			t.Fatal("live stream still open 10s after Shutdown")
		}
	}
}
