package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"boundedg/internal/wal"
)

// Replication endpoints of a durable unsharded primary. A follower
// bootstraps once from GET /wal/checkpoint, then holds one long-lived
// GET /wal/stream response open and replays the chunks it carries; see
// internal/replica for the client side and docs/OPERATIONS.md for the
// runbook.

// ReplicationStats is the "replication" block a follower reports in
// GET /stats.
type ReplicationStats struct {
	// Primary is the primary's base URL (the -follow argument).
	Primary string `json:"primary"`
	// AppliedEpoch is the follower's published epoch; PrimaryEpoch is the
	// primary's published epoch as of the last chunk received, and Lag is
	// their difference — 0 when the follower is caught up.
	AppliedEpoch uint64 `json:"applied_epoch"`
	PrimaryEpoch uint64 `json:"primary_epoch"`
	Lag          uint64 `json:"lag"`
	// Offset is the stream cursor: the primary log offset through which
	// every record has been applied and published here.
	Offset int64 `json:"offset"`
	// Reconnects counts stream (re)connections after the first; steady
	// growth means the link or the primary is flapping.
	Reconnects uint64 `json:"reconnects"`
	// Bootstraps counts checkpoint re-bootstraps (the first one
	// included); more than 1 means log rotations outran the stream.
	Bootstraps uint64 `json:"bootstraps"`
	// Connected reports whether a stream is open right now. LastError is
	// the most recent stream error, kept after reconnecting so flaps stay
	// diagnosable.
	Connected    bool   `json:"connected"`
	Inconsistent bool   `json:"inconsistent,omitempty"`
	LastError    string `json:"last_error,omitempty"`
}

// CheckpointResponse is the body of GET /wal/checkpoint: the primary's
// current checkpoint epoch and the raw snapshot documents (the same JSON
// the WAL directory holds on disk).
type CheckpointResponse struct {
	Epoch uint64          `json:"epoch"`
	Graph json.RawMessage `json:"graph"`
	Index json.RawMessage `json:"index"`
}

// StreamRedirect is the body of a 409 from GET /wal/stream: the
// follower's base parameter no longer names the current log (a
// checkpoint rotated it). A follower whose applied epoch equals
// LogBaseEpoch resumes the stream at the new log's first record;
// otherwise it re-bootstraps from GET /wal/checkpoint.
type StreamRedirect struct {
	Error           string `json:"error"`
	LogBaseEpoch    uint64 `json:"log_base_epoch"`
	CheckpointEpoch uint64 `json:"checkpoint_epoch"`
}

// walDir resolves the replication endpoints' WAL directory, writing the
// refusal when this server cannot serve them: a sharded daemon is an
// explicit 501 (per-shard logs have no single offset space to stream; see
// the stub note in docs/ARCHITECTURE.md), anything else without a WAL a
// 404.
func (s *Server) walDir(w http.ResponseWriter) *wal.Dir {
	d := s.cfg.WAL
	if d != nil && !d.Enveloped() {
		return d
	}
	if d != nil || s.eng.Router() != nil {
		s.writeError(w, http.StatusNotImplemented, errors.New("replication of a sharded store is unsupported (stream one unsharded primary per follower)"))
	} else {
		s.writeError(w, http.StatusNotFound, errors.New("not a durable primary (start the daemon with -wal)"))
	}
	return nil
}

// handleWALCheckpoint serves the current checkpoint snapshot for
// follower bootstrap.
func (s *Server) handleWALCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	d := s.walDir(w)
	if d == nil {
		return
	}
	epoch, graphJSON, indexJSON, err := d.ReadCheckpoint()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.served.Add(1)
	s.writeJSON(w, http.StatusOK, CheckpointResponse{Epoch: epoch, Graph: graphJSON, Index: indexJSON})
}

// handleWALStream serves committed log records from a byte offset, then
// tails the live log, as an unbounded chunked response. Parameters:
//
//	from  byte offset to start at (a record boundary the stream handed
//	      out earlier, or the log header size); defaults to the header.
//	base  the base epoch of the log the offset refers to; defaults to
//	      the current log's. A mismatch — the log rotated — returns 409
//	      with a StreamRedirect body.
//
// The response body is a sequence of wal.Chunk frames, one per published
// epoch. The response ends cleanly (at a chunk boundary) when a
// checkpoint rotates the log; the follower reconnects and the base check
// tells it how to re-anchor.
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	d := s.walDir(w)
	if d == nil {
		return
	}
	l := d.Log()
	if l == nil {
		s.writeError(w, http.StatusServiceUnavailable, errors.New("log not open"))
		return
	}
	q := r.URL.Query()
	base := l.BaseEpoch()
	if v := q.Get("base"); v != "" {
		b, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad base: %w", err))
			return
		}
		base = b
	}
	if base != l.BaseEpoch() {
		// The log the follower was reading rotated away. Point it at the
		// current log and checkpoint; it picks resume or re-bootstrap.
		s.errors.Add(1)
		s.writeJSON(w, http.StatusConflict, StreamRedirect{
			Error:           fmt.Sprintf("log with base epoch %d rotated away", base),
			LogBaseEpoch:    l.BaseEpoch(),
			CheckpointEpoch: d.LastCheckpointEpoch(),
		})
		return
	}
	from := wal.HeaderSize()
	if v := q.Get("from"); v != "" {
		f, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad from: %w", err))
			return
		}
		from = f
	}
	t, err := l.NewTailer(from)
	if err != nil {
		if errors.Is(err, wal.ErrBadStreamOffset) {
			s.writeError(w, http.StatusRequestedRangeNotSatisfiable, err)
		} else {
			s.writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	defer t.Close()

	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush() // commit the status line before blocking on the tail
	}
	s.served.Add(1)
	// Shutdown waits for this handler but cannot cancel r.Context();
	// fold the server's drain signal in so a graceful stop is not stalled
	// by a live tail.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-s.draining:
			cancel()
		case <-ctx.Done():
		}
	}()
	for {
		c, err := t.Next(ctx.Done())
		if err != nil {
			// Retirement, drain, client gone, or a read failure: all end
			// the response at a chunk boundary; the follower re-anchors on
			// reconnect.
			return
		}
		c.PrimaryEpoch = s.eng.Version()
		if err := wal.WriteChunk(w, c); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
