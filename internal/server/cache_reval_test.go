package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"testing"

	"boundedg/internal/graph"
	"boundedg/internal/workload"
)

// postQueryNorm posts a query body and returns status plus the response
// normalized for cached-vs-fresh comparison: besides the volatile fields
// postRaw drops, it also drops the "cached" marker — everything else
// (matches, access stats, epoch, vector) must be byte-identical whether
// the answer came from a promoted cache entry or a fresh execution.
func postQueryNorm(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode (status %d): %v", resp.StatusCode, err)
	}
	delete(v, "elapsed_ms")
	delete(v, "cached")
	norm, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, norm
}

// cacheCounters scrapes the /stats cache block.
func cacheCounters(t *testing.T, e *env) CacheStats {
	t.Helper()
	resp, err := http.Get(e.ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr.Cache
}

// TestCacheRevalidationProperty is the differential property test for
// epoch-surviving cache promotion: two identical servers — one with the
// result cache on, one with it disabled — receive the same update and
// query stream, and every response must be byte-identical (modulo the
// "cached" marker). Updates mix footprint-intersecting deltas (forcing
// recomputation) with edge flips inside a disjoint pad region (allowing
// promotion), so both freshen outcomes are exercised; the test fails if
// the cached server never actually revalidated or never recomputed.
func TestCacheRevalidationProperty(t *testing.T) {
	cfgOn := Config{EnableUpdates: true, MaxLimit: 1 << 20, DefaultLimit: 1 << 20}
	cfgOff := cfgOn
	cfgOff.CacheSize = -1

	t.Run("unsharded", func(t *testing.T) {
		d := workload.IMDb(0.05, 9)
		oracle := d.G.Clone()
		cached := newEnv(t, d, cfgOn)
		fresh := newEnv(t, workload.IMDb(0.05, 9), cfgOff)
		runCacheDifferential(t, cached, fresh, oracle)
	})
	for _, n := range shardSweep(t, []int{2}) {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			d := workload.IMDb(0.05, 9)
			oracle := d.G.Clone()
			cached := newShardedEnv(t, d, n, cfgOn)
			fresh := newShardedEnv(t, workload.IMDb(0.05, 9), n, cfgOff)
			runCacheDifferential(t, cached, fresh, oracle)
		})
	}
}

// runCacheDifferential drives the paired servers. oracle is a private
// clone of the servers' initial graph, kept in lockstep by replaying
// every accepted delta — the update generator reads it instead of the
// servers' internals, which keeps this test shape-agnostic (the sharded
// engine has no single store snapshot to acquire).
func runCacheDifferential(t *testing.T, cached, fresh *env, oracle *graph.Graph) {
	t.Helper()
	queries := workload.DefaultQueryGen.Generate(cached.d, 10, 4)
	if len(queries) == 0 {
		t.Fatal("no queries generated")
	}

	// postUpdate applies one delta to both servers and insists the
	// verdicts (status, epoch, assigned IDs, touched rows) agree; both
	// servers evolved from identical datasets, so they must stay in
	// lockstep. Returns the cached server's decoded response.
	postUpdate := func(d *graph.Delta) (int, UpdateResponse) {
		t.Helper()
		var buf bytes.Buffer
		if err := d.WriteJSON(&buf, cached.d.In); err != nil {
			t.Fatal(err)
		}
		cs, cb := postRaw(t, cached.ts.URL+"/update", buf.Bytes())
		fs, fb := postRaw(t, fresh.ts.URL+"/update", buf.Bytes())
		if cs != fs || !bytes.Equal(cb, fb) {
			t.Fatalf("update verdicts diverged:\ncached: %d %s\nfresh:  %d %s", cs, cb, fs, fb)
		}
		var ur UpdateResponse
		if cs == http.StatusOK {
			if err := json.Unmarshal(cb, &ur); err != nil {
				t.Fatal(err)
			}
			ids, err := d.Clone().Apply(oracle)
			if err != nil {
				t.Fatalf("oracle rejected a server-accepted delta: %v", err)
			}
			if len(ids) != len(ur.NewIDs) {
				t.Fatalf("oracle assigned %d ids, server %d", len(ids), len(ur.NewIDs))
			}
			for i := range ids {
				if ids[i] != ur.NewIDs[i] {
					t.Fatalf("oracle id %d, server id %d", ids[i], ur.NewIDs[i])
				}
			}
		}
		return cs, ur
	}

	// Set up the pad region: two fresh nodes joined by an edge, using
	// the first label the access bounds still have headroom for. Edge
	// flips between them are disjoint from any footprint that contains
	// neither node, so queries seeded on other labels can promote.
	labels := oracle.Labels()
	var pad [2]graph.NodeID
	padOK := false
	for _, l := range labels {
		d := &graph.Delta{
			AddNodes: []graph.NodeSpec{{Label: l}, {Label: l}},
			AddEdges: [][2]graph.NodeID{{graph.NewNodeRef(0), graph.NewNodeRef(1)}},
		}
		if status, ur := postUpdate(d); status == http.StatusOK {
			pad[0], pad[1] = ur.NewIDs[0], ur.NewIDs[1]
			padOK = true
			break
		}
	}
	if !padOK {
		t.Fatal("no label has headroom for the pad region")
	}

	rng := rand.New(rand.NewSource(17))
	qi := 0
	padHasEdge := true
	for round := 0; round < 12; round++ {
		// One footprint-intersecting update (random against live rows;
		// rejections are fine — both servers must agree either way) and
		// one pad edge flip per round.
		postUpdate(shardUpdateDelta(rng, oracle))

		flip := &graph.Delta{}
		if padHasEdge {
			flip.DelEdges = [][2]graph.NodeID{{pad[0], pad[1]}}
		} else {
			flip.AddEdges = [][2]graph.NodeID{{pad[0], pad[1]}}
		}
		if status, _ := postUpdate(flip); status == http.StatusOK {
			padHasEdge = !padHasEdge
		}

		for k := 0; k < 3; k++ {
			q := queries[qi%len(queries)]
			sem := "subgraph"
			if qi%2 == 1 {
				sem = "simulation"
			}
			qi++
			body, err := json.Marshal(QueryRequest{Pattern: q.String(), Sem: sem})
			if err != nil {
				t.Fatal(err)
			}
			cs, cb := postQueryNorm(t, cached.ts.URL, body)
			fs, fb := postQueryNorm(t, fresh.ts.URL, body)
			if cs != fs {
				t.Fatalf("round %d q%d/%s: status %d cached vs %d fresh", round, qi, sem, cs, fs)
			}
			if !bytes.Equal(cb, fb) {
				t.Fatalf("round %d q%d/%s: responses diverged\ncached: %s\nfresh:  %s", round, qi, sem, cb, fb)
			}
		}
	}

	cc := cacheCounters(t, cached)
	if cc.Revalidated == 0 {
		t.Fatalf("cached server never promoted an entry: %+v", cc)
	}
	if cc.Recomputed == 0 {
		t.Fatalf("cached server never recomputed a stale entry: %+v", cc)
	}
	fc := cacheCounters(t, fresh)
	if fc.Hits != 0 || fc.Revalidated != 0 || fc.Recomputed != 0 || fc.RingOutrun != 0 || fc.Misses != 0 {
		t.Fatalf("disabled cache reported activity: %+v", fc)
	}
}
