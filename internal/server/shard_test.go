package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/runtime"
	"boundedg/internal/shard"
	"boundedg/internal/workload"
)

// shardSweep mirrors the shard package's helper: BOUNDEDG_SHARDS=N
// (CI's sharded matrix) restricts the differential sweep to one count.
func shardSweep(t *testing.T, def []int) []int {
	t.Helper()
	s := os.Getenv("BOUNDEDG_SHARDS")
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 || n > shard.MaxShards {
		t.Fatalf("bad BOUNDEDG_SHARDS %q", s)
	}
	return []int{n}
}

// newShardedEnv builds a server whose engine reads a sharded router over
// d's graph, split n ways. d is consumed (partitioned).
func newShardedEnv(t *testing.T, d *workload.Dataset, n int, cfg Config) *env {
	t.Helper()
	idx := access.BuildUnchecked(d.G, d.Schema)
	r, err := shard.New(d.G, idx, n)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := runtime.NewFromRouter(r, runtime.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, d.In, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Shutdown(context.Background())
		ts.Close()
		eng.Close()
	})
	return &env{d: d, eng: eng, srv: srv, ts: ts}
}

// postRaw posts body to path and returns the status plus the response
// body normalized for sharded/unsharded comparison: volatile fields
// (elapsed time, the sharded-only epoch vector and per-shard log offsets)
// are dropped and the JSON re-marshaled with sorted keys, so two
// semantically identical responses compare byte-equal.
func postRaw(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("response is not JSON (status %d): %v\n%s", resp.StatusCode, err, raw)
	}
	delete(v, "elapsed_ms")
	delete(v, "vector")
	delete(v, "shard_log_offsets")
	delete(v, "log_offset")
	norm, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, norm
}

// shardUpdateDelta mirrors the shard package's update generator: inserts
// wired to random neighbors, fresh edges, edge deletions, node deletions
// — including deltas the bounds or structural checks must reject.
func shardUpdateDelta(r *rand.Rand, g *graph.Graph) *graph.Delta {
	live := g.NodeList()
	labels := g.Labels()
	d := &graph.Delta{}
	switch r.Intn(4) {
	case 0:
		d.AddNodes = []graph.NodeSpec{{Label: labels[r.Intn(len(labels))]}}
		for k := 0; k < 1+r.Intn(3); k++ {
			other := live[r.Intn(len(live))]
			if r.Intn(2) == 0 {
				d.AddEdges = append(d.AddEdges, [2]graph.NodeID{graph.NewNodeRef(0), other})
			} else {
				d.AddEdges = append(d.AddEdges, [2]graph.NodeID{other, graph.NewNodeRef(0)})
			}
		}
	case 1:
		d.AddEdges = [][2]graph.NodeID{{live[r.Intn(len(live))], live[r.Intn(len(live))]}}
	case 2:
		for tries := 0; tries < 10; tries++ {
			v := live[r.Intn(len(live))]
			if outs := g.Out(v); len(outs) > 0 {
				d.DelEdges = [][2]graph.NodeID{{v, outs[r.Intn(len(outs))]}}
				break
			}
		}
	case 3:
		d.DelNodes = []graph.NodeID{live[r.Intn(len(live))]}
	}
	return d
}

// TestServerShardedDifferential drives identical query and update streams
// through two live servers over the same dataset — one backed by an
// unsharded store, one by a router at several shard counts — and demands
// byte-identical responses (status and normalized JSON body) for every
// request: query answers, access stats, cache hits, update verdicts
// (accepted epochs, assigned IDs, touched rows, 409/422 rejection bodies)
// across all three workload generators.
func TestServerShardedDifferential(t *testing.T) {
	gens := []func(float64, int64) *workload.Dataset{workload.IMDb, workload.DBpedia, workload.WebBase}
	cfg := Config{EnableUpdates: true, MaxLimit: 1 << 20, DefaultLimit: 1 << 20}
	for _, gen := range gens {
		for _, n := range shardSweep(t, []int{1, 2, 4, 7}) {
			d := gen(0.08, 3)
			t.Run(fmt.Sprintf("%s/shards=%d", d.Name, n), func(t *testing.T) {
				base := newEnv(t, gen(0.08, 3), cfg)
				sharded := newShardedEnv(t, d, n, cfg)

				queries := workload.DefaultQueryGen.Generate(base.d, 8, 4)
				if len(queries) == 0 {
					t.Fatal("no queries generated")
				}
				rng := rand.New(rand.NewSource(11))
				qi := 0
				compare := func(path string, body []byte) {
					t.Helper()
					us, ub := postRaw(t, base.ts.URL+path, body)
					ss, sb := postRaw(t, sharded.ts.URL+path, body)
					if us != ss {
						t.Fatalf("%s: status %d unsharded vs %d sharded\nunsharded: %s\nsharded:   %s", path, us, ss, ub, sb)
					}
					if !bytes.Equal(ub, sb) {
						t.Fatalf("%s: responses diverged\nunsharded: %s\nsharded:   %s", path, ub, sb)
					}
				}
				for round := 0; round < 30; round++ {
					// One update per round, generated against the unsharded
					// server's current graph so references stay live.
					snap := base.eng.Store().Acquire()
					delta := shardUpdateDelta(rng, snap.G)
					snap.Release()
					var dbuf bytes.Buffer
					if err := delta.WriteJSON(&dbuf, base.d.In); err != nil {
						t.Fatal(err)
					}
					compare("/update", dbuf.Bytes())

					// A couple of queries per round, cycling semantics; the
					// second posting of a query exercises cache-hit parity.
					for k := 0; k < 2; k++ {
						q := queries[qi%len(queries)]
						sem := "subgraph"
						if qi%2 == 1 {
							sem = "simulation"
						}
						qi++
						body, err := json.Marshal(QueryRequest{Pattern: q.String(), Sem: sem})
						if err != nil {
							t.Fatal(err)
						}
						compare("/query", body)
					}
				}
			})
		}
	}
}
