package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"boundedg/internal/access"
	"boundedg/internal/runtime"
	"boundedg/internal/sub"
	"boundedg/internal/workload"
)

// FuzzSubscribeRequest fuzzes the subscription registration surface and
// the event-frame round trip behind it: arbitrary request bodies must
// map to a known status class (never a panic or a 5xx other than the
// documented ones), and every accepted registration must open a stream
// whose first frame is a well-formed, foldable init event. Pattern
// seeds are drawn from the same hand-written corpus FuzzParsePattern
// starts from, wrapped in request JSON.
func FuzzSubscribeRequest(f *testing.F) {
	for _, p := range []string{
		"",
		"u1: movie",
		"u1: award\nu2: year\nu3: movie\nu3 -> u1, u2",
		"a: x (= \"UK\")\nb: y (> -42)\na -> b",
		"u1: movie\nu1 -> u1",
		"x: (>= 1)",
		"x: l (>= 1",
		"-> b",
		"q: v (= \"quote \\\" in string\")",
		"u1: movie\r\nu2: year\r\nu1 -> u2\r\n",
	} {
		body, err := json.Marshal(SubscribeRequest{Pattern: p})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"pattern": "u1: movie", "sem": "subgraph", "limit": 5}`))
	f.Add([]byte(`{"pattern": "u1: movie", "sem": "simulation"}`))
	f.Add([]byte(`{"pattern": "u1: movie", "limit": -3}`))
	f.Add([]byte(`{"pattern": "u1: movie", "limit": 1e9}`))
	f.Add([]byte(`{"pattern": "u1: movie", "unknown": 1}`))
	f.Add([]byte(`{"pattern": 7}`))

	d := workload.IMDb(0.03, 5)
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		f.Fatalf("index build: %v", viols[0])
	}
	eng, err := runtime.New(d.G, idx, runtime.Config{Workers: 2})
	if err != nil {
		f.Fatal(err)
	}
	srv := New(eng, d.In, Config{
		MaxLimit:        1000,
		DefaultLimit:    100,
		MaxSubs:         1 << 20,
		Timeout:         2 * time.Second,
		MaxSteps:        50_000,
		SubHeartbeat:    time.Hour, // only the init frame is read
		SubWriteTimeout: 2 * time.Second,
	})
	ts := httptest.NewServer(srv.Handler())
	f.Cleanup(func() {
		srv.Shutdown(context.Background())
		ts.Close()
		eng.Close()
	})

	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := http.Post(ts.URL+"/subscribe", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge,
			http.StatusTooManyRequests, http.StatusServiceUnavailable:
			io.Copy(io.Discard, resp.Body)
			return
		default:
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d outside the documented classes: %s", resp.StatusCode, raw)
		}
		var sr SubscribeResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatalf("accepted registration with undecodable response: %v", err)
		}
		if sr.Limit < 1 || sr.Limit > 1000 {
			t.Fatalf("limit %d escaped the [1, MaxLimit] clamp", sr.Limit)
		}
		if want := fmt.Sprintf("/subscribe/%d/events", sr.ID); sr.Events != want {
			t.Fatalf("events path %q, want %q", sr.Events, want)
		}

		// The stream must either refuse with a documented evaluation
		// status or open with a foldable init frame.
		sresp, err := http.Get(ts.URL + sr.Events)
		if err != nil {
			t.Fatal(err)
		}
		switch sresp.StatusCode {
		case http.StatusOK:
			ev, err := sub.NewDecoder(sresp.Body).Next()
			if err != nil {
				t.Fatalf("first frame: %v", err)
			}
			if ev.Type != sub.TypeInit {
				t.Fatalf("stream opened with %q, want init", ev.Type)
			}
			if _, err := sub.Fold(nil, ev); err != nil {
				t.Fatalf("init frame does not fold: %v", err)
			}
			if len(ev.Rows) > sr.Limit {
				t.Fatalf("init carries %d rows over the %d limit", len(ev.Rows), sr.Limit)
			}
		case http.StatusUnprocessableEntity, http.StatusGatewayTimeout,
			http.StatusServiceUnavailable, http.StatusInternalServerError:
			io.Copy(io.Discard, sresp.Body)
		default:
			t.Fatalf("stream status %d outside the documented classes", sresp.StatusCode)
		}
		sresp.Body.Close()

		// Free the slot so long fuzz runs never exhaust the cap.
		dreq, err := http.NewRequest(http.MethodDelete, ts.URL+fmt.Sprintf("/subscribe/%d", sr.ID), nil)
		if err != nil {
			t.Fatal(err)
		}
		dresp, err := http.DefaultClient.Do(dreq)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, dresp.Body)
		dresp.Body.Close()
	})
}

// TestSubscribeRequestRegressions promotes the interesting fuzz corpus
// shapes to named, always-run cases: each body must land in its exact
// status class.
func TestSubscribeRequestRegressions(t *testing.T) {
	d := workload.IMDb(0.03, 5)
	cfg := subTestConfig()
	cfg.DefaultLimit = 100
	cfg.MaxLimit = 1000
	e := newEnv(t, d, cfg)

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"empty pattern", `{"pattern": ""}`, http.StatusBadRequest},
		{"empty object", `{}`, http.StatusBadRequest},
		{"non-json", `not json`, http.StatusBadRequest},
		{"pattern wrong type", `{"pattern": 7}`, http.StatusBadRequest},
		{"limit wrong type", `{"pattern": "u1: movie", "limit": "ten"}`, http.StatusBadRequest},
		{"float limit", `{"pattern": "u1: movie", "limit": 1e9}`, http.StatusBadRequest},
		{"unknown field", `{"pattern": "u1: movie", "unknown": 1}`, http.StatusBadRequest},
		{"simulation sem", `{"pattern": "u1: movie", "sem": "simulation"}`, http.StatusBadRequest},
		{"unterminated predicate", `{"pattern": "x: l (>= 1"}`, http.StatusBadRequest},
		{"edge without source", `{"pattern": "-> b"}`, http.StatusBadRequest},
		{"unknown label", `{"pattern": "u: label_the_interner_has_never_seen"}`, http.StatusBadRequest},
		{"crlf pattern accepted", "{\"pattern\": \"u1: movie\\r\\nu2: year\\r\\nu1 -> u2\\r\\n\"}", http.StatusOK},
		{"negative limit adopts default", `{"pattern": "u1: movie", "limit": -3}`, http.StatusOK},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(e.ts.URL+"/subscribe", "application/json", bytes.NewReader([]byte(c.body)))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != c.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, c.status, raw)
			}
			if c.status == http.StatusOK {
				var sr SubscribeResponse
				if err := json.Unmarshal(raw, &sr); err != nil {
					t.Fatal(err)
				}
				if sr.Limit != 100 && c.name == "negative limit adopts default" {
					t.Fatalf("limit %d, want the 100 default", sr.Limit)
				}
			}
		})
	}

	// Oversized body: the same MaxBytesReader guard as /query.
	big := fmt.Sprintf(`{"pattern": %q}`, "u: "+string(bytes.Repeat([]byte{'a'}, 2<<20)))
	resp, err := http.Post(e.ts.URL+"/subscribe", "application/json", bytes.NewReader([]byte(big)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d, want 400", resp.StatusCode)
	}
}
