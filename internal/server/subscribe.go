package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"boundedg/internal/core"
	"boundedg/internal/runtime"
	"boundedg/internal/sub"
)

// Subscription endpoints: POST /subscribe registers a continuous query
// through the same DSL/validation path as /query, GET
// /subscribe/{id}/events streams its answer changes as server-sent
// events (one init, then diff/heartbeat/resync frames; see
// internal/sub.Event), and DELETE /subscribe/{id} removes it. See the
// continuous-queries section of docs/ARCHITECTURE.md for the protocol
// invariants and docs/OPERATIONS.md for a curl walkthrough.

// SubscribeRequest is the body of POST /subscribe.
type SubscribeRequest struct {
	// Pattern is the continuous query in the text DSL of
	// internal/pattern.Parse.
	Pattern string `json:"pattern"`
	// Sem must be "subgraph" (or empty): diffs over the simulation
	// relation are not supported.
	Sem string `json:"sem,omitempty"`
	// Limit caps the subscription's answer like QueryRequest.Limit. A
	// truncated answer still streams consistent diffs, but which rows it
	// holds is search-order dependent; subscribe below the limit for
	// oracle-comparable streams.
	Limit int `json:"limit,omitempty"`
}

// SubscribeResponse is the body of a successful POST /subscribe.
type SubscribeResponse struct {
	// ID names the subscription in the other endpoints.
	ID uint64 `json:"id"`
	// Epoch is the published version at registration time; the stream's
	// init event carries the authoritative epoch of the first answer.
	Epoch uint64 `json:"epoch"`
	// Vars lists the pattern's node names: the column order of every
	// row in the stream's events.
	Vars []string `json:"vars"`
	// Limit echoes the effective (clamped) match cap.
	Limit int `json:"limit"`
	// Events is the path of the subscription's event stream.
	Events string `json:"events"`
}

// errSubsDisabled is the refusal on every subscription endpoint when
// Config.MaxSubs is negative.
var errSubsDisabled = errors.New("subscriptions are disabled (start the daemon with -max-subs > 0)")

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if s.hub == nil {
		s.writeError(w, http.StatusNotFound, errSubsDisabled)
		return
	}
	var req SubscribeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	sem, err := parseSem(req.Sem)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if sem != core.Subgraph {
		s.writeError(w, http.StatusBadRequest, errors.New("subscriptions require subgraph semantics"))
		return
	}
	limit := req.Limit
	if limit <= 0 {
		limit = s.cfg.DefaultLimit
	}
	if limit > s.cfg.MaxLimit {
		limit = s.cfg.MaxLimit
	}
	q, _, err := s.normalize(req.Pattern)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	sb, err := s.hub.Register(q, limit)
	if err != nil {
		if errors.Is(err, sub.ErrTooManySubs) {
			s.writeError(w, http.StatusTooManyRequests, err)
		} else {
			s.writeError(w, http.StatusServiceUnavailable, err)
		}
		return
	}
	resp := SubscribeResponse{
		ID:     sb.ID(),
		Epoch:  s.eng.Version(),
		Limit:  limit,
		Events: fmt.Sprintf("/subscribe/%d/events", sb.ID()),
	}
	for _, u := range q.Nodes() {
		resp.Vars = append(resp.Vars, q.Name(u))
	}
	s.served.Add(1)
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	if s.hub == nil {
		s.writeError(w, http.StatusNotFound, errSubsDisabled)
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad subscription id: %w", err))
		return
	}
	if !s.hub.Unsubscribe(id) {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no subscription %d", id))
		return
	}
	s.served.Add(1)
	s.writeJSON(w, http.StatusOK, map[string]uint64{"id": id})
}

// handleSubscribeEvents serves one subscription's event stream. A
// reconnect (second GET for the same id) preempts the previous stream
// and opens with a fresh init event, so a consumer that lost its
// connection mid-frame converges again by folding the new stream.
//
// The consumer must never stall the rest of the daemon: each frame
// write runs under SubWriteTimeout, the dispatcher's queue for this
// subscription is bounded (overflow surfaces here as a resync event),
// and Shutdown's drain signal is folded into the request context so a
// graceful stop ends the stream at a frame boundary.
func (s *Server) handleSubscribeEvents(w http.ResponseWriter, r *http.Request) {
	if s.hub == nil {
		s.writeError(w, http.StatusNotFound, errSubsDisabled)
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad subscription id: %w", err))
		return
	}
	sb, ok := s.hub.Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no subscription %d", id))
		return
	}
	gen, ok := sb.Attach()
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("subscription %d is closed", id))
		return
	}
	defer sb.Detach(gen)

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-s.draining:
			cancel()
		case <-ctx.Done():
		}
	}()

	// Evaluate the initial answer before committing the status line, so
	// a failing first evaluation still reports a real error status.
	init, err := sb.FullEval(ctx)
	if err != nil {
		switch {
		case errors.Is(err, core.ErrNotBounded):
			s.writeError(w, http.StatusUnprocessableEntity, err)
		case errors.Is(err, context.DeadlineExceeded):
			s.writeError(w, http.StatusGatewayTimeout, errors.New("subscription evaluation deadline exceeded"))
		case errors.Is(err, context.Canceled), errors.Is(err, runtime.ErrClosed):
			s.writeError(w, http.StatusServiceUnavailable, err)
		default:
			s.writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	init.Type = sub.TypeInit

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	write := func(ev sub.Event) error {
		if err := rc.SetWriteDeadline(time.Now().Add(s.cfg.SubWriteTimeout)); err != nil {
			return err
		}
		if err := sub.WriteEvent(w, ev); err != nil {
			return err
		}
		return rc.Flush()
	}
	s.served.Add(1)
	if write(init) != nil {
		return
	}
	hb := time.NewTicker(s.cfg.SubHeartbeat)
	defer hb.Stop()
	heartbeatDue := false
	for {
		// Read the certified mark BEFORE draining the queue: the
		// dispatcher advances it only after enqueueing the diff that
		// certifies it, so a mark read here is either covered by the
		// events about to drain or claims an epoch that changed nothing.
		cert := sb.Certified()
		evs, needResync, ok := sb.TakeEvents(gen)
		if !ok {
			return // preempted by a newer stream for this subscription
		}
		for _, ev := range evs {
			if write(ev) != nil {
				return
			}
		}
		if needResync {
			rv, err := sb.FullEval(ctx)
			if err != nil {
				return
			}
			rv.Type = sub.TypeResync
			if write(rv) != nil {
				return
			}
			continue
		}
		if heartbeatDue && len(evs) == 0 {
			if write(sub.Event{Type: sub.TypeHeartbeat, Epoch: cert}) != nil {
				return
			}
		}
		heartbeatDue = false
		select {
		case <-sb.Poke():
		case <-hb.C:
			heartbeatDue = true
		case <-ctx.Done():
			return
		case <-sb.Closed():
			return
		}
	}
}
