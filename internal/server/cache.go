package server

import (
	"container/list"
	"sync"
)

// lru is a small mutex-guarded LRU map. The server keeps two: the result
// cache (normalized pattern + query args -> cacheEntry) and the
// parsed-pattern cache (normalized pattern -> *pattern.Pattern, so repeat
// queries present the engine with a stable pointer and hit its plan
// cache). Hit/miss accounting lives with the caller — only the server
// knows whether a stale result entry revalidated or recomputed.
type lru struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

// newLRU returns an LRU holding at most cap entries; cap <= 0 disables
// the cache (every Get misses, Put is a no-op).
func newLRU(cap int) *lru {
	return &lru{cap: cap, order: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value for key, marking it most recently used.
func (c *lru) Get(key string) (any, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts (or refreshes) key, evicting the least recently used entry
// when the cache is full.
func (c *lru) Put(key string, val any) {
	c.PutIf(key, val, func(any) bool { return true })
}

// PutIf inserts key if absent; if key is present, the existing value is
// replaced only when replace(existing) says so — the decision runs under
// the cache lock, so a slow writer racing a newer one cannot clobber it
// (the server replaces result entries only by strictly newer epoch).
// Either way the entry is marked most recently used.
func (c *lru) PutIf(key string, val any, replace func(existing any) bool) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		if replace(el.Value.(*lruEntry).val) {
			el.Value.(*lruEntry).val = val
		}
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *lru) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
