package server

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// lru is a small mutex-guarded LRU map. The server keeps two: the result
// cache (normalized pattern + query args -> response) and the
// parsed-pattern cache (normalized pattern -> *pattern.Pattern, so repeat
// queries present the engine with a stable pointer and hit its plan
// cache).
type lru struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses atomic.Uint64
}

type lruEntry struct {
	key string
	val any
}

// newLRU returns an LRU holding at most cap entries; cap <= 0 disables
// the cache (every Get misses, Put is a no-op).
func newLRU(cap int) *lru {
	return &lru{cap: cap, order: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value for key, marking it most recently used.
// A disabled cache neither hits nor counts misses — its counters stay
// zero so /stats reads as "no cache", not "cold cache".
func (c *lru) Get(key string) (any, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts (or refreshes) key, evicting the least recently used entry
// when the cache is full.
func (c *lru) Put(key string, val any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *lru) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Counters returns the cumulative hit and miss counts.
func (c *lru) Counters() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
