// Package server exposes a runtime.Engine over HTTP/JSON: POST a pattern
// in the qbound text DSL, get its bounded-evaluation answer back. Because
// bounded evaluation makes per-query cost independent of |G| (the paper's
// guarantee), one process can serve many concurrent clients against a big
// graph; the server adds the production plumbing the engine itself does
// not carry — per-request deadlines and cancellation threaded down into
// core.ExecWith, an LRU result cache keyed by the normalized pattern and
// query arguments, and graceful shutdown.
//
// When updates are enabled the server is a read/write store: POST /update
// applies a graph.Delta through the engine's epoch-versioned store,
// publishing a new epoch snapshot that subsequent queries see
// immediately, while queries already in flight keep the epoch they were
// submitted under. Cached results are epoch-surviving: each entry carries
// the read footprint of its execution (core.Footprint), and an entry
// stale by epoch is revalidated against the store's recent-deltas ring —
// if the epochs since it was computed changed nothing it read, it is
// promoted in place and served without re-execution (see the cache
// section of docs/ARCHITECTURE.md for the invariant).
//
// Endpoints:
//
//	POST /query    evaluate a pattern (JSON body, see QueryRequest)
//	POST /update   apply a graph delta (JSON body, see graph.ReadDeltaJSON)
//	GET  /stats    engine counters, cache hit/miss, epoch, update counters
//	GET  /healthz  liveness probe
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/graph"
	"boundedg/internal/hist"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
	"boundedg/internal/runtime"
	"boundedg/internal/store"
	"boundedg/internal/sub"
	"boundedg/internal/wal"
)

// Config tunes a Server. The zero value picks sensible defaults.
type Config struct {
	// DefaultLimit is the match cap applied when a request does not set
	// one. Defaults to 100.
	DefaultLimit int
	// MaxLimit clamps per-request limits. Defaults to 10000.
	MaxLimit int
	// Timeout is the per-query evaluation deadline. A request may ask
	// for a shorter deadline, never a longer one. Defaults to 10s;
	// negative disables the server-side deadline.
	Timeout time.Duration
	// MaxSteps caps the subgraph search (VF2 search-tree visits) per
	// query. The matchers do not poll the context — the deadline stops
	// the fetch phase and is re-checked at the match boundary — so this
	// budget is what bounds a pathological match inside a fetched GQ.
	// Defaults to 5,000,000 (well under a second); negative disables.
	MaxSteps int
	// CacheSize is the number of result-cache entries. Defaults to 512;
	// negative disables the cache.
	CacheSize int
	// EnableUpdates turns on POST /update (the boundedgd -mutable flag).
	// Off by default: a read-only deployment must not accept writes.
	EnableUpdates bool
	// WAL, when set on an unsharded durable daemon, turns on the
	// replication endpoints: GET /wal/checkpoint serves the current
	// checkpoint snapshot and GET /wal/stream serves committed log
	// records from an offset, then tails the live log (see
	// docs/OPERATIONS.md). Sharded directories are refused with 501 —
	// scatter/gather replication is not implemented.
	WAL *wal.Dir
	// Follower marks this server a read-only replica (boundedgd -follow):
	// POST /update is refused with a pointer at the primary.
	Follower bool
	// ReplicationStats, when set (follower mode), contributes the
	// "replication" block of GET /stats.
	ReplicationStats func() ReplicationStats
	// MaxSubs caps concurrent subscriptions (POST /subscribe, the
	// boundedgd -max-subs flag). 0 means the default of 64; negative
	// disables the subscription endpoints entirely.
	MaxSubs int
	// SubQueueCap bounds each subscription's pending event queue; a
	// consumer that falls further behind loses the incremental stream
	// and is forced through a resync event. Defaults to 64.
	SubQueueCap int
	// SubHeartbeat is the idle heartbeat interval on subscription event
	// streams. Defaults to 15s.
	SubHeartbeat time.Duration
	// SubWriteTimeout bounds each event-frame write, so a consumer that
	// stops reading cannot pin a stream handler (and a draining server)
	// indefinitely. Defaults to 5s.
	SubWriteTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.DefaultLimit <= 0 {
		c.DefaultLimit = 100
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 10000
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 5_000_000
	}
	if c.MaxSteps < 0 {
		c.MaxSteps = 0 // match.SubgraphOptions: 0 = unlimited
	}
	if c.CacheSize == 0 {
		c.CacheSize = 512
	}
	if c.SubHeartbeat <= 0 {
		c.SubHeartbeat = 15 * time.Second
	}
	if c.SubWriteTimeout <= 0 {
		c.SubWriteTimeout = 5 * time.Second
	}
	return c
}

// patternCacheSize bounds the normalized-text -> *pattern.Pattern cache.
// Reusing parsed patterns gives the engine a stable pointer, so its plan
// cache (keyed by pointer identity) hits on repeat queries.
const patternCacheSize = 1024

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	// Pattern is the query in the text DSL of internal/pattern.Parse.
	Pattern string `json:"pattern"`
	// Sem selects the semantics: "subgraph" (default) or "simulation".
	Sem string `json:"sem,omitempty"`
	// Limit caps the number of matches returned (subgraph semantics).
	// 0 means the server default; values above the server maximum are
	// clamped.
	Limit int `json:"limit,omitempty"`
	// TimeoutMS lowers the evaluation deadline for this request, in
	// milliseconds. It can never raise it above the server's timeout.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// QueryResponse is the body of a successful POST /query.
type QueryResponse struct {
	// Sem echoes the semantics the query ran under.
	Sem string `json:"sem"`
	// Vars lists the pattern's node names, defining the column order of
	// Matches rows.
	Vars []string `json:"vars"`
	// Matches holds subgraph matches: Matches[k][i] is the data node
	// matched to Vars[i] in the k-th match, sorted lexicographically so
	// responses are deterministic and cacheable.
	Matches [][]graph.NodeID `json:"matches,omitempty"`
	// Count is the number of matches found; the search stops at the
	// limit, so use Complete (not Count vs len(Matches)) to detect
	// truncation.
	Count int `json:"count"`
	// Complete reports whether the search exhausted the match space
	// (false when the limit stopped it early).
	Complete bool `json:"complete"`
	// Sim holds the maximum simulation relation: node name -> sorted
	// data nodes (simulation semantics only).
	Sim map[string][]graph.NodeID `json:"sim,omitempty"`
	// Pairs is the size of the simulation relation.
	Pairs int `json:"pairs,omitempty"`
	// Stats carries the bounded-evaluation access accounting.
	Stats *core.ExecStats `json:"stats,omitempty"`
	// Vector is the per-shard epoch vector the query's consistent cut
	// pinned (sharded daemons only; see boundedgd -shards).
	Vector []uint64 `json:"vector,omitempty"`
	// Cached reports whether this response was served from the result
	// cache.
	Cached bool `json:"cached"`
	// ElapsedMS is the server-side handling time of this request.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// ErrorResponse is the body of every non-2xx response. Violations is set
// only on 422s from POST /update, listing every constraint the delta
// would have broken.
type ErrorResponse struct {
	Error      string   `json:"error"`
	Violations []string `json:"violations,omitempty"`
}

// UpdateResponse is the body of a successful POST /update.
type UpdateResponse struct {
	// Epoch is the epoch this delta published; queries submitted from now
	// on observe it.
	Epoch uint64 `json:"epoch"`
	// NewIDs are the node IDs assigned to the delta's add_nodes, in
	// order (cite them in follow-up deltas).
	NewIDs []graph.NodeID `json:"new_ids,omitempty"`
	// TouchedRows counts the rows whose adjacency this update changed
	// (edge endpoints, deleted nodes and their neighbors, inserted
	// nodes) — the incremental maintenance work, independent of |G|.
	TouchedRows int `json:"touched_rows"`
	// LogOffset is the write-ahead-log offset this update's record ends
	// at — the update is durable through it (boundedgd -wal). Omitted on
	// a daemon without a WAL.
	LogOffset int64 `json:"log_offset,omitempty"`
	// Vector is the per-shard epoch vector this update published
	// (sharded daemons only); Epoch is then the global sequence number.
	Vector []uint64 `json:"vector,omitempty"`
	// ShardLogOffsets holds each shard's WAL offset for this update's
	// envelope records (sharded daemons with -wal; zero entries for
	// shards the delta did not touch).
	ShardLogOffsets []int64 `json:"shard_log_offsets,omitempty"`
	// ElapsedMS is the server-side handling time of this request.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// UpdateStats reports the store's update counters in /stats. Batches
// counts group commits: under concurrent write bursts it drops below
// Applied, each batch publishing one epoch for many deltas.
type UpdateStats struct {
	Enabled           bool    `json:"enabled"`
	Applied           uint64  `json:"applied"`
	Batches           uint64  `json:"batches"`
	RejectedViolation uint64  `json:"rejected_violation"`
	RejectedError     uint64  `json:"rejected_error"`
	TouchedRows       uint64  `json:"touched_rows"`
	LastApplyMS       float64 `json:"last_apply_ms"`
	// ShardTxns counts shard write transactions begun (sharded daemons
	// only): ShardTxns/Batches is the mean commit fan-out — near 1 when
	// the participant-only fast path is doing its job on a well-
	// partitioned write stream.
	ShardTxns uint64 `json:"shard_txns,omitempty"`
}

// WALStats reports the durability subsystem's state in /stats. Offset,
// Records and Syncs describe the current log (they reset when a
// checkpoint rotates it); LastCheckpointEpoch is the epoch recovery
// would replay from.
type WALStats struct {
	Enabled             bool   `json:"enabled"`
	Offset              int64  `json:"offset"`
	Records             uint64 `json:"records"`
	Syncs               uint64 `json:"syncs"`
	LastCheckpointEpoch uint64 `json:"last_checkpoint_epoch"`
}

// CacheStats reports the result cache's state in /stats. Hits counts
// every request served from the cache without re-execution; Revalidated
// is the subset of Hits where the entry was stale by epoch and promoted
// after its footprint proved disjoint from the changes. Misses counts
// requests that executed; Recomputed and RingOutrun are the subsets that
// found a stale entry but could not promote it — the footprint
// intersected the changes (or had overflowed), or the recent-deltas ring
// no longer covered the span. All counters stay zero on a disabled cache.
type CacheStats struct {
	Size        int    `json:"size"`
	Capacity    int    `json:"capacity"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Revalidated uint64 `json:"revalidated"`
	Recomputed  uint64 `json:"recomputed"`
	RingOutrun  uint64 `json:"ring_outrun"`
}

// LatencyStats reports the server-side handling-time histograms per op
// class in /stats — every /query and /update request observed from body
// read to response write (errors included), digested to p50/p95/p99/max.
// Load generators scrape this block to separate server time from
// client-side queueing and transport.
type LatencyStats struct {
	Query  hist.Summary `json:"query"`
	Update hist.Summary `json:"update"`
}

// ShardStats is one shard's block in a sharded daemon's /stats: its
// published epoch (the epoch-vector entry), its commit queue depth, and
// its own write-ahead log's figures.
type ShardStats struct {
	Shard      int      `json:"shard"`
	Epoch      uint64   `json:"epoch"`
	QueueDepth int      `json:"queue_depth"`
	WAL        WALStats `json:"wal"`
}

// StatsResponse is the body of GET /stats. On a sharded daemon
// (boundedgd -shards > 1), Epoch is the global sequence number, Vector
// the per-shard epoch vector, and Shards the per-shard breakdown; the
// top-level WAL block then only reports Enabled (offsets are per shard).
type StatsResponse struct {
	UptimeSec     float64            `json:"uptime_sec"`
	Epoch         uint64             `json:"epoch"`
	Vector        []uint64           `json:"vector,omitempty"`
	GraphNodes    int                `json:"graph_nodes"`
	GraphEdges    int                `json:"graph_edges"`
	Constraints   int                `json:"constraints"`
	Engine        runtime.Stats      `json:"engine"`
	Cache         CacheStats         `json:"cache"`
	Updates       UpdateStats        `json:"updates"`
	WAL           WALStats           `json:"wal"`
	Latency       LatencyStats       `json:"latency"`
	Shards        []ShardStats       `json:"shards,omitempty"`
	Replication   *ReplicationStats  `json:"replication,omitempty"`
	Subscriptions *SubscriptionStats `json:"subscriptions,omitempty"`
	Served        uint64             `json:"served"`
	Errors        uint64             `json:"errors"`
}

// SubscriptionStats reports the subscription hub's counters in /stats
// (omitted when subscriptions are disabled). Skipped counts epoch
// publications a subscription ignored because its footprint proved the
// answer unchanged; Skipped dwarfing Evals means the dispatcher is
// doing its job. Resyncs counts dropped incremental streams — slow
// consumers forced through a full-answer resync event.
type SubscriptionStats struct {
	Active  int    `json:"active"`
	Events  uint64 `json:"events"`
	Resyncs uint64 `json:"resyncs"`
	Skipped uint64 `json:"skipped"`
	Evals   uint64 `json:"evals"`
}

// Server serves bounded pattern queries over HTTP. Construct with New;
// either mount Handler on an existing server or use ListenAndServe plus
// Shutdown for the managed lifecycle.
type Server struct {
	eng *runtime.Engine
	in  *graph.Interner
	cfg Config

	results  *lru // cacheKey -> *QueryResponse
	patterns *lru // canonical text -> *pattern.Pattern

	// hub dispatches epoch publications to subscriptions; nil when
	// Config.MaxSubs is negative (subscriptions disabled).
	hub *sub.Hub

	mux   *http.ServeMux
	hs    *http.Server
	start time.Time

	// draining is closed by Shutdown. A graceful http.Server.Shutdown
	// waits for in-flight requests but never cancels their contexts, so
	// a long-lived /wal/stream tail would stall the drain for its whole
	// budget; the stream loop selects on this to end at a chunk boundary.
	draining  chan struct{}
	drainOnce sync.Once

	served, errors      atomic.Uint64
	latQuery, latUpdate hist.H

	// Result-cache accounting (see CacheStats). Hits/misses live here
	// rather than in the LRU because only the serving path knows whether
	// a stale entry revalidated or had to recompute.
	cacheHits, cacheMisses            atomic.Uint64
	cacheReval, cacheRecomp, cacheOut atomic.Uint64
}

// cacheEntry is one result-cache value: the cached response, the epoch
// (or GSN) it is valid at, and the read footprint of the execution that
// produced it. Entries are immutable — promotion to a newer epoch
// replaces the entry, guarded by PutIf so a racing slower writer can
// never roll an entry's epoch back.
type cacheEntry struct {
	resp  *QueryResponse
	epoch uint64
	fp    *core.Footprint
}

// New returns a server over eng. in must be the interner shared by the
// engine's graph and schema, so parsed patterns agree on label identity.
func New(eng *runtime.Engine, in *graph.Interner, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		eng:      eng,
		in:       in,
		cfg:      cfg,
		results:  newLRU(cfg.CacheSize),
		patterns: newLRU(patternCacheSize),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		draining: make(chan struct{}),
	}
	if cfg.MaxSubs >= 0 {
		s.hub = sub.NewHub(eng, sub.Config{
			MaxSubs:  cfg.MaxSubs,
			QueueCap: cfg.SubQueueCap,
			Timeout:  cfg.Timeout,
			MaxSteps: cfg.MaxSteps,
		})
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/update", s.handleUpdate)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/wal/checkpoint", s.handleWALCheckpoint)
	s.mux.HandleFunc("/wal/stream", s.handleWALStream)
	s.mux.HandleFunc("POST /subscribe", s.handleSubscribe)
	s.mux.HandleFunc("GET /subscribe/{id}/events", s.handleSubscribeEvents)
	s.mux.HandleFunc("DELETE /subscribe/{id}", s.handleUnsubscribe)
	s.hs = &http.Server{
		Handler: s.mux,
		// Bound the whole request read, not just the headers: the
		// per-query deadline only starts after the body is decoded, so a
		// trickled body would otherwise pin a handler goroutine forever.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
	}
	return s
}

// Handler returns the server's routing handler, for mounting under
// httptest or an existing mux.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until Shutdown (returning
// http.ErrServerClosed) or a listener error.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve serves on l until Shutdown or a listener error.
func (s *Server) Serve(l net.Listener) error { return s.hs.Serve(l) }

// Shutdown gracefully stops the HTTP side: it stops accepting
// connections, ends any live /wal/stream tails at a chunk boundary, and
// waits (up to ctx) for in-flight requests to finish. In-flight queries
// keep their own deadlines; requests arriving after shutdown are
// refused by the closed listener. The engine is NOT closed here — the
// caller owns it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() {
		close(s.draining)
		if s.hub != nil {
			// Stop the dispatcher and close every subscription; live
			// event streams end at a frame boundary via draining/Closed.
			s.hub.Close()
		}
	})
	return s.hs.Shutdown(ctx)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.errors.Add(1)
	s.writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// maxBodyBytes bounds POST /query bodies; patterns are tiny.
const maxBodyBytes = 1 << 20

// maxRequestTimeoutMS caps client-supplied timeout_ms (24h) so the
// Duration conversion cannot overflow.
const maxRequestTimeoutMS = 24 * 60 * 60 * 1000

// parseSem maps the wire name to core.Semantics.
func parseSem(name string) (core.Semantics, error) {
	switch name {
	case "", "subgraph":
		return core.Subgraph, nil
	case "simulation":
		return core.Simulation, nil
	}
	return 0, fmt.Errorf("unknown semantics %q (want subgraph or simulation)", name)
}

// normalize parses src and returns the canonical parsed pattern: the
// pattern is rendered back to the DSL (normalizing whitespace, comments
// and declaration order) and the canonical text is looked up in the
// pattern cache, so textual variants of the same query share one
// *pattern.Pattern — and therefore one engine plan-cache entry.
//
// Parsing happens against a throwaway interner first: interning is
// permanent, so untrusted label names must never reach the shared
// interner (a public daemon would otherwise leak a map entry per junk
// query for its whole lifetime). Labels unknown to the served graph are
// rejected — no constraint can cover them, so such queries could never
// be answered anyway.
func (s *Server) normalize(src string) (*pattern.Pattern, string, error) {
	probe, err := pattern.Parse(src, graph.NewInterner())
	if err != nil {
		return nil, "", err
	}
	canon := probe.String()
	if v, ok := s.patterns.Get(canon); ok {
		return v.(*pattern.Pattern), canon, nil
	}
	for _, l := range probe.LabelSet() {
		name := probe.Interner().Name(l)
		if _, ok := s.in.Lookup(name); !ok {
			return nil, "", fmt.Errorf("unknown label %q", name)
		}
	}
	q, err := pattern.Parse(src, s.in)
	if err != nil {
		return nil, "", err
	}
	s.patterns.Put(canon, q)
	return q, canon, nil
}

// cacheKey identifies a query by what it asks, not when it was answered:
// the epoch deliberately stays OUT of the key, so an entry computed at an
// older epoch is still found after updates and gets the chance to
// revalidate instead of being recomputed. Staleness is handled at the
// entry level (cacheEntry.epoch plus the freshen path); a pre-update
// answer can never be served at a newer version without the footprint
// check vouching for it.
func cacheKey(canon string, sem core.Semantics, limit int) string {
	return fmt.Sprintf("%d|%d|%s", sem, limit, canon)
}

// freshen decides whether a cached entry may be served at the engine's
// current version. Current entries pass straight through; a stale entry
// is revalidated against the recent-deltas ring: if every epoch since it
// was computed changed nothing in its read footprint (and inserted or
// deleted no node whose label a consulted type-1 entry lists), the answer
// is bit-identical at the new version, so the entry is promoted in place
// — an O(|Δ|) set intersection instead of a re-execution. Promotion is
// refused (recompute instead) when the ring was outrun, the footprint
// overflowed or intersects the changes, or — sharded — the summary
// carries no epoch vector to restamp the response with.
func (s *Server) freshen(key string, ent *cacheEntry) (*QueryResponse, bool) {
	ver := s.eng.Version()
	if ent.epoch >= ver {
		return ent.resp, true
	}
	sum, ok := s.eng.ChangedSince(ent.epoch)
	if !ok {
		s.cacheOut.Add(1)
		return nil, false
	}
	if sum.Epoch < ver || ent.fp == nil || !ent.fp.Disjoint(sum.Rows, sum.Labels) {
		s.cacheRecomp.Add(1)
		return nil, false
	}
	resp := ent.resp
	if s.eng.Router() != nil {
		if sum.Vector == nil {
			// No vector to restamp with — a promoted response must report
			// the exact cut a fresh execution at sum.Epoch would pin.
			s.cacheRecomp.Add(1)
			return nil, false
		}
		v := *ent.resp
		v.Vector = sum.Vector
		resp = &v
	}
	promoted := &cacheEntry{resp: resp, epoch: sum.Epoch, fp: ent.fp}
	s.results.PutIf(key, promoted, func(old any) bool { return old.(*cacheEntry).epoch < sum.Epoch })
	s.cacheReval.Add(1)
	return resp, true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	defer s.latQuery.ObserveSince(started)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	// A misspelled field (say "timeout" for "timeout_ms") must error,
	// not silently run the query under different parameters.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	sem, err := parseSem(req.Sem)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	limit := req.Limit
	if limit <= 0 {
		limit = s.cfg.DefaultLimit
	}
	if limit > s.cfg.MaxLimit {
		limit = s.cfg.MaxLimit
	}
	if sem == core.Simulation {
		// Simulation always returns the full relation; folding the limit
		// out of the cache key stops identical sim queries with different
		// limits from duplicating cache entries.
		limit = 0
	}
	q, canon, err := s.normalize(req.Pattern)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}

	cacheOn := s.cfg.CacheSize > 0
	key := cacheKey(canon, sem, limit)
	if v, ok := s.results.Get(key); ok {
		if cached, ok := s.freshen(key, v.(*cacheEntry)); ok {
			s.cacheHits.Add(1)
			resp := *cached // shallow copy; cached fields are read-only
			resp.Cached = true
			resp.ElapsedMS = float64(time.Since(started)) / float64(time.Millisecond)
			s.served.Add(1)
			s.writeJSON(w, http.StatusOK, resp)
			return
		}
		s.cacheMisses.Add(1)
	} else if cacheOn {
		s.cacheMisses.Add(1)
	}

	// The request context already dies with the client connection; layer
	// the evaluation deadline on top. Cancellation reaches core.ExecWith
	// through the engine, so abandoned requests stop fetching.
	ctx := r.Context()
	timeout := s.cfg.Timeout
	if req.TimeoutMS > 0 {
		// Clamp before converting: a huge timeout_ms would overflow the
		// Duration multiply to a negative value and silently disable the
		// server deadline.
		ms := req.TimeoutMS
		if ms > maxRequestTimeoutMS {
			ms = maxRequestTimeoutMS
		}
		if t := time.Duration(ms) * time.Millisecond; timeout < 0 || t < timeout {
			timeout = t
		}
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	res := s.eng.Eval(ctx, runtime.Query{
		Pattern: q,
		Sem:     sem,
		Sub:     match.SubgraphOptions{StoreMatches: true, MaxMatches: limit, MaxSteps: s.cfg.MaxSteps},
		// The footprint makes the cached result epoch-surviving; without
		// a cache it would be recorded for nothing.
		NeedFootprint: cacheOn,
	})
	if res.Err != nil {
		switch {
		case errors.Is(res.Err, core.ErrNotBounded):
			s.writeError(w, http.StatusUnprocessableEntity, res.Err)
		case errors.Is(res.Err, context.DeadlineExceeded):
			s.writeError(w, http.StatusGatewayTimeout, fmt.Errorf("query deadline exceeded"))
		case errors.Is(res.Err, context.Canceled):
			// The client is gone; the status code is a formality.
			s.writeError(w, http.StatusServiceUnavailable, res.Err)
		case errors.Is(res.Err, runtime.ErrClosed):
			s.writeError(w, http.StatusServiceUnavailable, res.Err)
		default:
			s.writeError(w, http.StatusInternalServerError, res.Err)
		}
		return
	}

	resp := &QueryResponse{Sem: sem.String(), Stats: res.Stats, Vector: res.Vector}
	for _, u := range q.Nodes() {
		resp.Vars = append(resp.Vars, q.Name(u))
	}
	switch sem {
	case core.Subgraph:
		ms := make([][]graph.NodeID, len(res.Sub.Matches))
		for i, m := range res.Sub.Matches {
			ms[i] = append([]graph.NodeID(nil), m...)
		}
		match.SortMatches(ms)
		resp.Matches = ms
		resp.Count = res.Sub.Count
		resp.Complete = res.Sub.Completed
	case core.Simulation:
		resp.Sim = make(map[string][]graph.NodeID, len(resp.Vars))
		for ui, vs := range res.Sim.Sim {
			sorted := append([]graph.NodeID(nil), vs...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			resp.Sim[resp.Vars[ui]] = sorted
		}
		resp.Pairs = res.Sim.Pairs()
		resp.Complete = true
	}
	// Cache tagged with the epoch that actually produced the answer, and
	// only over a strictly older entry: two executions of the same query
	// may race, and the one that pinned the newer epoch must win no
	// matter which writes last.
	if cacheOn {
		ent := &cacheEntry{resp: resp, epoch: res.Epoch, fp: res.Footprint}
		s.results.PutIf(key, ent, func(old any) bool { return old.(*cacheEntry).epoch < res.Epoch })
	}

	out := *resp
	out.ElapsedMS = float64(time.Since(started)) / float64(time.Millisecond)
	s.served.Add(1)
	s.writeJSON(w, http.StatusOK, out)
}

// maxUpdateBodyBytes bounds POST /update bodies; bulk deltas are larger
// than patterns but a batch should still be a batch, not a dataset load.
const maxUpdateBodyBytes = 16 << 20

// handleUpdate applies one graph.Delta through the epoch-versioned store.
// Labels in an ACCEPTED delta are interned into the shared interner:
// unlike /query, /update is a write endpoint whose whole point is
// introducing new labels and nodes, so the permanent interner entry is
// the intended effect. Novel labels in a delta that is rejected (400,
// 409 or 422) are never interned — ReadDeltaJSON stages them on the
// delta and the store commits them only on acceptance — so a rejected
// update leaves the interner exactly as it found it. Deploy /update
// behind write authorization, like any write API.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	defer s.latUpdate.ObserveSince(started)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.cfg.Follower {
		s.writeError(w, http.StatusForbidden, errors.New("this daemon is a read-only follower (-follow); send updates to the primary"))
		return
	}
	if !s.cfg.EnableUpdates {
		s.writeError(w, http.StatusForbidden, errors.New("updates are disabled (start the daemon with -mutable)"))
		return
	}
	d, err := graph.ReadDeltaJSON(http.MaxBytesReader(w, r.Body, maxUpdateBodyBytes), s.in)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.eng.ApplyDelta(d)
	if err != nil {
		var verr *access.ViolationError
		switch {
		case errors.As(err, &verr):
			// The delta would break an access constraint; the store
			// rejected it atomically — graph and indexes are untouched.
			msgs := make([]string, len(verr.Violations))
			for i, v := range verr.Violations {
				msgs[i] = v.Error()
			}
			s.errors.Add(1)
			s.writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error(), Violations: msgs})
		case errors.Is(err, store.ErrClosed):
			s.writeError(w, http.StatusServiceUnavailable, err)
		default:
			// Structural conflict: a referenced node or edge does not
			// exist (or already exists) in the current epoch.
			s.writeError(w, http.StatusConflict, err)
		}
		return
	}
	s.served.Add(1)
	s.writeJSON(w, http.StatusOK, UpdateResponse{
		Epoch:           res.Epoch,
		NewIDs:          res.NewIDs,
		TouchedRows:     res.TouchedRows,
		LogOffset:       res.LogOffset,
		Vector:          res.Vector,
		ShardLogOffsets: res.ShardLogOffsets,
		ElapsedMS:       float64(time.Since(started)) / float64(time.Millisecond),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	capacity := s.cfg.CacheSize
	if capacity < 0 {
		capacity = 0 // disabled reads as "no cache"
	}
	resp := StatsResponse{
		UptimeSec:   time.Since(s.start).Seconds(),
		Constraints: s.eng.Schema().Count(),
		Engine:      s.eng.Stats(),
		Cache: CacheStats{
			Size:        s.results.Len(),
			Capacity:    capacity,
			Hits:        s.cacheHits.Load(),
			Misses:      s.cacheMisses.Load(),
			Revalidated: s.cacheReval.Load(),
			Recomputed:  s.cacheRecomp.Load(),
			RingOutrun:  s.cacheOut.Load(),
		},
		Latency: LatencyStats{
			Query:  s.latQuery.Summarize(),
			Update: s.latUpdate.Summarize(),
		},
		Served: s.served.Load(),
		Errors: s.errors.Load(),
	}
	if rt := s.eng.Router(); rt != nil {
		rs := rt.Stats()
		resp.Epoch = rs.GSN
		resp.Vector = rs.Vector
		resp.GraphNodes = int(rs.Nodes)
		resp.GraphEdges = int(rs.Edges)
		resp.Updates = UpdateStats{
			Enabled:           s.cfg.EnableUpdates,
			Applied:           rs.Applied,
			Batches:           rs.Batches,
			RejectedViolation: rs.RejectedViolation,
			RejectedError:     rs.RejectedError,
			TouchedRows:       rs.TouchedRows,
			ShardTxns:         rs.ShardTxns,
		}
		resp.Shards = make([]ShardStats, len(rs.Shards))
		for i, ss := range rs.Shards {
			resp.WAL.Enabled = resp.WAL.Enabled || ss.Durable
			resp.Shards[i] = ShardStats{
				Shard:      i,
				Epoch:      ss.Epoch,
				QueueDepth: ss.QueueDepth,
				WAL: WALStats{
					Enabled:             ss.Durable,
					Offset:              ss.WALOffset,
					Records:             ss.WALRecords,
					Syncs:               ss.WALSyncs,
					LastCheckpointEpoch: ss.LastCheckpointEpoch,
				},
			}
		}
	} else {
		snap := s.eng.Acquire()
		resp.GraphNodes, resp.GraphEdges = snap.G.NumNodes(), snap.G.NumEdges()
		resp.Epoch = snap.Epoch
		snap.Release()
		us := s.eng.Store().Stats()
		resp.Updates = UpdateStats{
			Enabled:           s.cfg.EnableUpdates,
			Applied:           us.Applied,
			Batches:           us.Batches,
			RejectedViolation: us.RejectedViolation,
			RejectedError:     us.RejectedError,
			TouchedRows:       us.TouchedRows,
			LastApplyMS:       float64(us.LastApplyNS) / 1e6,
		}
		resp.WAL = WALStats{
			Enabled:             us.Durable,
			Offset:              us.WALOffset,
			Records:             us.WALRecords,
			Syncs:               us.WALSyncs,
			LastCheckpointEpoch: us.LastCheckpointEpoch,
		}
	}
	if s.cfg.ReplicationStats != nil {
		rs := s.cfg.ReplicationStats()
		resp.Replication = &rs
	}
	if s.hub != nil {
		hs := s.hub.Stats()
		resp.Subscriptions = &SubscriptionStats{
			Active:  hs.Active,
			Events:  hs.Events,
			Resyncs: hs.Resyncs,
			Skipped: hs.Skipped,
			Evals:   hs.Evals,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
