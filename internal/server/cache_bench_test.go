package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/runtime"
	"boundedg/internal/workload"
)

// benchServer builds a server over a fresh IMDb load and returns it with
// the heaviest bounded subgraph query of the generated set (most data
// accessed — the query where caching matters most) and a pad-region edge
// flipper whose deltas stay disjoint from that query's footprint.
func benchServer(b *testing.B, cfg Config) (*Server, []byte, func()) {
	b.Helper()
	cfg.EnableUpdates = true
	d := workload.IMDb(0.1, 9)
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		b.Fatalf("index build: %v", viols[0])
	}
	eng, err := runtime.New(d.G, idx, runtime.Config{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	srv := New(eng, d.In, cfg)

	do := func(path string, body []byte, out any) int {
		b.Helper()
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if out != nil && rec.Code == http.StatusOK {
			if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
				b.Fatal(err)
			}
		}
		return rec.Code
	}

	// Pick the generated query that touches the most data.
	var best []byte
	bestCost := -1
	for _, q := range workload.DefaultQueryGen.Generate(d, 30, 4) {
		body, err := json.Marshal(QueryRequest{Pattern: q.String(), Sem: "subgraph"})
		if err != nil {
			b.Fatal(err)
		}
		var resp QueryResponse
		if do("/query", body, &resp) != http.StatusOK || resp.Stats == nil {
			continue
		}
		if cost := resp.Stats.Accessed(); cost > bestCost {
			bestCost, best = cost, body
		}
	}
	if best == nil {
		b.Fatal("no bounded query in the load")
	}

	// Pad region: two fresh connected nodes. Labels are tried in order
	// until the access bounds accept the insertion; whether flips on the
	// pad are disjoint from the benchmark query's footprint is verified
	// by the revalidated benchmark itself (it insists on cache hits).
	snap := eng.Acquire()
	labels := snap.G.Labels()
	snap.Release()
	var pad [2]graph.NodeID
	padOK := false
	for _, l := range labels {
		delta := &graph.Delta{
			AddNodes: []graph.NodeSpec{{Label: l}, {Label: l}},
			AddEdges: [][2]graph.NodeID{{graph.NewNodeRef(0), graph.NewNodeRef(1)}},
		}
		var buf bytes.Buffer
		if err := delta.WriteJSON(&buf, d.In); err != nil {
			b.Fatal(err)
		}
		var ur UpdateResponse
		if do("/update", buf.Bytes(), &ur) == http.StatusOK {
			pad[0], pad[1] = ur.NewIDs[0], ur.NewIDs[1]
			padOK = true
			break
		}
	}
	if !padOK {
		b.Fatal("no label has headroom for the pad region")
	}

	hasEdge := true
	flip := func() {
		b.Helper()
		delta := &graph.Delta{}
		if hasEdge {
			delta.DelEdges = [][2]graph.NodeID{{pad[0], pad[1]}}
		} else {
			delta.AddEdges = [][2]graph.NodeID{{pad[0], pad[1]}}
		}
		var buf bytes.Buffer
		if err := delta.WriteJSON(&buf, d.In); err != nil {
			b.Fatal(err)
		}
		if code := do("/update", buf.Bytes(), nil); code != http.StatusOK {
			b.Fatalf("pad flip rejected with status %d", code)
		}
		hasEdge = !hasEdge
	}
	return srv, best, flip
}

// BenchmarkCacheRevalidate compares serving one stale-but-promotable
// query from the cache against recomputing it. "fresh" runs the query on
// a cache-disabled server (full bounded execution per request);
// "revalidated" runs it on a caching server where every iteration first
// applies a footprint-disjoint pad update — so each request finds a
// stale entry and must prove disjointness against the recent-deltas ring
// before serving it. Both paths include HTTP handling and response
// marshaling. The revalidated path is required to actually hit: an
// iteration that recomputes fails the benchmark.
func BenchmarkCacheRevalidate(b *testing.B) {
	b.Run("fresh", func(b *testing.B) {
		srv, body, _ := benchServer(b, Config{CacheSize: -1, MaxLimit: 1 << 20, DefaultLimit: 1 << 20})
		h := srv.Handler()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
	b.Run("revalidated", func(b *testing.B) {
		srv, body, flip := benchServer(b, Config{MaxLimit: 1 << 20, DefaultLimit: 1 << 20})
		h := srv.Handler()
		// Prime the cache entry the iterations will keep promoting.
		req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
		h.ServeHTTP(httptest.NewRecorder(), req)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			flip() // stale the entry with a disjoint delta
			b.StartTimer()
			req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
			var resp QueryResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				b.Fatal(err)
			}
			if !resp.Cached {
				b.Fatal("iteration recomputed instead of revalidating")
			}
		}
	})
}
