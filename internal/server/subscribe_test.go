package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
	"boundedg/internal/sub"
	"boundedg/internal/workload"
)

// subTestConfig is the server shape the subscription tests run: updates
// on, limits high enough that every bounded answer is complete, and a
// fast heartbeat so idle subscriptions certify epochs quickly.
func subTestConfig() Config {
	return Config{
		EnableUpdates: true,
		MaxLimit:      1 << 20,
		DefaultLimit:  1 << 20,
		MaxSubs:       16,
		SubHeartbeat:  15 * time.Millisecond,
	}
}

// postSubscribe registers a pattern and fails the test on a non-200.
func postSubscribe(t *testing.T, e *env, req SubscribeRequest) SubscribeResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(e.ts.URL+"/subscribe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("subscribe status %d: %s", resp.StatusCode, raw)
	}
	var sr SubscribeResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// openStream GETs a subscription's event stream with a timeout-free
// client (the body lives as long as the subscription) and returns the
// response without consuming any frames. A non-200 comes back with the
// decoded error and a nil body.
func openStream(t *testing.T, e *env, path string) (*http.Response, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, e.ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: e.ts.Client().Transport}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, resp.StatusCode
	}
	return resp, resp.StatusCode
}

// streamState is the folded view one consumer holds of a subscription
// stream: the rows, their completeness, the highest epoch the stream has
// certified, and any protocol error. It survives reconnects — a fresh
// stream's init event simply replaces the rows, which is exactly the
// documented resync-by-reconnect contract.
type streamState struct {
	mu       sync.Mutex
	rows     [][]graph.NodeID
	complete bool
	claim    uint64
	resyncs  int
	err      error
}

func (ss *streamState) apply(ev sub.Event) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	rows, err := sub.Fold(ss.rows, ev)
	if err != nil {
		ss.err = err
		return err
	}
	ss.rows = rows
	switch ev.Type {
	case sub.TypeInit, sub.TypeDiff:
		ss.complete = ev.Complete
	case sub.TypeResync:
		ss.complete = ev.Complete
		ss.resyncs++
	}
	if ev.Epoch > ss.claim {
		ss.claim = ev.Epoch
	}
	return nil
}

func (ss *streamState) snapshot() (rows [][]graph.NodeID, complete bool, claim uint64, resyncs int, err error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.rows, ss.complete, ss.claim, ss.resyncs, ss.err
}

// consume folds frames from resp into ss until the stream ends; the
// returned channel closes when the reader exits. Decoder errors (clean
// or mid-frame EOF on close/kill) end the reader silently; fold errors
// are recorded in ss.err for the main goroutine to fail on.
func consume(resp *http.Response, ss *streamState) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer resp.Body.Close()
		dec := sub.NewDecoder(resp.Body)
		for {
			ev, err := dec.Next()
			if err != nil {
				return
			}
			if ss.apply(ev) != nil {
				return
			}
		}
	}()
	return done
}

// waitClaim blocks until the stream has certified epoch (a diff at or
// past it, or a heartbeat claiming no change through it).
func waitClaim(t *testing.T, ss *streamState, epoch uint64, what string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		_, _, claim, _, err := ss.snapshot()
		if err != nil {
			t.Fatalf("%s: stream fold error: %v", what, err)
		}
		if claim >= epoch {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: stream never certified epoch %d (claim %d)", what, epoch, claim)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// oracleQuery re-runs the full query over /query and returns the sorted
// answer — the ground truth every folded stream must equal.
func oracleQuery(t *testing.T, e *env, pattern string) ([][]graph.NodeID, bool) {
	t.Helper()
	body, err := json.Marshal(QueryRequest{Pattern: pattern, Sem: "subgraph", Limit: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(e.ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("oracle decode (status %d): %v", resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("oracle query status %d", resp.StatusCode)
	}
	rows := make([][]graph.NodeID, len(qr.Matches))
	for i, m := range qr.Matches {
		rows[i] = append([]graph.NodeID(nil), m...)
	}
	match.SortMatches(rows)
	return rows, qr.Complete
}

func sameRows(a, b [][]graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// applyOracle posts one delta and, if accepted, replays it on the oracle
// graph so the update generator keeps tracking live nodes.
func applyOracle(t *testing.T, e *env, oracle *graph.Graph, d *graph.Delta) (uint64, bool) {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf, e.d.In); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(e.ts.URL+"/update", "application/json", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, false
	}
	var ur UpdateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Clone().Apply(oracle); err != nil {
		t.Fatalf("oracle rejected a server-accepted delta: %v", err)
	}
	return ur.Epoch, true
}

// TestSubscriptionDifferential is the headline differential property
// test: live subscriptions fold their event streams while a serialized
// update stream mutates the graph, and after every accepted update —
// once the stream certifies that epoch — the folded answer must be
// row-identical to an oracle re-running the full query over /query.
// Every third round one subscription's incremental stream is forcibly
// dropped, so the resync path is differential-tested too. Runs across
// all three workload generators, unsharded and sharded.
func TestSubscriptionDifferential(t *testing.T) {
	gens := []struct {
		name string
		gen  func(float64, int64) *workload.Dataset
	}{
		{"imdb", workload.IMDb},
		{"dbpedia", workload.DBpedia},
		{"webbase", workload.WebBase},
	}
	for gi, g := range gens {
		seed := int64(40 + gi)
		t.Run(g.name+"/unsharded", func(t *testing.T) {
			d := g.gen(0.05, seed)
			oracle := d.G.Clone()
			e := newEnv(t, d, subTestConfig())
			runSubscriptionDifferential(t, e, oracle, seed)
		})
		for _, n := range shardSweep(t, []int{2}) {
			t.Run(fmt.Sprintf("%s/shards=%d", g.name, n), func(t *testing.T) {
				d := g.gen(0.05, seed)
				oracle := d.G.Clone()
				e := newShardedEnv(t, d, n, subTestConfig())
				runSubscriptionDifferential(t, e, oracle, seed)
			})
		}
	}
}

func runSubscriptionDifferential(t *testing.T, e *env, oracle *graph.Graph, seed int64) {
	t.Helper()
	queries := workload.DefaultQueryGen.GenerateSized(e.d, 12, 3, 4)
	if len(queries) == 0 {
		t.Fatal("no queries generated")
	}

	// Register subscriptions until three streams are live; queries whose
	// first evaluation is unbounded open with 422 and are unsubscribed.
	type liveSub struct {
		id      uint64
		q       *pattern.Pattern
		pattern string
		st      *streamState
		done    <-chan struct{}
	}
	var subs []liveSub
	for _, q := range queries {
		if len(subs) == 3 {
			break
		}
		src := q.String()
		var qr QueryResponse
		if status := e.post(t, QueryRequest{Pattern: src, Sem: "subgraph"}, &qr); status != http.StatusOK || qr.Count == 0 {
			continue // unbounded or empty answer: no diffs to test against
		}
		sr := postSubscribe(t, e, SubscribeRequest{Pattern: src})
		resp, status := openStream(t, e, sr.Events)
		if status != http.StatusOK {
			t.Fatalf("stream open for %q: status %d", src, status)
		}
		st := &streamState{}
		subs = append(subs, liveSub{id: sr.ID, q: q, pattern: src, st: st, done: consume(resp, st)})
	}
	if len(subs) == 0 {
		t.Fatal("no bounded non-empty query to subscribe to")
	}

	check := func(round int, epoch uint64) {
		t.Helper()
		for _, ls := range subs {
			waitClaim(t, ls.st, epoch, fmt.Sprintf("round %d sub %d", round, ls.id))
			want, complete := oracleQuery(t, e, ls.pattern)
			rows, gotComplete, _, _, err := ls.st.snapshot()
			if err != nil {
				t.Fatalf("round %d sub %d: fold error: %v", round, ls.id, err)
			}
			if !sameRows(rows, want) {
				t.Fatalf("round %d sub %d: folded stream diverged from oracle at epoch %d: %d rows vs %d",
					round, ls.id, epoch, len(rows), len(want))
			}
			if gotComplete != complete {
				t.Fatalf("round %d sub %d: complete = %v, oracle %v", round, ls.id, gotComplete, complete)
			}
		}
	}

	rng := rand.New(rand.NewSource(seed))

	// flipEdge targets a subscription's own answer: a matched row's
	// pattern edge maps to a live graph edge, so deleting it provably
	// removes rows (a removal diff) and re-adding it restores them (an
	// addition diff) — the two incremental directions the random deltas
	// alone rarely hit.
	flipEdge := func(round int, ls *liveSub) {
		t.Helper()
		rows, _, _, _, _ := ls.st.snapshot()
		edges := ls.q.EdgeList()
		if len(rows) == 0 || len(edges) == 0 {
			return
		}
		r := rows[rng.Intn(len(rows))]
		pe := edges[rng.Intn(len(edges))]
		ge := [2]graph.NodeID{r[int(pe[0])], r[int(pe[1])]}
		epoch, ok := applyOracle(t, e, oracle, &graph.Delta{DelEdges: [][2]graph.NodeID{ge}})
		if !ok {
			return // schema bound rejection; the random deltas still ran
		}
		check(round, epoch)
		if epoch, ok = applyOracle(t, e, oracle, &graph.Delta{AddEdges: [][2]graph.NodeID{ge}}); ok {
			check(round, epoch)
		}
	}

	rounds, accepted := 8, 0
	for round := 0; round < rounds; round++ {
		for tries := 0; tries < 20; tries++ {
			if epoch, ok := applyOracle(t, e, oracle, shardUpdateDelta(rng, oracle)); ok {
				accepted++
				check(round, epoch)
				break
			}
		}
		flipEdge(round, &subs[round%len(subs)])
		if round%3 == 2 {
			// Drop one subscription's incremental stream mid-flight; the
			// consumer must converge again via the resync event.
			sb, ok := e.srv.hub.Get(subs[round%len(subs)].id)
			if !ok {
				t.Fatalf("round %d: subscription vanished", round)
			}
			sb.ForceResync()
			epoch := e.eng.Version()
			check(round, epoch)
		}
	}
	if accepted < rounds/2 {
		t.Fatalf("only %d/%d rounds found an acceptable delta", accepted, rounds)
	}

	// The fault injection must actually have exercised the resync path.
	totalResyncs := 0
	for _, ls := range subs {
		_, _, _, r, _ := ls.st.snapshot()
		totalResyncs += r
	}
	if totalResyncs == 0 {
		t.Fatal("no stream ever delivered a resync event despite forced drops")
	}
	var stats StatsResponse
	getJSON(t, e.ts.URL+"/stats", &stats)
	if stats.Subscriptions == nil {
		t.Fatal("/stats has no subscriptions block while subscriptions are active")
	}
	if stats.Subscriptions.Active != len(subs) || stats.Subscriptions.Events == 0 || stats.Subscriptions.Resyncs == 0 {
		t.Fatalf("implausible subscription stats: %+v", *stats.Subscriptions)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s (status %d): %v", url, resp.StatusCode, err)
	}
}

// TestSubscriptionKillReconnect kills the consumer's connection at every
// frame boundary of a short schedule — and, separately, mid-frame — and
// checks that a reconnect (whose fresh init event replaces the folded
// state) converges to the oracle answer after each kill. This is the
// documented recovery path for consumers that lose a connection.
func TestSubscriptionKillReconnect(t *testing.T) {
	d := workload.IMDb(0.05, 21)
	oracle := d.G.Clone()
	e := newEnv(t, d, subTestConfig())

	queries := workload.DefaultQueryGen.Generate(e.d, 12, 4)
	var pat string
	var sr SubscribeResponse
	for _, q := range queries {
		cand := postSubscribe(t, e, SubscribeRequest{Pattern: q.String()})
		resp, status := openStream(t, e, cand.Events)
		if status == http.StatusOK {
			resp.Body.Close()
			pat, sr = q.String(), cand
			break
		}
		e.srv.hub.Unsubscribe(cand.ID)
	}
	if pat == "" {
		t.Fatal("no bounded query to subscribe to")
	}

	rng := rand.New(rand.NewSource(77))
	st := &streamState{}
	update := func() uint64 {
		t.Helper()
		for tries := 0; tries < 20; tries++ {
			if epoch, ok := applyOracle(t, e, oracle, shardUpdateDelta(rng, oracle)); ok {
				return epoch
			}
		}
		t.Fatal("no acceptable delta in 20 tries")
		return 0
	}
	converge := func(epoch uint64, what string) {
		t.Helper()
		waitClaim(t, st, epoch, what)
		want, _ := oracleQuery(t, e, pat)
		rows, _, _, _, err := st.snapshot()
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if !sameRows(rows, want) {
			t.Fatalf("%s: folded state diverged after reconnect (%d rows vs %d)", what, len(rows), len(want))
		}
	}

	// Kill at every frame boundary: iteration k reads exactly k frames
	// (init plus k-1 diffs/heartbeats), then drops the connection between
	// frames. Each reconnect must land a consistent init.
	for k := 1; k <= 6; k++ {
		epoch := update()
		resp, status := openStream(t, e, sr.Events)
		if status != http.StatusOK {
			t.Fatalf("kill %d: reconnect status %d", k, status)
		}
		dec := sub.NewDecoder(resp.Body)
		for i := 0; i < k; i++ {
			ev, err := dec.Next()
			if err != nil {
				t.Fatalf("kill %d frame %d: %v", k, i, err)
			}
			if i == 0 && ev.Type != sub.TypeInit {
				t.Fatalf("kill %d: stream opened with %q, want init", k, ev.Type)
			}
			if err := st.apply(ev); err != nil {
				t.Fatalf("kill %d frame %d: fold: %v", k, i, err)
			}
		}
		resp.Body.Close() // kill at the frame boundary
		converge(epoch, fmt.Sprintf("kill after %d frames", k))
	}

	// Kill mid-frame: read a fixed number of raw bytes that ends inside
	// the init frame, then drop the connection. The truncated tail must
	// decode as io.ErrUnexpectedEOF (never as a frame), and the next
	// reconnect must still converge.
	for _, cut := range []int{1, 9, 40} {
		epoch := update()
		resp, status := openStream(t, e, sr.Events)
		if status != http.StatusOK {
			t.Fatalf("mid-frame cut %d: reconnect status %d", cut, status)
		}
		buf := make([]byte, cut)
		if _, err := io.ReadFull(resp.Body, buf); err != nil {
			t.Fatalf("mid-frame cut %d: short read: %v", cut, err)
		}
		resp.Body.Close()
		dec := sub.NewDecoder(bytes.NewReader(buf))
		for {
			_, err := dec.Next()
			if err == io.ErrUnexpectedEOF {
				break
			}
			if err != nil {
				t.Fatalf("mid-frame cut %d: decoder error %v, want io.ErrUnexpectedEOF tail", cut, err)
			}
		}
		// The partial read folded nothing; reconnect and converge.
		resp, status = openStream(t, e, sr.Events)
		if status != http.StatusOK {
			t.Fatalf("mid-frame cut %d: reconnect status %d", cut, status)
		}
		ev, err := sub.NewDecoder(resp.Body).Next()
		if err != nil || ev.Type != sub.TypeInit {
			t.Fatalf("mid-frame cut %d: reconnect first frame %v, %v", cut, ev.Type, err)
		}
		if err := st.apply(ev); err != nil {
			t.Fatalf("mid-frame cut %d: fold: %v", cut, err)
		}
		resp.Body.Close()
		converge(epoch, fmt.Sprintf("mid-frame cut at %d bytes", cut))
	}
}

// TestSubscriptionStalledReader is the isolation fault-injection test: a
// subscriber that never reads a single byte of its stream must not add
// latency to the /update commit path, must not wedge epoch publication,
// and must not block graceful shutdown. The latency bound is generous
// (this runner is noisy) — the failure mode it guards against is a
// commit waiting on a consumer timeout, which costs seconds, not
// milliseconds.
func TestSubscriptionStalledReader(t *testing.T) {
	d := workload.IMDb(0.05, 31)
	cfg := subTestConfig()
	cfg.SubQueueCap = 2
	cfg.SubWriteTimeout = 250 * time.Millisecond
	e := newEnv(t, d, cfg)

	var before QueryResponse
	if status := e.post(t, QueryRequest{Pattern: moviePattern}, &before); status != http.StatusOK {
		t.Fatalf("seed query status %d", status)
	}
	if before.Count == 0 {
		t.Fatal("no matches to mutate")
	}

	sr := postSubscribe(t, e, SubscribeRequest{Pattern: moviePattern})
	resp, status := openStream(t, e, sr.Events)
	if status != http.StatusOK {
		t.Fatalf("stream open status %d", status)
	}
	defer resp.Body.Close() // never read from it: the consumer is stalled

	// Hammer the commit path with answer-changing deletions while the
	// subscriber's queue (capacity 2) overflows behind the stalled
	// stream. Every commit must stay far under the consumer timeouts.
	var movies []graph.NodeID
	seen := map[graph.NodeID]bool{}
	for _, m := range before.Matches {
		if id := m[2]; !seen[id] {
			seen[id] = true
			movies = append(movies, id)
		}
	}
	epoch0 := e.eng.Version()
	accepted := 0
	const bound = 2 * time.Second
	for i, m := range movies {
		if i >= 30 {
			break
		}
		body := fmt.Sprintf(`{"del_nodes": [%d]}`, m)
		start := time.Now()
		resp, err := http.Post(e.ts.URL+"/update", "application/json", bytes.NewReader([]byte(body)))
		elapsed := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		ok := resp.StatusCode == http.StatusOK
		resp.Body.Close()
		if elapsed > bound {
			t.Fatalf("update %d took %s with a stalled subscriber (bound %s)", i, elapsed, bound)
		}
		if ok {
			accepted++
		}
	}
	if accepted < 3 {
		t.Fatalf("only %d deletions accepted; commit path barely exercised", accepted)
	}
	if v := e.eng.Version(); v < epoch0+uint64(accepted) {
		t.Fatalf("publication wedged: version %d after %d accepted updates from %d", v, accepted, epoch0)
	}

	// Graceful shutdown must complete within budget with the stalled
	// stream still open.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := e.srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with stalled subscriber: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shutdown took %s, over the drain budget", elapsed)
	}
}

// moviePattern is effectively bounded under the IMDb workload schema.
// Vars order: u1 award, u2 year, u3 movie.
const moviePattern = "u1: award\nu2: year\nu3: movie\nu3 -> u1, u2"

// TestSubscriptionShutdownDrain is the graceful-shutdown regression for
// the stream-stall bug class (/wal/stream, PR 9): with several live
// subscribers — active readers and stalled ones — the drain must
// complete within its budget and every reader must observe its stream
// end.
func TestSubscriptionShutdownDrain(t *testing.T) {
	d := workload.IMDb(0.05, 41)
	e := newEnv(t, d, subTestConfig())

	var readers []<-chan struct{}
	for i := 0; i < 4; i++ {
		sr := postSubscribe(t, e, SubscribeRequest{Pattern: moviePattern})
		resp, status := openStream(t, e, sr.Events)
		if status != http.StatusOK {
			t.Fatalf("stream %d open status %d", i, status)
		}
		if i < 2 {
			readers = append(readers, consume(resp, &streamState{}))
		} else {
			defer resp.Body.Close() // stalled: never read
		}
	}

	// A little churn so streams are mid-delivery when the drain lands.
	var q QueryResponse
	if status := e.post(t, QueryRequest{Pattern: moviePattern}, &q); status != http.StatusOK || q.Count == 0 {
		t.Fatalf("seed query: status %d count %d", status, q.Count)
	}
	for i := 0; i < 3 && i < len(q.Matches); i++ {
		body := fmt.Sprintf(`{"del_nodes": [%d]}`, q.Matches[i][2])
		resp, err := http.Post(e.ts.URL+"/update", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := e.srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain with live subscribers: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain took %s, over budget", elapsed)
	}
	for i, done := range readers {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("reader %d never saw its stream end after the drain", i)
		}
	}
}

// TestSubscribeValidation pins the request-surface contract of the three
// subscription endpoints.
func TestSubscribeValidation(t *testing.T) {
	d := workload.IMDb(0.05, 51)
	cfg := subTestConfig()
	cfg.MaxSubs = 2
	cfg.DefaultLimit = 100
	cfg.MaxLimit = 1000
	e := newEnv(t, d, cfg)

	post := func(body string) (int, ErrorResponse) {
		t.Helper()
		resp, err := http.Post(e.ts.URL+"/subscribe", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return resp.StatusCode, er
	}

	// Same validation path as /query: strict decode, unknown labels
	// rejected without touching the engine's interner.
	if status, _ := post(`{"pattern": "u: movie", "bogus": 1}`); status != http.StatusBadRequest {
		t.Fatalf("unknown request field: status %d", status)
	}
	if status, _ := post(`not json`); status != http.StatusBadRequest {
		t.Fatalf("non-JSON body: status %d", status)
	}
	if status, _ := post(`{"pattern": "u: no_such_label_anywhere"}`); status != http.StatusBadRequest {
		t.Fatalf("unknown label: status %d", status)
	}
	if status, _ := post(`{"pattern": "u: movie", "sem": "simulation"}`); status != http.StatusBadRequest {
		t.Fatalf("simulation semantics: status %d", status)
	}
	if status, _ := post(`{"pattern": "u: movie", "sem": "nonsense"}`); status != http.StatusBadRequest {
		t.Fatalf("bad semantics: status %d", status)
	}

	// Limit clamping mirrors /query: zero adopts the default, excess is
	// clamped to the max.
	sr := postSubscribe(t, e, SubscribeRequest{Pattern: moviePattern})
	if sr.Limit != 100 {
		t.Fatalf("default limit = %d, want 100", sr.Limit)
	}
	if want := fmt.Sprintf("/subscribe/%d/events", sr.ID); sr.Events != want {
		t.Fatalf("events path %q, want %q", sr.Events, want)
	}
	if len(sr.Vars) != 3 || sr.Vars[0] != "u1" || sr.Vars[2] != "u3" {
		t.Fatalf("vars = %v", sr.Vars)
	}
	sr2 := postSubscribe(t, e, SubscribeRequest{Pattern: moviePattern, Limit: 1 << 30})
	if sr2.Limit != 1000 {
		t.Fatalf("clamped limit = %d, want 1000", sr2.Limit)
	}

	// At the cap: 429, distinct from every other error class.
	if status, _ := post(fmt.Sprintf("{\"pattern\": %q}", moviePattern)); status != http.StatusTooManyRequests {
		t.Fatalf("over cap: status %d", status)
	}

	// DELETE frees a slot and ends the live stream.
	resp, status := openStream(t, e, sr.Events)
	if status != http.StatusOK {
		t.Fatalf("stream open status %d", status)
	}
	done := consume(resp, &streamState{})
	req, err := http.NewRequest(http.MethodDelete, e.ts.URL+fmt.Sprintf("/subscribe/%d", sr.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("unsubscribe status %d", dresp.StatusCode)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not end after DELETE")
	}
	if _, status := openStream(t, e, sr.Events); status != http.StatusNotFound {
		t.Fatalf("stream of a deleted subscription: status %d, want 404", status)
	}
	req, _ = http.NewRequest(http.MethodDelete, e.ts.URL+fmt.Sprintf("/subscribe/%d", sr.ID), nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("double unsubscribe status %d, want 404", dresp.StatusCode)
	}
	if _, err := http.Post(e.ts.URL+"/subscribe", "application/json",
		bytes.NewReader([]byte(fmt.Sprintf("{\"pattern\": %q}", moviePattern)))); err != nil {
		t.Fatal(err)
	}
}

// TestSubscribeDisabled: a daemon started with subscriptions disabled
// (-max-subs 0, server MaxSubs < 0) refuses all three endpoints with
// 404 and serves no subscriptions stats block.
func TestSubscribeDisabled(t *testing.T) {
	d := workload.IMDb(0.05, 61)
	cfg := subTestConfig()
	cfg.MaxSubs = -1
	e := newEnv(t, d, cfg)

	body := fmt.Sprintf("{\"pattern\": %q}", moviePattern)
	resp, err := http.Post(e.ts.URL+"/subscribe", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("subscribe while disabled: status %d, want 404", resp.StatusCode)
	}
	if _, status := openStream(t, e, "/subscribe/1/events"); status != http.StatusNotFound {
		t.Fatalf("events while disabled: status %d, want 404", status)
	}
	var stats StatsResponse
	getJSON(t, e.ts.URL+"/stats", &stats)
	if stats.Subscriptions != nil {
		t.Fatalf("stats has a subscriptions block while disabled: %+v", *stats.Subscriptions)
	}
}
