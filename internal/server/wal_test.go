package server

import (
	"net/http/httptest"
	"strconv"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/runtime"
	"boundedg/internal/store"
	"boundedg/internal/wal"
	"boundedg/internal/workload"
)

// newDurableEnv is newEnv over a WAL-backed store, as boundedgd -mutable
// -wal builds one.
func newDurableEnv(t *testing.T, d *workload.Dataset, cfg Config) *env {
	t.Helper()
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		t.Fatalf("index build: %v", viols[0])
	}
	wd, err := wal.OpenDir(t.TempDir(), d.In)
	if err != nil {
		t.Fatal(err)
	}
	if err := wd.Init(0, d.G, idx); err != nil {
		t.Fatal(err)
	}
	st := store.New(d.G, idx, store.WithWAL(wd, true))
	eng, err := runtime.NewFromStore(st, runtime.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg.WAL = wd // boundedgd wires the WAL dir in for the replication endpoints
	srv := New(eng, d.In, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
		wd.Close()
	})
	return &env{d: d, idx: idx, eng: eng, srv: srv, ts: ts}
}

// TestUpdateReportsLogOffset checks the durable write path through HTTP:
// accepted updates report strictly increasing committed log offsets, and
// /stats exposes the WAL state (offset, records, syncs, checkpoint
// epoch) that an operator or replication follower would read.
func TestUpdateReportsLogOffset(t *testing.T) {
	d, years := miniDataset(t, 10)
	e := newDurableEnv(t, d, Config{EnableUpdates: true})

	var prevOff int64
	for i := 0; i < 3; i++ {
		var ur UpdateResponse
		body := `{"add_nodes": [{"label": "movie", "value": 100}], "add_edges": [[-1, ` + strconv.Itoa(int(years[0])) + `]]}`
		if code := e.postUpdate(t, body, &ur); code != 200 {
			t.Fatalf("update %d: status %d", i, code)
		}
		if ur.LogOffset <= prevOff {
			t.Fatalf("update %d: log offset %d not beyond %d", i, ur.LogOffset, prevOff)
		}
		prevOff = ur.LogOffset
	}

	st := e.getStats(t)
	if !st.Updates.Enabled || st.Updates.Applied != 3 || st.Updates.Batches == 0 {
		t.Fatalf("update stats = %+v", st.Updates)
	}
	if !st.WAL.Enabled {
		t.Fatal("wal stats not enabled on a durable daemon")
	}
	if st.WAL.Offset != prevOff || st.WAL.Records != 3 || st.WAL.Syncs != st.Updates.Batches {
		t.Fatalf("wal stats = %+v (want offset %d, 3 records, %d syncs)", st.WAL, prevOff, st.Updates.Batches)
	}
	if st.WAL.LastCheckpointEpoch != 0 {
		t.Fatalf("last checkpoint epoch %d, want 0 (no checkpoint yet)", st.WAL.LastCheckpointEpoch)
	}

	// A read-only-store daemon reports the WAL section disabled.
	d2, _ := miniDataset(t, 10)
	e2 := newEnv(t, d2, Config{EnableUpdates: true})
	if st2 := e2.getStats(t); st2.WAL.Enabled || st2.WAL.Offset != 0 {
		t.Fatalf("non-durable wal stats = %+v", st2.WAL)
	}

	// Rejected updates must not advance the log.
	var er ErrorResponse
	if code := e.postUpdate(t, `{"del_nodes": [99999]}`, &er); code != 409 {
		t.Fatalf("structural reject: status %d", code)
	}
	if st := e.getStats(t); st.WAL.Offset != prevOff || st.WAL.Records != 3 {
		t.Fatalf("rejected update moved the log: %+v", st.WAL)
	}
}
