package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
	"boundedg/internal/runtime"
	"boundedg/internal/workload"
)

// env bundles a workload dataset, its engine and a test HTTP server.
type env struct {
	d   *workload.Dataset
	idx *access.IndexSet
	eng *runtime.Engine
	srv *Server
	ts  *httptest.Server
}

func newEnv(t *testing.T, d *workload.Dataset, cfg Config) *env {
	t.Helper()
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		t.Fatalf("index build: %v", viols[0])
	}
	eng, err := runtime.New(d.G, idx, runtime.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, d.In, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Shutdown(context.Background())
		ts.Close()
		eng.Close()
	})
	return &env{d: d, idx: idx, eng: eng, srv: srv, ts: ts}
}

// post sends a QueryRequest and decodes the response into out (a
// *QueryResponse on 200, *ErrorResponse otherwise), returning the status.
func (e *env) post(t *testing.T, req QueryRequest, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(e.ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response (status %d): %v", resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

// TestServerDifferentialDBpedia is the end-to-end differential test: for
// every query of a DBpedia workload load, the answer served over HTTP
// must equal the direct in-process core.Exec answer bit-for-bit — same
// match rows under subgraph semantics, same relation under simulation,
// same access stats — and unbounded queries must be refused with 422.
func TestServerDifferentialDBpedia(t *testing.T) {
	d := workload.DBpedia(0.08, 2)
	e := newEnv(t, d, Config{MaxLimit: 1 << 20, DefaultLimit: 1 << 20})
	queries := workload.DefaultQueryGen.Generate(d, 25, 5)
	if len(queries) == 0 {
		t.Fatal("no queries generated")
	}
	mopt := match.SubgraphOptions{StoreMatches: true, MaxMatches: 1 << 20}

	bounded := 0
	for qi, q := range queries {
		for _, sem := range []core.Semantics{core.Subgraph, core.Simulation} {
			p, planErr := core.NewPlan(q, d.Schema, sem)

			var got QueryResponse
			var herr ErrorResponse
			req := QueryRequest{Pattern: q.String(), Sem: sem.String()}
			if planErr != nil {
				if status := e.post(t, req, &herr); status != http.StatusUnprocessableEntity {
					t.Fatalf("q%d/%s: unbounded query served with status %d (%+v)", qi, sem, status, herr)
				}
				continue
			}
			bounded++
			if status := e.post(t, req, &got); status != http.StatusOK {
				t.Fatalf("q%d/%s: status %d", qi, sem, status)
			}

			wantVars := make([]string, q.NumNodes())
			for i := range wantVars {
				wantVars[i] = q.Name(pattern.Node(i))
			}
			if !reflect.DeepEqual(got.Vars, wantVars) {
				t.Fatalf("q%d/%s: vars = %v, want %v", qi, sem, got.Vars, wantVars)
			}

			switch sem {
			case core.Subgraph:
				res, stats, err := p.EvalSubgraph(d.G, e.idx, mopt)
				if err != nil {
					t.Fatalf("q%d direct: %v", qi, err)
				}
				want := make([][]graph.NodeID, len(res.Matches))
				for i, m := range res.Matches {
					want[i] = append([]graph.NodeID(nil), m...)
				}
				match.SortMatches(want)
				if got.Count != res.Count || got.Complete != res.Completed {
					t.Fatalf("q%d: count/complete = %d/%v, want %d/%v", qi, got.Count, got.Complete, res.Count, res.Completed)
				}
				if len(want) == 0 {
					want = nil
				}
				if !reflect.DeepEqual(got.Matches, want) {
					t.Fatalf("q%d: HTTP matches differ from direct core.Exec\n got: %v\nwant: %v", qi, got.Matches, want)
				}
				if !reflect.DeepEqual(got.Stats, stats) {
					t.Fatalf("q%d: stats = %+v, want %+v", qi, got.Stats, stats)
				}
			case core.Simulation:
				res, stats, err := p.EvalSim(d.G, e.idx)
				if err != nil {
					t.Fatalf("q%d direct sim: %v", qi, err)
				}
				want := make(map[string][]graph.NodeID, q.NumNodes())
				for ui, vs := range res.Sim {
					sorted := append([]graph.NodeID(nil), vs...)
					sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
					want[wantVars[ui]] = sorted
				}
				if !reflect.DeepEqual(got.Sim, want) {
					t.Fatalf("q%d: HTTP sim relation differs from direct core.Exec", qi)
				}
				if got.Pairs != res.Pairs() {
					t.Fatalf("q%d: pairs = %d, want %d", qi, got.Pairs, res.Pairs())
				}
				if !reflect.DeepEqual(got.Stats, stats) {
					t.Fatalf("q%d sim: stats = %+v, want %+v", qi, got.Stats, stats)
				}
			}
		}
	}
	if bounded == 0 {
		t.Fatal("no bounded queries in the load; differential test proved nothing")
	}
	t.Logf("compared %d bounded query/semantics combinations", bounded)
}

// TestServerCache: the second identical query is served from the result
// cache (Cached flag, hit counter), and /stats surfaces the counters.
func TestServerCache(t *testing.T) {
	d := workload.IMDb(0.05, 3)
	e := newEnv(t, d, Config{})
	var q *pattern.Pattern
	for _, cand := range workload.DefaultQueryGen.Generate(d, 20, 7) {
		if _, err := core.NewPlan(cand, d.Schema, core.Subgraph); err == nil {
			q = cand
			break
		}
	}
	if q == nil {
		t.Fatal("no bounded query")
	}

	var first, second QueryResponse
	if status := e.post(t, QueryRequest{Pattern: q.String()}, &first); status != http.StatusOK {
		t.Fatalf("first: status %d", status)
	}
	if first.Cached {
		t.Fatal("first response claims to be cached")
	}
	// Textual variants (comments, whitespace) normalize to the same key.
	variant := "# a comment\n" + strings.ReplaceAll(q.String(), ": ", ":   ")
	if status := e.post(t, QueryRequest{Pattern: variant, Sem: "subgraph"}, &second); status != http.StatusOK {
		t.Fatalf("second: status %d", status)
	}
	if !second.Cached {
		t.Fatal("identical query was not served from the cache")
	}
	second.Cached, second.ElapsedMS = first.Cached, first.ElapsedMS
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached response differs from the original")
	}

	// A different limit is a different cache key.
	var limited QueryResponse
	if status := e.post(t, QueryRequest{Pattern: q.String(), Limit: 1}, &limited); status != http.StatusOK {
		t.Fatalf("limited: status %d", status)
	}
	if limited.Cached {
		t.Fatal("different limit hit the cache")
	}
	if len(limited.Matches) > 1 {
		t.Fatalf("limit 1 returned %d matches", len(limited.Matches))
	}

	resp, err := http.Get(e.ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses < 2 {
		t.Fatalf("cache counters = %+v, want 1 hit / >=2 misses", st.Cache)
	}
	if st.Served != 3 || st.GraphNodes != d.G.NumNodes() {
		t.Fatalf("stats = %+v", st)
	}
	if st.Engine.Submitted != 2 {
		t.Fatalf("engine saw %d submissions, want 2 (cache absorbed the rest)", st.Engine.Submitted)
	}
}

// TestServerErrors covers the 4xx surface: malformed bodies, bad DSL,
// bad semantics, wrong method, and health.
func TestServerErrors(t *testing.T) {
	d := workload.IMDb(0.05, 3)
	e := newEnv(t, d, Config{})

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"malformed json", "{", http.StatusBadRequest},
		{"empty pattern", `{"pattern": ""}`, http.StatusBadRequest},
		{"bad dsl", `{"pattern": "u1 u2 u3"}`, http.StatusBadRequest},
		{"bad sem", `{"pattern": "u1: movie", "sem": "magic"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(e.ts.URL+"/query", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var herr ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&herr); err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d (%+v)", tc.name, resp.StatusCode, tc.status, herr)
		}
		if herr.Error == "" {
			t.Fatalf("%s: empty error body", tc.name)
		}
	}

	resp, err := http.Get(e.ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query status = %d", resp.StatusCode)
	}

	resp, err = http.Get(e.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}
}

// TestServerConcurrentClients hammers one server from many goroutines
// mixing repeat queries (cache hits), fresh queries and bad requests;
// every well-formed answer must match the direct evaluation.
func TestServerConcurrentClients(t *testing.T) {
	d := workload.DBpedia(0.05, 4)
	e := newEnv(t, d, Config{CacheSize: 8})
	var qs []*pattern.Pattern
	for _, cand := range workload.DefaultQueryGen.Generate(d, 40, 9) {
		if _, err := core.NewPlan(cand, d.Schema, core.Subgraph); err == nil {
			qs = append(qs, cand)
		}
	}
	if len(qs) < 3 {
		t.Skipf("only %d bounded queries in the load", len(qs))
	}
	want := make([]QueryResponse, len(qs))
	for i, q := range qs {
		if status := e.post(t, QueryRequest{Pattern: q.String()}, &want[i]); status != http.StatusOK {
			t.Fatalf("warmup q%d: status %d", i, status)
		}
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				qi := (c + i) % len(qs)
				body, _ := json.Marshal(QueryRequest{Pattern: qs[qi].String()})
				resp, err := http.Post(e.ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var got QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d: status %d", c, resp.StatusCode)
					return
				}
				got.Cached, got.ElapsedMS = want[qi].Cached, want[qi].ElapsedMS
				if !reflect.DeepEqual(got, want[qi]) {
					errs <- fmt.Errorf("client %d: q%d diverged under concurrency", c, qi)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestServerRequestTimeout: a request-supplied deadline that has no time
// to run returns 504 without serving a result.
func TestServerRequestTimeout(t *testing.T) {
	d := workload.IMDb(0.05, 3)
	e := newEnv(t, d, Config{Timeout: time.Nanosecond})
	var q *pattern.Pattern
	for _, cand := range workload.DefaultQueryGen.Generate(d, 20, 7) {
		if _, err := core.NewPlan(cand, d.Schema, core.Subgraph); err == nil {
			q = cand
			break
		}
	}
	if q == nil {
		t.Fatal("no bounded query")
	}
	var herr ErrorResponse
	if status := e.post(t, QueryRequest{Pattern: q.String()}, &herr); status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%+v), want 504", status, herr)
	}
}

// TestServerGracefulShutdown: Shutdown stops the listener, in-flight
// requests finish, and the engine keeps working until the caller closes
// it.
func TestServerGracefulShutdown(t *testing.T) {
	d := workload.IMDb(0.05, 3)
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		t.Fatalf("index build: %v", viols[0])
	}
	eng, err := runtime.New(d.G, idx, runtime.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := New(eng, d.In, Config{})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	url := "http://" + l.Addr().String()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-done; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

// TestServerUnknownLabelDoesNotGrowInterner: queries using labels the
// graph has never seen are rejected with 400, and — because interning is
// permanent — they must not leave entries behind in the shared interner
// (a public daemon would otherwise leak memory to junk queries).
func TestServerUnknownLabelDoesNotGrowInterner(t *testing.T) {
	d := workload.IMDb(0.05, 3)
	e := newEnv(t, d, Config{})
	before := d.In.Len()
	for i := 0; i < 5; i++ {
		var herr ErrorResponse
		req := QueryRequest{Pattern: fmt.Sprintf("u1: no-such-label-%d", i)}
		if status := e.post(t, req, &herr); status != http.StatusBadRequest {
			t.Fatalf("unknown label served with status %d (%+v)", status, herr)
		}
		if !strings.Contains(herr.Error, "unknown label") {
			t.Fatalf("error = %q, want unknown-label diagnosis", herr.Error)
		}
	}
	if after := d.In.Len(); after != before {
		t.Fatalf("interner grew from %d to %d labels on rejected queries", before, after)
	}
	// Misspelled request fields are rejected too, not silently ignored.
	resp, err := http.Post(e.ts.URL+"/query", "application/json",
		strings.NewReader(`{"pattern": "u1: movie", "timeout": 50}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown request field accepted (status %d)", resp.StatusCode)
	}
}

// TestServerSimLimitSharesCache: simulation answers ignore the limit, so
// different limits must collapse onto one cache entry.
func TestServerSimLimitSharesCache(t *testing.T) {
	d := workload.IMDb(0.05, 3)
	e := newEnv(t, d, Config{})
	var q *pattern.Pattern
	for _, cand := range workload.DefaultQueryGen.Generate(d, 30, 7) {
		if _, err := core.NewPlan(cand, d.Schema, core.Simulation); err == nil {
			q = cand
			break
		}
	}
	if q == nil {
		t.Skip("no sim-bounded query in the load")
	}
	var first, second QueryResponse
	if status := e.post(t, QueryRequest{Pattern: q.String(), Sem: "simulation", Limit: 5}, &first); status != http.StatusOK {
		t.Fatalf("first: status %d", status)
	}
	if status := e.post(t, QueryRequest{Pattern: q.String(), Sem: "simulation", Limit: 50}, &second); status != http.StatusOK {
		t.Fatalf("second: status %d", status)
	}
	if !second.Cached {
		t.Fatal("sim query with a different limit missed the cache")
	}
}

// TestServerTimeoutOverflowAndDisabledCache: a huge timeout_ms must not
// overflow into "no deadline", and a disabled cache reads as absent in
// /stats (zero capacity, no miss counting).
func TestServerTimeoutOverflowAndDisabledCache(t *testing.T) {
	d := workload.IMDb(0.05, 3)
	e := newEnv(t, d, Config{Timeout: time.Nanosecond, CacheSize: -1})
	var q *pattern.Pattern
	for _, cand := range workload.DefaultQueryGen.Generate(d, 20, 7) {
		if _, err := core.NewPlan(cand, d.Schema, core.Subgraph); err == nil {
			q = cand
			break
		}
	}
	if q == nil {
		t.Fatal("no bounded query")
	}
	// timeout_ms large enough to overflow Duration(ms)*Millisecond must
	// still be capped by the 1ns server deadline -> 504.
	var herr ErrorResponse
	if status := e.post(t, QueryRequest{Pattern: q.String(), TimeoutMS: 9223372036855}, &herr); status != http.StatusGatewayTimeout {
		t.Fatalf("overflowing timeout_ms: status %d (%+v), want 504", status, herr)
	}
	resp, err := http.Get(e.ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Capacity != 0 || st.Cache.Hits != 0 || st.Cache.Misses != 0 {
		t.Fatalf("disabled cache reported as %+v, want all-zero", st.Cache)
	}
}

// TestServerMaxStepsBudget: a one-step search budget truncates the match
// phase (Complete=false) instead of letting VF2 run unbounded.
func TestServerMaxStepsBudget(t *testing.T) {
	d := workload.IMDb(0.05, 3)
	e := newEnv(t, d, Config{MaxSteps: 1})
	var q *pattern.Pattern
	for _, cand := range workload.DefaultQueryGen.Generate(d, 20, 7) {
		p, err := core.NewPlan(cand, d.Schema, core.Subgraph)
		if err != nil {
			continue
		}
		res, _, err := p.EvalSubgraph(d.G, e.idx, match.SubgraphOptions{})
		if err == nil && res.Count > 0 {
			q = cand
			break
		}
	}
	if q == nil {
		t.Skip("no bounded query with matches in the load")
	}
	var got QueryResponse
	if status := e.post(t, QueryRequest{Pattern: q.String()}, &got); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if got.Complete {
		t.Fatal("one-step budget reported a complete search")
	}
}
