package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/workload"
)

// miniDataset builds a tiny movies/years dataset with full control over
// the answer set of the fixed test pattern.
func miniDataset(t *testing.T, movieBound int) (*workload.Dataset, []graph.NodeID) {
	t.Helper()
	g := graph.New(nil)
	in := g.Interner()
	year := in.Intern("year")
	movie := in.Intern("movie")
	var years []graph.NodeID
	for i := 0; i < 3; i++ {
		years = append(years, g.AddNode(year, graph.IntValue(int64(2010+i))))
	}
	for i := 0; i < 4; i++ {
		m := g.AddNode(movie, graph.IntValue(int64(i)))
		g.MustAddEdge(m, years[i%3])
	}
	schema := access.NewSchema(
		access.MustNew(nil, year, 10),
		access.MustNew([]graph.Label{year}, movie, movieBound),
	)
	return &workload.Dataset{Name: "mini", In: in, G: g, Schema: schema}, years
}

const miniPattern = "m: movie\ny: year\nm -> y"

func (e *env) postUpdate(t *testing.T, body string, out any) int {
	t.Helper()
	resp, err := http.Post(e.ts.URL+"/update", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response (status %d): %v", resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

func (e *env) getStats(t *testing.T) StatsResponse {
	t.Helper()
	resp, err := http.Get(e.ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServerCacheInvalidationOnUpdate is the stale-cache regression test:
// after POST /update lands, neither the result cache nor the parsed
// pattern/plan caches may reproduce a pre-update answer.
func TestServerCacheInvalidationOnUpdate(t *testing.T) {
	d, years := miniDataset(t, 10)
	e := newEnv(t, d, Config{EnableUpdates: true})

	req := QueryRequest{Pattern: miniPattern}
	var first QueryResponse
	if st := e.post(t, req, &first); st != http.StatusOK {
		t.Fatalf("status %d", st)
	}
	if first.Cached {
		t.Fatal("first answer claims cached")
	}
	// Warm every layer: the result cache, the parsed-pattern cache and —
	// through the stable pattern pointer — the engine's plan cache.
	var warm QueryResponse
	if e.post(t, req, &warm); !warm.Cached {
		t.Fatal("repeat answer not cached")
	}
	if !reflect.DeepEqual(warm.Matches, first.Matches) {
		t.Fatal("cached answer differs")
	}

	// Insert a movie wired to a year: one more (m, y) match.
	var up UpdateResponse
	body := fmt.Sprintf(`{"add_nodes": [{"label": "movie"}], "add_edges": [[-1, %d]]}`, years[0])
	if st := e.postUpdate(t, body, &up); st != http.StatusOK {
		t.Fatalf("update status %d", st)
	}
	if up.Epoch != 1 || len(up.NewIDs) != 1 {
		t.Fatalf("update response %+v", up)
	}

	var after QueryResponse
	if st := e.post(t, req, &after); st != http.StatusOK {
		t.Fatalf("status %d", st)
	}
	if after.Cached {
		t.Fatal("post-update answer served from the pre-update cache")
	}
	if after.Count != first.Count+1 {
		t.Fatalf("post-update count = %d, want %d", after.Count, first.Count+1)
	}
	found := false
	for _, row := range after.Matches {
		if row[0] == up.NewIDs[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted node missing from the post-update answer (stale plan/pattern cache?)")
	}
	// The new epoch's answer caches normally again.
	var again QueryResponse
	if e.post(t, req, &again); !again.Cached || again.Count != after.Count {
		t.Fatalf("re-query: cached=%v count=%d", again.Cached, again.Count)
	}

	// Deletions invalidate too.
	if st := e.postUpdate(t, fmt.Sprintf(`{"del_nodes": [%d]}`, up.NewIDs[0]), &UpdateResponse{}); st != http.StatusOK {
		t.Fatalf("delete status %d", st)
	}
	var back QueryResponse
	if e.post(t, req, &back); back.Cached || back.Count != first.Count {
		t.Fatalf("post-delete: cached=%v count=%d, want fresh %d", back.Cached, back.Count, first.Count)
	}
}

func TestServerUpdateStatuses(t *testing.T) {
	d, years := miniDataset(t, 2) // (year)->movie bound 2: y0 already has 2
	e := newEnv(t, d, Config{EnableUpdates: true})

	// Violation: third movie on years[0] → 422 with the violation listed,
	// and the graph stays untouched.
	before := e.getStats(t)
	var errResp ErrorResponse
	body := fmt.Sprintf(`{"add_nodes": [{"label": "movie"}], "add_edges": [[-1, %d]]}`, years[0])
	if st := e.postUpdate(t, body, &errResp); st != http.StatusUnprocessableEntity {
		t.Fatalf("violation status %d (%+v)", st, errResp)
	}
	if len(errResp.Violations) != 1 {
		t.Fatalf("violations = %v", errResp.Violations)
	}
	// Structural conflict: deleting a nonexistent edge → 409.
	if st := e.postUpdate(t, `{"del_edges": [[0, 1]]}`, &errResp); st != http.StatusConflict {
		t.Fatalf("structural status %d", st)
	}
	// Malformed bodies → 400.
	for _, bad := range []string{`{"nodes": []}`, `not json`, `{"del_nodes": [-3]}`} {
		if st := e.postUpdate(t, bad, &errResp); st != http.StatusBadRequest {
			t.Fatalf("body %q: status %d", bad, st)
		}
	}
	after := e.getStats(t)
	if after.Epoch != before.Epoch {
		t.Fatalf("rejected updates consumed epochs: %d -> %d", before.Epoch, after.Epoch)
	}
	if after.GraphNodes != before.GraphNodes || after.GraphEdges != before.GraphEdges {
		t.Fatal("rejected updates changed the graph")
	}
	if after.Updates.RejectedViolation != 1 || after.Updates.RejectedError != 1 {
		t.Fatalf("update stats = %+v", after.Updates)
	}

	// A valid update advances the epoch and the counters.
	if st := e.postUpdate(t, fmt.Sprintf(`{"add_nodes": [{"label": "movie"}], "add_edges": [[-1, %d]]}`, years[2]), &UpdateResponse{}); st != http.StatusOK {
		t.Fatalf("valid update status %d", st)
	}
	final := e.getStats(t)
	if final.Epoch != before.Epoch+1 || final.Updates.Applied != 1 {
		t.Fatalf("final stats: epoch %d applied %d", final.Epoch, final.Updates.Applied)
	}
	if final.GraphNodes != before.GraphNodes+1 {
		t.Fatalf("graph_nodes = %d, want %d", final.GraphNodes, before.GraphNodes+1)
	}
	if !final.Updates.Enabled {
		t.Fatal("updates.enabled false on a mutable server")
	}
}

func TestServerUpdatesDisabledByDefault(t *testing.T) {
	d, _ := miniDataset(t, 10)
	e := newEnv(t, d, Config{})
	var errResp ErrorResponse
	if st := e.postUpdate(t, `{"del_nodes": [0]}`, &errResp); st != http.StatusForbidden {
		t.Fatalf("status %d, want 403", st)
	}
	if st := e.getStats(t); st.Updates.Enabled {
		t.Fatal("updates.enabled true on a read-only server")
	}
	// GET on /update → 405.
	resp, err := http.Get(e.ts.URL + "/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /update status %d", resp.StatusCode)
	}
}

// TestServerQueryDuringUpdates floods a mutable server with concurrent
// queries and updates; every response must be internally consistent and
// the final answer must reflect the final graph.
func TestServerQueryDuringUpdates(t *testing.T) {
	d, years := miniDataset(t, 100)
	e := newEnv(t, d, Config{EnableUpdates: true})
	req := QueryRequest{Pattern: miniPattern}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			var up UpdateResponse
			body := fmt.Sprintf(`{"add_nodes": [{"label": "movie"}], "add_edges": [[-1, %d]]}`, years[i%3])
			if st := e.postUpdate(t, body, &up); st != http.StatusOK {
				t.Errorf("update %d: status %d", i, st)
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			var final QueryResponse
			if st := e.post(t, req, &final); st != http.StatusOK {
				t.Fatalf("final status %d", st)
			}
			// 4 base + 30 inserted movies, one (m, y) row each. The final
			// query may hit the cache only if a prior query already ran at
			// the final epoch — either way the count must be current.
			if final.Count != 34 {
				t.Fatalf("final count = %d, want 34", final.Count)
			}
			return
		default:
			var r QueryResponse
			if st := e.post(t, req, &r); st != http.StatusOK {
				t.Fatalf("query status %d", st)
			}
			if r.Count < 4 || r.Count > 34 {
				t.Fatalf("count %d outside any published epoch", r.Count)
			}
		}
	}
}
