package access

import (
	"bytes"
	"strings"
	"testing"

	"boundedg/internal/graph"
)

func TestSchemaJSONRoundTrip(t *testing.T) {
	in := graph.NewInterner()
	y, a, m := in.Intern("year"), in.Intern("award"), in.Intern("movie")
	s := NewSchema(
		MustNew(nil, y, 135),
		MustNew([]graph.Label{y, a}, m, 4),
		MustNew([]graph.Label{m}, a, 3),
	)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf, in); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	// Decode into a fresh interner: labels must resolve by name.
	in2 := graph.NewInterner()
	s2, err := ReadJSON(bytes.NewReader(buf.Bytes()), in2)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if s2.Count() != s.Count() {
		t.Fatalf("count %d vs %d", s2.Count(), s.Count())
	}
	if s.Format(in) != s2.Format(in2) {
		t.Fatalf("formats differ:\n%s\nvs\n%s", s.Format(in), s2.Format(in2))
	}
}

func TestSchemaReadJSONErrors(t *testing.T) {
	in := graph.NewInterner()
	if _, err := ReadJSON(strings.NewReader("{oops"), in); err == nil {
		t.Fatalf("malformed JSON accepted")
	}
	bad := `{"constraints":[{"l":"movie","n":-2}]}`
	if _, err := ReadJSON(strings.NewReader(bad), in); err == nil {
		t.Fatalf("negative bound accepted")
	}
}

func TestSchemaJSONDedups(t *testing.T) {
	in := graph.NewInterner()
	src := `{"constraints":[
		{"s":["a"],"l":"b","n":9},
		{"s":["a"],"l":"b","n":4}
	]}`
	s, err := ReadJSON(strings.NewReader(src), in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1 || s.At(0).N != 4 {
		t.Fatalf("dedup on read failed: %d constraints, N=%d", s.Count(), s.At(0).N)
	}
}
