// Package access implements the access schema of the ICDE 2015 paper
// "Making Pattern Queries Bounded in Big Graphs": sets of access
// constraints S -> (l, N) on node labels — each a cardinality bound on
// common neighbors combined with an index that retrieves those neighbors
// in O(N) time, independent of |G| — plus validation (G |= A), discovery
// of constraints from data, and incremental index maintenance.
package access

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"boundedg/internal/graph"
)

// Constraint is an access constraint S -> (l, N): for any S-labeled set VS
// of nodes of a graph satisfying it, there are at most N common neighbors
// of VS labeled l, and an index retrieves them in O(N) time.
//
// S is kept sorted and duplicate-free; construct Constraints with New.
type Constraint struct {
	S []graph.Label // sorted, duplicate-free (possibly empty)
	L graph.Label   // the target label l
	N int           // the cardinality bound
}

// New returns a normalized constraint S -> (l, N). It errors on a negative
// bound or an invalid label. Note that l ∈ S is legal: it bounds the
// l-labeled common neighbors of node sets that themselves include an
// l-labeled node.
func New(s []graph.Label, l graph.Label, n int) (Constraint, error) {
	if n < 0 {
		return Constraint{}, fmt.Errorf("access: negative bound %d", n)
	}
	if l < 0 {
		return Constraint{}, errors.New("access: invalid target label")
	}
	sorted := append([]graph.Label(nil), s...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := sorted[:0]
	for i, lab := range sorted {
		if lab < 0 {
			return Constraint{}, errors.New("access: invalid source label")
		}
		if i > 0 && lab == sorted[i-1] {
			continue
		}
		out = append(out, lab)
	}
	return Constraint{S: out, L: l, N: n}, nil
}

// MustNew is New, panicking on error; for fixtures and generators.
func MustNew(s []graph.Label, l graph.Label, n int) Constraint {
	c, err := New(s, l, n)
	if err != nil {
		panic(err)
	}
	return c
}

// Type1 reports whether the constraint is of type (1): |S| = 0, a global
// cardinality bound on l-labeled nodes.
func (c Constraint) Type1() bool { return len(c.S) == 0 }

// Type2 reports whether the constraint is of type (2): |S| = 1, a bound on
// l-neighbors of each S-labeled node.
func (c Constraint) Type2() bool { return len(c.S) == 1 }

// Arity returns |S|.
func (c Constraint) Arity() int { return len(c.S) }

// Len returns the constraint's contribution to |A| (the total length of
// constraints): |S| + 1 labels plus the bound.
func (c Constraint) Len() int { return len(c.S) + 2 }

// Key returns a canonical comparable key for the constraint's (S, l) part,
// used to deduplicate schemas.
func (c Constraint) Key() string {
	var b strings.Builder
	for _, l := range c.S {
		fmt.Fprintf(&b, "%d,", l)
	}
	fmt.Fprintf(&b, "->%d", c.L)
	return b.String()
}

// Format renders the constraint with label names, e.g.
// "(year, award) -> (movie, 4)".
func (c Constraint) Format(in *graph.Interner) string {
	if c.Type1() {
		return fmt.Sprintf("{} -> (%s, %d)", in.Name(c.L), c.N)
	}
	names := make([]string, len(c.S))
	for i, l := range c.S {
		names[i] = in.Name(l)
	}
	return fmt.Sprintf("(%s) -> (%s, %d)", strings.Join(names, ", "), in.Name(c.L), c.N)
}

// String renders the constraint with raw label numbers.
func (c Constraint) String() string {
	parts := make([]string, len(c.S))
	for i, l := range c.S {
		parts[i] = fmt.Sprint(int(l))
	}
	return fmt.Sprintf("{%s} -> (%d, %d)", strings.Join(parts, ","), int(c.L), c.N)
}
