package access

import (
	"sort"

	"boundedg/internal/graph"
)

// DiscoverOptions tunes the constraint-discovery heuristics of §II of the
// paper ("Discovering access constraints"). All four families the paper
// lists are implemented:
//
//  1. degree bounds        -> type-2 constraints l -> (l', N)
//  2. global label counts  -> type-1 constraints {} -> (l, N)
//  3. functional deps      -> the N = 1 subset of (1)/(4)
//  4. aggregate queries    -> general constraints S -> (l, N), |S| >= 2,
//     for caller-supplied candidate label sets
type DiscoverOptions struct {
	// MaxType1 keeps {} -> (l, N) only when N <= MaxType1 (0 disables
	// type-1 discovery).
	MaxType1 int
	// MaxType2 keeps l -> (l', N) only when N <= MaxType2 (0 disables).
	MaxType2 int
	// GeneralSets lists candidate (S, l) shapes for |S| >= 2 discovery,
	// mirroring the paper's group-by aggregate queries.
	GeneralSets []GeneralCandidate
	// MaxGeneral keeps S -> (l, N) only when N <= MaxGeneral (0 means no
	// cap for the supplied candidates).
	MaxGeneral int
}

// GeneralCandidate names a candidate general constraint shape.
type GeneralCandidate struct {
	S []graph.Label
	L graph.Label
}

// Discover extracts an access schema from g per opt. The discovered bounds
// are exact maxima over g (the tightest N such that g satisfies the
// constraint), so g |= Discover(g, opt) always holds.
func Discover(g *graph.Graph, opt DiscoverOptions) *Schema {
	st := graph.ComputeStats(g)
	schema := NewSchema()

	if opt.MaxType1 > 0 {
		// Deterministic order: by label.
		labels := make([]graph.Label, 0, len(st.LabelCounts))
		for l := range st.LabelCounts {
			labels = append(labels, l)
		}
		sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
		for _, l := range labels {
			if n := st.LabelCounts[l]; n <= opt.MaxType1 {
				schema.Add(MustNew(nil, l, n))
			}
		}
	}

	if opt.MaxType2 > 0 {
		keys := make([][2]graph.Label, 0, len(st.MaxLabelNeighbors))
		for k := range st.MaxLabelNeighbors {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			// k = (l, l'): each l-node has at most N l'-neighbors.
			if n := st.MaxLabelNeighbors[k]; n <= opt.MaxType2 {
				schema.Add(MustNew([]graph.Label{k[0]}, k[1], n))
			}
		}
	}

	for _, cand := range opt.GeneralSets {
		c, ok := DiscoverConstraint(g, cand.S, cand.L)
		if !ok {
			continue
		}
		if opt.MaxGeneral > 0 && c.N > opt.MaxGeneral {
			continue
		}
		schema.Add(c)
	}
	return schema
}

// DiscoverConstraint computes the tightest constraint S -> (l, N) that g
// satisfies, by materializing the index and taking the maximum entry size.
// ok is false if the shape is ill-formed (e.g. l ∈ S).
func DiscoverConstraint(g *graph.Graph, s []graph.Label, l graph.Label) (Constraint, bool) {
	c, err := New(s, l, 0)
	if err != nil {
		return Constraint{}, false
	}
	x := BuildIndex(g, c)
	c.N = x.MaxEntry()
	if c.Type1() {
		c.N = g.CountLabel(l)
	}
	return c, true
}

// DiscoverFDs returns the discovered constraints with bound N = 1 — the
// functional dependencies of discovery family (3) — drawn from type-2
// shapes over g.
func DiscoverFDs(g *graph.Graph) []Constraint {
	st := graph.ComputeStats(g)
	var out []Constraint
	keys := make([][2]graph.Label, 0, len(st.MaxLabelNeighbors))
	for k := range st.MaxLabelNeighbors {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		if st.MaxLabelNeighbors[k] == 1 {
			out = append(out, MustNew([]graph.Label{k[0]}, k[1], 1))
		}
	}
	return out
}
