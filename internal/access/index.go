package access

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"boundedg/internal/graph"
)

// Index is the index component of one access constraint φ = S -> (l, N):
// it maps every S-labeled node set VS of G that has at least one common
// neighbor labeled l to the list of those common neighbors. Lookup cost is
// O(answer) — meeting the paper's requirement of O(N) time independent of
// |G|. This replaces the MySQL tables the paper's prototype used.
type Index struct {
	c Constraint

	// entries maps the encoded sorted node IDs of VS to the entry holding
	// the common l-labeled neighbors of VS. For type-1 constraints the
	// single key is the empty string and the entry lists all l-labeled
	// nodes. Entries live behind a pointer so the maintenance hot path can
	// grow a member list without re-assigning the map slot, and the entry
	// carries its canonical key string so the reverse maps register it
	// without re-allocating one per insert.
	entries map[string]*indexEntry

	// memberKeys is the reverse map: for each l-labeled node, the entry
	// keys it appears in. It powers incremental maintenance.
	memberKeys map[graph.NodeID]map[string]struct{}

	// vsKeys is the reverse map on the key side: for each S-labeled node,
	// the entry keys whose VS tuple contains it. It lets a node deletion
	// purge exactly the entries keyed through the node — O(affected
	// entries) instead of re-deriving every neighbor's full row.
	vsKeys map[graph.NodeID]map[string]struct{}

	// addRow scratch, reused across calls. Index maintenance is
	// single-writer (it runs under the store's writer lock) and readers
	// never touch these; clone deliberately leaves them zero.
	scrGroups  [][]graph.NodeID
	scrOdo     []int
	scrCombo   []graph.NodeID
	scrSorted  []graph.NodeID
	scrKey     []byte
	scrEmptied []string
}

// indexEntry is one materialized entry: the canonical interned key plus
// the ascending member list.
type indexEntry struct {
	key     string
	members []graph.NodeID
}

// Constraint returns the constraint this index serves.
func (x *Index) Constraint() Constraint { return x.c }

// encodeKey canonicalizes VS as a sorted node-ID tuple.
func encodeKey(vs []graph.NodeID) string {
	sorted := append([]graph.NodeID(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	buf := make([]byte, 0, len(sorted)*3)
	for _, v := range sorted {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return string(buf)
}

// BuildIndex constructs the index of constraint c over g. It does not
// check the cardinality bound; see Violations.
func BuildIndex(g *graph.Graph, c Constraint) *Index {
	x := newIndex(c)
	for _, v := range g.NodesByLabel(c.L) {
		x.addRow(g, v)
	}
	return x
}

func newIndex(c Constraint) *Index {
	return &Index{
		c:          c,
		entries:    make(map[string]*indexEntry),
		memberKeys: make(map[graph.NodeID]map[string]struct{}),
		vsKeys:     make(map[graph.NodeID]map[string]struct{}),
	}
}

// addRow inserts node v (labeled c.L) into every entry whose VS is an
// S-labeled subset of v's neighborhood. It allocates only when an entry
// or a member is seen for the first time — the steady-state path of the
// live update loop (remove a row, re-derive it) reuses the index's
// scratch buffers and the entries' existing storage.
func (x *Index) addRow(g *graph.Graph, v graph.NodeID) {
	if x.c.Type1() {
		x.insert("", nil, v)
		return
	}
	// Group v's neighbors by the labels of S.
	k := len(x.c.S)
	if cap(x.scrGroups) < k {
		x.scrGroups = make([][]graph.NodeID, k)
		x.scrOdo = make([]int, k)
		x.scrCombo = make([]graph.NodeID, k)
	}
	groups := x.scrGroups[:k]
	for i := range groups {
		groups[i] = groups[i][:0]
	}
	for _, w := range g.Neighbors(v) {
		wl := g.LabelOf(w)
		for i, sl := range x.c.S {
			if wl == sl {
				groups[i] = append(groups[i], w)
				break
			}
		}
	}
	for _, grp := range groups {
		if len(grp) == 0 {
			return // no S-labeled set exists in v's neighborhood
		}
	}
	// Enumerate the cartesian product of the groups (odometer order).
	odo, combo := x.scrOdo[:k], x.scrCombo[:k]
	for i := range odo {
		odo[i] = 0
		combo[i] = groups[i][0]
	}
	for {
		x.insertHot(combo, v)
		i := k - 1
		for ; i >= 0; i-- {
			if odo[i]++; odo[i] < len(groups[i]) {
				combo[i] = groups[i][odo[i]]
				break
			}
			odo[i] = 0
			combo[i] = groups[i][0]
		}
		if i < 0 {
			return
		}
	}
}

// insertHot adds v to the entry of the VS tuple combo, encoding the key
// into scratch so the lookup is allocation-free; the key string is
// materialized only when the entry does not exist yet.
func (x *Index) insertHot(combo []graph.NodeID, v graph.NodeID) {
	sorted := append(x.scrSorted[:0], combo...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	buf := x.scrKey[:0]
	for _, u := range sorted {
		buf = binary.AppendUvarint(buf, uint64(u))
	}
	x.scrSorted, x.scrKey = sorted, buf
	e, ok := x.entries[string(buf)] // no-copy map probe
	if !ok {
		key := string(buf)
		e = &indexEntry{key: key}
		x.entries[key] = e
		for _, u := range combo {
			ks, ok := x.vsKeys[u]
			if !ok {
				ks = make(map[string]struct{})
				x.vsKeys[u] = ks
			}
			ks[key] = struct{}{}
		}
	}
	e.add(v)
	ks, ok := x.memberKeys[v]
	if !ok {
		ks = make(map[string]struct{})
		x.memberKeys[v] = ks
	}
	ks[e.key] = struct{}{}
}

// insert adds v to the entry of key. vs is the entry's VS tuple (any
// order; nil for type-1), consulted only when the entry is created to
// register the key under its tuple nodes.
//
// Entries are kept in ascending node-ID order. That canonical order is
// what makes sharded execution bit-identical to unsharded: a shard holds
// the subsequence of each entry whose members it owns, and an ascending
// k-way merge of the shard subsequences reproduces the unsharded entry
// exactly, for any shard count. (The on-disk snapshot codec already
// writes members sorted, so this changes no persisted state.)
func (x *Index) insert(key string, vs []graph.NodeID, v graph.NodeID) {
	e, existed := x.entries[key]
	if !existed {
		e = &indexEntry{key: key}
		x.entries[key] = e
		for _, u := range vs {
			ks, ok := x.vsKeys[u]
			if !ok {
				ks = make(map[string]struct{})
				x.vsKeys[u] = ks
			}
			ks[key] = struct{}{}
		}
	}
	e.add(v)
	ks, ok := x.memberKeys[v]
	if !ok {
		ks = make(map[string]struct{})
		x.memberKeys[v] = ks
	}
	ks[e.key] = struct{}{}
}

// add inserts v into the entry's ascending member list.
func (e *indexEntry) add(v graph.NodeID) {
	m := e.members
	if n := len(m); n > 0 && m[n-1] > v {
		i := sort.Search(n, func(i int) bool { return m[i] >= v })
		m = append(m, 0)
		copy(m[i+1:], m[i:])
		m[i] = v
		e.members = m
	} else {
		e.members = append(m, v)
	}
}

// dropEntryKey forgets an emptied/purged entry's key registrations on the
// VS side.
func (x *Index) dropEntryKey(key string) {
	delete(x.entries, key)
	for _, u := range decodeTupleKey(key) {
		if ks := x.vsKeys[u]; ks != nil {
			delete(ks, key)
			if len(ks) == 0 {
				delete(x.vsKeys, u)
			}
		}
	}
}

// removeRow deletes node v from every entry it appears in, preserving the
// ascending entry order insert maintains.
func (x *Index) removeRow(v graph.NodeID) {
	x.scrEmptied = x.removeRowKeep(v, x.scrEmptied[:0])
	x.dropIfEmpty(x.scrEmptied)
}

// removeRowKeep removes v from every entry it appears in but defers
// dropping the entries this empties, appending their keys to dst. The
// maintenance path re-derives the row right after the removal, and a
// singleton entry that survives the update keeps its key string, entry
// struct and reverse-map registrations instead of being dropped and
// re-allocated on every touch. The caller must settle the returned keys
// with dropIfEmpty once the row is re-derived.
func (x *Index) removeRowKeep(v graph.NodeID, dst []string) []string {
	for key := range x.memberKeys[v] {
		e := x.entries[key]
		for i, w := range e.members {
			if w == v {
				e.members = append(e.members[:i], e.members[i+1:]...)
				break
			}
		}
		if len(e.members) == 0 {
			dst = append(dst, key)
		}
	}
	delete(x.memberKeys, v)
	return dst
}

// dropIfEmpty drops the entries of the given keys that are still empty.
func (x *Index) dropIfEmpty(keys []string) {
	for _, key := range keys {
		if e := x.entries[key]; e != nil && len(e.members) == 0 {
			x.dropEntryKey(key)
		}
	}
}

// purgeVSNode deletes every entry whose VS tuple contains c (a node being
// removed from the graph): the S-labeled set no longer exists, so its
// common-neighbor list must go regardless of the members' own
// neighborhoods. Cost is proportional to the affected entries.
func (x *Index) purgeVSNode(c graph.NodeID) {
	keys := x.vsKeys[c]
	if len(keys) == 0 {
		return
	}
	for key := range keys {
		for _, w := range x.entries[key].members {
			if ks := x.memberKeys[w]; ks != nil {
				delete(ks, key)
				if len(ks) == 0 {
					delete(x.memberKeys, w)
				}
			}
		}
		x.dropEntryKey(key)
	}
	delete(x.vsKeys, c)
}

// Lookup returns the common l-labeled neighbors of the S-labeled set vs.
// The order of vs does not matter. The returned slice is shared; do not
// mutate it. Lookup time is O(len(result)) and allocation-free for
// |S| <= 8 (the map access through string(buf) does not copy).
func (x *Index) Lookup(vs []graph.NodeID) []graph.NodeID {
	if x.c.Type1() {
		return x.entries[""].membersOrNil()
	}
	if len(vs) != len(x.c.S) {
		return nil
	}
	if len(vs) > 8 {
		return x.entries[encodeKey(vs)].membersOrNil()
	}
	var tuple [8]graph.NodeID
	n := copy(tuple[:], vs)
	sorted := tuple[:n]
	for i := 1; i < n; i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var buf [8 * binary.MaxVarintLen64]byte
	k := 0
	for _, v := range sorted {
		k += binary.PutUvarint(buf[k:], uint64(v))
	}
	return x.entries[string(buf[:k])].membersOrNil()
}

// membersOrNil is the nil-safe member accessor for lookup paths probing
// possibly-absent entries.
func (e *indexEntry) membersOrNil() []graph.NodeID {
	if e == nil {
		return nil
	}
	return e.members
}

// MaxEntry returns the size of the largest entry (0 for an empty index) —
// the actual maximum common-neighbor count realized in G.
func (x *Index) MaxEntry() int {
	m := 0
	for _, e := range x.entries {
		if len(e.members) > m {
			m = len(e.members)
		}
	}
	return m
}

// NumEntries returns the number of materialized entries.
func (x *Index) NumEntries() int { return len(x.entries) }

// SizeNodes returns the total number of node references stored — the
// |index| figure reported in Fig 5(d,h,l) of the paper.
func (x *Index) SizeNodes() int {
	t := 0
	for _, e := range x.entries {
		t += len(e.members)
	}
	return t
}

// Violation records an entry exceeding its constraint's bound.
type Violation struct {
	Constraint Constraint
	// Count is the offending common-neighbor count (> Constraint.N).
	Count int
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("access: constraint %v violated: %d common neighbors (bound %d)", v.Constraint, v.Count, v.Constraint.N)
}

// check returns a violation if any entry exceeds the bound.
func (x *Index) check() *Violation {
	if m := x.MaxEntry(); m > x.c.N {
		return &Violation{Constraint: x.c, Count: m}
	}
	return nil
}

// IndexSet bundles one Index per constraint of a schema — the runtime form
// of "G |= A with indices in place".
type IndexSet struct {
	schema  *Schema
	indexes []*Index

	// rowOwner, when set, restricts maintenance to the rows this instance
	// owns: maintainRows re-derives a node's memberships only if
	// rowOwner(v) holds. A shard's set thereby stays the exact row
	// partition of the global index — remote-endpoint stubs living in the
	// shard graph never grow local rows. Entry purges are NOT filtered
	// (a deleted VS node kills its entries on every shard holding them).
	rowOwner func(graph.NodeID) bool
}

// SetRowOwner installs the row-ownership filter (nil accepts every row).
// The shard runtime calls it right after Split or snapshot recovery.
func (s *IndexSet) SetRowOwner(f func(graph.NodeID) bool) { s.rowOwner = f }

func (s *IndexSet) ownsRow(v graph.NodeID) bool {
	return s.rowOwner == nil || s.rowOwner(v)
}

// Build constructs indices for every constraint of A over g and verifies
// that g satisfies the cardinality bounds; it returns the violations (and
// a nil IndexSet) if not.
func Build(g *graph.Graph, a *Schema) (*IndexSet, []Violation) {
	s := BuildUnchecked(g, a)
	var viols []Violation
	for _, x := range s.indexes {
		if v := x.check(); v != nil {
			viols = append(viols, *v)
		}
	}
	if len(viols) > 0 {
		return nil, viols
	}
	return s, nil
}

// BuildUnchecked constructs indices without checking cardinality bounds.
// Per-constraint indices are independent, so they are built in parallel
// (the graph is only read); this is the offline preprocessing step the
// bounded-evaluation approach amortizes across queries.
func BuildUnchecked(g *graph.Graph, a *Schema) *IndexSet {
	s := &IndexSet{schema: a, indexes: make([]*Index, a.Count())}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Count() {
		workers = a.Count()
	}
	if workers <= 1 {
		for i, c := range a.Constraints() {
			s.indexes[i] = BuildIndex(g, c)
		}
		return s
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				s.indexes[i] = BuildIndex(g, a.At(i))
			}
		}()
	}
	for i := range a.Constraints() {
		next <- i
	}
	close(next)
	wg.Wait()
	return s
}

// Validate reports whether g satisfies the cardinality constraints of A,
// returning the violations found.
func Validate(g *graph.Graph, a *Schema) []Violation {
	_, viols := Build(g, a)
	return viols
}

// Schema returns the schema this set serves.
func (s *IndexSet) Schema() *Schema { return s.schema }

// Index returns the index of the i-th constraint (in schema order).
func (s *IndexSet) Index(i int) *Index { return s.indexes[i] }

// SizeNodes returns the total stored node references across all indices.
func (s *IndexSet) SizeNodes() int {
	t := 0
	for _, x := range s.indexes {
		t += x.SizeNodes()
	}
	return t
}

// clone deep-copies the index.
func (x *Index) clone() *Index {
	c := &Index{
		c:          x.c,
		entries:    make(map[string]*indexEntry, len(x.entries)),
		memberKeys: make(map[graph.NodeID]map[string]struct{}, len(x.memberKeys)),
		vsKeys:     make(map[graph.NodeID]map[string]struct{}, len(x.vsKeys)),
	}
	for k, e := range x.entries {
		c.entries[k] = &indexEntry{key: k, members: append([]graph.NodeID(nil), e.members...)}
	}
	cloneKeys := func(dst map[graph.NodeID]map[string]struct{}, src map[graph.NodeID]map[string]struct{}) {
		for v, ks := range src {
			m := make(map[string]struct{}, len(ks))
			for k := range ks {
				m[k] = struct{}{}
			}
			dst[v] = m
		}
	}
	cloneKeys(c.memberKeys, x.memberKeys)
	cloneKeys(c.vsKeys, x.vsKeys)
	return c
}

// Clone returns a deep copy of the set (sharing the schema, which is
// immutable). The copy can be maintained independently — the versioned
// store uses this for its second copy-on-write instance.
func (s *IndexSet) Clone() *IndexSet {
	c := &IndexSet{schema: s.schema, indexes: make([]*Index, len(s.indexes)), rowOwner: s.rowOwner}
	for i, x := range s.indexes {
		c.indexes[i] = x.clone()
	}
	return c
}

// maintainRows re-derives the index rows of the given nodes from g's
// current state: each node is removed from every entry it appears in and,
// if live and matching the constraint's l, re-inserted against its current
// neighborhood. Cost is O(Σ degree(rows)), independent of |G|.
func (s *IndexSet) maintainRows(g *graph.Graph, rows []graph.NodeID) {
	for _, v := range rows {
		live := g.Contains(v)
		var l graph.Label
		own := false
		if live {
			l = g.LabelOf(v)
			own = s.ownsRow(v)
		}
		for _, x := range s.indexes {
			if live && x.c.L != l {
				// Labels are immutable, so a live node is only ever a
				// member of indexes over its own label; nothing to remove
				// or re-derive elsewhere. (A deleted node's label is gone
				// — every index must be checked for stale membership.)
				continue
			}
			x.scrEmptied = x.removeRowKeep(v, x.scrEmptied[:0])
			if live && own {
				x.addRow(g, v)
			}
			x.dropIfEmpty(x.scrEmptied)
		}
	}
}

// EntryLen returns the current size of the i-th constraint's entry for
// key (0 if absent). The shard router sums it across shards to evaluate
// cardinality bounds against the global entry a row partition splits up.
func (s *IndexSet) EntryLen(i int, key string) int {
	return len(s.indexes[i].entries[key].membersOrNil())
}

// RebindSchema swaps the set's schema for an equivalent one. Recovery
// needs it: each shard's snapshot decode builds a private *Schema, but
// plan compilation compares schemas by pointer, so all shards must share
// one. The schemas must agree constraint-for-constraint.
func (s *IndexSet) RebindSchema(a *Schema) error {
	if a.Count() != len(s.indexes) {
		return fmt.Errorf("access: cannot rebind schema: %d constraints, set has %d", a.Count(), len(s.indexes))
	}
	for i, x := range s.indexes {
		c := a.At(i)
		if c.Key() != x.c.Key() || c.N != x.c.N {
			return fmt.Errorf("access: cannot rebind schema: constraint %d differs (%v vs %v)", i, c, x.c)
		}
	}
	s.schema = a
	return nil
}

// Split row-partitions the set: member v of every entry goes to shard
// owner(v), under the same entry key (keys carry global node IDs). Entry
// subsequences inherit the ascending order, so a k-way merge of the shard
// entries reproduces the global entry exactly. Entries with no members on
// a shard are simply absent there. The schema pointer is shared; callers
// install the matching row-ownership filter on each part afterwards.
func (s *IndexSet) Split(n int, owner func(graph.NodeID) int) []*IndexSet {
	parts := make([]*IndexSet, n)
	for p := range parts {
		parts[p] = &IndexSet{schema: s.schema, indexes: make([]*Index, len(s.indexes))}
		for i, x := range s.indexes {
			parts[p].indexes[i] = newIndex(x.c)
		}
	}
	for i, x := range s.indexes {
		for key, entry := range x.entries {
			vs := decodeTupleKey(key)
			for _, v := range entry.members {
				parts[owner(v)].indexes[i].insert(key, vs, v)
			}
		}
	}
	return parts
}

// checkRows returns the cardinality violations among entries containing
// any of the given nodes (at most one per constraint, carrying the worst
// count). Because an entry's membership only changes through maintainRows
// of a node it contains, checking the just-maintained rows finds every
// violation an update introduced — in O(Σ |memberKeys(rows)|) instead of
// the full-index scan of check() — provided the pre-update state held no
// violations.
func (s *IndexSet) checkRows(rows []graph.NodeID) []Violation {
	var viols []Violation
	for _, x := range s.indexes {
		worst := 0
		for _, v := range rows {
			for key := range x.memberKeys[v] {
				if n := len(x.entries[key].members); n > x.c.N && n > worst {
					worst = n
				}
			}
		}
		if worst > 0 {
			viols = append(viols, Violation{Constraint: x.c, Count: worst})
		}
	}
	return viols
}

// ApplyDelta applies d to g and incrementally maintains every index,
// touching only ΔG ∪ NbG(ΔG) per §II of the paper. It returns the IDs
// assigned to the delta's inserted nodes, any cardinality violations
// introduced by the update (the indices are still maintained correctly in
// that case), and the first structural error from applying the delta.
//
// ApplyDelta is best-effort: on a structural error the graph may be
// partially updated, and a violating delta stays applied. The serving
// path needs all-or-nothing semantics — use ApplyDeltaTx there.
func (s *IndexSet) ApplyDelta(g *graph.Graph, d *graph.Delta) ([]graph.NodeID, []Violation, error) {
	touched := d.Touched(g)
	newIDs, err := d.Apply(g)
	if err != nil {
		return nil, nil, err
	}
	recompute := make([]graph.NodeID, 0, len(touched)+len(newIDs))
	for v := range touched {
		recompute = append(recompute, v)
	}
	recompute = append(recompute, newIDs...)
	s.maintainRows(g, recompute)
	var viols []Violation
	for _, x := range s.indexes {
		if v := x.check(); v != nil {
			viols = append(viols, *v)
		}
	}
	return newIDs, viols, nil
}

// ReplayDelta applies an already-accepted delta to the paired
// copy-on-write instance — the lag catch-up of the epoch-versioned
// store. d was validated and accepted on the other instance while both
// instances were identical, so the transactional machinery is skipped:
// no undo log, no violation re-check, and the maintained row set is the
// accepted stage's Touched set (changed rows plus new IDs) instead of a
// re-derivation. Touched can strictly contain the rows whose index
// derivations had to re-run; re-deriving the extras is harmless —
// membership is a pure function of the graph's current neighborhoods.
func (s *IndexSet) ReplayDelta(g *graph.Graph, d *graph.Delta, rows []graph.NodeID) error {
	var deleted []graph.NodeID
	for _, v := range d.DelNodes {
		if g.Contains(v) {
			deleted = append(deleted, v)
		}
	}
	if _, err := d.Apply(g); err != nil {
		return err
	}
	for _, x := range s.indexes {
		for _, c := range deleted {
			x.purgeVSNode(c)
		}
	}
	s.maintainRows(g, rows)
	return nil
}

// ViolationError is the error ApplyDeltaTx returns for a delta rejected
// because it would break a cardinality bound.
type ViolationError struct {
	Violations []Violation
}

// Error renders the first violation (there is at least one).
func (e *ViolationError) Error() string {
	return fmt.Sprintf("access: delta rejected: %s", e.Violations[0].Error())
}

// DeltaResult reports an accepted ApplyDeltaTx: the IDs assigned to the
// delta's inserted nodes, and every node whose adjacency actually changed
// (edge endpoints, deleted nodes and their neighbors, plus the new IDs) —
// exactly the rows an incremental Frozen.Refresh must re-read.
type DeltaResult struct {
	NewIDs  []graph.NodeID
	Touched []graph.NodeID
}

// ApplyDeltaTx is the transactional ApplyDelta of the live serving path:
// it applies d to g and maintains every index, but a delta that fails
// structurally (bad node or edge reference) or breaks a cardinality bound
// leaves both the graph and the indexes exactly untouched — including the
// graph's node-ID space, so a rejected insert does not shift future IDs.
// Violations surface as a *ViolationError; g must satisfy the schema's
// bounds on entry (the scoped violation check relies on it).
//
// Maintenance work is proportional to the affected index rows, not |G|:
// full row re-derivation happens only for nodes whose memberships may
// change outside dying entries — explicit edge endpoints, the deleted
// nodes themselves, and the inserted nodes. A deleted node's neighbors
// are NOT re-derived: their own memberships change only in entries keyed
// through the dead node (an entry's membership is a pure function of the
// member's unchanged-elsewhere neighborhood plus the liveness of its VS
// tuple), and purgeVSNode drops exactly those entries via the VS-side
// reverse map. Deleting a node next to a hub therefore costs the
// affected entries, not a re-derivation of the hub's whole row.
func (s *IndexSet) ApplyDeltaTx(g *graph.Graph, d *graph.Delta) (*DeltaResult, error) {
	sd, err := s.StageDelta(g, d)
	if err != nil {
		return nil, err
	}
	if viols := sd.Violations(); len(viols) > 0 {
		sd.Rollback()
		return nil, &ViolationError{Violations: viols}
	}
	return sd.Result(), nil
}
