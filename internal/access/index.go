package access

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"boundedg/internal/graph"
)

// Index is the index component of one access constraint φ = S -> (l, N):
// it maps every S-labeled node set VS of G that has at least one common
// neighbor labeled l to the list of those common neighbors. Lookup cost is
// O(answer) — meeting the paper's requirement of O(N) time independent of
// |G|. This replaces the MySQL tables the paper's prototype used.
type Index struct {
	c Constraint

	// entries maps the encoded sorted node IDs of VS to the common
	// l-labeled neighbors of VS. For type-1 constraints the single key is
	// the empty string and the entry lists all l-labeled nodes.
	entries map[string][]graph.NodeID

	// memberKeys is the reverse map: for each l-labeled node, the entry
	// keys it appears in. It powers incremental maintenance.
	memberKeys map[graph.NodeID]map[string]struct{}

	// vsKeys is the reverse map on the key side: for each S-labeled node,
	// the entry keys whose VS tuple contains it. It lets a node deletion
	// purge exactly the entries keyed through the node — O(affected
	// entries) instead of re-deriving every neighbor's full row.
	vsKeys map[graph.NodeID]map[string]struct{}
}

// Constraint returns the constraint this index serves.
func (x *Index) Constraint() Constraint { return x.c }

// encodeKey canonicalizes VS as a sorted node-ID tuple.
func encodeKey(vs []graph.NodeID) string {
	sorted := append([]graph.NodeID(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	buf := make([]byte, 0, len(sorted)*3)
	for _, v := range sorted {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return string(buf)
}

// BuildIndex constructs the index of constraint c over g. It does not
// check the cardinality bound; see Violations.
func BuildIndex(g *graph.Graph, c Constraint) *Index {
	x := newIndex(c)
	for _, v := range g.NodesByLabel(c.L) {
		x.addRow(g, v)
	}
	return x
}

func newIndex(c Constraint) *Index {
	return &Index{
		c:          c,
		entries:    make(map[string][]graph.NodeID),
		memberKeys: make(map[graph.NodeID]map[string]struct{}),
		vsKeys:     make(map[graph.NodeID]map[string]struct{}),
	}
}

// addRow inserts node v (labeled c.L) into every entry whose VS is an
// S-labeled subset of v's neighborhood.
func (x *Index) addRow(g *graph.Graph, v graph.NodeID) {
	if x.c.Type1() {
		x.insert("", nil, v)
		return
	}
	// Group v's neighbors by the labels of S.
	groups := make([][]graph.NodeID, len(x.c.S))
	for _, w := range g.Neighbors(v) {
		wl := g.LabelOf(w)
		for i, sl := range x.c.S {
			if wl == sl {
				groups[i] = append(groups[i], w)
				break
			}
		}
	}
	for _, grp := range groups {
		if len(grp) == 0 {
			return // no S-labeled set exists in v's neighborhood
		}
	}
	// Enumerate the cartesian product of the groups.
	combo := make([]graph.NodeID, len(groups))
	var rec func(i int)
	rec = func(i int) {
		if i == len(groups) {
			x.insert(encodeKey(combo), combo, v)
			return
		}
		for _, w := range groups[i] {
			combo[i] = w
			rec(i + 1)
		}
	}
	rec(0)
}

// insert adds v to the entry of key. vs is the entry's VS tuple (any
// order; nil for type-1), consulted only when the entry is created to
// register the key under its tuple nodes.
//
// Entries are kept in ascending node-ID order. That canonical order is
// what makes sharded execution bit-identical to unsharded: a shard holds
// the subsequence of each entry whose members it owns, and an ascending
// k-way merge of the shard subsequences reproduces the unsharded entry
// exactly, for any shard count. (The on-disk snapshot codec already
// writes members sorted, so this changes no persisted state.)
func (x *Index) insert(key string, vs []graph.NodeID, v graph.NodeID) {
	entry, existed := x.entries[key]
	if !existed {
		for _, u := range vs {
			ks, ok := x.vsKeys[u]
			if !ok {
				ks = make(map[string]struct{})
				x.vsKeys[u] = ks
			}
			ks[key] = struct{}{}
		}
	}
	if n := len(entry); n > 0 && entry[n-1] > v {
		i := sort.Search(n, func(i int) bool { return entry[i] >= v })
		entry = append(entry, 0)
		copy(entry[i+1:], entry[i:])
		entry[i] = v
		x.entries[key] = entry
	} else {
		x.entries[key] = append(entry, v)
	}
	ks, ok := x.memberKeys[v]
	if !ok {
		ks = make(map[string]struct{})
		x.memberKeys[v] = ks
	}
	ks[key] = struct{}{}
}

// dropEntryKey forgets an emptied/purged entry's key registrations on the
// VS side.
func (x *Index) dropEntryKey(key string) {
	delete(x.entries, key)
	for _, u := range decodeTupleKey(key) {
		if ks := x.vsKeys[u]; ks != nil {
			delete(ks, key)
			if len(ks) == 0 {
				delete(x.vsKeys, u)
			}
		}
	}
}

// removeRow deletes node v from every entry it appears in, preserving the
// ascending entry order insert maintains.
func (x *Index) removeRow(v graph.NodeID) {
	for key := range x.memberKeys[v] {
		entry := x.entries[key]
		for i, w := range entry {
			if w == v {
				entry = append(entry[:i], entry[i+1:]...)
				break
			}
		}
		if len(entry) == 0 {
			x.dropEntryKey(key)
		} else {
			x.entries[key] = entry
		}
	}
	delete(x.memberKeys, v)
}

// purgeVSNode deletes every entry whose VS tuple contains c (a node being
// removed from the graph): the S-labeled set no longer exists, so its
// common-neighbor list must go regardless of the members' own
// neighborhoods. Cost is proportional to the affected entries.
func (x *Index) purgeVSNode(c graph.NodeID) {
	keys := x.vsKeys[c]
	if len(keys) == 0 {
		return
	}
	for key := range keys {
		for _, w := range x.entries[key] {
			if ks := x.memberKeys[w]; ks != nil {
				delete(ks, key)
				if len(ks) == 0 {
					delete(x.memberKeys, w)
				}
			}
		}
		x.dropEntryKey(key)
	}
	delete(x.vsKeys, c)
}

// Lookup returns the common l-labeled neighbors of the S-labeled set vs.
// The order of vs does not matter. The returned slice is shared; do not
// mutate it. Lookup time is O(len(result)) and allocation-free for
// |S| <= 8 (the map access through string(buf) does not copy).
func (x *Index) Lookup(vs []graph.NodeID) []graph.NodeID {
	if x.c.Type1() {
		return x.entries[""]
	}
	if len(vs) != len(x.c.S) {
		return nil
	}
	if len(vs) > 8 {
		return x.entries[encodeKey(vs)]
	}
	var tuple [8]graph.NodeID
	n := copy(tuple[:], vs)
	sorted := tuple[:n]
	for i := 1; i < n; i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var buf [8 * binary.MaxVarintLen64]byte
	k := 0
	for _, v := range sorted {
		k += binary.PutUvarint(buf[k:], uint64(v))
	}
	return x.entries[string(buf[:k])]
}

// MaxEntry returns the size of the largest entry (0 for an empty index) —
// the actual maximum common-neighbor count realized in G.
func (x *Index) MaxEntry() int {
	m := 0
	for _, e := range x.entries {
		if len(e) > m {
			m = len(e)
		}
	}
	return m
}

// NumEntries returns the number of materialized entries.
func (x *Index) NumEntries() int { return len(x.entries) }

// SizeNodes returns the total number of node references stored — the
// |index| figure reported in Fig 5(d,h,l) of the paper.
func (x *Index) SizeNodes() int {
	t := 0
	for _, e := range x.entries {
		t += len(e)
	}
	return t
}

// Violation records an entry exceeding its constraint's bound.
type Violation struct {
	Constraint Constraint
	// Count is the offending common-neighbor count (> Constraint.N).
	Count int
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("access: constraint %v violated: %d common neighbors (bound %d)", v.Constraint, v.Count, v.Constraint.N)
}

// check returns a violation if any entry exceeds the bound.
func (x *Index) check() *Violation {
	if m := x.MaxEntry(); m > x.c.N {
		return &Violation{Constraint: x.c, Count: m}
	}
	return nil
}

// IndexSet bundles one Index per constraint of a schema — the runtime form
// of "G |= A with indices in place".
type IndexSet struct {
	schema  *Schema
	indexes []*Index

	// rowOwner, when set, restricts maintenance to the rows this instance
	// owns: maintainRows re-derives a node's memberships only if
	// rowOwner(v) holds. A shard's set thereby stays the exact row
	// partition of the global index — remote-endpoint stubs living in the
	// shard graph never grow local rows. Entry purges are NOT filtered
	// (a deleted VS node kills its entries on every shard holding them).
	rowOwner func(graph.NodeID) bool
}

// SetRowOwner installs the row-ownership filter (nil accepts every row).
// The shard runtime calls it right after Split or snapshot recovery.
func (s *IndexSet) SetRowOwner(f func(graph.NodeID) bool) { s.rowOwner = f }

func (s *IndexSet) ownsRow(v graph.NodeID) bool {
	return s.rowOwner == nil || s.rowOwner(v)
}

// Build constructs indices for every constraint of A over g and verifies
// that g satisfies the cardinality bounds; it returns the violations (and
// a nil IndexSet) if not.
func Build(g *graph.Graph, a *Schema) (*IndexSet, []Violation) {
	s := BuildUnchecked(g, a)
	var viols []Violation
	for _, x := range s.indexes {
		if v := x.check(); v != nil {
			viols = append(viols, *v)
		}
	}
	if len(viols) > 0 {
		return nil, viols
	}
	return s, nil
}

// BuildUnchecked constructs indices without checking cardinality bounds.
// Per-constraint indices are independent, so they are built in parallel
// (the graph is only read); this is the offline preprocessing step the
// bounded-evaluation approach amortizes across queries.
func BuildUnchecked(g *graph.Graph, a *Schema) *IndexSet {
	s := &IndexSet{schema: a, indexes: make([]*Index, a.Count())}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Count() {
		workers = a.Count()
	}
	if workers <= 1 {
		for i, c := range a.Constraints() {
			s.indexes[i] = BuildIndex(g, c)
		}
		return s
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				s.indexes[i] = BuildIndex(g, a.At(i))
			}
		}()
	}
	for i := range a.Constraints() {
		next <- i
	}
	close(next)
	wg.Wait()
	return s
}

// Validate reports whether g satisfies the cardinality constraints of A,
// returning the violations found.
func Validate(g *graph.Graph, a *Schema) []Violation {
	_, viols := Build(g, a)
	return viols
}

// Schema returns the schema this set serves.
func (s *IndexSet) Schema() *Schema { return s.schema }

// Index returns the index of the i-th constraint (in schema order).
func (s *IndexSet) Index(i int) *Index { return s.indexes[i] }

// SizeNodes returns the total stored node references across all indices.
func (s *IndexSet) SizeNodes() int {
	t := 0
	for _, x := range s.indexes {
		t += x.SizeNodes()
	}
	return t
}

// clone deep-copies the index.
func (x *Index) clone() *Index {
	c := &Index{
		c:          x.c,
		entries:    make(map[string][]graph.NodeID, len(x.entries)),
		memberKeys: make(map[graph.NodeID]map[string]struct{}, len(x.memberKeys)),
		vsKeys:     make(map[graph.NodeID]map[string]struct{}, len(x.vsKeys)),
	}
	for k, e := range x.entries {
		c.entries[k] = append([]graph.NodeID(nil), e...)
	}
	cloneKeys := func(dst map[graph.NodeID]map[string]struct{}, src map[graph.NodeID]map[string]struct{}) {
		for v, ks := range src {
			m := make(map[string]struct{}, len(ks))
			for k := range ks {
				m[k] = struct{}{}
			}
			dst[v] = m
		}
	}
	cloneKeys(c.memberKeys, x.memberKeys)
	cloneKeys(c.vsKeys, x.vsKeys)
	return c
}

// Clone returns a deep copy of the set (sharing the schema, which is
// immutable). The copy can be maintained independently — the versioned
// store uses this for its second copy-on-write instance.
func (s *IndexSet) Clone() *IndexSet {
	c := &IndexSet{schema: s.schema, indexes: make([]*Index, len(s.indexes)), rowOwner: s.rowOwner}
	for i, x := range s.indexes {
		c.indexes[i] = x.clone()
	}
	return c
}

// maintainRows re-derives the index rows of the given nodes from g's
// current state: each node is removed from every entry it appears in and,
// if live and matching the constraint's l, re-inserted against its current
// neighborhood. Cost is O(Σ degree(rows)), independent of |G|.
func (s *IndexSet) maintainRows(g *graph.Graph, rows []graph.NodeID) {
	for _, x := range s.indexes {
		for _, v := range rows {
			x.removeRow(v)
			if g.Contains(v) && s.ownsRow(v) && g.LabelOf(v) == x.c.L {
				x.addRow(g, v)
			}
		}
	}
}

// EntryLen returns the current size of the i-th constraint's entry for
// key (0 if absent). The shard router sums it across shards to evaluate
// cardinality bounds against the global entry a row partition splits up.
func (s *IndexSet) EntryLen(i int, key string) int {
	return len(s.indexes[i].entries[key])
}

// RebindSchema swaps the set's schema for an equivalent one. Recovery
// needs it: each shard's snapshot decode builds a private *Schema, but
// plan compilation compares schemas by pointer, so all shards must share
// one. The schemas must agree constraint-for-constraint.
func (s *IndexSet) RebindSchema(a *Schema) error {
	if a.Count() != len(s.indexes) {
		return fmt.Errorf("access: cannot rebind schema: %d constraints, set has %d", a.Count(), len(s.indexes))
	}
	for i, x := range s.indexes {
		c := a.At(i)
		if c.Key() != x.c.Key() || c.N != x.c.N {
			return fmt.Errorf("access: cannot rebind schema: constraint %d differs (%v vs %v)", i, c, x.c)
		}
	}
	s.schema = a
	return nil
}

// Split row-partitions the set: member v of every entry goes to shard
// owner(v), under the same entry key (keys carry global node IDs). Entry
// subsequences inherit the ascending order, so a k-way merge of the shard
// entries reproduces the global entry exactly. Entries with no members on
// a shard are simply absent there. The schema pointer is shared; callers
// install the matching row-ownership filter on each part afterwards.
func (s *IndexSet) Split(n int, owner func(graph.NodeID) int) []*IndexSet {
	parts := make([]*IndexSet, n)
	for p := range parts {
		parts[p] = &IndexSet{schema: s.schema, indexes: make([]*Index, len(s.indexes))}
		for i, x := range s.indexes {
			parts[p].indexes[i] = newIndex(x.c)
		}
	}
	for i, x := range s.indexes {
		for key, entry := range x.entries {
			vs := decodeTupleKey(key)
			for _, v := range entry {
				parts[owner(v)].indexes[i].insert(key, vs, v)
			}
		}
	}
	return parts
}

// checkRows returns the cardinality violations among entries containing
// any of the given nodes (at most one per constraint, carrying the worst
// count). Because an entry's membership only changes through maintainRows
// of a node it contains, checking the just-maintained rows finds every
// violation an update introduced — in O(Σ |memberKeys(rows)|) instead of
// the full-index scan of check() — provided the pre-update state held no
// violations.
func (s *IndexSet) checkRows(rows []graph.NodeID) []Violation {
	var viols []Violation
	for _, x := range s.indexes {
		worst := 0
		for _, v := range rows {
			for key := range x.memberKeys[v] {
				if n := len(x.entries[key]); n > x.c.N && n > worst {
					worst = n
				}
			}
		}
		if worst > 0 {
			viols = append(viols, Violation{Constraint: x.c, Count: worst})
		}
	}
	return viols
}

// ApplyDelta applies d to g and incrementally maintains every index,
// touching only ΔG ∪ NbG(ΔG) per §II of the paper. It returns the IDs
// assigned to the delta's inserted nodes, any cardinality violations
// introduced by the update (the indices are still maintained correctly in
// that case), and the first structural error from applying the delta.
//
// ApplyDelta is best-effort: on a structural error the graph may be
// partially updated, and a violating delta stays applied. The serving
// path needs all-or-nothing semantics — use ApplyDeltaTx there.
func (s *IndexSet) ApplyDelta(g *graph.Graph, d *graph.Delta) ([]graph.NodeID, []Violation, error) {
	touched := d.Touched(g)
	newIDs, err := d.Apply(g)
	if err != nil {
		return nil, nil, err
	}
	recompute := make([]graph.NodeID, 0, len(touched)+len(newIDs))
	for v := range touched {
		recompute = append(recompute, v)
	}
	recompute = append(recompute, newIDs...)
	s.maintainRows(g, recompute)
	var viols []Violation
	for _, x := range s.indexes {
		if v := x.check(); v != nil {
			viols = append(viols, *v)
		}
	}
	return newIDs, viols, nil
}

// ViolationError is the error ApplyDeltaTx returns for a delta rejected
// because it would break a cardinality bound.
type ViolationError struct {
	Violations []Violation
}

// Error renders the first violation (there is at least one).
func (e *ViolationError) Error() string {
	return fmt.Sprintf("access: delta rejected: %s", e.Violations[0].Error())
}

// DeltaResult reports an accepted ApplyDeltaTx: the IDs assigned to the
// delta's inserted nodes, and every node whose adjacency actually changed
// (edge endpoints, deleted nodes and their neighbors, plus the new IDs) —
// exactly the rows an incremental Frozen.Refresh must re-read.
type DeltaResult struct {
	NewIDs  []graph.NodeID
	Touched []graph.NodeID
}

// ApplyDeltaTx is the transactional ApplyDelta of the live serving path:
// it applies d to g and maintains every index, but a delta that fails
// structurally (bad node or edge reference) or breaks a cardinality bound
// leaves both the graph and the indexes exactly untouched — including the
// graph's node-ID space, so a rejected insert does not shift future IDs.
// Violations surface as a *ViolationError; g must satisfy the schema's
// bounds on entry (the scoped violation check relies on it).
//
// Maintenance work is proportional to the affected index rows, not |G|:
// full row re-derivation happens only for nodes whose memberships may
// change outside dying entries — explicit edge endpoints, the deleted
// nodes themselves, and the inserted nodes. A deleted node's neighbors
// are NOT re-derived: their own memberships change only in entries keyed
// through the dead node (an entry's membership is a pure function of the
// member's unchanged-elsewhere neighborhood plus the liveness of its VS
// tuple), and purgeVSNode drops exactly those entries via the VS-side
// reverse map. Deleting a node next to a hub therefore costs the
// affected entries, not a re-derivation of the hub's whole row.
func (s *IndexSet) ApplyDeltaTx(g *graph.Graph, d *graph.Delta) (*DeltaResult, error) {
	sd, err := s.StageDelta(g, d)
	if err != nil {
		return nil, err
	}
	if viols := sd.Violations(); len(viols) > 0 {
		sd.Rollback()
		return nil, &ViolationError{Violations: viols}
	}
	return sd.Result(), nil
}
