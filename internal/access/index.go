package access

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"boundedg/internal/graph"
)

// Index is the index component of one access constraint φ = S -> (l, N):
// it maps every S-labeled node set VS of G that has at least one common
// neighbor labeled l to the list of those common neighbors. Lookup cost is
// O(answer) — meeting the paper's requirement of O(N) time independent of
// |G|. This replaces the MySQL tables the paper's prototype used.
type Index struct {
	c Constraint

	// entries maps the encoded sorted node IDs of VS to the common
	// l-labeled neighbors of VS. For type-1 constraints the single key is
	// the empty string and the entry lists all l-labeled nodes.
	entries map[string][]graph.NodeID

	// memberKeys is the reverse map: for each l-labeled node, the entry
	// keys it appears in. It powers incremental maintenance.
	memberKeys map[graph.NodeID]map[string]struct{}
}

// Constraint returns the constraint this index serves.
func (x *Index) Constraint() Constraint { return x.c }

// encodeKey canonicalizes VS as a sorted node-ID tuple.
func encodeKey(vs []graph.NodeID) string {
	sorted := append([]graph.NodeID(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	buf := make([]byte, 0, len(sorted)*3)
	for _, v := range sorted {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return string(buf)
}

// BuildIndex constructs the index of constraint c over g. It does not
// check the cardinality bound; see Violations.
func BuildIndex(g *graph.Graph, c Constraint) *Index {
	x := &Index{
		c:          c,
		entries:    make(map[string][]graph.NodeID),
		memberKeys: make(map[graph.NodeID]map[string]struct{}),
	}
	for _, v := range g.NodesByLabel(c.L) {
		x.addRow(g, v)
	}
	return x
}

// addRow inserts node v (labeled c.L) into every entry whose VS is an
// S-labeled subset of v's neighborhood.
func (x *Index) addRow(g *graph.Graph, v graph.NodeID) {
	if x.c.Type1() {
		x.insert("", v)
		return
	}
	// Group v's neighbors by the labels of S.
	groups := make([][]graph.NodeID, len(x.c.S))
	for _, w := range g.Neighbors(v) {
		wl := g.LabelOf(w)
		for i, sl := range x.c.S {
			if wl == sl {
				groups[i] = append(groups[i], w)
				break
			}
		}
	}
	for _, grp := range groups {
		if len(grp) == 0 {
			return // no S-labeled set exists in v's neighborhood
		}
	}
	// Enumerate the cartesian product of the groups.
	combo := make([]graph.NodeID, len(groups))
	var rec func(i int)
	rec = func(i int) {
		if i == len(groups) {
			x.insert(encodeKey(combo), v)
			return
		}
		for _, w := range groups[i] {
			combo[i] = w
			rec(i + 1)
		}
	}
	rec(0)
}

func (x *Index) insert(key string, v graph.NodeID) {
	x.entries[key] = append(x.entries[key], v)
	ks, ok := x.memberKeys[v]
	if !ok {
		ks = make(map[string]struct{})
		x.memberKeys[v] = ks
	}
	ks[key] = struct{}{}
}

// removeRow deletes node v from every entry it appears in.
func (x *Index) removeRow(v graph.NodeID) {
	for key := range x.memberKeys[v] {
		entry := x.entries[key]
		for i, w := range entry {
			if w == v {
				entry[i] = entry[len(entry)-1]
				entry = entry[:len(entry)-1]
				break
			}
		}
		if len(entry) == 0 {
			delete(x.entries, key)
		} else {
			x.entries[key] = entry
		}
	}
	delete(x.memberKeys, v)
}

// Lookup returns the common l-labeled neighbors of the S-labeled set vs.
// The order of vs does not matter. The returned slice is shared; do not
// mutate it. Lookup time is O(len(result)) and allocation-free for
// |S| <= 8 (the map access through string(buf) does not copy).
func (x *Index) Lookup(vs []graph.NodeID) []graph.NodeID {
	if x.c.Type1() {
		return x.entries[""]
	}
	if len(vs) != len(x.c.S) {
		return nil
	}
	if len(vs) > 8 {
		return x.entries[encodeKey(vs)]
	}
	var tuple [8]graph.NodeID
	n := copy(tuple[:], vs)
	sorted := tuple[:n]
	for i := 1; i < n; i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var buf [8 * binary.MaxVarintLen64]byte
	k := 0
	for _, v := range sorted {
		k += binary.PutUvarint(buf[k:], uint64(v))
	}
	return x.entries[string(buf[:k])]
}

// MaxEntry returns the size of the largest entry (0 for an empty index) —
// the actual maximum common-neighbor count realized in G.
func (x *Index) MaxEntry() int {
	m := 0
	for _, e := range x.entries {
		if len(e) > m {
			m = len(e)
		}
	}
	return m
}

// NumEntries returns the number of materialized entries.
func (x *Index) NumEntries() int { return len(x.entries) }

// SizeNodes returns the total number of node references stored — the
// |index| figure reported in Fig 5(d,h,l) of the paper.
func (x *Index) SizeNodes() int {
	t := 0
	for _, e := range x.entries {
		t += len(e)
	}
	return t
}

// Violation records an entry exceeding its constraint's bound.
type Violation struct {
	Constraint Constraint
	// Count is the offending common-neighbor count (> Constraint.N).
	Count int
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("access: constraint %v violated: %d common neighbors (bound %d)", v.Constraint, v.Count, v.Constraint.N)
}

// check returns a violation if any entry exceeds the bound.
func (x *Index) check() *Violation {
	if m := x.MaxEntry(); m > x.c.N {
		return &Violation{Constraint: x.c, Count: m}
	}
	return nil
}

// IndexSet bundles one Index per constraint of a schema — the runtime form
// of "G |= A with indices in place".
type IndexSet struct {
	schema  *Schema
	indexes []*Index
}

// Build constructs indices for every constraint of A over g and verifies
// that g satisfies the cardinality bounds; it returns the violations (and
// a nil IndexSet) if not.
func Build(g *graph.Graph, a *Schema) (*IndexSet, []Violation) {
	s := BuildUnchecked(g, a)
	var viols []Violation
	for _, x := range s.indexes {
		if v := x.check(); v != nil {
			viols = append(viols, *v)
		}
	}
	if len(viols) > 0 {
		return nil, viols
	}
	return s, nil
}

// BuildUnchecked constructs indices without checking cardinality bounds.
// Per-constraint indices are independent, so they are built in parallel
// (the graph is only read); this is the offline preprocessing step the
// bounded-evaluation approach amortizes across queries.
func BuildUnchecked(g *graph.Graph, a *Schema) *IndexSet {
	s := &IndexSet{schema: a, indexes: make([]*Index, a.Count())}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Count() {
		workers = a.Count()
	}
	if workers <= 1 {
		for i, c := range a.Constraints() {
			s.indexes[i] = BuildIndex(g, c)
		}
		return s
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				s.indexes[i] = BuildIndex(g, a.At(i))
			}
		}()
	}
	for i := range a.Constraints() {
		next <- i
	}
	close(next)
	wg.Wait()
	return s
}

// Validate reports whether g satisfies the cardinality constraints of A,
// returning the violations found.
func Validate(g *graph.Graph, a *Schema) []Violation {
	_, viols := Build(g, a)
	return viols
}

// Schema returns the schema this set serves.
func (s *IndexSet) Schema() *Schema { return s.schema }

// Index returns the index of the i-th constraint (in schema order).
func (s *IndexSet) Index(i int) *Index { return s.indexes[i] }

// SizeNodes returns the total stored node references across all indices.
func (s *IndexSet) SizeNodes() int {
	t := 0
	for _, x := range s.indexes {
		t += x.SizeNodes()
	}
	return t
}

// ApplyDelta applies d to g and incrementally maintains every index,
// touching only ΔG ∪ NbG(ΔG) per §II of the paper. It returns the IDs
// assigned to the delta's inserted nodes, any cardinality violations
// introduced by the update (the indices are still maintained correctly in
// that case), and the first structural error from applying the delta.
func (s *IndexSet) ApplyDelta(g *graph.Graph, d *graph.Delta) ([]graph.NodeID, []Violation, error) {
	touched := d.Touched(g)
	newIDs, err := d.Apply(g)
	if err != nil {
		return nil, nil, err
	}
	recompute := make([]graph.NodeID, 0, len(touched)+len(newIDs))
	for v := range touched {
		recompute = append(recompute, v)
	}
	recompute = append(recompute, newIDs...)
	for _, x := range s.indexes {
		for _, v := range recompute {
			x.removeRow(v)
			if g.Contains(v) && g.LabelOf(v) == x.c.L {
				x.addRow(g, v)
			}
		}
	}
	var viols []Violation
	for _, x := range s.indexes {
		if v := x.check(); v != nil {
			viols = append(viols, *v)
		}
	}
	return newIDs, viols, nil
}
