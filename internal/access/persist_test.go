package access

import (
	"bytes"
	"strings"
	"testing"

	"boundedg/internal/graph"
)

func TestIndexSetPersistRoundTrip(t *testing.T) {
	g, lbl := imdbMini(t)
	schema := a0(lbl)
	set, viols := Build(g, schema)
	if viols != nil {
		t.Fatal(viols)
	}
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf, g.Interner()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	loaded, err := ReadIndexSet(bytes.NewReader(buf.Bytes()), g.Interner())
	if err != nil {
		t.Fatalf("ReadIndexSet: %v", err)
	}
	if loaded.Schema().Count() != schema.Count() {
		t.Fatalf("schema count %d vs %d", loaded.Schema().Count(), schema.Count())
	}
	// Every lookup agrees with the original (compare via brute force).
	for i := range schema.Constraints() {
		a, b := set.Index(i), loaded.Index(i)
		if a.NumEntries() != b.NumEntries() || a.SizeNodes() != b.SizeNodes() {
			t.Fatalf("constraint %d: shape differs (%d/%d vs %d/%d)",
				i, a.NumEntries(), a.SizeNodes(), b.NumEntries(), b.SizeNodes())
		}
		for key, want := range a.entries {
			if !sameIDSet(b.entries[key].membersOrNil(), want.members) {
				t.Fatalf("constraint %d key %q differs", i, key)
			}
		}
	}
	// The reloaded set supports incremental maintenance (reverse maps
	// were rebuilt): delete a movie and compare with a fresh build.
	movie := g.NodesByLabel(lbl["movie"])[0]
	d := &graph.Delta{DelNodes: []graph.NodeID{movie}}
	if _, _, err := loaded.ApplyDelta(g, d); err != nil {
		t.Fatal(err)
	}
	assertIndexesMatchRebuild(t, g, schema, loaded)
}

func TestReadIndexSetErrors(t *testing.T) {
	in := graph.NewInterner()
	if _, err := ReadIndexSet(strings.NewReader("{bad"), in); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	// Index count mismatch.
	src := `{"schema":{"constraints":[{"l":"a","n":1}]},"indexes":[]}`
	if _, err := ReadIndexSet(strings.NewReader(src), in); err == nil {
		t.Fatal("index count mismatch accepted")
	}
	// Arity mismatch in an entry.
	src = `{"schema":{"constraints":[{"s":["b"],"l":"a","n":1}]},
	        "indexes":[{"entries":[{"vs":[1,2],"members":[3]}]}]}`
	if _, err := ReadIndexSet(strings.NewReader(src), in); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}
