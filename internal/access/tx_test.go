package access

import (
	"bytes"
	"errors"
	"testing"

	"boundedg/internal/graph"
)

// indexBytes canonicalizes an index set (WriteJSON sorts entries and
// members), so byte equality means semantic equality.
func indexBytes(t *testing.T, set *IndexSet, in *graph.Interner) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func graphBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestApplyDeltaTxAccepts(t *testing.T) {
	g, lbl := imdbMini(t)
	schema := a0(lbl)
	set, viols := Build(g, schema)
	if viols != nil {
		t.Fatal(viols)
	}
	d := &graph.Delta{
		AddNodes: []graph.NodeSpec{{Label: lbl["movie"], Value: graph.IntValue(999)}},
		AddEdges: [][2]graph.NodeID{
			{graph.NewNodeRef(0), g.NodesByLabel(lbl["year"])[0]},
		},
	}
	res, err := set.ApplyDeltaTx(g, d)
	if err != nil {
		t.Fatalf("ApplyDeltaTx: %v", err)
	}
	if len(res.NewIDs) != 1 || !g.Contains(res.NewIDs[0]) {
		t.Fatalf("NewIDs = %v", res.NewIDs)
	}
	if len(res.Touched) == 0 {
		t.Fatal("Touched empty for a delta that changed neighborhoods")
	}
	assertIndexesMatchRebuild(t, g, schema, set)
}

func TestApplyDeltaTxRejectsViolationUntouched(t *testing.T) {
	g, lbl := imdbMini(t)
	// Exact bound: 2 movies per (year, award); one more violates.
	schema := NewSchema(
		MustNew([]graph.Label{lbl["year"], lbl["award"]}, lbl["movie"], 2),
		MustNew([]graph.Label{lbl["movie"]}, lbl["actor"], 30),
	)
	set, viols := Build(g, schema)
	if viols != nil {
		t.Fatal(viols)
	}
	gBefore := graphBytes(t, g)
	xBefore := indexBytes(t, set, g.Interner())
	capBefore := g.Cap()

	d := &graph.Delta{
		AddNodes: []graph.NodeSpec{{Label: lbl["movie"]}},
		AddEdges: [][2]graph.NodeID{
			{graph.NewNodeRef(0), g.NodesByLabel(lbl["year"])[0]},
			{graph.NewNodeRef(0), g.NodesByLabel(lbl["award"])[0]},
		},
	}
	_, err := set.ApplyDeltaTx(g, d)
	var verr *ViolationError
	if !errors.As(err, &verr) {
		t.Fatalf("err = %v, want *ViolationError", err)
	}
	if len(verr.Violations) != 1 || verr.Violations[0].Count != 3 {
		t.Fatalf("violations = %v, want one with count 3", verr.Violations)
	}
	if !bytes.Equal(graphBytes(t, g), gBefore) {
		t.Fatal("graph changed by a rejected delta")
	}
	if !bytes.Equal(indexBytes(t, set, g.Interner()), xBefore) {
		t.Fatal("indexes changed by a rejected delta")
	}
	if g.Cap() != capBefore {
		t.Fatalf("ID space grew from %d to %d on rejection", capBefore, g.Cap())
	}
	// The state must still accept further (valid) updates cleanly.
	ok := &graph.Delta{AddNodes: []graph.NodeSpec{{Label: lbl["actor"]}}}
	if _, err := set.ApplyDeltaTx(g, ok); err != nil {
		t.Fatalf("valid delta after rejection: %v", err)
	}
	assertIndexesMatchRebuild(t, g, schema, set)
}

func TestApplyDeltaTxRejectsStructuralUntouched(t *testing.T) {
	g, lbl := imdbMini(t)
	schema := a0(lbl)
	set, _ := Build(g, schema)
	gBefore := graphBytes(t, g)
	xBefore := indexBytes(t, set, g.Interner())

	d := &graph.Delta{
		AddNodes: []graph.NodeSpec{{Label: lbl["movie"]}},
		AddEdges: [][2]graph.NodeID{{graph.NewNodeRef(0), g.NodesByLabel(lbl["year"])[0]}},
		DelNodes: []graph.NodeID{graph.NodeID(999999)},
	}
	if _, err := set.ApplyDeltaTx(g, d); err == nil {
		t.Fatal("structural error not reported")
	}
	if !bytes.Equal(graphBytes(t, g), gBefore) {
		t.Fatal("graph changed by a structurally failing delta")
	}
	if !bytes.Equal(indexBytes(t, set, g.Interner()), xBefore) {
		t.Fatal("indexes changed by a structurally failing delta")
	}
}

func TestIndexSetCloneIndependent(t *testing.T) {
	g, lbl := imdbMini(t)
	schema := a0(lbl)
	set, _ := Build(g, schema)
	in := g.Interner()
	orig := indexBytes(t, set, in)

	g2 := g.Clone()
	cl := set.Clone()
	if !bytes.Equal(indexBytes(t, cl, in), orig) {
		t.Fatal("clone differs from original")
	}
	d := &graph.Delta{DelNodes: []graph.NodeID{g2.NodesByLabel(lbl["movie"])[0]}}
	if _, err := cl.ApplyDeltaTx(g2, d); err != nil {
		t.Fatalf("ApplyDeltaTx on clone: %v", err)
	}
	if !bytes.Equal(indexBytes(t, set, in), orig) {
		t.Fatal("mutating the clone changed the original")
	}
	assertIndexesMatchRebuild(t, g2, schema, cl)
}
