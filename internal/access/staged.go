package access

import "boundedg/internal/graph"

// StagedDelta is an applied-but-undecided delta: the graph and indexes
// reflect d, and the stage holds everything needed to either keep that
// state or roll it back exactly. ApplyDeltaTx stages, checks bounds and
// decides locally; the shard router stages one sub-delta per shard and
// decides globally (aggregating entry sizes across the row partition)
// before committing or rolling back every shard — the all-or-nothing
// cross-shard verdict.
//
// A stage is only valid while the graph and index are otherwise
// untouched: stage the next delta only after Violations/Rollback settled
// this one.
type StagedDelta struct {
	s    *IndexSet
	g    *graph.Graph
	undo *graph.Undo
	res  *DeltaResult

	rows     []graph.NodeID // maintained rows: direct ∪ new IDs
	changed  map[graph.NodeID]struct{}
	maintain map[graph.NodeID]struct{}
}

// StageDelta applies d to g and incrementally maintains the indexes, but
// defers the accept/reject decision: call Violations to evaluate the
// bounds locally, then either keep the stage or Rollback. A structural
// error (bad node or edge reference) reverts everything and returns the
// error; the graph and indexes are then exactly untouched.
func (s *IndexSet) StageDelta(g *graph.Graph, d *graph.Delta) (*StagedDelta, error) {
	// changed: every pre-existing node whose adjacency the delta touches
	// (the rows a Frozen.Refresh must re-read, and the rollback set).
	// maintain ⊆ changed: the rows whose index derivations must re-run.
	changed, maintain := d.ChangedRows(g)
	var deleted []graph.NodeID
	for _, v := range d.DelNodes {
		if g.Contains(v) {
			deleted = append(deleted, v)
		}
	}
	newIDs, undo, err := d.ApplyLogged(g)
	if err != nil {
		undo.Revert(g)
		return nil, err
	}
	rows := make([]graph.NodeID, 0, len(maintain)+len(newIDs))
	for v := range maintain {
		rows = append(rows, v)
	}
	rows = append(rows, newIDs...)
	for _, x := range s.indexes {
		for _, c := range deleted {
			x.purgeVSNode(c)
		}
	}
	s.maintainRows(g, rows)
	touched := make([]graph.NodeID, 0, len(changed)+len(newIDs))
	for v := range changed {
		touched = append(touched, v)
	}
	touched = append(touched, newIDs...)
	return &StagedDelta{
		s:        s,
		g:        g,
		undo:     undo,
		res:      &DeltaResult{NewIDs: newIDs, Touched: touched},
		rows:     rows,
		changed:  changed,
		maintain: maintain,
	}, nil
}

// Result reports the staged delta's outcome (valid only while the stage
// is kept).
func (sd *StagedDelta) Result() *DeltaResult { return sd.res }

// Violations evaluates the cardinality bounds against the staged state,
// scoped to the entries this delta could have grown. The pre-stage state
// must have satisfied the bounds.
func (sd *StagedDelta) Violations() []Violation {
	return sd.s.checkRows(sd.rows)
}

// TouchedEntry names one index entry whose membership the staged delta
// may have changed on this instance: the CIdx-th constraint's entry for
// Key. The router unions these across shards to know which global
// entries need a cross-shard size check.
type TouchedEntry struct {
	CIdx int
	Key  string
}

// TouchedEntries lists the entries the maintained rows currently belong
// to, per constraint — the sharded counterpart of the checkRows scope.
func (sd *StagedDelta) TouchedEntries() []TouchedEntry {
	var out []TouchedEntry
	for ci, x := range sd.s.indexes {
		seen := make(map[string]struct{})
		for _, v := range sd.rows {
			for key := range x.memberKeys[v] {
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				out = append(out, TouchedEntry{CIdx: ci, Key: key})
			}
		}
	}
	return out
}

// Rollback restores the graph and the indexes to their exact pre-stage
// state, including the node-ID space.
func (sd *StagedDelta) Rollback() {
	sd.undo.Revert(sd.g)
	// Re-derive the FULL changed set against the restored graph: that
	// rebuilds the purged entries too, since every member of a purged
	// entry neighbored a deleted node and is therefore in changed, and
	// membership is a pure function of the graph's current neighborhoods.
	rollback := sd.rows
	for v := range sd.changed {
		if _, ok := sd.maintain[v]; !ok {
			rollback = append(rollback, v)
		}
	}
	sd.s.maintainRows(sd.g, rollback)
}
