package access

import "boundedg/internal/graph"

// StagedDelta is an applied-but-undecided delta: the graph and indexes
// reflect d, and the stage holds everything needed to either keep that
// state or roll it back exactly. ApplyDeltaTx stages, checks bounds and
// decides locally; the shard router stages one sub-delta per shard and
// decides globally (aggregating entry sizes across the row partition)
// before committing or rolling back every shard — the all-or-nothing
// cross-shard verdict.
//
// A stage is only valid while the graph and index are otherwise
// untouched: stage the next delta only after Violations/Rollback settled
// this one.
type StagedDelta struct {
	s    *IndexSet
	g    *graph.Graph
	undo *graph.Undo
	res  *DeltaResult

	rows  []graph.NodeID // maintained rows: direct ∪ new IDs
	extra []graph.NodeID // changed − direct: deleted nodes' neighbors
}

func containsID(s []graph.NodeID, v graph.NodeID) bool {
	for _, w := range s {
		if w == v {
			return true
		}
	}
	return false
}

// StageDelta applies d to g and incrementally maintains the indexes, but
// defers the accept/reject decision: call Violations to evaluate the
// bounds locally, then either keep the stage or Rollback. A structural
// error (bad node or edge reference) reverts everything and returns the
// error; the graph and indexes are then exactly untouched.
func (s *IndexSet) StageDelta(g *graph.Graph, d *graph.Delta) (*StagedDelta, error) {
	// rows seeds with the rows whose index derivations must re-run — the
	// pre-existing nodes the delta names explicitly (graph.Delta's
	// "direct" set, evaluated before Apply); newly inserted IDs join
	// after Apply. extra holds the rest of the changed set — deleted
	// nodes' neighbors, whose adjacency shrinks but whose derivations the
	// entry purge covers — needed only by Refresh (via Touched) and
	// Rollback. Without DelNodes the two sets coincide and extra stays
	// nil, so the hot edge-churn path builds one small deduplicated
	// slice and no maps.
	rows := make([]graph.NodeID, 0, 2*len(d.AddEdges)+2*len(d.DelEdges)+len(d.DelNodes)+len(d.AddNodes))
	direct := func(v graph.NodeID) {
		if v >= 0 && g.Contains(v) && !containsID(rows, v) {
			rows = append(rows, v)
		}
	}
	for _, e := range d.AddEdges {
		direct(e[0])
		direct(e[1])
	}
	for _, e := range d.DelEdges {
		direct(e[0])
		direct(e[1])
	}
	var deleted, extra []graph.NodeID
	for _, v := range d.DelNodes {
		if v < 0 || !g.Contains(v) {
			continue
		}
		direct(v)
		deleted = append(deleted, v)
		for _, w := range g.Neighbors(v) {
			if !containsID(rows, w) && !containsID(extra, w) {
				extra = append(extra, w)
			}
		}
	}
	if len(deleted) > 0 {
		// A deleted node may itself neighbor another deleted node and
		// land in extra before its own DelNode entry moved it to rows.
		kept := extra[:0]
		for _, w := range extra {
			if !containsID(rows, w) {
				kept = append(kept, w)
			}
		}
		extra = kept
	}
	newIDs, undo, err := d.ApplyLogged(g)
	if err != nil {
		undo.Revert(g)
		return nil, err
	}
	rows = append(rows, newIDs...)
	for _, x := range s.indexes {
		for _, c := range deleted {
			x.purgeVSNode(c)
		}
	}
	s.maintainRows(g, rows)
	touched := rows // Touched = changed ∪ new = rows ∪ extra; both read-only once staged
	if len(extra) > 0 {
		touched = make([]graph.NodeID, 0, len(rows)+len(extra))
		touched = append(append(touched, rows...), extra...)
	}
	return &StagedDelta{
		s:     s,
		g:     g,
		undo:  undo,
		res:   &DeltaResult{NewIDs: newIDs, Touched: touched},
		rows:  rows,
		extra: extra,
	}, nil
}

// Result reports the staged delta's outcome (valid only while the stage
// is kept).
func (sd *StagedDelta) Result() *DeltaResult { return sd.res }

// Violations evaluates the cardinality bounds against the staged state,
// scoped to the entries this delta could have grown. The pre-stage state
// must have satisfied the bounds.
func (sd *StagedDelta) Violations() []Violation {
	return sd.s.checkRows(sd.rows)
}

// TouchedEntry names one index entry whose membership the staged delta
// may have changed on this instance: the CIdx-th constraint's entry for
// Key. The router unions these across shards to know which global
// entries need a cross-shard size check.
type TouchedEntry struct {
	CIdx int
	Key  string
}

// TouchedEntries lists the entries the maintained rows currently belong
// to, per constraint — the sharded counterpart of the checkRows scope.
func (sd *StagedDelta) TouchedEntries() []TouchedEntry {
	return sd.AppendTouchedEntries(nil)
}

// AppendTouchedEntries appends the touched entries to dst (deduplicated
// against everything already in it) and returns the extended slice — the
// allocation-light form the router's per-delta cross-shard size check
// uses with a reusable scratch slice. Touched-entry sets are small, so
// deduplication is a linear scan rather than a map.
func (sd *StagedDelta) AppendTouchedEntries(dst []TouchedEntry) []TouchedEntry {
	for ci, x := range sd.s.indexes {
		for _, v := range sd.rows {
		keys:
			for key := range x.memberKeys[v] {
				for i := range dst {
					if dst[i].CIdx == ci && dst[i].Key == key {
						continue keys
					}
				}
				dst = append(dst, TouchedEntry{CIdx: ci, Key: key})
			}
		}
	}
	return dst
}

// Rollback restores the graph and the indexes to their exact pre-stage
// state, including the node-ID space.
func (sd *StagedDelta) Rollback() {
	sd.undo.Revert(sd.g)
	// Re-derive the FULL changed set (rows ∪ extra) against the restored
	// graph: that rebuilds the purged entries too, since every member of
	// a purged entry neighbored a deleted node and is therefore in the
	// changed set, and membership is a pure function of the graph's
	// current neighborhoods.
	rollback := sd.rows
	if len(sd.extra) > 0 {
		rollback = make([]graph.NodeID, 0, len(sd.rows)+len(sd.extra))
		rollback = append(append(rollback, sd.rows...), sd.extra...)
	}
	sd.s.maintainRows(sd.g, rollback)
}
