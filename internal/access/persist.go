package access

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"boundedg/internal/graph"
)

// Index persistence: the paper builds its constraint indices offline (in
// MySQL tables) and reuses them across queries. WriteJSON/ReadIndexSet
// give this repository the same lifecycle — build once with Build, save,
// and reload next to the graph without rescanning it.
//
// The on-disk format stores, per constraint, its entries as (VS tuple,
// members) pairs using the graph's node IDs, so a saved index set is only
// valid against the exact graph it was built from (the loader re-derives
// the reverse maps; it does not re-verify entries — use Validate for
// that).

type jsonIndexSet struct {
	Schema  jsonSchema  `json:"schema"`
	Indexes []jsonIndex `json:"indexes"`
}

type jsonIndex struct {
	Entries []jsonEntry `json:"entries"`
}

type jsonEntry struct {
	VS      []graph.NodeID `json:"vs,omitempty"`
	Members []graph.NodeID `json:"members"`
}

// WriteJSON serializes the index set (schema + all entries). Label names
// are resolved through in so the file is self-contained.
func (s *IndexSet) WriteJSON(w io.Writer, in *graph.Interner) error {
	js := jsonIndexSet{}
	for _, c := range s.schema.Constraints() {
		jc := jsonConstraint{L: in.Name(c.L), N: c.N}
		for _, l := range c.S {
			jc.S = append(jc.S, in.Name(l))
		}
		js.Schema.Constraints = append(js.Schema.Constraints, jc)
	}
	for _, x := range s.indexes {
		ji := jsonIndex{Entries: make([]jsonEntry, 0, len(x.entries))}
		keys := make([]string, 0, len(x.entries))
		for k := range x.entries {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic output
		for _, k := range keys {
			members := append([]graph.NodeID(nil), x.entries[k].members...)
			sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
			ji.Entries = append(ji.Entries, jsonEntry{VS: decodeTupleKey(k), Members: members})
		}
		js.Indexes = append(js.Indexes, ji)
	}
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(js); err != nil {
		return fmt.Errorf("access: encode index set: %w", err)
	}
	return bw.Flush()
}

// ReadIndexSet loads an index set written by WriteJSON. Node IDs are
// taken verbatim, so the result is only meaningful against the graph the
// set was built from.
func ReadIndexSet(r io.Reader, in *graph.Interner) (*IndexSet, error) {
	var js jsonIndexSet
	dec := json.NewDecoder(bufio.NewReader(r))
	// Strict field checking: a misspelled or foreign document (say, a
	// schema or graph file passed by mistake) must error, not decode to
	// an empty index set.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("access: decode index set: %w", err)
	}
	schema := NewSchema()
	for i, jc := range js.Schema.Constraints {
		labels := make([]graph.Label, len(jc.S))
		for j, name := range jc.S {
			labels[j] = in.Intern(name)
		}
		c, err := New(labels, in.Intern(jc.L), jc.N)
		if err != nil {
			return nil, fmt.Errorf("access: constraint %d: %w", i, err)
		}
		schema.Add(c)
	}
	if len(js.Indexes) != schema.Count() {
		return nil, fmt.Errorf("access: %d indexes for %d constraints", len(js.Indexes), schema.Count())
	}
	set := &IndexSet{schema: schema, indexes: make([]*Index, schema.Count())}
	for i, ji := range js.Indexes {
		x := newIndex(schema.At(i))
		for _, e := range ji.Entries {
			if len(e.VS) != x.c.Arity() {
				return nil, fmt.Errorf("access: constraint %d: entry arity %d != |S| %d", i, len(e.VS), x.c.Arity())
			}
			key := encodeKey(e.VS)
			for _, m := range e.Members {
				x.insert(key, e.VS, m)
			}
		}
		set.indexes[i] = x
	}
	return set, nil
}

// decodeTupleKey inverts encodeKey.
func decodeTupleKey(key string) []graph.NodeID {
	var out []graph.NodeID
	b := []byte(key)
	for len(b) > 0 {
		v, n := uvarintBytes(b)
		if n <= 0 {
			break
		}
		out = append(out, graph.NodeID(v))
		b = b[n:]
	}
	return out
}

func uvarintBytes(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if c < 0x80 {
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0
}
