package access

import (
	"sort"
	"strings"

	"boundedg/internal/graph"
)

// Schema is an access schema A: a set of access constraints. Constraints
// are deduplicated by (S, l), keeping the tightest bound N.
type Schema struct {
	constraints []Constraint
	byKey       map[string]int // Constraint.Key() -> index
	byTarget    map[graph.Label][]int
}

// NewSchema returns a schema holding the given constraints.
func NewSchema(cs ...Constraint) *Schema {
	s := &Schema{
		byKey:    make(map[string]int),
		byTarget: make(map[graph.Label][]int),
	}
	for _, c := range cs {
		s.Add(c)
	}
	return s
}

// Add inserts c, replacing an existing constraint with the same (S, l) if
// c's bound is tighter. It reports whether the schema changed.
func (s *Schema) Add(c Constraint) bool {
	k := c.Key()
	if i, ok := s.byKey[k]; ok {
		if c.N < s.constraints[i].N {
			s.constraints[i] = c
			return true
		}
		return false
	}
	s.byKey[k] = len(s.constraints)
	s.byTarget[c.L] = append(s.byTarget[c.L], len(s.constraints))
	s.constraints = append(s.constraints, c)
	return true
}

// Constraints returns the constraints in insertion order. Shared slice; do
// not mutate.
func (s *Schema) Constraints() []Constraint { return s.constraints }

// At returns the i-th constraint.
func (s *Schema) At(i int) Constraint { return s.constraints[i] }

// ByTarget returns the indices of constraints whose target label is l.
func (s *Schema) ByTarget(l graph.Label) []int { return s.byTarget[l] }

// Type1Bound returns the tightest type-1 bound for label l (the N of
// {} -> (l, N)); ok is false if the schema has no type-1 constraint on l.
func (s *Schema) Type1Bound(l graph.Label) (n int, ok bool) {
	n = -1
	for _, i := range s.byTarget[l] {
		c := s.constraints[i]
		if c.Type1() && (n < 0 || c.N < n) {
			n = c.N
		}
	}
	return n, n >= 0
}

// Count returns ||A||, the number of constraints.
func (s *Schema) Count() int { return len(s.constraints) }

// TotalLen returns |A|, the total length of the constraints.
func (s *Schema) TotalLen() int {
	t := 0
	for _, c := range s.constraints {
		t += c.Len()
	}
	return t
}

// OnlyType12 reports whether every constraint is of type (1) or (2) — the
// second special case of Theorem 2.
func (s *Schema) OnlyType12() bool {
	for _, c := range s.constraints {
		if len(c.S) > 1 {
			return false
		}
	}
	return true
}

// Clone returns a copy of the schema.
func (s *Schema) Clone() *Schema { return NewSchema(s.constraints...) }

// Subset returns a new schema with the first k constraints (in insertion
// order); used by the ||A||-sweep experiment (Fig 5c/g/k).
func (s *Schema) Subset(k int) *Schema {
	if k > len(s.constraints) {
		k = len(s.constraints)
	}
	return NewSchema(s.constraints[:k]...)
}

// Format renders the schema with label names, one constraint per line, in
// a deterministic order.
func (s *Schema) Format(in *graph.Interner) string {
	lines := make([]string, len(s.constraints))
	for i, c := range s.constraints {
		lines[i] = c.Format(in)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
