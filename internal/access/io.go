package access

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"boundedg/internal/graph"
)

// jsonSchema is the on-disk form of a Schema, with labels spelled out.
type jsonSchema struct {
	Constraints []jsonConstraint `json:"constraints"`
}

type jsonConstraint struct {
	S []string `json:"s,omitempty"`
	L string   `json:"l"`
	N int      `json:"n"`
}

// WriteJSON serializes the schema with label names resolved through in.
func (s *Schema) WriteJSON(w io.Writer, in *graph.Interner) error {
	js := jsonSchema{Constraints: make([]jsonConstraint, 0, s.Count())}
	for _, c := range s.Constraints() {
		jc := jsonConstraint{L: in.Name(c.L), N: c.N}
		for _, l := range c.S {
			jc.S = append(jc.S, in.Name(l))
		}
		js.Constraints = append(js.Constraints, jc)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(js); err != nil {
		return fmt.Errorf("access: encode schema: %w", err)
	}
	return bw.Flush()
}

// ReadJSON parses a schema written by WriteJSON, interning labels in in.
func ReadJSON(r io.Reader, in *graph.Interner) (*Schema, error) {
	var js jsonSchema
	dec := json.NewDecoder(bufio.NewReader(r))
	dec.DisallowUnknownFields() // reject misspelled or foreign documents
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("access: decode schema: %w", err)
	}
	s := NewSchema()
	for i, jc := range js.Constraints {
		labels := make([]graph.Label, len(jc.S))
		for j, name := range jc.S {
			labels[j] = in.Intern(name)
		}
		c, err := New(labels, in.Intern(jc.L), jc.N)
		if err != nil {
			return nil, fmt.Errorf("access: constraint %d: %w", i, err)
		}
		s.Add(c)
	}
	return s, nil
}
