package access

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"boundedg/internal/graph"
)

// imdbMini builds a small IMDb-shaped graph: years, awards, movies
// connected to (year, award) pairs, actors/actresses per movie, countries
// per person. It is shaped so the paper's A0 constraints hold.
func imdbMini(t testing.TB) (*graph.Graph, map[string]graph.Label) {
	t.Helper()
	g := graph.New(nil)
	in := g.Interner()
	lbl := map[string]graph.Label{}
	for _, n := range []string{"year", "award", "movie", "actor", "actress", "country"} {
		lbl[n] = in.Intern(n)
	}
	years := []graph.NodeID{
		g.AddNode(lbl["year"], graph.IntValue(2011)),
		g.AddNode(lbl["year"], graph.IntValue(2012)),
	}
	awards := []graph.NodeID{
		g.AddNode(lbl["award"], graph.StringValue("oscar")),
		g.AddNode(lbl["award"], graph.StringValue("bafta")),
	}
	countries := []graph.NodeID{
		g.AddNode(lbl["country"], graph.StringValue("US")),
		g.AddNode(lbl["country"], graph.StringValue("UK")),
	}
	r := rand.New(rand.NewSource(7))
	for yi, y := range years {
		for ai, a := range awards {
			// Two award-winning movies per (year, award).
			for k := 0; k < 2; k++ {
				m := g.AddNode(lbl["movie"], graph.IntValue(int64(yi*100+ai*10+k)))
				g.MustAddEdge(m, y)
				g.MustAddEdge(m, a)
				// One actor and one actress per movie.
				ac := g.AddNode(lbl["actor"], graph.NoValue())
				as := g.AddNode(lbl["actress"], graph.NoValue())
				g.MustAddEdge(m, ac)
				g.MustAddEdge(m, as)
				g.MustAddEdge(ac, countries[r.Intn(2)])
				g.MustAddEdge(as, countries[r.Intn(2)])
			}
		}
	}
	return g, lbl
}

// a0 builds the schema of Example 3 (with bounds valid for imdbMini).
func a0(lbl map[string]graph.Label) *Schema {
	return NewSchema(
		MustNew([]graph.Label{lbl["year"], lbl["award"]}, lbl["movie"], 4),
		MustNew([]graph.Label{lbl["movie"]}, lbl["actor"], 30),
		MustNew([]graph.Label{lbl["movie"]}, lbl["actress"], 30),
		MustNew([]graph.Label{lbl["actor"]}, lbl["country"], 1),
		MustNew([]graph.Label{lbl["actress"]}, lbl["country"], 1),
		MustNew(nil, lbl["year"], 135),
		MustNew(nil, lbl["award"], 24),
		MustNew(nil, lbl["country"], 196),
	)
}

func TestConstraintNew(t *testing.T) {
	c, err := New([]graph.Label{3, 1, 3}, 2, 5)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !reflect.DeepEqual(c.S, []graph.Label{1, 3}) {
		t.Fatalf("S not normalized: %v", c.S)
	}
	if c.Type1() || c.Type2() || c.Arity() != 2 {
		t.Fatalf("shape predicates wrong: %+v", c)
	}
	if _, err := New(nil, 2, -1); err == nil {
		t.Fatalf("negative bound accepted")
	}
	if _, err := New([]graph.Label{-1}, 2, 1); err == nil {
		t.Fatalf("invalid source label accepted")
	}
	if _, err := New(nil, -2, 1); err == nil {
		t.Fatalf("invalid target label accepted")
	}
	t1 := MustNew(nil, 4, 7)
	if !t1.Type1() {
		t.Fatalf("type1 detection")
	}
	t2 := MustNew([]graph.Label{1}, 4, 7)
	if !t2.Type2() {
		t.Fatalf("type2 detection")
	}
}

func TestConstraintKeyAndFormat(t *testing.T) {
	in := graph.NewInterner()
	y, a, m := in.Intern("year"), in.Intern("award"), in.Intern("movie")
	c1 := MustNew([]graph.Label{y, a}, m, 4)
	c2 := MustNew([]graph.Label{a, y}, m, 9)
	if c1.Key() != c2.Key() {
		t.Fatalf("keys should ignore S order: %q vs %q", c1.Key(), c2.Key())
	}
	if got := c1.Format(in); got != "(year, award) -> (movie, 4)" && got != "(award, year) -> (movie, 4)" {
		// S is sorted by Label value; interner assigns year < award here.
		t.Fatalf("Format = %q", got)
	}
	if got := MustNew(nil, m, 3).Format(in); got != "{} -> (movie, 3)" {
		t.Fatalf("type-1 Format = %q", got)
	}
}

func TestSchemaAddDedup(t *testing.T) {
	s := NewSchema()
	c := MustNew([]graph.Label{1}, 2, 10)
	if !s.Add(c) {
		t.Fatalf("first Add should change schema")
	}
	if s.Add(c) {
		t.Fatalf("identical Add should not change schema")
	}
	tighter := MustNew([]graph.Label{1}, 2, 5)
	if !s.Add(tighter) {
		t.Fatalf("tighter Add should replace")
	}
	if s.Count() != 1 || s.At(0).N != 5 {
		t.Fatalf("dedup wrong: count=%d N=%d", s.Count(), s.At(0).N)
	}
	looser := MustNew([]graph.Label{1}, 2, 50)
	if s.Add(looser) || s.At(0).N != 5 {
		t.Fatalf("looser Add should be ignored")
	}
}

func TestSchemaQueries(t *testing.T) {
	s := NewSchema(
		MustNew(nil, 1, 10),
		MustNew(nil, 1, 7), // tighter duplicate target
		MustNew([]graph.Label{1}, 2, 3),
		MustNew([]graph.Label{1, 3}, 2, 9),
	)
	if n, ok := s.Type1Bound(1); !ok || n != 7 {
		t.Fatalf("Type1Bound = %d, %v", n, ok)
	}
	if _, ok := s.Type1Bound(2); ok {
		t.Fatalf("label 2 has no type-1 bound")
	}
	if got := len(s.ByTarget(2)); got != 2 {
		t.Fatalf("ByTarget(2) = %d entries", got)
	}
	if s.OnlyType12() {
		t.Fatalf("schema has a general constraint")
	}
	if s.TotalLen() != (0+2)+(1+2)+(2+2) {
		t.Fatalf("TotalLen = %d", s.TotalLen())
	}
	if s.Subset(2).Count() != 2 || s.Subset(99).Count() != 3 {
		t.Fatalf("Subset sizes wrong")
	}
}

func TestBuildIndexType1(t *testing.T) {
	g, lbl := imdbMini(t)
	x := BuildIndex(g, MustNew(nil, lbl["year"], 135))
	got := x.Lookup(nil)
	if len(got) != 2 {
		t.Fatalf("type-1 lookup = %v", got)
	}
	if x.NumEntries() != 1 {
		t.Fatalf("type-1 entries = %d", x.NumEntries())
	}
}

func TestBuildIndexType2(t *testing.T) {
	g, lbl := imdbMini(t)
	x := BuildIndex(g, MustNew([]graph.Label{lbl["movie"]}, lbl["actor"], 30))
	for _, m := range g.NodesByLabel(lbl["movie"]) {
		got := x.Lookup([]graph.NodeID{m})
		want := g.CommonNeighbors([]graph.NodeID{m}, lbl["actor"])
		if !sameIDSet(got, want) {
			t.Fatalf("Lookup(movie %d) = %v, want %v", m, got, want)
		}
	}
}

func TestBuildIndexGeneral(t *testing.T) {
	g, lbl := imdbMini(t)
	x := BuildIndex(g, MustNew([]graph.Label{lbl["year"], lbl["award"]}, lbl["movie"], 4))
	years := g.NodesByLabel(lbl["year"])
	awards := g.NodesByLabel(lbl["award"])
	for _, y := range years {
		for _, a := range awards {
			got := x.Lookup([]graph.NodeID{y, a})
			want := g.CommonNeighbors([]graph.NodeID{y, a}, lbl["movie"])
			if !sameIDSet(got, want) {
				t.Fatalf("Lookup(%d,%d) = %v, want %v", y, a, got, want)
			}
			// Order of VS must not matter.
			if !sameIDSet(x.Lookup([]graph.NodeID{a, y}), want) {
				t.Fatalf("lookup order sensitivity")
			}
		}
	}
	if x.MaxEntry() != 2 {
		t.Fatalf("MaxEntry = %d, want 2", x.MaxEntry())
	}
	if got := x.Lookup([]graph.NodeID{years[0]}); got != nil {
		t.Fatalf("arity-mismatched lookup should return nil, got %v", got)
	}
}

func TestBuildAndValidate(t *testing.T) {
	g, lbl := imdbMini(t)
	schema := a0(lbl)
	set, viols := Build(g, schema)
	if len(viols) != 0 {
		t.Fatalf("unexpected violations: %v", viols)
	}
	if set.Schema() != schema {
		t.Fatalf("schema not retained")
	}
	if set.SizeNodes() == 0 {
		t.Fatalf("index should not be empty")
	}

	// Tighten the (year,award)->movie bound to 1: imdbMini has 2 movies
	// per pair, so validation must fail.
	bad := NewSchema(MustNew([]graph.Label{lbl["year"], lbl["award"]}, lbl["movie"], 1))
	if viols := Validate(g, bad); len(viols) != 1 || viols[0].Count != 2 {
		t.Fatalf("violations = %v", viols)
	}
	if Validate(g, schema) != nil {
		t.Fatalf("valid schema flagged")
	}
}

func TestViolationError(t *testing.T) {
	v := Violation{Constraint: MustNew(nil, 1, 2), Count: 5}
	if v.Error() == "" {
		t.Fatalf("empty error text")
	}
}

func TestDiscoverConstraintExactness(t *testing.T) {
	g, lbl := imdbMini(t)
	c, ok := DiscoverConstraint(g, []graph.Label{lbl["year"], lbl["award"]}, lbl["movie"])
	if !ok || c.N != 2 {
		t.Fatalf("discovered N = %d (ok=%v), want 2", c.N, ok)
	}
	c1, ok := DiscoverConstraint(g, nil, lbl["year"])
	if !ok || c1.N != 2 {
		t.Fatalf("type-1 discovered N = %d", c1.N)
	}
	// l ∈ S is legal in the paper's model: movie -> (movie, N) bounds the
	// movie-labeled neighbors of each movie node. imdbMini has none.
	cm, ok := DiscoverConstraint(g, []graph.Label{lbl["movie"]}, lbl["movie"])
	if !ok || cm.N != 0 {
		t.Fatalf("movie->movie discovered N = %d (ok=%v), want 0", cm.N, ok)
	}
}

func TestDiscoverFamilies(t *testing.T) {
	g, lbl := imdbMini(t)
	schema := Discover(g, DiscoverOptions{
		MaxType1: 10,
		MaxType2: 50,
		GeneralSets: []GeneralCandidate{
			{S: []graph.Label{lbl["year"], lbl["award"]}, L: lbl["movie"]},
		},
	})
	// Type-1 on year/award/country (2,2,2 nodes each ≤ 10) but not movie
	// (8 nodes ≤ 10 too, actually) — just check g satisfies everything and
	// the key families are present.
	if viols := Validate(g, schema); len(viols) != 0 {
		t.Fatalf("discovered schema violated: %v", viols)
	}
	foundGeneral := false
	foundT1 := false
	for _, c := range schema.Constraints() {
		if c.Arity() == 2 && c.L == lbl["movie"] {
			foundGeneral = true
			if c.N != 2 {
				t.Fatalf("general N = %d", c.N)
			}
		}
		if c.Type1() && c.L == lbl["year"] {
			foundT1 = true
		}
	}
	if !foundGeneral || !foundT1 {
		t.Fatalf("families missing: general=%v type1=%v", foundGeneral, foundT1)
	}
	// FD family: actor -> (country, 1) must be found.
	fds := DiscoverFDs(g)
	foundFD := false
	for _, c := range fds {
		if c.Type2() && c.S[0] == lbl["actor"] && c.L == lbl["country"] {
			foundFD = true
		}
	}
	if !foundFD {
		t.Fatalf("actor->country FD not discovered: %v", fds)
	}
}

func TestDiscoverRespectsCaps(t *testing.T) {
	g, lbl := imdbMini(t)
	s := Discover(g, DiscoverOptions{MaxType1: 1}) // nothing has ≤1 nodes
	if s.Count() != 0 {
		t.Fatalf("MaxType1=1 should discover nothing, got %d", s.Count())
	}
	s = Discover(g, DiscoverOptions{
		GeneralSets: []GeneralCandidate{{S: []graph.Label{lbl["year"], lbl["award"]}, L: lbl["movie"]}},
		MaxGeneral:  1,
	})
	if s.Count() != 0 {
		t.Fatalf("MaxGeneral=1 should reject N=2 constraint")
	}
}

func TestApplyDeltaMaintainsIndexes(t *testing.T) {
	g, lbl := imdbMini(t)
	schema := a0(lbl)
	set, viols := Build(g, schema)
	if viols != nil {
		t.Fatal(viols)
	}

	// Add a new movie connected to an existing (year, award) pair plus a
	// new actor; delete one old actor->country edge.
	years := g.NodesByLabel(lbl["year"])
	awards := g.NodesByLabel(lbl["award"])
	actors := g.NodesByLabel(lbl["actor"])
	var delEdge [2]graph.NodeID
	found := false
	for _, a := range actors {
		for _, c := range g.Out(a) {
			if g.LabelOf(c) == lbl["country"] {
				delEdge = [2]graph.NodeID{a, c}
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no actor->country edge")
	}
	d := &graph.Delta{
		AddNodes: []graph.NodeSpec{
			{Label: lbl["movie"], Value: graph.IntValue(999)},
			{Label: lbl["actor"], Value: graph.NoValue()},
		},
		AddEdges: [][2]graph.NodeID{
			{graph.NewNodeRef(0), years[0]},
			{graph.NewNodeRef(0), awards[0]},
			{graph.NewNodeRef(0), graph.NewNodeRef(1)},
		},
		DelEdges: [][2]graph.NodeID{delEdge},
	}
	_, viols2, err := set.ApplyDelta(g, d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if len(viols2) != 0 {
		t.Fatalf("unexpected violations after delta: %v", viols2)
	}
	assertIndexesMatchRebuild(t, g, schema, set)
}

func TestApplyDeltaNodeDeletion(t *testing.T) {
	g, lbl := imdbMini(t)
	schema := a0(lbl)
	set, _ := Build(g, schema)
	movie := g.NodesByLabel(lbl["movie"])[0]
	d := &graph.Delta{DelNodes: []graph.NodeID{movie}}
	if _, _, err := set.ApplyDelta(g, d); err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	assertIndexesMatchRebuild(t, g, schema, set)
}

func TestApplyDeltaDetectsViolation(t *testing.T) {
	g, lbl := imdbMini(t)
	// Tight bound: at most 2 movies per (year, award) — currently exact.
	schema := NewSchema(MustNew([]graph.Label{lbl["year"], lbl["award"]}, lbl["movie"], 2))
	set, viols := Build(g, schema)
	if viols != nil {
		t.Fatal(viols)
	}
	years := g.NodesByLabel(lbl["year"])
	awards := g.NodesByLabel(lbl["award"])
	d := &graph.Delta{
		AddNodes: []graph.NodeSpec{{Label: lbl["movie"], Value: graph.NoValue()}},
		AddEdges: [][2]graph.NodeID{
			{graph.NewNodeRef(0), years[0]},
			{graph.NewNodeRef(0), awards[0]},
		},
	}
	_, viols2, err := set.ApplyDelta(g, d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if len(viols2) != 1 || viols2[0].Count != 3 {
		t.Fatalf("violations = %v, want one with count 3", viols2)
	}
	// Index must still be correct even though the bound broke.
	assertIndexesMatchRebuild(t, g, schema, set)
}

// assertIndexesMatchRebuild compares incrementally maintained indices with
// a from-scratch rebuild.
func assertIndexesMatchRebuild(t *testing.T, g *graph.Graph, schema *Schema, set *IndexSet) {
	t.Helper()
	fresh := BuildUnchecked(g, schema)
	for i := range schema.Constraints() {
		a, b := set.Index(i), fresh.Index(i)
		if a.NumEntries() != b.NumEntries() {
			t.Fatalf("constraint %d: entries %d vs rebuild %d", i, a.NumEntries(), b.NumEntries())
		}
		for key, want := range b.entries {
			got := a.entries[key].membersOrNil()
			if !sameIDSet(got, want.members) {
				t.Fatalf("constraint %d key %q: %v vs rebuild %v", i, key, got, want)
			}
		}
	}
}

func sameIDSet(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]graph.NodeID(nil), a...)
	bs := append([]graph.NodeID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return reflect.DeepEqual(as, bs)
}

// Property: for random graphs and random small constraints, index lookups
// agree with brute-force CommonNeighbors for every materialized key, and
// MaxEntry equals the brute-force maximum.
func TestIndexMatchesBruteForceProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		labels := make([]graph.Label, 4)
		for i := range labels {
			labels[i] = g.Interner().Intern(string(rune('a' + i)))
		}
		for i := 0; i < 25; i++ {
			g.AddNode(labels[r.Intn(4)], graph.NoValue())
		}
		for i := 0; i < 50; i++ {
			from, to := graph.NodeID(r.Intn(25)), graph.NodeID(r.Intn(25))
			if from != to {
				_ = g.AddEdge(from, to)
			}
		}
		// Random constraint with |S| in {0,1,2}.
		arity := r.Intn(3)
		perm := r.Perm(4)
		l := labels[perm[0]]
		var s []graph.Label
		for i := 0; i < arity; i++ {
			s = append(s, labels[perm[i+1]])
		}
		c := MustNew(s, l, 1000)
		x := BuildIndex(g, c)
		for key, entry := range x.entries {
			vs := decodeKey(key)
			want := g.CommonNeighbors(vs, l)
			if !sameIDSet(entry.members, want) {
				t.Logf("seed %d: constraint %v key %v: %v vs %v", seed, c, vs, entry, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: incremental maintenance after a random delta equals rebuild.
func TestApplyDeltaEqualsRebuildProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		labels := make([]graph.Label, 3)
		for i := range labels {
			labels[i] = g.Interner().Intern(string(rune('a' + i)))
		}
		for i := 0; i < 15; i++ {
			g.AddNode(labels[r.Intn(3)], graph.NoValue())
		}
		for i := 0; i < 25; i++ {
			from, to := graph.NodeID(r.Intn(15)), graph.NodeID(r.Intn(15))
			if from != to {
				_ = g.AddEdge(from, to)
			}
		}
		schema := NewSchema(
			MustNew(nil, labels[0], 1000),
			MustNew([]graph.Label{labels[0]}, labels[1], 1000),
			MustNew([]graph.Label{labels[0], labels[1]}, labels[2], 1000),
		)
		set := BuildUnchecked(g, schema)

		// Random delta: one new node wired to an existing node, one edge
		// insert, one edge delete (if any), one node delete.
		d := &graph.Delta{
			AddNodes: []graph.NodeSpec{{Label: labels[r.Intn(3)], Value: graph.NoValue()}},
			AddEdges: [][2]graph.NodeID{{graph.NewNodeRef(0), graph.NodeID(r.Intn(15))}},
		}
		var edges [][2]graph.NodeID
		g.Edges(func(from, to graph.NodeID) bool {
			edges = append(edges, [2]graph.NodeID{from, to})
			return true
		})
		if len(edges) > 0 {
			d.DelEdges = append(d.DelEdges, edges[r.Intn(len(edges))])
		}
		victim := graph.NodeID(r.Intn(15))
		// Avoid deleting an endpoint of the deleted edge's source (apply
		// order handles it, but RemoveEdge on a removed node errors).
		if len(d.DelEdges) == 0 || (victim != d.DelEdges[0][0] && victim != d.DelEdges[0][1]) {
			d.DelNodes = append(d.DelNodes, victim)
		}
		if _, _, err := set.ApplyDelta(g, d); err != nil {
			t.Logf("seed %d: ApplyDelta: %v", seed, err)
			return false
		}
		fresh := BuildUnchecked(g, schema)
		for i := range schema.Constraints() {
			a, b := set.Index(i), fresh.Index(i)
			if a.NumEntries() != b.NumEntries() {
				t.Logf("seed %d: constraint %d entry count %d vs %d", seed, i, a.NumEntries(), b.NumEntries())
				return false
			}
			for key, want := range b.entries {
				if !sameIDSet(a.entries[key].membersOrNil(), want.members) {
					t.Logf("seed %d: constraint %d key mismatch", seed, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// decodeKey inverts encodeKey for tests.
func decodeKey(key string) []graph.NodeID {
	var out []graph.NodeID
	b := []byte(key)
	for len(b) > 0 {
		v, n := uvarint(b)
		out = append(out, graph.NodeID(v))
		b = b[n:]
	}
	return out
}

func uvarint(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if c < 0x80 {
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, len(b)
}
