package access_test

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/workload"
)

// buildWorkloadSet builds the index set of a workload dataset.
func buildWorkloadSet(t *testing.T, d *workload.Dataset) *access.IndexSet {
	t.Helper()
	set, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		t.Fatalf("%s: index build: %v", d.Name, viols[0])
	}
	return set
}

// TestIndexSetRoundTripWorkloads: WriteJSON -> ReadIndexSet -> WriteJSON
// is byte-identical on every workload generator's index set (WriteJSON
// output is deterministic, so byte equality is index-set equality), and
// the reloaded set answers lookups like the original.
func TestIndexSetRoundTripWorkloads(t *testing.T) {
	datasets := []*workload.Dataset{
		workload.IMDb(0.05, 3),
		workload.DBpedia(0.05, 4),
		workload.WebBase(0.05, 5),
	}
	for _, d := range datasets {
		t.Run(d.Name, func(t *testing.T) {
			set := buildWorkloadSet(t, d)
			var first bytes.Buffer
			if err := set.WriteJSON(&first, d.In); err != nil {
				t.Fatalf("WriteJSON: %v", err)
			}
			loaded, err := access.ReadIndexSet(bytes.NewReader(first.Bytes()), d.In)
			if err != nil {
				t.Fatalf("ReadIndexSet: %v", err)
			}
			var second bytes.Buffer
			if err := loaded.WriteJSON(&second, d.In); err != nil {
				t.Fatalf("re-WriteJSON: %v", err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("round trip not byte-identical (%d vs %d bytes)", first.Len(), second.Len())
			}
			// Spot-check lookups through the public API: every type-1
			// constraint's full extent must agree.
			for i, c := range d.Schema.Constraints() {
				if !c.Type1() {
					continue
				}
				a := set.Index(i).Lookup(nil)
				b := loaded.Index(i).Lookup(nil)
				if len(a) != len(b) {
					t.Fatalf("constraint %d: lookup sizes %d vs %d", i, len(a), len(b))
				}
				in := make(map[graph.NodeID]bool, len(a))
				for _, v := range a {
					in[v] = true
				}
				for _, v := range b {
					if !in[v] {
						t.Fatalf("constraint %d: reloaded lookup has extra node %d", i, v)
					}
				}
			}
		})
	}
}

// TestReadIndexSetTruncated: every truncation of a valid index-set file
// must fail cleanly (error, no panic) — except trimming the trailing
// newline, which is still a complete JSON document.
func TestReadIndexSetTruncated(t *testing.T) {
	d := workload.IMDb(0.03, 7)
	set := buildWorkloadSet(t, d)
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf, d.In); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if len(data) < 64 {
		t.Fatalf("fixture too small (%d bytes)", len(data))
	}
	cuts := []int{0, 1, len(data) / 4, len(data) / 2, 3 * len(data) / 4, len(data) - 2}
	for _, cut := range cuts {
		if _, err := access.ReadIndexSet(bytes.NewReader(data[:cut]), d.In); err == nil {
			t.Errorf("truncation at %d/%d bytes accepted", cut, len(data))
		}
	}
	// And byte-level corruption of structural characters.
	for _, corrupt := range []struct{ old, new string }{
		{`"entries"`, `"entriesX"`}, // a required field vanishes
		{`[`, `{`},                  // broken nesting (first occurrence)
	} {
		mutated := strings.Replace(string(data), corrupt.old, corrupt.new, 1)
		if mutated == string(data) {
			t.Fatalf("corruption %q not applicable", corrupt.old)
		}
		if _, err := access.ReadIndexSet(strings.NewReader(mutated), d.In); err == nil {
			// Dropping "entries" leaves structurally valid JSON with empty
			// indexes; that must still fail somewhere (count mismatch) —
			// and it does, because the schema remains populated. Reaching
			// here means it was silently accepted.
			t.Errorf("corruption %q -> %q accepted", corrupt.old, corrupt.new)
		}
	}
}

// TestReadIndexSetCorruptEntries: structurally valid JSON with
// inconsistent content (bad arity, trailing garbage readers) errors.
func TestReadIndexSetCorruptEntries(t *testing.T) {
	in := graph.NewInterner()
	cases := []string{
		// Entry arity does not match the constraint's |S|.
		`{"schema":{"constraints":[{"s":["b"],"l":"a","n":2}]},
		  "indexes":[{"entries":[{"vs":[1,2],"members":[3]}]}]}`,
		// Type-1 constraint with a non-empty VS tuple.
		`{"schema":{"constraints":[{"l":"a","n":2}]},
		  "indexes":[{"entries":[{"vs":[9],"members":[3]}]}]}`,
		// More indexes than constraints.
		`{"schema":{"constraints":[{"l":"a","n":2}]},
		  "indexes":[{"entries":[]},{"entries":[]}]}`,
		// Invalid constraint (negative bound).
		`{"schema":{"constraints":[{"l":"a","n":-1}]},"indexes":[{"entries":[]}]}`,
	}
	for i, src := range cases {
		if _, err := access.ReadIndexSet(strings.NewReader(src), in); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// errReader fails partway through, simulating a torn disk read.
type errReader struct {
	data []byte
	off  int
}

func (r *errReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, fmt.Errorf("disk gone")
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	if r.off >= len(r.data) {
		return n, fmt.Errorf("disk gone")
	}
	return n, nil
}

var _ io.Reader = (*errReader)(nil)

// TestReadIndexSetReaderError: an I/O error mid-stream surfaces as an
// error, not a partial index set.
func TestReadIndexSetReaderError(t *testing.T) {
	d := workload.IMDb(0.03, 7)
	set := buildWorkloadSet(t, d)
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf, d.In); err != nil {
		t.Fatal(err)
	}
	half := buf.Bytes()[:buf.Len()/2]
	if _, err := access.ReadIndexSet(&errReader{data: half}, d.In); err == nil {
		t.Fatal("mid-stream read error swallowed")
	}
}
