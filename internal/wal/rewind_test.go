package wal

import (
	"path/filepath"
	"testing"

	"boundedg/internal/graph"
)

// TestLogRewind: appended records past a captured Stats point are
// discarded durably — the reopened log replays only the prefix, and the
// rewound log accepts appends at the restored offset.
func TestLogRewind(t *testing.T) {
	in := graph.NewInterner()
	l1 := in.Intern("a")
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(v int64) *graph.Delta {
		return &graph.Delta{AddNodes: []graph.NodeSpec{{Label: l1, Value: graph.IntValue(v)}}}
	}
	for i := int64(1); i <= 2; i++ {
		if _, err := l.Append(uint64(i), mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	pre := l.Stats()
	for i := int64(3); i <= 4; i++ {
		if _, err := l.Append(uint64(i), mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rewind(pre); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats(); got.Offset != pre.Offset || got.Records != pre.Records {
		t.Fatalf("stats after rewind %+v, want offset/records of %+v", got, pre)
	}
	// The log must be appendable after the rewind, at the restored point.
	off, err := l.Append(5, mk(5))
	if err != nil {
		t.Fatal(err)
	}
	if off <= pre.Offset {
		t.Fatalf("post-rewind append ended at %d, want past %d", off, pre.Offset)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var epochs []uint64
	reopened, info, err := Open(path, in, func(epoch uint64, _ *graph.Delta) error {
		epochs = append(epochs, epoch)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if info.Truncated != 0 {
		t.Fatalf("clean rewound log reported %d truncated bytes (%s)", info.Truncated, info.TruncateReason)
	}
	want := []uint64{1, 2, 5}
	if len(epochs) != len(want) {
		t.Fatalf("replayed epochs %v, want %v", epochs, want)
	}
	for i := range want {
		if epochs[i] != want[i] {
			t.Fatalf("replayed epochs %v, want %v", epochs, want)
		}
	}
}
