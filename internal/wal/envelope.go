package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"boundedg/internal/graph"
)

// Envelope is the record payload of a sharded log (magic "bgwal002"): one
// shard's sub-delta of a cross-shard update, wrapped with the metadata
// recovery needs to reconcile the shard logs into one consistent history.
//
//   - Seq is the router-wide sequence number of the originating update; a
//     cross-shard update appends one record per participant shard, all
//     carrying the same Seq.
//   - Shards lists every participant, so recovery can tell whether a Seq
//     is fully logged (each participant either holds the record or has a
//     checkpoint past its epoch) or torn — torn batches are rewound on
//     every shard.
//   - AddIDs pins the globally assigned node IDs of the sub-delta's
//     AddNodes (same length), replayed through Delta.AddNodeIDs.
//
// The payload encoding is a binary prefix (uvarint Seq, uvarint shard
// count + shards, uvarint ID count + IDs) followed by the sub-delta in
// the strict graph.Delta JSON codec — no JSON-in-JSON.
type Envelope struct {
	Seq    uint64
	Shards []int
	AddIDs []graph.NodeID
	Delta  *graph.Delta
}

func encodeEnvelope(e *Envelope, in *graph.Interner) ([]byte, error) {
	buf := binary.AppendUvarint(nil, e.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(e.Shards)))
	for _, s := range e.Shards {
		if s < 0 {
			return nil, fmt.Errorf("wal: envelope shard %d negative", s)
		}
		buf = binary.AppendUvarint(buf, uint64(s))
	}
	buf = binary.AppendUvarint(buf, uint64(len(e.AddIDs)))
	for _, id := range e.AddIDs {
		if id < 0 {
			return nil, fmt.Errorf("wal: envelope node ID %d negative", id)
		}
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	w := bytes.NewBuffer(buf)
	if err := e.Delta.WriteJSON(w, in); err != nil {
		return nil, fmt.Errorf("wal: encode envelope delta: %w", err)
	}
	return w.Bytes(), nil
}

func decodeEnvelope(payload []byte, in *graph.Interner) (*Envelope, error) {
	rd := bytes.NewReader(payload)
	uv := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(rd)
		if err != nil {
			return 0, fmt.Errorf("wal: envelope %s: %w", what, err)
		}
		return v, nil
	}
	e := &Envelope{}
	var err error
	if e.Seq, err = uv("seq"); err != nil {
		return nil, err
	}
	nShards, err := uv("shard count")
	if err != nil {
		return nil, err
	}
	if nShards > uint64(len(payload)) {
		return nil, fmt.Errorf("wal: envelope shard count %d implausible", nShards)
	}
	e.Shards = make([]int, nShards)
	for i := range e.Shards {
		s, err := uv("shard")
		if err != nil {
			return nil, err
		}
		e.Shards[i] = int(s)
	}
	nIDs, err := uv("node-ID count")
	if err != nil {
		return nil, err
	}
	if nIDs > uint64(len(payload)) {
		return nil, fmt.Errorf("wal: envelope node-ID count %d implausible", nIDs)
	}
	e.AddIDs = make([]graph.NodeID, nIDs)
	for i := range e.AddIDs {
		id, err := uv("node ID")
		if err != nil {
			return nil, err
		}
		e.AddIDs[i] = graph.NodeID(id)
	}
	d, err := graph.ReadDeltaJSON(rd, in)
	if err != nil {
		return nil, fmt.Errorf("wal: envelope delta: %w", err)
	}
	// Envelope records were accepted before logging; commit any staged
	// labels directly (recovery is single-threaded).
	commitLabels, _, err := d.ResolveLabels(in)
	if err != nil {
		return nil, fmt.Errorf("wal: envelope delta: %w", err)
	}
	commitLabels()
	if len(e.AddIDs) != len(d.AddNodes) {
		return nil, fmt.Errorf("wal: envelope has %d node IDs for %d AddNodes", len(e.AddIDs), len(d.AddNodes))
	}
	if len(e.AddIDs) > 0 {
		d.AddNodeIDs = e.AddIDs
	}
	e.Delta = d
	return e, nil
}

// AppendEnvelope writes one envelope record at the given commit epoch
// (the router's global sequence number for the batch) and returns the log
// offset after it. The log must have been created with CreateEnveloped.
func (l *Log) AppendEnvelope(epoch uint64, e *Envelope) (int64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	payload, err := encodeEnvelope(e, l.in)
	if err != nil {
		return 0, err
	}
	return l.appendPayload(epoch, payload)
}

// EnvelopeInfo describes one valid record found by ScanEnvelopes.
type EnvelopeInfo struct {
	Epoch  uint64
	Seq    uint64
	Shards []int
	// Start and End are the file offsets of the record's first byte and
	// of the byte just past it. Passing a record's Start as the cut to
	// OpenEnvelopes removes it and everything after it.
	Start int64
	End   int64
}

// ScanEnvelopes reads a sharded log without modifying it, returning its
// base epoch and every record of the valid prefix (a torn or corrupt tail
// simply ends the prefix). Recovery scans all shard logs first, decides
// the reconciliation cut, and only then opens each log with
// OpenEnvelopes.
func ScanEnvelopes(path string, in *graph.Interner) (uint64, []EnvelopeInfo, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: read log: %w", err)
	}
	if len(raw) < headerSize || string(raw[:len(magic)]) != magicEnv {
		return 0, nil, fmt.Errorf("wal: %s is not a sharded log file (bad header)", path)
	}
	base := binary.LittleEndian.Uint64(raw[len(magic):])
	var recs []EnvelopeInfo
	pos := int64(headerSize)
	prevEpoch := base
	for pos < int64(len(raw)) {
		if int64(len(raw))-pos < int64(frameSize) {
			break
		}
		frame := raw[pos : pos+int64(frameSize)]
		length := binary.LittleEndian.Uint32(frame)
		crc := binary.LittleEndian.Uint32(frame[4:])
		epoch := binary.LittleEndian.Uint64(frame[8:])
		if length > maxRecordBytes || int64(len(raw))-pos < int64(frameSize)+int64(length) {
			break
		}
		payload := raw[pos+int64(frameSize) : pos+int64(frameSize)+int64(length)]
		sum := crc32.Update(crc32.Checksum(frame[8:], crcTable), crcTable, payload)
		if sum != crc || epoch <= base || epoch < prevEpoch {
			break
		}
		e, err := decodeEnvelope(payload, in)
		if err != nil {
			break
		}
		start := pos
		pos += int64(frameSize) + int64(length)
		recs = append(recs, EnvelopeInfo{Epoch: epoch, Seq: e.Seq, Shards: e.Shards, Start: start, End: pos})
		prevEpoch = epoch
	}
	return base, recs, nil
}

// OpenEnvelopes opens a sharded log for appending, replaying every valid
// record that starts below cut (pass cut < 0 for no cut) and truncating
// the file after the last one — both the torn tail and everything at or
// past the reconciliation cut are durably discarded.
func OpenEnvelopes(path string, in *graph.Interner, cut int64, replay func(epoch uint64, e *Envelope) error) (*Log, OpenInfo, error) {
	return openLog(path, in, magicEnv, cut, func(epoch uint64, payload []byte) (string, error) {
		e, err := decodeEnvelope(payload, in)
		if err != nil {
			return fmt.Sprintf("record payload does not decode: %v", err), nil
		}
		if replay != nil {
			return "", replay(epoch, e)
		}
		return "", nil
	})
}
