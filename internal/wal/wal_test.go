package wal

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/workload"
)

// testDelta returns a small, structurally valid delta over a 3-node
// toy graph ID space (used by the framing tests, which never apply it).
func testDelta(k int) *graph.Delta {
	return &graph.Delta{AddEdges: [][2]graph.NodeID{{graph.NodeID(k % 3), graph.NodeID((k + 1) % 3)}}}
}

func deltaBytes(t *testing.T, d *graph.Delta, in *graph.Interner) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLogAppendReplayRoundTrip(t *testing.T) {
	in := graph.NewInterner()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, in, 7)
	if err != nil {
		t.Fatal(err)
	}
	epochs := []uint64{8, 9, 9, 10} // batch records may share an epoch
	var wantOff int64
	for i, e := range epochs {
		off, err := l.Append(e, testDelta(i))
		if err != nil {
			t.Fatal(err)
		}
		if off <= wantOff {
			t.Fatalf("offset %d not monotone after %d", off, wantOff)
		}
		wantOff = off
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s.Records != 4 || s.Syncs != 1 || s.Offset != wantOff || s.BaseEpoch != 7 {
		t.Fatalf("stats = %+v", s)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var gotEpochs []uint64
	var gotPayloads [][]byte
	l2, info, err := Open(path, in, func(epoch uint64, d *graph.Delta) error {
		gotEpochs = append(gotEpochs, epoch)
		gotPayloads = append(gotPayloads, deltaBytes(t, d, in))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.Truncated != 0 || info.TruncateReason != "" || info.Records != 4 {
		t.Fatalf("open info = %+v", info)
	}
	if len(gotEpochs) != len(epochs) {
		t.Fatalf("replayed %d records, want %d", len(gotEpochs), len(epochs))
	}
	for i, e := range epochs {
		if gotEpochs[i] != e {
			t.Fatalf("record %d epoch %d, want %d", i, gotEpochs[i], e)
		}
		if want := deltaBytes(t, testDelta(i), in); !bytes.Equal(gotPayloads[i], want) {
			t.Fatalf("record %d payload %q, want %q", i, gotPayloads[i], want)
		}
	}
	if st, _ := os.Stat(path); st.Size() != wantOff {
		t.Fatalf("file size %d, want offset %d", st.Size(), wantOff)
	}
	// The reopened log must keep appending where the old one stopped.
	if off, err := l2.Append(11, testDelta(9)); err != nil || off <= wantOff {
		t.Fatalf("append after reopen: off=%d err=%v", off, err)
	}
}

// TestLogTornTailTruncatedAtEveryByte cuts the file at every byte offset
// inside the final record: recovery must replay exactly the intact
// prefix, truncate the rest, and leave the log appendable.
func TestLogTornTailTruncatedAtEveryByte(t *testing.T) {
	in := graph.NewInterner()
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Create(path, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64 // end offset of each record
	for i := 0; i < 3; i++ {
		off, err := l.Append(uint64(i+1), testDelta(i))
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := offs[1] + 1; cut < offs[2]; cut++ {
		torn := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(torn, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var n int
		l2, info, err := Open(torn, in, func(uint64, *graph.Delta) error { n++; return nil })
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if n != 2 || info.Records != 2 {
			t.Fatalf("cut at %d: replayed %d records, want 2", cut, n)
		}
		if info.Truncated != cut-offs[1] || info.TruncateReason == "" {
			t.Fatalf("cut at %d: info = %+v", cut, info)
		}
		if st, _ := os.Stat(torn); st.Size() != offs[1] {
			t.Fatalf("cut at %d: truncated size %d, want %d", cut, st.Size(), offs[1])
		}
		// The torn record is gone for good: a new append takes its place
		// and survives a clean reopen.
		if _, err := l2.Append(3, testDelta(7)); err != nil {
			t.Fatalf("cut at %d: append after truncation: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		n = 0
		l3, info, err := Open(torn, in, func(uint64, *graph.Delta) error { n++; return nil })
		if err != nil || n != 3 || info.Truncated != 0 {
			t.Fatalf("cut at %d: reopen after repair: n=%d info=%+v err=%v", cut, n, info, err)
		}
		l3.Close()
	}
}

func TestLogCorruptionStopsReplay(t *testing.T) {
	in := graph.NewInterner()
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Create(path, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	var off0 int64
	for i := 0; i < 3; i++ {
		off, err := l.Append(uint64(i+1), testDelta(i))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			off0 = off
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle record: it and everything after
	// it must be dropped, even though the final record is intact.
	for _, tc := range []struct {
		name string
		at   int64
	}{
		{"payload byte", off0 + frameSize + 2},
		{"epoch byte", off0 + 8},
		{"length byte", off0},
	} {
		bad := append([]byte(nil), whole...)
		bad[tc.at] ^= 0xff
		p := filepath.Join(dir, "bad.log")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		var n int
		l2, info, err := Open(p, in, func(uint64, *graph.Delta) error { n++; return nil })
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		l2.Close()
		if n != 1 || info.TruncateReason == "" {
			t.Fatalf("%s: replayed %d records (info %+v), want 1 + truncation", tc.name, n, info)
		}
		if st, _ := os.Stat(p); st.Size() != off0 {
			t.Fatalf("%s: size %d, want %d", tc.name, st.Size(), off0)
		}
	}
}

func TestLogRejectsBadHeaderAndEpochOrder(t *testing.T) {
	in := graph.NewInterner()
	dir := t.TempDir()
	for name, content := range map[string][]byte{
		"empty":       {},
		"short":       []byte("bgwal0"),
		"wrong magic": append([]byte("notalog!"), make([]byte, 12)...),
	} {
		p := filepath.Join(dir, "h.log")
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(p, in, nil); err == nil {
			t.Errorf("%s header: opened without error", name)
		}
	}
	// Records at or below the base epoch, or going backwards, read as
	// corruption: replay stops there.
	p := filepath.Join(dir, "e.log")
	l, err := Create(p, in, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(6, testDelta(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(5, testDelta(1)); err != nil { // <= base: invalid
		t.Fatal(err)
	}
	l.Close()
	var n int
	l2, info, err := Open(p, in, func(uint64, *graph.Delta) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if n != 1 || info.TruncateReason == "" {
		t.Fatalf("replayed %d records (info %+v), want 1 + truncation", n, info)
	}
}

// --- Dir tests -------------------------------------------------------

// testState builds a small workload dataset and its index set.
func testState(t testing.TB) (*graph.Graph, *access.IndexSet, *graph.Interner, *access.Schema) {
	t.Helper()
	d := workload.IMDb(0.05, 3)
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		t.Fatal(viols[0])
	}
	return d.G, idx, d.In, d.Schema
}

// acceptedDeltas draws n random deltas that the live state accepts,
// applying them to g/idx as it goes (mimicking the store's commit path).
func acceptedDeltas(t testing.TB, r *rand.Rand, g *graph.Graph, idx *access.IndexSet) func() *graph.Delta {
	t.Helper()
	return func() *graph.Delta {
		for {
			live := g.NodeList()
			labels := g.Labels()
			d := &graph.Delta{}
			switch r.Intn(4) {
			case 0:
				d.AddNodes = []graph.NodeSpec{{Label: labels[r.Intn(len(labels))]}}
				d.AddEdges = [][2]graph.NodeID{{graph.NewNodeRef(0), live[r.Intn(len(live))]}}
			case 1:
				d.AddEdges = [][2]graph.NodeID{{live[r.Intn(len(live))], live[r.Intn(len(live))]}}
			case 2:
				v := live[r.Intn(len(live))]
				if outs := g.Out(v); len(outs) > 0 {
					d.DelEdges = [][2]graph.NodeID{{v, outs[r.Intn(len(outs))]}}
				}
			case 3:
				d.DelNodes = []graph.NodeID{live[r.Intn(len(live))]}
			}
			if d.Empty() {
				continue
			}
			if _, err := idx.ApplyDeltaTx(g, d.Clone()); err != nil {
				continue // rejected: never logged, draw again
			}
			return d
		}
	}
}

func stateBytes(t testing.TB, g *graph.Graph, idx *access.IndexSet, in *graph.Interner) ([]byte, []byte) {
	t.Helper()
	var gb, xb bytes.Buffer
	if err := g.WriteSnapshotJSON(&gb); err != nil {
		t.Fatal(err)
	}
	if err := idx.WriteJSON(&xb, in); err != nil {
		t.Fatal(err)
	}
	return gb.Bytes(), xb.Bytes()
}

func TestDirInitAppendRecover(t *testing.T) {
	g, idx, in, _ := testState(t)
	dir := t.TempDir()
	d, err := OpenDir(dir, in)
	if err != nil {
		t.Fatal(err)
	}
	if HasState(dir) {
		t.Fatal("fresh dir claims state")
	}
	// Reference tracks what the recovered state must equal. Apply each
	// delta to both the "live" state (logged) and keep bytes at the end.
	if err := d.Init(0, g, idx); err != nil {
		t.Fatal(err)
	}
	if !HasState(dir) {
		t.Fatal("initialized dir has no state")
	}
	r := rand.New(rand.NewSource(11))
	draw := acceptedDeltas(t, r, g, idx)
	for i := 0; i < 40; i++ {
		delta := draw() // applied to g/idx inside draw
		if _, err := d.Log().Append(uint64(i+1), delta); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Log().Sync(); err != nil {
		t.Fatal(err)
	}
	wantG, wantX := stateBytes(t, g, idx, in)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	in2 := graph.NewInterner()
	d2, err := OpenDir(dir, in2)
	if err != nil {
		t.Fatal(err)
	}
	g2, idx2, info, err := d2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if info.CheckpointEpoch != 0 || info.Epoch != 40 || info.Records != 40 || info.Truncated != 0 {
		t.Fatalf("recover info = %+v", info)
	}
	gotG, gotX := stateBytes(t, g2, idx2, in2)
	if !bytes.Equal(gotG, wantG) {
		t.Fatal("recovered graph bytes diverge from live state")
	}
	if !bytes.Equal(gotX, wantX) {
		t.Fatal("recovered index bytes diverge from live state")
	}
}

// copyDir snapshots the WAL directory as a kill at that instant would
// leave it (same bytes, fsync aside — the test reads through the same
// page cache either way).
func copyDir(t testing.TB, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestDirCheckpointCrashInjection kills the checkpoint at each of its
// three internal steps (snapshot written / log rotated / manifest
// swapped) by copying the directory at the hook, then recovers every
// copy: all must reconstruct the exact state the checkpoint captured.
func TestDirCheckpointCrashInjection(t *testing.T) {
	g, idx, in, _ := testState(t)
	dir := t.TempDir()
	d, err := OpenDir(dir, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Init(0, g, idx); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(23))
	draw := acceptedDeltas(t, r, g, idx)
	for i := 0; i < 25; i++ {
		if _, err := d.Log().Append(uint64(i+1), draw()); err != nil {
			t.Fatal(err)
		}
	}
	wantG, wantX := stateBytes(t, g, idx, in)

	var copies []string
	names := []string{"after-snapshot", "after-log-create", "after-manifest"}
	d.hookAfterSnapshot = func() { copies = append(copies, copyDir(t, dir)) }
	d.hookAfterLogCreate = func() { copies = append(copies, copyDir(t, dir)) }
	d.hookAfterManifest = func() { copies = append(copies, copyDir(t, dir)) }
	if err := d.Checkpoint(25, g, idx); err != nil {
		t.Fatal(err)
	}
	copies = append(copies, copyDir(t, dir)) // and the completed checkpoint
	names = append(names, "complete")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	for i, c := range copies {
		in2 := graph.NewInterner()
		d2, err := OpenDir(c, in2)
		if err != nil {
			t.Fatal(err)
		}
		g2, idx2, info, err := d2.Recover()
		if err != nil {
			t.Fatalf("kill %s: recover: %v", names[i], err)
		}
		if info.Epoch != 25 {
			t.Fatalf("kill %s: recovered to epoch %d, want 25", names[i], info.Epoch)
		}
		gotG, gotX := stateBytes(t, g2, idx2, in2)
		if !bytes.Equal(gotG, wantG) || !bytes.Equal(gotX, wantX) {
			t.Fatalf("kill %s: recovered state diverges", names[i])
		}
		// Recovery must leave the directory appendable again.
		if _, err := d2.Log().Append(info.Epoch+1, &graph.Delta{}); err != nil {
			t.Fatalf("kill %s: append after recovery: %v", names[i], err)
		}
		d2.Close()
	}
}

func TestDirRecoverRejectsBaseEpochMismatch(t *testing.T) {
	g, idx, in, _ := testState(t)
	dir := t.TempDir()
	d, err := OpenDir(dir, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Init(0, g, idx); err != nil {
		t.Fatal(err)
	}
	d.Close()
	// Swap in a log based at a different epoch than the manifest claims.
	lp := filepath.Join(dir, "wal-0.log")
	os.Remove(lp)
	l, err := Create(lp, in, 3)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	d2, err := OpenDir(dir, graph.NewInterner())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := d2.Recover(); err == nil {
		t.Fatal("recovered despite base-epoch mismatch")
	}
}
