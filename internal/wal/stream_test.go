package wal

import (
	"bytes"
	"io"
	"path/filepath"
	"testing"
	"time"

	"boundedg/internal/graph"
)

// TestChunkCodecRoundTrip checks the stream chunk wire framing: a
// round-trip preserves every field, a clean EOF and a torn read are
// distinguished, and a flipped header byte fails the CRC.
func TestChunkCodecRoundTrip(t *testing.T) {
	c := Chunk{Epoch: 7, EndOffset: 12345, PrimaryEpoch: 9, Frames: []byte("not real frames but opaque here")}
	var buf bytes.Buffer
	if err := WriteChunk(&buf, c); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), buf.Bytes()...)

	got, err := ReadChunk(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != c.Epoch || got.EndOffset != c.EndOffset || got.PrimaryEpoch != c.PrimaryEpoch || !bytes.Equal(got.Frames, c.Frames) {
		t.Fatalf("round trip: %+v != %+v", got, c)
	}
	if _, err := ReadChunk(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
	for cut := 1; cut < len(wire); cut++ {
		if _, err := ReadChunk(bytes.NewReader(wire[:cut])); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	bad := append([]byte(nil), wire...)
	bad[5] ^= 0x40 // inside the epoch field, covered by the header CRC
	if _, err := ReadChunk(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt header accepted")
	}
}

// streamTestLog creates a log, appends n single-delta epochs, syncs, and
// publishes everything — the state a replication tailer reads from.
func streamTestLog(t *testing.T, n int) (*Log, []int64) {
	t.Helper()
	in := graph.NewInterner()
	l, err := Create(filepath.Join(t.TempDir(), "wal.log"), in, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	var offs []int64
	for i := 0; i < n; i++ {
		off, err := l.Append(uint64(i+1), testDelta(i))
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.PublishTo(l.Stats().Offset)
	return l, offs
}

// TestParseFramesRoundTripAndCorruption reads committed record frames
// back off a real log file and checks ParseFrames recovers them, and that
// any truncation or bit flip is an error (stream bytes are supposed to be
// fully committed — there is no torn-tail tolerance on the wire).
func TestParseFramesRoundTrip(t *testing.T) {
	l, offs := streamTestLog(t, 3)
	tl, err := l.NewTailer(HeaderSize())
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	var frames []byte
	for range offs {
		c, err := tl.Next(nil)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, c.Frames...)
	}

	recs, err := ParseFrames(frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Epoch != uint64(i+1) {
			t.Fatalf("record %d epoch %d", i, r.Epoch)
		}
		if _, err := graph.ReadDeltaJSON(bytes.NewReader(r.Payload), graph.NewInterner()); err != nil {
			t.Fatalf("record %d payload does not decode: %v", i, err)
		}
	}
	// Truncation anywhere but a record boundary must fail (a boundary
	// prefix is simply a shorter, still-valid frame run).
	boundary := map[int]bool{}
	pos := 0
	for _, r := range recs {
		pos += frameSize + len(r.Payload)
		boundary[pos] = true
	}
	for cut := 1; cut < len(frames); cut++ {
		if boundary[cut] {
			continue
		}
		if _, err := ParseFrames(frames[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for pos := 0; pos < len(frames); pos++ {
		bad := append([]byte(nil), frames...)
		bad[pos] ^= 0x01
		if _, err := ParseFrames(bad); err == nil {
			t.Fatalf("bit flip at %d accepted", pos)
		}
	}
}

// TestPublishWaitRetire checks the published-offset synchronization: the
// offset is monotonic, a blocked waiter is woken by a publish that
// crosses its threshold, retirement wakes everyone, and done cancels.
func TestPublishWaitRetire(t *testing.T) {
	in := graph.NewInterner()
	l, err := Create(filepath.Join(t.TempDir(), "wal.log"), in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Published() != HeaderSize() {
		t.Fatalf("fresh log published %d, want %d", l.Published(), HeaderSize())
	}
	off1, err := l.Append(1, testDelta(0))
	if err != nil {
		t.Fatal(err)
	}
	l.PublishTo(off1)
	l.PublishTo(off1 - 4) // regression must be ignored
	if l.Published() != off1 {
		t.Fatalf("published %d, want %d", l.Published(), off1)
	}

	type res struct {
		pub     int64
		retired bool
	}
	woken := make(chan res, 1)
	go func() {
		pub, ret := l.WaitPublished(nil, off1)
		woken <- res{pub, ret}
	}()
	select {
	case r := <-woken:
		t.Fatalf("waiter returned %+v before a publish", r)
	case <-time.After(20 * time.Millisecond):
	}
	off2, err := l.Append(2, testDelta(1))
	if err != nil {
		t.Fatal(err)
	}
	l.PublishTo(off2)
	select {
	case r := <-woken:
		if r.pub != off2 || r.retired {
			t.Fatalf("waiter woke with %+v, want pub %d", r, off2)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("publish did not wake the waiter")
	}

	// done closes first: the wait returns without a publish.
	done := make(chan struct{})
	go func() {
		l.WaitPublished(done, off2)
		woken <- res{}
	}()
	close(done)
	select {
	case <-woken:
	case <-time.After(5 * time.Second):
		t.Fatal("done did not cancel the wait")
	}

	// Retirement wakes waiters with the flag set.
	go func() {
		pub, ret := l.WaitPublished(nil, off2)
		woken <- res{pub, ret}
	}()
	time.Sleep(10 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-woken:
		if !r.retired {
			t.Fatalf("waiter woke with %+v after Close, want retired", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retirement did not wake the waiter")
	}
}

// TestTailerGroupsByEpoch checks the tailer's chunking invariant: one
// chunk per epoch, all of the epoch's records, end offsets on record
// boundaries, live appends picked up after a wait, and io.EOF exactly at
// retirement.
func TestTailerGroupsByEpoch(t *testing.T) {
	in := graph.NewInterner()
	l, err := Create(filepath.Join(t.TempDir(), "wal.log"), in, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Epoch 1: two records; epoch 2: one; epoch 3: three.
	shape := []int{2, 1, 3}
	ends := make([]int64, len(shape))
	k := 0
	for e, n := range shape {
		for i := 0; i < n; i++ {
			off, err := l.Append(uint64(e+1), testDelta(k))
			if err != nil {
				t.Fatal(err)
			}
			ends[e] = off
			k++
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.PublishTo(l.Stats().Offset)

	if _, err := l.NewTailer(HeaderSize() - 1); err == nil {
		t.Fatal("offset below the header accepted")
	}
	if _, err := l.NewTailer(l.Published() + 1); err == nil {
		t.Fatal("offset beyond the published prefix accepted")
	}

	tl, err := l.NewTailer(HeaderSize())
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	for e, n := range shape {
		c, err := tl.Next(nil)
		if err != nil {
			t.Fatal(err)
		}
		if c.Epoch != uint64(e+1) || c.EndOffset != ends[e] {
			t.Fatalf("chunk %d: epoch %d end %d, want epoch %d end %d", e, c.Epoch, c.EndOffset, e+1, ends[e])
		}
		recs, err := ParseFrames(c.Frames)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != n {
			t.Fatalf("chunk %d: %d records, want %d", e, len(recs), n)
		}
		for _, r := range recs {
			if r.Epoch != c.Epoch {
				t.Fatalf("chunk %d carries epoch %d record", e, r.Epoch)
			}
		}
	}

	// The tailer is drained; a live append must wake it.
	got := make(chan Chunk, 1)
	fail := make(chan error, 1)
	go func() {
		c, err := tl.Next(nil)
		if err != nil {
			fail <- err
			return
		}
		got <- c
	}()
	time.Sleep(10 * time.Millisecond)
	off, err := l.Append(4, testDelta(k))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.PublishTo(off)
	select {
	case c := <-got:
		if c.Epoch != 4 || c.EndOffset != off {
			t.Fatalf("live chunk %+v, want epoch 4 end %d", c, off)
		}
	case err := <-fail:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("live publish did not wake the tailer")
	}

	// Retirement drains to io.EOF.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Next(nil); err != io.EOF {
		t.Fatalf("after retirement: %v, want io.EOF", err)
	}
}
