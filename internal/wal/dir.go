package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"boundedg/internal/access"
	"boundedg/internal/graph"
)

// manifestName is the one file whose atomic rename commits a checkpoint.
const manifestName = "MANIFEST"

// ErrCheckpointAmbiguous is returned by Checkpoint when the directory
// fsync AFTER the manifest rename fails: the swap may or may not survive
// a crash, so neither the old nor the new log can safely take further
// appends (whichever the crash resurrects, the other's post-checkpoint
// records would be lost). The store reacts by wedging — readers keep
// serving, writes are refused until an operator restarts into whichever
// state the disk actually holds.
var ErrCheckpointAmbiguous = errors.New("wal: checkpoint manifest swap not durable; on-disk state ambiguous")

// manifest names the current checkpoint: the epoch it was taken at and
// the files (relative to the directory) holding the snapshot and the log
// of everything after it.
type manifest struct {
	Epoch uint64 `json:"epoch"`
	Graph string `json:"graph"`
	Index string `json:"index"`
	Log   string `json:"log"`
}

// Dir is a WAL directory: checkpoint snapshot files, the current log,
// and the MANIFEST tying them together. One Dir owns the directory for
// the process lifetime; the store serializes all calls except HasState.
type Dir struct {
	path      string
	in        *graph.Interner
	enveloped bool                // sharded dir: logs carry Envelopes ("bgwal002")
	log       atomic.Pointer[Log] // swapped at checkpoints; nil until Init/Recover
	mmu       sync.Mutex          // guards m: checkpoint commits swap it while streams read it
	m         manifest            // valid once recovered or initialized

	// Crash-injection points for tests: called between the checkpoint
	// file-dance steps so a test can capture the directory exactly as a
	// kill at that instant would leave it.
	hookAfterSnapshot  func() // snapshot files written, new log not yet created
	hookAfterLogCreate func() // new log created, MANIFEST still the old one
	hookAfterManifest  func() // MANIFEST swapped, stale files not yet removed
	hookSyncDirErr     error  // injected post-rename dir-sync failure (ambiguous swap)
}

// HasState reports whether path holds an initialized WAL directory (a
// MANIFEST exists).
func HasState(path string) bool {
	_, err := os.Stat(filepath.Join(path, manifestName))
	return err == nil
}

// OpenDir opens (creating if needed) the WAL directory at path. Labels in
// snapshots and log records resolve through in. Follow with Recover when
// HasState, Init otherwise.
func OpenDir(path string, in *graph.Interner) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	return &Dir{path: path, in: in}, nil
}

// OpenDirEnveloped is OpenDir for one shard's directory of a sharded
// store: checkpoints rotate to enveloped logs, and recovery goes through
// LoadSnapshot + OpenEnvelopes + AdoptLog (driven by the shard router,
// which reconciles all shard logs) instead of Recover.
func OpenDirEnveloped(path string, in *graph.Interner) (*Dir, error) {
	d, err := OpenDir(path, in)
	if err != nil {
		return nil, err
	}
	d.enveloped = true
	return d, nil
}

// Log returns the current log (nil before Init or Recover). Safe to
// call concurrently with a checkpoint rotating it; the returned Log's
// Stats stay readable even after rotation closes it.
func (d *Dir) Log() *Log { return d.log.Load() }

// LastCheckpointEpoch returns the epoch of the current checkpoint.
func (d *Dir) LastCheckpointEpoch() uint64 { return d.manifestSnapshot().Epoch }

// Enveloped reports whether this directory's logs carry sharded
// envelopes ("bgwal002") rather than plain delta records.
func (d *Dir) Enveloped() bool { return d.enveloped }

// manifestSnapshot copies the current manifest under its lock — the
// checkpoint commit path swaps it while stream and bootstrap handlers
// read it.
func (d *Dir) manifestSnapshot() manifest {
	d.mmu.Lock()
	defer d.mmu.Unlock()
	return d.m
}

func (d *Dir) setManifest(m manifest) {
	d.mmu.Lock()
	d.m = m
	d.mmu.Unlock()
}

// ReadCheckpoint returns the current checkpoint epoch and the raw JSON of
// its graph and index snapshot files, for serving to a bootstrapping
// follower. The files are immutable once the manifest names them, but a
// concurrent checkpoint commit may delete them after rotating past — a
// read that loses that race re-reads the (new) manifest and retries.
func (d *Dir) ReadCheckpoint() (uint64, []byte, []byte, error) {
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		m := d.manifestSnapshot()
		if m.Graph == "" {
			return 0, nil, nil, errors.New("wal: dir not initialized")
		}
		gj, err := os.ReadFile(filepath.Join(d.path, m.Graph))
		if err != nil {
			lastErr = err
			continue
		}
		ij, err := os.ReadFile(filepath.Join(d.path, m.Index))
		if err != nil {
			lastErr = err
			continue
		}
		return m.Epoch, gj, ij, nil
	}
	return 0, nil, nil, fmt.Errorf("wal: read checkpoint: %w", lastErr)
}

// Close closes the current log.
func (d *Dir) Close() error {
	l := d.log.Load()
	if l == nil {
		return nil
	}
	return l.Close()
}

// Init writes the initial checkpoint for a freshly loaded state at the
// given epoch (normally 0) and opens an empty log after it.
func (d *Dir) Init(epoch uint64, g *graph.Graph, idx *access.IndexSet) error {
	if d.log.Load() != nil {
		return errors.New("wal: dir already initialized")
	}
	if HasState(d.path) {
		return fmt.Errorf("wal: %s already holds state; recover instead of initializing", d.path)
	}
	return d.checkpoint(epoch, g, idx)
}

// RecoverInfo reports what Recover reconstructed.
type RecoverInfo struct {
	// CheckpointEpoch is the epoch of the snapshot the tail replayed onto.
	CheckpointEpoch uint64
	// Epoch is the epoch after replay — the store resumes from here.
	Epoch uint64
	// Records is the number of log records replayed.
	Records uint64
	// Truncated is the number of torn/corrupt tail bytes discarded, with
	// TruncateReason saying why (empty when the tail was clean).
	Truncated      int64
	TruncateReason string
}

// Recover loads the MANIFEST's snapshot and replays the log tail onto it
// through access.IndexSet.ApplyDeltaTx, returning the reconstructed
// graph and index set. Every replayed record was accepted (and therefore
// validated) before it was logged, so a replay rejection means the
// snapshot and log disagree and recovery fails loudly rather than guess.
// The log is left truncated past its valid prefix and open for appends.
func (d *Dir) Recover() (*graph.Graph, *access.IndexSet, *RecoverInfo, error) {
	g, idx, m, err := d.loadSnapshot()
	if err != nil {
		return nil, nil, nil, err
	}
	info := &RecoverInfo{CheckpointEpoch: m.Epoch, Epoch: m.Epoch}
	l, oi, err := Open(filepath.Join(d.path, m.Log), d.in, func(epoch uint64, delta *graph.Delta) error {
		if _, err := idx.ApplyDeltaTx(g, delta); err != nil {
			return err
		}
		info.Epoch = epoch
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if l.BaseEpoch() != m.Epoch {
		l.Close()
		return nil, nil, nil, fmt.Errorf("wal: log base epoch %d does not match checkpoint epoch %d", l.BaseEpoch(), m.Epoch)
	}
	info.Records = oi.Records
	info.Truncated = oi.Truncated
	info.TruncateReason = oi.TruncateReason
	d.log.Store(l)
	d.setManifest(m)
	d.removeStale()
	return g, idx, info, nil
}

// loadSnapshot reads the MANIFEST and decodes the snapshot files, without
// touching the log.
func (d *Dir) loadSnapshot() (*graph.Graph, *access.IndexSet, manifest, error) {
	var m manifest
	if d.log.Load() != nil {
		return nil, nil, m, errors.New("wal: dir already recovered")
	}
	mf, err := os.ReadFile(filepath.Join(d.path, manifestName))
	if err != nil {
		return nil, nil, m, fmt.Errorf("wal: read manifest: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(mf)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, nil, m, fmt.Errorf("wal: decode manifest: %w", err)
	}
	gf, err := os.Open(filepath.Join(d.path, m.Graph))
	if err != nil {
		return nil, nil, m, fmt.Errorf("wal: open graph snapshot: %w", err)
	}
	g, err := graph.ReadSnapshotJSON(gf, d.in)
	gf.Close()
	if err != nil {
		return nil, nil, m, fmt.Errorf("wal: load graph snapshot: %w", err)
	}
	xf, err := os.Open(filepath.Join(d.path, m.Index))
	if err != nil {
		return nil, nil, m, fmt.Errorf("wal: open index snapshot: %w", err)
	}
	idx, err := access.ReadIndexSet(xf, d.in)
	xf.Close()
	if err != nil {
		return nil, nil, m, fmt.Errorf("wal: load index snapshot: %w", err)
	}
	return g, idx, m, nil
}

// LoadSnapshot is phase one of sharded recovery: it reads the MANIFEST
// and decodes the snapshot, returning the checkpoint epoch and the
// absolute path of the log — which the shard router scans on every shard
// (ScanEnvelopes) to reconcile a cut before any log is opened or
// truncated. Finish with AdoptLog.
func (d *Dir) LoadSnapshot() (*graph.Graph, *access.IndexSet, uint64, string, error) {
	g, idx, m, err := d.loadSnapshot()
	if err != nil {
		return nil, nil, 0, "", err
	}
	d.setManifest(m)
	return g, idx, m.Epoch, filepath.Join(d.path, m.Log), nil
}

// AdoptLog installs the log opened (and possibly truncated) by the shard
// router as this directory's current log, completing a recovery started
// with LoadSnapshot.
func (d *Dir) AdoptLog(l *Log) error {
	if d.log.Load() != nil {
		return errors.New("wal: dir already has a log")
	}
	if ce := d.LastCheckpointEpoch(); l.BaseEpoch() != ce {
		return fmt.Errorf("wal: log base epoch %d does not match checkpoint epoch %d", l.BaseEpoch(), ce)
	}
	d.log.Store(l)
	d.removeStale()
	return nil
}

// Checkpoint rewrites the snapshot at the given epoch and rotates the
// log. g and idx must be the published state of exactly that epoch, and
// no record may be appended concurrently (the store holds its writer
// lock). On success the previous log and snapshot files are gone and the
// current log is empty, based at epoch.
func (d *Dir) Checkpoint(epoch uint64, g *graph.Graph, idx *access.IndexSet) error {
	if d.log.Load() == nil {
		return errors.New("wal: dir not initialized")
	}
	if epoch == d.LastCheckpointEpoch() {
		// Nothing committed since the last checkpoint: the files on disk
		// are already exactly this state.
		return nil
	}
	return d.checkpoint(epoch, g, idx)
}

// checkpoint performs the full file dance shared by Init and Checkpoint
// (see prepare and PendingCheckpoint.Commit, which split it so the
// snapshot write can run without quiescing appends).
func (d *Dir) checkpoint(epoch uint64, g *graph.Graph, idx *access.IndexSet) error {
	p, err := d.prepare(epoch, g.WriteSnapshotJSON, func(w io.Writer) error {
		return idx.WriteJSON(w, d.in)
	})
	if err != nil {
		return err
	}
	return p.Commit()
}

// PendingCheckpoint is a checkpoint between its two phases: the snapshot
// files are durably on disk, but the MANIFEST still names the previous
// checkpoint. Commit finishes the swap (appends must be quiesced by
// then); Discard abandons the snapshot files.
type PendingCheckpoint struct {
	d     *Dir
	m     manifest
	epoch uint64
}

// PrepareCheckpoint writes and fsyncs the snapshot files for the given
// epoch from pre-encoded JSON. It touches only fresh epoch-named files,
// so it may run concurrently with appends to the current log — this is
// the O(|G|) phase the store performs outside its writer lock.
func (d *Dir) PrepareCheckpoint(epoch uint64, graphJSON, indexJSON []byte) (*PendingCheckpoint, error) {
	return d.prepare(epoch, func(w io.Writer) error {
		_, err := w.Write(graphJSON)
		return err
	}, func(w io.Writer) error {
		_, err := w.Write(indexJSON)
		return err
	})
}

// prepare is phase one of the checkpoint dance: write
// snapshot-<epoch>.{graph,index}.json, fsynced.
func (d *Dir) prepare(epoch uint64, writeGraph, writeIndex func(io.Writer) error) (*PendingCheckpoint, error) {
	m := manifest{
		Epoch: epoch,
		Graph: fmt.Sprintf("snapshot-%d.graph.json", epoch),
		Index: fmt.Sprintf("snapshot-%d.index.json", epoch),
		Log:   fmt.Sprintf("wal-%d.log", epoch),
	}
	if err := writeFileSync(filepath.Join(d.path, m.Graph), writeGraph); err != nil {
		return nil, err
	}
	if err := writeFileSync(filepath.Join(d.path, m.Index), writeIndex); err != nil {
		return nil, err
	}
	if d.hookAfterSnapshot != nil {
		d.hookAfterSnapshot()
	}
	return &PendingCheckpoint{d: d, m: m, epoch: epoch}, nil
}

// Epoch returns the epoch the pending checkpoint was prepared at.
func (p *PendingCheckpoint) Epoch() uint64 { return p.epoch }

// Discard abandons a prepared checkpoint (the published epoch moved on
// before the caller could commit it). The orphaned snapshot files are
// removed best-effort; removeStale would collect them later anyway.
func (p *PendingCheckpoint) Discard() {
	d := p.d
	cur := d.manifestSnapshot()
	if p.m.Graph != cur.Graph {
		_ = os.Remove(filepath.Join(d.path, p.m.Graph))
	}
	if p.m.Index != cur.Index {
		_ = os.Remove(filepath.Join(d.path, p.m.Index))
	}
}

// Commit is phase two of the checkpoint dance:
//
//  2. create wal-<epoch>.log (empty, fsynced header)
//  3. write MANIFEST.tmp, fsync, rename over MANIFEST, fsync the dir
//  4. best-effort remove files the new MANIFEST does not reference
//
// No record may be appended concurrently (the store holds its writer
// lock across Commit). A crash before step 3's rename leaves the old
// MANIFEST pointing at the old snapshot and the old log — which still
// holds every record since the old checkpoint, because rotation happens
// strictly before the swap and appends are quiesced throughout. A crash
// after the rename leaves the new snapshot with an empty log. Both
// recover to the same state.
func (p *PendingCheckpoint) Commit() error {
	d := p.d
	m := p.m
	old := d.log.Load()
	// A stale wal-<epoch>.log can exist if a previous checkpoint at this
	// epoch crashed between log creation and the manifest swap; it is
	// empty (appends are quiesced during checkpoints) and safe to replace.
	_ = os.Remove(filepath.Join(d.path, m.Log))
	createLog := Create
	if d.enveloped {
		createLog = CreateEnveloped
	}
	nl, err := createLog(filepath.Join(d.path, m.Log), d.in, p.epoch)
	if err != nil {
		return err
	}
	if d.hookAfterLogCreate != nil {
		d.hookAfterLogCreate()
	}
	// Make the snapshot and fresh-log directory entries durable BEFORE the
	// manifest can name them: a filesystem that reorders metadata could
	// otherwise persist the MANIFEST rename but not the files it
	// references, leaving recovery unable to start.
	if err := syncDir(d.path); err != nil {
		nl.Close()
		return err
	}
	mb, err := json.Marshal(m)
	if err != nil {
		nl.Close()
		return fmt.Errorf("wal: encode manifest: %w", err)
	}
	// writeFileSync renames a synced temp file over MANIFEST, so the swap
	// is the one atomic commit point of the checkpoint. Every failure up
	// to and including the rename leaves the old manifest governing — the
	// old snapshot and log are intact, so the caller may keep appending to
	// the old log and retry later.
	if err := writeFileSync(filepath.Join(d.path, manifestName), func(w io.Writer) error {
		_, err := w.Write(append(mb, '\n'))
		return err
	}); err != nil {
		nl.Close()
		return err
	}
	err = syncDir(d.path)
	if err == nil && d.hookSyncDirErr != nil {
		err = d.hookSyncDirErr
	}
	if err != nil {
		// The rename happened but is not known durable: a crash could
		// resurrect either manifest, so no log can safely take appends.
		nl.Close()
		return fmt.Errorf("%w: %v", ErrCheckpointAmbiguous, err)
	}
	if d.hookAfterManifest != nil {
		d.hookAfterManifest()
	}
	d.log.Store(nl)
	d.setManifest(m)
	d.removeStale()
	if old != nil {
		// The swap is durable; the old log is unreferenced, so a close
		// error (its records were already synced per batch) changes
		// nothing.
		_ = old.Close()
	}
	return nil
}

// removeStale best-effort deletes snapshot/log files the current
// manifest does not reference. Safe: the manifest referencing the live
// set is already durable.
func (d *Dir) removeStale() {
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return
	}
	m := d.manifestSnapshot()
	keep := map[string]bool{manifestName: true, m.Graph: true, m.Index: true, m.Log: true}
	for _, e := range entries {
		name := e.Name()
		if keep[name] {
			continue
		}
		if strings.HasPrefix(name, "snapshot-") || strings.HasPrefix(name, "wal-") || strings.HasSuffix(name, ".partial") {
			_ = os.Remove(filepath.Join(d.path, name))
		}
	}
}

// writeFileSync writes path via fn to a temp file, fsyncs and renames it
// into place, so a crash never leaves a half-written file under the final
// name.
func writeFileSync(path string, fn func(io.Writer) error) error {
	tmp := path + ".partial"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create %s: %w", filepath.Base(tmp), err)
	}
	err = fn(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: write %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: finalize %s: %w", filepath.Base(path), err)
	}
	return nil
}

// WriteFileAtomic writes data to path via a synced temp file renamed into
// place — the same crash discipline the manifest uses — for callers
// outside this package (the shard router's SHARDMAP).
func WriteFileAtomic(path string, data []byte) error {
	return writeFileSync(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// SyncDir fsyncs a directory so renames within it are durable.
func SyncDir(path string) error { return syncDir(path) }

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(path string) error {
	df, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	err = df.Sync()
	if cerr := df.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
