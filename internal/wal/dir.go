package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"boundedg/internal/access"
	"boundedg/internal/graph"
)

// manifestName is the one file whose atomic rename commits a checkpoint.
const manifestName = "MANIFEST"

// ErrCheckpointAmbiguous is returned by Checkpoint when the directory
// fsync AFTER the manifest rename fails: the swap may or may not survive
// a crash, so neither the old nor the new log can safely take further
// appends (whichever the crash resurrects, the other's post-checkpoint
// records would be lost). The store reacts by wedging — readers keep
// serving, writes are refused until an operator restarts into whichever
// state the disk actually holds.
var ErrCheckpointAmbiguous = errors.New("wal: checkpoint manifest swap not durable; on-disk state ambiguous")

// manifest names the current checkpoint: the epoch it was taken at and
// the files (relative to the directory) holding the snapshot and the log
// of everything after it.
type manifest struct {
	Epoch uint64 `json:"epoch"`
	Graph string `json:"graph"`
	Index string `json:"index"`
	Log   string `json:"log"`
}

// Dir is a WAL directory: checkpoint snapshot files, the current log,
// and the MANIFEST tying them together. One Dir owns the directory for
// the process lifetime; the store serializes all calls except HasState.
type Dir struct {
	path string
	in   *graph.Interner
	log  atomic.Pointer[Log] // swapped at checkpoints; nil until Init/Recover
	m    manifest            // valid once recovered or initialized

	// Crash-injection points for tests: called between the checkpoint
	// file-dance steps so a test can capture the directory exactly as a
	// kill at that instant would leave it.
	hookAfterSnapshot  func() // snapshot files written, new log not yet created
	hookAfterLogCreate func() // new log created, MANIFEST still the old one
	hookAfterManifest  func() // MANIFEST swapped, stale files not yet removed
	hookSyncDirErr     error  // injected post-rename dir-sync failure (ambiguous swap)
}

// HasState reports whether path holds an initialized WAL directory (a
// MANIFEST exists).
func HasState(path string) bool {
	_, err := os.Stat(filepath.Join(path, manifestName))
	return err == nil
}

// OpenDir opens (creating if needed) the WAL directory at path. Labels in
// snapshots and log records resolve through in. Follow with Recover when
// HasState, Init otherwise.
func OpenDir(path string, in *graph.Interner) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	return &Dir{path: path, in: in}, nil
}

// Log returns the current log (nil before Init or Recover). Safe to
// call concurrently with a checkpoint rotating it; the returned Log's
// Stats stay readable even after rotation closes it.
func (d *Dir) Log() *Log { return d.log.Load() }

// LastCheckpointEpoch returns the epoch of the current checkpoint.
func (d *Dir) LastCheckpointEpoch() uint64 { return d.m.Epoch }

// Close closes the current log.
func (d *Dir) Close() error {
	l := d.log.Load()
	if l == nil {
		return nil
	}
	return l.Close()
}

// Init writes the initial checkpoint for a freshly loaded state at the
// given epoch (normally 0) and opens an empty log after it.
func (d *Dir) Init(epoch uint64, g *graph.Graph, idx *access.IndexSet) error {
	if d.log.Load() != nil {
		return errors.New("wal: dir already initialized")
	}
	if HasState(d.path) {
		return fmt.Errorf("wal: %s already holds state; recover instead of initializing", d.path)
	}
	return d.checkpoint(epoch, g, idx)
}

// RecoverInfo reports what Recover reconstructed.
type RecoverInfo struct {
	// CheckpointEpoch is the epoch of the snapshot the tail replayed onto.
	CheckpointEpoch uint64
	// Epoch is the epoch after replay — the store resumes from here.
	Epoch uint64
	// Records is the number of log records replayed.
	Records uint64
	// Truncated is the number of torn/corrupt tail bytes discarded, with
	// TruncateReason saying why (empty when the tail was clean).
	Truncated      int64
	TruncateReason string
}

// Recover loads the MANIFEST's snapshot and replays the log tail onto it
// through access.IndexSet.ApplyDeltaTx, returning the reconstructed
// graph and index set. Every replayed record was accepted (and therefore
// validated) before it was logged, so a replay rejection means the
// snapshot and log disagree and recovery fails loudly rather than guess.
// The log is left truncated past its valid prefix and open for appends.
func (d *Dir) Recover() (*graph.Graph, *access.IndexSet, *RecoverInfo, error) {
	if d.log.Load() != nil {
		return nil, nil, nil, errors.New("wal: dir already recovered")
	}
	mf, err := os.ReadFile(filepath.Join(d.path, manifestName))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("wal: read manifest: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(mf)))
	dec.DisallowUnknownFields()
	var m manifest
	if err := dec.Decode(&m); err != nil {
		return nil, nil, nil, fmt.Errorf("wal: decode manifest: %w", err)
	}
	gf, err := os.Open(filepath.Join(d.path, m.Graph))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("wal: open graph snapshot: %w", err)
	}
	g, err := graph.ReadSnapshotJSON(gf, d.in)
	gf.Close()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("wal: load graph snapshot: %w", err)
	}
	xf, err := os.Open(filepath.Join(d.path, m.Index))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("wal: open index snapshot: %w", err)
	}
	idx, err := access.ReadIndexSet(xf, d.in)
	xf.Close()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("wal: load index snapshot: %w", err)
	}

	info := &RecoverInfo{CheckpointEpoch: m.Epoch, Epoch: m.Epoch}
	l, oi, err := Open(filepath.Join(d.path, m.Log), d.in, func(epoch uint64, delta *graph.Delta) error {
		if _, err := idx.ApplyDeltaTx(g, delta); err != nil {
			return err
		}
		info.Epoch = epoch
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if l.BaseEpoch() != m.Epoch {
		l.Close()
		return nil, nil, nil, fmt.Errorf("wal: log base epoch %d does not match checkpoint epoch %d", l.BaseEpoch(), m.Epoch)
	}
	info.Records = oi.Records
	info.Truncated = oi.Truncated
	info.TruncateReason = oi.TruncateReason
	d.log.Store(l)
	d.m = m
	d.removeStale()
	return g, idx, info, nil
}

// Checkpoint rewrites the snapshot at the given epoch and rotates the
// log. g and idx must be the published state of exactly that epoch, and
// no record may be appended concurrently (the store holds its writer
// lock). On success the previous log and snapshot files are gone and the
// current log is empty, based at epoch.
func (d *Dir) Checkpoint(epoch uint64, g *graph.Graph, idx *access.IndexSet) error {
	old := d.log.Load()
	if old == nil {
		return errors.New("wal: dir not initialized")
	}
	if epoch == d.m.Epoch {
		// Nothing committed since the last checkpoint: the files on disk
		// are already exactly this state.
		return nil
	}
	if err := d.checkpoint(epoch, g, idx); err != nil {
		return err
	}
	// The swap is durable; the old log is unreferenced, so a close error
	// (its records were already synced per batch) changes nothing.
	_ = old.Close()
	return nil
}

// checkpoint performs the file dance shared by Init and Checkpoint:
//
//  1. write snapshot-<epoch>.{graph,index}.json, fsynced
//  2. create wal-<epoch>.log (empty, fsynced header)
//  3. write MANIFEST.tmp, fsync, rename over MANIFEST, fsync the dir
//  4. best-effort remove files the new MANIFEST does not reference
//
// A crash before step 3's rename leaves the old MANIFEST pointing at the
// old snapshot and the old log — which still holds every record since the
// old checkpoint, because rotation happens strictly before the swap and
// appends are quiesced throughout. A crash after the rename leaves the
// new snapshot with an empty log. Both recover to the same state.
func (d *Dir) checkpoint(epoch uint64, g *graph.Graph, idx *access.IndexSet) error {
	m := manifest{
		Epoch: epoch,
		Graph: fmt.Sprintf("snapshot-%d.graph.json", epoch),
		Index: fmt.Sprintf("snapshot-%d.index.json", epoch),
		Log:   fmt.Sprintf("wal-%d.log", epoch),
	}
	if err := writeFileSync(filepath.Join(d.path, m.Graph), g.WriteSnapshotJSON); err != nil {
		return err
	}
	if err := writeFileSync(filepath.Join(d.path, m.Index), func(w io.Writer) error {
		return idx.WriteJSON(w, d.in)
	}); err != nil {
		return err
	}
	if d.hookAfterSnapshot != nil {
		d.hookAfterSnapshot()
	}
	// A stale wal-<epoch>.log can exist if a previous checkpoint at this
	// epoch crashed between log creation and the manifest swap; it is
	// empty (appends are quiesced during checkpoints) and safe to replace.
	_ = os.Remove(filepath.Join(d.path, m.Log))
	nl, err := Create(filepath.Join(d.path, m.Log), d.in, epoch)
	if err != nil {
		return err
	}
	if d.hookAfterLogCreate != nil {
		d.hookAfterLogCreate()
	}
	// Make the snapshot and fresh-log directory entries durable BEFORE the
	// manifest can name them: a filesystem that reorders metadata could
	// otherwise persist the MANIFEST rename but not the files it
	// references, leaving recovery unable to start.
	if err := syncDir(d.path); err != nil {
		nl.Close()
		return err
	}
	mb, err := json.Marshal(m)
	if err != nil {
		nl.Close()
		return fmt.Errorf("wal: encode manifest: %w", err)
	}
	// writeFileSync renames a synced temp file over MANIFEST, so the swap
	// is the one atomic commit point of the checkpoint. Every failure up
	// to and including the rename leaves the old manifest governing — the
	// old snapshot and log are intact, so the caller may keep appending to
	// the old log and retry later.
	if err := writeFileSync(filepath.Join(d.path, manifestName), func(w io.Writer) error {
		_, err := w.Write(append(mb, '\n'))
		return err
	}); err != nil {
		nl.Close()
		return err
	}
	err = syncDir(d.path)
	if err == nil && d.hookSyncDirErr != nil {
		err = d.hookSyncDirErr
	}
	if err != nil {
		// The rename happened but is not known durable: a crash could
		// resurrect either manifest, so no log can safely take appends.
		nl.Close()
		return fmt.Errorf("%w: %v", ErrCheckpointAmbiguous, err)
	}
	if d.hookAfterManifest != nil {
		d.hookAfterManifest()
	}
	d.log.Store(nl)
	d.m = m
	d.removeStale()
	return nil
}

// removeStale best-effort deletes snapshot/log files the current
// manifest does not reference. Safe: the manifest referencing the live
// set is already durable.
func (d *Dir) removeStale() {
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return
	}
	keep := map[string]bool{manifestName: true, d.m.Graph: true, d.m.Index: true, d.m.Log: true}
	for _, e := range entries {
		name := e.Name()
		if keep[name] {
			continue
		}
		if strings.HasPrefix(name, "snapshot-") || strings.HasPrefix(name, "wal-") || strings.HasSuffix(name, ".partial") {
			_ = os.Remove(filepath.Join(d.path, name))
		}
	}
}

// writeFileSync writes path via fn to a temp file, fsyncs and renames it
// into place, so a crash never leaves a half-written file under the final
// name.
func writeFileSync(path string, fn func(io.Writer) error) error {
	tmp := path + ".partial"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create %s: %w", filepath.Base(tmp), err)
	}
	err = fn(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: write %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: finalize %s: %w", filepath.Base(path), err)
	}
	return nil
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(path string) error {
	df, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	err = df.Sync()
	if cerr := df.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
