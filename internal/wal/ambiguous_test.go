package wal

import (
	"errors"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/workload"
)

// TestCheckpointAmbiguousSyncDir: a directory-fsync failure AFTER the
// manifest rename must surface as ErrCheckpointAmbiguous (the store
// wedges on it) and must not adopt the new manifest in memory — the
// on-disk outcome of a crash is unknowable, so the Dir must not pretend
// either state is current.
func TestCheckpointAmbiguousSyncDir(t *testing.T) {
	ds := workload.IMDb(0.02, 3)
	idx, viols := access.Build(ds.G, ds.Schema)
	if viols != nil {
		t.Fatal(viols[0])
	}
	dir := t.TempDir()
	d, err := OpenDir(dir, ds.In)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Init(0, ds.G, idx); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Log().Append(1, &graph.Delta{AddNodes: []graph.NodeSpec{{Label: ds.In.Intern("movie")}}}); err != nil {
		t.Fatal(err)
	}

	d.hookSyncDirErr = errors.New("injected dir-sync failure")
	err = d.Checkpoint(1, ds.G, idx)
	if !errors.Is(err, ErrCheckpointAmbiguous) {
		t.Fatalf("checkpoint with failed post-rename dir sync: %v, want ErrCheckpointAmbiguous", err)
	}
	if d.LastCheckpointEpoch() != 0 {
		t.Fatalf("ambiguous checkpoint adopted epoch %d in memory, want 0", d.LastCheckpointEpoch())
	}
	if got := d.Log().BaseEpoch(); got != 0 {
		t.Fatalf("ambiguous checkpoint rotated the in-memory log to base %d, want 0", got)
	}
}
