package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// This file is the replication side of the log: the published-offset
// tracking a tailing reader synchronizes on, and the chunk codec the
// primary's /wal/stream endpoint and the follower's replica client share.
//
// # Offsets
//
// A log has two offsets. The append offset (Stats().Offset) advances as
// the group-commit leader appends, BEFORE the batch's fsync and epoch
// publication — records past it can still be rewound if the batch fails.
// The published offset trails it: the store advances it (PublishTo) only
// after the batch's epoch is visible to readers, so everything at or
// below the published offset is immutable history that will never be
// rewound. A replication stream serves exactly the published prefix;
// because publication happens per batch and one batch is one epoch, the
// published offset always lands on an epoch boundary.
//
// # Chunks
//
// The stream is framed in chunks, one chunk per published epoch: every
// record of that epoch's batch, verbatim (the record frames, CRCs
// included), prefixed by a fixed header carrying the epoch, the log
// offset the chunk ends at (the follower's resume cursor) and the
// primary's published epoch at send time (for lag accounting). A
// follower applies a chunk atomically — all of the epoch's deltas, then
// one publication — so it can never serve an epoch it holds only part
// of, and a connection cut mid-chunk loses nothing: the follower resumes
// from the last chunk's end offset and the record CRCs re-validate the
// retransmission.

// chunkHeaderSize is the fixed prefix of a stream chunk: frame-byte
// count, epoch, end offset, primary epoch, and a CRC32-Castagnoli over
// those 28 bytes.
const chunkHeaderSize = 4 + 8 + 8 + 8 + 4

// maxChunkBytes sanity-bounds one chunk's frame bytes on the read side (a
// chunk holds one group commit's records; far below this in practice).
const maxChunkBytes = 1 << 30

// Chunk is one stream unit: all records of exactly one published epoch.
type Chunk struct {
	// Epoch is the epoch every record in Frames committed in.
	Epoch uint64
	// EndOffset is the log offset of the byte after the chunk's last
	// record — the cursor a follower resumes from after applying it.
	EndOffset int64
	// PrimaryEpoch is the primary's published epoch when the chunk was
	// sent; EndEpoch lag = PrimaryEpoch - Epoch.
	PrimaryEpoch uint64
	// Frames holds the epoch's record frames verbatim (length, CRC,
	// epoch, payload per record).
	Frames []byte
}

// WriteChunk writes one chunk to w in the wire framing.
func WriteChunk(w io.Writer, c Chunk) error {
	hdr := make([]byte, 0, chunkHeaderSize)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(c.Frames)))
	hdr = binary.LittleEndian.AppendUint64(hdr, c.Epoch)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(c.EndOffset))
	hdr = binary.LittleEndian.AppendUint64(hdr, c.PrimaryEpoch)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(hdr, crcTable))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(c.Frames)
	return err
}

// ReadChunk reads the next chunk from r. A clean end of stream (EOF at a
// chunk boundary) returns io.EOF; a cut mid-chunk returns
// io.ErrUnexpectedEOF — the follower treats both as a reconnect signal,
// never applying the partial chunk (the torn-tail rule of the log,
// applied to the wire).
func ReadChunk(r io.Reader) (Chunk, error) {
	hdr := make([]byte, chunkHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF {
			return Chunk{}, io.EOF
		}
		return Chunk{}, io.ErrUnexpectedEOF
	}
	if crc32.Checksum(hdr[:chunkHeaderSize-4], crcTable) != binary.LittleEndian.Uint32(hdr[chunkHeaderSize-4:]) {
		return Chunk{}, fmt.Errorf("wal: stream chunk header CRC mismatch")
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > maxChunkBytes {
		return Chunk{}, fmt.Errorf("wal: stream chunk of %d bytes implausible", n)
	}
	c := Chunk{
		Epoch:        binary.LittleEndian.Uint64(hdr[4:]),
		EndOffset:    int64(binary.LittleEndian.Uint64(hdr[12:])),
		PrimaryEpoch: binary.LittleEndian.Uint64(hdr[20:]),
		Frames:       make([]byte, n),
	}
	if _, err := io.ReadFull(r, c.Frames); err != nil {
		return Chunk{}, io.ErrUnexpectedEOF
	}
	return c, nil
}

// StreamRecord is one record parsed out of a chunk's frames.
type StreamRecord struct {
	Epoch   uint64
	Payload []byte
}

// ParseFrames parses a byte run of record frames starting at a record
// boundary, validating each frame's shape and CRC. Unlike Open's scan,
// the input is supposed to be fully committed bytes, so any torn or
// corrupt frame is an error rather than a truncation point. The returned
// payloads alias buf.
func ParseFrames(buf []byte) ([]StreamRecord, error) {
	var recs []StreamRecord
	pos := 0
	for pos < len(buf) {
		if len(buf)-pos < frameSize {
			return nil, fmt.Errorf("wal: stream frame torn at byte %d of %d", pos, len(buf))
		}
		length := binary.LittleEndian.Uint32(buf[pos:])
		crc := binary.LittleEndian.Uint32(buf[pos+4:])
		epoch := binary.LittleEndian.Uint64(buf[pos+8:])
		if length > maxRecordBytes {
			return nil, fmt.Errorf("wal: stream record length %d implausible", length)
		}
		if len(buf)-pos < frameSize+int(length) {
			return nil, fmt.Errorf("wal: stream record payload torn at byte %d of %d", pos, len(buf))
		}
		payload := buf[pos+frameSize : pos+frameSize+int(length)]
		sum := crc32.Checksum(buf[pos+8:pos+frameSize], crcTable)
		sum = crc32.Update(sum, crcTable, payload)
		if sum != crc {
			return nil, fmt.Errorf("wal: stream record CRC mismatch at byte %d", pos)
		}
		recs = append(recs, StreamRecord{Epoch: epoch, Payload: payload})
		pos += frameSize + int(length)
	}
	return recs, nil
}

// HeaderSize returns the byte size of a log file's header — the smallest
// valid stream offset (offset 0 points at the magic, not a record).
func HeaderSize() int64 { return int64(headerSize) }

// Path returns the log's file path, for a streaming reader that opens
// its own descriptor (the appender's descriptor and seek position are
// not shared).
func (l *Log) Path() string { return l.path }

// Published returns the offset through the last published epoch — the
// immutable prefix a replication stream may serve.
func (l *Log) Published() int64 { return l.published.Load() }

// Retired reports whether the log was closed or rotated away; tails end
// there and followers re-anchor against the successor log.
func (l *Log) Retired() bool { return l.retired.Load() }

// PublishTo marks the log's prefix through off as published. The store
// calls it under its writer lock right after the epoch's snapshot
// becomes visible; offsets only ever grow. Tailing readers are woken.
func (l *Log) PublishTo(off int64) {
	if off <= l.published.Load() {
		return
	}
	l.published.Store(off)
	l.wake()
}

// wake broadcasts to every waiter by closing and replacing the notify
// channel.
func (l *Log) wake() {
	l.notifyMu.Lock()
	ch := l.notify
	l.notify = make(chan struct{})
	l.notifyMu.Unlock()
	close(ch)
}

func (l *Log) waitCh() <-chan struct{} {
	l.notifyMu.Lock()
	defer l.notifyMu.Unlock()
	return l.notify
}

// ErrBadStreamOffset is returned by NewTailer for an offset outside the
// published prefix — below the file header or past what the log has
// published (a follower that somehow got ahead, e.g. of a primary that
// recovered without its un-fsynced tail).
var ErrBadStreamOffset = fmt.Errorf("wal: stream offset outside the published prefix")

// Tailer reads published epochs of a log from a byte offset, on its own
// file descriptor (the appender's descriptor and seek position are not
// shared, and the open descriptor keeps the file readable even after a
// rotation unlinks it). One goroutine per Tailer.
type Tailer struct {
	l   *Log
	f   *os.File
	br  *bufio.Reader
	off int64 // offset of the next unread byte; always an epoch boundary
	pub int64 // published offset as last observed
}

// NewTailer opens a tail of l starting at byte offset from, which must
// lie inside the published prefix (HeaderSize() ≤ from ≤ Published())
// and fall on a record boundary — followers only ever pass offsets the
// stream itself handed out, plus the two anchors HeaderSize() and a
// checkpoint's fresh log.
func (l *Log) NewTailer(from int64) (*Tailer, error) {
	if from < int64(headerSize) || from > l.Published() {
		return nil, fmt.Errorf("%w: %d not in [%d, %d]", ErrBadStreamOffset, from, headerSize, l.Published())
	}
	f, err := os.Open(l.path)
	if err != nil {
		return nil, fmt.Errorf("wal: open log for tailing: %w", err)
	}
	if _, err := f.Seek(from, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek log for tailing: %w", err)
	}
	return &Tailer{l: l, f: f, br: bufio.NewReaderSize(f, 256<<10), off: from, pub: l.Published()}, nil
}

// Close releases the tailer's file descriptor.
func (t *Tailer) Close() error { return t.f.Close() }

// Offset returns the tail cursor: the log offset of the next byte the
// tailer would serve.
func (t *Tailer) Offset() int64 { return t.off }

// Next blocks until at least one complete epoch is published past the
// cursor and returns it as a chunk (PrimaryEpoch left zero for the
// caller to stamp). It returns io.EOF once the log has retired and the
// cursor has drained everything it published — the follower's signal to
// re-anchor against the successor log — and a plain error if done closes
// first or the file bytes fail validation.
func (t *Tailer) Next(done <-chan struct{}) (Chunk, error) {
	if t.off >= t.pub {
		pub, retired := t.l.WaitPublished(done, t.off)
		if pub <= t.off {
			if retired {
				return Chunk{}, io.EOF
			}
			return Chunk{}, fmt.Errorf("wal: tail canceled")
		}
		t.pub = pub
	}
	var frames []byte
	var epoch uint64
	for t.off < t.pub {
		hdr, err := t.br.Peek(frameSize)
		if err != nil {
			return Chunk{}, fmt.Errorf("wal: tail read at offset %d: %w", t.off, err)
		}
		length := binary.LittleEndian.Uint32(hdr)
		e := binary.LittleEndian.Uint64(hdr[8:])
		if frames != nil && e != epoch {
			break // next epoch starts; emit what we have
		}
		epoch = e
		if length > maxRecordBytes {
			return Chunk{}, fmt.Errorf("wal: tail record length %d at offset %d implausible", length, t.off)
		}
		rec := make([]byte, frameSize+int(length))
		if _, err := io.ReadFull(t.br, rec); err != nil {
			return Chunk{}, fmt.Errorf("wal: tail read at offset %d: %w", t.off, err)
		}
		sum := crc32.Checksum(rec[8:frameSize], crcTable)
		sum = crc32.Update(sum, crcTable, rec[frameSize:])
		if sum != binary.LittleEndian.Uint32(rec[4:]) {
			return Chunk{}, fmt.Errorf("wal: tail record CRC mismatch at offset %d", t.off)
		}
		frames = append(frames, rec...)
		t.off += int64(len(rec))
	}
	return Chunk{Epoch: epoch, EndOffset: t.off, Frames: frames}, nil
}

// WaitPublished blocks until the published offset exceeds from, the log
// retires, or done is closed, and returns the published offset and the
// retired flag as last observed. The channel is fetched before the
// condition check, so a publish racing the wait can never be missed.
func (l *Log) WaitPublished(done <-chan struct{}, from int64) (published int64, retired bool) {
	for {
		ch := l.waitCh()
		pub, ret := l.published.Load(), l.retired.Load()
		if pub > from || ret {
			return pub, ret
		}
		select {
		case <-ch:
		case <-done:
			return l.published.Load(), l.retired.Load()
		}
	}
}
