// Package wal is the durability subsystem of the serving path: an
// append-only write-ahead log of accepted graph.Delta batches plus the
// checkpoint machinery that bounds its length. A mutable daemon threads
// every accepted update through Log.Append *before* publishing the epoch
// (internal/store), so a crash after the append loses nothing: restart
// recovery (Dir.Recover) loads the last checkpoint snapshot and replays
// the log tail, reconstructing graph and indexes byte-identical to an
// uninterrupted run.
//
// # Record format
//
// A log file opens with a 20-byte header — an 8-byte magic ("bgwal001"),
// the base epoch as a little-endian uint64, and a CRC32-Castagnoli of the
// base epoch — followed by records. Each record is framed as
//
//	length  uint32 (LE)   payload byte count
//	crc     uint32 (LE)   CRC32-Castagnoli over epoch bytes + payload
//	epoch   uint64 (LE)   the epoch the delta committed in
//	payload []byte        the delta in the strict graph.Delta JSON codec
//
// The base epoch names the checkpoint the log starts after: every record
// carries an epoch greater than the base, non-decreasing along the file
// (records of one group-committed batch share an epoch). Recovery invari-
// ants: a record is replayed only if its full frame is present, its CRC
// matches, its payload decodes, and its epoch is ordered — the first
// record failing any of these marks the end of the valid prefix, and Open
// truncates the file there (a torn or corrupt tail is never replayed,
// and the log is immediately appendable again).
//
// # Checkpoints
//
// Dir manages a WAL directory: a MANIFEST naming the current snapshot
// (graph + index set, ID-preserving codecs) and its log. Checkpoint
// rewrites the snapshot at the published epoch, starts a fresh log based
// at that epoch, and only then swaps the MANIFEST via atomic rename — a
// crash at any point leaves either the old manifest (old snapshot + old
// log, still complete) or the new one (new snapshot + empty log), never
// a half state. Stale files are removed only after the swap is durable.
package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"boundedg/internal/graph"
)

// Framing constants.
const (
	magic      = "bgwal001"
	magicEnv   = "bgwal002"         // sharded logs: payloads are Envelopes, not bare deltas
	headerSize = len(magic) + 8 + 4 // magic + base epoch + CRC of base
	frameSize  = 4 + 4 + 8          // length + crc + epoch

	// maxRecordBytes bounds a single record's payload; a length field
	// beyond it marks the tail corrupt rather than provoking a huge
	// allocation. Matches the server's update-body cap with headroom.
	maxRecordBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Append and Sync after Close.
var ErrClosed = errors.New("wal: log closed")

// Log is one append-only delta log file. Creates with Create, reopen
// (replaying and truncating) with Open. Methods are not safe for
// concurrent use — the store serializes writers; Stats alone may be
// called concurrently.
type Log struct {
	f    *os.File
	in   *graph.Interner
	base uint64
	path string

	off     atomic.Int64 // end offset = durable size of the valid prefix
	records atomic.Uint64
	syncs   atomic.Uint64

	// Replication-stream state (see stream.go): published is the offset
	// through the last published epoch — the prefix a tailing reader may
	// serve (appends past it may still be rewound); retired flips when
	// the log is closed or rotated away, ending every tail; notify is the
	// broadcast channel tailers wait on (closed and replaced on every
	// publish/retire).
	published atomic.Int64
	retired   atomic.Bool
	notifyMu  sync.Mutex
	notify    chan struct{}

	closed bool
}

// LogStats is a point-in-time view of a log's counters.
type LogStats struct {
	// Offset is the byte size of the valid log prefix (the committed log
	// offset reported to update clients).
	Offset int64
	// Records counts records appended or replayed through this Log.
	Records uint64
	// Syncs counts Sync calls that reached the file system.
	Syncs uint64
	// BaseEpoch is the checkpoint epoch the log starts after.
	BaseEpoch uint64
}

// Create creates a fresh log at path, based at the given checkpoint
// epoch. The header is written and synced before Create returns.
func Create(path string, in *graph.Interner, base uint64) (*Log, error) {
	return create(path, in, base, magic)
}

// CreateEnveloped is Create for a sharded log: the distinct magic keeps a
// plain Recover from silently misreading envelope payloads as deltas.
func CreateEnveloped(path string, in *graph.Interner, base uint64) (*Log, error) {
	return create(path, in, base, magicEnv)
}

func create(path string, in *graph.Interner, base uint64, mg string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create log: %w", err)
	}
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, mg...)
	hdr = binary.LittleEndian.AppendUint64(hdr, base)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(hdr[len(magic):], crcTable))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: write log header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: sync log header: %w", err)
	}
	l := &Log{f: f, in: in, base: base, path: path, notify: make(chan struct{})}
	l.off.Store(int64(headerSize))
	l.published.Store(int64(headerSize))
	return l, nil
}

// OpenInfo reports what Open found: how many records were replayed and
// whether (and why) a torn or corrupt tail was truncated.
type OpenInfo struct {
	Records        uint64
	Truncated      int64  // bytes dropped from the tail; 0 = clean
	TruncateReason string // empty when Truncated == 0
}

// Open opens an existing log, calling replay for every intact record in
// order and truncating the file after the last one. A record with a short
// frame, mismatched CRC, undecodable payload or out-of-order epoch marks
// the end of the valid prefix; everything from there on is discarded (see
// the package comment for the invariants). A replay error aborts Open —
// it means the snapshot and log disagree, which truncation must not
// paper over. replay may be nil to open without replaying (the records
// are still validated to find the true end).
func Open(path string, in *graph.Interner, replay func(epoch uint64, d *graph.Delta) error) (*Log, OpenInfo, error) {
	return openLog(path, in, magic, -1, func(epoch uint64, payload []byte) (string, error) {
		d, err := graph.ReadDeltaJSON(bytes.NewReader(payload), in)
		if err != nil {
			return fmt.Sprintf("record payload does not decode: %v", err), nil
		}
		// Every logged record was accepted before it was appended, so any
		// staged labels commit to the interner unconditionally here.
		commit, _, err := d.ResolveLabels(in)
		if err != nil {
			return fmt.Sprintf("record payload does not decode: %v", err), nil
		}
		commit()
		if replay != nil {
			return "", replay(epoch, d)
		}
		return "", nil
	})
}

// openLog is the scan loop shared by Open and OpenEnvelopes: it walks the
// record frames, validates CRC and epoch ordering, hands each payload to
// handle, and truncates the file after the last valid record. handle
// returns a non-empty reason to end the valid prefix at this record (torn
// or undecodable payload), or an error to abort the open (replay failed).
// If limit >= 0, the valid prefix additionally ends at the first record
// starting at or beyond that byte offset — the cross-shard reconciliation
// cut.
func openLog(path string, in *graph.Interner, mg string, limit int64, handle func(epoch uint64, payload []byte) (string, error)) (*Log, OpenInfo, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, OpenInfo{}, fmt.Errorf("wal: open log: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, OpenInfo{}, fmt.Errorf("wal: size log: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, OpenInfo{}, fmt.Errorf("wal: rewind log: %w", err)
	}
	// Stream record by record: replay memory is one record (≤
	// maxRecordBytes), not the whole file, so recovery of a long log
	// (slow checkpoints under sustained writes) stays bounded.
	br := bufio.NewReader(f)
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(br, hdr); err != nil || string(hdr[:len(magic)]) != mg {
		f.Close()
		return nil, OpenInfo{}, fmt.Errorf("wal: %s is not a log file (bad header)", path)
	}
	base := binary.LittleEndian.Uint64(hdr[len(magic):])
	if crc32.Checksum(hdr[len(magic):len(magic)+8], crcTable) != binary.LittleEndian.Uint32(hdr[len(magic)+8:]) {
		f.Close()
		return nil, OpenInfo{}, fmt.Errorf("wal: %s has a corrupt header", path)
	}

	l := &Log{f: f, in: in, base: base, path: path, notify: make(chan struct{})}
	info := OpenInfo{}
	pos := int64(headerSize)
	prevEpoch := base
	frame := make([]byte, frameSize)
	var payload []byte
	for pos < size {
		if limit >= 0 && pos >= limit {
			info.TruncateReason = "cross-shard reconciliation cut"
			break
		}
		if size-pos < int64(frameSize) {
			info.TruncateReason = "torn record header"
			break
		}
		if _, err := io.ReadFull(br, frame); err != nil {
			f.Close()
			return nil, info, fmt.Errorf("wal: read record frame: %w", err)
		}
		length := binary.LittleEndian.Uint32(frame)
		crc := binary.LittleEndian.Uint32(frame[4:])
		epoch := binary.LittleEndian.Uint64(frame[8:])
		if length > maxRecordBytes {
			info.TruncateReason = fmt.Sprintf("implausible record length %d", length)
			break
		}
		if size-pos < int64(frameSize)+int64(length) {
			info.TruncateReason = "torn record payload"
			break
		}
		if int(length) > cap(payload) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			f.Close()
			return nil, info, fmt.Errorf("wal: read record payload: %w", err)
		}
		sum := crc32.Checksum(frame[8:], crcTable)
		sum = crc32.Update(sum, crcTable, payload)
		if sum != crc {
			info.TruncateReason = "record CRC mismatch"
			break
		}
		if epoch <= base || epoch < prevEpoch {
			info.TruncateReason = fmt.Sprintf("record epoch %d out of order (base %d, previous %d)", epoch, base, prevEpoch)
			break
		}
		reason, err := handle(epoch, payload)
		if err != nil {
			f.Close()
			return nil, info, fmt.Errorf("wal: replay record %d (epoch %d): %w", info.Records, epoch, err)
		}
		if reason != "" {
			info.TruncateReason = reason
			break
		}
		prevEpoch = epoch
		info.Records++
		pos += int64(frameSize) + int64(length)
	}
	if tail := size - pos; tail > 0 {
		info.Truncated = tail
		if err := f.Truncate(pos); err != nil {
			f.Close()
			return nil, info, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, info, fmt.Errorf("wal: sync after truncate: %w", err)
		}
	}
	if _, err := f.Seek(pos, io.SeekStart); err != nil {
		f.Close()
		return nil, info, fmt.Errorf("wal: seek to log end: %w", err)
	}
	l.off.Store(pos)
	// Every replayed record published before the restart; the whole valid
	// prefix is immediately streamable.
	l.published.Store(pos)
	l.records.Store(info.Records)
	return l, info, nil
}

// Append writes one record for d at the given commit epoch and returns
// the log offset after it — the delta is durable through that offset once
// Sync returns (or immediately, under an OS that writes through). The
// caller must keep epochs non-decreasing and above the base epoch, or the
// record will be treated as corruption at the next Open.
func (l *Log) Append(epoch uint64, d *graph.Delta) (int64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	var payload bytes.Buffer
	if err := d.WriteJSON(&payload, l.in); err != nil {
		return 0, fmt.Errorf("wal: encode delta: %w", err)
	}
	return l.appendPayload(epoch, payload.Bytes())
}

func (l *Log) appendPayload(epoch uint64, payload []byte) (int64, error) {
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("wal: record encodes to %d bytes (max %d)", len(payload), maxRecordBytes)
	}
	rec := make([]byte, 0, frameSize+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, 0) // CRC patched below
	rec = binary.LittleEndian.AppendUint64(rec, epoch)
	rec = append(rec, payload...)
	binary.LittleEndian.PutUint32(rec[4:], crc32.Checksum(rec[8:], crcTable))
	if _, err := l.f.Write(rec); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	off := l.off.Add(int64(len(rec)))
	l.records.Add(1)
	return off, nil
}

// Sync flushes appended records to stable storage (one fsync; group
// commit calls it once per batch, not per record).
func (l *Log) Sync() error {
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.syncs.Add(1)
	return nil
}

// Rewind discards everything appended after the point captured by pre (a
// Stats value taken before the appends) and makes the truncation durable.
// It is the store's wedge-path cleanup: when a group commit fails partway
// through its appends or at the batch fsync, every caller is told the
// batch did not commit, so records already appended for it must not
// survive to be replayed by a later recovery.
func (l *Log) Rewind(pre LogStats) error {
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Truncate(pre.Offset); err != nil {
		return fmt.Errorf("wal: rewind truncate: %w", err)
	}
	if _, err := l.f.Seek(pre.Offset, io.SeekStart); err != nil {
		return fmt.Errorf("wal: rewind seek: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: rewind sync: %w", err)
	}
	l.off.Store(pre.Offset)
	l.records.Store(pre.Records)
	return nil
}

// Close syncs and closes the file. Further Append/Sync calls fail, and
// every tailing reader is woken to observe the retirement (a checkpoint
// rotation closes the old log, ending its streams; the followers then
// reconnect against the new log).
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	l.retired.Store(true)
	l.wake()
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// BaseEpoch returns the checkpoint epoch this log starts after.
func (l *Log) BaseEpoch() uint64 { return l.base }

// Stats returns the log's counters. Safe to call concurrently with an
// appender.
func (l *Log) Stats() LogStats {
	return LogStats{
		Offset:    l.off.Load(),
		Records:   l.records.Load(),
		Syncs:     l.syncs.Load(),
		BaseEpoch: l.base,
	}
}
