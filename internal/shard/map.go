// Package shard partitions the versioned store: a Router owns N
// store.Store instances behind a deterministic node-ID→shard map, splits
// every update delta into per-shard sub-deltas with an all-or-nothing
// cross-shard verdict, logs each shard's sub-deltas to that shard's own
// WAL, and publishes a version vector queries pin as one consistent cut.
// Sharded serving is bit-identical to the unsharded store: the shard
// graphs row-partition the global graph (plus remote-endpoint stubs),
// the shard indexes row-partition the global indexes, and scatter/gather
// merges per-shard lookups back into the exact global answer.
package shard

import (
	"fmt"

	"boundedg/internal/graph"
)

// MaxShards bounds the shard count; the partitioner tracks shard
// memberships in a uint64 bitmask.
const MaxShards = 64

// Map is the deterministic node-ID→shard partition. It is pure state —
// the shard count — plus a fixed stable hash, so any process that knows
// the count routes every node identically, forever; it is serialized into
// checkpoints (the SHARDMAP file) to pin that contract.
type Map struct {
	Shards int
}

// NewMap validates the shard count.
func NewMap(n int) (Map, error) {
	if n < 1 || n > MaxShards {
		return Map{}, fmt.Errorf("shard: shard count %d out of range [1,%d]", n, MaxShards)
	}
	return Map{Shards: n}, nil
}

// Of returns the shard owning node v. The hash is the splitmix64
// finalizer — stable across runs, platforms and Go versions; changing it
// would orphan every persisted shard layout.
func (m Map) Of(v graph.NodeID) int {
	if m.Shards <= 1 {
		return 0
	}
	z := uint64(v) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(m.Shards))
}

// ownsFn returns shard s's ownership predicate — the store-level
// Frozen-refresh filter: every frozen-adjacency read for a row is served
// by the row's owner, so non-owner replicas skip the per-commit patch.
func (m Map) ownsFn(s int) func(graph.NodeID) bool {
	return func(v graph.NodeID) bool { return m.Of(v) == s }
}
