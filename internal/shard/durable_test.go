package shard

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/store"
	"boundedg/internal/wal"
	"boundedg/internal/workload"
)

// copyTree snapshots a sharded state directory (SHARDMAP plus the
// shard-<i>/ subdirectories) into a fresh temp dir — the "disk image at
// the moment of the crash".
func copyTree(t testing.TB, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(p string, de fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil || rel == "." {
			return err
		}
		target := filepath.Join(dst, rel)
		if de.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// holdsSeq reports whether shard s's log in a state directory holds an
// envelope record for update sequence number seq.
func holdsSeq(t *testing.T, dir string, in *graph.Interner, s int, seq uint64) bool {
	t.Helper()
	d, err := wal.OpenDirEnveloped(shardPath(dir, s), in)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	_, _, _, logPath, err := d.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	_, recs, err := wal.ScanEnvelopes(logPath, in)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Seq == seq {
			return true
		}
	}
	return false
}

// TestRouterCrashTornBatch kills the router between shard A's fsync and
// shard B's in the middle of a cross-shard commit, then proves recovery
// rewinds the torn batch on both sides: the crash image holds the record
// on A but not on B, the reconciliation cut discards it, and the
// recovered router resumes bit-identical to an unsharded reference that
// never saw the torn delta — after which the same delta re-applies
// cleanly on both.
func TestRouterCrashTornBatch(t *testing.T) {
	for _, n := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			d := workload.IMDb(0.12, 7)
			g1 := d.G.Clone()
			idx1 := access.BuildUnchecked(g1, d.Schema)
			ust := store.New(g1, idx1)

			dir := t.TempDir()
			g2 := d.G.Clone()
			idx2 := access.BuildUnchecked(g2, d.Schema)
			r, err := Create(dir, d.In, g2, idx2, n, false)
			if err != nil {
				t.Fatal(err)
			}
			m := r.Map()

			// Warm up both sides with the differential update stream so the
			// crash lands on a non-trivial log, and checkpoint shard 0
			// mid-stream so recovery's reconciliation also exercises the
			// checkpoint-subsumes-records path for the surviving prefix.
			rng := rand.New(rand.NewSource(7))
			accepted := uint64(0)
			for i := 0; i < 40; i++ {
				snap := ust.Acquire()
				delta := randomDelta(rng, snap.G)
				snap.Release()
				_, uerr := ust.Apply(delta.Clone())
				_, serr := r.Apply(delta.Clone())
				if (uerr == nil) != (serr == nil) {
					t.Fatalf("warmup delta %d: unsharded err %v, sharded err %v", i, uerr, serr)
				}
				if uerr == nil {
					accepted++
				}
				if i == 20 {
					if err := r.Store(0).Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			preGSN := r.GSN()
			if e := ust.Epoch(); e != preGSN {
				t.Fatalf("reference epoch %d, router GSN %d after warmup", e, preGSN)
			}

			// Pick a live cross-shard edge; deleting it is a guaranteed-
			// accepted delta with two participant shards.
			var from, to graph.NodeID
			found := false
			snap := ust.Acquire()
			snap.G.Edges(func(a, b graph.NodeID) bool {
				if m.Of(a) != m.Of(b) {
					from, to, found = a, b, true
					return false
				}
				return true
			})
			snap.Release()
			if !found {
				t.Fatal("no cross-shard edge in dataset")
			}
			shardA, shardB := m.Of(from), m.Of(to)
			if shardB < shardA {
				shardA, shardB = shardB, shardA
			}
			tornSeq := accepted + 1

			// Crash between shard A's fsync and shard B's. Participants
			// log concurrently, so the two hooks coordinate: shard B's
			// append blocks until shard A is durable, then B "crashes"
			// before appending anything — the disk image provably holds
			// the record on A and not on B regardless of goroutine
			// scheduling.
			var crashDir string
			aDurable := make(chan struct{})
			r.hookAfterShardLog = func(s int) error {
				if s == shardA {
					close(aDurable)
				}
				return nil
			}
			r.hookBeforeShardLog = func(s int) error {
				if s == shardB {
					<-aDurable
					crashDir = copyTree(t, dir)
					return fmt.Errorf("injected crash between shard fsyncs")
				}
				return nil
			}
			torn := &graph.Delta{DelEdges: [][2]graph.NodeID{{from, to}}}
			if _, err := r.Apply(torn.Clone()); !errors.Is(err, store.ErrWedged) {
				t.Fatalf("torn apply: want wedged error, got %v", err)
			}
			if crashDir == "" {
				t.Fatal("crash hook never fired")
			}

			// The crash image is genuinely torn: shard A durably holds the
			// record, shard B does not.
			inspect := copyTree(t, crashDir)
			if !holdsSeq(t, inspect, d.In, shardA, tornSeq) {
				t.Fatalf("crash image: shard %d should hold seq %d", shardA, tornSeq)
			}
			if holdsSeq(t, inspect, d.In, shardB, tornSeq) {
				t.Fatalf("crash image: shard %d should not hold seq %d", shardB, tornSeq)
			}

			// Recovery must cut the torn batch on both sides and resume at
			// the pre-crash cut.
			r2, info, err := Recover(crashDir, d.In, false)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() {
				r2.Close()
				if err := r2.CloseDirs(); err != nil {
					t.Error(err)
				}
			})
			if info.TornSeqs != 1 {
				t.Fatalf("recovery rewound %d torn sequences, want 1", info.TornSeqs)
			}
			if info.GSN != preGSN {
				t.Fatalf("recovered GSN %d, want pre-crash %d", info.GSN, preGSN)
			}
			if info.Seq != accepted {
				t.Fatalf("recovered seq %d, want %d", info.Seq, accepted)
			}
			usnap := ust.Acquire()
			checkShardedState(t, r2, usnap.G, usnap.Idx, d.In)
			usnap.Release()

			// The half-applied delta left no trace: re-applying it succeeds
			// identically on the recovered router and the reference.
			ures, uerr := ust.Apply(torn.Clone())
			sres, serr := r2.Apply(torn.Clone())
			if uerr != nil || serr != nil {
				t.Fatalf("re-apply after recovery: unsharded err %v, sharded err %v", uerr, serr)
			}
			if ures.Epoch != sres.GSN {
				t.Fatalf("re-apply: epoch %d vs GSN %d", ures.Epoch, sres.GSN)
			}
			if ures.TouchedRows != sres.TouchedRows {
				t.Fatalf("re-apply: touched rows %d vs %d", ures.TouchedRows, sres.TouchedRows)
			}
			usnap = ust.Acquire()
			checkShardedState(t, r2, usnap.G, usnap.Idx, d.In)
			usnap.Release()
		})
	}
}

// TestRouterCrashArbitrarySubset crashes a commit with three or more
// participant shards after an arbitrary strict subset fsynced — here the
// LOWEST participant is the one that never appended, an image the old
// serial shard-order loop could not produce — and proves recovery's
// reconciliation cut discards the torn sequence from every survivor.
func TestRouterCrashArbitrarySubset(t *testing.T) {
	const n = 4
	d := workload.IMDb(0.12, 7)
	g1 := d.G.Clone()
	idx1 := access.BuildUnchecked(g1, d.Schema)
	ust := store.New(g1, idx1)

	dir := t.TempDir()
	g2 := d.G.Clone()
	idx2 := access.BuildUnchecked(g2, d.Schema)
	r, err := Create(dir, d.In, g2, idx2, n, false)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Map()

	rng := rand.New(rand.NewSource(11))
	accepted := uint64(0)
	for i := 0; i < 40; i++ {
		snap := ust.Acquire()
		delta := randomDelta(rng, snap.G)
		snap.Release()
		_, uerr := ust.Apply(delta.Clone())
		_, serr := r.Apply(delta.Clone())
		if (uerr == nil) != (serr == nil) {
			t.Fatalf("warmup delta %d: unsharded err %v, sharded err %v", i, uerr, serr)
		}
		if uerr == nil {
			accepted++
		}
		if i == 20 {
			if err := r.Store(1).Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	preGSN := r.GSN()
	tornSeq := accepted + 1

	// Pick a live node replicated on >= 3 shards (its owner plus the stub
	// holders its cross-shard edges created); deleting it is a guaranteed-
	// accepted delta whose participants are exactly those shards.
	var victim graph.NodeID
	var parts []int
	snap := ust.Acquire()
	for _, v := range snap.G.NodeList() {
		owners := map[int]bool{m.Of(v): true}
		for _, w := range snap.G.Out(v) {
			owners[m.Of(w)] = true
		}
		for _, w := range snap.G.In(v) {
			owners[m.Of(w)] = true
		}
		if len(owners) >= 3 {
			victim = v
			for s := range owners {
				parts = append(parts, s)
			}
			break
		}
	}
	snap.Release()
	if parts == nil {
		t.Fatal("no node replicated on three shards in dataset")
	}
	sort.Ints(parts)
	torn := &graph.Delta{DelNodes: []graph.NodeID{victim}}

	// Pin the participant set before injecting the crash: a wrong guess
	// would deadlock the hook coordination below.
	cut := r.AcquireCut()
	sp, err := splitDelta(torn, m, func(s int) *graph.Graph { return cut.Snaps[s].G }, graph.NodeID(r.Stats().NextID))
	cut.Release()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sp.parts) != fmt.Sprint(parts) {
		t.Fatalf("participants %v, predicted %v", sp.parts, parts)
	}

	// The survivors (every participant but the lowest) append and fsync;
	// the killed shard waits for all of them to be durable, snapshots the
	// disk tree, and "crashes" with nothing appended.
	kill := parts[0]
	survivors := parts[1:]
	var durable sync.WaitGroup
	durable.Add(len(survivors))
	var crashDir string
	r.hookAfterShardLog = func(s int) error {
		if s != kill {
			durable.Done()
		}
		return nil
	}
	r.hookBeforeShardLog = func(s int) error {
		if s == kill {
			durable.Wait()
			crashDir = copyTree(t, dir)
			return fmt.Errorf("injected crash: shard %d lost before its append", s)
		}
		return nil
	}
	if _, err := r.Apply(torn.Clone()); !errors.Is(err, store.ErrWedged) {
		t.Fatalf("torn apply: want wedged error, got %v", err)
	}
	if crashDir == "" {
		t.Fatal("crash hook never fired")
	}

	// The crash image holds the record on every survivor and not on the
	// killed shard.
	inspect := copyTree(t, crashDir)
	for _, s := range survivors {
		if !holdsSeq(t, inspect, d.In, s, tornSeq) {
			t.Fatalf("crash image: surviving shard %d should hold seq %d", s, tornSeq)
		}
	}
	if holdsSeq(t, inspect, d.In, kill, tornSeq) {
		t.Fatalf("crash image: killed shard %d should not hold seq %d", kill, tornSeq)
	}

	// Recovery cuts the torn sequence everywhere and resumes at the
	// pre-crash cut, bit-identical to the reference.
	r2, info, err := Recover(crashDir, d.In, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		r2.Close()
		if err := r2.CloseDirs(); err != nil {
			t.Error(err)
		}
	})
	if info.TornSeqs != 1 {
		t.Fatalf("recovery rewound %d torn sequences, want 1", info.TornSeqs)
	}
	if info.GSN != preGSN {
		t.Fatalf("recovered GSN %d, want pre-crash %d", info.GSN, preGSN)
	}
	if info.Seq != accepted {
		t.Fatalf("recovered seq %d, want %d", info.Seq, accepted)
	}
	usnap := ust.Acquire()
	checkShardedState(t, r2, usnap.G, usnap.Idx, d.In)
	usnap.Release()

	// Re-applying the torn delta succeeds identically on both sides.
	ures, uerr := ust.Apply(torn.Clone())
	sres, serr := r2.Apply(torn.Clone())
	if uerr != nil || serr != nil {
		t.Fatalf("re-apply after recovery: unsharded err %v, sharded err %v", uerr, serr)
	}
	if ures.Epoch != sres.GSN {
		t.Fatalf("re-apply: epoch %d vs GSN %d", ures.Epoch, sres.GSN)
	}
	usnap = ust.Acquire()
	checkShardedState(t, r2, usnap.G, usnap.Idx, d.In)
	usnap.Release()
}
