package shard

import (
	"sort"

	"boundedg/internal/graph"
)

// splitResult is a top-level delta split into per-shard sub-deltas, plus
// the globally simulated outcome the router reports and accounts with.
type splitResult struct {
	subs []*graph.Delta // per shard; nil where the delta does not touch
	// parts lists the shards with a non-nil sub-delta, ascending — the
	// participants of the cross-shard commit.
	parts []int
	// newIDs are the global node IDs assigned to d.AddNodes (valid only
	// if the delta is accepted; a reject returns them to the pool).
	newIDs []graph.NodeID
	// touched is the global TouchedRows figure — len(changed ∪ newIDs)
	// exactly as the unsharded store computes it.
	touched int
	// rows materializes that set (changed ∪ newIDs) for the router's
	// recent-deltas ring; touched == len(rows).
	rows []graph.NodeID
	// labels holds the labels of nodes the delta inserts or deletes —
	// the type-1 entry shifts the ring must report.
	labels []graph.Label
	// nodeDelta/edgeDelta are the delta's net effect on the GLOBAL node
	// and edge counts (each edge counted once, not per replica).
	nodeDelta int
	edgeDelta int
}

// splitDelta validates d against the union of the shard graphs and splits
// it into per-shard sub-deltas. It performs the unsharded apply's full
// structural validation — same op order (AddNodes, AddEdges, DelEdges,
// DelNodes), same sentinel errors, same ErrDupEdge-is-skipped semantics —
// by simulating the delta against the global view the shard graphs
// jointly represent, without mutating anything. The caller stages the
// returned sub-deltas; because validation already passed globally, a
// per-shard staging failure afterwards is a splitter bug and panics.
//
// Each sub-delta carries resolved global node IDs only (AddNodeIDs pins
// the inserted IDs; AddEdges endpoints are rewritten, so no negative refs
// remain). Nodes a shard must newly materialize — inserted nodes on their
// owner, remote endpoints of new cross-shard edges — appear in that
// sub-delta's AddNodes. graphs(s) must be shard s's current (caught-up)
// graph; nextID is the next free global node ID.
func splitDelta(d *graph.Delta, m Map, graphs func(int) *graph.Graph, nextID graph.NodeID) (*splitResult, error) {
	n := m.Shards
	res := &splitResult{
		subs:   make([]*graph.Delta, n),
		newIDs: make([]graph.NodeID, len(d.AddNodes)),
	}
	sub := func(t int) *graph.Delta {
		if res.subs[t] == nil {
			res.subs[t] = &graph.Delta{}
		}
		return res.subs[t]
	}
	// has[t] tracks the nodes this delta materializes on shard t (owner
	// copies and stubs), so each lands in AddNodes at most once.
	has := make([]map[graph.NodeID]bool, n)

	// Simulation state: the delta's effect so far, layered over the shard
	// graphs. liveNew holds nodes this delta inserts (until deleted);
	// added/gone hold edges inserted / removed relative to the graphs;
	// deleted holds pre-existing nodes removed.
	liveNew := make(map[graph.NodeID]graph.NodeSpec)
	added := make(map[[2]graph.NodeID]struct{})
	gone := make(map[[2]graph.NodeID]struct{})
	deleted := make(map[graph.NodeID]struct{})

	ownerContains := func(v graph.NodeID) bool {
		return v >= 0 && graphs(m.Of(v)).Contains(v)
	}
	live := func(v graph.NodeID) bool {
		if _, del := deleted[v]; del {
			return false
		}
		if _, ok := liveNew[v]; ok {
			return true
		}
		return ownerContains(v)
	}
	specOf := func(v graph.NodeID) graph.NodeSpec {
		if sp, ok := liveNew[v]; ok {
			return sp
		}
		og := graphs(m.Of(v))
		return graph.NodeSpec{Label: og.LabelOf(v), Value: og.ValueOf(v)}
	}
	edgeExists := func(u, w graph.NodeID) bool {
		k := [2]graph.NodeID{u, w}
		if _, ok := added[k]; ok {
			return true
		}
		if _, ok := gone[k]; ok {
			return false
		}
		if u < 0 || w < 0 {
			return false
		}
		return graphs(m.Of(u)).HasEdge(u, w)
	}
	materialize := func(t int, v graph.NodeID) {
		if graphs(t).Contains(v) || has[t][v] {
			return
		}
		if has[t] == nil {
			has[t] = make(map[graph.NodeID]bool)
		}
		has[t][v] = true
		sp := specOf(v)
		s := sub(t)
		s.AddNodes = append(s.AddNodes, sp)
		s.AddNodeIDs = append(s.AddNodeIDs, v)
	}
	targets := func(u, w graph.NodeID) [2]int {
		tu, tw := m.Of(u), m.Of(w)
		if tu == tw {
			return [2]int{tu, -1}
		}
		return [2]int{tu, tw}
	}

	// changed: the global ChangedRows set, evaluated against the
	// pre-delta state exactly like graph.Delta.ChangedRows — the owner
	// shard holds the full adjacency of each of its nodes, so neighbor
	// enumeration there is the global one.
	changed := make(map[graph.NodeID]struct{})
	addChanged := func(v graph.NodeID) {
		if ownerContains(v) {
			changed[v] = struct{}{}
		}
	}
	for _, e := range d.AddEdges {
		addChanged(e[0])
		addChanged(e[1])
	}
	for _, e := range d.DelEdges {
		addChanged(e[0])
		addChanged(e[1])
	}
	for _, v := range d.DelNodes {
		if !ownerContains(v) {
			continue
		}
		changed[v] = struct{}{}
		for _, w := range graphs(m.Of(v)).Neighbors(v) {
			changed[w] = struct{}{}
		}
	}

	// AddNodes: assign the next global IDs and materialize each node on
	// its owner shard.
	for k, sp := range d.AddNodes {
		id := nextID + graph.NodeID(k)
		res.newIDs[k] = id
		liveNew[id] = sp
		res.labels = append(res.labels, sp.Label)
		materialize(m.Of(id), id)
	}
	res.nodeDelta = len(d.AddNodes)

	// AddEdges: validate like graph.AddEdge (ErrNoSuchNode on an invalid
	// endpoint, duplicates silently skipped), then fan the edge to both
	// endpoint owners, creating remote-endpoint stubs as needed.
	resolve := func(id graph.NodeID) graph.NodeID {
		if k, ok := graph.IsNewNodeRef(id); ok {
			if k < len(res.newIDs) {
				return res.newIDs[k]
			}
			return graph.InvalidNode
		}
		return id
	}
	for _, e := range d.AddEdges {
		u, w := resolve(e[0]), resolve(e[1])
		if !live(u) || !live(w) {
			return nil, graph.ErrNoSuchNode
		}
		if edgeExists(u, w) {
			continue
		}
		added[[2]graph.NodeID{u, w}] = struct{}{}
		res.edgeDelta++
		for _, t := range targets(u, w) {
			if t < 0 {
				continue
			}
			materialize(t, u)
			materialize(t, w)
			s := sub(t)
			s.AddEdges = append(s.AddEdges, [2]graph.NodeID{u, w})
		}
	}

	// DelEdges: like graph.RemoveEdge these do NOT resolve new-node refs
	// (matching the unsharded apply); a missing edge is ErrNoSuchEdge.
	// Both endpoint owners store the edge, so both get the deletion.
	for _, e := range d.DelEdges {
		u, w := e[0], e[1]
		if !edgeExists(u, w) {
			return nil, graph.ErrNoSuchEdge
		}
		k := [2]graph.NodeID{u, w}
		if _, ok := added[k]; ok {
			delete(added, k)
		} else {
			gone[k] = struct{}{}
		}
		res.edgeDelta--
		for _, t := range targets(u, w) {
			if t < 0 {
				continue
			}
			s := sub(t)
			s.DelEdges = append(s.DelEdges, k)
		}
	}

	// DelNodes: the deletion goes to every shard holding any copy of the
	// node — its owner, stub holders, and shards this delta materialized
	// it on. Incident edges are enumerated (via the owner's full
	// adjacency) to keep the global edge count exact; each shard's
	// RemoveNode tears down its local copies itself.
	for _, v := range d.DelNodes {
		if !live(v) {
			return nil, graph.ErrNoSuchNode
		}
		res.labels = append(res.labels, specOf(v).Label)
		if _, isNew := liveNew[v]; isNew {
			delete(liveNew, v)
		} else {
			og := graphs(m.Of(v))
			for _, w := range og.Out(v) {
				k := [2]graph.NodeID{v, w}
				if _, dead := gone[k]; !dead {
					gone[k] = struct{}{}
					res.edgeDelta--
				}
			}
			for _, w := range og.In(v) {
				k := [2]graph.NodeID{w, v}
				if _, dead := gone[k]; !dead {
					gone[k] = struct{}{}
					res.edgeDelta--
				}
			}
			deleted[v] = struct{}{}
		}
		for k := range added {
			if k[0] == v || k[1] == v {
				delete(added, k)
				res.edgeDelta--
			}
		}
		res.nodeDelta--
		for t := 0; t < n; t++ {
			if graphs(t).Contains(v) || has[t][v] {
				s := sub(t)
				s.DelNodes = append(s.DelNodes, v)
			}
		}
	}

	for t := 0; t < n; t++ {
		if res.subs[t] != nil {
			res.parts = append(res.parts, t)
		}
	}
	sort.Ints(res.parts)
	res.rows = make([]graph.NodeID, 0, len(changed)+len(res.newIDs))
	for v := range changed {
		res.rows = append(res.rows, v)
	}
	res.rows = append(res.rows, res.newIDs...)
	res.touched = len(res.rows)
	return res, nil
}
