package shard

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/store"
	"boundedg/internal/wal"
)

// shardMapName is the file pinning the partition contract at the root of
// a sharded state directory; each shard's WAL lives under shard-<i>/.
const shardMapName = "SHARDMAP"

// shardMapHash names the node-ID hash the layout was built with. A
// recovery finding any other name must refuse: routing even one node
// differently silently corrupts the row partition.
const shardMapHash = "splitmix64"

type shardMapFile struct {
	Version int    `json:"version"`
	Shards  int    `json:"shards"`
	Hash    string `json:"hash"`
}

// HasState reports whether path holds an initialized sharded state
// directory (a SHARDMAP exists).
func HasState(path string) bool {
	_, err := os.Stat(filepath.Join(path, shardMapName))
	return err == nil
}

func shardPath(path string, s int) string {
	return filepath.Join(path, fmt.Sprintf("shard-%d", s))
}

// Create partitions g and idx n ways, initializes one WAL directory per
// shard under path, durably writes the SHARDMAP, and returns the running
// router. The inputs are consumed. The SHARDMAP is written last, so
// HasState only holds once every shard directory is complete.
func Create(path string, in *graph.Interner, g *graph.Graph, idx *access.IndexSet, nshards int, fsync bool) (*Router, error) {
	m, err := NewMap(nshards)
	if err != nil {
		return nil, err
	}
	if HasState(path) {
		return nil, fmt.Errorf("shard: %s already holds sharded state; recover instead of creating", path)
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("shard: create dir: %w", err)
	}
	graphs, idxs := Partition(g, idx, m)
	r := &Router{m: m, stores: make([]*store.Store, nshards), dirs: make([]*wal.Dir, nshards), fsync: fsync, clog: store.NewChangeLog(0)}
	for s := 0; s < nshards; s++ {
		d, err := wal.OpenDirEnveloped(shardPath(path, s), in)
		if err != nil {
			return nil, err
		}
		if err := d.Init(0, graphs[s], idxs[s]); err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		r.dirs[s] = d
		r.stores[s] = store.New(graphs[s], idxs[s],
			store.WithWAL(d, fsync), store.WithRefreshFilter(m.ownsFn(s)),
			store.WithChangeLog(-1))
	}
	mb, err := json.Marshal(shardMapFile{Version: 1, Shards: nshards, Hash: shardMapHash})
	if err != nil {
		return nil, fmt.Errorf("shard: encode shard map: %w", err)
	}
	if err := wal.WriteFileAtomic(filepath.Join(path, shardMapName), append(mb, '\n')); err != nil {
		return nil, err
	}
	if err := wal.SyncDir(path); err != nil {
		return nil, err
	}
	r.nextID.Store(int64(g.Cap()))
	r.nodes.Store(int64(g.NumNodes()))
	r.edges.Store(int64(g.NumEdges()))
	return r, nil
}

// RecoverInfo reports what Recover reconstructed.
type RecoverInfo struct {
	// GSN and Vector are the global sequence number and per-shard epochs
	// the router resumes from.
	GSN    uint64
	Vector []uint64
	// Seq is the last update sequence number that survived.
	Seq uint64
	// Records counts envelope records replayed across all shards.
	Records uint64
	// TornSeqs counts update sequence numbers discarded by the
	// reconciliation cut — cross-shard batches a crash left partially
	// logged, rewound on every shard that held a part.
	TornSeqs int
}

// readShardMap loads and validates the SHARDMAP.
func readShardMap(path string) (Map, error) {
	raw, err := os.ReadFile(filepath.Join(path, shardMapName))
	if err != nil {
		return Map{}, fmt.Errorf("shard: read shard map: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var smf shardMapFile
	if err := dec.Decode(&smf); err != nil {
		return Map{}, fmt.Errorf("shard: decode shard map: %w", err)
	}
	if smf.Version != 1 {
		return Map{}, fmt.Errorf("shard: unsupported shard map version %d", smf.Version)
	}
	if smf.Hash != shardMapHash {
		return Map{}, fmt.Errorf("shard: shard map uses hash %q, this binary routes with %q", smf.Hash, shardMapHash)
	}
	return NewMap(smf.Shards)
}

// Shards reads just the shard count of an existing layout, for the
// serving binary to cross-check against its -shards flag.
func Shards(path string) (int, error) {
	m, err := readShardMap(path)
	if err != nil {
		return 0, err
	}
	return m.Shards, nil
}

// Recover rebuilds a router from a sharded state directory. Each shard's
// snapshot is loaded and its log scanned; the logs are then reconciled:
// an update sequence number is complete only if every participant shard
// either holds its record or checkpointed past the record's epoch
// (a checkpoint subsumes the records it rotated away). The cut is the
// smallest incomplete sequence number — everything at or past it is a
// torn cross-shard batch, durably rewound on every shard — and the
// surviving records replay independently per shard.
func Recover(path string, in *graph.Interner, fsync bool) (*Router, *RecoverInfo, error) {
	m, err := readShardMap(path)
	if err != nil {
		return nil, nil, err
	}
	n := m.Shards
	type shardState struct {
		dir       *wal.Dir
		g         *graph.Graph
		idx       *access.IndexSet
		ckptEpoch uint64
		logPath   string
		recs      []wal.EnvelopeInfo
	}
	states := make([]*shardState, n)
	for s := 0; s < n; s++ {
		d, err := wal.OpenDirEnveloped(shardPath(path, s), in)
		if err != nil {
			return nil, nil, err
		}
		g, idx, ckpt, logPath, err := d.LoadSnapshot()
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", s, err)
		}
		base, recs, err := wal.ScanEnvelopes(logPath, in)
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", s, err)
		}
		if base != ckpt {
			return nil, nil, fmt.Errorf("shard %d: log base epoch %d does not match checkpoint epoch %d", s, base, ckpt)
		}
		states[s] = &shardState{dir: d, g: g, idx: idx, ckptEpoch: ckpt, logPath: logPath, recs: recs}
	}

	// Reconciliation: find the smallest torn sequence number.
	type seqInfo struct {
		epoch  uint64
		shards []int
	}
	seqs := make(map[uint64]seqInfo)
	held := make([]map[uint64]bool, n)
	for s, st := range states {
		held[s] = make(map[uint64]bool, len(st.recs))
		for _, rec := range st.recs {
			held[s][rec.Seq] = true
			if _, ok := seqs[rec.Seq]; !ok {
				seqs[rec.Seq] = seqInfo{epoch: rec.Epoch, shards: rec.Shards}
			}
		}
	}
	cutSeq := uint64(math.MaxUint64)
	for seq, si := range seqs {
		if seq >= cutSeq {
			continue
		}
		for _, t := range si.shards {
			if t < 0 || t >= n {
				return nil, nil, fmt.Errorf("shard: record seq %d names shard %d of %d", seq, t, n)
			}
			// A participant that checkpointed at or past the record's
			// epoch absorbed it into its snapshot and rotated the record
			// away — that counts as present.
			if !held[t][seq] && states[t].ckptEpoch < si.epoch {
				cutSeq = seq
				break
			}
		}
	}

	info := &RecoverInfo{Vector: make([]uint64, n)}
	maxSeq := uint64(0)
	torn := make(map[uint64]bool)
	r := &Router{m: m, stores: make([]*store.Store, n), dirs: make([]*wal.Dir, n), fsync: fsync, clog: store.NewChangeLog(0)}
	var nextID int64
	var nodes, edges int64
	for s, st := range states {
		cut := int64(-1)
		for _, rec := range st.recs {
			if rec.Seq >= cutSeq {
				if cut < 0 {
					cut = rec.Start
				}
				torn[rec.Seq] = true
			}
		}
		// The row-ownership filter must be installed before replay, so a
		// replayed sub-delta maintains exactly the rows this shard owns.
		installRowOwner(st.idx, m, s)
		last := st.ckptEpoch
		l, oi, err := wal.OpenEnvelopes(st.logPath, in, cut, func(epoch uint64, e *wal.Envelope) error {
			if _, err := st.idx.ApplyDeltaTx(st.g, e.Delta); err != nil {
				return err
			}
			last = epoch
			if e.Seq > maxSeq {
				maxSeq = e.Seq
			}
			return nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", s, err)
		}
		if err := st.dir.AdoptLog(l); err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", s, err)
		}
		info.Records += oi.Records
		info.Vector[s] = last
		if last > info.GSN {
			info.GSN = last
		}
		if c := int64(st.g.Cap()); c > nextID {
			nextID = c
		}
		st.g.Nodes(func(v graph.NodeID) bool {
			if m.Of(v) == s {
				nodes++
				edges += int64(len(st.g.Out(v)))
			}
			return true
		})
		r.dirs[s] = st.dir
	}
	// Each shard's snapshot decode built a private schema; plan
	// compilation compares schemas by pointer, so rebind all shards to
	// one.
	schema := states[0].idx.Schema()
	for s := 1; s < n; s++ {
		if err := states[s].idx.RebindSchema(schema); err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", s, err)
		}
	}
	for s, st := range states {
		r.stores[s] = store.New(st.g, st.idx,
			store.WithWAL(st.dir, fsync), store.WithBaseEpoch(info.Vector[s]),
			store.WithRefreshFilter(m.ownsFn(s)), store.WithChangeLog(-1))
	}
	info.Seq = maxSeq
	info.TornSeqs = len(torn)
	r.gsn.Store(info.GSN)
	r.seq.Store(maxSeq)
	r.nextID.Store(nextID)
	r.nodes.Store(nodes)
	r.edges.Store(edges)
	return r, info, nil
}
