package shard

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/store"
	"boundedg/internal/workload"
)

// TestRouterCheckpointContinuesPastWedgedShard checks the partial-failure
// contract of Router.Checkpoint: one shard refusing to rotate (here,
// wedged by a WAL failure) must not stop the other shards' checkpoints —
// every error is gathered into the joined return, named per shard, while
// the healthy shards' recovery bound still tightens.
func TestRouterCheckpointContinuesPastWedgedShard(t *testing.T) {
	const n = 4
	d := workload.IMDb(0.12, 5)
	ref := d.G.Clone()
	ust := store.New(ref, access.BuildUnchecked(ref, d.Schema))
	g := d.G.Clone()
	r, err := Create(t.TempDir(), d.In, g, access.BuildUnchecked(g, d.Schema), n, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		r.Close()
		r.CloseDirs()
	})

	// Drive enough random accepted updates that every shard has epochs
	// past its last checkpoint (deltas are drawn against an unsharded
	// reference clone, the same idiom as the crash tests).
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		snap := ust.Acquire()
		delta := randomDelta(rng, snap.G)
		snap.Release()
		_, uerr := ust.Apply(delta.Clone())
		_, serr := r.Apply(delta.Clone())
		if (uerr == nil) != (serr == nil) {
			t.Fatalf("warmup delta %d: unsharded err %v, sharded err %v", i, uerr, serr)
		}
	}
	for s := 0; s < n; s++ {
		if r.Store(s).Epoch() == 0 {
			t.Fatalf("shard %d saw no commits; widen the warmup", s)
		}
		if got := r.dirs[s].LastCheckpointEpoch(); got != 0 {
			t.Fatalf("shard %d already checkpointed at %d", s, got)
		}
	}

	const wedged = 1
	r.Store(wedged).Wedge()

	err = r.Checkpoint()
	if err == nil {
		t.Fatal("checkpoint with a wedged shard reported success")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("shard %d", wedged)) {
		t.Fatalf("checkpoint error does not name the failing shard: %v", err)
	}
	if !strings.Contains(err.Error(), "refusing to checkpoint") {
		t.Fatalf("checkpoint error does not carry the shard's cause: %v", err)
	}

	for s := 0; s < n; s++ {
		got := r.dirs[s].LastCheckpointEpoch()
		if s == wedged {
			if got != 0 {
				t.Fatalf("wedged shard %d checkpointed to epoch %d", s, got)
			}
			continue
		}
		if want := r.Store(s).Epoch(); got != want {
			t.Fatalf("healthy shard %d checkpoint epoch %d, want %d (its checkpoint must not be held back)", s, got, want)
		}
	}
}
