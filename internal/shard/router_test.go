package shard

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/store"
	"boundedg/internal/workload"
)

// shardSweep returns the shard counts a differential test sweeps.
// BOUNDEDG_SHARDS=N (CI's sharded matrix) restricts the sweep to one
// count so each matrix leg pins a single configuration.
func shardSweep(t *testing.T, def []int) []int {
	t.Helper()
	s := os.Getenv("BOUNDEDG_SHARDS")
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 || n > MaxShards {
		t.Fatalf("bad BOUNDEDG_SHARDS %q", s)
	}
	return []int{n}
}

// randomDelta mirrors the store package's update generator: inserts wired
// to random neighbors, fresh edges, edge deletions, node deletions —
// including deltas the bounds must reject.
func randomDelta(r *rand.Rand, g *graph.Graph) *graph.Delta {
	live := g.NodeList()
	labels := g.Labels()
	d := &graph.Delta{}
	switch r.Intn(4) {
	case 0:
		d.AddNodes = []graph.NodeSpec{{Label: labels[r.Intn(len(labels))]}}
		for k := 0; k < 1+r.Intn(3); k++ {
			other := live[r.Intn(len(live))]
			if r.Intn(2) == 0 {
				d.AddEdges = append(d.AddEdges, [2]graph.NodeID{graph.NewNodeRef(0), other})
			} else {
				d.AddEdges = append(d.AddEdges, [2]graph.NodeID{other, graph.NewNodeRef(0)})
			}
		}
	case 1:
		d.AddEdges = [][2]graph.NodeID{{live[r.Intn(len(live))], live[r.Intn(len(live))]}}
	case 2:
		for tries := 0; tries < 10; tries++ {
			v := live[r.Intn(len(live))]
			if outs := g.Out(v); len(outs) > 0 {
				d.DelEdges = [][2]graph.NodeID{{v, outs[r.Intn(len(outs))]}}
				break
			}
		}
	case 3:
		d.DelNodes = []graph.NodeID{live[r.Intn(len(live))]}
	}
	return d
}

func indexBytes(t testing.TB, set *access.IndexSet, in *graph.Interner) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkShardedState verifies the router's shards jointly represent
// exactly the unsharded store's state: node set, labels, values and edge
// set reconstruct from the owner shards; every edge is mirrored on both
// endpoint owners; and each shard's live index set is byte-identical to
// the corresponding row partition of the unsharded index set.
func checkShardedState(t *testing.T, r *Router, g *graph.Graph, idx *access.IndexSet, in *graph.Interner) {
	t.Helper()
	m := r.Map()
	n := r.NumShards()
	cut := r.AcquireCut()
	defer cut.Release()

	nodes := 0
	for v := graph.NodeID(0); int(v) < g.Cap(); v++ {
		og := cut.Snaps[m.Of(v)].G
		if og.Contains(v) != g.Contains(v) {
			t.Fatalf("node %d: owner shard liveness %v, global %v", v, og.Contains(v), g.Contains(v))
		}
		if !g.Contains(v) {
			continue
		}
		nodes++
		if og.LabelOf(v) != g.LabelOf(v) || og.ValueOf(v) != g.ValueOf(v) {
			t.Fatalf("node %d: owner shard (label %d, value %v), global (label %d, value %v)",
				v, og.LabelOf(v), og.ValueOf(v), g.LabelOf(v), g.ValueOf(v))
		}
		// Owner adjacency must be the full global adjacency.
		want := append([]graph.NodeID(nil), g.Out(v)...)
		got := append([]graph.NodeID(nil), og.Out(v)...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("node %d: owner shard out %v, global %v", v, got, want)
		}
	}
	edges := 0
	g.Edges(func(from, to graph.NodeID) bool {
		edges++
		for _, s := range []int{m.Of(from), m.Of(to)} {
			sg := cut.Snaps[s].G
			if !sg.HasEdge(from, to) {
				t.Fatalf("edge (%d,%d): missing on endpoint owner shard %d", from, to, s)
			}
			if !sg.Contains(from) || !sg.Contains(to) {
				t.Fatalf("edge (%d,%d): endpoint stub missing on shard %d", from, to, s)
			}
		}
		return true
	})
	// No shard may hold an edge the global graph lost.
	for s := 0; s < n; s++ {
		cut.Snaps[s].G.Edges(func(from, to graph.NodeID) bool {
			if !g.HasEdge(from, to) {
				t.Fatalf("shard %d holds stale edge (%d,%d)", s, from, to)
			}
			return true
		})
	}
	st := r.Stats()
	if st.Nodes != int64(nodes) || st.Edges != int64(edges) {
		t.Fatalf("router counters (%d nodes, %d edges), global (%d, %d)", st.Nodes, st.Edges, nodes, edges)
	}

	// Index parity: splitting the unsharded set with the same owner map
	// must reproduce each shard's incrementally maintained set exactly.
	parts := idx.Split(n, m.Of)
	for s := 0; s < n; s++ {
		want := indexBytes(t, parts[s], in)
		got := indexBytes(t, cut.Snaps[s].Idx, in)
		if !bytes.Equal(got, want) {
			t.Fatalf("shard %d index diverged from the row partition of the unsharded index", s)
		}
	}
}

// TestRouterDifferential drives identical update streams through an
// unsharded store and routers at several shard counts; every verdict
// (including error text), assigned ID, touched-row count and the final
// state must match exactly.
func TestRouterDifferential(t *testing.T) {
	gens := []func(float64, int64) *workload.Dataset{workload.IMDb, workload.DBpedia, workload.WebBase}
	for _, gen := range gens {
		for _, n := range shardSweep(t, []int{1, 2, 4, 7}) {
			d := gen(0.12, 7)
			t.Run(fmt.Sprintf("%s/shards=%d", d.Name, n), func(t *testing.T) {
				g1 := d.G.Clone()
				idx1 := access.BuildUnchecked(g1, d.Schema)
				ust := store.New(g1, idx1)
				g2 := d.G.Clone()
				idx2 := access.BuildUnchecked(g2, d.Schema)
				r, err := New(g2, idx2, n)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(42))
				for i := 0; i < 300; i++ {
					snap := ust.Acquire()
					delta := randomDelta(rng, snap.G)
					snap.Release()
					ures, uerr := ust.Apply(delta.Clone())
					sres, serr := r.Apply(delta.Clone())
					if (uerr == nil) != (serr == nil) {
						t.Fatalf("delta %d: unsharded err %v, sharded err %v", i, uerr, serr)
					}
					if uerr != nil {
						if uerr.Error() != serr.Error() {
							t.Fatalf("delta %d: error text diverged:\n  unsharded: %v\n  sharded:   %v", i, uerr, serr)
						}
						continue
					}
					if fmt.Sprint(ures.NewIDs) != fmt.Sprint(sres.NewIDs) {
						t.Fatalf("delta %d: new IDs %v vs %v", i, ures.NewIDs, sres.NewIDs)
					}
					if ures.TouchedRows != sres.TouchedRows {
						t.Fatalf("delta %d: touched rows %d vs %d", i, ures.TouchedRows, sres.TouchedRows)
					}
					if ures.Epoch != sres.GSN {
						t.Fatalf("delta %d: epoch %d vs GSN %d", i, ures.Epoch, sres.GSN)
					}
				}
				snap := ust.Acquire()
				checkShardedState(t, r, snap.G, snap.Idx, d.In)
				snap.Release()
			})
		}
	}
}

// TestRouterSingleShardFastPath pins the participant-only commit: a
// delta touching one shard opens exactly one shard transaction, bumps
// exactly one epoch-vector slot (the rest keep their previous epochs
// while the GSN advances), and a cross-shard delta opens exactly its
// participant count — verdicts staying identical to the unsharded store
// throughout.
func TestRouterSingleShardFastPath(t *testing.T) {
	const n = 4
	d := workload.IMDb(0.12, 7)
	g1 := d.G.Clone()
	idx1 := access.BuildUnchecked(g1, d.Schema)
	ust := store.New(g1, idx1)
	g2 := d.G.Clone()
	idx2 := access.BuildUnchecked(g2, d.Schema)
	r, err := New(g2, idx2, n)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Map()

	// One guaranteed-accepted intra-shard delta and one cross-shard one.
	var intra, cross [2]graph.NodeID
	haveIntra, haveCross := false, false
	snap := ust.Acquire()
	snap.G.Edges(func(a, b graph.NodeID) bool {
		if m.Of(a) == m.Of(b) && !haveIntra {
			intra, haveIntra = [2]graph.NodeID{a, b}, true
		}
		if m.Of(a) != m.Of(b) && !haveCross {
			cross, haveCross = [2]graph.NodeID{a, b}, true
		}
		return !(haveIntra && haveCross)
	})
	snap.Release()
	if !haveIntra || !haveCross {
		t.Fatal("dataset lacks an intra-shard or cross-shard edge")
	}

	apply := func(d *graph.Delta, wantTxns uint64, wantBumped []int) {
		t.Helper()
		before := r.Stats()
		ures, uerr := ust.Apply(d.Clone())
		sres, serr := r.Apply(d.Clone())
		if uerr != nil || serr != nil {
			t.Fatalf("apply: unsharded err %v, sharded err %v", uerr, serr)
		}
		if ures.Epoch != sres.GSN || ures.TouchedRows != sres.TouchedRows {
			t.Fatalf("verdict diverged: epoch %d vs GSN %d, rows %d vs %d",
				ures.Epoch, sres.GSN, ures.TouchedRows, sres.TouchedRows)
		}
		after := r.Stats()
		if got := after.ShardTxns - before.ShardTxns; got != wantTxns {
			t.Fatalf("delta opened %d shard txns, want %d", got, wantTxns)
		}
		bumped := make(map[int]bool, len(wantBumped))
		for _, s := range wantBumped {
			bumped[s] = true
		}
		for s := 0; s < n; s++ {
			if bumped[s] {
				if after.Vector[s] != sres.GSN {
					t.Fatalf("participant shard %d epoch %d, want GSN %d", s, after.Vector[s], sres.GSN)
				}
			} else if after.Vector[s] != before.Vector[s] {
				t.Fatalf("untouched shard %d epoch moved %d -> %d", s, before.Vector[s], after.Vector[s])
			}
		}
	}

	// Deleting an intra-shard edge touches exactly the owner shard.
	apply(&graph.Delta{DelEdges: [][2]graph.NodeID{intra}}, 1, []int{m.Of(intra[0])})
	// Deleting a cross-shard edge touches exactly both endpoint owners.
	apply(&graph.Delta{DelEdges: [][2]graph.NodeID{cross}}, 2, []int{m.Of(cross[0]), m.Of(cross[1])})
}
