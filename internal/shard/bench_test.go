// Sharded-store benchmarks: update throughput through the router's
// cross-shard group commit and query throughput through the engine's
// scatter/gather path, swept over shard counts against the unsharded
// baseline. When benchmarks ran, TestMain emits the collected figures as
// JSON (BENCH_shard.json, or the path in BENCH_SHARD_OUT) so the shard
// perf trajectory has machine-readable data points.
package shard_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/runtime"
	"boundedg/internal/shard"
	"boundedg/internal/store"
	"boundedg/internal/workload"
)

type benchRec struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Ops     int     `json:"ops"`
}

var (
	benchMu   sync.Mutex
	benchRecs []benchRec
)

// record captures b's figures after its timed loop; b.Name() carries the
// shard-count subtest path.
func record(b *testing.B) {
	b.StopTimer()
	benchMu.Lock()
	defer benchMu.Unlock()
	benchRecs = append(benchRecs, benchRec{
		Name:    b.Name(),
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		Ops:     b.N,
	})
}

func TestMain(m *testing.M) {
	code := m.Run()
	if len(benchRecs) > 0 {
		out := os.Getenv("BENCH_SHARD_OUT")
		if out == "" {
			out = "BENCH_shard.json"
		}
		// The harness reruns each benchmark while calibrating N, and
		// -count repeats the full-length run. Per name keep the largest-N
		// measurement (calibration runs are too short to trust) and, among
		// runs of that length, the smallest ns/op: the minimum over
		// repetitions is the least-interference estimate on a shared
		// machine, where scheduler steal time only ever adds.
		final := make(map[string]int)
		var recs []benchRec
		// Seed with the existing file's records so a partial run (-bench
		// ShardedApply only, say) refreshes its own entries and keeps the
		// rest — the apply and query sweeps need very different iteration
		// counts, so the committed file is produced by two invocations.
		// Benchmarks that ran in this process always win over the file.
		if raw, err := os.ReadFile(out); err == nil {
			var prev struct {
				Benchmarks []benchRec `json:"benchmarks"`
			}
			if json.Unmarshal(raw, &prev) == nil {
				ran := make(map[string]bool, len(benchRecs))
				for _, r := range benchRecs {
					ran[r.Name] = true
				}
				for _, r := range prev.Benchmarks {
					if !ran[r.Name] {
						final[r.Name] = len(recs)
						recs = append(recs, r)
					}
				}
			}
		}
		for _, r := range benchRecs {
			if i, ok := final[r.Name]; ok {
				if r.Ops > recs[i].Ops || (r.Ops == recs[i].Ops && r.NsPerOp < recs[i].NsPerOp) {
					recs[i] = r
				}
				continue
			}
			final[r.Name] = len(recs)
			recs = append(recs, r)
		}
		doc := struct {
			Note       string     `json:"note"`
			Benchmarks []benchRec `json:"benchmarks"`
		}{
			Note:       "BENCH_SHARD_OUT=<repo root>/BENCH_shard.json go test ./internal/shard -bench ShardedApply -benchtime 4000x -count 12 -timeout 0 ; then -bench ShardedQuery -benchtime 200x -count 3 (query ops are ~10ms, a full-length sweep would blow the test timeout); single-core runner: shards>1 carries the second participant's transaction scaffolding with no parallelism to repay it — the stage/log/commit fan-outs engage at GOMAXPROCS>1; per name the fastest full-length repetition is kept (min over -count, the least-interference estimate on a shared box) and a partial run refreshes only its own entries; one apply op = one add+delete edge pair through the group commit (participant-only txns, per-shard WAL syncs in parallel), one query op = one EvalBatch of the bounded workload; end-to-end HTTP numbers live in BENCH_loadgen.json (cmd/loadgen -sweep)",
			Benchmarks: recs,
		}
		if b, err := json.MarshalIndent(doc, "", "  "); err == nil {
			_ = os.WriteFile(out, append(b, '\n'), 0o644)
		}
	}
	os.Exit(code)
}

var shardCounts = []int{1, 2, 4, 8}

// BenchmarkShardedApply measures write throughput: one op is an
// accepted add-edge delta followed by its compensating delete, routed
// through the cross-shard group commit ("unsharded" applies the same
// pairs to a plain store). Random endpoints make most pairs cross-shard
// at higher shard counts.
func BenchmarkShardedApply(b *testing.B) {
	d0 := workload.IMDb(0.3, 5)
	live := d0.G.NodeList()
	pairLoop := func(b *testing.B, apply func(*graph.Delta) error) {
		// Warm up to steady state before timing: the first write through
		// each store pays a one-off O(|G|) clone of its second instance
		// (and the first few epochs build the CSR patch chain), which
		// would otherwise be amortized over whatever b.N the harness
		// picked — a fixed cost masquerading as per-op cost.
		wrng := rand.New(rand.NewSource(7))
		for i := 0; i < 256; i++ {
			from := live[wrng.Intn(len(live))]
			to := live[wrng.Intn(len(live))]
			if err := apply(&graph.Delta{AddEdges: [][2]graph.NodeID{{from, to}}}); err == nil {
				if err := apply(&graph.Delta{DelEdges: [][2]graph.NodeID{{from, to}}}); err != nil {
					b.Fatal(err)
				}
			}
		}
		rng := rand.New(rand.NewSource(9))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			from := live[rng.Intn(len(live))]
			to := live[rng.Intn(len(live))]
			add := &graph.Delta{AddEdges: [][2]graph.NodeID{{from, to}}}
			if err := apply(add); err == nil {
				del := &graph.Delta{DelEdges: [][2]graph.NodeID{{from, to}}}
				if err := apply(del); err != nil {
					b.Fatal(err)
				}
			}
		}
		record(b)
	}
	b.Run("unsharded", func(b *testing.B) {
		g := d0.G.Clone()
		idx := access.BuildUnchecked(g, d0.Schema)
		st := store.New(g, idx)
		pairLoop(b, func(d *graph.Delta) error {
			_, err := st.Apply(d)
			return err
		})
	})
	for _, n := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			g := d0.G.Clone()
			idx := access.BuildUnchecked(g, d0.Schema)
			r, err := shard.New(g, idx, n)
			if err != nil {
				b.Fatal(err)
			}
			pairLoop(b, func(d *graph.Delta) error {
				_, err := r.Apply(d)
				return err
			})
		})
	}
}

// BenchmarkShardedQuery measures read throughput: one op is an EvalBatch
// of every effectively bounded query in the standard 20-query load, both
// semantics, served by a 4-worker engine — over one snapshot
// ("unsharded") or a consistent cut with scatter/gather fetches.
func BenchmarkShardedQuery(b *testing.B) {
	d0 := workload.IMDb(0.3, 5)
	qs := workload.DefaultQueryGen.Generate(d0, 20, 4)
	var queries []runtime.Query
	mopt := match.SubgraphOptions{MaxMatches: 10_000}
	for _, q := range qs {
		if p, err := core.NewPlan(q, d0.Schema, core.Subgraph); err == nil {
			queries = append(queries, runtime.Query{Pattern: q, Sem: core.Subgraph, Sub: mopt, Plan: p})
		}
		if p, err := core.NewPlan(q, d0.Schema, core.Simulation); err == nil {
			queries = append(queries, runtime.Query{Pattern: q, Sem: core.Simulation, Plan: p})
		}
	}
	if len(queries) == 0 {
		b.Fatal("no bounded bench queries found")
	}
	batchLoop := func(b *testing.B, eng *runtime.Engine) {
		defer eng.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, res := range eng.EvalBatch(nil, queries) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
		record(b)
	}
	b.Run("unsharded", func(b *testing.B) {
		g := d0.G.Clone()
		idx := access.BuildUnchecked(g, d0.Schema)
		eng, err := runtime.New(g, idx, runtime.Config{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		batchLoop(b, eng)
	})
	for _, n := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			g := d0.G.Clone()
			idx := access.BuildUnchecked(g, d0.Schema)
			r, err := shard.New(g, idx, n)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := runtime.NewFromRouter(r, runtime.Config{Workers: 4})
			if err != nil {
				b.Fatal(err)
			}
			batchLoop(b, eng)
		})
	}
}
