// Sharded-store benchmarks: update throughput through the router's
// cross-shard group commit and query throughput through the engine's
// scatter/gather path, swept over shard counts against the unsharded
// baseline. When benchmarks ran, TestMain emits the collected figures as
// JSON (BENCH_shard.json, or the path in BENCH_SHARD_OUT) so the shard
// perf trajectory has machine-readable data points.
package shard_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/runtime"
	"boundedg/internal/shard"
	"boundedg/internal/store"
	"boundedg/internal/workload"
)

type benchRec struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Ops     int     `json:"ops"`
}

var (
	benchMu   sync.Mutex
	benchRecs []benchRec
)

// record captures b's figures after its timed loop; b.Name() carries the
// shard-count subtest path.
func record(b *testing.B) {
	b.StopTimer()
	benchMu.Lock()
	defer benchMu.Unlock()
	benchRecs = append(benchRecs, benchRec{
		Name:    b.Name(),
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		Ops:     b.N,
	})
}

func TestMain(m *testing.M) {
	code := m.Run()
	if len(benchRecs) > 0 {
		out := os.Getenv("BENCH_SHARD_OUT")
		if out == "" {
			out = "BENCH_shard.json"
		}
		// The harness reruns each benchmark while calibrating N; keep only
		// the final (largest-N) measurement per name, in first-seen order.
		final := make(map[string]int)
		var recs []benchRec
		for _, r := range benchRecs {
			if i, ok := final[r.Name]; ok {
				if r.Ops >= recs[i].Ops {
					recs[i] = r
				}
				continue
			}
			final[r.Name] = len(recs)
			recs = append(recs, r)
		}
		doc := struct {
			Note       string     `json:"note"`
			Benchmarks []benchRec `json:"benchmarks"`
		}{
			Note:       "go test ./internal/shard -bench 'Sharded' ; one apply op = one add+delete edge pair through the group commit, one query op = one EvalBatch of the bounded workload",
			Benchmarks: recs,
		}
		if b, err := json.MarshalIndent(doc, "", "  "); err == nil {
			_ = os.WriteFile(out, append(b, '\n'), 0o644)
		}
	}
	os.Exit(code)
}

var shardCounts = []int{1, 2, 4, 8}

// BenchmarkShardedApply measures write throughput: one op is an
// accepted add-edge delta followed by its compensating delete, routed
// through the cross-shard group commit ("unsharded" applies the same
// pairs to a plain store). Random endpoints make most pairs cross-shard
// at higher shard counts.
func BenchmarkShardedApply(b *testing.B) {
	d0 := workload.IMDb(0.3, 5)
	live := d0.G.NodeList()
	pairLoop := func(b *testing.B, apply func(*graph.Delta) error) {
		rng := rand.New(rand.NewSource(9))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			from := live[rng.Intn(len(live))]
			to := live[rng.Intn(len(live))]
			add := &graph.Delta{AddEdges: [][2]graph.NodeID{{from, to}}}
			if err := apply(add); err == nil {
				del := &graph.Delta{DelEdges: [][2]graph.NodeID{{from, to}}}
				if err := apply(del); err != nil {
					b.Fatal(err)
				}
			}
		}
		record(b)
	}
	b.Run("unsharded", func(b *testing.B) {
		g := d0.G.Clone()
		idx := access.BuildUnchecked(g, d0.Schema)
		st := store.New(g, idx)
		pairLoop(b, func(d *graph.Delta) error {
			_, err := st.Apply(d)
			return err
		})
	})
	for _, n := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			g := d0.G.Clone()
			idx := access.BuildUnchecked(g, d0.Schema)
			r, err := shard.New(g, idx, n)
			if err != nil {
				b.Fatal(err)
			}
			pairLoop(b, func(d *graph.Delta) error {
				_, err := r.Apply(d)
				return err
			})
		})
	}
}

// BenchmarkShardedQuery measures read throughput: one op is an EvalBatch
// of every effectively bounded query in the standard 20-query load, both
// semantics, served by a 4-worker engine — over one snapshot
// ("unsharded") or a consistent cut with scatter/gather fetches.
func BenchmarkShardedQuery(b *testing.B) {
	d0 := workload.IMDb(0.3, 5)
	qs := workload.DefaultQueryGen.Generate(d0, 20, 4)
	var queries []runtime.Query
	mopt := match.SubgraphOptions{MaxMatches: 10_000}
	for _, q := range qs {
		if p, err := core.NewPlan(q, d0.Schema, core.Subgraph); err == nil {
			queries = append(queries, runtime.Query{Pattern: q, Sem: core.Subgraph, Sub: mopt, Plan: p})
		}
		if p, err := core.NewPlan(q, d0.Schema, core.Simulation); err == nil {
			queries = append(queries, runtime.Query{Pattern: q, Sem: core.Simulation, Plan: p})
		}
	}
	if len(queries) == 0 {
		b.Fatal("no bounded bench queries found")
	}
	batchLoop := func(b *testing.B, eng *runtime.Engine) {
		defer eng.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, res := range eng.EvalBatch(nil, queries) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
		record(b)
	}
	b.Run("unsharded", func(b *testing.B) {
		g := d0.G.Clone()
		idx := access.BuildUnchecked(g, d0.Schema)
		eng, err := runtime.New(g, idx, runtime.Config{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		batchLoop(b, eng)
	})
	for _, n := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			g := d0.G.Clone()
			idx := access.BuildUnchecked(g, d0.Schema)
			r, err := shard.New(g, idx, n)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := runtime.NewFromRouter(r, runtime.Config{Workers: 4})
			if err != nil {
				b.Fatal(err)
			}
			batchLoop(b, eng)
		})
	}
}
