package shard

import (
	"boundedg/internal/access"
	"boundedg/internal/graph"
)

// Partition splits a global graph and its index set into per-shard parts
// under m. Shard s's graph keeps the full global ID space (absent nodes
// are tombstones, so IDs mean the same thing everywhere) and holds:
//
//   - every node it owns, with its FULL adjacency — each edge (u,w) is
//     stored on both h(u) and h(w), so the owner of either endpoint sees
//     the whole neighborhood of its nodes without remote reads;
//   - a remote-endpoint stub (label + value, no non-local edges) for
//     every neighbor of an owned node that lives elsewhere.
//
// The index set is row-partitioned by member owner (access.IndexSet.Split)
// with the matching row-ownership filter installed, so incremental
// maintenance on a shard only ever grows the rows that shard owns and a
// k-way merge of shard entries reproduces each global entry exactly.
func Partition(g *graph.Graph, idx *access.IndexSet, m Map) ([]*graph.Graph, []*access.IndexSet) {
	n := m.Shards
	// One pass over the edges decides shard membership: every node starts
	// on its owner; an edge pulls each endpoint onto the other's owner as
	// a stub.
	mask := make([]uint64, g.Cap())
	g.Nodes(func(v graph.NodeID) bool {
		mask[v] |= 1 << uint(m.Of(v))
		return true
	})
	g.Edges(func(from, to graph.NodeID) bool {
		mask[from] |= 1 << uint(m.Of(to))
		mask[to] |= 1 << uint(m.Of(from))
		return true
	})
	graphs := make([]*graph.Graph, n)
	for s := 0; s < n; s++ {
		bit := uint64(1) << uint(s)
		graphs[s] = g.CloneFiltered(
			func(v graph.NodeID) bool { return mask[v]&bit != 0 },
			func(from, to graph.NodeID) bool {
				return m.Of(from) == s || m.Of(to) == s
			},
		)
	}
	idxs := idx.Split(n, m.Of)
	for s := 0; s < n; s++ {
		installRowOwner(idxs[s], m, s)
	}
	return graphs, idxs
}

// installRowOwner installs the row-ownership filter tying shard s's index
// part to the map.
func installRowOwner(idx *access.IndexSet, m Map, s int) {
	idx.SetRowOwner(func(v graph.NodeID) bool { return m.Of(v) == s })
}
