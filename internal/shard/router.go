package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/store"
	"boundedg/internal/wal"
)

// Result reports one accepted update through the router.
type Result struct {
	// GSN is the global sequence number (the batch epoch) the update
	// published at. Concurrently accepted deltas share it.
	GSN uint64
	// Vector is the per-shard epoch vector after the commit. A shard the
	// batch did not touch keeps its previous epoch — entries are the
	// epochs a consistent cut at this GSN pins.
	Vector []uint64
	// NewIDs are the global node IDs assigned to the delta's AddNodes.
	NewIDs []graph.NodeID
	// TouchedRows counts the rows whose adjacency the delta changed,
	// summed globally — identical to the unsharded figure.
	TouchedRows int
	// LogOffsets holds, per shard, the WAL offset this delta's envelope
	// record ends at (0 for shards the delta did not touch, and
	// everywhere on an in-memory router).
	LogOffsets []int64
}

// Stats is a point-in-time observation of the router.
type Stats struct {
	GSN    uint64
	Vector []uint64
	// Nodes/Edges are the global live counts (each edge counted once,
	// not per replica).
	Nodes int64
	Edges int64
	// NextID is the next free global node ID.
	NextID int64
	// Applied/Batches/TouchedRows and the rejection counters mirror the
	// unsharded store's, accounted at the router (per-shard store stats
	// would double-count cross-shard deltas).
	Applied           uint64
	Batches           uint64
	RejectedViolation uint64
	RejectedError     uint64
	TouchedRows       uint64
	// ShardTxns counts shard write transactions begun: a batch touching
	// k shards opens k, so ShardTxns/Batches is the mean commit fan-out
	// — the observable for the participant-only fast path.
	ShardTxns uint64
	// QueueDepth is the number of Apply calls waiting in the router's
	// group-commit queue at observation time.
	QueueDepth int
	// Shards holds each shard store's own stats (epoch, queue depths,
	// WAL figures).
	Shards []store.Stats
}

// Router owns one store per shard behind a deterministic node partition
// and coordinates cross-shard commits: updates split into per-shard
// sub-deltas, stage on every participant, get one global accept/reject
// verdict (cardinality bounds are summed across the row partition), log
// to each participant's own WAL, and publish atomically under the
// router's publication lock so the epoch vector is never observed
// half-advanced.
type Router struct {
	m      Map
	stores []*store.Store
	dirs   []*wal.Dir // nil entries when in-memory
	fsync  bool

	qmu   sync.Mutex
	queue []*routerReq
	lmu   sync.Mutex // leader lock: serializes commitBatch

	// mu is the publication lock: held for write while a batch commits
	// every shard's epoch, for read while a cut acquires every shard's
	// snapshot — a cut therefore always observes the vector at a batch
	// boundary.
	mu  sync.RWMutex
	gsn atomic.Uint64

	// clog is the router's recent-deltas ring, keyed by GSN with each
	// slot carrying the vector that GSN published. The shard stores'
	// own rings are disabled — per-shard epochs are useless to a cache
	// keyed by global sequence numbers.
	clog *store.ChangeLog

	seq    atomic.Uint64 // last assigned update sequence number
	nextID atomic.Int64  // next free global node ID
	nodes  atomic.Int64
	edges  atomic.Int64

	applied   atomic.Uint64
	batches   atomic.Uint64
	touched   atomic.Uint64
	rejViol   atomic.Uint64
	rejErr    atomic.Uint64
	shardTxns atomic.Uint64 // shard transactions begun: k per batch touching k shards

	// checkGlobal scratch, reused across batches (commitBatch is
	// serialized by lmu).
	scrTouched []access.TouchedEntry
	scrWorst   []int

	// pubCh is the GSN-publication broadcast channel: closed (and
	// replaced lazily) each time a batch publishes a new GSN. Same
	// protocol as store.Store.PublishSignal.
	pubMu sync.Mutex
	pubCh chan struct{}

	// hookBeforeShardLog, when set, runs immediately before shard s's
	// records are appended; an error fails that shard's log step with
	// nothing appended — the kill-point for "this shard never synced".
	hookBeforeShardLog func(s int) error
	// hookAfterShardLog, when set, runs after shard s's records are
	// durably logged (post-fsync) — the crash-injection point for torn
	// cross-shard batches. An error is treated as a log failure at that
	// point. Participants log concurrently, so crash tests coordinate the
	// two hooks to pin exactly which subset of shards synced.
	hookAfterShardLog func(s int) error
}

type routerReq struct {
	d    *graph.Delta
	done chan struct{}
	res  Result
	err  error
}

// New builds an in-memory router over g and idx split n ways. The inputs
// are consumed (partitioned into per-shard copies); the caller must not
// use them afterwards.
func New(g *graph.Graph, idx *access.IndexSet, nshards int) (*Router, error) {
	m, err := NewMap(nshards)
	if err != nil {
		return nil, err
	}
	graphs, idxs := Partition(g, idx, m)
	r := &Router{m: m, stores: make([]*store.Store, nshards), dirs: make([]*wal.Dir, nshards), clog: store.NewChangeLog(0)}
	for s := 0; s < nshards; s++ {
		r.stores[s] = store.New(graphs[s], idxs[s], store.WithRefreshFilter(m.ownsFn(s)), store.WithChangeLog(-1))
	}
	r.nextID.Store(int64(g.Cap()))
	r.nodes.Store(int64(g.NumNodes()))
	r.edges.Store(int64(g.NumEdges()))
	return r, nil
}

// Map returns the node partition.
func (r *Router) Map() Map { return r.m }

// NumShards returns the shard count.
func (r *Router) NumShards() int { return r.m.Shards }

// Schema returns the access schema (shared by every shard's index set).
func (r *Router) Schema() *access.Schema { return r.stores[0].Schema() }

// GSN returns the current global sequence number.
func (r *Router) GSN() uint64 { return r.gsn.Load() }

// PublishSignal returns a channel closed the next time a batch publishes
// a new GSN. Same one-shot level-trigger protocol as
// store.Store.PublishSignal: grab the channel before reading GSN, then
// block; re-grab after each wake.
func (r *Router) PublishSignal() <-chan struct{} {
	r.pubMu.Lock()
	defer r.pubMu.Unlock()
	if r.pubCh == nil {
		r.pubCh = make(chan struct{})
	}
	return r.pubCh
}

// signalPublish wakes PublishSignal waiters; called after each commit
// releases the publication lock.
func (r *Router) signalPublish() {
	r.pubMu.Lock()
	ch := r.pubCh
	r.pubCh = nil
	r.pubMu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// Store returns shard s's store (tests and stats).
func (r *Router) Store(s int) *store.Store { return r.stores[s] }

// Cut is a pinned consistent snapshot of every shard: one epoch vector,
// acquired atomically with respect to commits. Release it when done.
type Cut struct {
	Snaps  []*store.Snapshot
	Vector []uint64
	GSN    uint64
}

// AcquireCut pins the current epoch on every shard under the publication
// read lock, so the snapshots form exactly the vector a single commit
// boundary published — a query never mixes epochs.
func (r *Router) AcquireCut() *Cut {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := &Cut{
		Snaps:  make([]*store.Snapshot, len(r.stores)),
		Vector: make([]uint64, len(r.stores)),
	}
	for i, st := range r.stores {
		s := st.Acquire()
		c.Snaps[i] = s
		c.Vector[i] = s.Epoch
	}
	c.GSN = r.gsn.Load()
	return c
}

// Release unpins every shard snapshot of the cut.
func (c *Cut) Release() {
	for _, s := range c.Snaps {
		s.Release()
	}
}

// Apply routes one delta through the cross-shard group commit. Semantics
// match store.Apply exactly: all-or-nothing across shards, structural
// errors and *access.ViolationError rejections leave every shard (and
// the global ID space) untouched, and on success the publishing cut is
// visible to AcquireCut before Apply returns.
func (r *Router) Apply(d *graph.Delta) (Result, error) {
	req := &routerReq{d: d, done: make(chan struct{})}
	r.qmu.Lock()
	r.queue = append(r.queue, req)
	r.qmu.Unlock()

	r.lead()

	<-req.done
	return req.res, req.err
}

// lead mirrors store.lead: every queued caller contends for the leader
// lock, the winner commits the whole queue.
func (r *Router) lead() {
	r.lmu.Lock()
	defer r.lmu.Unlock()
	r.qmu.Lock()
	batch := r.queue
	r.queue = nil
	r.qmu.Unlock()
	if len(batch) > 0 {
		r.commitBatch(batch)
	}
}

// commitBatch runs one cross-shard group commit on the participant
// shards only: the published snapshots serve as read views, a
// transaction opens lazily on the shards the batch actually stages onto,
// the participants' envelope records log concurrently and join before
// the single atomic vector publication. A batch touching k of N shards
// therefore pays k writer locks, k fsyncs and k epoch bumps; the other
// shards' epochs simply skip the GSN — exactly the vector the all-shards
// protocol published, since an empty-staged Commit never bumped them
// either.
func (r *Router) commitBatch(batch []*routerReq) {
	settled := false
	n := r.m.Shards
	txns := make([]*store.Txn, n)
	txnsOpen := false
	snaps := make([]*store.Snapshot, n)
	for s := 0; s < n; s++ {
		snaps[s] = r.stores[s].Acquire()
	}
	defer func() {
		for _, sn := range snaps {
			sn.Release()
		}
	}()
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		// A panic mid-commit (a splitter/staging invariant violation) on
		// any shard poisons all of them — including the shards the batch
		// never opened: the batch never published, the shadow states are
		// suspect, and partial wedging would desync the shards. Fail the
		// waiters, wedge everything, re-panic.
		if txnsOpen {
			for s, t := range txns {
				if t != nil {
					_ = t.RewindLog()
					t.Wedge()
				} else {
					r.stores[s].Wedge()
				}
			}
		}
		if !settled {
			for _, req := range batch {
				if req.err == nil {
					req.err = fmt.Errorf("shard: commit panicked: %v", rec)
				}
				close(req.done)
			}
		}
		panic(rec)
	}()
	finish := func() {
		settled = true
		for _, req := range batch {
			close(req.done)
		}
	}

	graphs := func(s int) *graph.Graph {
		if txns[s] != nil {
			return txns[s].Graph()
		}
		return snaps[s].G
	}
	schema := r.Schema()
	// fan gates the CPU-bound fan-outs (staging, commit): with one
	// schedulable CPU the goroutine handoffs cost latency and buy no
	// parallelism. durable gates the log fan-out separately — fsyncs
	// block in the kernel, so they overlap even on one CPU.
	fan := runtime.GOMAXPROCS(0) > 1
	durable := false
	for _, d := range r.dirs {
		if d != nil {
			durable = true
			break
		}
	}

	epoch := r.gsn.Load() + 1
	seq := r.seq.Load()
	nextID := graph.NodeID(r.nextID.Load())
	var accepted []*routerReq
	// stagedReqs[s] maps shard s's staged entries (in order) back to the
	// requests they belong to, for log-offset attribution. counted[s]
	// dedupes the ShardTxns accounting across the batch's requests.
	stagedReqs := make([][]*routerReq, n)
	counted := make([]bool, n)
	nodeDelta, edgeDelta := 0, 0
	var totalRows uint64
	var batchRows []graph.NodeID // changed ∪ new rows across accepted deltas
	var batchLabels []graph.Label
	var beginErr error
reqs:
	for _, req := range batch {
		if req.d.AddNodeIDs != nil {
			req.err = fmt.Errorf("shard: delta may not pin node IDs")
			r.rejErr.Add(1)
			continue
		}
		// Resolve staged label names under the leader serialization (the
		// only place interner growth happens in a sharded store) BEFORE
		// splitDelta copies the specs into sub-deltas; novel names commit
		// only if the global verdict accepts the delta.
		commitLabels, rollbackLabels, err := req.d.ResolveLabels(snaps[0].G.Interner())
		if err != nil {
			req.err = err
			r.rejErr.Add(1)
			continue
		}
		sp, err := splitDelta(req.d, r.m, graphs, nextID)
		if err != nil {
			rollbackLabels()
			req.err = err
			r.rejErr.Add(1)
			continue
		}
		// Open and stage on this delta's participants concurrently: the
		// shards are independent stores, and the fixed per-shard costs
		// (BeginTxn's shadow catch-up, index staging) dominate small
		// cross-shard deltas — serializing them made a k-shard delta k×
		// slower than a single-shard one. Distinct parts write disjoint
		// txns slots; the shared flags are reconciled after the join.
		sds := make([]*access.StagedDelta, len(sp.parts))
		stageBeginErrs := make([]error, len(sp.parts))
		stageErrs := make([]error, len(sp.parts))
		stagePanics := make([]any, len(sp.parts))
		stageOne := func(i int) {
			defer func() {
				if p := recover(); p != nil {
					stagePanics[i] = p
				}
			}()
			t := sp.parts[i]
			if txns[t] == nil {
				tx, err := r.stores[t].BeginTxn()
				if err != nil {
					stageBeginErrs[i] = err
					return
				}
				txns[t] = tx
			}
			sds[i], stageErrs[i] = txns[t].Stage(sp.subs[t], seq+1, sp.parts)
		}
		if len(sp.parts) <= 1 || !fan {
			// Staging is CPU-bound (no blocking points), so on a single-CPU
			// host the goroutine handoffs are pure overhead — run the parts
			// in order instead.
			for i := range sp.parts {
				stageOne(i)
			}
		} else {
			// First participant runs on this goroutine: with k parts only
			// k-1 handoffs are paid.
			var wg sync.WaitGroup
			for i := 1; i < len(sp.parts); i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					stageOne(i)
				}(i)
			}
			stageOne(0)
			wg.Wait()
		}
		opened := uint64(0)
		for s := 0; s < n; s++ {
			if txns[s] != nil {
				txnsOpen = true
			}
		}
		for _, t := range sp.parts {
			if txns[t] != nil && !counted[t] {
				counted[t] = true
				opened++
			}
		}
		r.shardTxns.Add(opened)
		for i := range sp.parts {
			if p := stagePanics[i]; p != nil {
				panic(p)
			}
		}
		for i := range sp.parts {
			if err := stageBeginErrs[i]; err != nil {
				rollbackLabels()
				beginErr = err
				break reqs
			}
		}
		for i, t := range sp.parts {
			if err := stageErrs[i]; err != nil {
				// splitDelta validated the delta globally; a shard
				// refusing its sub-delta means the simulation and the
				// shard state disagree.
				panic(fmt.Sprintf("shard: shard %d rejected pre-validated sub-delta: %v", t, err))
			}
		}
		if viols := r.checkGlobal(txns, snaps, schema, sds); len(viols) > 0 {
			for i := len(sp.parts) - 1; i >= 0; i-- {
				txns[sp.parts[i]].UnstageLast()
			}
			rollbackLabels()
			req.err = &access.ViolationError{Violations: viols}
			r.rejViol.Add(1)
			continue
		}
		commitLabels()
		seq++
		nextID += graph.NodeID(len(req.d.AddNodes))
		nodeDelta += sp.nodeDelta
		edgeDelta += sp.edgeDelta
		totalRows += uint64(sp.touched)
		batchRows = append(batchRows, sp.rows...)
		batchLabels = append(batchLabels, sp.labels...)
		req.res = Result{NewIDs: sp.newIDs, TouchedRows: sp.touched, LogOffsets: make([]int64, n)}
		for _, t := range sp.parts {
			stagedReqs[t] = append(stagedReqs[t], req)
		}
		accepted = append(accepted, req)
	}
	if beginErr != nil {
		// A shard refused to open (closed or wedged) partway through the
		// batch. Nothing is logged yet, so abort every open transaction —
		// unstaging the already-accepted deltas — and fail the batch
		// wholesale; per-delta rejections decided before the failure keep
		// their own verdicts.
		for s := n - 1; s >= 0; s-- {
			if txns[s] != nil {
				txns[s].Abort()
			}
		}
		txnsOpen = false
		for _, req := range batch {
			if req.err == nil {
				req.err = beginErr
				req.res = Result{}
			}
		}
		finish()
		return
	}
	if len(accepted) == 0 {
		for s := n - 1; s >= 0; s-- {
			if txns[s] != nil {
				txns[s].Abort()
			}
		}
		txnsOpen = false
		finish()
		return
	}

	// Durability: each participant logs its own envelope records
	// concurrently; the join gates publication, so the batch is durable
	// once every participant synced. Cross-shard ordering is not
	// load-bearing: recovery's reconciliation cut keeps a sequence only
	// if every participant durably holds it, whichever subset of shards
	// survived a crash. Any failure rewinds the whole batch here.
	parts := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if len(stagedReqs[s]) > 0 {
			parts = append(parts, s)
		}
	}
	offsBy := make([][]int64, n)
	logErrs := make([]error, n)
	logOne := func(s int) {
		if r.hookBeforeShardLog != nil {
			if err := r.hookBeforeShardLog(s); err != nil {
				logErrs[s] = err
				return
			}
		}
		offs, err := txns[s].Log(epoch)
		if err == nil && r.hookAfterShardLog != nil {
			err = r.hookAfterShardLog(s)
		}
		offsBy[s], logErrs[s] = offs, err
	}
	if len(parts) <= 1 || !durable {
		// Without a WAL there is nothing to overlap — Log is a no-op per
		// shard — so skip the goroutine fan-out.
		for _, s := range parts {
			logOne(s)
		}
	} else {
		// Durable participants log concurrently even on one CPU: the
		// fsyncs block in the kernel, so their waits overlap.
		var wg sync.WaitGroup
		for _, s := range parts[1:] {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				logOne(s)
			}(s)
		}
		logOne(parts[0])
		wg.Wait()
	}
	for _, s := range parts {
		if err := logErrs[s]; err != nil {
			r.wedgeAll(txns, batch, err)
			txnsOpen = false
			settled = true
			for _, req := range batch {
				close(req.done)
			}
			return
		}
	}
	for _, s := range parts {
		for i, req := range stagedReqs[s] {
			req.res.LogOffsets[s] = offsBy[s][i]
		}
	}

	// Publication: every participant's Commit runs under the publication
	// write lock, so cuts observe either no shard or every shard at the
	// new epoch. Open transactions whose staged deltas were all rejected
	// commit empty (just releasing the writer lock); untouched shards
	// keep their previous epoch in the vector.
	r.mu.Lock()
	open := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if txns[s] != nil {
			open = append(open, s)
		}
	}
	if len(open) <= 1 || !fan {
		for _, s := range open {
			txns[s].Commit(epoch)
		}
	} else {
		// Commits are per-store work (snapshot refresh, writer unlock) on
		// independent shards; the publication lock already makes the
		// vector advance atomic, so running them concurrently changes
		// only the latency, not what a cut can observe.
		commitPanics := make([]any, n)
		var wg sync.WaitGroup
		for _, s := range open[1:] {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				defer func() { commitPanics[s] = recover() }()
				txns[s].Commit(epoch)
			}(s)
		}
		func(s int) {
			defer func() { commitPanics[s] = recover() }()
			txns[s].Commit(epoch)
		}(open[0])
		wg.Wait()
		for _, s := range open {
			if p := commitPanics[s]; p != nil {
				panic(p)
			}
		}
	}
	vector := make([]uint64, n)
	for s := 0; s < n; s++ {
		vector[s] = r.stores[s].Epoch()
	}
	// Record the batch's changes before the GSN becomes visible (still
	// under the publication lock): ChangedSince must cover through every
	// GSN a reader can observe, or a revalidation racing this commit
	// could promote a cached result across an unrecorded span.
	r.clog.Record(epoch, vector, batchRows, batchLabels)
	r.gsn.Store(epoch)
	r.mu.Unlock()
	r.signalPublish()
	txnsOpen = false

	r.seq.Store(seq)
	r.nextID.Store(int64(nextID))
	r.nodes.Add(int64(nodeDelta))
	r.edges.Add(int64(edgeDelta))
	r.applied.Add(uint64(len(accepted)))
	r.batches.Add(1)
	r.touched.Add(totalRows)
	for _, req := range accepted {
		req.res.GSN = epoch
		req.res.Vector = vector
	}
	finish()
}

// ChangedSince reports the union of changes in GSNs (e, S], S ≥ the
// current GSN, as a store.ChangeSummary whose Vector is the epoch vector
// published at S — the vector a promoted cached result must report, since
// a fresh cut at S pins exactly it. ok is false when the ring was outrun,
// a bulk batch overflowed its slot, or e is ahead of everything recorded
// (with no commits recorded yet only the empty span e == GSN is vouched
// for).
func (r *Router) ChangedSince(e uint64) (store.ChangeSummary, bool) {
	return r.clog.Since(e, r.gsn.Load())
}

// checkGlobal evaluates the cardinality bounds for the entries a staged
// delta touched, summing each entry's size across the whole row
// partition — the sum is exactly the unsharded entry's size, so the
// verdict (and the reported worst counts) is bit-identical. At most one
// violation per constraint, in schema order, carrying the worst count.
// Shards without an open transaction contribute their published index —
// nothing staged on them this batch, so published and shadow agree.
func (r *Router) checkGlobal(txns []*store.Txn, snaps []*store.Snapshot, schema *access.Schema, sds []*access.StagedDelta) []access.Violation {
	touched := r.scrTouched[:0]
	for _, sd := range sds {
		touched = sd.AppendTouchedEntries(touched)
	}
	r.scrTouched = touched
	if cap(r.scrWorst) < schema.Count() {
		r.scrWorst = make([]int, schema.Count())
	}
	worst := r.scrWorst[:schema.Count()]
	for i := range worst {
		worst[i] = 0
	}
	for _, te := range touched {
		total := 0
		for s := range txns {
			if txns[s] != nil {
				total += txns[s].Index().EntryLen(te.CIdx, te.Key)
			} else {
				total += snaps[s].Idx.EntryLen(te.CIdx, te.Key)
			}
		}
		if total > schema.At(te.CIdx).N && total > worst[te.CIdx] {
			worst[te.CIdx] = total
		}
	}
	var viols []access.Violation
	for ci := range worst {
		if w := worst[ci]; w > 0 {
			viols = append(viols, access.Violation{Constraint: schema.At(ci), Count: w})
		}
	}
	return viols
}

// wedgeAll handles a per-shard log failure mid-batch: rewind every
// record the batch already appended on any shard, wedge every store —
// the ones the batch never opened included, so the fleet fails in
// lockstep — and fail the accepted requests, mirroring the unsharded
// wedge path.
func (r *Router) wedgeAll(txns []*store.Txn, batch []*routerReq, cause error) {
	rewindNote := ""
	for _, t := range txns {
		if t == nil {
			continue
		}
		if err := t.RewindLog(); err != nil && rewindNote == "" {
			rewindNote = fmt.Sprintf(" (log rewind also failed: %v; recovery may replay this batch)", err)
		}
	}
	for s, t := range txns {
		if t != nil {
			t.Wedge()
		} else {
			r.stores[s].Wedge()
		}
	}
	for _, req := range batch {
		if req.err == nil {
			req.err = fmt.Errorf("%w; update not committed: %v%s", store.ErrWedged, cause, rewindNote)
			req.res = Result{}
		}
	}
}

// Checkpoint checkpoints every shard's WAL at its current epoch. Shard
// checkpoints are independently consistent (each snapshot is a published
// shard epoch); recovery's sequence reconciliation re-aligns them.
func (r *Router) Checkpoint() error {
	var errs []error
	for s, st := range r.stores {
		if err := st.Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", s, err))
		}
	}
	return errors.Join(errs...)
}

// Close closes every shard store (drains writers) and their WALs.
func (r *Router) Close() {
	for _, st := range r.stores {
		st.Close()
	}
}

// CloseDirs closes the shard WAL directories (after Close + a final
// Checkpoint).
func (r *Router) CloseDirs() error {
	var errs []error
	for s, d := range r.dirs {
		if d == nil {
			continue
		}
		if err := d.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", s, err))
		}
	}
	return errors.Join(errs...)
}

// Stats gathers router-level and per-shard statistics.
func (r *Router) Stats() Stats {
	st := Stats{
		GSN:               r.gsn.Load(),
		Vector:            make([]uint64, len(r.stores)),
		Nodes:             r.nodes.Load(),
		Edges:             r.edges.Load(),
		NextID:            r.nextID.Load(),
		Applied:           r.applied.Load(),
		Batches:           r.batches.Load(),
		RejectedViolation: r.rejViol.Load(),
		RejectedError:     r.rejErr.Load(),
		TouchedRows:       r.touched.Load(),
		ShardTxns:         r.shardTxns.Load(),
		Shards:            make([]store.Stats, len(r.stores)),
	}
	r.qmu.Lock()
	st.QueueDepth = len(r.queue)
	r.qmu.Unlock()
	for i, s := range r.stores {
		st.Shards[i] = s.Stats()
		st.Vector[i] = st.Shards[i].Epoch
	}
	return st
}
