package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/store"
	"boundedg/internal/wal"
)

// Result reports one accepted update through the router.
type Result struct {
	// GSN is the global sequence number (the batch epoch) the update
	// published at. Concurrently accepted deltas share it.
	GSN uint64
	// Vector is the per-shard epoch vector after the commit. A shard the
	// batch did not touch keeps its previous epoch — entries are the
	// epochs a consistent cut at this GSN pins.
	Vector []uint64
	// NewIDs are the global node IDs assigned to the delta's AddNodes.
	NewIDs []graph.NodeID
	// TouchedRows counts the rows whose adjacency the delta changed,
	// summed globally — identical to the unsharded figure.
	TouchedRows int
	// LogOffsets holds, per shard, the WAL offset this delta's envelope
	// record ends at (0 for shards the delta did not touch, and
	// everywhere on an in-memory router).
	LogOffsets []int64
}

// Stats is a point-in-time observation of the router.
type Stats struct {
	GSN    uint64
	Vector []uint64
	// Nodes/Edges are the global live counts (each edge counted once,
	// not per replica).
	Nodes int64
	Edges int64
	// NextID is the next free global node ID.
	NextID int64
	// Applied/Batches/TouchedRows and the rejection counters mirror the
	// unsharded store's, accounted at the router (per-shard store stats
	// would double-count cross-shard deltas).
	Applied           uint64
	Batches           uint64
	RejectedViolation uint64
	RejectedError     uint64
	TouchedRows       uint64
	// QueueDepth is the number of Apply calls waiting in the router's
	// group-commit queue at observation time.
	QueueDepth int
	// Shards holds each shard store's own stats (epoch, queue depths,
	// WAL figures).
	Shards []store.Stats
}

// Router owns one store per shard behind a deterministic node partition
// and coordinates cross-shard commits: updates split into per-shard
// sub-deltas, stage on every participant, get one global accept/reject
// verdict (cardinality bounds are summed across the row partition), log
// to each participant's own WAL, and publish atomically under the
// router's publication lock so the epoch vector is never observed
// half-advanced.
type Router struct {
	m      Map
	stores []*store.Store
	dirs   []*wal.Dir // nil entries when in-memory
	fsync  bool

	qmu   sync.Mutex
	queue []*routerReq
	lmu   sync.Mutex // leader lock: serializes commitBatch

	// mu is the publication lock: held for write while a batch commits
	// every shard's epoch, for read while a cut acquires every shard's
	// snapshot — a cut therefore always observes the vector at a batch
	// boundary.
	mu  sync.RWMutex
	gsn atomic.Uint64

	seq    atomic.Uint64 // last assigned update sequence number
	nextID atomic.Int64  // next free global node ID
	nodes  atomic.Int64
	edges  atomic.Int64

	applied atomic.Uint64
	batches atomic.Uint64
	touched atomic.Uint64
	rejViol atomic.Uint64
	rejErr  atomic.Uint64

	// hookAfterShardLog, when set, runs after shard s's records are
	// durably logged (post-fsync) and before the next shard's — the
	// crash-injection point for torn cross-shard batches. An error is
	// treated as a log failure at that point.
	hookAfterShardLog func(s int) error
}

type routerReq struct {
	d    *graph.Delta
	done chan struct{}
	res  Result
	err  error
}

// New builds an in-memory router over g and idx split n ways. The inputs
// are consumed (partitioned into per-shard copies); the caller must not
// use them afterwards.
func New(g *graph.Graph, idx *access.IndexSet, nshards int) (*Router, error) {
	m, err := NewMap(nshards)
	if err != nil {
		return nil, err
	}
	graphs, idxs := Partition(g, idx, m)
	r := &Router{m: m, stores: make([]*store.Store, nshards), dirs: make([]*wal.Dir, nshards)}
	for s := 0; s < nshards; s++ {
		r.stores[s] = store.New(graphs[s], idxs[s])
	}
	r.nextID.Store(int64(g.Cap()))
	r.nodes.Store(int64(g.NumNodes()))
	r.edges.Store(int64(g.NumEdges()))
	return r, nil
}

// Map returns the node partition.
func (r *Router) Map() Map { return r.m }

// NumShards returns the shard count.
func (r *Router) NumShards() int { return r.m.Shards }

// Schema returns the access schema (shared by every shard's index set).
func (r *Router) Schema() *access.Schema { return r.stores[0].Schema() }

// GSN returns the current global sequence number.
func (r *Router) GSN() uint64 { return r.gsn.Load() }

// Store returns shard s's store (tests and stats).
func (r *Router) Store(s int) *store.Store { return r.stores[s] }

// Cut is a pinned consistent snapshot of every shard: one epoch vector,
// acquired atomically with respect to commits. Release it when done.
type Cut struct {
	Snaps  []*store.Snapshot
	Vector []uint64
	GSN    uint64
}

// AcquireCut pins the current epoch on every shard under the publication
// read lock, so the snapshots form exactly the vector a single commit
// boundary published — a query never mixes epochs.
func (r *Router) AcquireCut() *Cut {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := &Cut{
		Snaps:  make([]*store.Snapshot, len(r.stores)),
		Vector: make([]uint64, len(r.stores)),
	}
	for i, st := range r.stores {
		s := st.Acquire()
		c.Snaps[i] = s
		c.Vector[i] = s.Epoch
	}
	c.GSN = r.gsn.Load()
	return c
}

// Release unpins every shard snapshot of the cut.
func (c *Cut) Release() {
	for _, s := range c.Snaps {
		s.Release()
	}
}

// Apply routes one delta through the cross-shard group commit. Semantics
// match store.Apply exactly: all-or-nothing across shards, structural
// errors and *access.ViolationError rejections leave every shard (and
// the global ID space) untouched, and on success the publishing cut is
// visible to AcquireCut before Apply returns.
func (r *Router) Apply(d *graph.Delta) (Result, error) {
	req := &routerReq{d: d, done: make(chan struct{})}
	r.qmu.Lock()
	r.queue = append(r.queue, req)
	r.qmu.Unlock()

	r.lead()

	<-req.done
	return req.res, req.err
}

// lead mirrors store.lead: every queued caller contends for the leader
// lock, the winner commits the whole queue.
func (r *Router) lead() {
	r.lmu.Lock()
	defer r.lmu.Unlock()
	r.qmu.Lock()
	batch := r.queue
	r.queue = nil
	r.qmu.Unlock()
	if len(batch) > 0 {
		r.commitBatch(batch)
	}
}

// commitBatch runs one cross-shard group commit: a transaction on every
// shard, per-delta split + stage + global verdict, per-shard envelope
// logging in shard order, one atomic vector publication.
func (r *Router) commitBatch(batch []*routerReq) {
	settled := false
	var txns []*store.Txn
	txnsOpen := false
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		// A panic mid-commit (a splitter/staging invariant violation) on
		// any shard poisons all of them: the batch never published, the
		// shadow states are suspect, and partial wedging would desync the
		// shards. Fail the waiters, wedge everything, re-panic.
		if txnsOpen {
			for _, t := range txns {
				_ = t.RewindLog()
				t.Wedge()
			}
		}
		if !settled {
			for _, req := range batch {
				if req.err == nil {
					req.err = fmt.Errorf("shard: commit panicked: %v", rec)
				}
				close(req.done)
			}
		}
		panic(rec)
	}()
	finish := func() {
		settled = true
		for _, req := range batch {
			close(req.done)
		}
	}

	n := r.m.Shards
	txns = make([]*store.Txn, n)
	for s := 0; s < n; s++ {
		t, err := r.stores[s].BeginTxn()
		if err != nil {
			for i := 0; i < s; i++ {
				txns[i].Abort()
			}
			for _, req := range batch {
				req.err = err
			}
			finish()
			return
		}
		txns[s] = t
	}
	txnsOpen = true
	graphs := func(s int) *graph.Graph { return txns[s].Graph() }
	schema := r.Schema()

	epoch := r.gsn.Load() + 1
	seq := r.seq.Load()
	nextID := graph.NodeID(r.nextID.Load())
	var accepted []*routerReq
	// stagedReqs[s] maps shard s's staged entries (in order) back to the
	// requests they belong to, for log-offset attribution.
	stagedReqs := make([][]*routerReq, n)
	nodeDelta, edgeDelta := 0, 0
	var totalRows uint64
	for _, req := range batch {
		if req.d.AddNodeIDs != nil {
			req.err = fmt.Errorf("shard: delta may not pin node IDs")
			r.rejErr.Add(1)
			continue
		}
		sp, err := splitDelta(req.d, r.m, graphs, nextID)
		if err != nil {
			req.err = err
			r.rejErr.Add(1)
			continue
		}
		sds := make([]*access.StagedDelta, len(sp.parts))
		for i, t := range sp.parts {
			sd, err := txns[t].Stage(sp.subs[t], seq+1, sp.parts)
			if err != nil {
				// splitDelta validated the delta globally; a shard
				// refusing its sub-delta means the simulation and the
				// shard state disagree.
				panic(fmt.Sprintf("shard: shard %d rejected pre-validated sub-delta: %v", t, err))
			}
			sds[i] = sd
		}
		if viols := r.checkGlobal(txns, schema, sds); len(viols) > 0 {
			for i := len(sp.parts) - 1; i >= 0; i-- {
				txns[sp.parts[i]].UnstageLast()
			}
			req.err = &access.ViolationError{Violations: viols}
			r.rejViol.Add(1)
			continue
		}
		seq++
		nextID += graph.NodeID(len(req.d.AddNodes))
		nodeDelta += sp.nodeDelta
		edgeDelta += sp.edgeDelta
		totalRows += uint64(sp.touched)
		req.res = Result{NewIDs: sp.newIDs, TouchedRows: sp.touched, LogOffsets: make([]int64, n)}
		for _, t := range sp.parts {
			stagedReqs[t] = append(stagedReqs[t], req)
		}
		accepted = append(accepted, req)
	}
	if len(accepted) == 0 {
		for s := n - 1; s >= 0; s-- {
			txns[s].Abort()
		}
		txnsOpen = false
		finish()
		return
	}

	// Durability: each participant logs its own envelope records, in
	// shard order. The batch is durable once every shard synced; a
	// failure part-way leaves a torn batch, which is rewound here (and,
	// after a crash, by recovery's reconciliation cut).
	for s := 0; s < n; s++ {
		offs, err := txns[s].Log(epoch)
		if err == nil && r.hookAfterShardLog != nil {
			err = r.hookAfterShardLog(s)
		}
		if err != nil {
			r.wedgeAll(txns, batch, err)
			txnsOpen = false
			settled = true
			for _, req := range batch {
				close(req.done)
			}
			return
		}
		for i, req := range stagedReqs[s] {
			req.res.LogOffsets[s] = offs[i]
		}
	}

	// Publication: every shard's Commit runs under the publication write
	// lock, so cuts observe either no shard or every shard at the new
	// epoch.
	r.mu.Lock()
	for s := 0; s < n; s++ {
		txns[s].Commit(epoch)
	}
	r.gsn.Store(epoch)
	vector := make([]uint64, n)
	for s := 0; s < n; s++ {
		vector[s] = r.stores[s].Epoch()
	}
	r.mu.Unlock()
	txnsOpen = false

	r.seq.Store(seq)
	r.nextID.Store(int64(nextID))
	r.nodes.Add(int64(nodeDelta))
	r.edges.Add(int64(edgeDelta))
	r.applied.Add(uint64(len(accepted)))
	r.batches.Add(1)
	r.touched.Add(totalRows)
	for _, req := range accepted {
		req.res.GSN = epoch
		req.res.Vector = vector
	}
	finish()
}

// checkGlobal evaluates the cardinality bounds for the entries a staged
// delta touched, summing each entry's size across the whole row
// partition — the sum is exactly the unsharded entry's size, so the
// verdict (and the reported worst counts) is bit-identical. At most one
// violation per constraint, in schema order, carrying the worst count.
func (r *Router) checkGlobal(txns []*store.Txn, schema *access.Schema, sds []*access.StagedDelta) []access.Violation {
	type key struct {
		ci  int
		key string
	}
	seen := make(map[key]struct{})
	worst := make(map[int]int)
	for _, sd := range sds {
		for _, te := range sd.TouchedEntries() {
			k := key{te.CIdx, te.Key}
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			total := 0
			for _, t := range txns {
				total += t.Index().EntryLen(te.CIdx, te.Key)
			}
			if total > schema.At(te.CIdx).N && total > worst[te.CIdx] {
				worst[te.CIdx] = total
			}
		}
	}
	var viols []access.Violation
	for ci := 0; ci < schema.Count(); ci++ {
		if w := worst[ci]; w > 0 {
			viols = append(viols, access.Violation{Constraint: schema.At(ci), Count: w})
		}
	}
	return viols
}

// wedgeAll handles a per-shard log failure mid-batch: rewind every
// record the batch already appended on any shard, wedge every store, and
// fail the accepted requests — mirroring the unsharded wedge path.
func (r *Router) wedgeAll(txns []*store.Txn, batch []*routerReq, cause error) {
	rewindNote := ""
	for _, t := range txns {
		if err := t.RewindLog(); err != nil && rewindNote == "" {
			rewindNote = fmt.Sprintf(" (log rewind also failed: %v; recovery may replay this batch)", err)
		}
	}
	for _, t := range txns {
		t.Wedge()
	}
	for _, req := range batch {
		if req.err == nil {
			req.err = fmt.Errorf("%w; update not committed: %v%s", store.ErrWedged, cause, rewindNote)
			req.res = Result{}
		}
	}
}

// Checkpoint checkpoints every shard's WAL at its current epoch. Shard
// checkpoints are independently consistent (each snapshot is a published
// shard epoch); recovery's sequence reconciliation re-aligns them.
func (r *Router) Checkpoint() error {
	var errs []error
	for s, st := range r.stores {
		if err := st.Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", s, err))
		}
	}
	return errors.Join(errs...)
}

// Close closes every shard store (drains writers) and their WALs.
func (r *Router) Close() {
	for _, st := range r.stores {
		st.Close()
	}
}

// CloseDirs closes the shard WAL directories (after Close + a final
// Checkpoint).
func (r *Router) CloseDirs() error {
	var errs []error
	for s, d := range r.dirs {
		if d == nil {
			continue
		}
		if err := d.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", s, err))
		}
	}
	return errors.Join(errs...)
}

// Stats gathers router-level and per-shard statistics.
func (r *Router) Stats() Stats {
	st := Stats{
		GSN:               r.gsn.Load(),
		Vector:            make([]uint64, len(r.stores)),
		Nodes:             r.nodes.Load(),
		Edges:             r.edges.Load(),
		NextID:            r.nextID.Load(),
		Applied:           r.applied.Load(),
		Batches:           r.batches.Load(),
		RejectedViolation: r.rejViol.Load(),
		RejectedError:     r.rejErr.Load(),
		TouchedRows:       r.touched.Load(),
		Shards:            make([]store.Stats, len(r.stores)),
	}
	r.qmu.Lock()
	st.QueueDepth = len(r.queue)
	r.qmu.Unlock()
	for i, s := range r.stores {
		st.Shards[i] = s.Stats()
		st.Vector[i] = st.Shards[i].Epoch
	}
	return st
}
