package graph

import "fmt"

// Delta is a batch of updates ΔG to a graph: node insertions, edge
// insertions, edge deletions, and node deletions (which also delete
// incident edges). It is the unit of change used by the access-schema
// incremental maintenance of §II ("Maintaining access constraints").
type Delta struct {
	// AddNodes lists nodes to insert.
	AddNodes []NodeSpec
	// AddEdges and DelEdges list directed edges to insert / remove. For
	// AddEdges, negative indices -1-k refer to AddNodes[k], so a delta can
	// wire up nodes it inserts itself.
	AddEdges [][2]NodeID
	DelEdges [][2]NodeID
	// DelNodes lists nodes to remove (with their incident edges).
	DelNodes []NodeID

	// AddNodeIDs, when non-nil, pins an explicit ID for each AddNodes entry
	// (same length, applied via AddNodeAt). The sharded runtime uses it to
	// replay globally assigned IDs into per-shard sub-deltas; it is an
	// in-memory field only and deliberately absent from the JSON codec, so
	// external clients cannot pick their own IDs.
	AddNodeIDs []NodeID

	// stagedNames holds label names the delta references that are not yet
	// in the shared interner. ReadDeltaJSON must not intern at decode time
	// — interning is permanent, so a well-formed delta that is later
	// rejected would leak its novel labels forever. Instead, AddNodes
	// entries with a novel label carry the sentinel stagedLabel(k)
	// pointing at stagedNames[k], and the write path calls ResolveLabels
	// at its serialized commit point, interning only on acceptance.
	stagedNames []string
}

// NodeSpec describes a node inserted by a Delta.
type NodeSpec struct {
	Label Label
	Value Value
}

// stagedLabel encodes a reference to the k-th entry of Delta.stagedNames:
// a label the delta introduces that the interner does not hold yet. The
// encoding starts at -2 so it can never collide with NoLabel (-1), and a
// staged delta is unmistakable anywhere a real Label is expected —
// applying one without ResolveLabels fails loudly instead of inserting
// garbage labels.
func stagedLabel(k int) Label { return Label(-2 - k) }

// isStagedLabel reports whether l encodes a staged-name reference, and if
// so which index.
func isStagedLabel(l Label) (k int, ok bool) {
	if l <= -2 {
		return int(-l) - 2, true
	}
	return 0, false
}

// HasStagedLabels reports whether the delta references label names not
// yet committed to the interner (see ResolveLabels).
func (d *Delta) HasStagedLabels() bool { return len(d.stagedNames) > 0 }

// internOrStage resolves a label name against in without growing it:
// known names resolve to their Label, novel ones are staged on the delta
// (deduplicated) and referenced through a stagedLabel sentinel.
func (d *Delta) internOrStage(name string, in *Interner) Label {
	if l, ok := in.Lookup(name); ok {
		return l
	}
	for k, s := range d.stagedNames {
		if s == name {
			return stagedLabel(k)
		}
	}
	d.stagedNames = append(d.stagedNames, name)
	return stagedLabel(len(d.stagedNames) - 1)
}

// ResolveLabels rewrites every staged label reference to the final Label
// it will have once committed, predicting the values the interner will
// assign. It MUST run under the serialization that guards all interner
// growth (the store's writer lock / the router's leader) — the
// prediction assumes no concurrent Intern of a novel name. The caller
// then decides the delta's fate: commit interns the novel names
// (panicking if any prediction was violated — an invariant breach, not
// an input error), rollback restores the staged sentinels so the delta
// can be resolved again later. Exactly one of the two must be called
// before the serialization is released. A delta with nothing staged
// returns no-op funcs.
func (d *Delta) ResolveLabels(in *Interner) (commit, rollback func(), err error) {
	if len(d.stagedNames) == 0 {
		// Still guard against dangling sentinels: a sentinel without a
		// staged name cannot ever resolve.
		for i := range d.AddNodes {
			if k, ok := isStagedLabel(d.AddNodes[i].Label); ok {
				return nil, nil, fmt.Errorf("graph: delta references staged label %d but stages no names", k)
			}
		}
		nop := func() {}
		return nop, nop, nil
	}
	base := Label(in.Len())
	resolved := make([]Label, len(d.stagedNames))
	var novel []string
	for k, name := range d.stagedNames {
		if l, ok := in.Lookup(name); ok {
			// Another accepted delta committed this name since decode.
			resolved[k] = l
			continue
		}
		resolved[k] = base + Label(len(novel))
		novel = append(novel, name)
	}
	var idxs []int
	var olds []Label
	for i := range d.AddNodes {
		k, ok := isStagedLabel(d.AddNodes[i].Label)
		if !ok {
			continue
		}
		if k >= len(resolved) {
			for j, pi := range idxs { // undo partial rewrite
				d.AddNodes[pi].Label = olds[j]
			}
			return nil, nil, fmt.Errorf("graph: staged label reference %d out of range (%d staged)", k, len(d.stagedNames))
		}
		idxs = append(idxs, i)
		olds = append(olds, d.AddNodes[i].Label)
		d.AddNodes[i].Label = resolved[k]
	}
	staged := d.stagedNames
	d.stagedNames = nil
	commit = func() {
		for j, name := range novel {
			if got, want := in.Intern(name), base+Label(j); got != want {
				panic(fmt.Sprintf("graph: staged label %q interned as %d, predicted %d (interner grew outside the commit serialization)", name, got, want))
			}
		}
	}
	rollback = func() {
		for j, i := range idxs {
			d.AddNodes[i].Label = olds[j]
		}
		d.stagedNames = staged
	}
	return commit, rollback, nil
}

// NewNodeRef returns the AddEdges endpoint encoding for the k-th node of
// Delta.AddNodes.
func NewNodeRef(k int) NodeID { return NodeID(-1 - k) }

// IsNewNodeRef reports whether id encodes a reference to a delta-inserted
// node, and if so which index.
func IsNewNodeRef(id NodeID) (k int, ok bool) {
	if id < 0 {
		return int(-id) - 1, true
	}
	return 0, false
}

// Touched returns the set of pre-existing nodes whose neighborhoods the
// delta affects: endpoints of inserted/deleted edges, deleted nodes, and
// their neighbors (NbG(ΔG) in the paper). It must be computed against the
// graph state *before* Apply.
func (d *Delta) Touched(g *Graph) map[NodeID]struct{} {
	touched := make(map[NodeID]struct{})
	addWithNeighbors := func(v NodeID) {
		if v < 0 || !g.Contains(v) {
			return
		}
		touched[v] = struct{}{}
		for _, w := range g.Neighbors(v) {
			touched[w] = struct{}{}
		}
	}
	for _, e := range d.AddEdges {
		addWithNeighbors(e[0])
		addWithNeighbors(e[1])
	}
	for _, e := range d.DelEdges {
		addWithNeighbors(e[0])
		addWithNeighbors(e[1])
	}
	for _, v := range d.DelNodes {
		addWithNeighbors(v)
	}
	return touched
}

// ChangedRows returns two views of the pre-existing nodes the delta
// affects, computed in one pass against the graph state *before* Apply
// (nodes the delta itself inserts are reported by Apply):
//
//   - changed: every node whose adjacency is modified — endpoints of
//     inserted/deleted edges, deleted nodes, and the neighbors of deleted
//     nodes (which lose the incident edges). Unlike Touched it does NOT
//     include neighbors of edge endpoints, whose adjacency is unchanged.
//   - direct ⊆ changed: the nodes the delta names explicitly — edge
//     endpoints and deleted nodes, without the deleted nodes' neighbors.
//     Index maintenance re-derives only these (a deleted node's neighbors
//     are covered by the entry purge instead).
func (d *Delta) ChangedRows(g *Graph) (changed, direct map[NodeID]struct{}) {
	changed = make(map[NodeID]struct{})
	direct = make(map[NodeID]struct{})
	add := func(v NodeID) {
		if v >= 0 && g.Contains(v) {
			changed[v] = struct{}{}
			direct[v] = struct{}{}
		}
	}
	for _, e := range d.AddEdges {
		add(e[0])
		add(e[1])
	}
	for _, e := range d.DelEdges {
		add(e[0])
		add(e[1])
	}
	for _, v := range d.DelNodes {
		if v < 0 || !g.Contains(v) {
			continue
		}
		add(v)
		for _, w := range g.Neighbors(v) {
			changed[w] = struct{}{}
		}
	}
	return changed, direct
}

// Clone returns an independent copy of the delta (all operation slices
// are copied; the elements are values).
func (d *Delta) Clone() *Delta {
	return &Delta{
		AddNodes:    append([]NodeSpec(nil), d.AddNodes...),
		AddEdges:    append([][2]NodeID(nil), d.AddEdges...),
		DelEdges:    append([][2]NodeID(nil), d.DelEdges...),
		DelNodes:    append([]NodeID(nil), d.DelNodes...),
		AddNodeIDs:  append([]NodeID(nil), d.AddNodeIDs...),
		stagedNames: append([]string(nil), d.stagedNames...),
	}
}

// Empty reports whether the delta carries no operations.
func (d *Delta) Empty() bool {
	return len(d.AddNodes) == 0 && len(d.AddEdges) == 0 &&
		len(d.DelEdges) == 0 && len(d.DelNodes) == 0
}

// Size returns the number of operations in the delta (|ΔG|).
func (d *Delta) Size() int {
	return len(d.AddNodes) + len(d.AddEdges) + len(d.DelEdges) + len(d.DelNodes)
}

// Apply applies the delta to g in the order: node inserts, edge inserts,
// edge deletes, node deletes. It returns the IDs assigned to AddNodes and
// the first error encountered (the graph may be partially updated on
// error; use ApplyLogged when that must not happen).
func (d *Delta) Apply(g *Graph) ([]NodeID, error) {
	ids, _, err := d.apply(g, nil)
	return ids, err
}

// ApplyLogged is Apply with an undo log: every mutation performed on g is
// recorded in the returned Undo, whose Revert restores g to its exact
// pre-Apply state — including the node-ID space, so a reverted delta
// leaves no tombstones and does not shift future AddNode IDs. The Undo is
// valid (and must be used, if at all) before any further mutation of g.
// On error the caller decides: Revert for all-or-nothing semantics, or
// keep the partial application.
func (d *Delta) ApplyLogged(g *Graph) ([]NodeID, *Undo, error) {
	u := &Undo{}
	ids, _, err := d.apply(g, u)
	return ids, u, err
}

func (d *Delta) apply(g *Graph, u *Undo) ([]NodeID, *Undo, error) {
	if d.AddNodeIDs != nil && len(d.AddNodeIDs) != len(d.AddNodes) {
		return nil, u, fmt.Errorf("graph: delta has %d AddNodeIDs for %d AddNodes", len(d.AddNodeIDs), len(d.AddNodes))
	}
	newIDs := make([]NodeID, len(d.AddNodes))
	for i, spec := range d.AddNodes {
		if spec.Label < 0 {
			return nil, u, fmt.Errorf("graph: AddNodes[%d] has unresolved label %d (ResolveLabels not run)", i, spec.Label)
		}
		if d.AddNodeIDs == nil {
			newIDs[i] = g.AddNode(spec.Label, spec.Value)
			if u != nil {
				u.log = append(u.log, undoOp{kind: undoAddNode, v: newIDs[i]})
			}
			continue
		}
		id := d.AddNodeIDs[i]
		preLen := len(g.labels)
		if err := g.AddNodeAt(id, spec.Label, spec.Value); err != nil {
			return newIDs, u, err
		}
		newIDs[i] = id
		if u != nil {
			if int(id) < preLen {
				u.log = append(u.log, undoOp{kind: undoReviveNode, v: id})
			} else {
				u.log = append(u.log, undoOp{kind: undoAddNodeAt, v: id, preLen: preLen})
			}
		}
	}
	resolve := func(id NodeID) NodeID {
		if k, ok := IsNewNodeRef(id); ok {
			if k < len(newIDs) {
				return newIDs[k]
			}
			return InvalidNode
		}
		return id
	}
	for _, e := range d.AddEdges {
		from, to := resolve(e[0]), resolve(e[1])
		if err := g.AddEdge(from, to); err != nil {
			if err == ErrDupEdge {
				continue // not logged: the edge was not inserted by us
			}
			return newIDs, u, err
		}
		if u != nil {
			u.log = append(u.log, undoOp{kind: undoAddEdge, v: from, w: to})
		}
	}
	for _, e := range d.DelEdges {
		if err := g.RemoveEdge(e[0], e[1]); err != nil {
			return newIDs, u, err
		}
		if u != nil {
			u.log = append(u.log, undoOp{kind: undoDelEdge, v: e[0], w: e[1]})
		}
	}
	for _, v := range d.DelNodes {
		var op undoOp
		if u != nil {
			// Capture the node at deletion time: label, value, and the
			// adjacency RemoveNode is about to tear down.
			op = undoOp{
				kind:  undoDelNode,
				v:     v,
				label: g.LabelOf(v),
				value: g.ValueOf(v),
				out:   append([]NodeID(nil), g.Out(v)...),
				in:    append([]NodeID(nil), g.In(v)...),
			}
		}
		if err := g.RemoveNode(v); err != nil {
			return newIDs, u, err
		}
		if u != nil {
			u.log = append(u.log, op)
		}
	}
	return newIDs, u, nil
}

type undoKind uint8

const (
	undoAddNode undoKind = iota
	undoAddEdge
	undoDelEdge
	undoDelNode
	undoReviveNode // AddNodeAt revived an in-range tombstone
	undoAddNodeAt  // AddNodeAt extended the ID space (preLen = cap before)
)

type undoOp struct {
	kind   undoKind
	v, w   NodeID
	preLen int
	label  Label
	value  Value
	out    []NodeID
	in     []NodeID
}

// Undo is the mutation log of one ApplyLogged call. Revert replays it
// backwards, restoring the graph bit-for-bit: deleted nodes are revived
// under their original IDs with their captured adjacency, and inserted
// nodes are dropped from the end of the ID space (no tombstones), so the
// graph's future ID assignment is unaffected by the reverted delta.
type Undo struct {
	log []undoOp
}

// Revert undoes every logged mutation, newest first. The graph must not
// have been mutated since the ApplyLogged that produced this Undo; any
// failure to restore indicates such outside interference and panics.
func (u *Undo) Revert(g *Graph) {
	for i := len(u.log) - 1; i >= 0; i-- {
		op := u.log[i]
		switch op.kind {
		case undoAddNode:
			// All edges touching the node were logged after its insertion
			// and are already reverted, so it is edge-free by now.
			g.dropLastNode(op.v)
		case undoReviveNode:
			g.retireRevivedNode(op.v)
		case undoAddNodeAt:
			g.truncateTo(op.v, op.preLen)
		case undoAddEdge:
			if err := g.RemoveEdge(op.v, op.w); err != nil {
				panic(fmt.Sprintf("graph: revert add-edge (%d,%d): %v", op.v, op.w, err))
			}
		case undoDelEdge:
			if err := g.AddEdge(op.v, op.w); err != nil {
				panic(fmt.Sprintf("graph: revert del-edge (%d,%d): %v", op.v, op.w, err))
			}
		case undoDelNode:
			g.restoreNode(op.v, op.label, op.value)
			// Shared edges between two deleted nodes are captured on both
			// sides; the duplicate re-insertion is skipped.
			for _, w := range op.out {
				if err := g.AddEdge(op.v, w); err != nil && err != ErrDupEdge {
					panic(fmt.Sprintf("graph: revert del-node %d out-edge to %d: %v", op.v, w, err))
				}
			}
			for _, w := range op.in {
				if err := g.AddEdge(w, op.v); err != nil && err != ErrDupEdge {
					panic(fmt.Sprintf("graph: revert del-node %d in-edge from %d: %v", op.v, w, err))
				}
			}
		}
	}
	u.log = nil
}
