package graph

// Delta is a batch of updates ΔG to a graph: node insertions, edge
// insertions, edge deletions, and node deletions (which also delete
// incident edges). It is the unit of change used by the access-schema
// incremental maintenance of §II ("Maintaining access constraints").
type Delta struct {
	// AddNodes lists nodes to insert.
	AddNodes []NodeSpec
	// AddEdges and DelEdges list directed edges to insert / remove. For
	// AddEdges, negative indices -1-k refer to AddNodes[k], so a delta can
	// wire up nodes it inserts itself.
	AddEdges [][2]NodeID
	DelEdges [][2]NodeID
	// DelNodes lists nodes to remove (with their incident edges).
	DelNodes []NodeID
}

// NodeSpec describes a node inserted by a Delta.
type NodeSpec struct {
	Label Label
	Value Value
}

// NewNodeRef returns the AddEdges endpoint encoding for the k-th node of
// Delta.AddNodes.
func NewNodeRef(k int) NodeID { return NodeID(-1 - k) }

// IsNewNodeRef reports whether id encodes a reference to a delta-inserted
// node, and if so which index.
func IsNewNodeRef(id NodeID) (k int, ok bool) {
	if id < 0 {
		return int(-id) - 1, true
	}
	return 0, false
}

// Touched returns the set of pre-existing nodes whose neighborhoods the
// delta affects: endpoints of inserted/deleted edges, deleted nodes, and
// their neighbors (NbG(ΔG) in the paper). It must be computed against the
// graph state *before* Apply.
func (d *Delta) Touched(g *Graph) map[NodeID]struct{} {
	touched := make(map[NodeID]struct{})
	addWithNeighbors := func(v NodeID) {
		if v < 0 || !g.Contains(v) {
			return
		}
		touched[v] = struct{}{}
		for _, w := range g.Neighbors(v) {
			touched[w] = struct{}{}
		}
	}
	for _, e := range d.AddEdges {
		addWithNeighbors(e[0])
		addWithNeighbors(e[1])
	}
	for _, e := range d.DelEdges {
		addWithNeighbors(e[0])
		addWithNeighbors(e[1])
	}
	for _, v := range d.DelNodes {
		addWithNeighbors(v)
	}
	return touched
}

// Apply applies the delta to g in the order: node inserts, edge inserts,
// edge deletes, node deletes. It returns the IDs assigned to AddNodes and
// the first error encountered (the graph may be partially updated on
// error).
func (d *Delta) Apply(g *Graph) ([]NodeID, error) {
	newIDs := make([]NodeID, len(d.AddNodes))
	for i, spec := range d.AddNodes {
		newIDs[i] = g.AddNode(spec.Label, spec.Value)
	}
	resolve := func(id NodeID) NodeID {
		if k, ok := IsNewNodeRef(id); ok {
			if k < len(newIDs) {
				return newIDs[k]
			}
			return InvalidNode
		}
		return id
	}
	for _, e := range d.AddEdges {
		from, to := resolve(e[0]), resolve(e[1])
		if err := g.AddEdge(from, to); err != nil && err != ErrDupEdge {
			return newIDs, err
		}
	}
	for _, e := range d.DelEdges {
		if err := g.RemoveEdge(e[0], e[1]); err != nil {
			return newIDs, err
		}
	}
	for _, v := range d.DelNodes {
		if err := g.RemoveNode(v); err != nil {
			return newIDs, err
		}
	}
	return newIDs, nil
}
