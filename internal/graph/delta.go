package graph

import "fmt"

// Delta is a batch of updates ΔG to a graph: node insertions, edge
// insertions, edge deletions, and node deletions (which also delete
// incident edges). It is the unit of change used by the access-schema
// incremental maintenance of §II ("Maintaining access constraints").
type Delta struct {
	// AddNodes lists nodes to insert.
	AddNodes []NodeSpec
	// AddEdges and DelEdges list directed edges to insert / remove. For
	// AddEdges, negative indices -1-k refer to AddNodes[k], so a delta can
	// wire up nodes it inserts itself.
	AddEdges [][2]NodeID
	DelEdges [][2]NodeID
	// DelNodes lists nodes to remove (with their incident edges).
	DelNodes []NodeID

	// AddNodeIDs, when non-nil, pins an explicit ID for each AddNodes entry
	// (same length, applied via AddNodeAt). The sharded runtime uses it to
	// replay globally assigned IDs into per-shard sub-deltas; it is an
	// in-memory field only and deliberately absent from the JSON codec, so
	// external clients cannot pick their own IDs.
	AddNodeIDs []NodeID
}

// NodeSpec describes a node inserted by a Delta.
type NodeSpec struct {
	Label Label
	Value Value
}

// NewNodeRef returns the AddEdges endpoint encoding for the k-th node of
// Delta.AddNodes.
func NewNodeRef(k int) NodeID { return NodeID(-1 - k) }

// IsNewNodeRef reports whether id encodes a reference to a delta-inserted
// node, and if so which index.
func IsNewNodeRef(id NodeID) (k int, ok bool) {
	if id < 0 {
		return int(-id) - 1, true
	}
	return 0, false
}

// Touched returns the set of pre-existing nodes whose neighborhoods the
// delta affects: endpoints of inserted/deleted edges, deleted nodes, and
// their neighbors (NbG(ΔG) in the paper). It must be computed against the
// graph state *before* Apply.
func (d *Delta) Touched(g *Graph) map[NodeID]struct{} {
	touched := make(map[NodeID]struct{})
	addWithNeighbors := func(v NodeID) {
		if v < 0 || !g.Contains(v) {
			return
		}
		touched[v] = struct{}{}
		for _, w := range g.Neighbors(v) {
			touched[w] = struct{}{}
		}
	}
	for _, e := range d.AddEdges {
		addWithNeighbors(e[0])
		addWithNeighbors(e[1])
	}
	for _, e := range d.DelEdges {
		addWithNeighbors(e[0])
		addWithNeighbors(e[1])
	}
	for _, v := range d.DelNodes {
		addWithNeighbors(v)
	}
	return touched
}

// ChangedRows returns two views of the pre-existing nodes the delta
// affects, computed in one pass against the graph state *before* Apply
// (nodes the delta itself inserts are reported by Apply):
//
//   - changed: every node whose adjacency is modified — endpoints of
//     inserted/deleted edges, deleted nodes, and the neighbors of deleted
//     nodes (which lose the incident edges). Unlike Touched it does NOT
//     include neighbors of edge endpoints, whose adjacency is unchanged.
//   - direct ⊆ changed: the nodes the delta names explicitly — edge
//     endpoints and deleted nodes, without the deleted nodes' neighbors.
//     Index maintenance re-derives only these (a deleted node's neighbors
//     are covered by the entry purge instead).
func (d *Delta) ChangedRows(g *Graph) (changed, direct map[NodeID]struct{}) {
	changed = make(map[NodeID]struct{})
	direct = make(map[NodeID]struct{})
	add := func(v NodeID) {
		if v >= 0 && g.Contains(v) {
			changed[v] = struct{}{}
			direct[v] = struct{}{}
		}
	}
	for _, e := range d.AddEdges {
		add(e[0])
		add(e[1])
	}
	for _, e := range d.DelEdges {
		add(e[0])
		add(e[1])
	}
	for _, v := range d.DelNodes {
		if v < 0 || !g.Contains(v) {
			continue
		}
		add(v)
		for _, w := range g.Neighbors(v) {
			changed[w] = struct{}{}
		}
	}
	return changed, direct
}

// Clone returns an independent copy of the delta (all operation slices
// are copied; the elements are values).
func (d *Delta) Clone() *Delta {
	return &Delta{
		AddNodes:   append([]NodeSpec(nil), d.AddNodes...),
		AddEdges:   append([][2]NodeID(nil), d.AddEdges...),
		DelEdges:   append([][2]NodeID(nil), d.DelEdges...),
		DelNodes:   append([]NodeID(nil), d.DelNodes...),
		AddNodeIDs: append([]NodeID(nil), d.AddNodeIDs...),
	}
}

// Empty reports whether the delta carries no operations.
func (d *Delta) Empty() bool {
	return len(d.AddNodes) == 0 && len(d.AddEdges) == 0 &&
		len(d.DelEdges) == 0 && len(d.DelNodes) == 0
}

// Size returns the number of operations in the delta (|ΔG|).
func (d *Delta) Size() int {
	return len(d.AddNodes) + len(d.AddEdges) + len(d.DelEdges) + len(d.DelNodes)
}

// Apply applies the delta to g in the order: node inserts, edge inserts,
// edge deletes, node deletes. It returns the IDs assigned to AddNodes and
// the first error encountered (the graph may be partially updated on
// error; use ApplyLogged when that must not happen).
func (d *Delta) Apply(g *Graph) ([]NodeID, error) {
	ids, _, err := d.apply(g, nil)
	return ids, err
}

// ApplyLogged is Apply with an undo log: every mutation performed on g is
// recorded in the returned Undo, whose Revert restores g to its exact
// pre-Apply state — including the node-ID space, so a reverted delta
// leaves no tombstones and does not shift future AddNode IDs. The Undo is
// valid (and must be used, if at all) before any further mutation of g.
// On error the caller decides: Revert for all-or-nothing semantics, or
// keep the partial application.
func (d *Delta) ApplyLogged(g *Graph) ([]NodeID, *Undo, error) {
	u := &Undo{}
	ids, _, err := d.apply(g, u)
	return ids, u, err
}

func (d *Delta) apply(g *Graph, u *Undo) ([]NodeID, *Undo, error) {
	if d.AddNodeIDs != nil && len(d.AddNodeIDs) != len(d.AddNodes) {
		return nil, u, fmt.Errorf("graph: delta has %d AddNodeIDs for %d AddNodes", len(d.AddNodeIDs), len(d.AddNodes))
	}
	newIDs := make([]NodeID, len(d.AddNodes))
	for i, spec := range d.AddNodes {
		if d.AddNodeIDs == nil {
			newIDs[i] = g.AddNode(spec.Label, spec.Value)
			if u != nil {
				u.log = append(u.log, undoOp{kind: undoAddNode, v: newIDs[i]})
			}
			continue
		}
		id := d.AddNodeIDs[i]
		preLen := len(g.labels)
		if err := g.AddNodeAt(id, spec.Label, spec.Value); err != nil {
			return newIDs, u, err
		}
		newIDs[i] = id
		if u != nil {
			if int(id) < preLen {
				u.log = append(u.log, undoOp{kind: undoReviveNode, v: id})
			} else {
				u.log = append(u.log, undoOp{kind: undoAddNodeAt, v: id, preLen: preLen})
			}
		}
	}
	resolve := func(id NodeID) NodeID {
		if k, ok := IsNewNodeRef(id); ok {
			if k < len(newIDs) {
				return newIDs[k]
			}
			return InvalidNode
		}
		return id
	}
	for _, e := range d.AddEdges {
		from, to := resolve(e[0]), resolve(e[1])
		if err := g.AddEdge(from, to); err != nil {
			if err == ErrDupEdge {
				continue // not logged: the edge was not inserted by us
			}
			return newIDs, u, err
		}
		if u != nil {
			u.log = append(u.log, undoOp{kind: undoAddEdge, v: from, w: to})
		}
	}
	for _, e := range d.DelEdges {
		if err := g.RemoveEdge(e[0], e[1]); err != nil {
			return newIDs, u, err
		}
		if u != nil {
			u.log = append(u.log, undoOp{kind: undoDelEdge, v: e[0], w: e[1]})
		}
	}
	for _, v := range d.DelNodes {
		var op undoOp
		if u != nil {
			// Capture the node at deletion time: label, value, and the
			// adjacency RemoveNode is about to tear down.
			op = undoOp{
				kind:  undoDelNode,
				v:     v,
				label: g.LabelOf(v),
				value: g.ValueOf(v),
				out:   append([]NodeID(nil), g.Out(v)...),
				in:    append([]NodeID(nil), g.In(v)...),
			}
		}
		if err := g.RemoveNode(v); err != nil {
			return newIDs, u, err
		}
		if u != nil {
			u.log = append(u.log, op)
		}
	}
	return newIDs, u, nil
}

type undoKind uint8

const (
	undoAddNode undoKind = iota
	undoAddEdge
	undoDelEdge
	undoDelNode
	undoReviveNode // AddNodeAt revived an in-range tombstone
	undoAddNodeAt  // AddNodeAt extended the ID space (preLen = cap before)
)

type undoOp struct {
	kind   undoKind
	v, w   NodeID
	preLen int
	label  Label
	value  Value
	out    []NodeID
	in     []NodeID
}

// Undo is the mutation log of one ApplyLogged call. Revert replays it
// backwards, restoring the graph bit-for-bit: deleted nodes are revived
// under their original IDs with their captured adjacency, and inserted
// nodes are dropped from the end of the ID space (no tombstones), so the
// graph's future ID assignment is unaffected by the reverted delta.
type Undo struct {
	log []undoOp
}

// Revert undoes every logged mutation, newest first. The graph must not
// have been mutated since the ApplyLogged that produced this Undo; any
// failure to restore indicates such outside interference and panics.
func (u *Undo) Revert(g *Graph) {
	for i := len(u.log) - 1; i >= 0; i-- {
		op := u.log[i]
		switch op.kind {
		case undoAddNode:
			// All edges touching the node were logged after its insertion
			// and are already reverted, so it is edge-free by now.
			g.dropLastNode(op.v)
		case undoReviveNode:
			g.retireRevivedNode(op.v)
		case undoAddNodeAt:
			g.truncateTo(op.v, op.preLen)
		case undoAddEdge:
			if err := g.RemoveEdge(op.v, op.w); err != nil {
				panic(fmt.Sprintf("graph: revert add-edge (%d,%d): %v", op.v, op.w, err))
			}
		case undoDelEdge:
			if err := g.AddEdge(op.v, op.w); err != nil {
				panic(fmt.Sprintf("graph: revert del-edge (%d,%d): %v", op.v, op.w, err))
			}
		case undoDelNode:
			g.restoreNode(op.v, op.label, op.value)
			// Shared edges between two deleted nodes are captured on both
			// sides; the duplicate re-insertion is skipped.
			for _, w := range op.out {
				if err := g.AddEdge(op.v, w); err != nil && err != ErrDupEdge {
					panic(fmt.Sprintf("graph: revert del-node %d out-edge to %d: %v", op.v, w, err))
				}
			}
			for _, w := range op.in {
				if err := g.AddEdge(w, op.v); err != nil && err != ErrDupEdge {
					panic(fmt.Sprintf("graph: revert del-node %d in-edge from %d: %v", op.v, w, err))
				}
			}
		}
	}
	u.log = nil
}
