// Package graph provides the data-graph substrate of the reproduction of
// "Making Pattern Queries Bounded in Big Graphs" (Cao et al., ICDE 2015):
// node-labeled directed graphs G = (V, E, f, ν) with attribute values,
// label indexing, subgraph extraction, updates, and serialization.
//
// Per the paper's remark in §II, edges carry no labels; a labeled edge can
// be modeled by inserting a dummy node carrying the edge's label (see
// InsertEdgeNode).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node of a Graph. IDs are dense indices assigned by
// AddNode in insertion order; removed nodes leave tombstones so IDs of live
// nodes remain stable.
type NodeID int

// InvalidNode is returned by lookups that find no node.
const InvalidNode NodeID = -1

// Errors returned by graph mutators and accessors.
var (
	ErrNoSuchNode    = errors.New("graph: no such node")
	ErrNoSuchEdge    = errors.New("graph: no such edge")
	ErrDupEdge       = errors.New("graph: duplicate edge")
	ErrNodeTombstone = errors.New("graph: node was removed")
)

// edgeKey packs a directed edge into one word so the edges map hashes and
// compares a single uint64 instead of a 16-byte struct — a measurable win
// on the HasEdge/AddEdge hot paths. Node IDs are dense indices, so 32 bits
// per endpoint is ample.
type edgeKey uint64

func packEdge(from, to NodeID) edgeKey {
	return edgeKey(uint64(uint32(from))<<32 | uint64(uint32(to)))
}

// Graph is a node-labeled directed graph G = (V, E, f, ν). The zero Graph
// is not ready to use; call New.
//
// Graph is not safe for concurrent mutation; concurrent readers are fine.
type Graph struct {
	interner *Interner

	labels []Label // f(v); NoLabel marks a tombstone
	values []Value // ν(v)

	out [][]NodeID
	in  [][]NodeID

	byLabel map[Label][]NodeID // live nodes per label, ascending ID order
	edges   map[edgeKey]struct{}

	numNodes int // live nodes
	numEdges int
}

// New returns an empty graph sharing the given label interner. If in is
// nil a fresh interner is created.
func New(in *Interner) *Graph {
	return NewWithCapacity(in, 0)
}

// NewWithCapacity is New with room pre-reserved for nodeCap nodes, so
// builders that know the final size (subgraph extraction, generators)
// avoid repeated slice growth.
func NewWithCapacity(in *Interner, nodeCap int) *Graph {
	if in == nil {
		in = NewInterner()
	}
	g := &Graph{
		interner: in,
		byLabel:  make(map[Label][]NodeID),
		edges:    make(map[edgeKey]struct{}),
	}
	if nodeCap > 0 {
		g.labels = make([]Label, 0, nodeCap)
		g.values = make([]Value, 0, nodeCap)
		g.out = make([][]NodeID, 0, nodeCap)
		g.in = make([][]NodeID, 0, nodeCap)
	}
	return g
}

// Interner returns the label interner shared by this graph.
func (g *Graph) Interner() *Interner { return g.interner }

// AddNode inserts a node with label l and attribute value v, returning its
// ID.
func (g *Graph) AddNode(l Label, v Value) NodeID {
	id := NodeID(len(g.labels))
	g.labels = append(g.labels, l)
	g.values = append(g.values, v)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.byLabel[l] = append(g.byLabel[l], id)
	g.numNodes++
	return id
}

// AddNodeNamed interns the label name and inserts a node.
func (g *Graph) AddNodeNamed(label string, v Value) NodeID {
	return g.AddNode(g.interner.Intern(label), v)
}

// AddEdge inserts the directed edge (from, to). It returns ErrDupEdge if
// the edge already exists and ErrNoSuchNode if either endpoint is invalid.
func (g *Graph) AddEdge(from, to NodeID) error {
	if !g.valid(from) || !g.valid(to) {
		return ErrNoSuchNode
	}
	k := packEdge(from, to)
	if _, ok := g.edges[k]; ok {
		return ErrDupEdge
	}
	g.edges[k] = struct{}{}
	g.out[from] = append(g.out[from], to)
	g.in[to] = append(g.in[to], from)
	g.numEdges++
	return nil
}

// MustAddEdge is AddEdge, panicking on error; for generators and tests.
func (g *Graph) MustAddEdge(from, to NodeID) {
	if err := g.AddEdge(from, to); err != nil {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d): %v", from, to, err))
	}
}

// AddEdgeIfAbsent inserts the edge unless it exists; it reports whether an
// insertion happened.
func (g *Graph) AddEdgeIfAbsent(from, to NodeID) bool {
	err := g.AddEdge(from, to)
	return err == nil
}

// RemoveEdge deletes the directed edge (from, to).
func (g *Graph) RemoveEdge(from, to NodeID) error {
	k := packEdge(from, to)
	if _, ok := g.edges[k]; !ok {
		return ErrNoSuchEdge
	}
	delete(g.edges, k)
	g.out[from] = removeID(g.out[from], to)
	g.in[to] = removeID(g.in[to], from)
	g.numEdges--
	return nil
}

// RemoveNode deletes node v and all its incident edges. The ID becomes a
// tombstone and is never reused.
func (g *Graph) RemoveNode(v NodeID) error {
	if !g.valid(v) {
		return ErrNoSuchNode
	}
	for _, w := range append([]NodeID(nil), g.out[v]...) {
		_ = g.RemoveEdge(v, w)
	}
	for _, w := range append([]NodeID(nil), g.in[v]...) {
		_ = g.RemoveEdge(w, v)
	}
	l := g.labels[v]
	g.byLabel[l] = removeIDOrdered(g.byLabel[l], v)
	if len(g.byLabel[l]) == 0 {
		delete(g.byLabel, l)
	}
	g.labels[v] = NoLabel
	g.values[v] = Value{}
	g.out[v] = nil
	g.in[v] = nil
	g.numNodes--
	return nil
}

// AddNodeAt inserts a node under an explicit, caller-assigned ID — the
// sharded runtime's counterpart of AddNode: node IDs are assigned once,
// globally, and every shard graph that materializes the node (as owner or
// as a remote-endpoint stub) must file it under the same ID. An ID at or
// beyond the current cap extends the ID space, padding the gap with
// tombstones; an in-range tombstone ID revives the slot (shard graphs use
// tombstones for the IDs they do not hold, so a stub for an older node
// lands on one). Inserting over a live node is an error.
func (g *Graph) AddNodeAt(id NodeID, l Label, v Value) error {
	if id < 0 {
		return ErrNoSuchNode
	}
	if int(id) < len(g.labels) {
		if g.labels[id] != NoLabel {
			return fmt.Errorf("graph: AddNodeAt(%d): ID already live", id)
		}
		g.labels[id] = l
		g.values[id] = v
		g.byLabel[l] = insertIDSorted(g.byLabel[l], id)
		g.numNodes++
		return nil
	}
	for NodeID(len(g.labels)) < id {
		g.labels = append(g.labels, NoLabel)
		g.values = append(g.values, Value{})
		g.out = append(g.out, nil)
		g.in = append(g.in, nil)
	}
	g.labels = append(g.labels, l)
	g.values = append(g.values, v)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.byLabel[l] = append(g.byLabel[l], id) // id is the new maximum: append keeps the row sorted
	g.numNodes++
	return nil
}

// retireRevivedNode re-tombstones a node revived by AddNodeAt. The node
// must be edge-free; it exists solely for Undo.Revert.
func (g *Graph) retireRevivedNode(v NodeID) {
	if !g.valid(v) {
		panic(fmt.Sprintf("graph: retireRevivedNode(%d): not a live node", v))
	}
	if len(g.out[v]) != 0 || len(g.in[v]) != 0 {
		panic(fmt.Sprintf("graph: retireRevivedNode(%d): node still has edges", v))
	}
	l := g.labels[v]
	g.byLabel[l] = removeIDOrdered(g.byLabel[l], v)
	if len(g.byLabel[l]) == 0 {
		delete(g.byLabel, l)
	}
	g.labels[v] = NoLabel
	g.values[v] = Value{}
	g.numNodes--
}

// truncateTo undoes an ID-space extension by AddNodeAt: v must be the
// topmost live node, preLen the cap before its insertion, and every slot
// in [preLen, v) a gap tombstone. It exists solely for Undo.Revert.
func (g *Graph) truncateTo(v NodeID, preLen int) {
	if int(v) != len(g.labels)-1 || !g.valid(v) {
		panic(fmt.Sprintf("graph: truncateTo(%d): not the topmost live node", v))
	}
	if len(g.out[v]) != 0 || len(g.in[v]) != 0 {
		panic(fmt.Sprintf("graph: truncateTo(%d): node still has edges", v))
	}
	for i := preLen; i < int(v); i++ {
		if g.labels[i] != NoLabel {
			panic(fmt.Sprintf("graph: truncateTo(%d): slot %d not a gap tombstone", v, i))
		}
	}
	l := g.labels[v]
	g.byLabel[l] = removeID(g.byLabel[l], v)
	if len(g.byLabel[l]) == 0 {
		delete(g.byLabel, l)
	}
	g.labels = g.labels[:preLen]
	g.values = g.values[:preLen]
	g.out = g.out[:preLen]
	g.in = g.in[:preLen]
	g.numNodes--
}

// restoreNode revives tombstone v with its original label and value. It is
// the inverse of RemoveNode minus the incident edges (the caller re-adds
// those) and exists solely for Undo.Revert.
func (g *Graph) restoreNode(v NodeID, l Label, val Value) {
	if g.valid(v) || v < 0 || int(v) >= len(g.labels) {
		panic(fmt.Sprintf("graph: restoreNode(%d): not a tombstone", v))
	}
	g.labels[v] = l
	g.values[v] = val
	g.byLabel[l] = insertIDSorted(g.byLabel[l], v)
	g.numNodes++
}

// dropLastNode removes the most recently added node, shrinking the ID
// space so a reverted insertion leaves no tombstone behind (future AddNode
// calls must assign the same IDs as if the insertion never happened). The
// node must be edge-free; it exists solely for Undo.Revert.
func (g *Graph) dropLastNode(v NodeID) {
	if int(v) != len(g.labels)-1 || !g.valid(v) {
		panic(fmt.Sprintf("graph: dropLastNode(%d): not the last live node", v))
	}
	if len(g.out[v]) != 0 || len(g.in[v]) != 0 {
		panic(fmt.Sprintf("graph: dropLastNode(%d): node still has edges", v))
	}
	l := g.labels[v]
	g.byLabel[l] = removeID(g.byLabel[l], v)
	if len(g.byLabel[l]) == 0 {
		delete(g.byLabel, l)
	}
	g.labels = g.labels[:v]
	g.values = g.values[:v]
	g.out = g.out[:v]
	g.in = g.in[:v]
	g.numNodes--
}

func removeID(s []NodeID, v NodeID) []NodeID {
	for i, x := range s {
		if x == v {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// removeIDOrdered deletes v from s preserving element order. byLabel rows
// use it (not the swap-remove above) to keep their ascending-ID invariant:
// the WAL snapshot codec rebuilds byLabel in ascending order, so a
// recovered instance enumerates label candidates exactly like the live one
// only if live rows stay sorted through deletions.
func removeIDOrdered(s []NodeID, v NodeID) []NodeID {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// insertIDSorted inserts v into ascending-sorted s. restoreNode uses it:
// a revived tombstone's ID is below later-added IDs, so a plain append
// would break the byLabel ordering invariant.
func insertIDSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func (g *Graph) valid(v NodeID) bool {
	return v >= 0 && int(v) < len(g.labels) && g.labels[v] != NoLabel
}

// Contains reports whether v is a live node of g.
func (g *Graph) Contains(v NodeID) bool { return g.valid(v) }

// HasEdge reports whether the directed edge (from, to) exists.
func (g *Graph) HasEdge(from, to NodeID) bool {
	_, ok := g.edges[packEdge(from, to)]
	return ok
}

// HasNeighbor reports whether v and w are neighbors in either direction.
func (g *Graph) HasNeighbor(v, w NodeID) bool {
	return g.HasEdge(v, w) || g.HasEdge(w, v)
}

// LabelOf returns f(v). It returns NoLabel for tombstones and out-of-range
// IDs.
func (g *Graph) LabelOf(v NodeID) Label {
	if v < 0 || int(v) >= len(g.labels) {
		return NoLabel
	}
	return g.labels[v]
}

// ValueOf returns ν(v).
func (g *Graph) ValueOf(v NodeID) Value {
	if !g.valid(v) {
		return Value{}
	}
	return g.values[v]
}

// SetValue replaces ν(v).
func (g *Graph) SetValue(v NodeID, val Value) error {
	if !g.valid(v) {
		return ErrNoSuchNode
	}
	g.values[v] = val
	return nil
}

// Out returns the out-neighbors of v. The returned slice is shared; do not
// mutate it.
func (g *Graph) Out(v NodeID) []NodeID {
	if !g.valid(v) {
		return nil
	}
	return g.out[v]
}

// In returns the in-neighbors of v. The returned slice is shared; do not
// mutate it.
func (g *Graph) In(v NodeID) []NodeID {
	if !g.valid(v) {
		return nil
	}
	return g.in[v]
}

// Neighbors returns the deduplicated union of in- and out-neighbors of v
// (the paper's neighbor relation is undirected).
func (g *Graph) Neighbors(v NodeID) []NodeID {
	if !g.valid(v) {
		return nil
	}
	res := make([]NodeID, 0, len(g.out[v])+len(g.in[v]))
	res = append(res, g.out[v]...)
	for _, w := range g.in[v] {
		if !g.HasEdge(v, w) { // already included via out
			res = append(res, w)
		}
	}
	return res
}

// Degree returns the number of distinct neighbors of v.
func (g *Graph) Degree(v NodeID) int { return len(g.Neighbors(v)) }

// NodesByLabel returns the live nodes labeled l. The returned slice is
// shared; do not mutate it.
func (g *Graph) NodesByLabel(l Label) []NodeID { return g.byLabel[l] }

// CountLabel returns the number of live nodes labeled l.
func (g *Graph) CountLabel(l Label) int { return len(g.byLabel[l]) }

// Labels returns the distinct labels present in g, sorted.
func (g *Graph) Labels() []Label {
	out := make([]Label, 0, len(g.byLabel))
	for l := range g.byLabel {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumNodes returns |V| (live nodes).
func (g *Graph) NumNodes() int { return g.numNodes }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.numEdges }

// Size returns |G| = |V| + |E|.
func (g *Graph) Size() int { return g.numNodes + g.numEdges }

// Nodes calls fn for every live node. Iteration stops if fn returns false.
func (g *Graph) Nodes(fn func(NodeID) bool) {
	for i := range g.labels {
		if g.labels[i] == NoLabel {
			continue
		}
		if !fn(NodeID(i)) {
			return
		}
	}
}

// NodeList returns all live node IDs in ascending order.
func (g *Graph) NodeList() []NodeID {
	out := make([]NodeID, 0, g.numNodes)
	g.Nodes(func(v NodeID) bool { out = append(out, v); return true })
	return out
}

// Edges calls fn for every edge (from, to). Iteration stops if fn returns
// false. Order is unspecified.
func (g *Graph) Edges(fn func(from, to NodeID) bool) {
	for i, outs := range g.out {
		if g.labels[i] == NoLabel {
			continue
		}
		for _, w := range outs {
			if !fn(NodeID(i), w) {
				return
			}
		}
	}
}

// CommonNeighbors returns the nodes labeled l that are neighbors (in either
// direction) of every node in vs. Per §II, when vs is empty every node
// labeled l qualifies. This is the brute-force reference used by tests and
// by index construction for small sets.
func (g *Graph) CommonNeighbors(vs []NodeID, l Label) []NodeID {
	if len(vs) == 0 {
		return append([]NodeID(nil), g.byLabel[l]...)
	}
	// Start from the neighbor set of the first node, filter by the rest.
	var res []NodeID
	for _, w := range g.Neighbors(vs[0]) {
		if g.LabelOf(w) != l {
			continue
		}
		all := true
		for _, v := range vs[1:] {
			if !g.HasNeighbor(v, w) {
				all = false
				break
			}
		}
		if all {
			res = append(res, w)
		}
	}
	sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
	return dedupSorted(res)
}

func dedupSorted(s []NodeID) []NodeID {
	if len(s) < 2 {
		return s
	}
	j := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			s[j] = s[i]
			j++
		}
	}
	return s[:j]
}

// InducedSubgraph returns the subgraph of g induced by the given node set:
// the nodes keep their labels and values (fresh IDs are assigned), and every
// edge of g between two kept nodes is retained. The second return value maps
// g's IDs to the subgraph's IDs.
func (g *Graph) InducedSubgraph(nodes []NodeID) (*Graph, map[NodeID]NodeID) {
	sub := New(g.interner)
	idmap := make(map[NodeID]NodeID, len(nodes))
	for _, v := range nodes {
		if !g.valid(v) {
			continue
		}
		if _, dup := idmap[v]; dup {
			continue
		}
		idmap[v] = sub.AddNode(g.labels[v], g.values[v])
	}
	for v, sv := range idmap {
		for _, w := range g.out[v] {
			if sw, ok := idmap[w]; ok {
				_ = sub.AddEdge(sv, sw)
			}
		}
	}
	return sub, idmap
}

// Clone returns a deep copy of g sharing the interner.
func (g *Graph) Clone() *Graph {
	c := New(g.interner)
	c.labels = append([]Label(nil), g.labels...)
	c.values = append([]Value(nil), g.values...)
	c.out = make([][]NodeID, len(g.out))
	c.in = make([][]NodeID, len(g.in))
	for i := range g.out {
		c.out[i] = append([]NodeID(nil), g.out[i]...)
		c.in[i] = append([]NodeID(nil), g.in[i]...)
	}
	for l, ns := range g.byLabel {
		c.byLabel[l] = append([]NodeID(nil), ns...)
	}
	for k := range g.edges {
		c.edges[k] = struct{}{}
	}
	c.numNodes = g.numNodes
	c.numEdges = g.numEdges
	return c
}

// CloneFiltered returns a copy of g restricted to the nodes satisfying
// keepNode and the edges satisfying keepEdge, preserving the node-ID
// space: excluded nodes become tombstones under their original IDs, and
// an edge survives only if both endpoints are kept and keepEdge(from, to)
// holds. The shard partitioner uses it to carve per-shard graphs (owned
// nodes plus remote-endpoint stubs) out of one global graph without the
// O(n log n) byLabel churn of replaying node-by-node.
func (g *Graph) CloneFiltered(keepNode func(NodeID) bool, keepEdge func(from, to NodeID) bool) *Graph {
	c := New(g.interner)
	c.labels = make([]Label, len(g.labels))
	c.values = make([]Value, len(g.values))
	c.out = make([][]NodeID, len(g.out))
	c.in = make([][]NodeID, len(g.in))
	for i, l := range g.labels {
		v := NodeID(i)
		if l == NoLabel || !keepNode(v) {
			c.labels[i] = NoLabel
			continue
		}
		c.labels[i] = l
		c.values[i] = g.values[i]
		c.byLabel[l] = append(c.byLabel[l], v) // i ascends: rows stay sorted
		c.numNodes++
	}
	for i, outs := range g.out {
		if c.labels[i] == NoLabel {
			continue
		}
		from := NodeID(i)
		for _, to := range outs {
			if c.labels[to] == NoLabel || !keepEdge(from, to) {
				continue
			}
			c.out[from] = append(c.out[from], to)
			c.in[to] = append(c.in[to], from)
			c.edges[packEdge(from, to)] = struct{}{}
			c.numEdges++
		}
	}
	return c
}

// InsertEdgeNode models a labeled edge (from -label-> to) by inserting a
// dummy node carrying the label, per the paper's remark in §II. It returns
// the dummy node's ID.
func (g *Graph) InsertEdgeNode(from, to NodeID, l Label) (NodeID, error) {
	if !g.valid(from) || !g.valid(to) {
		return InvalidNode, ErrNoSuchNode
	}
	d := g.AddNode(l, Value{})
	if err := g.AddEdge(from, d); err != nil {
		return InvalidNode, err
	}
	if err := g.AddEdge(d, to); err != nil {
		return InvalidNode, err
	}
	return d, nil
}

// String summarizes the graph for diagnostics.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(|V|=%d, |E|=%d, labels=%d)", g.numNodes, g.numEdges, len(g.byLabel))
}
