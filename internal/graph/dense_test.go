package graph

import (
	"math/rand"
	"testing"
)

func TestDenseSetBasics(t *testing.T) {
	s := NewDenseSet(100)
	if s.Len() != 0 || s.Has(0) || s.Has(99) {
		t.Fatalf("new set not empty")
	}
	if !s.Add(5) || !s.Add(64) || !s.Add(99) {
		t.Fatalf("Add of fresh elements reported present")
	}
	if s.Add(5) {
		t.Fatalf("duplicate Add reported absent")
	}
	if s.Len() != 3 || !s.Has(5) || !s.Has(64) || !s.Has(99) || s.Has(6) {
		t.Fatalf("membership wrong: len=%d", s.Len())
	}
	if !s.Remove(64) || s.Remove(64) || s.Has(64) {
		t.Fatalf("Remove wrong")
	}
	if s.Len() != 2 {
		t.Fatalf("Len after remove = %d, want 2", s.Len())
	}
	got := s.AppendTo(nil)
	if len(got) != 2 || got[0] != 5 || got[1] != 99 {
		t.Fatalf("AppendTo = %v, want [5 99]", got)
	}
	s.Reset()
	if s.Len() != 0 || s.Has(5) {
		t.Fatalf("Reset did not empty the set")
	}
}

func TestDenseSetOutOfRange(t *testing.T) {
	s := NewDenseSet(10)
	if s.Has(-1) || s.Has(1000) || s.Remove(-1) || s.Remove(1000) {
		t.Fatalf("out-of-range queries must report absence")
	}
	if s.Add(-1) {
		t.Fatalf("Add of negative ID must be ignored")
	}
	// Add past the initial capacity grows the set.
	if !s.Add(1000) || !s.Has(1000) || s.Len() != 1 {
		t.Fatalf("Add past capacity failed")
	}
	var zero DenseSet
	if zero.Has(3) || zero.Len() != 0 {
		t.Fatalf("zero DenseSet not empty")
	}
	if !zero.Add(3) || !zero.Has(3) {
		t.Fatalf("zero DenseSet must be usable")
	}
}

func TestDenseSetForEachOrderAndStop(t *testing.T) {
	s := NewDenseSet(300)
	want := []NodeID{0, 1, 63, 64, 127, 128, 255}
	for _, v := range want {
		s.Add(v)
	}
	var got []NodeID
	s.ForEach(func(v NodeID) bool { got = append(got, v); return true })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
	n := 0
	s.ForEach(func(NodeID) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("ForEach did not stop: visited %d", n)
	}
}

func TestDenseSetResetSparse(t *testing.T) {
	s := NewDenseSet(128)
	elems := []NodeID{1, 7, 64, 100}
	for _, v := range elems {
		s.Add(v)
	}
	s.ResetSparse(append(elems, -1, 999)) // superset with junk is fine
	if s.Len() != 0 {
		t.Fatalf("ResetSparse left Len=%d", s.Len())
	}
	for _, v := range elems {
		if s.Has(v) {
			t.Fatalf("ResetSparse left %d set", v)
		}
	}
}

func TestDenseSetVsMap(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	s := NewDenseSet(512)
	m := make(map[NodeID]struct{})
	for i := 0; i < 5000; i++ {
		v := NodeID(r.Intn(512))
		switch r.Intn(3) {
		case 0, 1:
			_, inMap := m[v]
			if added := s.Add(v); added != !inMap {
				t.Fatalf("Add(%d) = %v, map disagrees", v, added)
			}
			m[v] = struct{}{}
		case 2:
			_, inMap := m[v]
			if removed := s.Remove(v); removed != inMap {
				t.Fatalf("Remove(%d) = %v, map disagrees", v, removed)
			}
			delete(m, v)
		}
		if s.Len() != len(m) {
			t.Fatalf("Len = %d, map has %d", s.Len(), len(m))
		}
	}
	for v := NodeID(0); v < 512; v++ {
		_, inMap := m[v]
		if s.Has(v) != inMap {
			t.Fatalf("Has(%d) disagrees with map", v)
		}
	}
}

func TestGraphCap(t *testing.T) {
	g := New(nil)
	if g.Cap() != 0 {
		t.Fatalf("empty graph Cap = %d", g.Cap())
	}
	a := g.AddNodeNamed("A", Value{})
	g.AddNodeNamed("B", Value{})
	if g.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", g.Cap())
	}
	if err := g.RemoveNode(a); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	// Tombstones stay inside the dense ID space.
	if g.Cap() != 2 {
		t.Fatalf("Cap after removal = %d, want 2", g.Cap())
	}
}
