package graph

import (
	"math/rand"
	"sort"
	"testing"
)

func frozenTestGraph(t *testing.T, seed int64, n, e int) *Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	g := New(nil)
	labels := []string{"A", "B", "C"}
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = g.AddNodeNamed(labels[r.Intn(len(labels))], IntValue(int64(i)))
	}
	for i := 0; i < e; i++ {
		g.AddEdgeIfAbsent(ids[r.Intn(n)], ids[r.Intn(n)])
	}
	// A few tombstones so the snapshot covers holes in the ID space.
	for i := 0; i < n/10; i++ {
		_ = g.RemoveNode(ids[r.Intn(n)])
	}
	return g
}

func TestFrozenMatchesGraph(t *testing.T) {
	g := frozenTestGraph(t, 7, 120, 600)
	f := g.Freeze()
	if f.Cap() != g.Cap() {
		t.Fatalf("Cap = %d, want %d", f.Cap(), g.Cap())
	}
	if f.NumEdges() != g.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d", f.NumEdges(), g.NumEdges())
	}
	for v := NodeID(0); int(v) < g.Cap(); v++ {
		wantOut := sortedIDs(g.Out(v))
		gotOut := f.Out(v)
		if !sort.SliceIsSorted(gotOut, func(i, j int) bool { return gotOut[i] < gotOut[j] }) {
			t.Fatalf("Out(%d) not sorted: %v", v, gotOut)
		}
		if len(gotOut) != len(wantOut) {
			t.Fatalf("Out(%d) = %v, want %v", v, gotOut, wantOut)
		}
		for i := range wantOut {
			if gotOut[i] != wantOut[i] {
				t.Fatalf("Out(%d) = %v, want %v", v, gotOut, wantOut)
			}
		}
		wantIn := sortedIDs(g.In(v))
		gotIn := f.In(v)
		if len(gotIn) != len(wantIn) {
			t.Fatalf("In(%d) = %v, want %v", v, gotIn, wantIn)
		}
		for i := range wantIn {
			if gotIn[i] != wantIn[i] {
				t.Fatalf("In(%d) = %v, want %v", v, gotIn, wantIn)
			}
		}
		if f.OutDegree(v) != len(wantOut) || f.InDegree(v) != len(wantIn) {
			t.Fatalf("degrees of %d wrong", v)
		}
	}
	for from := NodeID(-1); int(from) <= g.Cap(); from++ {
		for to := NodeID(-1); int(to) <= g.Cap(); to++ {
			if f.HasEdge(from, to) != g.HasEdge(from, to) {
				t.Fatalf("HasEdge(%d,%d) = %v, graph says %v",
					from, to, f.HasEdge(from, to), g.HasEdge(from, to))
			}
		}
	}
}

func TestFrozenIsSnapshot(t *testing.T) {
	g := New(nil)
	a := g.AddNodeNamed("A", Value{})
	b := g.AddNodeNamed("B", Value{})
	mustEdge(t, g, a, b)
	f := g.Freeze()
	mustEdge(t, g, b, a)
	if f.HasEdge(b, a) {
		t.Fatalf("snapshot reflects post-freeze mutation")
	}
	if !f.HasEdge(a, b) {
		t.Fatalf("snapshot lost pre-freeze edge")
	}
}

func TestFrozenEmptyGraph(t *testing.T) {
	f := New(nil).Freeze()
	if f.Cap() != 0 || f.NumEdges() != 0 {
		t.Fatalf("empty snapshot wrong: cap=%d edges=%d", f.Cap(), f.NumEdges())
	}
	if f.Out(0) != nil || f.In(-1) != nil || f.HasEdge(0, 1) {
		t.Fatalf("empty snapshot lookups must be safe")
	}
}
