package graph

import (
	"strings"
	"testing"
)

const nodesTSV = `
# id label value
0 movie "Up"
1 year 2009
2 actor
`

const edgesTSV = `
# from to
0 1
0 2
0 1
`

func TestReadNodeAndEdgeTSV(t *testing.T) {
	g := New(nil)
	idmap, err := ReadNodeTSV(strings.NewReader(nodesTSV), g)
	if err != nil {
		t.Fatalf("ReadNodeTSV: %v", err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("|V| = %d", g.NumNodes())
	}
	if !g.ValueOf(idmap[0]).Equal(StringValue("Up")) {
		t.Fatalf("string value lost: %v", g.ValueOf(idmap[0]))
	}
	if !g.ValueOf(idmap[1]).Equal(IntValue(2009)) {
		t.Fatalf("int value lost")
	}
	if g.ValueOf(idmap[2]).Kind != KindNone {
		t.Fatalf("missing value should be none")
	}
	added, err := ReadEdgeTSV(strings.NewReader(edgesTSV), g, idmap)
	if err != nil {
		t.Fatalf("ReadEdgeTSV: %v", err)
	}
	if added != 2 {
		t.Fatalf("added = %d, want 2 (duplicate skipped)", added)
	}
	if !g.HasEdge(idmap[0], idmap[1]) || !g.HasEdge(idmap[0], idmap[2]) {
		t.Fatalf("edges missing")
	}
}

func TestReadNodeTSVErrors(t *testing.T) {
	cases := []string{
		"0\n",           // too few fields
		"x movie\n",     // bad id
		"0 a\n0 b\n",    // duplicate id
		"0 movie 1.5\n", // bad numeric value
		"0 movie \"x\n", // bad string value
	}
	for i, src := range cases {
		g := New(nil)
		if _, err := ReadNodeTSV(strings.NewReader(src), g); err == nil {
			t.Errorf("case %d (%q): want error", i, src)
		}
	}
}

func TestReadEdgeTSVErrors(t *testing.T) {
	g := New(nil)
	idmap, err := ReadNodeTSV(strings.NewReader("0 A\n1 B\n"), g)
	if err != nil {
		t.Fatal(err)
	}
	cases := []string{
		"0\n",    // wrong arity
		"x 1\n",  // bad from
		"0 y\n",  // bad to
		"0 99\n", // unknown endpoint
	}
	for i, src := range cases {
		if _, err := ReadEdgeTSV(strings.NewReader(src), g, idmap); err == nil {
			t.Errorf("case %d (%q): want error", i, src)
		}
	}
}

// TestTSVRoundTripWithJSON: a TSV-loaded graph survives the JSON round
// trip (the formats interoperate through the same Graph).
func TestTSVRoundTripWithJSON(t *testing.T) {
	g := New(nil)
	idmap, err := ReadNodeTSV(strings.NewReader(nodesTSV), g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEdgeTSV(strings.NewReader(edgesTSV), g, idmap); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadJSON(strings.NewReader(sb.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch")
	}
}
