package graph

import "slices"

// Frozen is a read-only CSR-style snapshot of a Graph: adjacency lives in
// two flat arrays (out- and in-edges) with per-node offsets, and each
// node's neighbor run is sorted so HasEdge is a binary search instead of a
// probe of the Graph's edges map. A Frozen is immutable and therefore safe
// for unlimited concurrent readers; mutations to the source Graph after
// Freeze are not reflected.
//
// Freeze costs O(|V| + |E| log d) and the snapshot holds 2|E| node IDs, so
// long-running read paths (the bounded-evaluation runtime, batch servers)
// freeze once and amortize across queries.
//
// Under live updates, Refresh derives the next snapshot from the previous
// one in time proportional to the rows that changed (|NbG(ΔG)|, not |G|):
// changed rows live in small per-epoch patch maps chained onto the shared
// base arrays, and lookups consult the chain newest-first. The chain is
// flattened when it grows deep and fully re-frozen when the patched
// fraction of the ID space gets large, so lookup overhead and amortized
// refresh cost both stay bounded.
type Frozen struct {
	// Base CSR arrays; populated only on the chain root.
	outStart []int32
	outAdj   []NodeID
	inStart  []int32
	inAdj    []NodeID

	// Patch layer; nil on a root built by Freeze. Rows present in a patch
	// override every older layer and the base (a nil run marks a row
	// emptied by deletion). Out- and in-runs share one map: a refreshed
	// row always patches both, so the key sets coincide and a lookup
	// walks half the probes two maps would cost.
	parent *Frozen
	patch  map[NodeID]patchRow

	capN     int // dense ID space of the snapshot (grows with inserts)
	numEdges int
	depth    int // chain length above the root
	patched  int // cumulative patched-row count across the chain
}

// patchRow is one patched row's adjacency: the out- and in-neighbor runs
// re-read (sorted) from the live graph at refresh time.
type patchRow struct {
	out, in []NodeID
}

// maxPatchDepth bounds the lookup chain: at this depth Refresh merges all
// patch layers into one, so Out/In never probe more than maxPatchDepth
// maps before reaching the base arrays.
const maxPatchDepth = 8

// refreezeMinRows is the patched-row floor below which Refresh never falls
// back to a full Freeze, keeping small graphs incremental too.
const refreezeMinRows = 1024

// Freeze builds a CSR snapshot of g's current adjacency.
func (g *Graph) Freeze() *Frozen {
	f := &Frozen{capN: g.Cap(), numEdges: g.NumEdges()}
	f.outStart, f.outAdj = buildCSR(g.out)
	f.inStart, f.inAdj = buildCSR(g.in)
	return f
}

func buildCSR(adj [][]NodeID) ([]int32, []NodeID) {
	start := make([]int32, len(adj)+1)
	total := 0
	for _, ns := range adj {
		total += len(ns)
	}
	flat := make([]NodeID, 0, total)
	for i, ns := range adj {
		start[i] = int32(len(flat))
		flat = append(flat, ns...)
		slices.Sort(flat[start[i]:])
	}
	start[len(adj)] = int32(len(flat))
	return start, flat
}

// Refresh returns a snapshot of g sharing everything with f except the
// given rows, whose adjacency is re-read from g (sorted). rows must cover
// every node whose neighborhood changed since f was taken — for a
// graph.Delta that is ΔG ∪ NbG(ΔG): endpoints of inserted/deleted edges,
// inserted and deleted nodes, and neighbors of deleted nodes. Duplicate
// and negative entries are ignored.
//
// Cost is O(Σ degree(rows)) plus amortized LSM-style compaction of the
// patch chain (O(log patched) re-copies per row). When the cumulative patched rows exceed
// a quarter of the ID space the refresh amortizes into a full Freeze —
// by then Ω(|V|/4) row-work has been paid in, so the O(|G|) rebuild stays
// proportional to the update work that provoked it. f is not modified;
// snapshots already handed out keep their view.
func (f *Frozen) Refresh(g *Graph, rows []NodeID) *Frozen {
	capN := g.Cap()
	if f.patched+len(rows) > refreezeMinRows && (f.patched+len(rows))*4 > capN {
		return g.Freeze()
	}
	nf := &Frozen{
		parent:   f,
		patch:    make(map[NodeID]patchRow, len(rows)),
		capN:     capN,
		numEdges: g.NumEdges(),
		depth:    f.depth + 1,
	}
	for _, v := range rows {
		if v < 0 || int(v) >= capN {
			continue
		}
		if _, dup := nf.patch[v]; dup {
			continue
		}
		nf.patch[v] = patchRow{out: sortedCopy(g.Out(v)), in: sortedCopy(g.In(v))}
	}
	nf.patched = f.patched + len(nf.patch)
	if nf.depth >= maxPatchDepth {
		nf.flatten()
	}
	return nf
}

// flatten compacts the patch chain into nf, LSM-style: walking newest to
// oldest, a layer joins the merge while it holds no more than twice the
// rows merged so far (so a row settled in a big layer is re-copied only
// once comparably many newer rows have accumulated — O(log patched)
// copies per row over its lifetime, where merging the whole chain every
// flatten re-copied every live row each time), except that layers deeper
// than half the depth budget merge unconditionally, keeping the probe
// chain short. Newer layers win on overlap.
func (nf *Frozen) flatten() {
	p := nf.parent
	for p.parent != nil && (len(p.patch) <= 2*len(nf.patch) || p.depth > maxPatchDepth/2) {
		for v, row := range p.patch {
			if _, ok := nf.patch[v]; !ok {
				nf.patch[v] = row
			}
		}
		p = p.parent
	}
	nf.parent = p
	if p.parent == nil {
		nf.depth, nf.patched = 1, len(nf.patch)
	} else {
		// patched sums layer sizes, over-counting rows patched in two
		// layers — conservative: it only brings the full re-freeze
		// forward, never past it.
		nf.depth, nf.patched = p.depth+1, p.patched+len(nf.patch)
	}
}

func sortedCopy(run []NodeID) []NodeID {
	if len(run) == 0 {
		return nil
	}
	out := append([]NodeID(nil), run...)
	slices.Sort(out)
	return out
}

// Cap returns the size of the snapshot's dense ID space.
func (f *Frozen) Cap() int { return f.capN }

// Out returns the sorted out-neighbors of v. The slice aliases the
// snapshot; do not mutate it.
func (f *Frozen) Out(v NodeID) []NodeID {
	if v < 0 || int(v) >= f.capN {
		return nil
	}
	p := f
	for p.parent != nil {
		if row, ok := p.patch[v]; ok {
			return row.out
		}
		p = p.parent
	}
	if int(v) >= len(p.outStart)-1 {
		return nil // inserted after the base was frozen, never patched
	}
	return p.outAdj[p.outStart[v]:p.outStart[v+1]]
}

// In returns the sorted in-neighbors of v. The slice aliases the snapshot;
// do not mutate it.
func (f *Frozen) In(v NodeID) []NodeID {
	if v < 0 || int(v) >= f.capN {
		return nil
	}
	p := f
	for p.parent != nil {
		if row, ok := p.patch[v]; ok {
			return row.in
		}
		p = p.parent
	}
	if int(v) >= len(p.inStart)-1 {
		return nil
	}
	return p.inAdj[p.inStart[v]:p.inStart[v+1]]
}

// HasEdge reports whether the directed edge (from, to) exists, by binary
// search in from's sorted out-run.
func (f *Frozen) HasEdge(from, to NodeID) bool {
	run := f.Out(from)
	lo, hi := 0, len(run)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if run[mid] < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(run) && run[lo] == to
}

// OutDegree returns the number of out-edges of v.
func (f *Frozen) OutDegree(v NodeID) int { return len(f.Out(v)) }

// InDegree returns the number of in-edges of v.
func (f *Frozen) InDegree(v NodeID) int { return len(f.In(v)) }

// NumEdges returns |E| of the snapshot.
func (f *Frozen) NumEdges() int { return f.numEdges }

// Depth returns the patch-chain length above the base CSR (0 for a fresh
// Freeze); it is exposed for tests and stats.
func (f *Frozen) Depth() int { return f.depth }
