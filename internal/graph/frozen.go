package graph

import "sort"

// Frozen is a read-only CSR-style snapshot of a Graph: adjacency lives in
// two flat arrays (out- and in-edges) with per-node offsets, and each
// node's neighbor run is sorted so HasEdge is a binary search instead of a
// probe of the Graph's edges map. A Frozen is immutable and therefore safe
// for unlimited concurrent readers; mutations to the source Graph after
// Freeze are not reflected.
//
// Freeze costs O(|V| + |E| log d) and the snapshot holds 2|E| node IDs, so
// long-running read paths (the bounded-evaluation runtime, batch servers)
// freeze once and amortize across queries.
type Frozen struct {
	outStart []int32
	outAdj   []NodeID
	inStart  []int32
	inAdj    []NodeID
}

// Freeze builds a CSR snapshot of g's current adjacency.
func (g *Graph) Freeze() *Frozen {
	f := &Frozen{}
	f.outStart, f.outAdj = buildCSR(g.out)
	f.inStart, f.inAdj = buildCSR(g.in)
	return f
}

func buildCSR(adj [][]NodeID) ([]int32, []NodeID) {
	start := make([]int32, len(adj)+1)
	total := 0
	for _, ns := range adj {
		total += len(ns)
	}
	flat := make([]NodeID, 0, total)
	for i, ns := range adj {
		start[i] = int32(len(flat))
		flat = append(flat, ns...)
		run := flat[start[i]:]
		sort.Slice(run, func(a, b int) bool { return run[a] < run[b] })
	}
	start[len(adj)] = int32(len(flat))
	return start, flat
}

// Cap returns the size of the snapshot's dense ID space.
func (f *Frozen) Cap() int { return len(f.outStart) - 1 }

// Out returns the sorted out-neighbors of v. The slice aliases the
// snapshot; do not mutate it.
func (f *Frozen) Out(v NodeID) []NodeID {
	if v < 0 || int(v) >= f.Cap() {
		return nil
	}
	return f.outAdj[f.outStart[v]:f.outStart[v+1]]
}

// In returns the sorted in-neighbors of v. The slice aliases the snapshot;
// do not mutate it.
func (f *Frozen) In(v NodeID) []NodeID {
	if v < 0 || int(v) >= f.Cap() {
		return nil
	}
	return f.inAdj[f.inStart[v]:f.inStart[v+1]]
}

// HasEdge reports whether the directed edge (from, to) exists, by binary
// search in from's sorted out-run.
func (f *Frozen) HasEdge(from, to NodeID) bool {
	run := f.Out(from)
	lo, hi := 0, len(run)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if run[mid] < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(run) && run[lo] == to
}

// OutDegree returns the number of out-edges of v.
func (f *Frozen) OutDegree(v NodeID) int { return len(f.Out(v)) }

// InDegree returns the number of in-edges of v.
func (f *Frozen) InDegree(v NodeID) int { return len(f.In(v)) }

// NumEdges returns |E| of the snapshot.
func (f *Frozen) NumEdges() int { return len(f.outAdj) }
