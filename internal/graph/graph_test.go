package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func mustEdge(t *testing.T, g *Graph, from, to NodeID) {
	t.Helper()
	if err := g.AddEdge(from, to); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", from, to, err)
	}
}

func sortedIDs(s []NodeID) []NodeID {
	out := append([]NodeID(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestAddNodeAndEdgeBasics(t *testing.T) {
	g := New(nil)
	a := g.AddNodeNamed("A", IntValue(1))
	b := g.AddNodeNamed("B", StringValue("x"))
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Fatalf("got |V|=%d |E|=%d, want 2, 0", g.NumNodes(), g.NumEdges())
	}
	mustEdge(t, g, a, b)
	if !g.HasEdge(a, b) || g.HasEdge(b, a) {
		t.Fatalf("edge direction wrong")
	}
	if !g.HasNeighbor(b, a) {
		t.Fatalf("HasNeighbor should be symmetric")
	}
	if g.Size() != 3 {
		t.Fatalf("Size = %d, want 3", g.Size())
	}
	if got := g.LabelOf(a); g.Interner().Name(got) != "A" {
		t.Fatalf("LabelOf(a) = %q", g.Interner().Name(got))
	}
	if !g.ValueOf(b).Equal(StringValue("x")) {
		t.Fatalf("ValueOf(b) = %v", g.ValueOf(b))
	}
}

func TestDuplicateEdgeRejected(t *testing.T) {
	g := New(nil)
	a := g.AddNodeNamed("A", Value{})
	b := g.AddNodeNamed("B", Value{})
	mustEdge(t, g, a, b)
	if err := g.AddEdge(a, b); err != ErrDupEdge {
		t.Fatalf("duplicate AddEdge err = %v, want ErrDupEdge", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestEdgeToMissingNode(t *testing.T) {
	g := New(nil)
	a := g.AddNodeNamed("A", Value{})
	if err := g.AddEdge(a, 99); err != ErrNoSuchNode {
		t.Fatalf("err = %v, want ErrNoSuchNode", err)
	}
	if err := g.AddEdge(-3, a); err != ErrNoSuchNode {
		t.Fatalf("err = %v, want ErrNoSuchNode", err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(nil)
	a := g.AddNodeNamed("A", Value{})
	b := g.AddNodeNamed("B", Value{})
	mustEdge(t, g, a, b)
	if err := g.RemoveEdge(a, b); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	if g.HasEdge(a, b) || g.NumEdges() != 0 {
		t.Fatalf("edge not removed")
	}
	if len(g.Out(a)) != 0 || len(g.In(b)) != 0 {
		t.Fatalf("adjacency lists not cleaned")
	}
	if err := g.RemoveEdge(a, b); err != ErrNoSuchEdge {
		t.Fatalf("second RemoveEdge err = %v, want ErrNoSuchEdge", err)
	}
}

func TestRemoveNodeCleansEverything(t *testing.T) {
	g := New(nil)
	a := g.AddNodeNamed("A", Value{})
	b := g.AddNodeNamed("B", Value{})
	c := g.AddNodeNamed("A", Value{})
	mustEdge(t, g, a, b)
	mustEdge(t, g, b, a)
	mustEdge(t, g, c, a)
	if err := g.RemoveNode(a); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if g.Contains(a) {
		t.Fatalf("node a still present")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Fatalf("|V|=%d |E|=%d after removal, want 2, 0", g.NumNodes(), g.NumEdges())
	}
	la, _ := g.Interner().Lookup("A")
	if got := g.NodesByLabel(la); len(got) != 1 || got[0] != c {
		t.Fatalf("NodesByLabel(A) = %v, want [%d]", got, c)
	}
	if g.LabelOf(a) != NoLabel {
		t.Fatalf("tombstone label = %v", g.LabelOf(a))
	}
	if err := g.RemoveNode(a); err != ErrNoSuchNode {
		t.Fatalf("double remove err = %v", err)
	}
}

func TestRemoveNodeReleasesAdjacency(t *testing.T) {
	g := New(nil)
	a := g.AddNodeNamed("A", Value{})
	b := g.AddNodeNamed("B", Value{})
	c := g.AddNodeNamed("C", Value{})
	mustEdge(t, g, a, b)
	mustEdge(t, g, c, a)
	mustEdge(t, g, a, a)
	if err := g.RemoveNode(a); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	// The tombstone must hold no stale adjacency memory: the slices are
	// nil, not merely truncated views of their old backing arrays.
	if g.out[a] != nil || g.in[a] != nil {
		t.Fatalf("tombstone keeps adjacency: out=%v (cap %d), in=%v (cap %d)",
			g.out[a], cap(g.out[a]), g.in[a], cap(g.in[a]))
	}
	if got := g.Out(a); got != nil {
		t.Fatalf("Out(tombstone) = %v, want nil", got)
	}
	if got := g.In(a); got != nil {
		t.Fatalf("In(tombstone) = %v, want nil", got)
	}
}

func TestNeighborsDedup(t *testing.T) {
	g := New(nil)
	a := g.AddNodeNamed("A", Value{})
	b := g.AddNodeNamed("B", Value{})
	mustEdge(t, g, a, b)
	mustEdge(t, g, b, a)
	if n := g.Neighbors(a); len(n) != 1 || n[0] != b {
		t.Fatalf("Neighbors(a) = %v, want [b] once", n)
	}
	if g.Degree(a) != 1 {
		t.Fatalf("Degree(a) = %d, want 1", g.Degree(a))
	}
}

func TestCommonNeighbors(t *testing.T) {
	g := New(nil)
	year := g.AddNodeNamed("year", IntValue(2012))
	award := g.AddNodeNamed("award", StringValue("oscar"))
	m1 := g.AddNodeNamed("movie", Value{})
	m2 := g.AddNodeNamed("movie", Value{})
	m3 := g.AddNodeNamed("movie", Value{})
	mustEdge(t, g, m1, year)
	mustEdge(t, g, m1, award)
	mustEdge(t, g, m2, year)
	mustEdge(t, g, m3, award)
	lm, _ := g.Interner().Lookup("movie")

	got := g.CommonNeighbors([]NodeID{year, award}, lm)
	if !reflect.DeepEqual(got, []NodeID{m1}) {
		t.Fatalf("CommonNeighbors(year,award) = %v, want [%d]", got, m1)
	}
	got = g.CommonNeighbors([]NodeID{year}, lm)
	if !reflect.DeepEqual(got, []NodeID{m1, m2}) {
		t.Fatalf("CommonNeighbors(year) = %v", got)
	}
	// Empty VS: all movie nodes.
	got = g.CommonNeighbors(nil, lm)
	if !reflect.DeepEqual(sortedIDs(got), []NodeID{m1, m2, m3}) {
		t.Fatalf("CommonNeighbors(nil) = %v", got)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(nil)
	a := g.AddNodeNamed("A", IntValue(7))
	b := g.AddNodeNamed("B", Value{})
	c := g.AddNodeNamed("C", Value{})
	mustEdge(t, g, a, b)
	mustEdge(t, g, b, c)
	mustEdge(t, g, c, a)

	sub, idmap := g.InducedSubgraph([]NodeID{a, b})
	if sub.NumNodes() != 2 || sub.NumEdges() != 1 {
		t.Fatalf("sub |V|=%d |E|=%d, want 2, 1", sub.NumNodes(), sub.NumEdges())
	}
	if !sub.HasEdge(idmap[a], idmap[b]) {
		t.Fatalf("induced edge missing")
	}
	if !sub.ValueOf(idmap[a]).Equal(IntValue(7)) {
		t.Fatalf("value not preserved")
	}
}

func TestInducedSubgraphSkipsDuplicatesAndTombstones(t *testing.T) {
	g := New(nil)
	a := g.AddNodeNamed("A", Value{})
	b := g.AddNodeNamed("B", Value{})
	if err := g.RemoveNode(b); err != nil {
		t.Fatal(err)
	}
	sub, idmap := g.InducedSubgraph([]NodeID{a, a, b, 42})
	if sub.NumNodes() != 1 {
		t.Fatalf("|V| = %d, want 1", sub.NumNodes())
	}
	if _, ok := idmap[b]; ok {
		t.Fatalf("tombstone mapped")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(nil)
	a := g.AddNodeNamed("A", Value{})
	b := g.AddNodeNamed("B", Value{})
	mustEdge(t, g, a, b)
	c := g.Clone()
	mustEdge(t, g, b, a)
	if c.HasEdge(b, a) {
		t.Fatalf("clone shares edge storage")
	}
	if c.NumEdges() != 1 || g.NumEdges() != 2 {
		t.Fatalf("edge counts diverged wrong: clone=%d orig=%d", c.NumEdges(), g.NumEdges())
	}
}

func TestInsertEdgeNode(t *testing.T) {
	g := New(nil)
	a := g.AddNodeNamed("A", Value{})
	b := g.AddNodeNamed("B", Value{})
	l := g.Interner().Intern("likes")
	d, err := g.InsertEdgeNode(a, b, l)
	if err != nil {
		t.Fatalf("InsertEdgeNode: %v", err)
	}
	if !g.HasEdge(a, d) || !g.HasEdge(d, b) {
		t.Fatalf("dummy wiring wrong")
	}
	if g.LabelOf(d) != l {
		t.Fatalf("dummy label wrong")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := New(nil)
	a := g.AddNodeNamed("movie", StringValue("Up"))
	b := g.AddNodeNamed("year", IntValue(2009))
	c := g.AddNodeNamed("award", Value{})
	mustEdge(t, g, a, b)
	mustEdge(t, g, a, c)

	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	g2, idmap, err := ReadJSON(&buf, nil)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if g2.NumNodes() != 3 || g2.NumEdges() != 2 {
		t.Fatalf("round trip |V|=%d |E|=%d", g2.NumNodes(), g2.NumEdges())
	}
	if !g2.ValueOf(idmap[b]).Equal(IntValue(2009)) {
		t.Fatalf("int value lost: %v", g2.ValueOf(idmap[b]))
	}
	if !g2.ValueOf(idmap[a]).Equal(StringValue("Up")) {
		t.Fatalf("string value lost")
	}
	if !g2.HasEdge(idmap[a], idmap[c]) {
		t.Fatalf("edge lost")
	}
}

func TestReadJSONBadInput(t *testing.T) {
	if _, _, err := ReadJSON(bytes.NewBufferString("{nonsense"), nil); err == nil {
		t.Fatalf("want error on malformed JSON")
	}
	// Edge referencing unknown node.
	bad := `{"nodes":[{"id":0,"label":"A"}],"edges":[[0,5]]}`
	if _, _, err := ReadJSON(bytes.NewBufferString(bad), nil); err == nil {
		t.Fatalf("want error on dangling edge")
	}
	// Duplicate node id.
	dup := `{"nodes":[{"id":0,"label":"A"},{"id":0,"label":"B"}],"edges":[]}`
	if _, _, err := ReadJSON(bytes.NewBufferString(dup), nil); err == nil {
		t.Fatalf("want error on duplicate node id")
	}
}

func TestDeltaApplyAndTouched(t *testing.T) {
	g := New(nil)
	a := g.AddNodeNamed("A", Value{})
	b := g.AddNodeNamed("B", Value{})
	c := g.AddNodeNamed("C", Value{})
	mustEdge(t, g, a, b)
	mustEdge(t, g, b, c)

	lb, _ := g.Interner().Lookup("B")
	d := &Delta{
		AddNodes: []NodeSpec{{Label: lb, Value: IntValue(5)}},
		AddEdges: [][2]NodeID{{a, NewNodeRef(0)}},
		DelEdges: [][2]NodeID{{b, c}},
	}
	touched := d.Touched(g)
	// DelEdge(b,c) touches b, c and their neighbors a (of b) — and
	// AddEdge touches a and its neighbor b.
	for _, v := range []NodeID{a, b, c} {
		if _, ok := touched[v]; !ok {
			t.Fatalf("node %d not in touched set %v", v, touched)
		}
	}
	newIDs, err := d.Apply(g)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(newIDs) != 1 || !g.HasEdge(a, newIDs[0]) {
		t.Fatalf("delta node/edge not applied")
	}
	if g.HasEdge(b, c) {
		t.Fatalf("edge (b,c) should be deleted")
	}
}

func TestDeltaApplyErrors(t *testing.T) {
	g := New(nil)
	a := g.AddNodeNamed("A", Value{})
	d := &Delta{DelEdges: [][2]NodeID{{a, 77}}}
	if _, err := d.Apply(g); err == nil {
		t.Fatalf("want error deleting missing edge")
	}
	d2 := &Delta{DelNodes: []NodeID{99}}
	if _, err := d2.Apply(g); err == nil {
		t.Fatalf("want error deleting missing node")
	}
	d3 := &Delta{AddEdges: [][2]NodeID{{a, NewNodeRef(3)}}}
	if _, err := d3.Apply(g); err == nil {
		t.Fatalf("want error on out-of-range new-node ref")
	}
}

func TestComputeStats(t *testing.T) {
	g := New(nil)
	m := g.AddNodeNamed("movie", Value{})
	a1 := g.AddNodeNamed("actor", Value{})
	a2 := g.AddNodeNamed("actor", Value{})
	mustEdge(t, g, m, a1)
	mustEdge(t, g, m, a2)
	s := ComputeStats(g)
	lm, _ := g.Interner().Lookup("movie")
	la, _ := g.Interner().Lookup("actor")
	if s.NumNodes != 3 || s.NumEdges != 2 || s.NumLabels != 2 {
		t.Fatalf("stats basics wrong: %+v", s)
	}
	if s.LabelCounts[la] != 2 {
		t.Fatalf("LabelCounts[actor] = %d", s.LabelCounts[la])
	}
	if s.MaxLabelNeighbors[[2]Label{lm, la}] != 2 {
		t.Fatalf("MaxLabelNeighbors[movie,actor] = %d", s.MaxLabelNeighbors[[2]Label{lm, la}])
	}
	if s.MaxLabelNeighbors[[2]Label{la, lm}] != 1 {
		t.Fatalf("MaxLabelNeighbors[actor,movie] = %d", s.MaxLabelNeighbors[[2]Label{la, lm}])
	}
	if s.MaxDegreeByLabel[lm] != 2 {
		t.Fatalf("MaxDegreeByLabel[movie] = %d", s.MaxDegreeByLabel[lm])
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := New(nil)
	a := g.AddNodeNamed("A", Value{})
	b := g.AddNodeNamed("B", Value{})
	c := g.AddNodeNamed("C", Value{})
	mustEdge(t, g, a, b)
	mustEdge(t, g, a, c)
	degs, counts := DegreeHistogram(g)
	if !reflect.DeepEqual(degs, []int{1, 2}) || !reflect.DeepEqual(counts, []int{2, 1}) {
		t.Fatalf("histogram = %v %v", degs, counts)
	}
}

func TestValueCompareAndEqual(t *testing.T) {
	cases := []struct {
		a, b   Value
		cmp    int
		cmpOK  bool
		equals bool
	}{
		{IntValue(1), IntValue(2), -1, true, false},
		{IntValue(2), IntValue(2), 0, true, true},
		{IntValue(3), IntValue(2), 1, true, false},
		{StringValue("a"), StringValue("b"), -1, true, false},
		{StringValue("b"), StringValue("b"), 0, true, true},
		{IntValue(1), StringValue("1"), 0, false, false},
		{NoValue(), NoValue(), 0, true, true},
		{NoValue(), IntValue(0), 0, false, false},
	}
	for i, c := range cases {
		cmp, ok := c.a.Compare(c.b)
		if ok != c.cmpOK || (ok && sign(cmp) != c.cmp) {
			t.Errorf("case %d: Compare(%v,%v) = %d,%v", i, c.a, c.b, cmp, ok)
		}
		if c.a.Equal(c.b) != c.equals {
			t.Errorf("case %d: Equal(%v,%v) = %v", i, c.a, c.b, c.a.Equal(c.b))
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestValueJSONRoundTrip(t *testing.T) {
	for _, v := range []Value{IntValue(-12), StringValue("héllo \"q\""), NoValue()} {
		b, err := v.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var w Value
		if err := w.UnmarshalJSON(b); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if !v.Equal(w) {
			t.Fatalf("round trip %v -> %s -> %v", v, b, w)
		}
	}
	var w Value
	if err := w.UnmarshalJSON([]byte("1.5")); err == nil {
		t.Fatalf("want error for non-integral number")
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := in.Intern("x")
	b := in.Intern("y")
	if a == b {
		t.Fatalf("distinct names got same label")
	}
	if in.Intern("x") != a {
		t.Fatalf("re-intern changed label")
	}
	if got, ok := in.Lookup("y"); !ok || got != b {
		t.Fatalf("Lookup(y) = %v %v", got, ok)
	}
	if _, ok := in.Lookup("z"); ok {
		t.Fatalf("Lookup(z) should miss")
	}
	if in.Name(a) != "x" || in.Len() != 2 {
		t.Fatalf("Name/Len wrong")
	}
	if in.Name(99) == "" {
		t.Fatalf("unknown label should get placeholder")
	}
	names := in.Names()
	names[0] = "mutated"
	if in.Name(a) != "x" {
		t.Fatalf("Names() must return a copy")
	}
}

// randomGraph builds a random graph with nLabels labels and ~edgeFactor
// edges per node, for property tests.
func randomGraph(r *rand.Rand, n, nLabels int, edgeFactor float64) *Graph {
	g := New(nil)
	labels := make([]Label, nLabels)
	for i := range labels {
		labels[i] = g.Interner().Intern(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		g.AddNode(labels[r.Intn(nLabels)], IntValue(int64(r.Intn(10))))
	}
	m := int(float64(n) * edgeFactor)
	for i := 0; i < m; i++ {
		from := NodeID(r.Intn(n))
		to := NodeID(r.Intn(n))
		if from != to {
			_ = g.AddEdge(from, to) // ignore dups
		}
	}
	return g
}

// Property: CommonNeighbors agrees with a naive definition scan.
func TestCommonNeighborsMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	check := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		g := randomGraph(rr, 30, 4, 2.0)
		for trial := 0; trial < 5; trial++ {
			k := rr.Intn(3) + 1
			vs := make([]NodeID, k)
			for i := range vs {
				vs[i] = NodeID(rr.Intn(30))
			}
			l := Label(rr.Intn(4))
			got := g.CommonNeighbors(vs, l)
			var want []NodeID
			g.Nodes(func(w NodeID) bool {
				if g.LabelOf(w) != l {
					return true
				}
				for _, v := range vs {
					if !g.HasNeighbor(v, w) {
						return true
					}
				}
				want = append(want, w)
				return true
			})
			if !reflect.DeepEqual(got, sortedIDs(want)) {
				t.Logf("seed %d: got %v want %v", seed, got, want)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: r}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: JSON round trip preserves node/edge counts and label multiset.
func TestJSONRoundTripProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 20, 3, 1.5)
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			return false
		}
		g2, _, err := ReadJSON(&buf, nil)
		if err != nil {
			return false
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		for _, l := range g.Labels() {
			l2, ok := g2.Interner().Lookup(g.Interner().Name(l))
			if !ok || g2.CountLabel(l2) != g.CountLabel(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSetValue(t *testing.T) {
	g := New(nil)
	v := g.AddNodeNamed("A", IntValue(1))
	if err := g.SetValue(v, IntValue(2)); err != nil {
		t.Fatal(err)
	}
	if !g.ValueOf(v).Equal(IntValue(2)) {
		t.Fatalf("value not updated")
	}
	if err := g.SetValue(99, IntValue(3)); err != ErrNoSuchNode {
		t.Fatalf("err = %v", err)
	}
}

func TestGraphString(t *testing.T) {
	g := New(nil)
	g.AddNodeNamed("A", NoValue())
	if g.String() == "" {
		t.Fatalf("empty String()")
	}
}

func TestNodesEarlyStop(t *testing.T) {
	g := New(nil)
	for i := 0; i < 5; i++ {
		g.AddNodeNamed("A", NoValue())
	}
	count := 0
	g.Nodes(func(NodeID) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop failed: %d", count)
	}
	a, b := NodeID(0), NodeID(1)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a)
	edges := 0
	g.Edges(func(from, to NodeID) bool {
		edges++
		return false
	})
	if edges != 1 {
		t.Fatalf("edge early stop failed: %d", edges)
	}
}
