package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// fingerprint captures a graph's full observable state in canonical form:
// per-ID label/value (tombstones included), the sorted edge set, sorted
// per-label node sets, and the counters. Two graphs with equal
// fingerprints answer every query identically and assign the same future
// node IDs.
type fingerprint struct {
	Labels   []Label
	Values   []Value
	Edges    [][2]NodeID
	ByLabel  map[Label][]NodeID
	N, E     int
	Cap      int
	OutDegs  []int
	InDegs   []int
	NextNode NodeID
}

func fingerprintOf(g *Graph) fingerprint {
	fp := fingerprint{
		Labels:  append([]Label(nil), g.labels...),
		Values:  append([]Value(nil), g.values...),
		ByLabel: make(map[Label][]NodeID),
		N:       g.NumNodes(),
		E:       g.NumEdges(),
		Cap:     g.Cap(),
	}
	g.Edges(func(from, to NodeID) bool {
		fp.Edges = append(fp.Edges, [2]NodeID{from, to})
		return true
	})
	sort.Slice(fp.Edges, func(i, j int) bool {
		if fp.Edges[i][0] != fp.Edges[j][0] {
			return fp.Edges[i][0] < fp.Edges[j][0]
		}
		return fp.Edges[i][1] < fp.Edges[j][1]
	})
	for _, l := range g.Labels() {
		fp.ByLabel[l] = sortedIDs(g.NodesByLabel(l))
	}
	for v := NodeID(0); int(v) < g.Cap(); v++ {
		fp.OutDegs = append(fp.OutDegs, len(g.Out(v)))
		fp.InDegs = append(fp.InDegs, len(g.In(v)))
	}
	return fp
}

func deltaTestGraph() (*Graph, []NodeID) {
	g := New(nil)
	ids := make([]NodeID, 6)
	for i := range ids {
		ids[i] = g.AddNodeNamed([]string{"A", "B", "C"}[i%3], IntValue(int64(i)))
	}
	g.MustAddEdge(ids[0], ids[1])
	g.MustAddEdge(ids[1], ids[2])
	g.MustAddEdge(ids[2], ids[3])
	g.MustAddEdge(ids[3], ids[0])
	g.MustAddEdge(ids[4], ids[1])
	g.MustAddEdge(ids[1], ids[4])
	return g, ids
}

func TestApplyLoggedRevertRestoresExactly(t *testing.T) {
	g, ids := deltaTestGraph()
	b := g.Interner().Intern("B")
	deltas := []*Delta{
		// Inserts wired to existing and fresh nodes.
		{
			AddNodes: []NodeSpec{{Label: b, Value: StringValue("x")}, {Label: b}},
			AddEdges: [][2]NodeID{{NewNodeRef(0), ids[2]}, {NewNodeRef(0), NewNodeRef(1)}, {ids[0], NewNodeRef(1)}},
		},
		// Edge churn.
		{AddEdges: [][2]NodeID{{ids[0], ids[2]}, {ids[2], ids[0]}}, DelEdges: [][2]NodeID{{ids[0], ids[1]}}},
		// Node deletion with incident edges on both sides.
		{DelNodes: []NodeID{ids[1]}},
		// Everything at once: new node wired to a node the same delta
		// deletes (the captured adjacency of the deleted node references
		// the new node).
		{
			AddNodes: []NodeSpec{{Label: b}},
			AddEdges: [][2]NodeID{{NewNodeRef(0), ids[4]}},
			DelEdges: [][2]NodeID{{ids[1], ids[2]}},
			DelNodes: []NodeID{ids[4], ids[0]},
		},
		// Two deleted nodes sharing edges (shared-capture dedup).
		{DelNodes: []NodeID{ids[1], ids[4]}},
	}
	for i, d := range deltas {
		before := fingerprintOf(g)
		_, undo, err := d.ApplyLogged(g)
		if err != nil {
			t.Fatalf("delta %d: ApplyLogged: %v", i, err)
		}
		if reflect.DeepEqual(fingerprintOf(g), before) && !d.Empty() {
			t.Fatalf("delta %d: apply was a no-op", i)
		}
		undo.Revert(g)
		if got := fingerprintOf(g); !reflect.DeepEqual(got, before) {
			t.Fatalf("delta %d: revert did not restore the graph:\n got %+v\nwant %+v", i, got, before)
		}
		// The ID space must be untouched: the next insert gets the same ID
		// as on a graph that never saw the delta.
		if want := NodeID(before.Cap); g.AddNode(b, Value{}) != want {
			t.Fatalf("delta %d: ID space shifted after revert", i)
		}
		if err := g.RemoveNode(NodeID(before.Cap)); err != nil {
			t.Fatal(err)
		}
		// Clean up the probe tombstone for the next iteration.
		g.labels = g.labels[:before.Cap]
		g.values = g.values[:before.Cap]
		g.out = g.out[:before.Cap]
		g.in = g.in[:before.Cap]
	}
}

func TestApplyLoggedRevertOnStructuralError(t *testing.T) {
	g, ids := deltaTestGraph()
	before := fingerprintOf(g)
	d := &Delta{
		AddNodes: []NodeSpec{{Label: g.Interner().Intern("C")}},
		AddEdges: [][2]NodeID{{NewNodeRef(0), ids[0]}},
		DelEdges: [][2]NodeID{{ids[0], ids[2]}}, // does not exist
	}
	_, undo, err := d.ApplyLogged(g)
	if err != ErrNoSuchEdge {
		t.Fatalf("err = %v, want ErrNoSuchEdge", err)
	}
	undo.Revert(g)
	if got := fingerprintOf(g); !reflect.DeepEqual(got, before) {
		t.Fatalf("revert after mid-delta error did not restore the graph:\n got %+v\nwant %+v", got, before)
	}
}

func TestApplyLoggedRandomizedRevert(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := New(nil)
	labels := []Label{g.Interner().Intern("A"), g.Interner().Intern("B")}
	for i := 0; i < 40; i++ {
		g.AddNode(labels[i%2], IntValue(int64(i)))
	}
	for i := 0; i < 120; i++ {
		g.AddEdgeIfAbsent(NodeID(r.Intn(40)), NodeID(r.Intn(40)))
	}
	for step := 0; step < 200; step++ {
		d := &Delta{}
		for k := 0; k < 1+r.Intn(4); k++ {
			switch r.Intn(4) {
			case 0:
				d.AddNodes = append(d.AddNodes, NodeSpec{Label: labels[r.Intn(2)]})
				d.AddEdges = append(d.AddEdges, [2]NodeID{NewNodeRef(len(d.AddNodes) - 1), NodeID(r.Intn(g.Cap()))})
			case 1:
				d.AddEdges = append(d.AddEdges, [2]NodeID{NodeID(r.Intn(g.Cap())), NodeID(r.Intn(g.Cap()))})
			case 2:
				d.DelEdges = append(d.DelEdges, [2]NodeID{NodeID(r.Intn(g.Cap())), NodeID(r.Intn(g.Cap()))})
			case 3:
				d.DelNodes = append(d.DelNodes, NodeID(r.Intn(g.Cap())))
			}
		}
		before := fingerprintOf(g)
		_, undo, _ := d.ApplyLogged(g) // errors expected: random dels often miss
		undo.Revert(g)
		if got := fingerprintOf(g); !reflect.DeepEqual(got, before) {
			t.Fatalf("step %d: revert diverged for delta %+v", step, d)
		}
	}
}

func TestDeltaJSONRoundTrip(t *testing.T) {
	in := NewInterner()
	d := &Delta{
		AddNodes: []NodeSpec{
			{Label: in.Intern("movie"), Value: StringValue("Up")},
			{Label: in.Intern("year"), Value: IntValue(2009)},
		},
		AddEdges: [][2]NodeID{{NewNodeRef(0), NewNodeRef(1)}, {NewNodeRef(0), 7}},
		DelEdges: [][2]NodeID{{3, 4}},
		DelNodes: []NodeID{9},
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDeltaJSON(bytes.NewReader(buf.Bytes()), in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, d)
	}
}

func TestDeltaJSONRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":        `{"nodes": []}`,
		"misspelled field":     `{"add_node": [{"label": "a"}]}`,
		"trailing data":        `{"del_nodes": [1]} {"del_nodes": [2]}`,
		"dangling new-node":    `{"add_nodes": [{"label": "a"}], "add_edges": [[-2, 0]]}`,
		"negative del edge":    `{"del_edges": [[-1, 3]]}`,
		"negative del node":    `{"del_nodes": [-1]}`,
		"object value":         `{"add_nodes": [{"label": "a", "value": {"Kind": 9}}]}`,
		"fractional value":     `{"add_nodes": [{"label": "a", "value": 1.5}]}`,
		"not a delta document": `[1, 2, 3]`,
	}
	for name, doc := range cases {
		if _, err := ReadDeltaJSON(strings.NewReader(doc), NewInterner()); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// FuzzDeltaJSON checks that arbitrary input never panics the codec, that
// whatever decodes re-encodes canonically (decode → encode → decode is a
// fixpoint, NewNodeRef negative encodings included), and that applying the
// decoded delta transactionally leaves a reverted graph bit-identical.
func FuzzDeltaJSON(f *testing.F) {
	f.Add([]byte(`{"add_nodes": [{"label": "movie", "value": "Up"}, {"label": "year", "value": 2009}], "add_edges": [[-1, 0], [-2, -1]]}`))
	f.Add([]byte(`{"add_edges": [[0, 1]], "del_edges": [[1, 2]], "del_nodes": [3]}`))
	f.Add([]byte(`{"nodes": []}`))
	f.Add([]byte(`{"del_nodes": [-1]}`))
	f.Add([]byte(`{}`))
	// Promoted corpus findings (see delta_json_regression_test.go for the
	// named regressions): boundary NewNodeRef chains and extreme refs.
	f.Add([]byte(`{"add_nodes": [{"label": "x"}, {"label": "x"}, {"label": "x"}], "add_edges": [[-3, -2], [-2, -1], [-1, 0]]}`))
	f.Add([]byte(`{"add_nodes": [{"label": "a"}], "add_edges": [[-9223372036854775808, 0]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		in := NewInterner()
		d, err := ReadDeltaJSON(bytes.NewReader(data), in)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := d.WriteJSON(&buf, in); err != nil {
			t.Fatalf("encode decoded delta: %v", err)
		}
		d2, err := ReadDeltaJSON(bytes.NewReader(buf.Bytes()), in)
		if err != nil {
			t.Fatalf("re-decode own encoding %q: %v", buf.Bytes(), err)
		}
		var buf2 bytes.Buffer
		if err := d2.WriteJSON(&buf2, in); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("encoding not canonical:\n first %q\nsecond %q", buf.Bytes(), buf2.Bytes())
		}
		g := New(in)
		a := g.AddNodeNamed("A", Value{})
		b := g.AddNodeNamed("B", Value{})
		g.MustAddEdge(a, b)
		before := fingerprintOf(g)
		_, undo, _ := d.ApplyLogged(g)
		undo.Revert(g)
		if !reflect.DeepEqual(fingerprintOf(g), before) {
			t.Fatalf("apply+revert changed the graph for delta %+v", d)
		}
	})
}
