package graph

import "sort"

// Stats summarizes a graph's shape; the constraint-discovery heuristics of
// §II ("Discovering access constraints") consume these numbers.
type Stats struct {
	NumNodes  int
	NumEdges  int
	NumLabels int
	// LabelCounts maps each label to its node count (type-1 candidates).
	LabelCounts map[Label]int
	// MaxDegreeByLabel maps each label l to the maximum neighbor count of
	// any l-labeled node (degree-bound candidates).
	MaxDegreeByLabel map[Label]int
	// MaxLabelNeighbors maps (l, l') to the maximum number of l'-labeled
	// neighbors of any l-labeled node (type-2 candidates).
	MaxLabelNeighbors map[[2]Label]int
}

// ComputeStats scans g once and returns its Stats.
func ComputeStats(g *Graph) *Stats {
	s := &Stats{
		NumNodes:          g.NumNodes(),
		NumEdges:          g.NumEdges(),
		LabelCounts:       make(map[Label]int),
		MaxDegreeByLabel:  make(map[Label]int),
		MaxLabelNeighbors: make(map[[2]Label]int),
	}
	perNode := make(map[Label]int) // scratch: neighbor label -> count
	g.Nodes(func(v NodeID) bool {
		l := g.LabelOf(v)
		s.LabelCounts[l]++
		nbs := g.Neighbors(v)
		if len(nbs) > s.MaxDegreeByLabel[l] {
			s.MaxDegreeByLabel[l] = len(nbs)
		}
		for k := range perNode {
			delete(perNode, k)
		}
		for _, w := range nbs {
			perNode[g.LabelOf(w)]++
		}
		for wl, c := range perNode {
			key := [2]Label{l, wl}
			if c > s.MaxLabelNeighbors[key] {
				s.MaxLabelNeighbors[key] = c
			}
		}
		return true
	})
	s.NumLabels = len(s.LabelCounts)
	return s
}

// DegreeHistogram returns the sorted distinct degrees and their node counts.
func DegreeHistogram(g *Graph) (degrees []int, counts []int) {
	h := make(map[int]int)
	g.Nodes(func(v NodeID) bool {
		h[g.Degree(v)]++
		return true
	})
	for d := range h {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	counts = make([]int, len(degrees))
	for i, d := range degrees {
		counts[i] = h[d]
	}
	return degrees, counts
}
