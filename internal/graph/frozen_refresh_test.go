package graph

import (
	"math/rand"
	"testing"
)

// checkFrozenEqualsGraph asserts f reflects g's exact adjacency for every
// ID in either cap (plus a margin beyond both).
func checkFrozenEqualsGraph(t *testing.T, f *Frozen, g *Graph) {
	t.Helper()
	if f.Cap() != g.Cap() {
		t.Fatalf("Cap = %d, want %d", f.Cap(), g.Cap())
	}
	if f.NumEdges() != g.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d", f.NumEdges(), g.NumEdges())
	}
	for v := NodeID(0); int(v) < g.Cap()+3; v++ {
		if got, want := f.Out(v), sortedIDs(g.Out(v)); !equalIDs(got, want) {
			t.Fatalf("Out(%d) = %v, want %v", v, got, want)
		}
		if got, want := f.In(v), sortedIDs(g.In(v)); !equalIDs(got, want) {
			t.Fatalf("In(%d) = %v, want %v", v, got, want)
		}
	}
	g.Edges(func(from, to NodeID) bool {
		if !f.HasEdge(from, to) {
			t.Fatalf("HasEdge(%d,%d) = false for a present edge", from, to)
		}
		return true
	})
}

func equalIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// refreshRows mirrors what the store feeds Refresh: ΔG ∪ NbG(ΔG) computed
// before the delta, plus the IDs the delta inserted.
func refreshRows(g *Graph, d *Delta) func(newIDs []NodeID) []NodeID {
	touched := d.Touched(g)
	return func(newIDs []NodeID) []NodeID {
		rows := make([]NodeID, 0, len(touched)+len(newIDs))
		for v := range touched {
			rows = append(rows, v)
		}
		return append(rows, newIDs...)
	}
}

func TestFrozenRefreshIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := frozenTestGraph(t, 3, 80, 300)
	f := g.Freeze()
	live := g.NodeList()
	// Enough epochs to cross maxPatchDepth several times (exercising the
	// flatten path) while staying under the full-refreeze threshold.
	for epoch := 0; epoch < 40; epoch++ {
		d := &Delta{}
		switch epoch % 4 {
		case 0:
			d.AddNodes = []NodeSpec{{Label: g.Interner().Intern("B")}}
			d.AddEdges = [][2]NodeID{{NewNodeRef(0), live[r.Intn(len(live))]}}
		case 1:
			d.AddEdges = [][2]NodeID{{live[r.Intn(len(live))], live[r.Intn(len(live))]}}
		case 2:
			v := live[r.Intn(len(live))]
			if outs := g.Out(v); len(outs) > 0 {
				d.DelEdges = [][2]NodeID{{v, outs[0]}}
			}
		case 3:
			i := r.Intn(len(live))
			d.DelNodes = []NodeID{live[i]}
			live = append(live[:i], live[i+1:]...)
		}
		rows := refreshRows(g, d)
		newIDs, err := d.Apply(g)
		if err != nil && err != ErrDupEdge {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		live = append(live, newIDs...)
		f = f.Refresh(g, rows(newIDs))
		checkFrozenEqualsGraph(t, f, g)
		if f.Depth() > maxPatchDepth {
			t.Fatalf("epoch %d: depth %d exceeds bound", epoch, f.Depth())
		}
	}
	if f.Depth() == 0 {
		t.Fatal("refresh never produced a patch layer — the incremental path was not exercised")
	}
}

func TestFrozenRefreshDoesNotMutatePredecessors(t *testing.T) {
	g := New(nil)
	a := g.AddNodeNamed("A", Value{})
	b := g.AddNodeNamed("A", Value{})
	c := g.AddNodeNamed("A", Value{})
	g.MustAddEdge(a, b)
	f0 := g.Freeze()
	g.MustAddEdge(a, c)
	f1 := f0.Refresh(g, []NodeID{a, c})
	if err := g.RemoveEdge(a, b); err != nil {
		t.Fatal(err)
	}
	f2 := f1.Refresh(g, []NodeID{a, b})

	if got := f0.Out(a); !equalIDs(got, []NodeID{b}) {
		t.Fatalf("epoch-0 view changed: Out(a) = %v", got)
	}
	if got := f1.Out(a); !equalIDs(got, []NodeID{b, c}) {
		t.Fatalf("epoch-1 view changed: Out(a) = %v", got)
	}
	if got := f2.Out(a); !equalIDs(got, []NodeID{c}) {
		t.Fatalf("epoch-2 view wrong: Out(a) = %v", got)
	}
	if f0.HasEdge(a, c) || !f2.HasEdge(a, c) {
		t.Fatal("HasEdge views leaked across epochs")
	}
}

func TestFrozenRefreshFallsBackToFreeze(t *testing.T) {
	g := New(nil)
	l := g.Interner().Intern("A")
	n := 6000 // cap must exceed 4×refreezeMinRows for the fallback to arm
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = g.AddNode(l, Value{})
	}
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(ids[i], ids[i+1])
	}
	f := g.Freeze()
	r := rand.New(rand.NewSource(9))
	sawRebuild := false
	for epoch := 0; epoch < 30; epoch++ {
		// Touch a wide row range so the cumulative patch count crosses
		// refreezeMinRows and a quarter of the ID space.
		rows := make([]NodeID, 0, 160)
		d := &Delta{}
		for k := 0; k < 80; k++ {
			from, to := ids[r.Intn(n)], ids[r.Intn(n)]
			if from != to && !g.HasEdge(from, to) {
				d.AddEdges = append(d.AddEdges, [2]NodeID{from, to})
			}
		}
		rowsFn := refreshRows(g, d)
		if _, err := d.Apply(g); err != nil && err != ErrDupEdge {
			t.Fatal(err)
		}
		f = f.Refresh(g, rowsFn(rows))
		if f.Depth() == 0 && epoch > 0 {
			sawRebuild = true
		}
		checkFrozenEqualsGraph(t, f, g)
	}
	if !sawRebuild {
		t.Fatal("patched fraction never triggered a full re-freeze")
	}
}
