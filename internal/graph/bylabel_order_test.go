package graph

import (
	"bytes"
	"sort"
	"testing"
)

// orderedLabelRows asserts every byLabel row is ascending — the invariant
// that makes a snapshot-recovered graph (which rebuilds byLabel in ID
// order) enumerate label candidates exactly like the live instance.
func orderedLabelRows(t *testing.T, g *Graph, when string) {
	t.Helper()
	for _, l := range g.Labels() {
		row := g.NodesByLabel(l)
		if !sort.SliceIsSorted(row, func(i, j int) bool { return row[i] < row[j] }) {
			t.Fatalf("%s: byLabel[%v] = %v not ascending", when, l, row)
		}
	}
}

// TestNodesByLabelStaysSorted: deletions from the middle of a label row
// and tombstone revivals (delta rollback) must both preserve the
// ascending-ID order of NodesByLabel.
func TestNodesByLabelStaysSorted(t *testing.T) {
	in := NewInterner()
	g := New(in)
	m := in.Intern("m")
	for i := 0; i < 6; i++ {
		g.AddNode(m, Value{})
	}
	orderedLabelRows(t, g, "after inserts")

	// Middle deletions: swap-remove would leave [0 5 2 4] here.
	if err := g.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveNode(3); err != nil {
		t.Fatal(err)
	}
	orderedLabelRows(t, g, "after removes")
	before := append([]NodeID(nil), g.NodesByLabel(m)...)

	// Rollback revives tombstones: node 2 must come back between 0 and 4,
	// not at the end of the row.
	d := &Delta{DelNodes: []NodeID{2}}
	_, undo, err := d.ApplyLogged(g)
	if err != nil {
		t.Fatal(err)
	}
	orderedLabelRows(t, g, "after delete 2")
	undo.Revert(g)
	orderedLabelRows(t, g, "after revert")
	if got := g.NodesByLabel(m); !equalIDs(got, before) {
		t.Fatalf("revert changed NodesByLabel order: got %v want %v", got, before)
	}
}

// TestSnapshotPreservesNodesByLabel: after churn, a snapshot round-trip
// must reproduce NodesByLabel rows exactly — order included — so a
// recovered daemon enumerates (and, under a match limit, answers) like
// the live one.
func TestSnapshotPreservesNodesByLabel(t *testing.T) {
	in := NewInterner()
	g := New(in)
	labels := []Label{in.Intern("a"), in.Intern("b"), in.Intern("c")}
	for i := 0; i < 30; i++ {
		g.AddNode(labels[i%3], IntValue(int64(i)))
	}
	for _, v := range []NodeID{4, 7, 13, 22, 28} {
		if err := g.RemoveNode(v); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := g.WriteSnapshotJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadSnapshotJSON(&buf, in)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labels {
		if !equalIDs(g.NodesByLabel(l), g2.NodesByLabel(l)) {
			t.Fatalf("label %v: live row %v != recovered row %v", l, g.NodesByLabel(l), g2.NodesByLabel(l))
		}
	}
}
