package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadNodeTSV parses a tab- or space-separated node table, one node per
// line:
//
//	<id> <label> [<value>]
//
// where <id> is any integer key (remapped to dense NodeIDs), <label> is a
// bare token, and the optional <value> is an int64 or a double-quoted
// string. Lines starting with '#' and blank lines are skipped. The
// returned map translates file IDs to graph IDs. Use together with
// ReadEdgeTSV to load datasets shipped as node/edge tables (e.g. SNAP
// exports enriched with labels).
func ReadNodeTSV(r io.Reader, g *Graph) (map[int64]NodeID, error) {
	idmap := make(map[int64]NodeID)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: node line %d: want \"id label [value]\", got %q", lineno, line)
		}
		id, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: node line %d: bad id %q: %w", lineno, fields[0], err)
		}
		if _, dup := idmap[id]; dup {
			return nil, fmt.Errorf("graph: node line %d: duplicate id %d", lineno, id)
		}
		val := NoValue()
		if len(fields) >= 3 {
			raw := strings.Join(fields[2:], " ")
			if strings.HasPrefix(raw, `"`) {
				s, err := strconv.Unquote(raw)
				if err != nil {
					return nil, fmt.Errorf("graph: node line %d: bad string value %q: %w", lineno, raw, err)
				}
				val = StringValue(s)
			} else {
				i, err := strconv.ParseInt(raw, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("graph: node line %d: bad value %q: %w", lineno, raw, err)
				}
				val = IntValue(i)
			}
		}
		idmap[id] = g.AddNodeNamed(fields[1], val)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return idmap, nil
}

// ReadEdgeTSV parses a whitespace-separated edge list, one directed edge
// per line ("<from> <to>"), resolving endpoints through the id map
// produced by ReadNodeTSV. Duplicate edges are skipped silently (common
// in web-crawl exports); unknown endpoints are errors.
func ReadEdgeTSV(r io.Reader, g *Graph, idmap map[int64]NodeID) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineno, added := 0, 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return added, fmt.Errorf("graph: edge line %d: want \"from to\", got %q", lineno, line)
		}
		from, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return added, fmt.Errorf("graph: edge line %d: bad from id: %w", lineno, err)
		}
		to, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return added, fmt.Errorf("graph: edge line %d: bad to id: %w", lineno, err)
		}
		vf, ok1 := idmap[from]
		vt, ok2 := idmap[to]
		if !ok1 || !ok2 {
			return added, fmt.Errorf("graph: edge line %d: unknown endpoint (%d, %d)", lineno, from, to)
		}
		switch err := g.AddEdge(vf, vt); err {
		case nil:
			added++
		case ErrDupEdge:
			// skip
		default:
			return added, err
		}
	}
	return added, sc.Err()
}
