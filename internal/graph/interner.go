package graph

import (
	"fmt"
	"sync"
)

// Label is an interned node label (an element of the alphabet Σ in the
// paper). Labels are small dense integers so they can index slices.
type Label int32

// NoLabel is the invalid label value.
const NoLabel Label = -1

// Interner maps label names to dense Label values and back. A single
// Interner is shared between a data graph, the pattern queries posed on it,
// and the access schema, so that label comparisons are integer comparisons.
//
// All methods are safe for concurrent use: a serving process parses
// incoming pattern queries (which interns labels) while engine workers
// resolve names for plans and error messages.
//
// The zero Interner is not ready to use; call NewInterner.
type Interner struct {
	mu     sync.RWMutex
	byName map[string]Label
	names  []string
}

// NewInterner returns an empty Interner.
func NewInterner() *Interner {
	return &Interner{byName: make(map[string]Label)}
}

// Intern returns the Label for name, allocating a fresh one on first use.
func (in *Interner) Intern(name string) Label {
	in.mu.RLock()
	l, ok := in.byName[name]
	in.mu.RUnlock()
	if ok {
		return l
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if l, ok := in.byName[name]; ok {
		return l
	}
	l = Label(len(in.names))
	in.byName[name] = l
	in.names = append(in.names, name)
	return l
}

// Lookup returns the Label for name without allocating; ok is false if the
// name has never been interned.
func (in *Interner) Lookup(name string) (l Label, ok bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	l, ok = in.byName[name]
	return l, ok
}

// Name returns the string for l, or a placeholder for unknown labels.
func (in *Interner) Name(l Label) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if l < 0 || int(l) >= len(in.names) {
		return fmt.Sprintf("<label %d>", int(l))
	}
	return in.names[l]
}

// Len reports the number of distinct labels interned so far.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.names)
}

// Names returns a copy of all interned names, indexed by Label.
func (in *Interner) Names() []string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	out := make([]string, len(in.names))
	copy(out, in.names)
	return out
}
