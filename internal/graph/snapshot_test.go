package graph

import (
	"bytes"
	"strings"
	"testing"
)

// buildTombstoned returns a graph with a hole in its ID space: node 1 is
// removed, so slots = 4 but only 3 nodes live.
func buildTombstoned(t *testing.T) (*Graph, *Interner) {
	t.Helper()
	in := NewInterner()
	g := New(in)
	a := g.AddNodeNamed("movie", StringValue("Up"))
	b := g.AddNodeNamed("year", IntValue(2009))
	c := g.AddNodeNamed("award", NoValue())
	d := g.AddNodeNamed("actor", NoValue())
	g.MustAddEdge(a, b)
	g.MustAddEdge(a, c)
	g.MustAddEdge(d, a)
	if err := g.RemoveNode(b); err != nil {
		t.Fatal(err)
	}
	return g, in
}

func TestSnapshotRoundTripPreservesIDSpace(t *testing.T) {
	g, _ := buildTombstoned(t)
	var buf bytes.Buffer
	if err := g.WriteSnapshotJSON(&buf); err != nil {
		t.Fatal(err)
	}
	in2 := NewInterner()
	g2, err := ReadSnapshotJSON(bytes.NewReader(buf.Bytes()), in2)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Cap() != g.Cap() {
		t.Fatalf("slots: got %d want %d", g2.Cap(), g.Cap())
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("counts: got |V|=%d |E|=%d want |V|=%d |E|=%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	if g2.Contains(1) {
		t.Fatal("tombstone slot 1 came back live")
	}
	// The next assigned ID must match the live graph's: both continue at
	// the end of the preserved slot space.
	id1 := g.AddNodeNamed("director", NoValue())
	id2 := g2.AddNodeNamed("director", NoValue())
	if id1 != id2 {
		t.Fatalf("post-load AddNode diverged: live %d vs loaded %d", id1, id2)
	}
	// Round-tripping the loaded graph reproduces the exact bytes: node
	// order, edge row order and values all survive.
	var buf2 bytes.Buffer
	gRe, err := ReadSnapshotJSON(bytes.NewReader(buf.Bytes()), NewInterner())
	if err != nil {
		t.Fatal(err)
	}
	if err := gRe.WriteSnapshotJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("snapshot not byte-stable:\n%s\nvs\n%s", buf.Bytes(), buf2.Bytes())
	}
}

func TestSnapshotPreservesRowOrder(t *testing.T) {
	in := NewInterner()
	g := New(in)
	var ids []NodeID
	for i := 0; i < 5; i++ {
		ids = append(ids, g.AddNodeNamed("n", NoValue()))
	}
	// Insert out-edges of node 0 in a non-sorted order, then delete one so
	// the swap-delete leaves a history-dependent row order.
	g.MustAddEdge(ids[0], ids[3])
	g.MustAddEdge(ids[0], ids[1])
	g.MustAddEdge(ids[0], ids[4])
	g.MustAddEdge(ids[0], ids[2])
	if err := g.RemoveEdge(ids[0], ids[1]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteSnapshotJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadSnapshotJSON(bytes.NewReader(buf.Bytes()), NewInterner())
	if err != nil {
		t.Fatal(err)
	}
	want := g.Out(ids[0])
	got := g2.Out(ids[0])
	if len(got) != len(want) {
		t.Fatalf("row length: got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row order not preserved: got %v want %v", got, want)
		}
	}
}

func TestSnapshotReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"unknown field":   `{"slots": 1, "nodes": [{"id": 0, "label": "a"}], "edges": [], "extra": 1}`,
		"trailing data":   `{"slots": 1, "nodes": [{"id": 0, "label": "a"}], "edges": []} {}`,
		"negative slots":  `{"slots": -1, "nodes": [], "edges": []}`,
		"too many nodes":  `{"slots": 1, "nodes": [{"id": 0, "label": "a"}, {"id": 1, "label": "a"}], "edges": []}`,
		"id out of range": `{"slots": 1, "nodes": [{"id": 1, "label": "a"}], "edges": []}`,
		"ids unordered":   `{"slots": 2, "nodes": [{"id": 1, "label": "a"}, {"id": 0, "label": "a"}], "edges": []}`,
		"duplicate id":    `{"slots": 2, "nodes": [{"id": 0, "label": "a"}, {"id": 0, "label": "a"}], "edges": []}`,
		"edge to hole":    `{"slots": 2, "nodes": [{"id": 0, "label": "a"}], "edges": [[0, 1]]}`,
		"edge oob":        `{"slots": 1, "nodes": [{"id": 0, "label": "a"}], "edges": [[0, 7]]}`,
		"duplicate edge":  `{"slots": 2, "nodes": [{"id": 0, "label": "a"}, {"id": 1, "label": "a"}], "edges": [[0, 1], [0, 1]]}`,
	}
	for name, doc := range cases {
		if _, err := ReadSnapshotJSON(strings.NewReader(doc), NewInterner()); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestSnapshotDeltaReplayIdentity is the property recovery rests on: a
// delta applied to a snapshot-loaded graph behaves exactly as it did on
// the live graph — same assigned IDs, same resulting snapshot bytes.
func TestSnapshotDeltaReplayIdentity(t *testing.T) {
	g, in := buildTombstoned(t)
	var buf bytes.Buffer
	if err := g.WriteSnapshotJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadSnapshotJSON(bytes.NewReader(buf.Bytes()), in)
	if err != nil {
		t.Fatal(err)
	}
	d := &Delta{
		AddNodes: []NodeSpec{{Label: in.Intern("director"), Value: StringValue("Docter")}},
		AddEdges: [][2]NodeID{{NewNodeRef(0), 0}, {3, NewNodeRef(0)}},
		DelEdges: [][2]NodeID{{0, 2}},
	}
	ids1, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	ids2, err := d.Apply(g2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids1) != 1 || len(ids2) != 1 || ids1[0] != ids2[0] {
		t.Fatalf("assigned IDs diverged: %v vs %v", ids1, ids2)
	}
	var b1, b2 bytes.Buffer
	if err := g.WriteSnapshotJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := g2.WriteSnapshotJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("post-delta snapshots diverged:\n%s\nvs\n%s", b1.Bytes(), b2.Bytes())
	}
}
