package graph

import (
	"bytes"
	"errors"
	"strconv"
	"strings"
	"testing"
)

// Named regression tests for graph.Delta JSON codec edge cases surfaced
// by FuzzDeltaJSON's corpus: each pins a behavior the fuzzer found worth
// exercising so a codec change cannot silently regress it.

// TestDeltaJSONEmptyDelta: `{}` is a valid delta with no operations. It
// round-trips to itself, reports Empty, and applies as a no-op — the WAL
// replay path must tolerate it, since an empty delta is appendable.
func TestDeltaJSONEmptyDelta(t *testing.T) {
	in := NewInterner()
	d, err := ReadDeltaJSON(strings.NewReader(`{}`), in)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() || d.Size() != 0 {
		t.Fatalf("decoded %+v, want empty", d)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "{}" {
		t.Fatalf("empty delta encodes as %q, want {}", got)
	}
	g := New(in)
	g.AddNodeNamed("a", Value{})
	ids, err := d.Apply(g)
	if err != nil || len(ids) != 0 {
		t.Fatalf("empty apply: ids=%v err=%v", ids, err)
	}
	if g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Fatal("empty delta mutated the graph")
	}
}

// TestDeltaJSONTombstonedTargets: a delta that decodes cleanly but names
// only tombstoned (removed) node IDs must fail structurally at apply
// time with the graph untouched — decoding cannot know liveness, so the
// tx layer is the backstop.
func TestDeltaJSONTombstonedTargets(t *testing.T) {
	in := NewInterner()
	g := New(in)
	a := g.AddNodeNamed("a", Value{})
	b := g.AddNodeNamed("b", Value{})
	g.MustAddEdge(a, b)
	if err := g.RemoveNode(b); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"edge to tombstone":      `{"add_edges": [[0, 1]]}`,
		"edge from tombstone":    `{"add_edges": [[1, 0]]}`,
		"delete tombstone":       `{"del_nodes": [1]}`,
		"delete tombstone edge":  `{"del_edges": [[0, 1]]}`,
		"wire insert->tombstone": `{"add_nodes": [{"label": "c"}], "add_edges": [[-1, 1]]}`,
	}
	for name, doc := range cases {
		d, err := ReadDeltaJSON(strings.NewReader(doc), in)
		if err != nil {
			t.Fatalf("%s: decode: %v (codec cannot reject liveness)", name, err)
		}
		pre := in.Len()
		_, rollback, err := d.ResolveLabels(in)
		if err != nil {
			t.Fatalf("%s: resolve: %v", name, err)
		}
		gg := g.Clone()
		ids, undo, err := d.ApplyLogged(gg)
		if err == nil {
			t.Fatalf("%s: applied against tombstone without error (ids %v)", name, ids)
		}
		if !errors.Is(err, ErrNoSuchNode) && !errors.Is(err, ErrNoSuchEdge) {
			t.Fatalf("%s: err = %v, want no-such-node/edge", name, err)
		}
		undo.Revert(gg)
		rollback()
		if in.Len() != pre {
			t.Fatalf("%s: rejected delta grew the interner (%d -> %d)", name, pre, in.Len())
		}
		if gg.NumNodes() != g.NumNodes() || gg.NumEdges() != g.NumEdges() || gg.Cap() != g.Cap() {
			t.Fatalf("%s: reverted graph diverged", name)
		}
	}
}

// TestDeltaJSONMaxNewNodeRefChain: the -1-k encoding at its extremes — a
// long chain where every edge references the newest inserted node, the
// boundary index (last valid k), and one past it (rejected at decode).
func TestDeltaJSONMaxNewNodeRefChain(t *testing.T) {
	in := NewInterner()
	const n = 64
	var doc strings.Builder
	doc.WriteString(`{"add_nodes": [`)
	for i := 0; i < n; i++ {
		if i > 0 {
			doc.WriteString(", ")
		}
		doc.WriteString(`{"label": "x"}`)
	}
	doc.WriteString(`], "add_edges": [`)
	for i := 1; i < n; i++ {
		if i > 1 {
			doc.WriteString(", ")
		}
		// Each new node points at the previous new node: [-1-i, -i].
		doc.WriteString("[")
		doc.WriteString(strconv.Itoa(-1 - i))
		doc.WriteString(", ")
		doc.WriteString(strconv.Itoa(-i))
		doc.WriteString("]")
	}
	doc.WriteString(`]}`)
	d, err := ReadDeltaJSON(strings.NewReader(doc.String()), in)
	if err != nil {
		t.Fatal(err)
	}
	commit, _, err := d.ResolveLabels(in)
	if err != nil {
		t.Fatal(err)
	}
	commit()
	g := New(in)
	ids, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != n || g.NumNodes() != n || g.NumEdges() != n-1 {
		t.Fatalf("chain applied to |V|=%d |E|=%d (%d ids)", g.NumNodes(), g.NumEdges(), len(ids))
	}
	for i := 1; i < n; i++ {
		if !g.HasEdge(ids[i], ids[i-1]) {
			t.Fatalf("chain edge %d -> %d missing", i, i-1)
		}
	}
	// Round trip preserves the NewNodeRef encoding verbatim.
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDeltaJSON(bytes.NewReader(buf.Bytes()), in)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.AddEdges) != n-1 || d2.AddEdges[n-2] != [2]NodeID{NewNodeRef(n - 1), NewNodeRef(n - 2)} {
		t.Fatalf("round trip lost the ref encoding: %v", d2.AddEdges[n-2])
	}

	// Boundary: -1-(n-1) is the last valid ref; -1-n dangles and the
	// whole document is rejected before any label is interned.
	okDoc := `{"add_nodes": [{"label": "y"}], "add_edges": [[` + strconv.Itoa(-1) + `, ` + strconv.Itoa(-1) + `]]}`
	if _, err := ReadDeltaJSON(strings.NewReader(okDoc), in); err != nil {
		t.Fatalf("self-loop on new node rejected: %v", err)
	}
	fresh := NewInterner()
	badDoc := `{"add_nodes": [{"label": "zqx"}], "add_edges": [[` + strconv.Itoa(-2) + `, 0]]}`
	if _, err := ReadDeltaJSON(strings.NewReader(badDoc), fresh); err == nil {
		t.Fatal("dangling ref -2 with one add_node decoded")
	}
	if _, ok := fresh.Lookup("zqx"); ok {
		t.Fatal("rejected document leaked a label into the interner")
	}
}

// TestDeltaJSONExtremeNegativeRef: a NewNodeRef near the NodeID minimum
// must not wrap around the -1-k decoding into a "valid" index.
func TestDeltaJSONExtremeNegativeRef(t *testing.T) {
	doc := `{"add_nodes": [{"label": "a"}], "add_edges": [[-9223372036854775808, 0]]}`
	if _, err := ReadDeltaJSON(strings.NewReader(doc), NewInterner()); err == nil {
		t.Fatal("minimum-int64 ref decoded as valid")
	}
}
