package graph

import "math/bits"

// DenseSet is a bitset over the dense NodeID space of a graph. It replaces
// map[NodeID]struct{} on hot paths: membership is one shift and mask, and
// iteration is cache-friendly. Size it with the owning graph's Cap so every
// live ID (and tombstone) is in range; out-of-range queries are safe and
// report absence.
//
// The zero DenseSet is empty and usable; Add grows the backing storage on
// demand. DenseSet is not safe for concurrent mutation; concurrent readers
// are fine.
type DenseSet struct {
	words []uint64
	n     int
}

// NewDenseSet returns an empty set pre-sized for IDs in [0, cap).
func NewDenseSet(cap int) *DenseSet {
	if cap < 0 {
		cap = 0
	}
	return &DenseSet{words: make([]uint64, (cap+63)/64)}
}

// grow ensures the word index w is addressable.
func (s *DenseSet) grow(w int) {
	if w < len(s.words) {
		return
	}
	words := make([]uint64, w+1)
	copy(words, s.words)
	s.words = words
}

// Add inserts v, reporting whether it was absent. Negative IDs are not
// representable; Add ignores them and returns false.
func (s *DenseSet) Add(v NodeID) bool {
	if v < 0 {
		return false
	}
	w, b := int(v)>>6, uint64(1)<<(uint(v)&63)
	s.grow(w)
	if s.words[w]&b != 0 {
		return false
	}
	s.words[w] |= b
	s.n++
	return true
}

// Has reports whether v is in the set.
func (s *DenseSet) Has(v NodeID) bool {
	if v < 0 {
		return false
	}
	w := int(v) >> 6
	return w < len(s.words) && s.words[w]&(1<<(uint(v)&63)) != 0
}

// Remove deletes v, reporting whether it was present.
func (s *DenseSet) Remove(v NodeID) bool {
	if v < 0 {
		return false
	}
	w := int(v) >> 6
	if w >= len(s.words) {
		return false
	}
	b := uint64(1) << (uint(v) & 63)
	if s.words[w]&b == 0 {
		return false
	}
	s.words[w] &^= b
	s.n--
	return true
}

// Len returns the number of elements.
func (s *DenseSet) Len() int { return s.n }

// Reset empties the set, keeping the backing storage for reuse.
func (s *DenseSet) Reset() {
	clear(s.words)
	s.n = 0
}

// ResetSparse empties the set by clearing only the bits of the given
// elements — O(len(elems)) instead of O(capacity). The caller must pass a
// superset of the set's contents (typically the slice it was built from).
func (s *DenseSet) ResetSparse(elems []NodeID) {
	for _, v := range elems {
		if v < 0 {
			continue
		}
		if w := int(v) >> 6; w < len(s.words) {
			s.words[w] &^= 1 << (uint(v) & 63)
		}
	}
	s.n = 0
}

// ForEach calls fn for every element in ascending order; iteration stops
// if fn returns false.
func (s *DenseSet) ForEach(fn func(NodeID) bool) {
	for w, word := range s.words {
		for word != 0 {
			t := bits.TrailingZeros64(word)
			if !fn(NodeID(w<<6 + t)) {
				return
			}
			word &= word - 1
		}
	}
}

// AppendTo appends the elements in ascending order to dst and returns the
// extended slice.
func (s *DenseSet) AppendTo(dst []NodeID) []NodeID {
	s.ForEach(func(v NodeID) bool {
		dst = append(dst, v)
		return true
	})
	return dst
}

// Cap returns the size of the dense ID space of g — one more than the
// largest ID ever assigned, including tombstones. Use it to size DenseSets
// and per-node scratch arrays indexed by NodeID.
func (g *Graph) Cap() int { return len(g.labels) }
