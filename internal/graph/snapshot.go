package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Snapshot codec: an ID-preserving serialization of a Graph, used by the
// WAL checkpoint/recovery path (internal/wal). Unlike WriteJSON/ReadJSON,
// which remap node IDs to fresh dense ones on load, a snapshot records the
// exact ID space — including tombstone holes left by removed nodes — so
// that a graph.Delta logged after the snapshot replays against the loaded
// graph exactly as it applied against the live one: AddNode continues from
// the same next ID, and every logged node reference resolves to the same
// node. Adjacency row order is preserved too (edges are written and
// re-inserted in row order), keeping the loaded instance equal to the live
// instance in every serialization-visible respect.

// jsonSnapshot is the on-disk form: slots is the size of the node-ID space
// (live nodes plus tombstones); nodes lists the live slots in ascending ID
// order; edges lists every edge in adjacency row order.
type jsonSnapshot struct {
	Slots int         `json:"slots"`
	Nodes []jsonNode  `json:"nodes"`
	Edges [][2]NodeID `json:"edges"`
}

// WriteSnapshotJSON serializes g to w as a single JSON document preserving
// the node-ID space (see the package note above). Files written here are
// read back with ReadSnapshotJSON, not ReadJSON.
func (g *Graph) WriteSnapshotJSON(w io.Writer) error {
	js := jsonSnapshot{Slots: g.Cap(), Nodes: make([]jsonNode, 0, g.numNodes)}
	g.Nodes(func(v NodeID) bool {
		js.Nodes = append(js.Nodes, jsonNode{
			ID:    v,
			Label: g.interner.Name(g.labels[v]),
			Value: g.values[v],
		})
		return true
	})
	js.Edges = make([][2]NodeID, 0, g.numEdges)
	g.Edges(func(from, to NodeID) bool {
		js.Edges = append(js.Edges, [2]NodeID{from, to})
		return true
	})
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(js); err != nil {
		return fmt.Errorf("graph: encode snapshot: %w", err)
	}
	return bw.Flush()
}

// ReadSnapshotJSON parses a snapshot written by WriteSnapshotJSON,
// reconstructing the exact node-ID space: IDs of live nodes are taken
// verbatim and unlisted slots below Slots become tombstones, so subsequent
// AddNode calls assign the same IDs the live graph would have. Decoding is
// strict: unknown fields, trailing data, out-of-range or non-increasing
// node IDs, and edges touching dead slots are all rejected. Labels are
// interned through in (nil allocates a fresh interner).
func ReadSnapshotJSON(r io.Reader, in *Interner) (*Graph, error) {
	var js jsonSnapshot
	dec := json.NewDecoder(bufio.NewReader(r))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("graph: decode snapshot: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("graph: decode snapshot: trailing data after document")
	}
	if js.Slots < 0 {
		return nil, fmt.Errorf("graph: decode snapshot: negative slot count %d", js.Slots)
	}
	if len(js.Nodes) > js.Slots {
		return nil, fmt.Errorf("graph: decode snapshot: %d nodes exceed %d slots", len(js.Nodes), js.Slots)
	}
	g := NewWithCapacity(in, js.Slots)
	g.labels = g.labels[:js.Slots]
	g.values = g.values[:js.Slots]
	g.out = g.out[:js.Slots]
	g.in = g.in[:js.Slots]
	for i := range g.labels {
		g.labels[i] = NoLabel // tombstone unless a node claims the slot
	}
	prev := NodeID(-1)
	for _, n := range js.Nodes {
		if n.ID <= prev {
			return nil, fmt.Errorf("graph: decode snapshot: node id %d out of order (after %d)", n.ID, prev)
		}
		if int(n.ID) >= js.Slots {
			return nil, fmt.Errorf("graph: decode snapshot: node id %d outside %d slots", n.ID, js.Slots)
		}
		prev = n.ID
		l := g.interner.Intern(n.Label)
		g.labels[n.ID] = l
		g.values[n.ID] = n.Value
		g.byLabel[l] = append(g.byLabel[l], n.ID)
		g.numNodes++
	}
	for i, e := range js.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("graph: decode snapshot: edge %d (%d,%d): %w", i, e[0], e[1], err)
		}
	}
	return g, nil
}
