package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the on-disk form of a Graph: a flat node table plus an edge
// list, with labels spelled out as strings so files are self-contained.
type jsonGraph struct {
	Nodes []jsonNode  `json:"nodes"`
	Edges [][2]NodeID `json:"edges"`
}

type jsonNode struct {
	ID    NodeID `json:"id"`
	Label string `json:"label"`
	Value Value  `json:"value,omitempty"`
}

// WriteJSON serializes g to w as a single JSON document.
func (g *Graph) WriteJSON(w io.Writer) error {
	jg := jsonGraph{Nodes: make([]jsonNode, 0, g.numNodes)}
	g.Nodes(func(v NodeID) bool {
		jg.Nodes = append(jg.Nodes, jsonNode{
			ID:    v,
			Label: g.interner.Name(g.labels[v]),
			Value: g.values[v],
		})
		return true
	})
	jg.Edges = make([][2]NodeID, 0, g.numEdges)
	g.Edges(func(from, to NodeID) bool {
		jg.Edges = append(jg.Edges, [2]NodeID{from, to})
		return true
	})
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jg); err != nil {
		return fmt.Errorf("graph: encode: %w", err)
	}
	return bw.Flush()
}

// ReadJSON parses a graph previously written by WriteJSON. Node IDs in the
// file are remapped to fresh dense IDs; the returned map translates file IDs
// to graph IDs. The interner in may be nil.
func ReadJSON(r io.Reader, in *Interner) (*Graph, map[NodeID]NodeID, error) {
	var jg jsonGraph
	dec := json.NewDecoder(bufio.NewReader(r))
	dec.DisallowUnknownFields() // reject misspelled or foreign documents
	if err := dec.Decode(&jg); err != nil {
		return nil, nil, fmt.Errorf("graph: decode: %w", err)
	}
	g := New(in)
	idmap := make(map[NodeID]NodeID, len(jg.Nodes))
	for _, n := range jg.Nodes {
		if _, dup := idmap[n.ID]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate node id %d in input", n.ID)
		}
		idmap[n.ID] = g.AddNodeNamed(n.Label, n.Value)
	}
	for _, e := range jg.Edges {
		from, ok1 := idmap[e[0]]
		to, ok2 := idmap[e[1]]
		if !ok1 || !ok2 {
			return nil, nil, fmt.Errorf("graph: edge (%d,%d) references unknown node", e[0], e[1])
		}
		if err := g.AddEdge(from, to); err != nil && err != ErrDupEdge {
			return nil, nil, err
		}
	}
	return g, idmap, nil
}
