package graph

import (
	"fmt"
	"strconv"
)

// ValueKind discriminates the dynamic type of a Value.
type ValueKind uint8

const (
	// KindNone marks the zero Value, used for nodes without attributes.
	KindNone ValueKind = iota
	// KindInt marks an int64-valued attribute (e.g. year = 2011).
	KindInt
	// KindString marks a string-valued attribute (e.g. country = "UK").
	KindString
)

// Value is the attribute value ν(v) attached to a node: the value of the
// node's label, per §II of the paper ("ν(v) is the attribute value of f(v),
// e.g., year = 2011"). It is a small sum type over int64 and string.
//
// The zero Value (KindNone) compares unequal to everything except another
// zero Value, so unattributed nodes never satisfy value predicates.
type Value struct {
	Kind ValueKind
	I    int64
	S    string
}

// IntValue returns an int64-typed Value.
func IntValue(i int64) Value { return Value{Kind: KindInt, I: i} }

// StringValue returns a string-typed Value.
func StringValue(s string) Value { return Value{Kind: KindString, S: s} }

// NoValue returns the zero Value.
func NoValue() Value { return Value{} }

// Equal reports whether v and w have the same kind and payload.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KindInt:
		return v.I == w.I
	case KindString:
		return v.S == w.S
	default:
		return true
	}
}

// Compare orders two Values of the same kind: it returns a negative number
// if v < w, zero if v == w, and a positive number if v > w. The boolean is
// false when the values are of different kinds (incomparable), in which
// case the int result is meaningless.
func (v Value) Compare(w Value) (int, bool) {
	if v.Kind != w.Kind || v.Kind == KindNone {
		return 0, v.Kind == w.Kind
	}
	switch v.Kind {
	case KindInt:
		switch {
		case v.I < w.I:
			return -1, true
		case v.I > w.I:
			return 1, true
		}
		return 0, true
	default: // KindString
		switch {
		case v.S < w.S:
			return -1, true
		case v.S > w.S:
			return 1, true
		}
		return 0, true
	}
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindString:
		return strconv.Quote(v.S)
	default:
		return "<none>"
	}
}

// MarshalJSON encodes the value as a bare int, a string, or null.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.Kind {
	case KindInt:
		return strconv.AppendInt(nil, v.I, 10), nil
	case KindString:
		return []byte(strconv.Quote(v.S)), nil
	default:
		return []byte("null"), nil
	}
}

// UnmarshalJSON decodes null, a JSON number (must be integral), or a string.
func (v *Value) UnmarshalJSON(b []byte) error {
	s := string(b)
	switch {
	case s == "null":
		*v = Value{}
		return nil
	case len(s) > 0 && s[0] == '"':
		u, err := strconv.Unquote(s)
		if err != nil {
			return fmt.Errorf("graph: bad string value %s: %w", s, err)
		}
		*v = StringValue(u)
		return nil
	default:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("graph: bad numeric value %s: %w", s, err)
		}
		*v = IntValue(i)
		return nil
	}
}
