package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonDelta is the wire form of a Delta: labels are spelled out as strings
// so documents are self-contained, and AddEdges endpoints keep the
// NewNodeRef encoding (-1-k refers to add_nodes[k]) verbatim.
type jsonDelta struct {
	AddNodes []jsonDeltaNode `json:"add_nodes,omitempty"`
	AddEdges [][2]NodeID     `json:"add_edges,omitempty"`
	DelEdges [][2]NodeID     `json:"del_edges,omitempty"`
	DelNodes []NodeID        `json:"del_nodes,omitempty"`
}

type jsonDeltaNode struct {
	Label string `json:"label"`
	Value Value  `json:"value,omitzero"`
}

// WriteJSON serializes d to w as a single JSON document, resolving label
// names through in (staged labels resolve through the delta's own staged
// names, so an undecided delta round-trips).
func (d *Delta) WriteJSON(w io.Writer, in *Interner) error {
	jd := jsonDelta{
		AddEdges: d.AddEdges,
		DelEdges: d.DelEdges,
		DelNodes: d.DelNodes,
	}
	for i, spec := range d.AddNodes {
		name := ""
		if k, ok := isStagedLabel(spec.Label); ok {
			if k >= len(d.stagedNames) {
				return fmt.Errorf("graph: encode delta: add_nodes[%d] references staged label %d of %d", i, k, len(d.stagedNames))
			}
			name = d.stagedNames[k]
		} else {
			name = in.Name(spec.Label)
		}
		jd.AddNodes = append(jd.AddNodes, jsonDeltaNode{Label: name, Value: spec.Value})
	}
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(jd); err != nil {
		return fmt.Errorf("graph: encode delta: %w", err)
	}
	return bw.Flush()
}

// ReadDeltaJSON parses a delta written by Delta.WriteJSON. Decoding is
// strict: unknown fields, trailing data, out-of-range NewNodeRef indices
// in add_edges, and negative IDs in del_edges/del_nodes (where no
// new-node encoding exists) are all rejected — a delta that passes here
// can still fail structurally against a particular graph, but it is at
// least self-consistent. Known labels resolve through in; novel names
// are staged on the delta rather than interned, so a delta the store
// later rejects never grows the (permanent) shared interner — the write
// path commits the staged names via ResolveLabels only on acceptance.
func ReadDeltaJSON(r io.Reader, in *Interner) (*Delta, error) {
	var jd jsonDelta
	dec := json.NewDecoder(bufio.NewReader(r))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jd); err != nil {
		return nil, fmt.Errorf("graph: decode delta: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("graph: decode delta: trailing data after document")
	}
	// Validate first so a malformed document stages nothing.
	for i, e := range jd.AddEdges {
		for _, id := range e {
			if k, ok := IsNewNodeRef(id); ok && k >= len(jd.AddNodes) {
				return nil, fmt.Errorf("graph: decode delta: add_edges[%d] references add_nodes[%d] of %d", i, k, len(jd.AddNodes))
			}
		}
	}
	for i, e := range jd.DelEdges {
		if e[0] < 0 || e[1] < 0 {
			return nil, fmt.Errorf("graph: decode delta: del_edges[%d] has a negative endpoint", i)
		}
	}
	for i, v := range jd.DelNodes {
		if v < 0 {
			return nil, fmt.Errorf("graph: decode delta: del_nodes[%d] is negative", i)
		}
	}
	d := &Delta{
		AddEdges: jd.AddEdges,
		DelEdges: jd.DelEdges,
		DelNodes: jd.DelNodes,
	}
	for _, n := range jd.AddNodes {
		// Value decodes through its own strict codec (null, integral
		// number, or string), so n.Value is well-formed here.
		d.AddNodes = append(d.AddNodes, NodeSpec{Label: d.internOrStage(n.Label, in), Value: n.Value})
	}
	return d, nil
}
