package store

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/wal"
	"boundedg/internal/workload"
)

// snapBytes canonicalizes graph + indexes through the ID-preserving
// codecs, so byte equality means the recovered state is exactly the live
// one — ID space, tombstones and all.
func snapBytes(t testing.TB, g *graph.Graph, idx *access.IndexSet, in *graph.Interner) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteSnapshotJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := idx.WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func copyWALDir(t testing.TB, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func recoverDir(t testing.TB, path string) (*graph.Graph, *access.IndexSet, *graph.Interner, *wal.Dir, *wal.RecoverInfo) {
	t.Helper()
	in := graph.NewInterner()
	d, err := wal.OpenDir(path, in)
	if err != nil {
		t.Fatal(err)
	}
	g, idx, info, err := d.Recover()
	if err != nil {
		t.Fatal(err)
	}
	return g, idx, in, d, info
}

// reinternDelta re-encodes d through the wire codec, translating interned
// Label values between interners — what a logged record goes through when
// it is replayed into a recovered process with a fresh interner.
func reinternDelta(t testing.TB, d *graph.Delta, from, to *graph.Interner) *graph.Delta {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf, from); err != nil {
		t.Fatal(err)
	}
	nd, err := graph.ReadDeltaJSON(&buf, to)
	if err != nil {
		t.Fatal(err)
	}
	return nd
}

// TestStoreDurableCrashRecovery drives a random accepted/rejected update
// stream through a WAL-backed store, killing the daemon (by copying the
// WAL directory, which captures the exact on-disk state a kill would
// leave) after every accepted commit and twice mid-stream around explicit
// checkpoints. Every kill point must recover to a state byte-identical to
// the uninterrupted reference at that prefix; one mid-stream recovery is
// then resumed as a fresh durable store and must converge on the
// reference's final bytes.
func TestStoreDurableCrashRecovery(t *testing.T) {
	ds := workload.IMDb(0.05, 7)
	idx, viols := access.Build(ds.G, ds.Schema)
	if viols != nil {
		t.Fatal(viols[0])
	}
	// The reference applies the same deltas to an independent instance.
	refG := ds.G.Clone()
	refIdx := idx.Clone()

	dir := t.TempDir()
	wd, err := wal.OpenDir(dir, ds.In)
	if err != nil {
		t.Fatal(err)
	}
	if err := wd.Init(0, ds.G, idx); err != nil {
		t.Fatal(err)
	}
	st := New(ds.G, idx, WithWAL(wd, true))

	type kill struct {
		dir   string // copied WAL directory
		want  []byte // reference bytes at that prefix
		epoch uint64 // epoch the recovery must land on
		n     int    // accepted deltas at this point
	}
	var kills []kill
	var accepted []*graph.Delta // the accepted stream, for the resume test
	r := rand.New(rand.NewSource(41))
	const steps = 60
	for i := 0; i < steps; i++ {
		d := randomDelta(r, refG)
		_, refErr := refIdx.ApplyDeltaTx(refG, d.Clone())
		res, err := st.Apply(d.Clone())
		if (refErr == nil) != (err == nil) {
			t.Fatalf("step %d: store and reference disagree on acceptance: %v vs %v", i, err, refErr)
		}
		if err != nil {
			continue
		}
		accepted = append(accepted, d)
		kills = append(kills, kill{
			dir:   copyWALDir(t, dir),
			want:  snapBytes(t, refG, refIdx, ds.In),
			epoch: res.Epoch,
			n:     len(accepted),
		})
		if len(accepted) == 15 || len(accepted) == 30 {
			// Mid-stream checkpoint: later kills recover from this
			// snapshot plus a shorter tail.
			if err := st.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			kills = append(kills, kill{
				dir:   copyWALDir(t, dir),
				want:  snapBytes(t, refG, refIdx, ds.In),
				epoch: res.Epoch,
				n:     len(accepted),
			})
		}
	}
	finalWant := snapBytes(t, refG, refIdx, ds.In)
	finalEpoch := st.Epoch()

	for i, k := range kills {
		g2, idx2, in2, d2, info := recoverDir(t, k.dir)
		if info.Epoch != k.epoch {
			t.Fatalf("kill %d: recovered to epoch %d, want %d", i, info.Epoch, k.epoch)
		}
		if got := snapBytes(t, g2, idx2, in2); !bytes.Equal(got, k.want) {
			t.Fatalf("kill %d (epoch %d): recovered state diverges from reference", i, k.epoch)
		}
		d2.Close()
	}

	// Resume from a mid-stream kill: the recovered store must accept the
	// rest of the stream and converge on the reference's final state,
	// with epoch numbering continuing where the crash left off.
	resumeAt := len(accepted) / 2
	var resumeKill kill
	for _, k := range kills {
		if k.n == resumeAt {
			resumeKill = k
			break
		}
	}
	g2, idx2, in2, d2, info := recoverDir(t, resumeKill.dir)
	st2 := New(g2, idx2, WithWAL(d2, true), WithBaseEpoch(info.Epoch))
	if st2.Epoch() != info.Epoch {
		t.Fatalf("resumed store starts at epoch %d, want %d", st2.Epoch(), info.Epoch)
	}
	for i, d := range accepted[resumeAt:] {
		if _, err := st2.Apply(reinternDelta(t, d, ds.In, in2)); err != nil {
			t.Fatalf("resume step %d: %v", i, err)
		}
	}
	snap := st2.Acquire()
	got := snapBytes(t, snap.G, snap.Idx, in2)
	snap.Release()
	if !bytes.Equal(got, finalWant) {
		t.Fatal("resumed store's final state diverges from the uninterrupted reference")
	}
	if st2.Epoch() != finalEpoch {
		t.Fatalf("resumed store ends at epoch %d, uninterrupted run at %d", st2.Epoch(), finalEpoch)
	}
	st2.Close()
	d2.Close()
	st.Close()
}

// TestStoreWALTailBeyondPublish covers the kill window between WAL append
// and snapshot publish: a record that reached the log but whose epoch was
// never published must be replayed on recovery (it was validated before
// the append), yielding the state the commit was about to publish.
func TestStoreWALTailBeyondPublish(t *testing.T) {
	ds := workload.IMDb(0.05, 9)
	idx, viols := access.Build(ds.G, ds.Schema)
	if viols != nil {
		t.Fatal(viols[0])
	}
	dir := t.TempDir()
	wd, err := wal.OpenDir(dir, ds.In)
	if err != nil {
		t.Fatal(err)
	}
	if err := wd.Init(0, ds.G, idx); err != nil {
		t.Fatal(err)
	}
	st := New(ds.G, idx, WithWAL(wd, true))
	r := rand.New(rand.NewSource(5))
	for n := 0; n < 10; {
		if _, err := st.Apply(randomDelta(r, mustG(st))); err == nil {
			n++
		}
	}
	st.Close()
	wd.Close()

	// First recovery: the clean published state.
	g1, idx1, in1, d1, info1 := recoverDir(t, dir)
	// Append one more accepted delta to the log WITHOUT publishing — the
	// exact on-disk state of a crash between append and publish.
	r2 := rand.New(rand.NewSource(6))
	wantG := g1.Clone()
	wantIdx := idx1.Clone()
	var extra *graph.Delta
	for {
		extra = randomDelta(r2, g1)
		if _, err := wantIdx.ApplyDeltaTx(wantG, extra.Clone()); err == nil {
			break
		}
	}
	if _, err := d1.Log().Append(info1.Epoch+1, extra); err != nil {
		t.Fatal(err)
	}
	d1.Close()

	g2, idx2, in2, d2, info2 := recoverDir(t, dir)
	defer d2.Close()
	if info2.Epoch != info1.Epoch+1 {
		t.Fatalf("recovered to epoch %d, want %d", info2.Epoch, info1.Epoch+1)
	}
	if !bytes.Equal(snapBytes(t, g2, idx2, in2), snapBytes(t, wantG, wantIdx, in1)) {
		t.Fatal("unpublished-but-logged delta not replayed to the committed state")
	}
}

// mustG returns the store's current graph for test delta drawing (the
// reference to it is read-only and released immediately; the test's
// serial use makes this safe).
func mustG(st *Store) *graph.Graph {
	snap := st.Acquire()
	defer snap.Release()
	return snap.G
}

// TestGroupCommitCoalesces forces a batch deterministically: with the
// writer lock held, eight Apply calls queue up; releasing the lock lets
// one leader commit all of them as a single epoch with a single fsync.
func TestGroupCommitCoalesces(t *testing.T) {
	g, idx, in := benchState(t)
	dir := t.TempDir()
	wd, err := wal.OpenDir(dir, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := wd.Init(0, g, idx); err != nil {
		t.Fatal(err)
	}
	st := New(g, idx, WithWAL(wd, true))
	label := in.Intern("item")

	// One serial apply first, so the shadow clone and its epoch are paid.
	if _, err := st.Apply(&graph.Delta{AddNodes: []graph.NodeSpec{{Label: label}}}); err != nil {
		t.Fatal(err)
	}
	preStats := st.Stats()

	const writers = 8
	st.mu.Lock() // stall the leader path; Apply calls pile up in the queue
	var wg sync.WaitGroup
	results := make([]Result, writers)
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = st.Apply(&graph.Delta{AddNodes: []graph.NodeSpec{{Label: label}}})
		}(i)
	}
	for {
		st.qmu.Lock()
		n := len(st.queue)
		st.qmu.Unlock()
		if n == writers {
			break
		}
	}
	st.mu.Unlock()
	wg.Wait()

	stats := st.Stats()
	if got := stats.Applied - preStats.Applied; got != writers {
		t.Fatalf("applied %d deltas, want %d", got, writers)
	}
	if got := stats.Batches - preStats.Batches; got != 1 {
		t.Fatalf("used %d batches for the burst, want 1", got)
	}
	if got := stats.Epoch - preStats.Epoch; got != 1 {
		t.Fatalf("consumed %d epochs for the burst, want 1", got)
	}
	if got := stats.WALSyncs - preStats.WALSyncs; got != 1 {
		t.Fatalf("issued %d fsyncs for the burst, want 1", got)
	}
	var lastOff int64
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("writer %d: %v", i, errs[i])
		}
		if results[i].Epoch != stats.Epoch {
			t.Fatalf("writer %d published epoch %d, want %d", i, results[i].Epoch, stats.Epoch)
		}
		if results[i].LogOffset <= 0 {
			t.Fatalf("writer %d has no log offset", i)
		}
		if results[i].LogOffset > lastOff {
			lastOff = results[i].LogOffset
		}
	}
	if stats.WALOffset != lastOff {
		t.Fatalf("stats offset %d, max reported record offset %d", stats.WALOffset, lastOff)
	}
	// All eight records must survive recovery.
	st.Close()
	wd.Close()
	_, _, _, d2, info := recoverDir(t, dir)
	defer d2.Close()
	if info.Records != 1+writers {
		t.Fatalf("recovered %d records, want %d", info.Records, 1+writers)
	}
	if info.Epoch != stats.Epoch {
		t.Fatalf("recovered to epoch %d, want %d", info.Epoch, stats.Epoch)
	}
}

// benchState builds a graph and schema whose update stream never
// violates: one loose type-1 constraint, deltas adding an item node wired
// to a bounded-degree pool node.
func benchState(b testing.TB) (*graph.Graph, *access.IndexSet, *graph.Interner) {
	b.Helper()
	in := graph.NewInterner()
	g := graph.New(in)
	item := in.Intern("item")
	for i := 0; i < 1024; i++ {
		g.AddNode(item, graph.Value{})
	}
	c, err := access.New(nil, item, 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	schema := access.NewSchema()
	schema.Add(c)
	idx, viols := access.Build(g, schema)
	if viols != nil {
		b.Fatal(viols[0])
	}
	return g, idx, in
}

// BenchmarkGroupCommit measures the coalescing win: serial single-writer
// applies pay one epoch and one fsync per 1-edge delta; 8 concurrent
// writers share them per batch. Metrics epochs/delta and fsyncs/delta
// are the coalescing factors (1.0 = no coalescing).
func BenchmarkGroupCommit(b *testing.B) {
	run := func(b *testing.B, writers int) {
		g, idx, in := benchState(b)
		dir := b.TempDir()
		wd, err := wal.OpenDir(dir, in)
		if err != nil {
			b.Fatal(err)
		}
		if err := wd.Init(0, g, idx); err != nil {
			b.Fatal(err)
		}
		st := New(g, idx, WithWAL(wd, true))
		var ctr atomic.Uint64
		mkDelta := func() *graph.Delta {
			i := ctr.Add(1)
			return &graph.Delta{
				AddNodes: []graph.NodeSpec{{Label: in.Intern("item")}},
				AddEdges: [][2]graph.NodeID{{graph.NewNodeRef(0), graph.NodeID(i % 1024)}},
			}
		}
		b.ResetTimer()
		if writers == 1 {
			for i := 0; i < b.N; i++ {
				if _, err := st.Apply(mkDelta()); err != nil {
					b.Fatal(err)
				}
			}
		} else {
			var wg sync.WaitGroup
			per := b.N / writers
			for w := 0; w < writers; w++ {
				n := per
				if w == 0 {
					n += b.N - per*writers
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if _, err := st.Apply(mkDelta()); err != nil {
							b.Error(err)
							return
						}
					}
				}(n)
			}
			wg.Wait()
		}
		b.StopTimer()
		stats := st.Stats()
		if stats.Applied > 0 {
			b.ReportMetric(float64(stats.Batches)/float64(stats.Applied), "epochs/delta")
			b.ReportMetric(float64(stats.WALSyncs)/float64(stats.Applied), "fsyncs/delta")
		}
		st.Close()
		wd.Close()
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("writers-8", func(b *testing.B) { run(b, 8) })
}
