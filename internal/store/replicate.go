package store

import (
	"fmt"
	"time"

	"boundedg/internal/access"
	"boundedg/internal/graph"
)

// Replica apply paths. A follower store is an ordinary Store (same
// double-instance copy-on-write, same indexes, same change ring, so the
// whole read path — queries, cache, revalidation — works unmodified) that
// is never driven by Apply. Instead the replication client feeds it whole
// primary epochs through ApplyReplicated, and re-anchors it on a primary
// checkpoint through ResetReplicated after a log rotation it could not
// ride across.

// ApplyReplicated applies one streamed epoch: every delta of the
// primary's group commit for that epoch, in record order, published as a
// single snapshot — exactly the atomicity the primary gave them. epoch
// must be the successor of the published epoch (chunks arrive in order
// from a cursor; a gap means the stream protocol was violated).
//
// The deltas were accepted by the primary, so any rejection here means
// the replica has diverged from the primary's history: the store wedges
// (writes barred, readers keep the last consistent epoch) and the error
// is returned for the caller to surface. Callers hand over the deltas —
// they must not be reused afterwards.
func (st *Store) ApplyReplicated(epoch uint64, deltas []*graph.Delta) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		if st.wedged {
			return ErrWedged
		}
		return ErrClosed
	}
	started := time.Now()
	cur := st.cur.Load()
	if epoch != cur.Epoch+1 {
		return fmt.Errorf("store: replicated epoch %d does not follow published epoch %d", epoch, cur.Epoch)
	}
	if st.shadow == nil {
		st.shadow = &state{g: cur.G.Clone(), idx: cur.Idx.Clone()}
	}
	st.waitDrained(st.prev)
	st.prev = nil
	for _, ld := range st.lag {
		if err := st.shadow.idx.ReplayDelta(st.shadow.g, ld.d, ld.rows); err != nil {
			panic("store: lag replay diverged: " + err.Error())
		}
	}
	st.lag = nil

	var rows []graph.NodeID
	var labels []graph.Label
	var acceptedLag []lagEntry
	for i, d := range deltas {
		commitLabels, _, err := d.ResolveLabels(st.shadow.g.Interner())
		if err != nil {
			st.closed, st.wedged = true, true
			return fmt.Errorf("store: replicated epoch %d delta %d: %w", epoch, i, err)
		}
		var dLabels []graph.Label
		for _, sp := range d.AddNodes {
			dLabels = append(dLabels, sp.Label)
		}
		for _, v := range d.DelNodes {
			if st.shadow.g.Contains(v) {
				dLabels = append(dLabels, st.shadow.g.LabelOf(v))
			}
		}
		res, err := st.shadow.idx.ApplyDeltaTx(st.shadow.g, d)
		if err != nil {
			// The primary committed this delta; a reject here means the two
			// histories no longer agree. Wedge rather than serve a state
			// that silently drifted.
			st.closed, st.wedged = true, true
			return fmt.Errorf("store: replica diverged from primary at epoch %d delta %d: %w", epoch, i, err)
		}
		commitLabels()
		rows = append(rows, res.Touched...)
		labels = append(labels, dLabels...)
		acceptedLag = append(acceptedLag, lagEntry{d: d.Clone(), rows: st.lagRows(res.Touched)})
	}

	if st.clog != nil {
		st.clog.Record(epoch, nil, rows, labels)
	}
	nrows := len(rows)
	if st.ownRow != nil {
		kept := rows[:0]
		for _, v := range rows {
			if st.ownRow(v) {
				kept = append(kept, v)
			}
		}
		rows = kept
	}
	next := &Snapshot{
		G:     st.shadow.g,
		Fz:    cur.Fz.Refresh(st.shadow.g, rows),
		Idx:   st.shadow.idx,
		Epoch: epoch,
		st:    st.shadow,
	}
	st.cur.Store(next)
	st.signalPublish()
	cur.retired.Store(true)
	st.prev = cur
	st.shadow = cur.st
	st.lag = acceptedLag

	st.applied.Add(uint64(len(deltas)))
	st.batches.Add(1)
	st.touched.Add(uint64(nrows))
	st.lastApplyNS.Store(time.Since(started).Nanoseconds())
	return nil
}

// ResetReplicated re-anchors the store on a checkpoint state: a follower
// whose stream cursor a log rotation invalidated re-bootstraps from the
// primary's latest checkpoint, which is at or ahead of everything the
// follower has published. The store takes ownership of g and idx (built
// over g), publishes them as epoch, and discards both copy-on-write
// instances of the old lineage — the next ApplyReplicated re-clones.
// The change ring is emptied: its epochs are contiguous by construction
// and the jump is not, so revalidation across it degrades to
// recomputation.
func (st *Store) ResetReplicated(epoch uint64, g *graph.Graph, idx *access.IndexSet) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		if st.wedged {
			return ErrWedged
		}
		return ErrClosed
	}
	cur := st.cur.Load()
	if epoch < cur.Epoch {
		return fmt.Errorf("store: reset to epoch %d would rewind published epoch %d", epoch, cur.Epoch)
	}
	s := &state{g: g, idx: idx}
	next := &Snapshot{G: g, Fz: g.Freeze(), Idx: idx, Epoch: epoch, st: s}
	st.cur.Store(next)
	st.signalPublish()
	cur.retired.Store(true)
	// Both old instances are of the abandoned lineage: neither can serve
	// as the next shadow. Readers still pinning them drain on their own.
	st.prev = nil
	st.shadow = nil
	st.lag = nil
	if st.clog != nil {
		st.clog.Reset()
	}
	return nil
}
