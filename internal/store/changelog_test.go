package store

import (
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/workload"
)

// TestChangeLogSince pins the ring's span algebra: empty spans, covered
// spans (union of the right slots), outrun spans, overflow slots, and
// epochs ahead of everything recorded.
func TestChangeLogSince(t *testing.T) {
	cl := NewChangeLog(4)

	// Nothing recorded: only the empty span is vouched for.
	if sum, ok := cl.Since(7, 7); !ok || sum.Epoch != 7 || len(sum.Rows) != 0 {
		t.Fatalf("empty ring, e==cur: got %+v ok=%v", sum, ok)
	}
	if _, ok := cl.Since(6, 7); ok {
		t.Fatal("empty ring vouched for a non-empty span")
	}

	row := func(v int) []graph.NodeID { return []graph.NodeID{graph.NodeID(v)} }
	for e := 1; e <= 6; e++ {
		cl.Record(uint64(e), nil, row(e), []graph.Label{graph.Label(e)})
	}
	// Slots now hold epochs 3..6.
	if sum, ok := cl.Since(6, 6); !ok || sum.Epoch != 6 || len(sum.Rows) != 0 {
		t.Fatalf("e==newest: got %+v ok=%v", sum, ok)
	}
	sum, ok := cl.Since(3, 6)
	if !ok || sum.Epoch != 6 || len(sum.Rows) != 3 || len(sum.Labels) != 3 {
		t.Fatalf("span (3,6]: got %+v ok=%v", sum, ok)
	}
	want := map[graph.NodeID]bool{4: true, 5: true, 6: true}
	for _, v := range sum.Rows {
		if !want[v] {
			t.Fatalf("span (3,6] carries unexpected row %d", v)
		}
	}
	// e+1 == oldest is the last span still covered; one older is outrun.
	if _, ok := cl.Since(2, 6); !ok {
		t.Fatal("span (2,6] should be covered (oldest slot is epoch 3)")
	}
	if _, ok := cl.Since(1, 6); ok {
		t.Fatal("span (1,6] should be outrun")
	}
	// A future epoch is never vouched for.
	if _, ok := cl.Since(9, 6); ok {
		t.Fatal("future epoch vouched for")
	}

	// An overflow slot poisons every span crossing it, and only those.
	big := make([]graph.NodeID, changeLogRowCap+1)
	cl.Record(7, nil, big, nil)
	cl.Record(8, nil, row(8), nil)
	if _, ok := cl.Since(6, 8); ok {
		t.Fatal("span crossing the overflow slot was vouched for")
	}
	if sum, ok := cl.Since(7, 8); !ok || len(sum.Rows) != 1 || sum.Rows[0] != 8 {
		t.Fatalf("span above the overflow slot: got %+v ok=%v", sum, ok)
	}
}

// TestStoreChangedSince drives the ring through real commits: changed
// rows of edge updates, labels of inserted and deleted nodes, vouching
// only for covered spans, and the no-op span on an idle store.
func TestStoreChangedSince(t *testing.T) {
	d := workload.IMDb(0.05, 3)
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		t.Fatalf("index build: %v", viols[0])
	}
	st := New(d.G, idx)

	if sum, ok := st.ChangedSince(0); !ok || sum.Epoch != 0 {
		t.Fatalf("idle store, empty span: got %+v ok=%v", sum, ok)
	}
	if _, ok := st.ChangedSince(1); ok {
		t.Fatal("idle store vouched for a future epoch")
	}

	// Edge deletion between two live nodes (deletions cannot violate the
	// access bounds): both endpoints are changed rows.
	snap := st.Acquire()
	var u, v graph.NodeID
	for _, n := range snap.G.NodeList() {
		if out := snap.G.Out(n); len(out) > 0 {
			u, v = n, out[0]
			break
		}
	}
	snap.Release()
	if _, err := st.Apply(&graph.Delta{DelEdges: [][2]graph.NodeID{{u, v}}}); err != nil {
		t.Fatal(err)
	}
	sum, ok := st.ChangedSince(0)
	if !ok || sum.Epoch != 1 {
		t.Fatalf("ChangedSince(0) = %+v ok=%v", sum, ok)
	}
	found := map[graph.NodeID]bool{}
	for _, r := range sum.Rows {
		found[r] = true
	}
	if !found[u] || !found[v] {
		t.Fatalf("edge endpoints missing from %v (want %d and %d)", sum.Rows, u, v)
	}
	if len(sum.Labels) != 0 {
		t.Fatalf("pure edge delta reported labels %v", sum.Labels)
	}

	// Node delete then insert of the same label (delete first keeps the
	// type-1 bounds satisfied): both epochs must report the label.
	snap = st.Acquire()
	lbl := snap.G.Labels()[0]
	victim := snap.G.NodesByLabel(lbl)[0]
	snap.Release()
	if _, err := st.Apply(&graph.Delta{DelNodes: []graph.NodeID{victim}}); err != nil {
		t.Fatal(err)
	}
	if sum, ok := st.ChangedSince(1); !ok || len(sum.Labels) != 1 || sum.Labels[0] != lbl {
		t.Fatalf("delete epoch labels = %+v ok=%v, want [%d]", sum, ok, lbl)
	}
	if _, err := st.Apply(&graph.Delta{AddNodes: []graph.NodeSpec{{Label: lbl}}}); err != nil {
		t.Fatal(err)
	}
	if sum, ok := st.ChangedSince(2); !ok || len(sum.Labels) != 1 || sum.Labels[0] != lbl {
		t.Fatalf("insert epoch labels = %+v ok=%v, want [%d]", sum, ok, lbl)
	}
	// The three-epoch span unions everything.
	sum, ok = st.ChangedSince(0)
	if !ok || sum.Epoch != 3 || len(sum.Labels) != 2 {
		t.Fatalf("full span = %+v ok=%v", sum, ok)
	}

	// A disabled ring vouches only for the empty span.
	st2 := New(d.G.Clone(), idx.Clone(), WithChangeLog(-1))
	if _, ok := st2.ChangedSince(0); !ok {
		t.Fatal("disabled ring must still vouch for the empty span")
	}
}
